open Bw_fusion

let check = Alcotest.check
let bool = Alcotest.bool

let machine = Bw_machine.Machine.origin2000

let cfg ?(engine = Search.Anneal) ?(seed = 1) () =
  Search.default_config ~engine ~machine ~seed ()

(* a cheap annealing config for property tests: tiny instances converge
   long before the default 2x1300 step budget *)
let quick_cfg ?(seed = 1) () =
  { (cfg ~seed ()) with Search.restarts = 1; Search.steps = 250 }

let plan_exn c p =
  match Search.plan c p with
  | Ok (plan, st) -> (plan, st)
  | Error e -> Alcotest.fail e

let small_dag ~seed ~loops =
  Bw_workloads.Dag_family.generate ~seed ~loops ~n:1024

(* --- Exact oracle --------------------------------------------------------- *)

(* On every instance small enough for the set-partition DP, annealing
   must land on the DP's optimum and greedy must stay within a bounded
   (and logged) factor of it. *)
let test_exact_oracle_agreement () =
  List.iter
    (fun (seed, loops) ->
      let p = small_dag ~seed ~loops in
      let _, exact = plan_exn (cfg ~engine:Search.Exact ()) p in
      let _, anneal = plan_exn (cfg ()) p in
      let _, greedy = plan_exn (cfg ~engine:Search.Greedy ()) p in
      check bool
        (Printf.sprintf "dag%dx%d: exact within limit" seed loops)
        true
        (exact.Search.nodes <= (cfg ()).Search.exact_limit);
      let matches =
        anneal.Search.objective <= exact.Search.objective *. 1.000001
      in
      if not matches then
        Alcotest.failf "dag%dx%d: anneal %.0f > exact optimum %.0f" seed
          loops anneal.Search.objective exact.Search.objective;
      let factor = greedy.Search.objective /. exact.Search.objective in
      Printf.printf "dag%dx%d: greedy/exact factor %.3f\n" seed loops factor;
      check bool
        (Printf.sprintf "dag%dx%d: greedy within 2x of optimum" seed loops)
        true (factor <= 2.0))
    [ (1, 6); (2, 6); (1, 8); (2, 8); (3, 8); (1, 10) ]

let test_exact_refuses_large () =
  let p = small_dag ~seed:1 ~loops:30 in
  match Search.plan (cfg ~engine:Search.Exact ()) p with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "exact DP must refuse instances past exact_limit"

(* --- Greedy vs anneal separation ------------------------------------------- *)

(* The acceptance bar: annealing beats greedy by >= 10% predicted
   traffic on at least three benchmark instances. *)
let test_anneal_beats_greedy () =
  let machine = Bw_core.Experiments.origin_scaled in
  let wins =
    List.filter
      (fun (_, p) ->
        let c e = { (cfg ~engine:e ()) with Search.machine } in
        let _, greedy = plan_exn (c Search.Greedy) p in
        let _, anneal = plan_exn (c Search.Anneal) p in
        anneal.Search.traffic <= 0.9 *. greedy.Search.traffic)
      (Bw_workloads.Dag_family.instances ~scale:1)
  in
  check bool "anneal beats greedy by >= 10% on >= 3 instances" true
    (List.length wins >= 3)

(* --- Determinism ------------------------------------------------------------ *)

let test_deterministic () =
  let p = small_dag ~seed:4 ~loops:16 in
  let _, a = plan_exn (cfg ~seed:7 ()) p in
  let _, b = plan_exn (cfg ~seed:7 ()) p in
  check (Alcotest.list (Alcotest.list Alcotest.int)) "same seed, same plan"
    a.Search.plan b.Search.plan;
  check (Alcotest.float 1e-6) "same objective" a.Search.objective
    b.Search.objective;
  check Alcotest.int "same candidate count" a.Search.candidates
    b.Search.candidates

let test_dag_family_deterministic () =
  let a = small_dag ~seed:9 ~loops:20 in
  let b = small_dag ~seed:9 ~loops:20 in
  check bool "same seed, same program" true (a = b);
  let c = small_dag ~seed:10 ~loops:20 in
  check bool "different seed, different program" true (a <> c)

let test_dag_of_name () =
  (match Bw_workloads.Dag_family.of_name "dag3x120" with
  | Some build ->
    let p = build ~scale:1 in
    check Alcotest.string "name round-trips" "dag3x120" p.Bw_ir.Ast.prog_name
  | None -> Alcotest.fail "dag3x120 should parse");
  check bool "junk rejected" true
    (Bw_workloads.Dag_family.of_name "dagger" = None);
  check bool "trailing junk rejected" true
    (Bw_workloads.Dag_family.of_name "dag1x2x3" = None);
  check bool "registry names unaffected" true
    (Bw_workloads.Dag_family.of_name "fig4" = None)

(* --- Cost memo --------------------------------------------------------------- *)

let test_signature_and_memo () =
  check Alcotest.string "signature shape" "0.1|2"
    (Cost.signature [ [ 0; 1 ]; [ 2 ] ]);
  check bool "signature separates plans" true
    (Cost.signature [ [ 0; 1 ]; [ 2 ] ] <> Cost.signature [ [ 0 ]; [ 1; 2 ] ]);
  let p = small_dag ~seed:1 ~loops:6 in
  let memo = Cost.memo () in
  let plan = List.init (List.length p.Bw_ir.Ast.body) (fun i -> [ i ]) in
  let t1 = Cost.predicted_traffic_memo ~machine ~memo p plan in
  let t2 = Cost.predicted_traffic_memo ~machine ~memo p plan in
  check bool "memo returns identical result" true (t1 = t2);
  check Alcotest.int "one miss" 1 (Cost.memo_misses memo);
  check Alcotest.int "one hit" 1 (Cost.memo_hits memo)

(* --- Properties ---------------------------------------------------------------- *)

(* Both engines, over random QA programs and small DAG instances: the
   plan is structurally valid, and the committed program type-checks,
   passes the dependence-preservation lint, and agrees with the input
   under differential validation. *)
let qcheck_cases =
  let open QCheck in
  let programs seed =
    if seed mod 2 = 0 then Bw_qa.Gen.generate ~seed ~size:(4 + (seed mod 5))
    else small_dag ~seed ~loops:(6 + (seed mod 7))
  in
  let legal engine seed =
    let p = programs seed in
    let c = { (quick_cfg ~seed ()) with Search.engine } in
    match Search.plan c p with
    | Error e -> Test.fail_reportf "plan failed on seed %d: %s" seed e
    | Ok (plan, _) -> (
      let g = Fusion_graph.build p in
      (match Cost.validate g plan with
      | Ok () -> ()
      | Error e -> Test.fail_reportf "invalid plan on seed %d: %s" seed e);
      match Search.run c p with
      | Error e -> Test.fail_reportf "run failed on seed %d: %s" seed e
      | Ok (p', _) -> (
        (match Bw_ir.Check.check p' with
        | Ok () -> ()
        | Error _ -> Test.fail_reportf "ill-typed output on seed %d" seed);
        if not (Bw_analysis.Preserve.lint_ok ~before:p ~after:p') then
          Test.fail_reportf "preserve lint failed on seed %d" seed;
        match
          Bw_transform.Guard.validate_pair ~trials:1 ~before:p ~after:p' ()
        with
        | Ok () -> true
        | Error e ->
          Test.fail_reportf "behaviour changed on seed %d: %s" seed e))
  in
  [ Test.make ~name:"greedy plans are legal and behaviour-preserving"
      ~count:12 (int_range 1 500) (legal Search.Greedy);
    Test.make ~name:"annealed plans are legal and behaviour-preserving"
      ~count:12 (int_range 1 500) (legal Search.Anneal) ]

let suites =
  [ ( "fusion.search",
      [ Alcotest.test_case "exact oracle agreement" `Quick
          test_exact_oracle_agreement;
        Alcotest.test_case "exact refuses large instances" `Quick
          test_exact_refuses_large;
        Alcotest.test_case "anneal beats greedy" `Slow test_anneal_beats_greedy;
        Alcotest.test_case "determinism" `Quick test_deterministic ] );
    ( "fusion.search.cost",
      [ Alcotest.test_case "signature and memo" `Quick test_signature_and_memo ] );
    ( "workloads.dag_family",
      [ Alcotest.test_case "determinism" `Quick test_dag_family_deterministic;
        Alcotest.test_case "of_name" `Quick test_dag_of_name ] );
    ( "fusion.search.properties",
      List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_cases ) ]
