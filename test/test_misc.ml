(* Corner-case coverage that the per-module suites do not reach:
   simplifier algebra, interpreter edge semantics, probe shapes on the
   second machine, distribution interplay, hyper-fusion validation. *)

open Bw_ir

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* --- Simplify corners ------------------------------------------------------ *)

let test_simplify_or_and_not () =
  let open Builder in
  (match Bw_transform.Simplify.fold_cond (or_ (int 1 >: int 2) (int 3 >: int 2)) with
  | `True -> ()
  | _ -> Alcotest.fail "or folds to true");
  (match Bw_transform.Simplify.fold_cond (not_ (int 1 >: int 2)) with
  | `True -> ()
  | _ -> Alcotest.fail "not folds");
  (* partial folding keeps the residual condition *)
  match Bw_transform.Simplify.fold_cond (and_ (int 2 >: int 1) (v "x" <: int 5)) with
  | `Cond (Ast.Cmp (Ast.Lt, Ast.Scalar "x", Ast.Int_lit 5)) -> ()
  | _ -> Alcotest.fail "residual kept"

let test_simplify_identities () =
  let open Builder in
  check bool "x+0" true
    (Bw_transform.Simplify.fold_expr (v "x" +: int 0) = v "x");
  check bool "1*x" true
    (Bw_transform.Simplify.fold_expr (int 1 *: v "x") = v "x");
  check bool "x-0" true
    (Bw_transform.Simplify.fold_expr (v "x" -: int 0) = v "x");
  (* division by a literal zero must NOT fold away *)
  check bool "x/0 preserved" true
    (Bw_transform.Simplify.fold_expr (int 4 /: int 0) = (int 4 /: int 0))

let test_simplify_empty_loop_dropped () =
  let p =
    Parser.parse_program_exn
      {|
      program empty
        real s
        live_out s
        for i = 10, 2
          s = s + 1.0
        end for
        print s
      end
      |}
  in
  let p' = Bw_transform.Simplify.simplify_program p in
  check int "empty loop removed" 1 (List.length p'.Ast.body);
  let o1 = Bw_exec.Interp.run p and o2 = Bw_exec.Interp.run p' in
  check bool "same" true (Bw_exec.Interp.equal_observation o1 o2)

(* --- Interpreter corners ----------------------------------------------------- *)

let test_init_lanes_semantics () =
  let open Builder in
  (* g[2, n] with Init_lanes(linear, 2): g[1,k] = g[2,k] = linear(k-1) *)
  let p =
    program "lanes"
      ~decls:
        [ { Ast.var_name = "g";
            dtype = Ast.F64;
            dims = [ 2; 4 ];
            init = Ast.Init_lanes (Ast.Init_linear (0.0, 1.0), 2) } ]
      ~live_out:[ "g" ] []
  in
  let obs = Bw_exec.Interp.run p in
  match Lazy.force obs.Bw_exec.Interp.finals with
  | [ ("g", values) ] ->
    (* column-major: offsets 0..7 -> member offset k/2 = 0,0,1,1,... *)
    let f k =
      match values.(k) with
      | Bw_exec.Interp.V_float x -> x
      | _ -> Alcotest.fail "float expected"
    in
    check (Alcotest.float 0.0) "lane pair equal" (f 0) (f 1);
    check (Alcotest.float 0.0) "next pair" (f 2) (f 3);
    check bool "pairs differ" true (f 0 <> f 2)
  | _ -> Alcotest.fail "expected g"

let test_interp_division_by_zero () =
  let p =
    Parser.parse_program_exn
      {|
      program div0
        integer k
        k = 4 / (k - 0)
      end
      |}
  in
  match Bw_exec.Interp.run p with
  | exception Bw_exec.Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected division-by-zero error"

let test_interp_min_max_semantics () =
  let p =
    Parser.parse_program_exn
      {|
      program mm
        real x
        integer k
        x = min(3.0, 4.0) + max(1.0, 2.0)
        k = min(7, 5)
        print x
        print k
      end
      |}
  in
  match (Bw_exec.Interp.run p).Bw_exec.Interp.prints with
  | [ Bw_exec.Interp.V_float x; Bw_exec.Interp.V_int k ] ->
    check (Alcotest.float 1e-12) "min+max" 5.0 x;
    check int "int min" 5 k
  | _ -> Alcotest.fail "expected two prints"

(* --- Probes on the Exemplar ---------------------------------------------------- *)

let test_exemplar_stream_band () =
  let r = Bw_machine.Probes.stream ~elements:300_000 Bw_machine.Machine.exemplar in
  (* nominal-accounted copy on a 560 MB/s bus with write penalty *)
  check bool
    (Printf.sprintf "copy %.0f in [300,600]" r.Bw_machine.Probes.copy)
    true
    (r.Bw_machine.Probes.copy > 300.0 && r.Bw_machine.Probes.copy < 600.0)

(* --- Hyper_fusion validation ----------------------------------------------------- *)

let test_hyper_fusion_validate () =
  let h = Bw_graph.Hypergraph.create () in
  Bw_graph.Hypergraph.ensure_nodes h 3;
  ignore (Bw_graph.Hypergraph.add_edge h [ 0; 1 ]);
  let deps = Bw_graph.Digraph.of_edges ~n:3 [ (0, 1) ] in
  let inst =
    { Bw_fusion.Hyper_fusion.nodes = 3; hyper = h; preventing = [ (1, 2) ]; deps }
  in
  let ok = Bw_fusion.Hyper_fusion.validate inst [ [ 0; 1 ]; [ 2 ] ] in
  check bool "valid plan accepted" true (ok = Ok ());
  let bad1 = Bw_fusion.Hyper_fusion.validate inst [ [ 0; 1; 2 ] ] in
  check bool "preventing pair rejected" true (Result.is_error bad1);
  let bad2 = Bw_fusion.Hyper_fusion.validate inst [ [ 1 ]; [ 0; 2 ] ] in
  check bool "backward dependence rejected" true (Result.is_error bad2);
  let bad3 = Bw_fusion.Hyper_fusion.validate inst [ [ 0 ]; [ 2 ] ] in
  check bool "missing node rejected" true (Result.is_error bad3)

(* --- Distribution + strategy interplay ------------------------------------------- *)

let test_scattered_program_recovers_via_strategy () =
  (* write a program as one big fused loop, distribute it into minimal
     pieces, and confirm the strategy pipeline re-optimises the scattered
     version to (at least) the traffic of the optimised original *)
  let p = Bw_workloads.Fig7.fused_by_hand ~n:100_000 in
  let scattered = Bw_transform.Distribute.distribute_all p in
  let machine = Bw_machine.Machine.origin2000 in
  let traffic q =
    let q', _ = Bw_transform.Strategy.run q in
    Bw_machine.Timing.memory_bytes
      (Bw_exec.Run.simulate ~machine q').Bw_exec.Run.cache
  in
  check int "same optimised traffic from both forms" (traffic p)
    (traffic scattered)

(* --- Advisor on a file-loaded program --------------------------------------------- *)

let test_parse_error_positions_stable () =
  (* regression guard: messages carry the line of the offending token *)
  let src = "program p\n real a[4]\n for i = 1, 4\n a[i] = \n end for\nend" in
  match Parser.parse_program src with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error e ->
    check bool "line 4 or 5" true (e.Parser.line = 4 || e.Parser.line = 5)

let suites =
  [ ( "misc.simplify",
      [ Alcotest.test_case "or/not folding" `Quick test_simplify_or_and_not;
        Alcotest.test_case "identities" `Quick test_simplify_identities;
        Alcotest.test_case "empty loop" `Quick test_simplify_empty_loop_dropped ] );
    ( "misc.interp",
      [ Alcotest.test_case "Init_lanes" `Quick test_init_lanes_semantics;
        Alcotest.test_case "division by zero" `Quick test_interp_division_by_zero;
        Alcotest.test_case "min/max" `Quick test_interp_min_max_semantics ] );
    ( "misc.machine",
      [ Alcotest.test_case "exemplar stream band" `Slow test_exemplar_stream_band ] );
    ( "misc.fusion",
      [ Alcotest.test_case "hyper_fusion validate" `Quick test_hyper_fusion_validate ] );
    ( "misc.pipeline",
      [ Alcotest.test_case "scatter + strategy recovers" `Quick test_scattered_program_recovers_via_strategy;
        Alcotest.test_case "parse error lines" `Quick test_parse_error_positions_stable ] )
  ]
