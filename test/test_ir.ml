open Bw_ir
open Bw_ir.Ast

let check = Alcotest.check
let str_list = Alcotest.(list string)

(* A small well-formed program used across tests. *)
let sample_program =
  let open Builder in
  program "sample"
    ~decls:
      [ array "a" [ 10 ]; array "b" [ 10 ]; scalar "sum"; scalar "t" ]
    ~live_out:[ "sum" ]
    [ for_ "i" (int 1) (int 10)
        [ ("a" $. [ v "i" ]) <-- (("a" $ [ v "i" ]) +: ("b" $ [ v "i" ])) ];
      for_ "i" (int 1) (int 10)
        [ sc "sum" <-- (v "sum" +: ("a" $ [ v "i" ])) ];
      print (v "sum") ]

let test_check_accepts_sample () =
  match Check.check sample_program with
  | Ok () -> ()
  | Error es ->
    Alcotest.failf "unexpected errors: %s"
      (String.concat "; "
         (List.map (fun e -> Format.asprintf "%a" Check.pp_error e) es))

let expect_reject name program =
  match Check.check program with
  | Ok () -> Alcotest.failf "%s: expected a check error" name
  | Error _ -> ()

let test_check_rejects_undeclared () =
  let open Builder in
  expect_reject "undeclared array"
    (program "bad" ~decls:[]
       [ for_ "i" (int 1) (int 5) [ ("a" $. [ v "i" ]) <-- fl 0.0 ] ])

let test_check_rejects_duplicate_decl () =
  let open Builder in
  expect_reject "duplicate"
    (program "bad" ~decls:[ scalar "x"; scalar "x" ] [])

let test_check_rejects_wrong_arity () =
  let open Builder in
  expect_reject "arity"
    (program "bad"
       ~decls:[ array "a" [ 4; 4 ] ]
       [ for_ "i" (int 1) (int 4) [ ("a" $. [ v "i" ]) <-- fl 1.0 ] ])

let test_check_rejects_float_subscript () =
  let open Builder in
  expect_reject "float subscript"
    (program "bad"
       ~decls:[ array "a" [ 4 ]; scalar "x" ]
       [ ("a" $. [ v "x" ]) <-- fl 1.0 ])

let test_check_rejects_loop_index_assignment () =
  let open Builder in
  expect_reject "loop index assignment"
    (program "bad" ~decls:[]
       [ for_ "i" (int 1) (int 4) [ sc "i" <-- int 0 ] ])

let test_check_rejects_mixed_types () =
  let open Builder in
  expect_reject "mixed"
    (program "bad" ~decls:[ scalar "x" ] [ sc "x" <-- (v "x" +: int 1) ])

let test_check_rejects_shadowing_loop () =
  let open Builder in
  expect_reject "index shadows decl"
    (program "bad" ~decls:[ scalar "i" ]
       [ for_ "i" (int 1) (int 3) [] ])

let test_check_rejects_bad_live_out () =
  let open Builder in
  expect_reject "live_out" (program "bad" ~decls:[] ~live_out:[ "ghost" ] [])

let test_check_rejects_mod_float () =
  let open Builder in
  expect_reject "mod float"
    (program "bad" ~decls:[ scalar "x" ] [ sc "x" <-- (v "x" %: v "x") ])

(* --- Ast_util ----------------------------------------------------------- *)

let test_vars_read_written () =
  check str_list "reads" [ "i"; "a"; "b"; "sum" ]
    (Ast_util.vars_read sample_program.body);
  check str_list "written" [ "a"; "sum" ]
    (Ast_util.vars_written sample_program.body)

let test_arrays_accessed () =
  check str_list "arrays" [ "a"; "b" ]
    (Ast_util.arrays_accessed sample_program sample_program.body)

let test_loop_indices () =
  check str_list "indices" [ "i" ] (Ast_util.loop_indices sample_program.body)

let test_rename_scalar () =
  let open Builder in
  let stmts = [ for_ "i" (int 1) (v "n") [ sc "x" <-- to_float (v "i") ] ] in
  let renamed = Ast_util.rename_scalar ~from:"i" ~into:"j" stmts in
  match renamed with
  | [ For { index = "j"; body = [ Assign (Lscalar "x", Unary (Int_to_float, Scalar "j")) ]; _ } ] ->
    ()
  | _ -> Alcotest.fail "rename did not rewrite loop header and body"

let test_rename_leaves_others () =
  let open Builder in
  let stmts = [ sc "y" <-- (v "x" +: v "x") ] in
  check Alcotest.bool "unchanged" true
    (Stdlib.( = ) (Ast_util.rename_scalar ~from:"z" ~into:"w" stmts) stmts)

let test_subst_scalar () =
  let open Builder in
  let e = v "n" +: int 1 in
  let s = Ast_util.subst_scalar ~name:"n" ~value:(int 41) e in
  check Alcotest.bool "substituted" true (Stdlib.( = ) s (int 41 +: int 1))

let test_subst_rejects_write () =
  let open Builder in
  Alcotest.check_raises "written var"
    (Invalid_argument "Ast_util.subst_scalar_stmts: variable is written")
    (fun () ->
      ignore
        (Ast_util.subst_scalar_stmts ~name:"x" ~value:(Builder.int 1)
           [ sc "x" <-- int 2 ]))

let test_fresh_name () =
  check Alcotest.string "free" "tmp" (Ast_util.fresh_name ~taken:[ "a" ] "tmp");
  check Alcotest.string "collision" "tmp2"
    (Ast_util.fresh_name ~taken:[ "tmp"; "tmp1" ] "tmp")

let test_stmt_count () =
  (* two loops + two loop-body assigns + the print *)
  check Alcotest.int "count" 5 (Ast_util.stmt_count sample_program.body)

(* --- Pretty / Parser round trips ------------------------------------------ *)

let test_pretty_expr () =
  let open Builder in
  let e = (v "a" +: v "b") *: v "c" in
  check Alcotest.string "parens" "(a + b) * c" (Pretty.expr_to_string e);
  let e2 = v "a" +: (v "b" *: v "c") in
  check Alcotest.string "no parens" "a + b * c" (Pretty.expr_to_string e2)

let test_parse_simple_program () =
  let src =
    {|
    program two_loops
      real a[100] = linear(0.0, 1.0)
      real sum
      live_out sum
      for i = 1, 100
        a[i] = a[i] + 0.4
      end for
      for i = 1, 100
        sum = sum + a[i]
      end for
      print sum
    end
    |}
  in
  match Parser.parse_program src with
  | Error e -> Alcotest.failf "parse failed: %a" Parser.pp_parse_error e
  | Ok p ->
    check Alcotest.string "name" "two_loops" p.prog_name;
    check Alcotest.int "decls" 2 (List.length p.decls);
    check Alcotest.int "stmts" 3 (List.length p.body);
    check str_list "live_out" [ "sum" ] p.live_out

let test_parse_if_and_intrinsics () =
  let src =
    {|
    program cond
      real b[10]
      real x
      for j = 2, 10
        if (j <= 9)
          x = f(b[j], x)
        else
          x = g(x)
        end if
      end for
    end
    |}
  in
  match Parser.parse_program src with
  | Error e -> Alcotest.failf "parse failed: %a" Parser.pp_parse_error e
  | Ok p -> check Alcotest.int "stmts" 1 (List.length p.body)

let test_parse_step_and_multidim () =
  let src =
    {|
    program tiles
      real a[8,8]
      for jj = 1, 8, 4
        for j = jj, min(jj + 3, 8)
          for i = 1, 8
            a[i,j] = a[i,j] * 2.0
          end for
        end for
      end for
    end
    |}
  in
  match Parser.parse_program src with
  | Error e -> Alcotest.failf "parse failed: %a" Parser.pp_parse_error e
  | Ok p -> (
    match p.body with
    | [ For { step = Int_lit 4; _ } ] -> ()
    | _ -> Alcotest.fail "expected a stepped loop")

let test_parse_errors_are_located () =
  let src = "program p\n  real a[4]\n  a[1] =\nend" in
  match Parser.parse_program src with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> check Alcotest.bool "line recorded" true (e.line >= 3)

let test_parse_rejects_ill_typed () =
  let src =
    {|
    program bad
      real a[4]
      integer k
      for i = 1, 4
        a[i] = k
      end for
    end
    |}
  in
  match Parser.parse_program src with
  | Ok _ -> Alcotest.fail "expected a check error"
  | Error _ -> ()

let test_roundtrip_pretty_parse () =
  (* Pretty-printed programs are re-parseable and structurally equal. *)
  let printed = Pretty.program_to_string sample_program in
  match Parser.parse_program printed with
  | Error e -> Alcotest.failf "roundtrip failed: %a@,%s" Parser.pp_parse_error e printed
  | Ok p ->
    check Alcotest.bool "same body" true (p.body = sample_program.body)

let test_lexer_comments_and_case () =
  let tokens = Lexer.tokenize "For I=1, N // comment\nEND FOR" in
  let kinds = List.map (fun t -> t.Lexer.token) tokens in
  check Alcotest.bool "for keyword" true (List.mem (Lexer.KW "for") kinds);
  check Alcotest.bool "end keyword" true (List.mem (Lexer.KW "end") kinds);
  check Alcotest.bool "ident I" true (List.mem (Lexer.IDENT "I") kinds)

let test_lexer_numbers () =
  let tokens = Lexer.tokenize "1 2.5 3e2 4.5e-1" in
  let kinds = List.map (fun t -> t.Lexer.token) tokens in
  check Alcotest.bool "int" true (List.mem (Lexer.INT 1) kinds);
  check Alcotest.bool "float" true (List.mem (Lexer.FLOAT 2.5) kinds);
  check Alcotest.bool "exp" true (List.mem (Lexer.FLOAT 300.0) kinds);
  check Alcotest.bool "neg exp" true (List.mem (Lexer.FLOAT 0.45) kinds)

let test_lexer_error () =
  match Lexer.tokenize "a @ b" with
  | exception Lexer.Lex_error (_, 1) -> ()
  | _ -> Alcotest.fail "expected a lex error on line 1"

(* --- QCheck: substitution and renaming --------------------------------------- *)

let gen_expr =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [ map (fun i -> Int_lit i) small_int;
                return (Scalar "n");
                return (Scalar "m") ]
          else
            frequency
              [ (1, map (fun i -> Int_lit i) small_int);
                (1, return (Scalar "n"));
                ( 2,
                  map2
                    (fun a b -> Binary (Add, a, b))
                    (self (n / 2)) (self (n / 2)) );
                ( 1,
                  map2
                    (fun a b -> Binary (Mul, a, b))
                    (self (n / 2)) (self (n / 2)) ) ])
        (min n 8))

let arb_expr = QCheck.make ~print:Pretty.expr_to_string gen_expr

let qcheck_cases =
  let open QCheck in
  [ Test.make ~name:"substituting an absent name is identity" ~count:200
      arb_expr (fun e ->
        Ast_util.subst_scalar ~name:"zz" ~value:(Int_lit 0) e = e);
    Test.make ~name:"substitution removes the name" ~count:200 arb_expr
      (fun e ->
        let e' = Ast_util.subst_scalar ~name:"n" ~value:(Int_lit 7) e in
        not (List.mem "n" (Ast_util.expr_reads e')));
    Test.make ~name:"pretty/parse expression roundtrip" ~count:200 arb_expr
      (fun e ->
        match Parser.parse_expr (Pretty.expr_to_string e) with
        | Ok e' -> e' = e
        | Error _ -> false) ]

(* --- Digest: the serve cache-key primitive ----------------------------------- *)

let test_digest_roundtrip_stable () =
  (* digest must survive a pretty/parse round trip byte-for-byte *)
  List.iter
    (fun p ->
      let src = Pretty.program_to_string p in
      let q = Parser.parse_program_exn src in
      check Alcotest.bool "roundtrip equal_program" true (equal_program p q);
      check Alcotest.string "digest stable across roundtrip"
        (Digest.program p) (Digest.program q))
    [ sample_program; Bw_qa.Gen.generate ~seed:7 ~size:5 ]

let test_digest_separates_programs () =
  let d = Digest.program sample_program in
  check Alcotest.bool "renamed program digests differently" false
    (d = Digest.program { sample_program with prog_name = "other" });
  check Alcotest.bool "changed live_out digests differently" false
    (d = Digest.program { sample_program with live_out = [] });
  check Alcotest.bool "reordered decls digest differently" false
    (d
    = Digest.program
        { sample_program with decls = List.rev sample_program.decls })

let test_digest_zero_canonical () =
  (* -0.0 = 0.0, so equal_program cannot separate these; the digest
     must not either *)
  let prog lit =
    { prog_name = "z";
      decls = [ { var_name = "x"; dtype = F64; dims = []; init = Init_zero } ];
      body = [ Assign (Lscalar "x", Float_lit lit); Print (Scalar "x") ];
      live_out = [ "x" ] }
  in
  check Alcotest.bool "equal_program on +-0.0" true
    (equal_program (prog 0.0) (prog (-0.0)));
  check Alcotest.string "digest on +-0.0" (Digest.program (prog 0.0))
    (Digest.program (prog (-0.0)))

let test_digest_body_only () =
  let renamed = { sample_program with prog_name = "other" } in
  check Alcotest.string "body_only ignores the name"
    (Digest.body_only sample_program) (Digest.body_only renamed);
  check Alcotest.bool "program digest does not" false
    (Digest.program sample_program = Digest.program renamed)

let qcheck_digest_cases =
  let open QCheck in
  let arb_seed = QCheck.make ~print:string_of_int Gen.(0 -- 10_000) in
  [ Test.make ~name:"equal programs digest equally (generator roundtrip)"
      ~count:100 arb_seed (fun seed ->
        let p = Bw_qa.Gen.generate ~seed ~size:4 in
        let q = Parser.parse_program_exn (Pretty.program_to_string p) in
        equal_program p q && Digest.program p = Digest.program q);
    Test.make ~name:"distinct seeds rarely collide" ~count:50 arb_seed
      (fun seed ->
        let p = Bw_qa.Gen.generate ~seed ~size:4 in
        let q = Bw_qa.Gen.generate ~seed:(seed + 50_000) ~size:4 in
        equal_program p q || Digest.program p <> Digest.program q) ]

let suites =
  [ ( "ir.check",
      [ Alcotest.test_case "accepts sample" `Quick test_check_accepts_sample;
        Alcotest.test_case "rejects undeclared" `Quick test_check_rejects_undeclared;
        Alcotest.test_case "rejects duplicates" `Quick test_check_rejects_duplicate_decl;
        Alcotest.test_case "rejects wrong arity" `Quick test_check_rejects_wrong_arity;
        Alcotest.test_case "rejects float subscript" `Quick test_check_rejects_float_subscript;
        Alcotest.test_case "rejects index assignment" `Quick test_check_rejects_loop_index_assignment;
        Alcotest.test_case "rejects mixed types" `Quick test_check_rejects_mixed_types;
        Alcotest.test_case "rejects shadowing" `Quick test_check_rejects_shadowing_loop;
        Alcotest.test_case "rejects bad live_out" `Quick test_check_rejects_bad_live_out;
        Alcotest.test_case "rejects float mod" `Quick test_check_rejects_mod_float ] );
    ( "ir.ast_util",
      [ Alcotest.test_case "vars read/written" `Quick test_vars_read_written;
        Alcotest.test_case "arrays accessed" `Quick test_arrays_accessed;
        Alcotest.test_case "loop indices" `Quick test_loop_indices;
        Alcotest.test_case "rename scalar" `Quick test_rename_scalar;
        Alcotest.test_case "rename leaves others" `Quick test_rename_leaves_others;
        Alcotest.test_case "subst scalar" `Quick test_subst_scalar;
        Alcotest.test_case "subst rejects writes" `Quick test_subst_rejects_write;
        Alcotest.test_case "fresh name" `Quick test_fresh_name;
        Alcotest.test_case "stmt count" `Quick test_stmt_count ] );
    ( "ir.parse",
      [ Alcotest.test_case "simple program" `Quick test_parse_simple_program;
        Alcotest.test_case "if and intrinsics" `Quick test_parse_if_and_intrinsics;
        Alcotest.test_case "step and multidim" `Quick test_parse_step_and_multidim;
        Alcotest.test_case "errors located" `Quick test_parse_errors_are_located;
        Alcotest.test_case "rejects ill-typed" `Quick test_parse_rejects_ill_typed;
        Alcotest.test_case "pretty/parse roundtrip" `Quick test_roundtrip_pretty_parse;
        Alcotest.test_case "pretty expr" `Quick test_pretty_expr ] );
    ( "ir.lexer",
      [ Alcotest.test_case "comments and case" `Quick test_lexer_comments_and_case;
        Alcotest.test_case "numbers" `Quick test_lexer_numbers;
        Alcotest.test_case "errors" `Quick test_lexer_error ] );
    ( "ir.digest",
      [ Alcotest.test_case "roundtrip stable" `Quick test_digest_roundtrip_stable;
        Alcotest.test_case "separates programs" `Quick test_digest_separates_programs;
        Alcotest.test_case "+-0.0 canonical" `Quick test_digest_zero_canonical;
        Alcotest.test_case "body_only" `Quick test_digest_body_only ] );
    ( "ir.properties",
      List.map
        (QCheck_alcotest.to_alcotest ~long:false)
        (qcheck_cases @ qcheck_digest_cases) )
  ]
