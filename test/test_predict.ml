(* The analytic predictor and the tiered evaluator.

   The load-bearing claims: (1) registry-wide predicted-vs-simulated
   accuracy stays inside the documented envelope on three distinct
   machine geometries; (2) the predictor is total on generated programs
   and its traffic is monotone non-increasing in cache capacity; (3) the
   evaluator's tiers carry honest fidelity tags and tick the metrics
   counters; (4) the satellite accessors (Ir_stats symbolic trips,
   Reuse.miss_curve) behave. *)

open Bw_machine

let l2_machine kb =
  { Machine.origin2000 with
    Machine.name = Printf.sprintf "L2=%dKB" kb;
    caches =
      [ { Cache.size_bytes = 32 * 1024; line_bytes = 32; associativity = 2 };
        { Cache.size_bytes = kb * 1024; line_bytes = 128; associativity = 2 } ] }

(* --- registry envelope ------------------------------------------------------ *)

let test_registry_envelope () =
  Alcotest.(check bool)
    "validates on at least 3 machine variants" true
    (List.length Bw_core.Accuracy.default_machines >= 3);
  let rows = Bw_core.Accuracy.measure () in
  Alcotest.(check bool)
    "one row per (workload, machine)" true
    (List.length rows
    = List.length Bw_workloads.Registry.all
      * List.length Bw_core.Accuracy.default_machines);
  (match Bw_core.Accuracy.check rows with
  | [] -> ()
  | violations ->
    Alcotest.failf "%d envelope violation(s):@.%s" (List.length violations)
      (String.concat "\n" violations));
  (* The sharper claim the table's notes make: the *median* cell is
     within a few percent, not merely inside the worst-case bounds. *)
  Alcotest.(check bool)
    "median memory relative error under 5%" true
    (Bw_core.Accuracy.median_memory_rel_err rows < 0.05)

let test_streams_exact () =
  (* Streaming kernels have no reuse to model, so the prediction must
     agree with the simulator almost exactly, not just within envelope. *)
  let machine = Machine.origin2000 in
  List.iter
    (fun name ->
      let e = Option.get (Bw_workloads.Registry.find name) in
      let p = e.Bw_workloads.Registry.build ~scale:1 in
      let pred = Bw_analysis.Predict.predict ~machine p in
      let r = Bw_exec.Run.simulate ~machine p in
      let sim = float_of_int (Timing.memory_bytes r.Bw_exec.Run.cache) in
      let ratio = Bw_analysis.Predict.memory_bytes pred /. sim in
      if ratio < 0.98 || ratio > 1.02 then
        Alcotest.failf "%s: predicted/simulated memory ratio %.3f" name ratio)
    [ "write_loop"; "read_loop"; "stride_1w1r"; "stride_3w6r"; "dmxpy" ]

(* --- generated programs: totality and monotonicity -------------------------- *)

let qcheck_cases =
  let open QCheck in
  let arb_seed = make ~print:string_of_int Gen.(int_range 0 99) in
  [ Test.make ~count:100
      ~name:"predictor total; traffic monotone non-increasing in cache size"
      arb_seed
      (fun seed ->
        let p = Bw_qa.Gen.generate ~seed ~size:6 in
        let traffics =
          List.map
            (fun kb ->
              Bw_analysis.Predict.memory_bytes
                (Bw_analysis.Predict.predict ~machine:(l2_machine kb) p))
            [ 16; 64; 256; 1024; 4096 ]
        in
        List.for_all
          (fun t -> Float.is_finite t && t >= 0.0)
          traffics
        &&
        let rec mono = function
          | a :: (b :: _ as rest) ->
            (* growing the cache must never create traffic (tiny slack
               for float noise) *)
            b <= (a *. (1.0 +. 1e-9)) +. 1e-6 && mono rest
          | _ -> true
        in
        mono traffics);
    Test.make ~count:100 ~name:"evaluator analytic tier total on generators"
      arb_seed
      (fun seed ->
        let p = Bw_qa.Gen.generate ~seed:(seed + 1000) ~size:6 in
        let e =
          Bw_exec.Evaluate.of_program ~budget:Bw_exec.Evaluate.Microseconds
            ~machine:Machine.exemplar p
        in
        e.Bw_exec.Evaluate.fidelity = Bw_exec.Evaluate.Analytic
        && Float.is_finite e.Bw_exec.Evaluate.seconds
        && e.Bw_exec.Evaluate.seconds >= 0.0) ]

(* --- tiered evaluator ------------------------------------------------------- *)

let test_evaluate_tiers () =
  let machine = Machine.origin2000 in
  let e = Option.get (Bw_workloads.Registry.find "fig7") in
  let p = e.Bw_workloads.Registry.build ~scale:1 in
  let analytic_before =
    Bw_obs.Metrics.counter_value
      (Bw_obs.Metrics.counter "evaluate.tier.analytic")
  in
  let a =
    Bw_exec.Evaluate.of_program ~budget:Bw_exec.Evaluate.Microseconds ~machine p
  in
  let r =
    Bw_exec.Evaluate.of_program ~budget:Bw_exec.Evaluate.Milliseconds ~machine p
  in
  let x =
    Bw_exec.Evaluate.of_program ~budget:Bw_exec.Evaluate.Unbounded ~machine p
  in
  Alcotest.(check string) "analytic tag" "analytic"
    (Bw_exec.Evaluate.fidelity_name a.Bw_exec.Evaluate.fidelity);
  Alcotest.(check string) "reuse tag" "reuse"
    (Bw_exec.Evaluate.fidelity_name r.Bw_exec.Evaluate.fidelity);
  Alcotest.(check string) "exact tag" "exact"
    (Bw_exec.Evaluate.fidelity_name x.Bw_exec.Evaluate.fidelity);
  Alcotest.(check int) "analytic tier counter ticked" (analytic_before + 1)
    (Bw_obs.Metrics.counter_value
       (Bw_obs.Metrics.counter "evaluate.tier.analytic"));
  (* exact tier must agree with a direct simulation *)
  let direct = Bw_exec.Run.simulate ~machine p in
  Alcotest.(check (float 1e-12))
    "exact tier = Run.simulate seconds"
    (Bw_exec.Run.seconds direct)
    x.Bw_exec.Evaluate.seconds;
  (* the cheaper tiers approximate the exact one on this workload *)
  List.iter
    (fun (what, (t : Bw_exec.Evaluate.t)) ->
      let ratio =
        Bw_exec.Evaluate.memory_bytes t /. Bw_exec.Evaluate.memory_bytes x
      in
      if ratio < 0.5 || ratio > 2.0 then
        Alcotest.failf "%s tier memory off by %.2fx" what ratio)
    [ ("analytic", a); ("reuse", r) ]

let test_evaluate_capture () =
  let machine = Machine.exemplar in
  let e = Option.get (Bw_workloads.Registry.find "convolution") in
  let p = e.Bw_workloads.Registry.build ~scale:1 in
  let c = Bw_exec.Run.capture p in
  let r =
    Bw_exec.Evaluate.of_capture ~budget:Bw_exec.Evaluate.Milliseconds ~machine c
  in
  let x =
    Bw_exec.Evaluate.of_capture ~budget:Bw_exec.Evaluate.Unbounded ~machine c
  in
  Alcotest.(check bool) "reuse tier from capture" true
    (r.Bw_exec.Evaluate.fidelity = Bw_exec.Evaluate.Reuse_pass);
  Alcotest.(check (float 1e-12))
    "unbounded capture = replay seconds"
    (Bw_exec.Run.seconds (Bw_exec.Run.replay ~machine c))
    x.Bw_exec.Evaluate.seconds

(* --- strategy gate neutrality ----------------------------------------------- *)

let test_fuse_gate_neutral () =
  (* The analytic gate on the fuse stage must never change what greedy
     fusion chooses on real programs: rejects stay at zero across the
     whole registry. *)
  let reject = Bw_obs.Metrics.counter "pass.fuse.analytic_reject" in
  let before = Bw_obs.Metrics.counter_value reject in
  List.iter
    (fun (e : Bw_workloads.Registry.entry) ->
      ignore (Bw_transform.Strategy.run (e.Bw_workloads.Registry.build ~scale:1)))
    Bw_workloads.Registry.all;
  Alcotest.(check int) "no analytic-gate rejections on the registry" before
    (Bw_obs.Metrics.counter_value reject)

let test_cost_predicted_traffic () =
  let e = Option.get (Bw_workloads.Registry.find "fig4") in
  let p = e.Bw_workloads.Registry.build ~scale:1 in
  let n = List.length p.Bw_ir.Ast.body in
  let unfused = List.init n (fun i -> [ i ]) in
  match Bw_fusion.Cost.predicted_traffic p unfused with
  | Error msg -> Alcotest.failf "unfused plan rejected: %s" msg
  | Ok t ->
    Alcotest.(check bool) "positive traffic" true (t > 0.0);
    (* a malformed plan errors instead of raising *)
    (match Bw_fusion.Cost.predicted_traffic p [ [ 0 ] ] with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "incomplete plan accepted")

(* --- Ir_stats symbolic trips ------------------------------------------------- *)

let test_ir_stats_tiled () =
  (* Tiling must not distort the flop estimate: the tiled nest runs the
     same iterations, and the interval-based trip estimator sees through
     the min(lo+tile-1, hi) upper bounds. *)
  let e = Option.get (Bw_workloads.Registry.find "mm_jki") in
  let b = Option.get (Bw_workloads.Registry.find "mm_blocked") in
  let plain = Bw_transform.Ir_stats.of_program (e.Bw_workloads.Registry.build ~scale:1) in
  let tiled = Bw_transform.Ir_stats.of_program (b.Bw_workloads.Registry.build ~scale:1) in
  let ratio = tiled.Bw_transform.Ir_stats.est_flops /. plain.Bw_transform.Ir_stats.est_flops in
  if ratio < 0.7 || ratio > 1.5 then
    Alcotest.failf "tiled/plain est_flops ratio %.2f (trip estimation distorted)"
      ratio

(* --- Reuse satellite accessors ----------------------------------------------- *)

let test_miss_curve () =
  let r = Reuse.create ~granularity:32 () in
  Alcotest.(check (list (pair int (float 0.0)))) "empty curve" []
    (Reuse.miss_curve r);
  (* two sweeps over 64 blocks: second sweep hits only at capacities
     >= footprint *)
  for _ = 1 to 2 do
    for i = 0 to 63 do
      Reuse.access r ~addr:(32 * i)
    done
  done;
  Alcotest.(check int) "footprint bytes" (64 * 32) (Reuse.footprint_bytes r);
  let curve = Reuse.miss_curve r in
  Alcotest.(check bool) "curve nonempty" true (curve <> []);
  let ratios = List.map snd curve in
  let rec mono = function
    | a :: (b :: _ as rest) -> b <= a +. 1e-12 && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone non-increasing" true (mono ratios);
  let last_size, last_ratio = List.nth curve (List.length curve - 1) in
  Alcotest.(check bool) "last capacity holds the footprint" true
    (last_size >= Reuse.footprint_bytes r);
  Alcotest.(check (float 1e-9)) "at full capacity only cold misses remain"
    (float_of_int (Reuse.cold r) /. float_of_int (Reuse.total r))
    last_ratio;
  (* curve points agree with direct miss_ratio queries *)
  List.iter
    (fun (size, ratio) ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "curve point at %d B" size)
        (Reuse.miss_ratio r ~capacity_blocks:(size / 32))
        ratio)
    curve

let suites =
  [ ( "predict.accuracy",
      [ Alcotest.test_case "registry envelope on 3 machines" `Quick
          test_registry_envelope;
        Alcotest.test_case "streaming kernels near-exact" `Quick
          test_streams_exact ] );
    ( "predict.evaluate",
      [ Alcotest.test_case "tier tags and counters" `Quick test_evaluate_tiers;
        Alcotest.test_case "capture tiers" `Quick test_evaluate_capture;
        Alcotest.test_case "fuse gate neutral on registry" `Quick
          test_fuse_gate_neutral;
        Alcotest.test_case "Cost.predicted_traffic" `Quick
          test_cost_predicted_traffic ] );
    ( "predict.satellites",
      [ Alcotest.test_case "Ir_stats sees through tiling" `Quick
          test_ir_stats_tiled;
        Alcotest.test_case "Reuse.miss_curve" `Quick test_miss_curve ] );
    ( "predict.properties",
      List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_cases ) ]
