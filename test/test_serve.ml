(* The serve subsystem: the single-flight LRU result cache, the wire
   protocol's validation and cache keying, the simulate batcher, and a
   real in-process daemon exercised over TCP — byte-identical cache
   hits, zero engine work on repeats, malformed requests that never
   kill the connection, graceful drain, and the load generator.

   The resilience layer is tested with armed faults: worker-domain
   crashes heal, deadlines expire into structured errors, overload
   degrades then sheds, the watchdog reaps idle connections, a crashing
   batch leader never strands its followers, a drain under load still
   answers everything admitted, and the chaos load run ends with zero
   unanswered requests. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

module Json = Bw_core.Json
module Cache = Bw_serve.Cache
module Protocol = Bw_serve.Protocol
module Server = Bw_serve.Server
module Client = Bw_serve.Client
module Loadgen = Bw_serve.Loadgen
module Metrics = Bw_obs.Metrics
module Fault = Bw_obs.Fault
module Pool = Bw_exec.Pool

let counter name = Metrics.counter_value (Metrics.counter name)

(* The fault registry and its hit counters are process-global — every
   server in this binary crosses the pool and socket sites — so zero
   them before arming (Nth policies compare against the absolute count)
   and disarm whatever happens. *)
let with_faults arm_fn f =
  Fault.reset ();
  arm_fn ();
  Fun.protect ~finally:Fault.reset f

(* --- cache ------------------------------------------------------------------ *)

let test_cache_hit_and_miss () =
  let c = Cache.create ~capacity:8 () in
  let computed = ref 0 in
  let f () = incr computed; 42 in
  let v1, how1 = Cache.find_or_compute c ~key:"k" f in
  let v2, how2 = Cache.find_or_compute c ~key:"k" f in
  check int "first value" 42 v1;
  check int "second value" 42 v2;
  check bool "first is a miss" true (how1 = `Miss);
  check bool "second is a hit" true (how2 = `Hit);
  check int "computed exactly once" 1 !computed

let test_cache_eviction_at_capacity () =
  let c = Cache.create ~capacity:2 () in
  ignore (Cache.find_or_compute c ~key:"a" (fun () -> 1));
  ignore (Cache.find_or_compute c ~key:"b" (fun () -> 2));
  (* refresh "a" so "b" is the least recently used *)
  check (Alcotest.option int) "peek refreshes a" (Some 1) (Cache.find c "a");
  ignore (Cache.find_or_compute c ~key:"c" (fun () -> 3));
  check bool "a survives" true (Cache.mem c "a");
  check bool "b evicted" false (Cache.mem c "b");
  check bool "c present" true (Cache.mem c "c");
  let s = Cache.stats c in
  check int "size at capacity" 2 s.Cache.size;
  check int "one eviction" 1 s.Cache.evictions

let test_cache_single_flight () =
  let c = Cache.create ~capacity:8 () in
  let computed = ref 0 in
  let m = Mutex.create () in
  let f () =
    Mutex.lock m;
    incr computed;
    Mutex.unlock m;
    Thread.delay 0.1;
    "value"
  in
  let results = Array.make 4 ("", `Miss) in
  let threads =
    Array.init 4 (fun i ->
        Thread.create
          (fun () -> results.(i) <- Cache.find_or_compute c ~key:"shared" f)
          ())
  in
  Array.iter Thread.join threads;
  check int "computed exactly once" 1 !computed;
  Array.iter
    (fun (v, _) -> check string "every caller got the value" "value" v)
    results;
  let misses =
    Array.fold_left
      (fun acc (_, how) -> if how = `Miss then acc + 1 else acc)
      0 results
  in
  check int "exactly one miss" 1 misses;
  check int "three joins" 3 (Cache.stats c).Cache.single_flight_joins

let test_cache_failure_does_not_poison () =
  let c = Cache.create ~capacity:4 () in
  (match Cache.find_or_compute c ~key:"k" (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "expected the computation's exception"
  | exception Failure msg -> check string "exception propagates" "boom" msg);
  check bool "nothing cached" false (Cache.mem c "k");
  let v, how = Cache.find_or_compute c ~key:"k" (fun () -> 7) in
  check int "retry succeeds" 7 v;
  check bool "retry is a miss" true (how = `Miss)

(* --- protocol --------------------------------------------------------------- *)

let test_protocol_rejects_garbage () =
  let expect_error line =
    match Protocol.request_of_string line with
    | Ok _ -> Alcotest.fail ("accepted: " ^ line)
    | Error msg ->
      check bool
        ("one-line error for " ^ line)
        false
        (String.contains msg '\n')
  in
  expect_error "this is not json";
  expect_error "{\"v\":1}";
  expect_error "{\"v\":1,\"op\":\"frobnicate\"}";
  expect_error "{\"v\":99,\"op\":\"ping\"}";
  expect_error "{\"v\":1,\"op\":\"analyze\",\"scale\":7,\"program\":\"x\"}";
  expect_error "{\"v\":1,\"op\":\"fuzz\",\"count\":0}"

let test_protocol_roundtrip () =
  let req =
    { (Protocol.default_request Protocol.Predict) with
      Protocol.id = Some "r1";
      program = Some "fig7";
      machines = [ "origin2000"; "exemplar" ];
      budget = `Analytic;
      scale = 2;
      no_cache = true }
  in
  match Protocol.request_of_json (Protocol.json_of_request req) with
  | Error msg -> Alcotest.fail msg
  | Ok req' ->
    check bool "round-trips" true (req = req')

let digest_program name =
  match Bw_core.Loader.load_program ~scale:1 name with
  | Ok p -> p
  | Error msg -> Alcotest.fail msg

let test_cache_keys_never_collide () =
  let p = Some (digest_program "read_loop") in
  let base = Protocol.default_request Protocol.Analyze in
  let variants =
    [ base;
      { base with Protocol.machines = [ "exemplar" ] };
      { base with Protocol.machines = [ "origin2000"; "exemplar" ] };
      { base with Protocol.engine = `Interpreted };
      { base with Protocol.op = Protocol.Predict };
      { base with Protocol.op = Protocol.Predict; budget = `Analytic };
      { base with Protocol.op = Protocol.Simulate };
      { base with Protocol.op = Protocol.Optimize };
      { base with
        Protocol.op = Protocol.Optimize;
        pipeline = { Protocol.default_pipeline with Protocol.lint = true } };
      { base with
        Protocol.op = Protocol.Optimize;
        pipeline = { Protocol.default_pipeline with Protocol.fuel = Some 2 } };
      { base with Protocol.op = Protocol.Fuzz };
      { base with Protocol.op = Protocol.Fuzz; seed = 2 } ]
  in
  let keys =
    List.map
      (fun r ->
        match Protocol.cache_key r ~program:p with
        | Some k -> k
        | None -> Alcotest.fail "expected a cache key")
      variants
  in
  let distinct = List.sort_uniq compare keys in
  check int "all keys distinct" (List.length keys) (List.length distinct);
  (* a different program gives a different key *)
  let other = Some (digest_program "write_loop") in
  check bool "program digest is in the key" false
    (Protocol.cache_key base ~program:p
    = Protocol.cache_key base ~program:other);
  (* scale is deliberately NOT in the key: it only affects the answer
     through the loaded program, whose digest already carries it *)
  check bool "same AST, different scale field: same key" true
    (Protocol.cache_key base ~program:p
    = Protocol.cache_key { base with Protocol.scale = 2 } ~program:p);
  (* uncacheable ops have no key *)
  List.iter
    (fun op ->
      check bool "no key" true
        (Protocol.cache_key (Protocol.default_request op) ~program:None = None))
    [ Protocol.Ping; Protocol.Metrics; Protocol.Shutdown ]

let test_cache_key_is_content_addressed () =
  (* the same program sent by registry name and as inline source keys
     identically: the key holds the IR digest, not the request text *)
  let p = digest_program "read_loop" in
  let source = Bw_ir.Pretty.program_to_string p in
  let by_name =
    { (Protocol.default_request Protocol.Analyze) with
      Protocol.program = Some "read_loop" }
  in
  let by_source =
    { (Protocol.default_request Protocol.Analyze) with
      Protocol.source = Some source }
  in
  let load r = match Protocol.load_program r with
    | Ok p -> Some p
    | Error msg -> Alcotest.fail msg
  in
  check bool "identical keys" true
    (Protocol.cache_key by_name ~program:(load by_name)
    = Protocol.cache_key by_source ~program:(load by_source))

(* --- batcher ----------------------------------------------------------------- *)

let test_batch_groups_concurrent_requests () =
  let batcher = Bw_serve.Batch.create ~jobs:1 () in
  let p = Bw_workloads.Simple_example.read_loop ~n:500 in
  let capture_count = ref 0 in
  let arrived = Atomic.make 0 in
  let o2000 = Bw_machine.Machine.origin2000 in
  let exemplar = Bw_machine.Machine.exemplar in
  let capture () =
    incr capture_count;
    (* wait until every thread is at least registering, so the drain
       waves see them all and replay once or twice, never four times *)
    while Atomic.get arrived < 4 do
      Thread.delay 0.01
    done;
    Thread.delay 0.2;
    Bw_exec.Run.capture p
  in
  let wants = [| [ o2000 ]; [ exemplar ]; [ o2000; exemplar ]; [ exemplar ] |] in
  let results = Array.make 4 [] in
  let threads =
    Array.init 4 (fun i ->
        Thread.create
          (fun () ->
            Atomic.incr arrived;
            results.(i) <-
              Bw_serve.Batch.simulate batcher ~key:"k" ~capture wants.(i))
          ())
  in
  Array.iter Thread.join threads;
  check int "capture ran once" 1 !capture_count;
  (* every thread got results for exactly its machines, bit-identical
     to a direct simulation *)
  Array.iteri
    (fun i machines ->
      check int "result per machine" (List.length machines)
        (List.length results.(i));
      List.iter2
        (fun machine r ->
          check bool "replay = direct" true
            (Bw_exec.Run.equal_result r (Bw_exec.Run.simulate ~machine p)))
        machines results.(i))
    wants

(* --- the daemon, over TCP ---------------------------------------------------- *)

let with_server ?(tweak = fun c -> c) f =
  let config =
    tweak
      { (Server.default_config (Server.Tcp ("127.0.0.1", 0))) with
        Server.jobs = Some 2;
        cache_capacity = 64 }
  in
  let server = Server.start config in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () -> f (Server.addr server))

let analyze_line ?id () =
  let req =
    { (Protocol.default_request Protocol.Analyze) with
      Protocol.id;
      program = Some "read_loop" }
  in
  Json.to_string (Protocol.json_of_request req)

let test_server_hit_is_byte_identical () =
  with_server (fun addr ->
      let client = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          let line = analyze_line () in
          let r1 = Result.get_ok (Client.request_raw client line) in
          let r2 = Result.get_ok (Client.request_raw client line) in
          check bool "first not cached" false (Protocol.response_cached r1);
          check bool "second cached" true (Protocol.response_cached r2);
          let payload r =
            match Protocol.response_result r with
            | Ok j -> Json.to_string j
            | Error msg -> Alcotest.fail msg
          in
          check string "byte-identical result payload" (payload r1)
            (payload r2)))

let test_server_repeat_does_zero_engine_work () =
  with_server (fun addr ->
      let runs () =
        Metrics.counter_value (Metrics.counter "engine.compiled.runs")
      in
      let req =
        { (Protocol.default_request Protocol.Analyze) with
          Protocol.program = Some "fig7";
          machines = [ "origin2000"; "exemplar" ] }
      in
      let before = runs () in
      let r1 = Result.get_ok (Client.one_shot addr req) in
      check bool "first request ok" true
        (Result.is_ok (Protocol.response_result r1));
      let after_first = runs () in
      check bool "the miss did engine work" true (after_first > before);
      let r2 = Result.get_ok (Client.one_shot addr req) in
      check bool "second cached" true (Protocol.response_cached r2);
      check int "the hit did zero engine work" after_first (runs ()))

let test_server_survives_malformed_requests () =
  with_server (fun addr ->
      let client = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          let expect_error line =
            let r = Result.get_ok (Client.request_raw client line) in
            match Protocol.response_result r with
            | Ok _ -> Alcotest.fail ("server accepted: " ^ line)
            | Error msg ->
              check bool "structured one-line error" false
                (String.contains msg '\n')
          in
          expect_error "not json at all {{{";
          expect_error "{\"v\":1,\"op\":\"frobnicate\"}";
          expect_error "{\"v\":1,\"op\":\"analyze\"}";
          (* no program *)
          expect_error
            "{\"v\":1,\"op\":\"analyze\",\"program\":\"no_such_workload\"}";
          expect_error
            "{\"v\":1,\"op\":\"analyze\",\"program\":\"read_loop\",\
             \"machines\":[\"cray\"]}";
          (* ...and the same connection still serves valid requests *)
          let r =
            Result.get_ok
              (Client.request client (Protocol.default_request Protocol.Ping))
          in
          check bool "connection still alive" true
            (Result.is_ok (Protocol.response_result r))))

let test_server_metrics_endpoint () =
  with_server (fun addr ->
      ignore
        (Result.get_ok
           (Client.one_shot addr (Protocol.default_request Protocol.Ping)));
      let body = Result.get_ok (Client.fetch_metrics addr) in
      check bool "exposes serve_requests" true
        (let needle = "serve_requests" in
         let n = String.length needle and len = String.length body in
         let rec go i =
           i + n <= len && (String.sub body i n = needle || go (i + 1))
         in
         go 0))

let test_server_drains_on_shutdown () =
  let config = Server.default_config (Server.Tcp ("127.0.0.1", 0)) in
  let server = Server.start config in
  let addr = Server.addr server in
  let r =
    Result.get_ok
      (Client.one_shot addr (Protocol.default_request Protocol.Shutdown))
  in
  check bool "shutdown acknowledged" true
    (Result.is_ok (Protocol.response_result r));
  Server.wait server;
  (match Client.connect addr with
  | client ->
    (* a connect may still succeed transiently on some kernels; the
       server must not answer on it *)
    Client.close client
  | exception _ -> ());
  check bool "drained" true true

let test_loadgen_against_live_server () =
  with_server (fun addr ->
      let spec =
        { (Loadgen.default_spec addr) with
          Loadgen.clients = 2;
          requests = 60;
          seed = 3 }
      in
      let stats = Loadgen.run spec in
      check int "every request answered" 60 stats.Loadgen.requests;
      check int "no errors" 0 stats.Loadgen.errors;
      check int "no transport failures" 0 stats.Loadgen.failed;
      check int "outcome counts are a partition" 60
        (stats.Loadgen.ok + stats.Loadgen.degraded + stats.Loadgen.errors);
      check bool "the mixed stream hits the cache" true
        (stats.Loadgen.hit_rate > 0.1);
      (* the stats JSON carries the v5 per-outcome fields *)
      let doc = Json.to_string (Loadgen.json_of_stats stats) in
      let contains needle =
        let n = String.length needle and len = String.length doc in
        let rec go i =
          i + n <= len && (String.sub doc i n = needle || go (i + 1))
        in
        go 0
      in
      List.iter
        (fun field ->
          check bool ("stats JSON has " ^ field) true
            (contains (Printf.sprintf "\"%s\":" field)))
        [ "ok"; "degraded"; "rejected"; "shed"; "failed"; "retried";
          "outcomes" ])

(* --- resilience: faults, deadlines, overload, drain -------------------------- *)

let test_fault_delay_action_parses () =
  Fun.protect
    ~finally:Fault.reset
    (fun () ->
      (match Fault.arm_spec "serve.compute.delay=delay:120@every:3" with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg);
      check bool "site armed" true
        (List.mem_assoc "serve.compute.delay" (Fault.armed ()));
      match Fault.arm_spec "serve.compute.delay=delay:0" with
      | Ok () -> Alcotest.fail "accepted a zero-millisecond delay"
      | Error _ -> ())

let test_protocol_resilience_envelope () =
  let req =
    { (Protocol.default_request Protocol.Analyze) with
      Protocol.program = Some "read_loop";
      deadline_ms = Some 1500 }
  in
  (match Protocol.request_of_json (Protocol.json_of_request req) with
  | Ok req' -> check bool "deadline_ms round-trips" true (req = req')
  | Error msg -> Alcotest.fail msg);
  (match
     Protocol.request_of_string "{\"v\":1,\"op\":\"ping\",\"deadline_ms\":0}"
   with
  | Ok _ -> Alcotest.fail "accepted a non-positive deadline"
  | Error _ -> ());
  let err =
    Protocol.error_response ~code:"overloaded" ~retry_after_ms:120 "busy"
  in
  check (Alcotest.option string) "error code survives" (Some "overloaded")
    (Protocol.response_error_code err);
  check (Alcotest.option int) "retry hint survives" (Some 120)
    (Protocol.response_retry_after_ms err);
  check bool "errors are not degraded" false (Protocol.response_degraded err);
  let ok =
    Protocol.ok_response ~degraded:"analytic" ~op:Protocol.Predict
      ~cached:false (Json.Obj [])
  in
  check bool "degraded tag readable" true (Protocol.response_degraded ok);
  check bool "analyze is idempotent" true (Protocol.idempotent req);
  check bool "shutdown is not" false
    (Protocol.idempotent (Protocol.default_request Protocol.Shutdown));
  check bool "predict is degradable" true (Protocol.degradable Protocol.Predict);
  check bool "simulate is not" false (Protocol.degradable Protocol.Simulate)

let test_pool_worker_crash_heals () =
  with_faults
    (fun () -> Fault.arm "pool.worker.crash" Fault.Raise (Fault.Nth 1))
    (fun () ->
      let before = counter "pool.worker.respawns" in
      let pool = Pool.create ~jobs:2 () in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () ->
          (* the first task claim kills its worker domain: only that
             task's future fails, and a replacement is spawned *)
          let doomed = Pool.submit pool (fun () -> 1) in
          (match Pool.await doomed with
          | Error (Pool.Worker_crashed _) -> ()
          | Error e ->
            Alcotest.fail
              ("expected Worker_crashed, got " ^ Printexc.to_string e)
          | Ok _ -> Alcotest.fail "task should have died with its worker");
          let futures =
            List.init 8 (fun i -> Pool.submit pool (fun () -> i * i))
          in
          List.iteri
            (fun i fut ->
              check int "healed pool still computes" (i * i)
                (Pool.await_exn fut))
            futures;
          check bool "respawn counted" true
            (counter "pool.worker.respawns" > before)))

let test_server_deadline_enforced () =
  with_server (fun addr ->
      with_faults
        (fun () ->
          Fault.arm "serve.compute.delay" (Fault.Delay 300) (Fault.Every 1))
        (fun () ->
          let before = counter "serve.deadline.expired" in
          let req =
            { (Protocol.default_request Protocol.Analyze) with
              Protocol.program = Some "read_loop";
              deadline_ms = Some 50 }
          in
          let r = Result.get_ok (Client.one_shot addr req) in
          (match Protocol.response_result r with
          | Ok _ ->
            Alcotest.fail "a 50 ms budget survived a 300 ms straggler"
          | Error _ ->
            check (Alcotest.option string) "structured code"
              (Some "deadline_exceeded")
              (Protocol.response_error_code r));
          check bool "expiry counted" true
            (counter "serve.deadline.expired" > before);
          (* the timed-out attempt never reached the cache: without the
             straggler the same work computes fresh, as a miss *)
          Fault.reset ();
          let r2 =
            Result.get_ok
              (Client.one_shot addr { req with Protocol.deadline_ms = None })
          in
          check bool "recovers" true
            (Result.is_ok (Protocol.response_result r2));
          check bool "the expired attempt was not cached" false
            (Protocol.response_cached r2)))

let test_server_degrades_then_sheds () =
  with_server
    ~tweak:(fun c ->
      { c with Server.jobs = Some 1; degrade_queue = 1; max_queue = 2 })
    (fun addr ->
      with_faults
        (fun () ->
          Fault.arm "serve.compute.delay" (Fault.Delay 600) (Fault.Every 1))
        (fun () ->
          let d0 = counter "serve.queue.degraded" in
          let s0 = counter "serve.queue.shed" in
          let blocker =
            (* optimize is NOT degradable: each occupies the pool *)
            { (Protocol.default_request Protocol.Optimize) with
              Protocol.program = Some "read_loop";
              machines = [ "origin2000" ];
              no_cache = true }
          in
          let spawn_blocker delay =
            Thread.create
              (fun () ->
                Thread.delay delay;
                ignore (Client.one_shot addr blocker))
              ()
          in
          let predict =
            { (Protocol.default_request Protocol.Predict) with
              Protocol.program = Some "read_loop";
              machines = [ "origin2000" ] }
          in
          (* two blockers on a one-worker pool: backlog 1, the degrade
             band — a degradable op answers inline from the analytic
             tier instead of queueing *)
          let t1 = spawn_blocker 0.0 in
          let t2 = spawn_blocker 0.06 in
          Thread.delay 0.2;
          let r = Result.get_ok (Client.one_shot addr predict) in
          check bool "degraded answer is an answer" true
            (Result.is_ok (Protocol.response_result r));
          check bool "tagged degraded" true (Protocol.response_degraded r);
          check bool "degraded never claims the cache" false
            (Protocol.response_cached r);
          check bool "degrade counted" true
            (counter "serve.queue.degraded" > d0);
          (* a third blocker fills the queue: backlog 2 = max_queue, so
             the next compute op of any kind is shed with a retry hint *)
          let t3 = spawn_blocker 0.0 in
          Thread.delay 0.15;
          let analyze =
            { (Protocol.default_request Protocol.Analyze) with
              Protocol.program = Some "read_loop" }
          in
          let r2 = Result.get_ok (Client.one_shot addr analyze) in
          (match Protocol.response_result r2 with
          | Ok _ -> Alcotest.fail "request admitted past max_queue"
          | Error _ ->
            check (Alcotest.option string) "structured code"
              (Some "overloaded")
              (Protocol.response_error_code r2));
          (match Protocol.response_retry_after_ms r2 with
          | Some ms -> check bool "positive retry hint" true (ms >= 50)
          | None -> Alcotest.fail "overloaded without a retry hint");
          check bool "shed counted" true (counter "serve.queue.shed" > s0);
          (* disarm the straggler so the backlog clears quickly *)
          Fault.reset ();
          List.iter Thread.join [ t1; t2; t3 ];
          (* the degraded answer never touched the result cache: the
             same predict at full fidelity is a miss, not a poisoned
             hit *)
          let r3 = Result.get_ok (Client.one_shot addr predict) in
          check bool "full fidelity once the storm passes" false
            (Protocol.response_degraded r3);
          check bool "degraded reply was not cached" false
            (Protocol.response_cached r3)))

let test_server_rejects_oversized_requests () =
  with_server
    ~tweak:(fun c -> { c with Server.max_request_bytes = 2048 })
    (fun addr ->
      let before = counter "serve.request.oversized" in
      let client = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          let big = String.make 4096 'x' in
          let r = Result.get_ok (Client.request_raw client big) in
          (match Protocol.response_result r with
          | Ok _ -> Alcotest.fail "accepted an oversized request line"
          | Error _ ->
            check (Alcotest.option string) "structured code"
              (Some "request_too_large")
              (Protocol.response_error_code r));
          check bool "oversize counted" true
            (counter "serve.request.oversized" > before);
          (* the rest of the line was never read, so the connection is
             unsynchronisable and must be dropped *)
          match
            Client.request client (Protocol.default_request Protocol.Ping)
          with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "connection survived an oversized line"))

let test_server_watchdog_reaps_idle_connections () =
  with_server
    ~tweak:(fun c -> { c with Server.idle_timeout_s = 0.4 })
    (fun addr ->
      let before = counter "serve.watchdog.closed" in
      let client = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          let r =
            Result.get_ok
              (Client.request client (Protocol.default_request Protocol.Ping))
          in
          check bool "alive before idling" true
            (Result.is_ok (Protocol.response_result r));
          (* go idle past the timeout: the watchdog shuts the half-dead
             connection down *)
          Thread.delay 1.2;
          (match
             Client.request client (Protocol.default_request Protocol.Ping)
           with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "idle connection survived the watchdog");
          check bool "close counted" true
            (counter "serve.watchdog.closed" > before);
          (* the server itself is unaffected *)
          let c2 = Client.connect addr in
          Fun.protect
            ~finally:(fun () -> Client.close c2)
            (fun () ->
              let r2 =
                Result.get_ok
                  (Client.request c2 (Protocol.default_request Protocol.Ping))
              in
              check bool "fresh connections served" true
                (Result.is_ok (Protocol.response_result r2)))))

let test_batch_orphans_survive_leader_crash () =
  with_faults
    (fun () -> Fault.arm "serve.capture" Fault.Raise (Fault.Nth 1))
    (fun () ->
      let orphaned_before = counter "serve.batch.orphaned" in
      let batcher = Bw_serve.Batch.create ~jobs:1 () in
      let p = Bw_workloads.Simple_example.read_loop ~n:200 in
      let machine = Bw_machine.Machine.origin2000 in
      let arrived = Atomic.make 0 in
      let attempts = Atomic.make 0 in
      let capture () =
        Atomic.incr attempts;
        (* hold the group open until every thread has joined, so the
           leader's crash strands the maximum number of followers *)
        while Atomic.get arrived < 4 do
          Thread.delay 0.01
        done;
        Bw_obs.Fault.cut "serve.capture";
        Bw_exec.Run.capture p
      in
      let outcomes = Array.make 4 `Pending in
      let threads =
        Array.init 4 (fun i ->
            Thread.create
              (fun () ->
                Atomic.incr arrived;
                match
                  Bw_serve.Batch.simulate batcher ~key:"k" ~capture [ machine ]
                with
                | results -> outcomes.(i) <- `Ok results
                | exception e -> outcomes.(i) <- `Failed e)
              ())
      in
      Array.iter Thread.join threads;
      let failed =
        Array.fold_left
          (fun acc o -> match o with `Failed _ -> acc + 1 | _ -> acc)
          0 outcomes
      in
      check int "exactly the leader failed" 1 failed;
      Array.iter
        (function
          | `Ok [ r ] ->
            check bool "follower result = direct simulation" true
              (Bw_exec.Run.equal_result r (Bw_exec.Run.simulate ~machine p))
          | `Ok _ -> Alcotest.fail "one machine, one result"
          | `Failed e ->
            check bool "leader saw the injected fault" true
              (match e with Fault.Injected _ -> true | _ -> false)
          | `Pending -> Alcotest.fail "a follower never returned")
        outcomes;
      check bool "followers re-ran the capture" true
        (Atomic.get attempts >= 2);
      check bool "orphans counted" true
        (counter "serve.batch.orphaned" > orphaned_before))

let test_server_shutdown_under_load () =
  with_faults
    (fun () ->
      Fault.arm "serve.compute.delay" (Fault.Delay 200) (Fault.Every 1))
    (fun () ->
      let config =
        { (Server.default_config (Server.Tcp ("127.0.0.1", 0))) with
          Server.jobs = Some 1;
          cache_capacity = 64 }
      in
      let server = Server.start config in
      let addr = Server.addr server in
      let replies = Array.make 5 None in
      let threads =
        Array.init 5 (fun i ->
            Thread.create
              (fun () ->
                let req =
                  { (Protocol.default_request Protocol.Optimize) with
                    Protocol.program = Some "read_loop";
                    machines = [ "origin2000" ];
                    no_cache = true }
                in
                replies.(i) <- Some (Client.one_shot addr req))
              ())
      in
      (* every request is admitted and queued behind the straggler
         before the drain starts: admitted work must still complete *)
      Thread.delay 0.15;
      Server.request_shutdown server;
      Server.wait server;
      Array.iter Thread.join threads;
      Array.iteri
        (fun i r ->
          match r with
          | Some (Ok reply) ->
            check bool
              (Printf.sprintf "request %d completed through the drain" i)
              true
              (Result.is_ok (Protocol.response_result reply))
          | Some (Error msg) -> Alcotest.fail msg
          | None -> Alcotest.fail "a client never returned")
        replies)

let test_resilient_client_survives_dropped_replies () =
  with_server (fun addr ->
      with_faults
        (fun () ->
          Fault.arm "serve.socket.close" Fault.Raise (Fault.Every 3))
        (fun () ->
          let cfg =
            { Client.default_retry_config with
              Client.timeout_s = 2.0;
              max_retries = 4 }
          in
          let rc = Client.resilient ~cfg ~seed:7 addr in
          Fun.protect
            ~finally:(fun () -> Client.resilient_close rc)
            (fun () ->
              let req =
                { (Protocol.default_request Protocol.Analyze) with
                  Protocol.program = Some "read_loop" }
              in
              (* every third reply is chopped mid-write and the
                 connection dropped; the resilient client reconnects
                 and retries until it has a whole answer *)
              for i = 1 to 10 do
                let r = Result.get_ok (Client.resilient_request rc req) in
                check bool
                  (Printf.sprintf "request %d answered" i)
                  true
                  (Result.is_ok (Protocol.response_result r))
              done;
              check bool "retries were needed" true
                (Client.retry_count rc > 0))))

let test_chaos_load_run_is_clean () =
  with_server
    ~tweak:(fun c ->
      { c with Server.jobs = Some 2; degrade_queue = 4; max_queue = 8 })
    (fun addr ->
      with_faults
        (fun () ->
          Fault.arm "pool.worker.crash" Fault.Raise (Fault.Every 7);
          Fault.arm "serve.compute.delay" (Fault.Delay 100) (Fault.Every 5);
          Fault.arm "serve.socket.stall" (Fault.Delay 150) (Fault.Every 9);
          Fault.arm "serve.socket.close" Fault.Raise (Fault.Every 11))
        (fun () ->
          let respawns_before = counter "pool.worker.respawns" in
          let spec =
            { (Loadgen.default_spec addr) with
              Loadgen.clients = 2;
              requests = 80;
              seed = 11;
              chaos = true;
              timeout_s = 5.0;
              retries = 4 }
          in
          let stats = Loadgen.run spec in
          check int "every request accounted for" 80 stats.Loadgen.requests;
          (* THE chaos pass criterion: answered or cleanly rejected,
             nothing hung, nothing unexplained *)
          check int "zero unanswered requests" 0 stats.Loadgen.failed;
          check bool "most requests fully answered" true
            (stats.Loadgen.ok + stats.Loadgen.degraded >= 40);
          check bool "the storm actually killed workers" true
            (counter "pool.worker.respawns" > respawns_before)))

let suites =
  [ ( "serve.cache",
      [ Alcotest.test_case "hit and miss" `Quick test_cache_hit_and_miss;
        Alcotest.test_case "LRU eviction at capacity" `Quick
          test_cache_eviction_at_capacity;
        Alcotest.test_case "single-flight computes once" `Quick
          test_cache_single_flight;
        Alcotest.test_case "failure does not poison the key" `Quick
          test_cache_failure_does_not_poison ] );
    ( "serve.protocol",
      [ Alcotest.test_case "rejects garbage with one-line errors" `Quick
          test_protocol_rejects_garbage;
        Alcotest.test_case "request round-trips through JSON" `Quick
          test_protocol_roundtrip;
        Alcotest.test_case "resilience envelope round-trips" `Quick
          test_protocol_resilience_envelope;
        Alcotest.test_case "distinct configs never collide" `Quick
          test_cache_keys_never_collide;
        Alcotest.test_case "key is content-addressed" `Quick
          test_cache_key_is_content_addressed ] );
    ( "serve.batch",
      [ Alcotest.test_case "groups concurrent simulate requests" `Quick
          test_batch_groups_concurrent_requests;
        Alcotest.test_case "a crashing leader never strands followers" `Quick
          test_batch_orphans_survive_leader_crash ] );
    ( "serve.daemon",
      [ Alcotest.test_case "cache hit is byte-identical" `Quick
          test_server_hit_is_byte_identical;
        Alcotest.test_case "repeat request does zero engine work" `Quick
          test_server_repeat_does_zero_engine_work;
        Alcotest.test_case "malformed requests never kill it" `Quick
          test_server_survives_malformed_requests;
        Alcotest.test_case "metrics endpoint" `Quick
          test_server_metrics_endpoint;
        Alcotest.test_case "drains on shutdown" `Quick
          test_server_drains_on_shutdown;
        Alcotest.test_case "load generator: no errors, cache hits" `Quick
          test_loadgen_against_live_server ] );
    ( "serve.resilience",
      [ Alcotest.test_case "delay fault action parses" `Quick
          test_fault_delay_action_parses;
        Alcotest.test_case "worker crash heals the pool" `Quick
          test_pool_worker_crash_heals;
        Alcotest.test_case "deadlines expire into structured errors" `Quick
          test_server_deadline_enforced;
        Alcotest.test_case "overload degrades, then sheds" `Quick
          test_server_degrades_then_sheds;
        Alcotest.test_case "oversized request lines are bounded" `Quick
          test_server_rejects_oversized_requests;
        Alcotest.test_case "watchdog reaps idle connections" `Quick
          test_server_watchdog_reaps_idle_connections;
        Alcotest.test_case "shutdown under load answers everything" `Quick
          test_server_shutdown_under_load;
        Alcotest.test_case "resilient client survives dropped replies" `Quick
          test_resilient_client_survives_dropped_replies;
        Alcotest.test_case "chaos load run: zero unanswered" `Quick
          test_chaos_load_run_is_clean ] ) ]
