(* The serve subsystem: the single-flight LRU result cache, the wire
   protocol's validation and cache keying, the simulate batcher, and a
   real in-process daemon exercised over TCP — byte-identical cache
   hits, zero engine work on repeats, malformed requests that never
   kill the connection, graceful drain, and the load generator. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

module Json = Bw_core.Json
module Cache = Bw_serve.Cache
module Protocol = Bw_serve.Protocol
module Server = Bw_serve.Server
module Client = Bw_serve.Client
module Metrics = Bw_obs.Metrics

(* --- cache ------------------------------------------------------------------ *)

let test_cache_hit_and_miss () =
  let c = Cache.create ~capacity:8 () in
  let computed = ref 0 in
  let f () = incr computed; 42 in
  let v1, how1 = Cache.find_or_compute c ~key:"k" f in
  let v2, how2 = Cache.find_or_compute c ~key:"k" f in
  check int "first value" 42 v1;
  check int "second value" 42 v2;
  check bool "first is a miss" true (how1 = `Miss);
  check bool "second is a hit" true (how2 = `Hit);
  check int "computed exactly once" 1 !computed

let test_cache_eviction_at_capacity () =
  let c = Cache.create ~capacity:2 () in
  ignore (Cache.find_or_compute c ~key:"a" (fun () -> 1));
  ignore (Cache.find_or_compute c ~key:"b" (fun () -> 2));
  (* refresh "a" so "b" is the least recently used *)
  check (Alcotest.option int) "peek refreshes a" (Some 1) (Cache.find c "a");
  ignore (Cache.find_or_compute c ~key:"c" (fun () -> 3));
  check bool "a survives" true (Cache.mem c "a");
  check bool "b evicted" false (Cache.mem c "b");
  check bool "c present" true (Cache.mem c "c");
  let s = Cache.stats c in
  check int "size at capacity" 2 s.Cache.size;
  check int "one eviction" 1 s.Cache.evictions

let test_cache_single_flight () =
  let c = Cache.create ~capacity:8 () in
  let computed = ref 0 in
  let m = Mutex.create () in
  let f () =
    Mutex.lock m;
    incr computed;
    Mutex.unlock m;
    Thread.delay 0.1;
    "value"
  in
  let results = Array.make 4 ("", `Miss) in
  let threads =
    Array.init 4 (fun i ->
        Thread.create
          (fun () -> results.(i) <- Cache.find_or_compute c ~key:"shared" f)
          ())
  in
  Array.iter Thread.join threads;
  check int "computed exactly once" 1 !computed;
  Array.iter
    (fun (v, _) -> check string "every caller got the value" "value" v)
    results;
  let misses =
    Array.fold_left
      (fun acc (_, how) -> if how = `Miss then acc + 1 else acc)
      0 results
  in
  check int "exactly one miss" 1 misses;
  check int "three joins" 3 (Cache.stats c).Cache.single_flight_joins

let test_cache_failure_does_not_poison () =
  let c = Cache.create ~capacity:4 () in
  (match Cache.find_or_compute c ~key:"k" (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "expected the computation's exception"
  | exception Failure msg -> check string "exception propagates" "boom" msg);
  check bool "nothing cached" false (Cache.mem c "k");
  let v, how = Cache.find_or_compute c ~key:"k" (fun () -> 7) in
  check int "retry succeeds" 7 v;
  check bool "retry is a miss" true (how = `Miss)

(* --- protocol --------------------------------------------------------------- *)

let test_protocol_rejects_garbage () =
  let expect_error line =
    match Protocol.request_of_string line with
    | Ok _ -> Alcotest.fail ("accepted: " ^ line)
    | Error msg ->
      check bool
        ("one-line error for " ^ line)
        false
        (String.contains msg '\n')
  in
  expect_error "this is not json";
  expect_error "{\"v\":1}";
  expect_error "{\"v\":1,\"op\":\"frobnicate\"}";
  expect_error "{\"v\":99,\"op\":\"ping\"}";
  expect_error "{\"v\":1,\"op\":\"analyze\",\"scale\":7,\"program\":\"x\"}";
  expect_error "{\"v\":1,\"op\":\"fuzz\",\"count\":0}"

let test_protocol_roundtrip () =
  let req =
    { (Protocol.default_request Protocol.Predict) with
      Protocol.id = Some "r1";
      program = Some "fig7";
      machines = [ "origin2000"; "exemplar" ];
      budget = `Analytic;
      scale = 2;
      no_cache = true }
  in
  match Protocol.request_of_json (Protocol.json_of_request req) with
  | Error msg -> Alcotest.fail msg
  | Ok req' ->
    check bool "round-trips" true (req = req')

let digest_program name =
  match Bw_core.Loader.load_program ~scale:1 name with
  | Ok p -> p
  | Error msg -> Alcotest.fail msg

let test_cache_keys_never_collide () =
  let p = Some (digest_program "read_loop") in
  let base = Protocol.default_request Protocol.Analyze in
  let variants =
    [ base;
      { base with Protocol.machines = [ "exemplar" ] };
      { base with Protocol.machines = [ "origin2000"; "exemplar" ] };
      { base with Protocol.engine = `Interpreted };
      { base with Protocol.op = Protocol.Predict };
      { base with Protocol.op = Protocol.Predict; budget = `Analytic };
      { base with Protocol.op = Protocol.Simulate };
      { base with Protocol.op = Protocol.Optimize };
      { base with
        Protocol.op = Protocol.Optimize;
        pipeline = { Protocol.default_pipeline with Protocol.lint = true } };
      { base with
        Protocol.op = Protocol.Optimize;
        pipeline = { Protocol.default_pipeline with Protocol.fuel = Some 2 } };
      { base with Protocol.op = Protocol.Fuzz };
      { base with Protocol.op = Protocol.Fuzz; seed = 2 } ]
  in
  let keys =
    List.map
      (fun r ->
        match Protocol.cache_key r ~program:p with
        | Some k -> k
        | None -> Alcotest.fail "expected a cache key")
      variants
  in
  let distinct = List.sort_uniq compare keys in
  check int "all keys distinct" (List.length keys) (List.length distinct);
  (* a different program gives a different key *)
  let other = Some (digest_program "write_loop") in
  check bool "program digest is in the key" false
    (Protocol.cache_key base ~program:p
    = Protocol.cache_key base ~program:other);
  (* scale is deliberately NOT in the key: it only affects the answer
     through the loaded program, whose digest already carries it *)
  check bool "same AST, different scale field: same key" true
    (Protocol.cache_key base ~program:p
    = Protocol.cache_key { base with Protocol.scale = 2 } ~program:p);
  (* uncacheable ops have no key *)
  List.iter
    (fun op ->
      check bool "no key" true
        (Protocol.cache_key (Protocol.default_request op) ~program:None = None))
    [ Protocol.Ping; Protocol.Metrics; Protocol.Shutdown ]

let test_cache_key_is_content_addressed () =
  (* the same program sent by registry name and as inline source keys
     identically: the key holds the IR digest, not the request text *)
  let p = digest_program "read_loop" in
  let source = Bw_ir.Pretty.program_to_string p in
  let by_name =
    { (Protocol.default_request Protocol.Analyze) with
      Protocol.program = Some "read_loop" }
  in
  let by_source =
    { (Protocol.default_request Protocol.Analyze) with
      Protocol.source = Some source }
  in
  let load r = match Protocol.load_program r with
    | Ok p -> Some p
    | Error msg -> Alcotest.fail msg
  in
  check bool "identical keys" true
    (Protocol.cache_key by_name ~program:(load by_name)
    = Protocol.cache_key by_source ~program:(load by_source))

(* --- batcher ----------------------------------------------------------------- *)

let test_batch_groups_concurrent_requests () =
  let batcher = Bw_serve.Batch.create ~jobs:1 () in
  let p = Bw_workloads.Simple_example.read_loop ~n:500 in
  let capture_count = ref 0 in
  let arrived = Atomic.make 0 in
  let o2000 = Bw_machine.Machine.origin2000 in
  let exemplar = Bw_machine.Machine.exemplar in
  let capture () =
    incr capture_count;
    (* wait until every thread is at least registering, so the drain
       waves see them all and replay once or twice, never four times *)
    while Atomic.get arrived < 4 do
      Thread.delay 0.01
    done;
    Thread.delay 0.2;
    Bw_exec.Run.capture p
  in
  let wants = [| [ o2000 ]; [ exemplar ]; [ o2000; exemplar ]; [ exemplar ] |] in
  let results = Array.make 4 [] in
  let threads =
    Array.init 4 (fun i ->
        Thread.create
          (fun () ->
            Atomic.incr arrived;
            results.(i) <-
              Bw_serve.Batch.simulate batcher ~key:"k" ~capture wants.(i))
          ())
  in
  Array.iter Thread.join threads;
  check int "capture ran once" 1 !capture_count;
  (* every thread got results for exactly its machines, bit-identical
     to a direct simulation *)
  Array.iteri
    (fun i machines ->
      check int "result per machine" (List.length machines)
        (List.length results.(i));
      List.iter2
        (fun machine r ->
          check bool "replay = direct" true
            (Bw_exec.Run.equal_result r (Bw_exec.Run.simulate ~machine p)))
        machines results.(i))
    wants

(* --- the daemon, over TCP ---------------------------------------------------- *)

let with_server f =
  let config =
    { (Server.default_config (Server.Tcp ("127.0.0.1", 0))) with
      Server.jobs = Some 2;
      cache_capacity = 64 }
  in
  let server = Server.start config in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () -> f (Server.addr server))

let analyze_line ?id () =
  let req =
    { (Protocol.default_request Protocol.Analyze) with
      Protocol.id;
      program = Some "read_loop" }
  in
  Json.to_string (Protocol.json_of_request req)

let test_server_hit_is_byte_identical () =
  with_server (fun addr ->
      let client = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          let line = analyze_line () in
          let r1 = Result.get_ok (Client.request_raw client line) in
          let r2 = Result.get_ok (Client.request_raw client line) in
          check bool "first not cached" false (Protocol.response_cached r1);
          check bool "second cached" true (Protocol.response_cached r2);
          let payload r =
            match Protocol.response_result r with
            | Ok j -> Json.to_string j
            | Error msg -> Alcotest.fail msg
          in
          check string "byte-identical result payload" (payload r1)
            (payload r2)))

let test_server_repeat_does_zero_engine_work () =
  with_server (fun addr ->
      let runs () =
        Metrics.counter_value (Metrics.counter "engine.compiled.runs")
      in
      let req =
        { (Protocol.default_request Protocol.Analyze) with
          Protocol.program = Some "fig7";
          machines = [ "origin2000"; "exemplar" ] }
      in
      let before = runs () in
      let r1 = Result.get_ok (Client.one_shot addr req) in
      check bool "first request ok" true
        (Result.is_ok (Protocol.response_result r1));
      let after_first = runs () in
      check bool "the miss did engine work" true (after_first > before);
      let r2 = Result.get_ok (Client.one_shot addr req) in
      check bool "second cached" true (Protocol.response_cached r2);
      check int "the hit did zero engine work" after_first (runs ()))

let test_server_survives_malformed_requests () =
  with_server (fun addr ->
      let client = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          let expect_error line =
            let r = Result.get_ok (Client.request_raw client line) in
            match Protocol.response_result r with
            | Ok _ -> Alcotest.fail ("server accepted: " ^ line)
            | Error msg ->
              check bool "structured one-line error" false
                (String.contains msg '\n')
          in
          expect_error "not json at all {{{";
          expect_error "{\"v\":1,\"op\":\"frobnicate\"}";
          expect_error "{\"v\":1,\"op\":\"analyze\"}";
          (* no program *)
          expect_error
            "{\"v\":1,\"op\":\"analyze\",\"program\":\"no_such_workload\"}";
          expect_error
            "{\"v\":1,\"op\":\"analyze\",\"program\":\"read_loop\",\
             \"machines\":[\"cray\"]}";
          (* ...and the same connection still serves valid requests *)
          let r =
            Result.get_ok
              (Client.request client (Protocol.default_request Protocol.Ping))
          in
          check bool "connection still alive" true
            (Result.is_ok (Protocol.response_result r))))

let test_server_metrics_endpoint () =
  with_server (fun addr ->
      ignore
        (Result.get_ok
           (Client.one_shot addr (Protocol.default_request Protocol.Ping)));
      let body = Result.get_ok (Client.fetch_metrics addr) in
      check bool "exposes serve_requests" true
        (let needle = "serve_requests" in
         let n = String.length needle and len = String.length body in
         let rec go i =
           i + n <= len && (String.sub body i n = needle || go (i + 1))
         in
         go 0))

let test_server_drains_on_shutdown () =
  let config = Server.default_config (Server.Tcp ("127.0.0.1", 0)) in
  let server = Server.start config in
  let addr = Server.addr server in
  let r =
    Result.get_ok
      (Client.one_shot addr (Protocol.default_request Protocol.Shutdown))
  in
  check bool "shutdown acknowledged" true
    (Result.is_ok (Protocol.response_result r));
  Server.wait server;
  (match Client.connect addr with
  | client ->
    (* a connect may still succeed transiently on some kernels; the
       server must not answer on it *)
    Client.close client
  | exception _ -> ());
  check bool "drained" true true

let test_loadgen_against_live_server () =
  with_server (fun addr ->
      let spec =
        { (Bw_serve.Loadgen.default_spec addr) with
          Bw_serve.Loadgen.clients = 2;
          requests = 60;
          seed = 3 }
      in
      let stats = Bw_serve.Loadgen.run spec in
      check int "every request answered" 60 stats.Bw_serve.Loadgen.requests;
      check int "no errors" 0 stats.Bw_serve.Loadgen.errors;
      check bool "the mixed stream hits the cache" true
        (stats.Bw_serve.Loadgen.hit_rate > 0.1))

let suites =
  [ ( "serve.cache",
      [ Alcotest.test_case "hit and miss" `Quick test_cache_hit_and_miss;
        Alcotest.test_case "LRU eviction at capacity" `Quick
          test_cache_eviction_at_capacity;
        Alcotest.test_case "single-flight computes once" `Quick
          test_cache_single_flight;
        Alcotest.test_case "failure does not poison the key" `Quick
          test_cache_failure_does_not_poison ] );
    ( "serve.protocol",
      [ Alcotest.test_case "rejects garbage with one-line errors" `Quick
          test_protocol_rejects_garbage;
        Alcotest.test_case "request round-trips through JSON" `Quick
          test_protocol_roundtrip;
        Alcotest.test_case "distinct configs never collide" `Quick
          test_cache_keys_never_collide;
        Alcotest.test_case "key is content-addressed" `Quick
          test_cache_key_is_content_addressed ] );
    ( "serve.batch",
      [ Alcotest.test_case "groups concurrent simulate requests" `Quick
          test_batch_groups_concurrent_requests ] );
    ( "serve.daemon",
      [ Alcotest.test_case "cache hit is byte-identical" `Quick
          test_server_hit_is_byte_identical;
        Alcotest.test_case "repeat request does zero engine work" `Quick
          test_server_repeat_does_zero_engine_work;
        Alcotest.test_case "malformed requests never kill it" `Quick
          test_server_survives_malformed_requests;
        Alcotest.test_case "metrics endpoint" `Quick
          test_server_metrics_endpoint;
        Alcotest.test_case "drains on shutdown" `Quick
          test_server_drains_on_shutdown;
        Alcotest.test_case "load generator: no errors, cache hits" `Quick
          test_loadgen_against_live_server ] ) ]
