(* Trace store: encode/decode round trips, and the PR's central
   guarantee — replaying a capture on any machine is bit-identical to
   simulating the program on that machine directly. *)

open Bw_machine
module Run = Bw_exec.Run

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let record = Alcotest.(triple int int int)

let collect store =
  let out = ref [] in
  Trace_store.iter store ~f:(fun kind addr bytes ->
      out := (kind, addr, bytes) :: !out);
  List.rev !out

let fill store recs =
  List.iter
    (fun (kind, addr, bytes) -> Trace_store.append store ~kind ~addr ~bytes)
    recs

(* --- round trips ------------------------------------------------------------ *)

let test_roundtrip_edge_records () =
  let t = Trace_store.create () in
  (* zero addresses, huge addresses, decreasing addresses (negative
     deltas), width changes and repeats *)
  let recs =
    [ (0, 0, 8); (1, 0, 8); (0, max_int / 2, 4); (1, 5, 4); (0, 5, 1);
      (1, 1 lsl 40, 128); (0, 7, 128); (1, 6, 8) ]
  in
  fill t recs;
  check (Alcotest.list record) "records" recs (collect t);
  check int "count" (List.length recs) (Trace_store.records t)

let test_roundtrip_across_tiny_chunks () =
  (* minimum-size chunks: one record per chunk, so decoder state (the
     delta base and the sticky width) must flow across every boundary *)
  let t = Trace_store.create ~chunk_bytes:Trace_store.max_record_bytes () in
  let rng = Random.State.make [| 3; 14 |] in
  let recs =
    List.init 1000 (fun _ ->
        ( Random.State.int rng 2,
          Random.State.full_int rng (1 lsl 40),
          8 * (1 + Random.State.int rng 4) ))
  in
  fill t recs;
  check (Alcotest.list record) "records" recs (collect t);
  check bool "many chunks" true (Trace_store.chunks t > 100)

let test_stride1_compression () =
  let t = Trace_store.create () in
  fill t (List.init 10_000 (fun i -> (0, 8 * i, 8)));
  check bool
    (Printf.sprintf "%.2f bytes/record on a stride-1 sweep"
       (Trace_store.bytes_per_record t))
    true
    (Trace_store.bytes_per_record t < 3.0)

let qcheck_roundtrip =
  let open QCheck in
  let rec_gen =
    Gen.map3
      (fun k a b -> ((if k then 1 else 0), a, 1 + b))
      Gen.bool
      Gen.(oneof [ int_range 0 4096; int_range 0 (1 lsl 50) ])
      Gen.(int_range 0 256)
  in
  let print recs =
    String.concat "; "
      (List.map (fun (k, a, b) -> Printf.sprintf "%d:%d/%d" k a b) recs)
  in
  Test.make ~count:200 ~name:"encode/decode round trip"
    (make ~print Gen.(list_size (int_range 0 400) rec_gen))
    (fun recs ->
      let t = Trace_store.create ~chunk_bytes:64 () in
      fill t recs;
      collect t = recs && Trace_store.records t = List.length recs)

(* --- replay bit-identity ---------------------------------------------------- *)

let machines = [ Bw_machine.Machine.origin2000; Bw_machine.Machine.exemplar ]

(* Machines differing in everything a capture must be independent of:
   write policy, page translation, and array layout stagger. *)
let variant_machines =
  [ Machine.origin2000;
    { Machine.origin2000 with
      Machine.name = "origin-wt";
      cache_write_policy = Cache.Write_through };
    { Machine.origin2000 with
      Machine.name = "origin-paged";
      paging = Machine.Random_pages { page_bytes = 4096; seed = 7 } };
    { Machine.exemplar with
      Machine.name = "exemplar-stagger";
      array_stagger_bytes = Machine.exemplar.Machine.array_stagger_bytes + 32 } ]

let check_replay ~what ~engine p =
  let c = Run.capture ~engine p in
  List.iter
    (fun machine ->
      let direct = Run.simulate ~engine ~machine p in
      let replayed = Run.replay ~machine c in
      check bool
        (Printf.sprintf "%s on %s" what machine.Machine.name)
        true
        (Run.equal_result direct replayed))
    machines

let test_registry_replay_compiled () =
  List.iter
    (fun e ->
      check_replay ~what:e.Bw_workloads.Registry.name ~engine:`Compiled
        (e.Bw_workloads.Registry.build ~scale:1))
    Bw_workloads.Registry.all

let test_registry_replay_interpreted () =
  List.iter
    (fun e ->
      check_replay ~what:e.Bw_workloads.Registry.name ~engine:`Interpreted
        (e.Bw_workloads.Registry.build ~scale:1))
    Bw_workloads.Registry.all

let qcheck_replay_variants =
  QCheck.Test.make ~count:25
    ~name:"replay = simulate (generated programs, machine variants)"
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 100_000))
    (fun seed ->
      let p = Bw_qa.Gen.generate ~seed ~size:4 in
      let c = Run.capture p in
      List.for_all
        (fun machine ->
          Run.equal_result (Run.simulate ~machine p) (Run.replay ~machine c))
        variant_machines)

let test_simulate_many_parallel_deterministic () =
  let p = Bw_workloads.Kernels.mm ~order:Bw_workloads.Kernels.Jki ~n:48 () in
  let ms = variant_machines @ [ Machine.exemplar ] in
  let serial = List.map (fun machine -> Run.simulate ~machine p) ms in
  let fanned = Run.simulate_many ~jobs:4 ~machines:ms p in
  List.iter2
    (fun a b ->
      check bool
        (Printf.sprintf "jobs:4 result for %s" a.Run.machine.Machine.name)
        true (Run.equal_result a b))
    serial fanned

(* --- reuse fast path vs exact simulator ------------------------------------- *)

let l2_machine l2_kb =
  { Machine.origin2000 with
    Machine.name = Printf.sprintf "L2=%dKB" l2_kb;
    caches =
      [ { Cache.size_bytes = 2 * 1024; line_bytes = 32; associativity = 2 };
        { Cache.size_bytes = l2_kb * 1024; line_bytes = 128; associativity = 2 } ] }

let test_reuse_fast_path_vs_exact () =
  let p = Bw_workloads.Kernels.mm ~order:Bw_workloads.Kernels.Jki ~n:64 () in
  let c = Run.capture p in
  let reuse = Run.reuse_of_capture ~granularity:128 c in
  let exact_lines l2_kb =
    Cache.memory_lines_in (Run.replay ~machine:(l2_machine l2_kb) c).Run.cache
  in
  let predicted l2_kb =
    Reuse.misses reuse ~capacity_blocks:(l2_kb * 1024 / 128)
  in
  (* Once the working set fits, both models count exactly the compulsory
     lines — equality, not tolerance. *)
  List.iter
    (fun kb ->
      check int (Printf.sprintf "%d KB: compulsory only" kb) (exact_lines kb)
        (predicted kb))
    [ 64; 128; 256; 1024 ];
  (* Well below the working set the models agree within a few percent.
     (The 32 KB knee is deliberately excluded: there the 2-way cache
     retains the set-partitioned matrix that global LRU thrashes, a
     genuine associativity effect, not a profiler error.) *)
  let exact = float_of_int (exact_lines 16) in
  let pred = float_of_int (predicted 16) in
  check bool
    (Printf.sprintf "16 KB: |%.0f - %.0f| within 5%%" pred exact)
    true
    (Float.abs (pred -. exact) /. exact < 0.05)

let suites =
  [ ( "machine.trace_store",
      [ Alcotest.test_case "edge records" `Quick test_roundtrip_edge_records;
        Alcotest.test_case "tiny chunks" `Quick test_roundtrip_across_tiny_chunks;
        Alcotest.test_case "stride-1 compression" `Quick test_stride1_compression;
        QCheck_alcotest.to_alcotest ~long:false qcheck_roundtrip ] );
    ( "exec.replay",
      [ Alcotest.test_case "registry, compiled engine" `Slow
          test_registry_replay_compiled;
        Alcotest.test_case "registry, interpreted engine" `Slow
          test_registry_replay_interpreted;
        QCheck_alcotest.to_alcotest ~long:false qcheck_replay_variants;
        Alcotest.test_case "simulate_many jobs:4 = serial" `Quick
          test_simulate_many_parallel_deterministic;
        Alcotest.test_case "reuse fast path vs exact sweep" `Quick
          test_reuse_fast_path_vs_exact ] )
  ]
