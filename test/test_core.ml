let check = Alcotest.check
let bool = Alcotest.bool

let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  go 0

(* --- Table --------------------------------------------------------------- *)

let test_table_render () =
  let t =
    Bw_core.Table.make ~title:"t" ~header:[ "a"; "b" ]
      ~notes:[ "n1" ]
      [ [ "x"; "1" ]; [ "longer"; "22" ] ]
  in
  let s = Bw_core.Table.to_string t in
  check bool "title" true (String.length s > 0);
  check bool "contains row" true (contains ~affix:"longer" s);
  check bool "contains note" true (contains ~affix:"n1" s)

let test_table_formatters () =
  check Alcotest.string "f1" "1.5" (Bw_core.Table.f1 1.52);
  check Alcotest.string "mb_s" "312 MB/s" (Bw_core.Table.mb_s 312e6);
  check Alcotest.string "ms" "2.50 ms" (Bw_core.Table.ms 0.0025);
  check Alcotest.string "pct" "84%" (Bw_core.Table.pct 0.84)

(* --- Balance ---------------------------------------------------------------- *)

let test_machine_balance_row () =
  let row = Bw_core.Balance.of_machine Bw_machine.Machine.origin2000 in
  check Alcotest.(list string) "boundaries"
    [ "L1-Reg"; "L2-L1"; "Mem-L2" ]
    (List.map fst row.Bw_core.Balance.per_boundary)

let test_ratios_and_bound () =
  let machine = Bw_machine.Machine.origin2000 in
  let p = Bw_workloads.Simple_example.read_loop ~n:300_000 in
  let row = Bw_core.Balance.of_program ~machine p in
  let resource, ratio = Bw_core.Balance.worst_ratio row machine in
  check Alcotest.string "memory binds" "Mem-L2" resource;
  check bool "ratio ~10 (8 bytes/flop vs 0.8)" true (ratio > 8.0 && ratio < 12.0);
  let u = Bw_core.Balance.cpu_utilisation_bound row machine in
  check bool "bound ~1/ratio" true (Float.abs ((1.0 /. ratio) -. u) < 1e-9)

(* --- Experiments (smoke at tiny scale) ----------------------------------------- *)

let test_all_experiments_run () =
  List.iter
    (fun (id, f) ->
      let t = f ?scale:(Some 1) () in
      if t.Bw_core.Table.rows = [] then Alcotest.failf "%s: empty table" id)
    Bw_core.Experiments.all

let test_fig4_table_contents () =
  let t = Bw_core.Experiments.fig4 ~scale:1 () in
  match t.Bw_core.Table.rows with
  | [ unfused; ew; bw ] ->
    check Alcotest.string "unfused 20" "20" (List.nth unfused 1);
    check Alcotest.string "edge-weighted 8" "8" (List.nth ew 1);
    check Alcotest.string "bandwidth-minimal 7" "7" (List.nth bw 1);
    check Alcotest.string "edge weight of ew optimum" "2" (List.nth ew 2)
  | _ -> Alcotest.fail "expected three rows"

let test_fig3_shape () =
  let t = Bw_core.Experiments.fig3 ~scale:1 () in
  (* parse back "NNN MB/s" *)
  let value row col =
    match List.nth_opt row col with
    | Some cell -> float_of_string (List.hd (String.split_on_char ' ' cell))
    | None -> Alcotest.fail "missing cell"
  in
  let rows = t.Bw_core.Table.rows in
  let origin = List.map (fun r -> value r 1) rows in
  let lo = List.fold_left min infinity origin in
  let hi = List.fold_left max neg_infinity origin in
  check bool
    (Printf.sprintf "origin flat: %.0f..%.0f within 20%%" lo hi)
    true
    (hi /. lo < 1.25);
  (* the 3w6r row dips on the Exemplar *)
  let row_of name = List.find (fun r -> List.hd r = name) rows in
  let dip = value (row_of "3w6r") 2 in
  let typical = value (row_of "2w5r") 2 in
  check bool
    (Printf.sprintf "3w6r %.0f << 2w5r %.0f" dip typical)
    true
    (dip < 0.7 *. typical)

let test_fig8_speedup_band () =
  let t = Bw_core.Experiments.fig8 ~scale:1 () in
  List.iter
    (fun row ->
      let speedup = float_of_string (List.nth row 4) in
      check bool
        (Printf.sprintf "%s speedup %.2f in [1.5, 2.5]" (List.hd row) speedup)
        true
        (speedup > 1.5 && speedup < 2.5))
    t.Bw_core.Table.rows

let test_sp_utilisation_band () =
  let t = Bw_core.Experiments.sp_utilisation ~scale:1 () in
  let high =
    List.filter
      (fun row ->
        let cell = List.nth row 1 in
        let v = int_of_string (String.sub cell 0 (String.length cell - 1)) in
        v >= 84)
      t.Bw_core.Table.rows
  in
  check bool "at least 5 of 7 subroutines >= 84%" true (List.length high >= 5)

(* --- Regroup (extension) ---------------------------------------------------------- *)

let regroupable_program n =
  Bw_ir.Parser.parse_program_exn
    (Printf.sprintf
       {|
       program complexmul
         real re[%d] = hash(9)
         real im[%d] = hash(9)
         real outp[%d]
         live_out outp
         for i = 1, %d
           outp[i] = re[i] * re[i] + im[i] * im[i]
         end for
       end
       |}
       n n n n)

let test_regroup_candidates () =
  let p = regroupable_program 64 in
  check
    Alcotest.(list (pair string string))
    "re/im grouped" [ ("re", "im") ]
    (Bw_transform.Regroup.candidates p)

let test_regroup_semantics () =
  let p = regroupable_program 128 in
  match Bw_transform.Regroup.regroup_pair p "re" "im" with
  | Error e -> Alcotest.fail e
  | Ok p' ->
    Bw_ir.Check.check_exn p';
    let o1 = Bw_exec.Interp.run p and o2 = Bw_exec.Interp.run p' in
    check bool "identical behaviour" true
      (Bw_exec.Interp.equal_observation o1 o2);
    check bool "original decls gone" true
      (Bw_ir.Ast.find_decl p' "re" = None && Bw_ir.Ast.find_decl p' "im" = None)

let test_regroup_improves_locality () =
  (* 128-byte stride: separately the two arrays touch one L2 line per
     access each; interleaved, the pair shares a line *)
  let p =
    Bw_ir.Parser.parse_program_exn
      {|
      program strided
        real re[65536] = hash(3)
        real im[65536] = hash(3)
        real s
        live_out s
        for i = 1, 4096
          s = s + re[i*16] * im[i*16]
        end for
      end
      |}
  in
  let p', pairs = Bw_transform.Regroup.regroup_all p in
  check Alcotest.int "one pair" 1 (List.length pairs);
  let machine = Bw_machine.Machine.origin2000 in
  let traffic q =
    Bw_machine.Timing.memory_bytes
      (Bw_exec.Run.simulate ~machine q).Bw_exec.Run.cache
  in
  let before = traffic p and after = traffic p' in
  check bool
    (Printf.sprintf "traffic %d -> %d" before after)
    true
    (float_of_int after < 0.7 *. float_of_int before);
  let o1 = Bw_exec.Interp.run p and o2 = Bw_exec.Interp.run p' in
  check bool "behaviour preserved" true (Bw_exec.Interp.equal_observation o1 o2)

let test_regroup_rejects_live_out () =
  let p =
    Bw_ir.Parser.parse_program_exn
      {|
      program keep
        real a[16] = zero
        real b[16] = zero
        live_out a, b
        for i = 1, 16
          a[i] = b[i]
        end for
      end
      |}
  in
  check Alcotest.(list (pair string string)) "no candidates" []
    (Bw_transform.Regroup.candidates p)

let test_regroup_rejects_mismatched_init () =
  let p =
    Bw_ir.Parser.parse_program_exn
      {|
      program mism
        real a[16] = hash(1)
        real b[16] = hash(2)
        real s
        live_out s
        for i = 1, 16
          s = s + a[i] * b[i]
        end for
      end
      |}
  in
  match Bw_transform.Regroup.regroup_pair p "a" "b" with
  | Ok _ -> Alcotest.fail "expected rejection: differing initialisers"
  | Error _ -> ()

(* --- Advisor ------------------------------------------------------------------- *)

let test_advisor_fig7 () =
  let machine = Bw_machine.Machine.origin2000 in
  (* res (5.6 MB) must overflow the 4 MB L2 for fusion to matter *)
  let p = Bw_workloads.Fig7.original ~n:700_000 in
  let r = Bw_core.Advisor.diagnose ~machine p in
  check Alcotest.string "memory bound" "Mem-L2" r.Bw_core.Advisor.binding_resource;
  check bool "memory demand high" true (r.Bw_core.Advisor.memory_demand_ratio > 5.0);
  check bool "has suggestions" true (r.Bw_core.Advisor.suggestions <> []);
  (* the best suggestion should reach the fully optimised traffic level *)
  let best = List.hd r.Bw_core.Advisor.suggestions in
  check bool "best saves >= 40%" true
    (float_of_int best.Bw_core.Advisor.traffic_after
    < 0.6 *. float_of_int best.Bw_core.Advisor.traffic_before);
  (* the suggested program is directly usable and equivalent *)
  let o1 = Bw_exec.Interp.run p in
  let o2 = Bw_exec.Interp.run best.Bw_core.Advisor.apply in
  check bool "suggestion preserves semantics" true
    (Bw_exec.Interp.equal_observation o1 o2)

let test_advisor_quiet_when_nothing_helps () =
  (* a single already-minimal streaming loop *)
  let p = Bw_workloads.Simple_example.read_loop ~n:50_000 in
  let machine = Bw_machine.Machine.origin2000 in
  let r = Bw_core.Advisor.diagnose ~machine p in
  check bool "no false suggestions" true (r.Bw_core.Advisor.suggestions = [])

let test_advisor_suggests_tiling_for_mm () =
  let machine =
    { Bw_machine.Machine.origin2000 with
      Bw_machine.Machine.name = "small";
      caches =
        [ { Bw_machine.Cache.size_bytes = 2048; line_bytes = 32; associativity = 2 };
          { Bw_machine.Cache.size_bytes = 64 * 1024;
            line_bytes = 128;
            associativity = 2 } ] }
  in
  let p = Bw_workloads.Kernels.mm ~order:Bw_workloads.Kernels.Jki ~n:96 () in
  let r = Bw_core.Advisor.diagnose ~machine p in
  check bool "tiling suggested" true
    (List.exists
       (fun s ->
         contains ~affix:"tile" s.Bw_core.Advisor.action)
       r.Bw_core.Advisor.suggestions)

(* --- latency model -------------------------------------------------------------- *)

let test_latency_model () =
  let machine = Bw_machine.Machine.origin2000 in
  let p = Bw_workloads.Stride_kernels.kernel ~writes:1 ~reads:1 ~n:50_000 in
  let r = Bw_exec.Run.simulate ~machine p in
  let t overlap =
    Bw_machine.Timing.predict_with_latency machine r.Bw_exec.Run.cache
      r.Bw_exec.Run.counters ~miss_latency:400e-9 ~overlap
  in
  check bool "monotone in overlap" true (t 0.0 > t 0.5 && t 0.5 > t 1.0);
  check bool "full overlap = bandwidth bound" true
    (Float.abs (t 1.0 -. r.Bw_exec.Run.breakdown.Bw_machine.Timing.total) < 1e-12);
  Alcotest.check_raises "overlap range"
    (Invalid_argument "Timing.predict_with_latency: overlap must be in [0,1]")
    (fun () -> ignore (t 1.5))

(* --- Harness / bench JSON ------------------------------------------------- *)

(* The --json output must parse and name every experiment table, without
   paying for an actual full-scale run: build the document from fake
   outcomes covering Experiments.all, round-trip it through the JSON
   printer and parser, and check every table id survives. *)
let test_bench_json_roundtrip () =
  let module J = Bw_core.Bench_json in
  let outcomes =
    List.map
      (fun (id, _) ->
        { Bw_core.Harness.id;
          title = "title of " ^ id;
          body = "body\n";
          seconds = 0.25;
          status = Bw_core.Harness.Ok
        })
      Bw_core.Experiments.all
  in
  let doc =
    Bw_core.Harness.json_of_results ~scale:2 ~jobs:3
      ~micro:[ ("micro cache: stream 64k accesses", 123456.7) ]
      outcomes
  in
  let parsed = J.parse (J.to_string doc) in
  check (Alcotest.option Alcotest.int) "schema_version" (Some 5)
    (Option.bind (J.member "schema_version" parsed) (function
      | J.Int i -> Some i
      | _ -> None));
  (match Option.bind (J.member "tables" parsed) J.to_list with
  | None -> Alcotest.fail "tables is not a list"
  | Some tables ->
    List.iter
      (fun t ->
        check (Alcotest.option Alcotest.string) "status ok" (Some "ok")
          (Option.bind (J.member "status" t) J.to_str);
        check bool "no error field on ok tables" true
          (J.member "error" t = None))
      tables);
  let ids_in_json =
    match Option.bind (J.member "tables" parsed) J.to_list with
    | None -> Alcotest.fail "tables is not a list"
    | Some tables ->
      List.filter_map
        (fun t -> Option.bind (J.member "id" t) J.to_str)
        tables
  in
  List.iter
    (fun (id, _) ->
      check bool (Printf.sprintf "table id %S present" id) true
        (List.mem id ids_in_json))
    Bw_core.Experiments.all;
  check Alcotest.int "no extra tables" (List.length Bw_core.Experiments.all)
    (List.length ids_in_json);
  let seconds =
    Option.bind (J.member "tables" parsed) J.to_list
    |> Option.map (List.filter_map (fun t ->
           Option.bind (J.member "seconds" t) J.to_float))
  in
  check (Alcotest.option (Alcotest.list (Alcotest.float 1e-9))) "seconds"
    (Some (List.map (fun _ -> 0.25) outcomes))
    seconds;
  match Option.bind (J.member "micro" parsed) J.to_list with
  | Some [ m ] ->
    check (Alcotest.option Alcotest.string) "micro name"
      (Some "micro cache: stream 64k accesses")
      (Option.bind (J.member "name" m) J.to_str)
  | _ -> Alcotest.fail "micro is not a one-element list"

(* The harness must return results in input order even when racing
   domains, and jobs=1 must behave identically. *)
let test_harness_order () =
  let mk id =
    ( id,
      fun ?scale () ->
        ignore scale;
        Bw_core.Table.make ~title:id ~header:[ "c" ] [ [ id ] ] )
  in
  let experiments = List.map mk [ "t1"; "t2"; "t3"; "t4"; "t5" ] in
  let serial = Bw_core.Harness.run ~jobs:1 experiments in
  let parallel = Bw_core.Harness.run ~jobs:4 experiments in
  let ids results = List.map (fun o -> o.Bw_core.Harness.id) results in
  check (Alcotest.list Alcotest.string) "serial order"
    [ "t1"; "t2"; "t3"; "t4"; "t5" ] (ids serial);
  check (Alcotest.list Alcotest.string) "parallel order" (ids serial)
    (ids parallel);
  List.iter2
    (fun a b ->
      check Alcotest.string "same body" a.Bw_core.Harness.body
        b.Bw_core.Harness.body)
    serial parallel

let mk_table id =
  ( id,
    fun ?scale () ->
      ignore scale;
      Bw_core.Table.make ~title:id ~header:[ "c" ] [ [ id ] ] )

let mk_raiser id msg =
  (id, fun ?scale () -> ignore scale; failwith msg)

(* Regression for the old `failwith "Harness.run: missing result"` /
   dead-domain behaviour: one raising thunk must produce an Error
   outcome for that table only, and every sibling table must render
   byte-identically to a serial run — under both jobs=1 and jobs=4. *)
let test_harness_raising_thunk () =
  let experiments =
    [ mk_table "a1"; mk_raiser "boom" "table exploded"; mk_table "a2";
      mk_table "a3"; mk_table "a4" ]
  in
  let good = Bw_core.Harness.run ~jobs:1 [ mk_table "a1"; mk_table "a2"; mk_table "a3"; mk_table "a4" ] in
  List.iter
    (fun jobs ->
      let outcomes = Bw_core.Harness.run ~jobs experiments in
      check Alcotest.int "five outcomes" 5 (List.length outcomes);
      check (Alcotest.list Alcotest.string) "order preserved"
        [ "a1"; "boom"; "a2"; "a3"; "a4" ]
        (List.map (fun o -> o.Bw_core.Harness.id) outcomes);
      (match (List.nth outcomes 1).Bw_core.Harness.status with
      | Bw_core.Harness.Error msg ->
        check bool "message mentions the failure" true
          (contains ~affix:"table exploded" msg)
      | Bw_core.Harness.Ok -> Alcotest.fail "raising thunk reported Ok");
      check bool "all_ok is false" false (Bw_core.Harness.all_ok outcomes);
      let siblings =
        List.filter (fun o -> o.Bw_core.Harness.id <> "boom") outcomes
      in
      List.iter2
        (fun s g ->
          check bool (s.Bw_core.Harness.id ^ " ok") true (Bw_core.Harness.ok s);
          check Alcotest.string "sibling body matches serial run"
            g.Bw_core.Harness.body s.Bw_core.Harness.body)
        siblings good)
    [ 1; 4 ]

(* A worker domain that dies outright (injected harness.worker fault)
   leaves a claimed-but-unfinished slot; the post-join sweep must retry
   it on a surviving domain so every table still comes back Ok. *)
let test_harness_worker_death_retried () =
  Bw_obs.Fault.reset ();
  Bw_obs.Fault.arm "harness.worker" Bw_obs.Fault.Raise (Bw_obs.Fault.Nth 1);
  Fun.protect ~finally:Bw_obs.Fault.reset @@ fun () ->
  let experiments = List.map mk_table [ "w1"; "w2"; "w3"; "w4"; "w5" ] in
  let outcomes = Bw_core.Harness.run ~jobs:3 experiments in
  check Alcotest.int "five outcomes" 5 (List.length outcomes);
  check bool "all recovered" true (Bw_core.Harness.all_ok outcomes);
  check (Alcotest.list Alcotest.string) "order preserved"
    [ "w1"; "w2"; "w3"; "w4"; "w5" ]
    (List.map (fun o -> o.Bw_core.Harness.id) outcomes);
  check bool "the fault actually fired" true
    (Bw_obs.Fault.fires "harness.worker" = 1)

(* Error outcomes flow into the JSON document as status/error fields
   and survive a print/parse round-trip next to ok tables. *)
let test_bench_json_error_outcomes () =
  let module J = Bw_core.Bench_json in
  let outcomes =
    [ { Bw_core.Harness.id = "good";
        title = "t";
        body = "b\n";
        seconds = 0.5;
        status = Bw_core.Harness.Ok };
      { Bw_core.Harness.id = "bad";
        title = "";
        body = "";
        seconds = 0.0;
        status = Bw_core.Harness.Error "Failure(\"kaboom\")" } ]
  in
  let doc = Bw_core.Harness.json_of_results ~scale:1 ~jobs:2 ~micro:[] outcomes in
  let parsed = J.parse (J.to_string doc) in
  match Option.bind (J.member "tables" parsed) J.to_list with
  | Some [ good; bad ] ->
    check (Alcotest.option Alcotest.string) "good status" (Some "ok")
      (Option.bind (J.member "status" good) J.to_str);
    check bool "good has no error" true (J.member "error" good = None);
    check (Alcotest.option Alcotest.string) "bad status" (Some "error")
      (Option.bind (J.member "status" bad) J.to_str);
    check (Alcotest.option Alcotest.string) "bad error message"
      (Some "Failure(\"kaboom\")")
      (Option.bind (J.member "error" bad) J.to_str)
  | _ -> Alcotest.fail "expected two tables"

(* Property: whatever bytes end up in an outcome's id/title/body —
   quotes, backslashes, newlines, control characters — the bench JSON
   document must round-trip them exactly through print + parse. *)
let prop_bench_json_string_roundtrip =
  let module J = Bw_core.Bench_json in
  let nasty_string =
    QCheck.Gen.(
      string_size ~gen:
        (oneofl
           [ 'a'; 'z'; ' '; '"'; '\\'; '\n'; '\r'; '\t'; '\x01'; '{'; ']' ])
        (int_range 0 30))
  in
  let arb =
    QCheck.make
      ~print:(fun (a, b, c) -> Printf.sprintf "(%S, %S, %S)" a b c)
      QCheck.Gen.(triple nasty_string nasty_string nasty_string)
  in
  QCheck.Test.make ~count:200 ~name:"bench json round-trips nasty strings" arb
    (fun (id, title, body) ->
      let doc =
        Bw_core.Harness.json_of_results ~scale:1 ~jobs:1 ~micro:[]
          [ { Bw_core.Harness.id;
              title;
              body;
              seconds = 0.0;
              status = Bw_core.Harness.Ok } ]
      in
      let parsed = J.parse (J.to_string doc) in
      match Option.bind (J.member "tables" parsed) J.to_list with
      | Some [ t ] ->
        let field k = Option.bind (J.member k t) J.to_str in
        field "id" = Some id && field "title" = Some title
        && field "body" = Some body
      | _ -> false)

let test_bench_json_parse_errors () =
  let module J = Bw_core.Bench_json in
  let fails s =
    match J.parse s with
    | exception J.Parse_error _ -> true
    | _ -> false
  in
  check bool "trailing garbage" true (fails "{} x");
  check bool "unterminated string" true (fails "\"abc");
  check bool "bare word" true (fails "nope");
  check Alcotest.string "escapes round-trip" "a\"b\\c\nd"
    (match J.parse (J.to_string (J.String "a\"b\\c\nd")) with
    | J.String s -> s
    | _ -> Alcotest.fail "not a string")

let suites =
  [ ( "core.table",
      [ Alcotest.test_case "render" `Quick test_table_render;
        Alcotest.test_case "formatters" `Quick test_table_formatters ] );
    ( "core.balance",
      [ Alcotest.test_case "machine row" `Quick test_machine_balance_row;
        Alcotest.test_case "ratios and bound" `Quick test_ratios_and_bound ] );
    ( "core.experiments",
      [ Alcotest.test_case "all run" `Slow test_all_experiments_run;
        Alcotest.test_case "fig4 contents" `Quick test_fig4_table_contents;
        Alcotest.test_case "fig3 shape" `Slow test_fig3_shape;
        Alcotest.test_case "fig8 band" `Slow test_fig8_speedup_band;
        Alcotest.test_case "sp band" `Slow test_sp_utilisation_band ] );
    ( "core.bench",
      [ Alcotest.test_case "json round-trip covers all tables" `Quick
          test_bench_json_roundtrip;
        Alcotest.test_case "json parse errors" `Quick
          test_bench_json_parse_errors;
        QCheck_alcotest.to_alcotest ~long:false
          prop_bench_json_string_roundtrip;
        Alcotest.test_case "harness deterministic order" `Quick
          test_harness_order;
        Alcotest.test_case "raising thunk confined to its table" `Quick
          test_harness_raising_thunk;
        Alcotest.test_case "worker domain death retried" `Quick
          test_harness_worker_death_retried;
        Alcotest.test_case "error outcomes in json" `Quick
          test_bench_json_error_outcomes ] );
    ( "core.advisor",
      [ Alcotest.test_case "fig7 diagnosis" `Slow test_advisor_fig7;
        Alcotest.test_case "quiet when nothing helps" `Quick test_advisor_quiet_when_nothing_helps;
        Alcotest.test_case "suggests tiling for mm" `Slow test_advisor_suggests_tiling_for_mm ] );
    ( "machine.latency",
      [ Alcotest.test_case "latency tolerance model" `Quick test_latency_model ] );
    ( "transform.regroup",
      [ Alcotest.test_case "candidates" `Quick test_regroup_candidates;
        Alcotest.test_case "semantics" `Quick test_regroup_semantics;
        Alcotest.test_case "locality" `Quick test_regroup_improves_locality;
        Alcotest.test_case "rejects live-out" `Quick test_regroup_rejects_live_out;
        Alcotest.test_case "rejects mismatched init" `Quick test_regroup_rejects_mismatched_init ] )
  ]
