(* The .bw surface-language front end and the data-layout pass.

   - positioned parser: accepts the legacy grammar, reports every
     diagnostic with an exact line and column (pinned strings below);
   - round trip: generated programs print and re-parse to an equal AST
     through BOTH parser paths (QCheck over 100 seeds);
   - golden renderer: deterministic, byte-identical re-rendering;
   - layout pass: padding/splitting/transposition preserve observable
     behaviour (differential validation + Preserve lint) and cut
     simulated memory traffic on random-page-placement machines. *)

open Bw_ir
module Parse = Bw_lang.Parse
module Layout = Bw_transform.Layout

let check = Alcotest.check

(* --- the positioned parser ------------------------------------------------ *)

let parse_ok src =
  match Parse.parse_program src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse failed: %s" (Parse.error_to_string e)

let expect_error src expected =
  match Parse.parse_program src with
  | Ok _ -> Alcotest.failf "expected %S, parse succeeded" expected
  | Error e ->
    check Alcotest.string "pinned rendering" expected (Parse.error_to_string e)

let test_accepts_legacy_grammar () =
  let p =
    parse_ok
      "program two\n\
      \  real a[8] = hash(1)\n\
      \  real s\n\
      \  live_out s\n\
       for i = 1, 8\n\
      \  if (s > 2.0 and a[i] < 4.0)\n\
      \    s = s + a[i]\n\
      \  end if\n\
       end for\n\
       print s\n\
       end"
  in
  check Alcotest.string "name" "two" p.Ast.prog_name;
  check Alcotest.int "stmts" 2 (List.length p.Ast.body)

let test_error_positions () =
  (* every diagnostic is one line with an exact line:column anchor *)
  expect_error "program p\n  real a[4]\n  live_out a\na[1] = b\nend"
    "4:8: undeclared variable 'b'";
  expect_error "program p\n  real a[4]\n  live_out a\nx[1] = 2.0\nend"
    "4:1: undeclared array 'x'";
  expect_error "program p\n  real a[4]\n  real s\n  live_out s\ns = a\nend"
    "5:5: array 'a' used without subscripts";
  expect_error "program p\n  real s\n  live_out s\ns[1] = 2.0\nend"
    "4:1: scalar 's' cannot be subscripted";
  expect_error "program p\n  real a[4,4]\n  live_out a\na[1] = 2.0\nend"
    "4:1: array 'a' has 2 dimension(s), found 1 subscript(s)";
  expect_error "program p\n  real a[4]\n  real a\n  live_out a\nend"
    "3:8: duplicate declaration of 'a'";
  expect_error "program p\n  real a[4]\n  live_out a, b\nend"
    "3:15: live_out name 'b' is not declared";
  expect_error
    "program p\n  real a[4]\n  live_out a\nfor i = 1, 4\n  i = 2\nend for\nend"
    "5:3: loop index 'i' cannot be assigned";
  expect_error
    "program p\n  real i\n  live_out i\nfor i = 1, 4\nend for\nend"
    "4:5: loop index 'i' shadows a declaration"

let test_lex_error_position () =
  expect_error "program p\n  real a[4]\n  live_out a\na[1] = @\nend"
    "4:8: unexpected character '@'"

let test_file_errors_are_total () =
  (match Parse.parse_file "/no/such/place.bw" with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error msg ->
    check Alcotest.bool "one line" false (String.contains msg '\n'));
  match Bw_core.Loader.load_program ~scale:1 "/no/such/place.bw" with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error msg -> check Alcotest.bool "one line" false (String.contains msg '\n')

let test_parenthesized_conditions () =
  (* what pp_cond prints for nested and/or — both parsers accept it *)
  let src =
    "program p\n\
    \  real s\n\
    \  live_out s\n\
     if (((s > 1.0 and s < 2.0) or not (s = 0.0)))\n\
    \  s = s + 1.0\n\
     end if\n\
     end"
  in
  let p = parse_ok src in
  let q =
    match Parser.parse_program src with
    | Ok q -> q
    | Error e -> Alcotest.failf "legacy parse failed: %a" Parser.pp_parse_error e
  in
  check Alcotest.bool "same AST" true (Ast.equal_program p q)

(* --- round trip through both parsers -------------------------------------- *)

let roundtrip_seed seed =
  let p = Bw_qa.Gen.generate ~seed ~size:6 in
  let printed = Pretty.program_to_string p in
  let via_new =
    match Parse.parse_program printed with
    | Ok q -> q
    | Error e ->
      Alcotest.failf "seed %d: new parser rejected printed form: %s@.%s" seed
        (Parse.error_to_string e) printed
  in
  let via_legacy =
    match Parser.parse_program printed with
    | Ok q -> q
    | Error e ->
      Alcotest.failf "seed %d: legacy parser rejected printed form: %a@.%s"
        seed Parser.pp_parse_error e printed
  in
  Ast.equal_program p via_new && Ast.equal_program p via_legacy

let roundtrip_prop =
  QCheck.Test.make ~count:100 ~name:"print/parse round trip (both parsers)"
    (QCheck.make QCheck.Gen.(map (fun n -> n + 1) (int_bound 9999)))
    roundtrip_seed

let test_float_literals_stay_floats () =
  (* "x = 0.0" must not re-parse as an integer assignment *)
  let p =
    Builder.program "zeros"
      ~decls:[ Builder.array "a" [ 4 ] ]
      ~live_out:[ "a" ]
      Builder.
        [ for_ "i" (int 1) (int 4) [ ("a" $. [ v "i" ]) <-- fl 0.0 ] ]
  in
  let printed = Pretty.program_to_string p in
  check Alcotest.bool "roundtrips equal" true
    (Ast.equal_program p (parse_ok printed));
  let fft = (Option.get (Bw_workloads.Registry.find "fft")).build ~scale:1 in
  check Alcotest.bool "fft roundtrips equal" true
    (Ast.equal_program fft (parse_ok (Pretty.program_to_string fft)))

(* --- golden rendering ------------------------------------------------------ *)

let test_golden_deterministic () =
  let p = (Option.get (Bw_workloads.Registry.find "mm_jki")).build ~scale:1 in
  let a = Bw_lang.Golden.render p and b = Bw_lang.Golden.render p in
  check Alcotest.string "byte-identical" a b;
  check Alcotest.bool "has sections" true
    (List.for_all
       (fun s ->
         let rec has i =
           i + String.length s <= String.length a
           && (String.sub a i (String.length s) = s || has (i + 1))
         in
         has 0)
       [ "== parse =="; "== check =="; "== analysis ==" ])

let test_golden_path_and_diff () =
  check Alcotest.string "path" "corpus/mm.golden"
    (Bw_lang.Golden.golden_path "corpus/mm.bw");
  (match Bw_lang.Golden.first_diff "a\nb\nc" "a\nB\nc" with
  | Some (2, "b", "B") -> ()
  | _ -> Alcotest.fail "expected a diff at line 2");
  check Alcotest.bool "equal -> None" true
    (Bw_lang.Golden.first_diff "x\ny" "x\ny" = None)

(* --- the data-layout pass -------------------------------------------------- *)

(* Small direct-mapped cache with pseudo-random page placement: the
   setting where strided and lane-padded traversals pay full lines. *)
let rp_machine =
  { Bw_machine.Machine.exemplar with
    Bw_machine.Machine.name = "exemplar-rp-8k";
    caches =
      [ { Bw_machine.Cache.size_bytes = 8 * 1024;
          line_bytes = 32;
          associativity = 1 } ];
    cache_bandwidths = [ 560e6 ];
    paging = Bw_machine.Machine.Random_pages { page_bytes = 1024; seed = 11 } }

let simulated_traffic p =
  let r = Bw_exec.Run.simulate ~machine:rp_machine p in
  Bw_machine.Timing.memory_bytes r.Bw_exec.Run.cache

(* inner loop walks the slow subscript of m: transpose territory *)
let col_sweep_src =
  "program col_sweep\n\
  \  real m[8,1024] = hash(7)\n\
  \  real acc[1] = zero\n\
  \  live_out acc\n\
   for t = 1, 8\n\
  \  for i = 1, 8\n\
  \    for j = 1, 1024\n\
  \      acc[1] = acc[1] + m[i,j]\n\
  \    end for\n\
  \  end for\n\
   end for\n\
   end"

(* four lanes packed per element, two of them hot: AoS -> SoA territory *)
let aos_stream_src =
  "program aos_stream\n\
  \  real p[4,4096] = linear(0, 0.125)\n\
  \  real s[1] = zero\n\
  \  live_out s\n\
   for t = 1, 4\n\
  \  for i = 1, 4096\n\
  \    s[1] = s[1] + p[1,i] * p[2,i]\n\
  \  end for\n\
   end for\n\
   end"

let assert_behaviour_preserved ~before ~after =
  (match Bw_transform.Guard.validate_pair ~before ~after () with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "differential validation failed: %s" msg);
  match Bw_analysis.Preserve.lint ~before ~after with
  | [] -> ()
  | v :: _ ->
    Alcotest.failf "preserve lint flagged: %a" Bw_analysis.Preserve.pp_violation
      v

let test_layout_reduces_traffic_transpose () =
  let p = parse_ok col_sweep_src in
  let p', actions = Layout.run ~machine:rp_machine p in
  check Alcotest.bool "transposed m" true
    (List.exists (function Layout.Transpose { array = "m" } -> true | _ -> false)
       actions);
  (match Check.check p' with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "transformed program fails Check");
  assert_behaviour_preserved ~before:p ~after:p';
  let before = simulated_traffic p and after = simulated_traffic p' in
  if not (float_of_int after < 0.8 *. float_of_int before) then
    Alcotest.failf "no traffic win: %d -> %d bytes" before after

let test_layout_reduces_traffic_split () =
  let p = parse_ok aos_stream_src in
  let p', actions = Layout.run ~machine:rp_machine p in
  check Alcotest.bool "split p" true
    (List.exists
       (function Layout.Split { array = "p"; lanes = 4 } -> true | _ -> false)
       actions);
  (match Check.check p' with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "transformed program fails Check");
  assert_behaviour_preserved ~before:p ~after:p';
  let before = simulated_traffic p and after = simulated_traffic p' in
  if not (float_of_int after < 0.8 *. float_of_int before) then
    Alcotest.failf "no traffic win: %d -> %d bytes" before after

let test_pad_extends_last_dim_only () =
  let p = parse_ok aos_stream_src in
  let p' =
    match Layout.apply p (Layout.Pad { array = "p"; extra = 3 }) with
    | Ok p' -> p'
    | Error msg -> Alcotest.failf "pad failed: %s" msg
  in
  (match Ast.find_decl p' "p" with
  | Some d -> check (Alcotest.list Alcotest.int) "dims" [ 4; 4099 ] d.Ast.dims
  | None -> Alcotest.fail "p vanished");
  (* column-major: existing offsets are untouched, so behaviour holds *)
  assert_behaviour_preserved ~before:p ~after:p';
  match Layout.apply p (Layout.Pad { array = "s"; extra = 1 }) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "padding a live-out array must be refused"

let test_layout_refuses_unsafe () =
  let p = parse_ok col_sweep_src in
  (match Layout.apply p (Layout.Split { array = "m"; lanes = 8 }) with
  | Error _ -> () (* lane subscript is a loop index, not a constant *)
  | Ok _ -> Alcotest.fail "split with non-constant lanes must be refused");
  (match Layout.apply p (Layout.Transpose { array = "nope" }) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown array must be refused");
  (* a written 2-D array must not be transposed *)
  let q =
    parse_ok
      "program w\n\
      \  real m[4,4] = zero\n\
      \  live_out m\n\
       for i = 1, 4\n\
      \  for j = 1, 4\n\
      \    m[i,j] = 1.0\n\
      \  end for\n\
       end for\n\
       end"
  in
  match Layout.apply q (Layout.Transpose { array = "m" }) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "transposing a written array must be refused"

let test_layout_identity_when_nothing_applies () =
  let p =
    parse_ok
      "program tiny\n  real s\n  live_out s\ns = 1.0\nend"
  in
  let p', actions = Layout.run ~machine:rp_machine p in
  check Alcotest.bool "unchanged" true (Ast.equal_program p p');
  check Alcotest.int "no actions" 0 (List.length actions)

let suites =
  [ ( "lang.parse",
      [ Alcotest.test_case "accepts legacy grammar" `Quick
          test_accepts_legacy_grammar;
        Alcotest.test_case "pinned error positions" `Quick test_error_positions;
        Alcotest.test_case "lex error position" `Quick test_lex_error_position;
        Alcotest.test_case "file errors are total" `Quick
          test_file_errors_are_total;
        Alcotest.test_case "parenthesized conditions" `Quick
          test_parenthesized_conditions;
        QCheck_alcotest.to_alcotest roundtrip_prop;
        Alcotest.test_case "float literals stay floats" `Quick
          test_float_literals_stay_floats ] );
    ( "lang.golden",
      [ Alcotest.test_case "deterministic rendering" `Quick
          test_golden_deterministic;
        Alcotest.test_case "paths and diffs" `Quick test_golden_path_and_diff ]
    );
    ( "transform.layout",
      [ Alcotest.test_case "transpose cuts random-page traffic" `Slow
          test_layout_reduces_traffic_transpose;
        Alcotest.test_case "AoS split cuts random-page traffic" `Slow
          test_layout_reduces_traffic_split;
        Alcotest.test_case "pad extends the last dimension" `Quick
          test_pad_extends_last_dim_only;
        Alcotest.test_case "unsafe rewrites are refused" `Quick
          test_layout_refuses_unsafe;
        Alcotest.test_case "identity when nothing applies" `Quick
          test_layout_identity_when_nothing_applies ] ) ]
