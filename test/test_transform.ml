open Bw_ir
open Bw_transform

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let same_semantics ?(tol = 0.0) name p1 p2 =
  let o1 = Bw_exec.Interp.run p1 and o2 = Bw_exec.Interp.run p2 in
  let equal =
    if tol = 0.0 then Bw_exec.Interp.equal_observation o1 o2
    else Bw_exec.Interp.close_observation ~tol o1 o2
  in
  if not equal then
    Alcotest.failf "%s: observations differ@.%a@.vs@.%a" name
      Bw_exec.Interp.pp_observation o1 Bw_exec.Interp.pp_observation o2

let parse = Parser.parse_program_exn

(* --- Toplevel dependences ---------------------------------------------- *)

let test_dep_graph () =
  let p = Bw_workloads.Fig7.original ~n:16 in
  let g = Toplevel.dep_graph p in
  (* sum=0 -> sum loop; res loop -> sum loop; sum loop -> print *)
  check bool "0->2" true (Bw_graph.Digraph.mem_edge g 0 2);
  check bool "1->2" true (Bw_graph.Digraph.mem_edge g 1 2);
  check bool "2->3" true (Bw_graph.Digraph.mem_edge g 2 3);
  check bool "no 1->0" false (Bw_graph.Digraph.mem_edge g 0 1)

let test_reorder_legal () =
  let p = Bw_workloads.Fig7.original ~n:16 in
  match Toplevel.reorder p [ 1; 0; 2; 3 ] with
  | Ok p' -> same_semantics "reorder" p p'
  | Error e -> Alcotest.fail e

let test_reorder_illegal () =
  let p = Bw_workloads.Fig7.original ~n:16 in
  match Toplevel.reorder p [ 2; 1; 0; 3 ] with
  | Ok _ -> Alcotest.fail "expected dependence violation"
  | Error _ -> ()

(* --- Fusion -------------------------------------------------------------- *)

let test_fuse_conformable () =
  let p = Bw_workloads.Fig7.original ~n:200 in
  match Fuse.fuse_at p 1 with
  | Error e -> Alcotest.fail e
  | Ok p' ->
    check int "one less stmt" 3 (List.length p'.Ast.body);
    same_semantics "fig7 fusion" p p'

let test_fuse_matches_hand_fusion () =
  let auto = Fuse.greedy (Bw_workloads.Fig7.original ~n:100) in
  let hand = Bw_workloads.Fig7.fused_by_hand ~n:100 in
  same_semantics "greedy = hand" auto hand

let test_fuse_rejects_backward_dep () =
  (* L2 reads a[i+1], written by L1: fusing would read unwritten data. *)
  let p =
    parse
      {|
      program bad_fuse
        real a[100]
        real b[100]
        live_out b
        for i = 1, 99
          a[i] = a[i] + 1.0
        end for
        for i = 1, 99
          b[i] = a[i+1]
        end for
      end
      |}
  in
  match Fuse.fuse_at p 0 with
  | Ok _ -> Alcotest.fail "expected fusion to be rejected"
  | Error _ -> ()

let test_fuse_accepts_forward_dep () =
  let p =
    parse
      {|
      program ok_fuse
        real a[100]
        real b[100]
        live_out b
        for i = 2, 99
          a[i] = a[i] + 1.0
        end for
        for i = 2, 99
          b[i] = a[i-1]
        end for
      end
      |}
  in
  match Fuse.fuse_at p 0 with
  | Ok p' -> same_semantics "forward dep" p p'
  | Error e -> Alcotest.fail e

let string_contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_fuse_rejects_scalar_carried () =
  let p = Bw_workloads.Fig4.program ~n:50 in
  (* loops 5 and 6 share the scalar sum *)
  match Fuse.fuse_at p 4 with
  | Ok _ -> Alcotest.fail "expected scalar-carried rejection"
  | Error reason -> check bool "mentions sum" true (string_contains reason "sum")

let test_fuse_hull_guards () =
  let p =
    parse
      {|
      program hull
        real a[100]
        real b[100]
        live_out a, b
        for i = 1, 100
          a[i] = a[i] + 1.0
        end for
        for i = 5, 60
          b[i] = b[i] * 2.0
        end for
      end
      |}
  in
  match Fuse.fuse_at p 0 with
  | Error e -> Alcotest.fail e
  | Ok p' ->
    check int "fused" 1 (List.length p'.Ast.body);
    same_semantics "hull fusion" p p'

let test_fuse_plan_fig4 () =
  let p = Bw_workloads.Fig4.program ~n:64 in
  (* bandwidth-minimal plan: {5} then {1,2,3,4,6}, print last *)
  match Fuse.apply_plan p [ [ 4 ]; [ 0; 1; 2; 3; 5 ]; [ 6 ] ] with
  | Error e -> Alcotest.fail e
  | Ok p' ->
    check int "three statements" 3 (List.length p'.Ast.body);
    same_semantics "fig4 plan" p p'

let test_fuse_plan_rejects_illegal () =
  let p = Bw_workloads.Fig4.program ~n:32 in
  (* putting loop 6 before loop 5 breaks the sum dependence *)
  match Fuse.apply_plan p [ [ 5 ]; [ 0; 1; 2; 3; 4 ]; [ 6 ] ] with
  | Ok _ -> Alcotest.fail "expected rejection"
  | Error _ -> ()

(* --- Interchange / tiling -------------------------------------------------- *)

let test_interchange_mm () =
  let p = Bw_workloads.Kernels.mm ~order:Bw_workloads.Kernels.Jki ~n:12 () in
  match p.Ast.body with
  | [ Ast.For nest ] -> (
    match Tile.interchange nest with
    | Error e -> Alcotest.fail e
    | Ok swapped ->
      let p' = { p with Ast.body = [ Ast.For swapped ] } in
      same_semantics "interchange mm" p p')
  | _ -> Alcotest.fail "unexpected shape"

let test_interchange_rejects_recurrence () =
  let p =
    parse
      {|
      program recur
        real a[20,20]
        live_out a
        for j = 2, 20
          for i = 2, 20
            a[i,j] = a[i-1,j] + a[i,j-1]
          end for
        end for
      end
      |}
  in
  match p.Ast.body with
  | [ Ast.For nest ] -> (
    match Tile.interchange nest with
    | Ok _ -> Alcotest.fail "expected rejection (wavefront recurrence)"
    | Error _ -> ())
  | _ -> Alcotest.fail "unexpected shape"

let test_strip_mine () =
  let p = Bw_workloads.Simple_example.write_loop ~n:103 in
  match p.Ast.body with
  | [ Ast.For l ] -> (
    match Tile.strip_mine l ~tile:10 ~outer_index:"ii" with
    | Error e -> Alcotest.fail e
    | Ok stripped ->
      same_semantics "strip mine" p { p with Ast.body = [ Ast.For stripped ] })
  | _ -> Alcotest.fail "unexpected shape"

let test_tile_mm_semantics () =
  let p = Bw_workloads.Kernels.mm ~order:Bw_workloads.Kernels.Jki ~n:20 () in
  let tiled = Bw_workloads.Kernels.mm_blocked ~n:20 ~tile:6 in
  same_semantics "tiled mm" p tiled

let test_tile_mm_reduces_traffic () =
  (* With caches much smaller than the matrices, blocking slashes memory
     traffic (the Figure 1 mm -O2 vs -O3 contrast). *)
  let small_cache =
    { Bw_machine.Machine.origin2000 with
      Bw_machine.Machine.name = "origin-small";
      caches =
        [ { Bw_machine.Cache.size_bytes = 2048; line_bytes = 32; associativity = 2 };
          { Bw_machine.Cache.size_bytes = 64 * 1024;
            line_bytes = 128;
            associativity = 2 } ] }
  in
  let traffic p =
    let r = Bw_exec.Run.simulate ~machine:small_cache p in
    Bw_machine.Timing.memory_bytes r.Bw_exec.Run.cache
  in
  let plain = traffic (Bw_workloads.Kernels.mm ~order:Bw_workloads.Kernels.Jki ~n:96 ()) in
  let tiled = traffic (Bw_workloads.Kernels.mm_blocked ~n:96 ~tile:24) in
  check bool
    (Printf.sprintf "tiled %d << plain %d" tiled plain)
    true
    (float_of_int tiled < 0.35 *. float_of_int plain)

(* --- Scalar replacement / store elimination ---------------------------------- *)

let test_forward_stores_fig7 () =
  let p = Bw_workloads.Fig7.fused_by_hand ~n:300 in
  let p', hits = Scalar_replace.forward_stores p in
  check int "one site forwarded" 1 hits;
  same_semantics "forwarding" p p';
  (* forwarding removes the re-load of res[i] *)
  let _, c = Bw_exec.Run.observe p in
  let _, c' = Bw_exec.Run.observe p' in
  check bool "fewer loads" true
    (c'.Bw_machine.Counters.loads < c.Bw_machine.Counters.loads)

let test_store_elim_fig7 () =
  let p = Bw_workloads.Fig7.fused_by_hand ~n:300 in
  let p', eliminated = Store_elim.run p in
  check Alcotest.(list string) "res eliminated" [ "res" ] eliminated;
  same_semantics "store elimination" p p';
  let _, c' = Bw_exec.Run.observe p' in
  check int "no stores remain" 0 c'.Bw_machine.Counters.stores

let test_store_elim_respects_live_out () =
  let p =
    parse
      {|
      program keep
        real a[50]
        live_out a
        for i = 1, 50
          a[i] = a[i] + 1.0
        end for
      end
      |}
  in
  let _, eliminated = Store_elim.run p in
  check Alcotest.(list string) "nothing eliminated" [] eliminated

let test_store_elim_respects_later_reads () =
  let p = Bw_workloads.Fig7.original ~n:100 in
  (* unfused: res is read by the second loop, stores must stay *)
  let _, eliminated = Store_elim.run p in
  check Alcotest.(list string) "nothing eliminated" [] eliminated

let test_store_elim_respects_carried_reads () =
  let p =
    parse
      {|
      program carried
        real a[100]
        real s
        live_out s
        for i = 2, 100
          a[i] = a[i-1] + 1.0
          s = s + a[i]
        end for
      end
      |}
  in
  let p', eliminated = Store_elim.run p in
  check Alcotest.(list string) "recurrence kept" [] eliminated;
  same_semantics "no-op" p p'

let test_store_elim_halves_traffic () =
  let machine = Bw_machine.Machine.origin2000 in
  let p = Bw_workloads.Fig7.fused_by_hand ~n:400_000 in
  let p', _ = Store_elim.run p in
  let bytes prog =
    let r = Bw_exec.Run.simulate ~machine prog in
    Bw_machine.Timing.memory_bytes r.Bw_exec.Run.cache
  in
  let before = bytes p and after = bytes p' in
  let ratio = float_of_int after /. float_of_int before in
  check bool
    (Printf.sprintf "traffic ratio %.2f in [0.6, 0.72]" ratio)
    true
    (ratio > 0.6 && ratio < 0.72)

(* --- Contraction --------------------------------------------------------------- *)

let test_contract_simple () =
  let p =
    parse
      {|
      program temp_array
        real t[100]
        real a[100]
        real s
        live_out s
        for i = 1, 100
          t[i] = a[i] * 2.0
          s = s + t[i]
        end for
      end
      |}
  in
  check Alcotest.(list string) "t contractable" [ "t" ] (Contract.contractable p);
  let p', contracted = Contract.contract_arrays p in
  check Alcotest.(list string) "t contracted" [ "t" ] contracted;
  same_semantics "contraction" p p';
  (* the array declaration is gone *)
  check bool "decl removed" true (Ast.find_decl p' "t" = None)

let test_contract_rejects_carried () =
  let p =
    parse
      {|
      program carried2
        real t[100]
        real s
        live_out s
        for i = 2, 100
          t[i] = t[i-1] + 1.0
          s = s + t[i]
        end for
      end
      |}
  in
  check Alcotest.(list string) "not contractable" [] (Contract.contractable p)

let test_contract_rejects_live_out () =
  let p =
    parse
      {|
      program liveout
        real t[10]
        live_out t
        for i = 1, 10
          t[i] = 1.0
        end for
      end
      |}
  in
  check Alcotest.(list string) "not contractable" [] (Contract.contractable p)

let test_contract_rejects_read_first () =
  let p =
    parse
      {|
      program readfirst
        real t[10]
        real s
        live_out s
        for i = 1, 10
          s = s + t[i]
          t[i] = s
        end for
      end
      |}
  in
  check Alcotest.(list string) "not contractable" [] (Contract.contractable p)

(* --- Shrinking / peeling --------------------------------------------------------- *)

let test_shrink_fig6 () =
  let n = 40 in
  let p = Bw_workloads.Fig6.fused ~n in
  (* contract b first, as the strategy does *)
  let p, contracted = Contract.contract_arrays p in
  check Alcotest.(list string) "b contracted" [ "b" ] contracted;
  match Shrink.apply p "a" with
  | Error e -> Alcotest.fail e
  | Ok (p', plan) ->
    check int "depth 2" 2 plan.Shrink.depth;
    check Alcotest.(list int) "column 1 peeled" [ 1 ] plan.Shrink.peeled_columns;
    same_semantics "fig6 shrink" (Bw_workloads.Fig6.fused ~n) p';
    (* storage falls from O(n^2) to O(n) *)
    let before = Shrink.storage_bytes (Bw_workloads.Fig6.fused ~n) in
    let after = Shrink.storage_bytes p' in
    check bool
      (Printf.sprintf "storage %d -> %d" before after)
      true
      (after < (4 * n * 8) + 64 && before >= 2 * n * n * 8)

let test_shrink_semantics_various_n () =
  List.iter
    (fun n ->
      let p = Bw_workloads.Fig6.fused ~n in
      let p, _ = Contract.contract_arrays p in
      match Shrink.apply p "a" with
      | Error e -> Alcotest.failf "n=%d: %s" n e
      | Ok (p', _) -> same_semantics (Printf.sprintf "n=%d" n) (Bw_workloads.Fig6.fused ~n) p')
    [ 5; 8; 13 ]

let test_shrink_rejects_live_out () =
  let p =
    parse
      {|
      program live
        real a[50]
        live_out a
        for i = 2, 50
          a[i] = a[i-1] + 1.0
        end for
      end
      |}
  in
  match Shrink.plan p "a" with
  | Ok _ -> Alcotest.fail "expected rejection"
  | Error _ -> ()

let test_shrink_rejects_lookahead () =
  let p =
    parse
      {|
      program ahead
        real a[50]
        real s
        live_out s
        for i = 1, 49
          a[i] = a[i+1] * 2.0
          s = s + a[i]
        end for
      end
      |}
  in
  (* writes at offset 0, reads at +1: read looks ahead of the write *)
  match Shrink.plan p "a" with
  | Ok _ -> Alcotest.fail "expected rejection"
  | Error _ -> ()

let test_shrink_plain_window () =
  (* no peeled column at all: pure modular shrink *)
  let p =
    parse
      {|
      program window
        real a[200]
        real s
        live_out s
        for i = 1, 200
          a[i] = f(float(i))
          s = s + a[i]
        end for
      end
      |}
  in
  match Shrink.apply p "a" with
  | Error e -> Alcotest.fail e
  | Ok (p', plan) ->
    check int "depth 1" 1 plan.Shrink.depth;
    same_semantics "window" p p'

(* --- Distribution ----------------------------------------------------------- *)

let test_distribute_fig7 () =
  let fused = Bw_workloads.Fig7.fused_by_hand ~n:300 in
  match Distribute.distribute_at fused 1 with
  | Error e -> Alcotest.fail e
  | Ok p' ->
    (* the fused body splits back into the update loop and the reduction *)
    check int "two loops + sum=0 + print" 4 (List.length p'.Ast.body);
    same_semantics "fig7 distribution" fused p'

let test_distribute_keeps_cycles_together () =
  let p =
    parse
      {|
      program cyc
        real a[100]
        real c[100]
        live_out a, c
        for i = 2, 99
          a[i] = c[i-1] + 1.0
          c[i] = a[i] * 2.0
        end for
      end
      |}
  in
  match Distribute.distribute_at p 0 with
  | Error e -> Alcotest.fail e
  | Ok p' ->
    check int "cycle stays one loop" 1 (List.length p'.Ast.body);
    same_semantics "cycle" p p'

let test_distribute_orders_components () =
  (* backward value flow: the consumer must run first after splitting *)
  let p =
    parse
      {|
      program back
        real a[100]
        real b[100]
        live_out a, b
        for i = 1, 99
          b[i] = a[i+1] * 2.0
          a[i] = a[i] + 1.0
        end for
      end
      |}
  in
  match Distribute.distribute_at p 0 with
  | Error e -> Alcotest.fail e
  | Ok p' ->
    check int "split in two" 2 (List.length p'.Ast.body);
    same_semantics "ordering" p p'

let test_distribute_then_refuse_roundtrip () =
  (* distribute_all followed by bandwidth-minimal fusion re-derives an
     equivalent program no worse than the original grouping *)
  List.iter
    (fun seed ->
      let p =
        Bw_workloads.Random_programs.generate ~seed ~loops:4 ~arrays:3 ~n:64
      in
      let scattered = Distribute.distribute_all p in
      same_semantics (Printf.sprintf "seed %d scatter" seed) p scattered;
      match Bw_fusion.Bandwidth_minimal.fuse_program scattered with
      | Error e -> Alcotest.failf "seed %d: %s" seed e
      | Ok (refused, _) ->
        same_semantics (Printf.sprintf "seed %d refuse" seed) p refused;
        let cost q =
          let g = Bw_fusion.Fusion_graph.build q in
          Bw_fusion.Cost.bandwidth_cost g (Bw_fusion.Cost.unfused g)
        in
        check bool
          (Printf.sprintf "seed %d: refused %d <= original %d" seed
             (cost refused) (cost p))
          true
          (cost refused <= cost p))
    [ 41; 42; 43; 44 ]

(* --- Simplify ----------------------------------------------------------------------- *)

let test_simplify_folding () =
  let open Builder in
  check bool "arith" true
    (Simplify.fold_expr (int 2 +: (int 3 *: int 4)) = int 14);
  check bool "min" true (Simplify.fold_expr (min_ (int 2) (int 5)) = int 2);
  (match Simplify.fold_cond (int 3 <=: int 4) with
  | `True -> ()
  | _ -> Alcotest.fail "expected true");
  match Simplify.fold_cond (and_ (int 3 >: int 4) (v "x" <: int 2)) with
  | `False -> ()
  | _ -> Alcotest.fail "expected false"

let test_simplify_prunes_branches () =
  let p =
    parse
      {|
      program prune
        real s
        live_out s
        for i = 1, 10
          if (2 < 1)
            s = s + 100.0
          else
            s = s + 1.0
          end if
        end for
      end
      |}
  in
  let p' = Simplify.simplify_program p in
  same_semantics "prune" p p';
  let has_if =
    Ast_util.fold_stmts
      (fun acc s -> acc || match s with Ast.If _ -> true | _ -> false)
      false p'.Ast.body
  in
  check bool "if removed" false has_if

let test_simplify_single_iteration () =
  let p =
    parse
      {|
      program once
        real a[10]
        live_out a
        for i = 3, 3
          a[i] = a[i] + 1.0
        end for
      end
      |}
  in
  let p' = Simplify.simplify_program p in
  same_semantics "single iteration" p p';
  check int "loop unrolled away"
    0
    (List.length (Ast_util.loop_indices p'.Ast.body))

(* --- Strategy end-to-end --------------------------------------------------------------- *)

let test_strategy_fig7 () =
  let p = Bw_workloads.Fig7.original ~n:1000 in
  let p', report = Strategy.run p in
  same_semantics "strategy fig7" p p';
  check int "fused" 1 report.Strategy.fused_loops;
  check bool "store eliminated" true
    (List.mem "res" report.Strategy.stores_eliminated);
  let _, c = Bw_exec.Run.observe p' in
  check int "no stores" 0 c.Bw_machine.Counters.stores

let test_strategy_fig6 () =
  let p = Bw_workloads.Fig6.fused ~n:30 in
  let p', report = Strategy.run p in
  same_semantics "strategy fig6" p p';
  check bool "b contracted" true (List.mem "b" report.Strategy.contracted);
  check bool "a shrunk" true
    (List.exists
       (fun (pl : Shrink.plan) -> pl.Shrink.array = "a")
       report.Strategy.shrink_plans)

let test_strategy_preserves_random_programs () =
  for seed = 20 to 32 do
    let p = Bw_workloads.Random_programs.generate ~seed ~loops:6 ~arrays:4 ~n:80 in
    let p', _ = Strategy.run p in
    same_semantics (Printf.sprintf "random %d" seed) p p'
  done

let test_strategy_preserves_workloads () =
  (* the full pipeline must never change observable behaviour *)
  List.iter
    (fun (name, p) ->
      let p', _ = Strategy.run p in
      same_semantics name p p')
    [ ("fig4", Bw_workloads.Fig4.program ~n:40);
      ("sweep3d", Bw_workloads.Sweep3d.sweep ~n:6 ~octants:2);
      ("sp", Bw_workloads.Nas_sp.full ~n:5);
      ("stride 2w3r", Bw_workloads.Stride_kernels.kernel ~writes:2 ~reads:3 ~n:64);
      ("conv", Bw_workloads.Kernels.convolution ~n:64 ~taps:4) ]

(* --- Guarded pipeline ------------------------------------------------------------------ *)

let with_fault site action policy f =
  Bw_obs.Fault.reset ();
  Bw_obs.Fault.arm site action policy;
  Fun.protect ~finally:Bw_obs.Fault.reset f

let validating trials = { Guard.default_config with Guard.validate = trials }

(* An injected raise in any stage must be confined: the pipeline
   completes, semantics are preserved, and exactly that stage records
   one exception rollback. *)
let test_guard_fault_confined_per_stage () =
  let p = Bw_workloads.Fig7.original ~n:400 in
  List.iter
    (fun stage ->
      let site = "guard." ^ stage in
      with_fault site Bw_obs.Fault.Raise (Bw_obs.Fault.Nth 1) @@ fun () ->
      let p', _report, events = Strategy.run_guarded ~guard:(validating 1) p in
      same_semantics ("faulted " ^ stage) p p';
      (match
         List.filter (fun e -> e.Guard.verdict <> Guard.Committed) events
       with
      | [ { Guard.stage = s; verdict = Guard.Rolled_back (Guard.Exception _) } ]
        ->
        check Alcotest.string "rolled-back stage" stage s
      | _ -> Alcotest.failf "expected exactly one exception rollback in %s" stage);
      check int "fault fired once" 1 (Bw_obs.Fault.fires site))
    [ "fuse"; "contract"; "shrink"; "forward"; "store-elim"; "contract-tidy" ]

(* Rolling a stage back must reproduce the stage's input exactly, so a
   faulted fuse equals the fuse-disabled pipeline program-for-program. *)
let test_guard_rollback_equals_disabled_stage () =
  let p = Bw_workloads.Fig7.original ~n:300 in
  let disabled, _ =
    Strategy.run ~options:{ Strategy.all_on with Strategy.fuse = false } p
  in
  with_fault "guard.fuse" Bw_obs.Fault.Raise (Bw_obs.Fault.Nth 1) @@ fun () ->
  let faulted, _, _ = Strategy.run_guarded p in
  check bool "identical to fuse-disabled run" true
    (Ast.equal_program faulted disabled)

(* A Corrupt fault mutates the stage output in a way that still
   type-checks; only differential validation can catch it — and must. *)
let test_guard_corruption_caught_by_validation () =
  let p = Bw_workloads.Fig7.original ~n:200 in
  with_fault "guard.shrink" Bw_obs.Fault.Corrupt (Bw_obs.Fault.Nth 1)
  @@ fun () ->
  let p', _, events = Strategy.run_guarded ~guard:(validating 2) p in
  same_semantics "corruption rolled back" p p';
  match List.find_opt (fun e -> e.Guard.stage = "shrink") events with
  | Some { Guard.verdict = Guard.Rolled_back (Guard.Validation_failed _); _ } ->
    ()
  | _ -> Alcotest.fail "expected a validation-failure rollback on shrink"

(* Negative control for the test above: with validation off, the same
   type-correct corruption commits and observably changes behaviour —
   the differential oracle, not Check.check, is what catches it. *)
let test_guard_corruption_escapes_without_validation () =
  let p = Bw_workloads.Fig7.original ~n:200 in
  with_fault "guard.shrink" Bw_obs.Fault.Corrupt (Bw_obs.Fault.Nth 1)
  @@ fun () ->
  let p', _, events = Strategy.run_guarded p in
  check bool "corrupt stage committed" true
    (List.for_all (fun e -> e.Guard.verdict = Guard.Committed) events);
  check bool "behaviour changed" false
    (Bw_exec.Interp.equal_observation (Bw_exec.Interp.run p)
       (Bw_exec.Interp.run p'))

(* validate_pair as a standalone oracle: a program agrees with itself,
   and the guard's own corruption is detected. *)
let test_guard_validate_pair () =
  let p = Bw_workloads.Fig7.original ~n:64 in
  (match Guard.validate_pair ~before:p ~after:p () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "self-validation failed: %s" e);
  match Guard.corrupt_program p with
  | None -> Alcotest.fail "expected a corruptible assignment"
  | Some bad -> (
    Bw_ir.Check.check_exn bad;
    match Guard.validate_pair ~before:p ~after:bad () with
    | Ok () -> Alcotest.fail "corruption slipped past validation"
    | Error _ -> ())

(* Fail-fast mode: rollback=false turns the first stage failure into
   Guard_failed, with that failure as the last recorded event. *)
let test_guard_fail_fast () =
  let p = Bw_workloads.Fig7.original ~n:100 in
  with_fault "guard.contract" Bw_obs.Fault.Raise (Bw_obs.Fault.Nth 1)
  @@ fun () ->
  match
    Strategy.run_guarded
      ~guard:{ Guard.default_config with Guard.rollback = false }
      p
  with
  | _ -> Alcotest.fail "expected Guard_failed"
  | exception Guard.Guard_failed events -> (
    match List.rev events with
    | { Guard.stage = "contract";
        verdict = Guard.Rolled_back (Guard.Exception _) }
      :: _ ->
      ()
    | _ -> Alcotest.fail "last event should be the contract failure")

(* An exhausted fuel budget rolls every stage back without running it:
   the program comes back untouched, each stage Budget_exhausted. *)
let test_guard_fuel_budget () =
  Bw_obs.Fault.reset ();
  let p = Bw_workloads.Fig7.original ~n:100 in
  let p', _, events =
    Strategy.run_guarded
      ~guard:{ Guard.default_config with Guard.fuel = Some 0 }
      p
  in
  check bool "program unchanged" true (Ast.equal_program p p');
  check bool "has events" true (events <> []);
  List.iter
    (fun ev ->
      match ev.Guard.verdict with
      | Guard.Rolled_back (Guard.Budget_exhausted _) -> ()
      | _ -> Alcotest.failf "stage %s should be budget-exhausted" ev.Guard.stage)
    events

(* With no faults armed, the guarded pipeline commits every stage on
   every registry workload — validation included — with zero rollbacks. *)
let test_guard_zero_rollbacks_on_registry () =
  Bw_obs.Fault.reset ();
  List.iter
    (fun (e : Bw_workloads.Registry.entry) ->
      let p = e.Bw_workloads.Registry.build ~scale:1 in
      let p', _, events = Strategy.run_guarded ~guard:(validating 1) p in
      same_semantics e.Bw_workloads.Registry.name p p';
      List.iter
        (fun ev ->
          match ev.Guard.verdict with
          | Guard.Committed -> ()
          | Guard.Rolled_back f ->
            Alcotest.failf "%s: stage %s rolled back: %a"
              e.Bw_workloads.Registry.name ev.Guard.stage Guard.pp_failure f)
        events)
    Bw_workloads.Registry.all

(* Satellite: every individual pass, applied in pipeline order to every
   registry workload, must keep the IR well-formed under Check.check. *)
let test_individual_passes_keep_ir_wellformed () =
  let checked workload name q =
    match Bw_ir.Check.check q with
    | Ok () -> ()
    | Error errs ->
      Alcotest.failf "%s after %s: %a" workload name
        (Format.pp_print_list Bw_ir.Check.pp_error)
        errs
  in
  List.iter
    (fun (e : Bw_workloads.Registry.entry) ->
      let w = e.Bw_workloads.Registry.name in
      let p = e.Bw_workloads.Registry.build ~scale:1 in
      let fused = Fuse.greedy p in
      checked w "fuse" fused;
      let contracted, _ = Contract.contract_arrays fused in
      checked w "contract" contracted;
      let shrunk, _ = Shrink.shrink_all contracted in
      checked w "shrink" shrunk;
      let forwarded, _ = Scalar_replace.forward_stores shrunk in
      checked w "forward" forwarded;
      let eliminated, _ = Store_elim.eliminate_dead_stores forwarded in
      checked w "store-elim" eliminated;
      let tidied, _ = Contract.contract_arrays eliminated in
      checked w "contract-tidy" tidied)
    Bw_workloads.Registry.all

let suites =
  [ ( "transform.toplevel",
      [ Alcotest.test_case "dep graph" `Quick test_dep_graph;
        Alcotest.test_case "legal reorder" `Quick test_reorder_legal;
        Alcotest.test_case "illegal reorder" `Quick test_reorder_illegal ] );
    ( "transform.fuse",
      [ Alcotest.test_case "conformable" `Quick test_fuse_conformable;
        Alcotest.test_case "matches hand fusion" `Quick test_fuse_matches_hand_fusion;
        Alcotest.test_case "rejects backward dep" `Quick test_fuse_rejects_backward_dep;
        Alcotest.test_case "accepts forward dep" `Quick test_fuse_accepts_forward_dep;
        Alcotest.test_case "rejects scalar carried" `Quick test_fuse_rejects_scalar_carried;
        Alcotest.test_case "hull guards" `Quick test_fuse_hull_guards;
        Alcotest.test_case "fig4 plan" `Quick test_fuse_plan_fig4;
        Alcotest.test_case "rejects illegal plan" `Quick test_fuse_plan_rejects_illegal ] );
    ( "transform.tile",
      [ Alcotest.test_case "interchange mm" `Quick test_interchange_mm;
        Alcotest.test_case "rejects recurrence" `Quick test_interchange_rejects_recurrence;
        Alcotest.test_case "strip mine" `Quick test_strip_mine;
        Alcotest.test_case "tile mm semantics" `Quick test_tile_mm_semantics;
        Alcotest.test_case "tile mm traffic" `Slow test_tile_mm_reduces_traffic ] );
    ( "transform.store_elim",
      [ Alcotest.test_case "forward stores" `Quick test_forward_stores_fig7;
        Alcotest.test_case "fig7 elimination" `Quick test_store_elim_fig7;
        Alcotest.test_case "respects live-out" `Quick test_store_elim_respects_live_out;
        Alcotest.test_case "respects later reads" `Quick test_store_elim_respects_later_reads;
        Alcotest.test_case "respects carried reads" `Quick test_store_elim_respects_carried_reads;
        Alcotest.test_case "reduces traffic" `Slow test_store_elim_halves_traffic ] );
    ( "transform.contract",
      [ Alcotest.test_case "simple" `Quick test_contract_simple;
        Alcotest.test_case "rejects carried" `Quick test_contract_rejects_carried;
        Alcotest.test_case "rejects live-out" `Quick test_contract_rejects_live_out;
        Alcotest.test_case "rejects read-first" `Quick test_contract_rejects_read_first ] );
    ( "transform.shrink",
      [ Alcotest.test_case "figure 6" `Quick test_shrink_fig6;
        Alcotest.test_case "various sizes" `Quick test_shrink_semantics_various_n;
        Alcotest.test_case "rejects live-out" `Quick test_shrink_rejects_live_out;
        Alcotest.test_case "rejects lookahead" `Quick test_shrink_rejects_lookahead;
        Alcotest.test_case "plain window" `Quick test_shrink_plain_window ] );
    ( "transform.distribute",
      [ Alcotest.test_case "fig7 fission" `Quick test_distribute_fig7;
        Alcotest.test_case "cycles stay together" `Quick test_distribute_keeps_cycles_together;
        Alcotest.test_case "component ordering" `Quick test_distribute_orders_components;
        Alcotest.test_case "distribute + refuse roundtrip" `Quick test_distribute_then_refuse_roundtrip ] );
    ( "transform.simplify",
      [ Alcotest.test_case "folding" `Quick test_simplify_folding;
        Alcotest.test_case "prunes branches" `Quick test_simplify_prunes_branches;
        Alcotest.test_case "single iteration" `Quick test_simplify_single_iteration ] );
    ( "transform.strategy",
      [ Alcotest.test_case "fig7 pipeline" `Quick test_strategy_fig7;
        Alcotest.test_case "fig6 pipeline" `Quick test_strategy_fig6;
        Alcotest.test_case "preserves all workloads" `Slow test_strategy_preserves_workloads;
        Alcotest.test_case "preserves random programs" `Slow test_strategy_preserves_random_programs ] );
    ( "transform.guard",
      [ Alcotest.test_case "fault confined per stage" `Quick
          test_guard_fault_confined_per_stage;
        Alcotest.test_case "rollback equals disabled stage" `Quick
          test_guard_rollback_equals_disabled_stage;
        Alcotest.test_case "corruption caught by validation" `Quick
          test_guard_corruption_caught_by_validation;
        Alcotest.test_case "corruption escapes without validation" `Quick
          test_guard_corruption_escapes_without_validation;
        Alcotest.test_case "validate_pair oracle" `Quick
          test_guard_validate_pair;
        Alcotest.test_case "fail fast raises Guard_failed" `Quick
          test_guard_fail_fast;
        Alcotest.test_case "fuel budget exhausts" `Quick
          test_guard_fuel_budget;
        Alcotest.test_case "zero rollbacks on registry" `Slow
          test_guard_zero_rollbacks_on_registry;
        Alcotest.test_case "individual passes keep IR well-formed" `Slow
          test_individual_passes_keep_ir_wellformed ] )
  ]
