open Bw_machine

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let feed t addrs = List.iter (fun a -> Reuse.access t ~addr:a) addrs

(* --- basic distances -------------------------------------------------------- *)

let test_cold_only () =
  let t = Reuse.create ~granularity:8 () in
  feed t [ 0; 8; 16; 24 ];
  check int "total" 4 (Reuse.total t);
  check int "all cold" 4 (Reuse.cold t);
  check int "footprint" 4 (Reuse.footprint_blocks t)

let test_immediate_reuse () =
  let t = Reuse.create ~granularity:8 () in
  feed t [ 0; 0; 0 ];
  check int "one cold" 1 (Reuse.cold t);
  (* two reuses at distance 0 *)
  check (Alcotest.list (Alcotest.pair int int)) "histogram" [ (0, 2) ]
    (Reuse.histogram t)

let test_distance_counting () =
  let t = Reuse.create ~granularity:8 () in
  (* a b c a : the reuse of a has distance 2 (b and c in between) *)
  feed t [ 0; 8; 16; 0 ];
  check int "cold" 3 (Reuse.cold t);
  check
    (Alcotest.list (Alcotest.pair int int))
    "distance 2 bucket [2,4)" [ (2, 1) ] (Reuse.histogram t)

let test_duplicates_not_distinct () =
  let t = Reuse.create ~granularity:8 () in
  (* a b b b a : reuse distance of the last a is 1 (only block b) *)
  feed t [ 0; 8; 8; 8; 0 ];
  let hist = Reuse.histogram t in
  check bool "contains distance-1 bucket" true (List.mem_assoc 1 hist);
  check int "distance-1 count" 1 (List.assoc 1 hist)

let test_granularity_blocks () =
  let t = Reuse.create ~granularity:32 () in
  (* same 32-byte block: 0 and 24 alias *)
  feed t [ 0; 24 ];
  check int "one cold" 1 (Reuse.cold t);
  check int "footprint one block" 1 (Reuse.footprint_blocks t)

let test_misses_monotone () =
  let t = Reuse.create ~granularity:8 () in
  let rng = Random.State.make [| 11 |] in
  for _ = 1 to 2000 do
    Reuse.access t ~addr:(8 * Random.State.int rng 128)
  done;
  let sizes = [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ] in
  let misses = List.map (fun c -> Reuse.misses t ~capacity_blocks:c) sizes in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a >= b && decreasing rest
    | _ -> true
  in
  check bool "miss count non-increasing in capacity" true (decreasing misses);
  check int "infinite cache = cold misses" (Reuse.cold t)
    (Reuse.misses t ~capacity_blocks:(1 lsl 20))

(* --- proration at non-power-of-two capacities -------------------------------- *)

(* Three reuses all at distance 4 land in bucket [4,8).  Capacity 6 sits
   halfway through, so the prorated miss share is 0.5 * 3 = 1.5: rounding
   to nearest gives 2 (truncation used to give 1). *)
let test_proration_rounds_to_nearest () =
  let t = Reuse.create ~granularity:8 () in
  (* A B C D E A / F G H I J F / K L M N O K : distance 4 each *)
  List.iter
    (fun base ->
      feed t (List.init 5 (fun i -> 8 * (base + i)));
      feed t [ 8 * base ])
    [ 0; 10; 20 ];
  check int "cold" 15 (Reuse.cold t);
  check (Alcotest.list (Alcotest.pair int int)) "one [4,8) bucket"
    [ (4, 3) ] (Reuse.histogram t);
  check int "capacity 6 rounds 1.5 up" (15 + 2)
    (Reuse.misses t ~capacity_blocks:6)

(* At the bucket boundaries no proration happens: capacity = lo counts
   the whole bucket as misses, capacity = hi counts it entirely as hits. *)
let test_proration_boundaries_pinned () =
  let t = Reuse.create ~granularity:8 () in
  List.iter
    (fun base ->
      feed t (List.init 5 (fun i -> 8 * (base + i)));
      feed t [ 8 * base ])
    [ 0; 10; 20 ];
  check int "capacity = lo: whole bucket misses" (15 + 3)
    (Reuse.misses t ~capacity_blocks:4);
  check int "capacity = hi: whole bucket hits" 15
    (Reuse.misses t ~capacity_blocks:8)

(* --- Fenwick growth ----------------------------------------------------------- *)

(* Naive O(n^2) oracle: distance = distinct blocks strictly between the
   two accesses to the same block. *)
let naive_profile addrs ~granularity =
  let arr = Array.of_list (List.map (fun a -> a / granularity) addrs) in
  let n = Array.length arr in
  let last = Hashtbl.create 64 in
  let cold = ref 0 in
  let buckets = Hashtbl.create 16 in
  let bucket_of d =
    if d = 0 then 0
    else begin
      let rec log2 x acc = if x <= 1 then acc else log2 (x lsr 1) (acc + 1) in
      1 lsl log2 d 0
    end
  in
  for i = 0 to n - 1 do
    (match Hashtbl.find_opt last arr.(i) with
    | None -> incr cold
    | Some j ->
      let seen = Hashtbl.create 16 in
      for k = j + 1 to i - 1 do
        Hashtbl.replace seen arr.(k) ()
      done;
      let b = bucket_of (Hashtbl.length seen) in
      Hashtbl.replace buckets b
        (1 + Option.value ~default:0 (Hashtbl.find_opt buckets b)));
    Hashtbl.replace last arr.(i) i
  done;
  let hist =
    Hashtbl.fold (fun b c acc -> (b, c) :: acc) buckets []
    |> List.sort compare
  in
  (!cold, hist)

(* --- oracle: fully associative LRU cache ------------------------------------- *)

let lru_misses addrs ~granularity ~capacity_blocks =
  let cache =
    Cache.create
      [ { Cache.size_bytes = granularity * capacity_blocks;
          line_bytes = granularity;
          associativity = capacity_blocks } ]
  in
  List.iter (fun a -> Cache.read cache ~addr:a ~bytes:1) addrs;
  let s = Cache.stats cache 0 in
  s.Cache.read_misses

(* 5000 accesses grow the 1024-slot bit array three times (at 1024, 2048
   and 4096), so the rebuilt Fenwick trees answer the same prefix sums
   as incrementally built ones — checked against the quadratic oracle. *)
let test_growth_preserves_histogram () =
  let rng = Random.State.make [| 42; 7 |] in
  let addrs = List.init 5000 (fun _ -> 8 * Random.State.int rng 300) in
  let t = Reuse.create ~granularity:8 () in
  feed t addrs;
  let cold, hist = naive_profile addrs ~granularity:8 in
  (* the stamp clock is rewound by compaction; the access count isn't *)
  check int "total survives compaction" (List.length addrs) (Reuse.total t);
  check int "cold" cold (Reuse.cold t);
  check (Alcotest.list (Alcotest.pair int int)) "histogram" hist
    (Reuse.histogram t);
  List.iter
    (fun capacity ->
      check int
        (Printf.sprintf "misses at capacity %d" capacity)
        (lru_misses addrs ~granularity:8 ~capacity_blocks:capacity)
        (Reuse.misses t ~capacity_blocks:capacity))
    [ 1; 4; 16; 64; 256 ]

let test_matches_fully_associative_lru () =
  (* at power-of-two capacities the bucketed histogram is exact *)
  for seed = 1 to 10 do
    let rng = Random.State.make [| seed; 5 |] in
    let addrs =
      List.init 1500 (fun _ -> 32 * Random.State.int rng 200)
    in
    let t = Reuse.create ~granularity:32 () in
    feed t addrs;
    List.iter
      (fun capacity ->
        let predicted = Reuse.misses t ~capacity_blocks:capacity in
        let actual = lru_misses addrs ~granularity:32 ~capacity_blocks:capacity in
        check int
          (Printf.sprintf "seed %d capacity %d" seed capacity)
          actual predicted)
      [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ]
  done

(* --- program profiles ---------------------------------------------------------- *)

let test_streaming_program_profile () =
  let p = Bw_workloads.Simple_example.read_loop ~n:50_000 in
  let t = Bw_exec.Run.reuse_profile ~granularity:32 p in
  (* one pass, 4 doubles per 32-byte block: 1/4 cold, 3/4 distance-0 *)
  check int "accesses" 50_000 (Reuse.total t);
  check int "cold = blocks" (Reuse.footprint_blocks t) (Reuse.cold t);
  check bool "mostly immediate reuse" true
    (match List.assoc_opt 0 (Reuse.histogram t) with
    | Some c -> c > 35_000
    | None -> false)

let test_blocked_mm_shifts_curve () =
  (* blocking moves reuse distances below the block working set *)
  let plain = Bw_exec.Run.reuse_profile ~granularity:32
      (Bw_workloads.Kernels.mm ~order:Bw_workloads.Kernels.Jki ~n:96 ()) in
  let blocked = Bw_exec.Run.reuse_profile ~granularity:32
      (Bw_workloads.Kernels.mm_blocked ~n:96 ~tile:24) in
  (* at a capacity holding ~3 tiles but not 3 matrices, blocked mm hits *)
  let capacity = 1024 (* blocks of 32B = 32 KB *) in
  let mr_plain = Reuse.miss_ratio plain ~capacity_blocks:capacity in
  let mr_blocked = Reuse.miss_ratio blocked ~capacity_blocks:capacity in
  check bool
    (Printf.sprintf "blocked %.4f < plain %.4f" mr_blocked mr_plain)
    true
    (mr_blocked < 0.5 *. mr_plain)

let test_curve_shape () =
  let p = Bw_workloads.Kernels.dmxpy ~n:96 in
  let t = Bw_exec.Run.reuse_profile ~granularity:32 p in
  let curve = Reuse.curve t ~sizes:[ 1024; 32 * 1024; 1024 * 1024 ] in
  match curve with
  | [ (_, small); (_, mid); (_, large) ] ->
    check bool "monotone" true (small >= mid && mid >= large);
    check bool "big cache only cold misses" true (large < 0.2)
  | _ -> Alcotest.fail "expected three points"

(* --- QCheck ---------------------------------------------------------------------- *)

let qcheck_cases =
  let open QCheck in
  [ Test.make ~name:"cold + finite = total" ~count:100
      (small_list small_nat) (fun addrs ->
        let t = Reuse.create ~granularity:8 () in
        List.iter (fun a -> Reuse.access t ~addr:(8 * a)) addrs;
        let finite =
          List.fold_left (fun acc (_, c) -> acc + c) 0 (Reuse.histogram t)
        in
        Reuse.cold t + finite = Reuse.total t);
    Test.make ~name:"capacity-1 misses = non-consecutive-repeat accesses"
      ~count:100 (small_list (int_bound 6)) (fun blocks ->
        let t = Reuse.create ~granularity:8 () in
        List.iter (fun b -> Reuse.access t ~addr:(8 * b)) blocks;
        (* with one block of capacity, only immediate repeats hit *)
        let rec expected prev = function
          | [] -> 0
          | b :: rest ->
            (if Some b = prev then 0 else 1) + expected (Some b) rest
        in
        Reuse.misses t ~capacity_blocks:1 = expected None blocks) ]

let suites =
  [ ( "machine.reuse",
      [ Alcotest.test_case "cold only" `Quick test_cold_only;
        Alcotest.test_case "immediate reuse" `Quick test_immediate_reuse;
        Alcotest.test_case "distance counting" `Quick test_distance_counting;
        Alcotest.test_case "duplicates not distinct" `Quick test_duplicates_not_distinct;
        Alcotest.test_case "granularity" `Quick test_granularity_blocks;
        Alcotest.test_case "misses monotone" `Quick test_misses_monotone;
        Alcotest.test_case "proration rounds to nearest" `Quick
          test_proration_rounds_to_nearest;
        Alcotest.test_case "proration boundaries pinned" `Quick
          test_proration_boundaries_pinned;
        Alcotest.test_case "growth preserves histogram" `Slow
          test_growth_preserves_histogram;
        Alcotest.test_case "matches fully-assoc LRU" `Slow test_matches_fully_associative_lru ] );
    ( "machine.reuse_profiles",
      [ Alcotest.test_case "streaming profile" `Quick test_streaming_program_profile;
        Alcotest.test_case "blocking shifts curve" `Quick test_blocked_mm_shifts_curve;
        Alcotest.test_case "curve shape" `Quick test_curve_shape ] );
    ("machine.reuse_properties", List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_cases)
  ]
