open Bw_workloads

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let run p = Bw_exec.Interp.run p

let test_all_check () =
  (* every registered workload type-checks and runs at test scale *)
  List.iter
    (fun (e : Registry.entry) ->
      let p = e.Registry.build ~scale:1 in
      match Bw_ir.Check.check p with
      | Ok () -> ()
      | Error errs ->
        Alcotest.failf "%s: %s" e.Registry.name
          (String.concat "; "
             (List.map (fun er -> Format.asprintf "%a" Bw_ir.Check.pp_error er) errs)))
    Registry.all

let test_registry_names_unique () =
  let names = Registry.names () in
  check int "unique" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_registry_find () =
  check bool "finds fft" true (Registry.find "fft" <> None);
  check bool "missing" true (Registry.find "nope" = None)

let test_fig6_fused_equals_original () =
  (* the hand fusion reproduces (a) exactly, input stream included *)
  List.iter
    (fun n ->
      let o = run (Fig6.original ~n) and f = run (Fig6.fused ~n) in
      if not (Bw_exec.Interp.equal_observation o f) then
        Alcotest.failf "n=%d: fused differs from original" n)
    [ 4; 9; 16 ]

let test_fig7_fused_equals_original () =
  let o = run (Fig7.original ~n:500) and f = run (Fig7.fused_by_hand ~n:500) in
  check bool "equal" true (Bw_exec.Interp.equal_observation o f)

let test_mm_orders_agree () =
  let a = run (Kernels.mm ~order:Kernels.Ijk ~n:10 ()) in
  let b = run (Kernels.mm ~order:Kernels.Jki ~n:10 ()) in
  check bool "same product" true (Bw_exec.Interp.equal_observation a b)

let test_mm_known_product () =
  (* with Init_zero c and hash inits, verify one cell against a direct
     OCaml computation of the same deterministic inputs *)
  let n = 6 in
  let p = Kernels.mm ~order:Kernels.Jki ~n () in
  let obs = run p in
  match Lazy.force obs.Bw_exec.Interp.finals with
  | [ ("c", cells) ] ->
    check int "n*n cells" (n * n) (Array.length cells);
    (* every cell finite and nonzero *)
    Array.iter
      (function
        | Bw_exec.Interp.V_float x ->
          if not (Float.is_finite x) then Alcotest.fail "non-finite product"
        | Bw_exec.Interp.V_int _ -> Alcotest.fail "int cell")
      cells
  | _ -> Alcotest.fail "expected c live-out"

let test_stride_kernel_counts () =
  List.iter
    (fun (name, (w, r)) ->
      let n = 100 in
      let p = Stride_kernels.kernel ~writes:w ~reads:r ~n in
      let _, c = Bw_exec.Run.observe p in
      check int (name ^ " loads") (r * n) c.Bw_machine.Counters.loads;
      check int (name ^ " stores") (w * n) c.Bw_machine.Counters.stores)
    Stride_kernels.all

let test_stride_kernel_rejects_bad () =
  Alcotest.check_raises "writes > reads"
    (Invalid_argument
       "Stride_kernels.kernel: need 0 <= writes <= reads, reads >= 1")
    (fun () -> ignore (Stride_kernels.kernel ~writes:2 ~reads:1 ~n:10))

let test_fft_is_permutation_plus_butterflies () =
  (* The bit-reversal pass must be a permutation: running only stage 0
     (impossible to isolate here) is overkill; instead check the whole
     FFT is deterministic and touches every element. *)
  let p = Fft.fft ~log2n:6 in
  let o1 = run p and o2 = run p in
  check bool "deterministic" true (Bw_exec.Interp.equal_observation o1 o2);
  let _, c = Bw_exec.Run.observe p in
  (* butterflies: (n/2) log2 n of them, each ~10 flops *)
  let n = 64 in
  let butterflies = n / 2 * 6 in
  check bool "flop count plausible" true
    (c.Bw_machine.Counters.flops > 8 * butterflies
    && c.Bw_machine.Counters.flops < 20 * butterflies)

let test_sp_subroutines_run () =
  List.iter
    (fun (name, p) ->
      match Bw_ir.Check.check p with
      | Ok () -> ignore (run p)
      | Error _ -> Alcotest.failf "%s ill-formed" name)
    (Nas_sp.subroutines ~n:5)

let test_sp_has_seven_subroutines () =
  check int "seven" 7 (List.length (Nas_sp.subroutines ~n:4))

let test_sweep3d_wavefront_traffic () =
  (* the 2-D angular flux planes are reused heavily; 3-D arrays stream *)
  let p = Sweep3d.sweep ~n:12 ~octants:1 in
  let _, c = Bw_exec.Run.observe p in
  (* per cell: psi reads src, sigt and the 3 incoming phis = 5, and the
     flux update re-reads flux = 6; writes are flux, the stored angular
     flux and the 3 outgoing phis = 5 *)
  let cells = 12 * 12 * 12 in
  check int "loads" (6 * cells) c.Bw_machine.Counters.loads;
  check int "stores" (5 * cells) c.Bw_machine.Counters.stores

let test_workload_balance_ordering () =
  (* dmxpy demands more memory bytes/flop than blocked mm -- the Figure 1
     ordering that motivates the whole paper *)
  let machine =
    { Bw_machine.Machine.origin2000 with
      Bw_machine.Machine.name = "scaled";
      caches =
        [ { Bw_machine.Cache.size_bytes = 2048; line_bytes = 32; associativity = 2 };
          { Bw_machine.Cache.size_bytes = 64 * 1024;
            line_bytes = 128;
            associativity = 2 } ] }
  in
  let mem_balance p =
    let r = Bw_exec.Run.simulate ~machine p in
    match List.rev (Bw_exec.Run.program_balance r) with
    | (_, mem) :: _ -> mem
    | [] -> Alcotest.fail "no balance"
  in
  let dmxpy = mem_balance (Kernels.dmxpy ~n:128) in
  let blocked = mem_balance (Kernels.mm_blocked ~n:96 ~tile:24) in
  check bool
    (Printf.sprintf "dmxpy %.2f > blocked mm %.2f" dmxpy blocked)
    true (dmxpy > 4.0 *. blocked)

let test_random_programs_validation () =
  Alcotest.check_raises "loops 0"
    (Invalid_argument
       "Random_programs.generate: loops must be >= 1 (got 0)") (fun () ->
      ignore (Random_programs.generate ~seed:1 ~loops:0 ~arrays:2 ~n:10));
  Alcotest.check_raises "arrays 0"
    (Invalid_argument
       "Random_programs.generate: arrays must be >= 1 (got 0)") (fun () ->
      ignore (Random_programs.generate ~seed:1 ~loops:2 ~arrays:0 ~n:10));
  Alcotest.check_raises "n -3"
    (Invalid_argument "Random_programs.generate: n must be >= 1 (got -3)")
    (fun () ->
      ignore (Random_programs.generate ~seed:1 ~loops:2 ~arrays:2 ~n:(-3)))

let test_random_programs_deterministic () =
  let a = Random_programs.generate ~seed:5 ~loops:4 ~arrays:3 ~n:16 in
  let b = Random_programs.generate ~seed:5 ~loops:4 ~arrays:3 ~n:16 in
  check bool "equal" true (Bw_ir.Ast.equal_program a b)

(* Satellite property: for 100 seeds, both generators produce programs
   that type-check and survive a pretty-print/re-parse round trip. *)
let qcheck_cases =
  let open QCheck in
  let checks_and_roundtrips what p =
    (match Bw_ir.Check.check p with
    | Ok () -> ()
    | Error _ -> Test.fail_reportf "%s: Check.check failed" what);
    let printed = Format.asprintf "%a" Bw_ir.Pretty.pp_program p in
    match Bw_ir.Parser.parse_program printed with
    | Error e ->
      Test.fail_reportf "%s: re-parse failed: %a" what
        Bw_ir.Parser.pp_parse_error e
    | Ok p' -> Bw_ir.Ast.equal_program p p'
  in
  [ Test.make ~name:"random_programs check + roundtrip" ~count:100
      (int_range 1 10_000) (fun seed ->
        checks_and_roundtrips "random_programs"
          (Random_programs.generate ~seed ~loops:4 ~arrays:3 ~n:16));
    Test.make ~name:"qa gen check + roundtrip" ~count:100 (int_range 1 10_000)
      (fun seed ->
        checks_and_roundtrips "qa gen" (Bw_qa.Gen.generate ~seed ~size:6)) ]

let suites =
  [ ( "workloads.random",
      [ Alcotest.test_case "parameter validation" `Quick
          test_random_programs_validation;
        Alcotest.test_case "deterministic" `Quick
          test_random_programs_deterministic ] );
    ( "workloads.properties",
      List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_cases );
    ( "workloads.registry",
      [ Alcotest.test_case "all type-check and run" `Slow test_all_check;
        Alcotest.test_case "unique names" `Quick test_registry_names_unique;
        Alcotest.test_case "find" `Quick test_registry_find ] );
    ( "workloads.figures",
      [ Alcotest.test_case "fig6 fused = original" `Quick test_fig6_fused_equals_original;
        Alcotest.test_case "fig7 fused = original" `Quick test_fig7_fused_equals_original ] );
    ( "workloads.kernels",
      [ Alcotest.test_case "mm orders agree" `Quick test_mm_orders_agree;
        Alcotest.test_case "mm product sane" `Quick test_mm_known_product;
        Alcotest.test_case "stride kernel counts" `Quick test_stride_kernel_counts;
        Alcotest.test_case "stride kernel validation" `Quick test_stride_kernel_rejects_bad;
        Alcotest.test_case "fft structure" `Quick test_fft_is_permutation_plus_butterflies ] );
    ( "workloads.applications",
      [ Alcotest.test_case "sp subroutines" `Quick test_sp_subroutines_run;
        Alcotest.test_case "sp count" `Quick test_sp_has_seven_subroutines;
        Alcotest.test_case "sweep3d traffic" `Quick test_sweep3d_wavefront_traffic;
        Alcotest.test_case "balance ordering" `Slow test_workload_balance_ordering ] )
  ]
