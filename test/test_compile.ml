(* Differential testing of the two execution engines: the tree-walking
   interpreter and the closure compiler must produce bit-identical
   observations AND identical event streams (counters) on everything. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let counters_of run p =
  let c = Bw_machine.Counters.create () in
  let sink =
    Bw_exec.Interp.make_sink
      ~on_trace:
        (Bw_machine.Trace_buffer.drain ~f:(fun kind _addr _bytes ->
             if kind = Bw_machine.Trace_buffer.kind_load then
               c.Bw_machine.Counters.loads <- c.Bw_machine.Counters.loads + 1
             else
               c.Bw_machine.Counters.stores <-
                 c.Bw_machine.Counters.stores + 1))
      ()
  in
  let obs = run ~sink p in
  Bw_exec.Interp.flush_sink sink;
  c.Bw_machine.Counters.flops <- sink.Bw_exec.Interp.flops;
  c.Bw_machine.Counters.int_ops <- sink.Bw_exec.Interp.int_ops;
  (obs, c)

let differential name p =
  let o1, c1 = counters_of (fun ~sink p -> Bw_exec.Interp.run ~sink p) p in
  let o2, c2 = counters_of (fun ~sink p -> Bw_exec.Compile.run ~sink p) p in
  if not (Bw_exec.Interp.equal_observation o1 o2) then
    Alcotest.failf "%s: engines disagree on observations" name;
  check int (name ^ " flops") c1.Bw_machine.Counters.flops
    c2.Bw_machine.Counters.flops;
  check int (name ^ " loads") c1.Bw_machine.Counters.loads
    c2.Bw_machine.Counters.loads;
  check int (name ^ " stores") c1.Bw_machine.Counters.stores
    c2.Bw_machine.Counters.stores

let test_engines_agree_on_registry () =
  List.iter
    (fun (e : Bw_workloads.Registry.entry) ->
      differential e.Bw_workloads.Registry.name
        (e.Bw_workloads.Registry.build ~scale:1))
    Bw_workloads.Registry.all

let test_engines_agree_on_random_programs () =
  for seed = 1 to 15 do
    differential
      (Printf.sprintf "random %d" seed)
      (Bw_workloads.Random_programs.generate ~seed ~loops:5 ~arrays:4 ~n:64)
  done

let test_engines_agree_on_transformed_programs () =
  let p = Bw_workloads.Fig6.fused ~n:24 in
  let p', _ = Bw_transform.Strategy.run p in
  differential "fig6 optimised" p';
  let q = Bw_workloads.Fig7.original ~n:500 in
  let q', _ = Bw_transform.Strategy.run q in
  differential "fig7 optimised" q'

let test_compile_bounds_check () =
  let p =
    Bw_ir.Parser.parse_program_exn
      {|
      program oob
        real a[4]
        real x
        x = a[5]
      end
      |}
  in
  match Bw_exec.Compile.run p with
  | exception Bw_exec.Compile.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected a bounds error"

let test_compile_is_faster () =
  (* not a strict benchmark, but the compiler should clearly win on a
     sizeable loop; allow generous slack for machine noise *)
  let p = Bw_workloads.Simple_example.read_loop ~n:400_000 in
  let time f =
    let t0 = Sys.time () in
    ignore (f p);
    Sys.time () -. t0
  in
  ignore (time Bw_exec.Compile.run);
  let interp = time Bw_exec.Interp.run in
  let compiled = time Bw_exec.Compile.run in
  check bool
    (Printf.sprintf "compiled %.3fs < interp %.3fs" compiled interp)
    true
    (compiled < interp)

let suites =
  [ ( "exec.compile",
      [ Alcotest.test_case "registry differential" `Slow test_engines_agree_on_registry;
        Alcotest.test_case "random differential" `Quick test_engines_agree_on_random_programs;
        Alcotest.test_case "transformed differential" `Quick test_engines_agree_on_transformed_programs;
        Alcotest.test_case "bounds checked" `Quick test_compile_bounds_check;
        Alcotest.test_case "faster than the interpreter" `Slow test_compile_is_faster ] )
  ]
