(* Property tests: the optimised cache access path (shift/mask address
   splitting, hot-line memos, unrolled probes) must be bit-identical to
   the div/mod reference model ([~fast:false]) in every observable
   counter, on arbitrary traces and geometries. *)

open Bw_machine

(* --- trace model --------------------------------------------------------- *)

type op =
  | Read of int * int  (* addr, bytes *)
  | Write of int * int
  | Clear  (* mid-trace [Cache.clear] must also keep the models in sync *)

let apply cache op =
  match op with
  | Read (addr, bytes) -> Cache.read cache ~addr ~bytes
  | Write (addr, bytes) -> Cache.write cache ~addr ~bytes
  | Clear -> Cache.clear cache

let op_gen ~with_clear =
  let open QCheck.Gen in
  (* Addresses concentrated in a few KB so sets collide and LRU order,
     evictions and write-backs are actually exercised; a sprinkle of
     large addresses covers tag turnover.  Sizes cross line
     boundaries. *)
  let addr =
    oneof
      [ int_range 0 4096;
        map (fun x -> x * 8) (int_range 0 2048);
        int_range 0 (1 lsl 20)
      ]
  in
  let bytes = oneof [ return 8; return 4; return 1; int_range 1 40 ] in
  let access = map3 (fun k a b -> if k then Read (a, b) else Write (a, b))
      bool addr bytes
  in
  if with_clear then
    frequency [ (40, access); (1, return Clear) ]
  else access

let trace_gen ~with_clear =
  QCheck.Gen.(list_size (int_range 0 600) (op_gen ~with_clear))

let trace_print ops =
  String.concat "; "
    (List.map
       (function
         | Read (a, b) -> Printf.sprintf "R %d/%d" a b
         | Write (a, b) -> Printf.sprintf "W %d/%d" a b
         | Clear -> "clear")
       ops)

let trace_arb ~with_clear =
  QCheck.make ~print:trace_print (trace_gen ~with_clear)

(* --- comparison ---------------------------------------------------------- *)

let stats_to_list (s : Cache.level_stats) =
  [ ("reads", s.Cache.reads);
    ("writes", s.Cache.writes);
    ("read_misses", s.Cache.read_misses);
    ("write_misses", s.Cache.write_misses);
    ("writebacks", s.Cache.writebacks)
  ]

let assert_same ~what fast reference =
  for i = 0 to Cache.level_count fast - 1 do
    List.iter2
      (fun (name, f) (_, r) ->
        if f <> r then
          QCheck.Test.fail_reportf
            "%s: level %d %s differ: fast=%d reference=%d" what i name f r)
      (stats_to_list (Cache.stats fast i))
      (stats_to_list (Cache.stats reference i))
  done;
  if Cache.memory_lines_in fast <> Cache.memory_lines_in reference then
    QCheck.Test.fail_reportf "%s: memory_lines_in differ: fast=%d reference=%d"
      what
      (Cache.memory_lines_in fast)
      (Cache.memory_lines_in reference);
  if Cache.memory_lines_out fast <> Cache.memory_lines_out reference then
    QCheck.Test.fail_reportf
      "%s: memory_lines_out differ: fast=%d reference=%d" what
      (Cache.memory_lines_out fast)
      (Cache.memory_lines_out reference)

let equiv_property ~name ?write_policy ~with_clear geometries =
  QCheck.Test.make ~count:300 ~name (trace_arb ~with_clear) (fun ops ->
      let fast = Cache.create ?write_policy ~fast:true geometries in
      let reference = Cache.create ?write_policy ~fast:false geometries in
      List.iter
        (fun op ->
          apply fast op;
          apply reference op)
        ops;
      assert_same ~what:"before flush" fast reference;
      Cache.flush fast;
      Cache.flush reference;
      assert_same ~what:"after flush" fast reference;
      true)

(* --- geometries ---------------------------------------------------------- *)

let direct_mapped =
  (* 32 sets x 1 way x 32B: pure shift/mask fast path *)
  [ { Cache.size_bytes = 1024; line_bytes = 32; associativity = 1 } ]

let two_way =
  (* 16 sets x 2 ways x 16B: unrolled 2-way probe *)
  [ { Cache.size_bytes = 512; line_bytes = 16; associativity = 2 } ]

let non_pow2_sets =
  (* 6 sets x 2 ways x 16B: set count not a power of two, so the fast
     path must fall back to div/mod indexing for this level *)
  [ { Cache.size_bytes = 192; line_bytes = 16; associativity = 2 } ]

let four_way =
  (* 8 sets x 4 ways x 32B: generic probe loop inside the fast path *)
  [ { Cache.size_bytes = 1024; line_bytes = 32; associativity = 4 } ]

let two_level =
  (* small L1 over a larger L2 with longer lines, like Origin2000 *)
  [ { Cache.size_bytes = 256; line_bytes = 16; associativity = 2 };
    { Cache.size_bytes = 2048; line_bytes = 64; associativity = 2 }
  ]

let two_level_mixed =
  (* pow2 L1 over a non-pow2-set L2: fast and fallback in one hierarchy *)
  [ { Cache.size_bytes = 128; line_bytes = 16; associativity = 1 };
    { Cache.size_bytes = 768; line_bytes = 32; associativity = 2 }
  ]

let properties =
  [ equiv_property ~name:"direct-mapped, write-back" ~with_clear:false
      direct_mapped;
    equiv_property ~name:"2-way, write-back" ~with_clear:false two_way;
    equiv_property ~name:"2-way, write-through"
      ~write_policy:Cache.Write_through ~with_clear:false two_way;
    equiv_property ~name:"non-pow2 sets, write-back" ~with_clear:false
      non_pow2_sets;
    equiv_property ~name:"non-pow2 sets, write-through"
      ~write_policy:Cache.Write_through ~with_clear:false non_pow2_sets;
    equiv_property ~name:"4-way, write-back" ~with_clear:false four_way;
    equiv_property ~name:"two-level, write-back" ~with_clear:false two_level;
    equiv_property ~name:"two-level mixed pow2/non-pow2, write-back"
      ~with_clear:false two_level_mixed;
    equiv_property ~name:"two-level, write-back, mid-trace clear"
      ~with_clear:true two_level;
    equiv_property ~name:"2-way, write-through, mid-trace clear"
      ~write_policy:Cache.Write_through ~with_clear:true two_way
  ]

let suites =
  [ ( "cache fast/reference equivalence",
      List.map (QCheck_alcotest.to_alcotest ~long:false) properties )
  ]
