let () =
  Alcotest.run "bandwidth_repro"
    (Test_graph.suites @ Test_ir.suites @ Test_machine.suites
   @ Test_exec.suites @ Test_analysis.suites @ Test_transform.suites
   @ Test_workloads.suites @ Test_fusion.suites @ Test_core.suites
   @ Test_reuse.suites @ Test_packing.suites @ Test_compile.suites
   @ Test_cache_equiv.suites @ Test_trace_store.suites @ Test_misc.suites
   @ Test_obs.suites @ Test_qa.suites @ Test_predict.suites
   @ Test_serve.suites @ Test_lang.suites @ Test_search.suites)
