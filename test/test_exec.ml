open Bw_ir
open Bw_exec

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let float_value = function
  | Interp.V_float x -> x
  | Interp.V_int _ -> Alcotest.fail "expected a float value"

(* --- basic semantics ------------------------------------------------------- *)

let test_sum_loop () =
  let p =
    Parser.parse_program_exn
      {|
      program sum10
        real a[10] = linear(1.0, 1.0)
        real sum
        live_out sum
        for i = 1, 10
          sum = sum + a[i]
        end for
        print sum
      end
      |}
  in
  let obs = Interp.run p in
  (* a[i] = 1 + (i-1): 1..10 summed = 55 *)
  match obs.Interp.prints with
  | [ v ] -> check (Alcotest.float 1e-12) "sum" 55.0 (float_value v)
  | _ -> Alcotest.fail "expected one print"

let test_two_dim_column_major () =
  (* a[i,j] with dims [2;3]: flattened offset (i-1) + (j-1)*2. *)
  let p =
    Parser.parse_program_exn
      {|
      program colmajor
        real a[2,3] = linear(0.0, 1.0)
        real x
        x = a[2,3]
        print x
      end
      |}
  in
  let obs = Interp.run p in
  match obs.Interp.prints with
  | [ v ] -> check (Alcotest.float 1e-12) "a[2,3] = offset 5" 5.0 (float_value v)
  | _ -> Alcotest.fail "expected one print"

let test_if_and_bounds () =
  let p =
    Parser.parse_program_exn
      {|
      program branches
        real x
        for i = 1, 4
          if (i <= 2)
            x = x + 1.0
          else
            x = x + 10.0
          end if
        end for
        print x
      end
      |}
  in
  let obs = Interp.run p in
  match obs.Interp.prints with
  | [ v ] -> check (Alcotest.float 1e-12) "2*1 + 2*10" 22.0 (float_value v)
  | _ -> Alcotest.fail "expected one print"

let test_stepped_loop () =
  let p =
    Parser.parse_program_exn
      {|
      program stepped
        integer k
        for i = 1, 10, 3
          k = k + 1
        end for
        print k
      end
      |}
  in
  let obs = Interp.run p in
  match obs.Interp.prints with
  | [ Interp.V_int n ] -> check int "iterations 1,4,7,10" 4 n
  | _ -> Alcotest.fail "expected one int print"

let test_out_of_bounds () =
  let p =
    Parser.parse_program_exn
      {|
      program oob
        real a[4]
        real x
        x = a[5]
      end
      |}
  in
  match Interp.run p with
  | exception Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected a bounds error"

let test_zero_subscript_rejected () =
  let p =
    Parser.parse_program_exn
      {|
      program oob0
        real a[4]
        real x
        x = a[0]
      end
      |}
  in
  match Interp.run p with
  | exception Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected a bounds error (1-based subscripts)"

let test_read_input_deterministic () =
  let src =
    {|
    program inputs
      real a[4]
      live_out a
      for i = 1, 4
        read(a[i])
      end for
    end
    |}
  in
  let obs1 = Interp.run (Parser.parse_program_exn src) in
  let obs2 = Interp.run (Parser.parse_program_exn src) in
  check bool "reproducible inputs" true (Interp.equal_observation obs1 obs2)

(* input_offset shifts the deterministic read() stream: offset 0 is the
   default stream, a nonzero offset yields different (still
   deterministic) inputs, and both engines agree at any offset. *)
let test_input_offset_shifts_stream () =
  let src =
    {|
    program inputs
      real a[4]
      live_out a
      for i = 1, 4
        read(a[i])
      end for
    end
    |}
  in
  let p = Parser.parse_program_exn src in
  let o_default = Interp.run p in
  check bool "offset 0 is the default stream" true
    (Interp.equal_observation o_default (Interp.run ~input_offset:0 p));
  let o_shifted = Interp.run ~input_offset:7919 p in
  check bool "nonzero offset changes the inputs" false
    (Interp.equal_observation o_default o_shifted);
  check bool "compiled engine agrees at the offset" true
    (Interp.equal_observation o_shifted (Compile.run ~input_offset:7919 p))

let test_intrinsic_deterministic () =
  let src =
    {|
    program calls
      real x
      x = f(1.5, 2.5)
      print x
      print g(x)
    end
    |}
  in
  let o1 = Interp.run (Parser.parse_program_exn src) in
  let o2 = Interp.run (Parser.parse_program_exn src) in
  check bool "deterministic" true (Interp.equal_observation o1 o2);
  (* f and g differ *)
  match o1.Interp.prints with
  | [ a; b ] -> check bool "distinct intrinsics" true (float_value a <> float_value b)
  | _ -> Alcotest.fail "expected two prints"

let test_live_out_snapshot () =
  let p =
    Parser.parse_program_exn
      {|
      program snap
        real a[3] = zero
        live_out a
        for i = 1, 3
          a[i] = float(i) * 2.0
        end for
      end
      |}
  in
  let obs = Interp.run p in
  match Lazy.force obs.Interp.finals with
  | [ ("a", values) ] ->
    check int "length" 3 (Array.length values);
    check (Alcotest.float 1e-12) "a[2]" 4.0 (float_value values.(1))
  | _ -> Alcotest.fail "expected one live-out array"

(* --- event counting --------------------------------------------------------- *)

let counted_run src =
  let p = Parser.parse_program_exn src in
  Run.observe p

let test_counts_simple_update () =
  (* for i=1..100: a[i] = a[i] + 0.4 -- 1 load, 1 store, 1 flop per iter *)
  let _, c =
    counted_run
      {|
      program upd
        real a[100]
        live_out a
        for i = 1, 100
          a[i] = a[i] + 0.4
        end for
      end
      |}
  in
  check int "loads" 100 c.Bw_machine.Counters.loads;
  check int "stores" 100 c.Bw_machine.Counters.stores;
  check int "flops" 100 c.Bw_machine.Counters.flops

let test_counts_scalars_free () =
  (* scalar-only arithmetic generates no loads/stores *)
  let _, c =
    counted_run
      {|
      program scal
        real x
        for i = 1, 50
          x = x + 1.0
        end for
      end
      |}
  in
  check int "no loads" 0 c.Bw_machine.Counters.loads;
  check int "no stores" 0 c.Bw_machine.Counters.stores;
  check int "flops" 50 c.Bw_machine.Counters.flops

let test_counts_dot_product () =
  let _, c =
    counted_run
      {|
      program dot
        real a[64]
        real b[64]
        real s
        live_out s
        for i = 1, 64
          s = s + a[i] * b[i]
        end for
      end
      |}
  in
  check int "loads" 128 c.Bw_machine.Counters.loads;
  check int "flops = mul + add" 128 c.Bw_machine.Counters.flops

(* --- simulation on machine models --------------------------------------------- *)

let section21_write_loop n =
  Parser.parse_program_exn
    (Printf.sprintf
       {|
       program write_loop
         real a[%d]
         live_out a
         for i = 1, %d
           a[i] = a[i] + 0.4
         end for
       end
       |}
       n n)

let section21_read_loop n =
  Parser.parse_program_exn
    (Printf.sprintf
       {|
       program read_loop
         real a[%d]
         real sum
         live_out sum
         for i = 1, %d
           sum = sum + a[i]
         end for
       end
       |}
       n n)

(* The paper's Section 2.1 example: the read+write loop takes ~2x the
   read-only loop, because it moves twice the memory traffic. *)
let test_section21_ratio () =
  let n = 500_000 in
  let machine = Bw_machine.Machine.origin2000 in
  let w = Run.simulate ~machine (section21_write_loop n) in
  let r = Run.simulate ~machine (section21_read_loop n) in
  let ratio = Run.seconds w /. Run.seconds r in
  check bool
    (Printf.sprintf "write/read ratio %.2f in [1.7, 2.3]" ratio)
    true
    (ratio > 1.7 && ratio < 2.3);
  check Alcotest.string "both memory bound" "Mem-L2"
    w.Run.breakdown.Bw_machine.Timing.binding_resource

let test_program_balance_streaming () =
  (* Streaming read of one array: memory balance = 8 bytes per flop. *)
  let machine = Bw_machine.Machine.origin2000 in
  let r = Run.simulate ~machine (section21_read_loop 500_000) in
  match Run.program_balance r with
  | [ ("L1-Reg", reg); ("L2-L1", l2); ("Mem-L2", mem) ] ->
    check (Alcotest.float 0.1) "register balance" 8.0 reg;
    check bool "L2 balance near 8" true (l2 > 7.0 && l2 < 9.0);
    check bool "memory balance near 8" true (mem > 7.0 && mem < 9.0)
  | _ -> Alcotest.fail "expected three boundaries"

let test_effective_bandwidth_saturates () =
  let machine = Bw_machine.Machine.origin2000 in
  let r = Run.simulate ~machine (section21_read_loop 500_000) in
  let bw = Run.effective_bandwidth r in
  check bool "near 312 MB/s" true (bw > 250e6 && bw < 320e6)

let test_observation_matches_across_machines () =
  (* Machine model must not affect semantics. *)
  let p = section21_write_loop 10_000 in
  let o1 = (Run.simulate ~machine:Bw_machine.Machine.origin2000 p).Run.observation in
  let o2 = (Run.simulate ~machine:Bw_machine.Machine.exemplar p).Run.observation in
  check bool "same observation" true (Interp.equal_observation o1 o2)

let test_small_array_stays_in_cache () =
  (* Repeatedly sweeping a 1000-element array: after the first sweep it
     lives in L1+L2, so memory traffic stays near one array's worth. *)
  let p =
    Parser.parse_program_exn
      {|
      program resident
        real a[1000]
        real s
        live_out s
        for r = 1, 100
          for i = 1, 1000
            s = s + a[i]
          end for
        end for
      end
      |}
  in
  let r = Run.simulate ~machine:Bw_machine.Machine.origin2000 p in
  let mem_bytes = Bw_machine.Timing.memory_bytes r.Run.cache in
  check bool
    (Printf.sprintf "memory traffic %d < 3 array sizes" mem_bytes)
    true
    (mem_bytes < 3 * 8000)

(* --- QCheck ------------------------------------------------------------------- *)

let qcheck_cases =
  let open QCheck in
  [ Test.make ~name:"sum of linear array matches closed form" ~count:30
      (int_range 1 200) (fun n ->
        let p = section21_read_loop n in
        let obs, _ = Run.observe p in
        match Lazy.force obs.Interp.finals with
        | [ ("sum", [| Interp.V_float s |]) ] ->
          (* init linear(1.0, 0.001): sum = n + 0.001 * (0+..+n-1) *)
          let expected =
            float_of_int n +. (0.001 *. float_of_int (n * (n - 1) / 2))
          in
          Float.abs (s -. expected) < 1e-6
        | _ -> false);
    Test.make ~name:"loads scale linearly with trip count" ~count:30
      (int_range 1 100) (fun n ->
        let _, c = Run.observe (section21_write_loop n) in
        c.Bw_machine.Counters.loads = n && c.Bw_machine.Counters.stores = n);
    (* Differential property over the two engines: on any generated
       program (and any read() stream offset) the tree-walking
       interpreter and the closure-compiling engine must produce equal
       observations — the oracle the optimizer guard's validation
       stands on. *)
    Test.make ~name:"interpreter and compiled engine agree" ~count:25
      (pair (int_range 0 10_000) (int_range 0 3))
      (fun (seed, offset_k) ->
        let p =
          Bw_workloads.Random_programs.generate ~seed ~loops:4 ~arrays:3 ~n:48
        in
        let input_offset = offset_k * 7919 in
        Interp.equal_observation
          (Interp.run ~input_offset p)
          (Compile.run ~input_offset p)) ]

let suites =
  [ ( "exec.semantics",
      [ Alcotest.test_case "sum loop" `Quick test_sum_loop;
        Alcotest.test_case "column-major layout" `Quick test_two_dim_column_major;
        Alcotest.test_case "if/else" `Quick test_if_and_bounds;
        Alcotest.test_case "stepped loop" `Quick test_stepped_loop;
        Alcotest.test_case "out of bounds" `Quick test_out_of_bounds;
        Alcotest.test_case "zero subscript" `Quick test_zero_subscript_rejected;
        Alcotest.test_case "read() deterministic" `Quick test_read_input_deterministic;
        Alcotest.test_case "input_offset shifts stream" `Quick test_input_offset_shifts_stream;
        Alcotest.test_case "intrinsics deterministic" `Quick test_intrinsic_deterministic;
        Alcotest.test_case "live-out snapshot" `Quick test_live_out_snapshot ] );
    ( "exec.counters",
      [ Alcotest.test_case "simple update" `Quick test_counts_simple_update;
        Alcotest.test_case "scalars are free" `Quick test_counts_scalars_free;
        Alcotest.test_case "dot product" `Quick test_counts_dot_product ] );
    ( "exec.simulation",
      [ Alcotest.test_case "section 2.1 ratio" `Quick test_section21_ratio;
        Alcotest.test_case "streaming balance" `Quick test_program_balance_streaming;
        Alcotest.test_case "bandwidth saturation" `Quick test_effective_bandwidth_saturates;
        Alcotest.test_case "machine-independent semantics" `Quick test_observation_matches_across_machines;
        Alcotest.test_case "cache-resident array" `Quick test_small_array_stays_in_cache ] );
    ("exec.properties", List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_cases)
  ]
