open Bw_ir
open Bw_analysis

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* --- Affine -------------------------------------------------------------- *)

let affine_of s =
  match Parser.parse_expr s with
  | Ok e -> Affine.of_expr e
  | Error _ -> Alcotest.failf "cannot parse %s" s

let test_affine_extraction () =
  (match affine_of "2*i + j - 3" with
  | Some f ->
    check int "coeff i" 2 (Affine.coeff f "i");
    check int "coeff j" 1 (Affine.coeff f "j");
    check int "const" (-3) f.Affine.const
  | None -> Alcotest.fail "expected affine");
  check bool "i*j rejected" true (affine_of "i*j" = None);
  check bool "i/2 rejected" true (affine_of "i/2" = None);
  (match affine_of "4*(i - 1) + 2" with
  | Some f ->
    check int "distributed coeff" 4 (Affine.coeff f "i");
    check int "distributed const" (-2) f.Affine.const
  | None -> Alcotest.fail "expected affine")

let test_affine_roundtrip () =
  match affine_of "3*i + 2" with
  | Some f -> (
    match Affine.of_expr (Affine.to_expr f) with
    | Some f' -> check bool "roundtrip" true (Affine.equal f f')
    | None -> Alcotest.fail "to_expr not affine")
  | None -> Alcotest.fail "expected affine"

let test_affine_arith () =
  let a = Option.get (affine_of "i + 1") in
  let b = Option.get (affine_of "i - 1") in
  let d = Affine.sub a b in
  check bool "i cancels" true (Affine.is_const d);
  check int "difference" 2 d.Affine.const;
  check int "eval" 11 (Affine.eval a (fun _ -> 10))

(* --- Refs ----------------------------------------------------------------- *)

let test_refs_collect () =
  let p =
    Parser.parse_program_exn
      {|
      program refs
        real a[10,10]
        real b[10]
        live_out b
        for j = 1, 10
          for i = 1, 10
            b[i] = b[i] + a[i,j]
          end for
        end for
      end
      |}
  in
  let refs = Refs.collect p.Ast.body in
  check int "three array refs" 3 (List.length refs);
  let writes = Refs.writes refs in
  check int "one write" 1 (List.length writes);
  let w = List.hd writes in
  check Alcotest.string "write target" "b" w.Refs.array;
  check int "two enclosing loops" 2 (List.length w.Refs.loops)

let test_refs_subscript_wrt () =
  let p =
    Parser.parse_program_exn
      {|
      program s
        real a[10,10]
        real x
        for j = 2, 10
          x = a[3, j-1]
        end for
      end
      |}
  in
  let refs = Refs.collect p.Ast.body in
  match Refs.of_array "a" refs with
  | [ r ] -> (
    match Refs.subscript_wrt r ~index:"j" with
    | Some (dim, f) ->
      check int "dim 1" 1 dim;
      check int "offset -1" (-1) f.Affine.const
    | None -> Alcotest.fail "expected j in dim 1")
  | _ -> Alcotest.fail "expected one ref"

(* --- Depend --------------------------------------------------------------- *)

let loop_of src =
  let p = Parser.parse_program_exn src in
  match p.Ast.body with
  | [ Ast.For l ] -> l
  | _ -> Alcotest.fail "expected a single loop"

let mk_pair body1 body2 =
  ( loop_of
      (Printf.sprintf
         "program p1\n real a[100]\n real b[100]\n real c[100]\n live_out a, b, c\n for i = 2, 99\n %s\n end for\nend"
         body1),
    loop_of
      (Printf.sprintf
         "program p2\n real a[100]\n real b[100]\n real c[100]\n live_out a, b, c\n for i = 2, 99\n %s\n end for\nend"
         body2) )

let test_fusable_cases () =
  let expect_ok b1 b2 =
    let l1, l2 = mk_pair b1 b2 in
    match Depend.fusable l1 l2 with
    | Ok () -> ()
    | Error e -> Alcotest.failf "%s | %s: %s" b1 b2 e
  in
  let expect_reject b1 b2 =
    let l1, l2 = mk_pair b1 b2 in
    match Depend.fusable l1 l2 with
    | Ok () -> Alcotest.failf "%s | %s: expected rejection" b1 b2
    | Error _ -> ()
  in
  expect_ok "a[i] = a[i] + 1.0" "b[i] = a[i]";
  expect_ok "a[i] = a[i] + 1.0" "b[i] = a[i-1]";
  expect_reject "a[i] = a[i] + 1.0" "b[i] = a[i+1]";
  (* anti-dependence: reading ahead of a later loop's write is safe after
     fusion (the write lands in a strictly later iteration), but reading
     behind it is not (the fused write clobbers the value early) *)
  expect_ok "b[i] = a[i+1]" "a[i] = b[i] * 2.0";
  expect_reject "b[i] = a[i-1]" "a[i] = b[i] * 2.0";
  (* disjoint arrays always fuse *)
  expect_ok "a[i] = a[i] + 1.0" "c[i] = c[i] * 2.0";
  (* same-element output dependence is fine *)
  expect_ok "a[i] = 1.0" "a[i] = a[i] + 2.0"

let test_constant_bounds_edges () =
  let open Bw_ir.Builder in
  let mk ?step lo hi = { Ast.index = "i"; lo; hi;
                         step = Option.value step ~default:(int 1);
                         body = [] } in
  check bool "negative step" true
    (Depend.constant_bounds (mk ~step:(int (-1)) (int 10) (int 1))
    = Some (10, 1, -1));
  check bool "non-unit step" true
    (Depend.constant_bounds (mk ~step:(int 3) (int 1) (int 20))
    = Some (1, 20, 3));
  check bool "symbolic bound" true
    (Depend.constant_bounds (mk (int 1) (v "n")) = None);
  check bool "symbolic step" true
    (Depend.constant_bounds (mk ~step:(v "s") (int 1) (int 9)) = None)

let test_pair_test_mismatched_coeffs () =
  let pair body =
    let l =
      loop_of
        (Printf.sprintf
           "program p\n real a[400]\n live_out a\n for i = 1, 99\n %s\n end for\nend"
           body)
    in
    match Depend.loop_pairs l with
    | [ pi ] -> pi.Depend.answer
    | ps -> Alcotest.failf "expected one pair, got %d" (List.length ps)
  in
  (* gcd(2,3) = 1 divides everything: can't rule the pair out *)
  check bool "2i vs 3i unknown" true (pair "a[2*i] = a[3*i]" = Depend.Unknown);
  (* gcd(2,4) = 2 does not divide 1: provably disjoint *)
  check bool "2i vs 4i+1 independent" true
    (pair "a[2*i] = a[4*i+1]" = Depend.Independent);
  (* same parity: solutions exist somewhere *)
  check bool "2i vs 4i+2 unknown" true
    (pair "a[2*i] = a[4*i+2]" = Depend.Unknown);
  (* equal coefficients, non-multiple offset: disjoint lattices *)
  check bool "2i vs 2i+1 independent" true
    (pair "a[2*i] = a[2*i+1]" = Depend.Independent)

let test_pair_test_symmetry () =
  (* swapping the refs negates the distance *)
  let l =
    loop_of
      "program p\n real a[100]\n live_out a\n for i = 2, 99\n a[i] = a[i-1]\n end for\nend"
  in
  let refs = Refs.collect l.Ast.body in
  let w = List.hd (Refs.writes refs) and r = List.hd (Refs.reads refs) in
  (match
     (Depend.pair_test ~index:"i" w r, Depend.pair_test ~index:"i" r w)
   with
  | Depend.Dependent (Some d1), Depend.Dependent (Some d2) ->
    check int "negated" d1 (-d2);
    check int "value" 1 (abs d1)
  | a, b ->
    Alcotest.failf "expected distances, got %a / %a" Depend.pp_answer a
      Depend.pp_answer b);
  (* and an independent pair is independent from both sides *)
  let l2 =
    loop_of
      "program p\n real a[100]\n live_out a\n for i = 1, 49\n a[2*i] = a[2*i+1]\n end for\nend"
  in
  let refs2 = Refs.collect l2.Ast.body in
  let w2 = List.hd (Refs.writes refs2) and r2 = List.hd (Refs.reads refs2) in
  check bool "independent both ways" true
    (Depend.pair_test ~index:"i" w2 r2 = Depend.Independent
    && Depend.pair_test ~index:"i" r2 w2 = Depend.Independent)

let test_fusable_scalar_carried () =
  let mk b =
    loop_of
      (Printf.sprintf
         "program p\n real a[100]\n real b[100]\n real c[100]\n real t\n live_out a, b, c\n for i = 2, 99\n %s\n end for\nend"
         b)
  in
  (* t flows from loop 1 into loop 2 where it is read before any write:
     not private, so fusion must be rejected *)
  let l1 = mk "t = a[i]\n b[i] = t" in
  let l2 = mk "c[i] = t" in
  (match Depend.fusable l1 l2 with
  | Ok () -> Alcotest.fail "carried scalar must block fusion"
  | Error reason -> check bool "names the scalar" true (reason <> ""));
  (* written-before-read in the second loop: private, fusable *)
  let l3 = mk "t = c[i]\n a[i] = t" in
  match Depend.fusable l1 l3 with
  | Ok () -> ()
  | Error reason -> Alcotest.failf "private scalar should fuse: %s" reason

let test_fusable_read_stream () =
  (* two read() loops both consume the sequential input stream; fusing
     them would interleave their stream positions *)
  let mk b =
    loop_of
      (Printf.sprintf
         "program p\n real a[100]\n real b[100]\n live_out a, b\n for i = 1, 100\n %s\n end for\nend"
         b)
  in
  let reads_a = mk "read(a[i])" and reads_b = mk "read(b[i])" in
  (match Depend.fusable reads_a reads_b with
  | Ok () -> Alcotest.fail "two input-consuming loops must not fuse"
  | Error _ -> ());
  (* one consumer + one pure compute loop is fine *)
  let compute = mk "b[i] = b[i] * 2.0" in
  match Depend.fusable reads_a compute with
  | Ok () -> ()
  | Error reason -> Alcotest.failf "read + compute should fuse: %s" reason

let test_pair_test_multidim () =
  let p =
    Parser.parse_program_exn
      {|
      program md
        real a[10,10]
        live_out a
        for j = 2, 10
          a[3, j] = a[3, j-1] + 1.0
        end for
      end
      |}
  in
  let refs = Refs.collect p.Ast.body in
  let w = List.hd (Refs.writes refs) in
  let r = List.hd (Refs.reads refs) in
  match Depend.pair_test ~index:"j" w r with
  | Depend.Dependent (Some 1) -> ()
  | other -> Alcotest.failf "expected distance 1, got %a" Depend.pp_answer other

let test_gcd_independent () =
  (* a[2i] written, a[2i+1] read: parity separates them *)
  let p =
    Parser.parse_program_exn
      {|
      program par
        real a[40]
        live_out a
        for i = 1, 19
          a[2*i] = a[2*i+1] + 1.0
        end for
      end
      |}
  in
  let refs = Refs.collect p.Ast.body in
  let w = List.hd (Refs.writes refs) in
  let r = List.hd (Refs.reads refs) in
  (match Depend.pair_test ~index:"i" w r with
  | Depend.Independent -> ()
  | other -> Alcotest.failf "expected independent, got %a" Depend.pp_answer other);
  (* and with compatible parity the GCD test cannot rule it out *)
  let p2 =
    Parser.parse_program_exn
      {|
      program par2
        real a[40]
        live_out a
        for i = 1, 19
          a[2*i] = a[4*i] + 1.0
        end for
      end
      |}
  in
  let refs2 = Refs.collect p2.Ast.body in
  let w2 = List.hd (Refs.writes refs2) in
  let r2 = List.hd (Refs.reads refs2) in
  match Depend.pair_test ~index:"i" w2 r2 with
  | Depend.Unknown -> ()
  | other -> Alcotest.failf "expected unknown, got %a" Depend.pp_answer other

let test_gcd_blocks_fusion () =
  (* fusion of even-writer with odd-reader is legal: no overlap at all *)
  let l b =
    loop_of
      (Printf.sprintf
         "program p
 real a[100]
 real b[100]
 live_out a, b
 for i = 1, 40
 %s
 end for
end"
         b)
  in
  let l1 = l "a[2*i] = a[2*i] + 1.0" in
  let l2 = l "b[i] = a[2*i + 1]" in
  match Depend.fusable l1 l2 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "expected fusable via GCD: %s" e

let test_pair_test_independent_rows () =
  let p =
    Parser.parse_program_exn
      {|
      program rows
        real a[10,10]
        live_out a
        for j = 1, 10
          a[3, j] = a[4, j] + 1.0
        end for
      end
      |}
  in
  let refs = Refs.collect p.Ast.body in
  let w = List.hd (Refs.writes refs) in
  let r = List.hd (Refs.reads refs) in
  match Depend.pair_test ~index:"j" w r with
  | Depend.Independent -> ()
  | other -> Alcotest.failf "expected independent, got %a" Depend.pp_answer other

let test_scalar_private () =
  let body src =
    (loop_of
       (Printf.sprintf
          "program p\n real a[50]\n real t\n live_out a\n for i = 1, 50\n %s\n end for\nend"
          src)).Ast.body
  in
  check bool "write then read" true
    (Depend.scalar_private (body "t = a[i]\n a[i] = t * 2.0") "t");
  check bool "read before write" false
    (Depend.scalar_private (body "a[i] = t\n t = a[i]") "t")

let test_conformable () =
  let l1 =
    loop_of "program p\n real a[10]\n live_out a\n for i = 1, 10\n a[i] = 1.0\n end for\nend"
  in
  let l2 =
    loop_of "program p\n real a[10]\n live_out a\n for j = 1, 10\n a[j] = 2.0\n end for\nend"
  in
  let l3 =
    loop_of "program p\n real a[10]\n live_out a\n for k = 2, 10\n a[k] = 3.0\n end for\nend"
  in
  check bool "renamed equal bounds" true (Depend.conformable l1 l2);
  check bool "different lo" false (Depend.conformable l1 l3)

(* --- Live ------------------------------------------------------------------- *)

let test_live_ranges () =
  let p = Bw_workloads.Fig7.original ~n:32 in
  let ranges = Live.analyse p in
  (match Live.range_of ranges "res" with
  | Some r ->
    check int "first" 1 r.Live.first;
    check int "last" 2 r.Live.last;
    check bool "not live out" false r.Live.live_out
  | None -> Alcotest.fail "res has a range");
  check bool "dead after loop 2" true (Live.dead_after p ~position:2 "res");
  check bool "not dead after loop 1" false (Live.dead_after p ~position:1 "res")

let test_live_out_flag () =
  let p =
    Parser.parse_program_exn
      {|
      program lo
        real a[10]
        live_out a
        for i = 1, 10
          a[i] = 1.0
        end for
      end
      |}
  in
  match Live.range_of (Live.analyse p) "a" with
  | Some r -> check bool "live out" true r.Live.live_out
  | None -> Alcotest.fail "expected range"

let test_local_to () =
  let p =
    Parser.parse_program_exn
      {|
      program local
        real t[10]
        real s
        live_out s
        for i = 1, 10
          t[i] = 1.0
          s = s + t[i]
        end for
      end
      |}
  in
  check Alcotest.(list string) "t local" [ "t" ] (Live.local_to p ~position:0)

(* --- QCheck ------------------------------------------------------------------- *)

let qcheck_cases =
  let open QCheck in
  let gen_affine =
    Gen.(
      map2
        (fun const coeffs ->
          { Affine.const;
            Affine.terms =
              List.filteri (fun i _ -> i < 3) coeffs
              |> List.mapi (fun i c -> (Printf.sprintf "v%d" i, c))
              |> List.filter (fun (_, c) -> c <> 0) })
        small_signed_int
        (small_list small_signed_int))
  in
  let arb_affine = make ~print:(Format.asprintf "%a" Affine.pp) gen_affine in
  [ Test.make ~name:"affine to_expr/of_expr roundtrip" ~count:200 arb_affine
      (fun f ->
        match Affine.of_expr (Affine.to_expr f) with
        | Some f' -> Affine.equal f f'
        | None -> false);
    Test.make ~name:"affine add then sub is identity" ~count:200
      (pair arb_affine arb_affine) (fun (a, b) ->
        Affine.equal a (Affine.sub (Affine.add a b) b));
    Test.make ~name:"eval is linear" ~count:200 (pair arb_affine small_nat)
      (fun (f, x) ->
        let lookup _ = x in
        let direct = Affine.eval f lookup in
        let doubled = Affine.eval (Affine.scale 2 f) lookup in
        doubled = 2 * direct) ]

let suites =
  [ ( "analysis.affine",
      [ Alcotest.test_case "extraction" `Quick test_affine_extraction;
        Alcotest.test_case "roundtrip" `Quick test_affine_roundtrip;
        Alcotest.test_case "arithmetic" `Quick test_affine_arith ] );
    ( "analysis.refs",
      [ Alcotest.test_case "collect" `Quick test_refs_collect;
        Alcotest.test_case "subscript_wrt" `Quick test_refs_subscript_wrt ] );
    ( "analysis.depend",
      [ Alcotest.test_case "fusable cases" `Quick test_fusable_cases;
        Alcotest.test_case "constant bounds edges" `Quick
          test_constant_bounds_edges;
        Alcotest.test_case "mismatched coefficients" `Quick
          test_pair_test_mismatched_coeffs;
        Alcotest.test_case "pair_test symmetry" `Quick test_pair_test_symmetry;
        Alcotest.test_case "carried scalar blocks fusion" `Quick
          test_fusable_scalar_carried;
        Alcotest.test_case "input stream blocks fusion" `Quick
          test_fusable_read_stream;
        Alcotest.test_case "multidim distance" `Quick test_pair_test_multidim;
        Alcotest.test_case "gcd independence" `Quick test_gcd_independent;
        Alcotest.test_case "gcd enables fusion" `Quick test_gcd_blocks_fusion;
        Alcotest.test_case "independent rows" `Quick test_pair_test_independent_rows;
        Alcotest.test_case "scalar private" `Quick test_scalar_private;
        Alcotest.test_case "conformable" `Quick test_conformable ] );
    ( "analysis.live",
      [ Alcotest.test_case "ranges" `Quick test_live_ranges;
        Alcotest.test_case "live-out flag" `Quick test_live_out_flag;
        Alcotest.test_case "local_to" `Quick test_local_to ] );
    ("analysis.properties", List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_cases)
  ]
