open Bw_ir

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* --- generator ------------------------------------------------------------ *)

let test_gen_deterministic () =
  let p1 = Bw_qa.Gen.generate ~seed:42 ~size:6 in
  let p2 = Bw_qa.Gen.generate ~seed:42 ~size:6 in
  check bool "same seed, same program" true (Ast.equal_program p1 p2);
  let p3 = Bw_qa.Gen.generate ~seed:43 ~size:6 in
  check bool "different seed, different program" false
    (Ast.equal_program p1 p3)

let test_gen_validation () =
  Alcotest.check_raises "size 0"
    (Invalid_argument "Qa.Gen.generate: size must be >= 1") (fun () ->
      ignore (Bw_qa.Gen.generate ~seed:1 ~size:0))

let test_gen_checks_and_engines_agree () =
  for seed = 1 to 40 do
    let p = Bw_qa.Gen.generate ~seed ~size:6 in
    (match Check.check p with
    | Ok () -> ()
    | Error es ->
      Alcotest.failf "seed %d fails Check: %a" seed
        (Format.pp_print_list Check.pp_error)
        es);
    let a = Bw_exec.Interp.run p and b = Bw_exec.Compile.run p in
    if not (Bw_exec.Interp.close_observation ~tol:1e-9 a b) then
      Alcotest.failf "seed %d: interp and compile disagree" seed
  done

let test_gen_live_out_is_declared_and_written () =
  for seed = 1 to 40 do
    let p = Bw_qa.Gen.generate ~seed ~size:6 in
    check bool "nonempty live_out" true (p.Ast.live_out <> []);
    let written = Ast_util.vars_written p.Ast.body in
    check bool "some live-out is written" true
      (List.exists (fun v -> List.mem v written) p.Ast.live_out)
  done

let test_gen_nonaffine_reaches_unknown () =
  (* the generator's (i*i) mod n + 1 subscripts must drive the
     dependence test to Unknown in at least some programs *)
  let unknown_somewhere p =
    let rec loops stmts =
      List.concat_map
        (function
          | Ast.For l -> l :: loops l.Ast.body
          | Ast.If (_, t, e) -> loops t @ loops e
          | _ -> [])
        stmts
    in
    List.exists
      (fun l ->
        List.exists
          (fun (pi : Bw_analysis.Depend.pair_info) ->
            pi.Bw_analysis.Depend.answer = Bw_analysis.Depend.Unknown)
          (Bw_analysis.Depend.loop_pairs l))
      (loops p.Ast.body)
  in
  let hits = ref 0 in
  for seed = 1 to 60 do
    if unknown_somewhere (Bw_qa.Gen.generate ~seed ~size:6) then incr hits
  done;
  check bool "some program has an Unknown pair" true (!hits > 0)

(* --- oracle ---------------------------------------------------------------- *)

let test_oracle_clean_on_generated () =
  for seed = 1 to 25 do
    match Bw_qa.Oracle.test (Bw_qa.Gen.generate ~seed ~size:6) with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "seed %d: %s" seed msg
  done

let test_oracle_clean_on_registry () =
  List.iter
    (fun (e : Bw_workloads.Registry.entry) ->
      match Bw_qa.Oracle.test (e.build ~scale:1) with
      | Ok () -> ()
      | Error msg ->
        Alcotest.failf "%s: %s" e.Bw_workloads.Registry.name msg)
    Bw_workloads.Registry.all

let drop_demo =
  Parser.parse_program_exn
    {|
    program drop
      real a[10]
      real b[10]
      live_out a
      for i = 1, 10
        a[i] = 1.0
        b[i] = 2.0
      end for
      read(a[3])
    end
    |}

let test_drop_live_out_stores () =
  (match Bw_qa.Oracle.drop_live_out_stores drop_demo with
  | None -> Alcotest.fail "expected a corrupted program"
  | Some p' ->
    (* the a[i] assignment (inside the loop) and the read(a[3]) must both
       be gone; the b[i] assignment must survive *)
    let written = Ast_util.vars_written p'.Ast.body in
    check bool "a no longer written" false (List.mem "a" written);
    check bool "b still written" true (List.mem "b" written));
  let no_live_stores =
    { drop_demo with Ast.live_out = [] }
  in
  check bool "nothing to drop" true
    (Bw_qa.Oracle.drop_live_out_stores no_live_stores = None)

(* --- minimizer -------------------------------------------------------------- *)

let with_corrupt_fault f =
  Bw_obs.Fault.arm Bw_qa.Oracle.site Bw_obs.Fault.Corrupt
    (Bw_obs.Fault.Every 1);
  Fun.protect ~finally:Bw_obs.Fault.reset f

let test_minimizer_regression () =
  with_corrupt_fault (fun () ->
      let p = Bw_qa.Gen.generate ~seed:1 ~size:10 in
      check bool "armed fault makes the oracle fail" true
        (Bw_qa.Oracle.fails p);
      let small, stats =
        Bw_qa.Minimize.minimize ~still_fails:Bw_qa.Oracle.fails p
      in
      check bool "minimizer shrank the program" true
        (Ast_util.stmt_count small.Ast.body < Ast_util.stmt_count p.Ast.body);
      check bool "reproducer <= 10 top-level statements" true
        (List.length small.Ast.body <= 10);
      check bool "reproducer still fails the oracle" true
        (Bw_qa.Oracle.fails small);
      check bool "reproducer still checks" true
        (Result.is_ok (Check.check small));
      check bool "some candidates were evaluated" true
        (stats.Bw_qa.Minimize.candidates > 0);
      (* the static linter independently flags the same corruption *)
      let report = Bw_qa.Lint.check_program small in
      check bool "lint flags the reproducer" false (Bw_qa.Lint.ok report))

let test_minimized_repro_passes_when_disarmed () =
  let small =
    with_corrupt_fault (fun () ->
        let p = Bw_qa.Gen.generate ~seed:1 ~size:10 in
        fst (Bw_qa.Minimize.minimize ~still_fails:Bw_qa.Oracle.fails p))
  in
  (* without the fault the pipeline is honest again *)
  check bool "clean oracle accepts the reproducer" false
    (Bw_qa.Oracle.fails small)

(* --- lint ------------------------------------------------------------------- *)

let test_lint_registry_clean () =
  List.iter
    (fun (r : Bw_qa.Lint.report) ->
      if not (Bw_qa.Lint.ok r) then
        Alcotest.failf "%a" Bw_qa.Lint.pp_report r)
    (Bw_qa.Lint.check_registry ())

let test_preserve_flags_dropped_store () =
  let after = Option.get (Bw_qa.Oracle.drop_live_out_stores drop_demo) in
  let vs = Bw_analysis.Preserve.lint ~before:drop_demo ~after in
  check bool "dropped live-out store flagged" true
    (List.exists
       (function
         | Bw_analysis.Preserve.Live_out_store_dropped "a" -> true
         | _ -> false)
       vs)

let test_preserve_flags_backward_dependence () =
  (* hand "fusion" that brings a[i] = ... and ... = a[i+1] into one
     loop: the read now sees the value one iteration too early *)
  let before =
    Parser.parse_program_exn
      {|
      program bad_fuse
        real a[20]
        real b[20]
        real c[20]
        live_out c
        for i = 1, 19
          a[i] = b[i] + 1.0
        end for
        for i = 1, 19
          c[i] = a[i+1]
        end for
      end
      |}
  in
  let after =
    Parser.parse_program_exn
      {|
      program bad_fuse
        real a[20]
        real b[20]
        real c[20]
        live_out c
        for i = 1, 19
          a[i] = b[i] + 1.0
          c[i] = a[i+1]
        end for
      end
      |}
  in
  let vs = Bw_analysis.Preserve.lint ~before ~after in
  check bool "new backward dependence flagged" true
    (List.exists
       (function
         | Bw_analysis.Preserve.Backward_dependence { array = "a"; distance; _ }
           ->
           distance < 0
         | _ -> false)
       vs);
  (* and the fusion legality judgement agrees: this pair is not fusable *)
  match (before.Ast.body, after.Ast.body) with
  | [ Ast.For l1; Ast.For l2 ], _ ->
    check bool "fusable rejects it" true
      (Result.is_error (Bw_analysis.Depend.fusable l1 l2))
  | _ -> Alcotest.fail "unexpected shape"

let test_preserve_accepts_identity () =
  let p = Bw_qa.Gen.generate ~seed:9 ~size:6 in
  check bool "identity lints clean" true
    (Bw_analysis.Preserve.lint ~before:p ~after:p = [])

(* --- init round-trip --------------------------------------------------------- *)

let test_init_roundtrip () =
  let open Bw_ir.Builder in
  let p =
    program "inits"
      ~decls:
        [ array ~init:(Ast.Init_hash 3) "a" [ 8 ];
          array ~init:(Ast.Init_lanes (Ast.Init_zero, 2)) "b" [ 8 ];
          array ~init:(Ast.Init_linear (0.5, 0.25)) "c" [ 8 ];
          scalar "s" ]
      ~live_out:[ "a" ]
      [ for_ "i" (int 1) (int 8) [ ("a" $. [ v "i" ]) <-- fl 1.5 ] ]
  in
  let printed = Format.asprintf "%a" Pretty.pp_program p in
  match Parser.parse_program printed with
  | Error e ->
    Alcotest.failf "re-parse failed: %a@.%s" Parser.pp_parse_error e printed
  | Ok p' -> check bool "equal after round trip" true (Ast.equal_program p p')

let suites =
  [ ( "qa.gen",
      [ Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
        Alcotest.test_case "validation" `Quick test_gen_validation;
        Alcotest.test_case "checks + engines agree" `Slow
          test_gen_checks_and_engines_agree;
        Alcotest.test_case "live-out written" `Quick
          test_gen_live_out_is_declared_and_written;
        Alcotest.test_case "non-affine reaches Unknown" `Quick
          test_gen_nonaffine_reaches_unknown ] );
    ( "qa.oracle",
      [ Alcotest.test_case "clean on generated" `Slow
          test_oracle_clean_on_generated;
        Alcotest.test_case "clean on registry" `Slow
          test_oracle_clean_on_registry;
        Alcotest.test_case "drop_live_out_stores" `Quick
          test_drop_live_out_stores ] );
    ( "qa.minimize",
      [ Alcotest.test_case "corrupt-fault regression" `Slow
          test_minimizer_regression;
        Alcotest.test_case "repro passes when disarmed" `Slow
          test_minimized_repro_passes_when_disarmed ] );
    ( "qa.lint",
      [ Alcotest.test_case "registry clean" `Slow test_lint_registry_clean;
        Alcotest.test_case "flags dropped store" `Quick
          test_preserve_flags_dropped_store;
        Alcotest.test_case "flags backward dependence" `Quick
          test_preserve_flags_backward_dependence;
        Alcotest.test_case "identity clean" `Quick
          test_preserve_accepts_identity ] );
    ( "qa.roundtrip",
      [ Alcotest.test_case "init forms" `Quick test_init_roundtrip ] )
  ]
