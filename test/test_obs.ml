(* The observability subsystem: span recording and collection across
   domains, the disabled no-op guarantee, the metrics registry, Chrome
   trace export through Bench_json, the per-pass optimizer spans, the
   run-level cache/engine metrics, and the robust CLI program loader. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

module Trace = Bw_obs.Trace
module Metrics = Bw_obs.Metrics

let find_attr span key =
  List.assoc_opt key span.Trace.attrs

let spans_named name spans =
  List.filter (fun s -> s.Trace.name = name) spans

(* --- Trace ----------------------------------------------------------------- *)

let test_disabled_records_nothing () =
  Trace.reset ();
  Trace.set_enabled false;
  let h = Trace.start "ignored" in
  Trace.finish h;
  Trace.with_span "also ignored" (fun () -> ()) |> ignore;
  check int "no spans" 0 (List.length (Trace.collect ()))

let test_nesting_and_attrs () =
  Trace.reset ();
  Trace.with_enabled true (fun () ->
      Trace.with_span ~cat:"outer"
        ~attrs:[ ("k", Trace.Int 7) ]
        ~result_attrs:(fun r -> [ ("result", Trace.Int r) ])
        "parent"
        (fun () ->
          Trace.with_span "child" (fun () -> ()) |> ignore;
          42)
      |> ignore);
  let spans = Trace.collect () in
  check int "two spans" 2 (List.length spans);
  let parent = List.hd (spans_named "parent" spans) in
  let child = List.hd (spans_named "child" spans) in
  check int "parent at depth 0" 0 parent.Trace.depth;
  check int "child at depth 1" 1 child.Trace.depth;
  check bool "parent starts first" true
    (parent.Trace.start_us <= child.Trace.start_us);
  check bool "child within parent" true
    (child.Trace.start_us +. child.Trace.dur_us
    <= parent.Trace.start_us +. parent.Trace.dur_us +. 1e-6);
  check bool "start attr kept" true (find_attr parent "k" = Some (Trace.Int 7));
  check bool "result attr appended" true
    (find_attr parent "result" = Some (Trace.Int 42));
  check Alcotest.string "category" "outer" parent.Trace.cat

let test_exception_finishes_span () =
  Trace.reset ();
  (try
     Trace.with_enabled true (fun () ->
         Trace.with_span "boom" (fun () -> failwith "expected"))
   with Failure _ -> ());
  match Trace.collect () with
  | [ s ] ->
    check Alcotest.string "span survived the raise" "boom" s.Trace.name;
    check bool "error attribute" true (find_attr s "error" <> None)
  | l -> Alcotest.failf "expected one span, got %d" (List.length l)

let test_multidomain_merge () =
  Trace.reset ();
  Trace.with_enabled true (fun () ->
      let worker tag () =
        Trace.with_span ("work:" ^ tag) (fun () -> ()) |> ignore
      in
      let d1 = Domain.spawn (worker "a") in
      let d2 = Domain.spawn (worker "b") in
      worker "main" ();
      Domain.join d1;
      Domain.join d2);
  let spans = Trace.collect () in
  check int "three spans merged" 3 (List.length spans);
  let tids =
    List.map (fun s -> s.Trace.tid) spans |> List.sort_uniq compare
  in
  check int "three distinct domains" 3 (List.length tids);
  check bool "sorted by start" true
    (let rec mono = function
       | a :: (b :: _ as rest) ->
         a.Trace.start_us <= b.Trace.start_us && mono rest
       | _ -> true
     in
     mono spans)

(* --- Metrics --------------------------------------------------------------- *)

let test_metrics_instruments () =
  Metrics.reset ();
  let c = Metrics.counter "test.counter" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  check int "counter" 5 (Metrics.counter_value c);
  let g = Metrics.gauge "test.gauge" in
  Metrics.set g 2.5;
  check (Alcotest.float 1e-9) "gauge" 2.5 (Metrics.gauge_value g);
  let h = Metrics.histogram "test.hist" in
  Metrics.observe h 1.0;
  Metrics.observe h 3.0;
  Metrics.observe h 1000.0;
  let snap = Metrics.snapshot () in
  let find name =
    List.find (fun s -> s.Metrics.metric = name) snap
  in
  (match (find "test.hist").Metrics.data with
  | Metrics.Hist_v v ->
    check int "hist count" 3 v.Metrics.count;
    check (Alcotest.float 1e-9) "hist sum" 1004.0 v.Metrics.sum;
    check int "three non-empty buckets" 3 (List.length v.Metrics.buckets)
  | _ -> Alcotest.fail "test.hist is not a histogram");
  (* same name, same kind -> same instrument; other kind -> error *)
  Metrics.incr (Metrics.counter "test.counter");
  check int "find-or-create" 6 (Metrics.counter_value c);
  (match Metrics.gauge "test.counter" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind clash must raise");
  Metrics.reset ();
  check int "reset zeroes values" 0 (Metrics.counter_value c)

let test_simulate_publishes_metrics () =
  Metrics.reset ();
  let machine = Bw_machine.Machine.origin2000 in
  let p = Bw_workloads.Simple_example.read_loop ~n:10_000 in
  ignore (Bw_exec.Run.simulate ~machine p);
  let value name =
    match
      List.find_opt (fun s -> s.Metrics.metric = name) (Metrics.snapshot ())
    with
    | Some { Metrics.data = Metrics.Counter_v n; _ } -> n
    | _ -> Alcotest.failf "missing counter %s" name
  in
  check int "one compiled run" 1 (value "engine.compiled.runs");
  check bool "elements counted" true (value "engine.compiled.elements" >= 10_000);
  check bool "trace flushed" true (value "engine.compiled.trace_flushes" >= 1);
  check bool "L1 saw hits" true (value "cache.L1.hits" > 0);
  check bool "memory fetched lines" true (value "cache.mem.lines_in" > 0)

let test_fusion_publishes_metrics () =
  Metrics.reset ();
  let p =
    Bw_workloads.Random_programs.generate ~seed:3 ~loops:8 ~arrays:5 ~n:32
  in
  let g = Bw_fusion.Fusion_graph.build p in
  ignore (Bw_fusion.Bandwidth_minimal.multi_partition g);
  let counters =
    List.filter_map
      (fun s ->
        match s.Metrics.data with
        | Metrics.Counter_v n -> Some (s.Metrics.metric, n)
        | _ -> None)
      (Metrics.snapshot ())
  in
  check bool "min-cut called" true
    (match List.assoc_opt "fusion.mincut.calls" counters with
    | Some n -> n > 0
    | None -> false)

(* --- optimizer pass spans -------------------------------------------------- *)

let all_passes =
  [ "pass:fuse"; "pass:contract"; "pass:shrink"; "pass:forward";
    "pass:store-elim"; "pass:contract-tidy" ]

let test_strategy_emits_pass_spans () =
  Trace.reset ();
  let p = Bw_workloads.Fig6.original ~n:64 in
  Trace.with_enabled true (fun () ->
      ignore (Bw_transform.Strategy.run p));
  let spans = Trace.collect () in
  (* exactly one span per pass, nested under its guard stage span, which
     nests under the optimize root *)
  List.iter
    (fun name ->
      match spans_named name spans with
      | [ s ] ->
        check int (name ^ " nested under guard") 2 s.Trace.depth;
        List.iter
          (fun key ->
            check bool
              (Printf.sprintf "%s has %s" name key)
              true
              (find_attr s key <> None))
          [ "before.statements"; "after.statements"; "before.distinct_arrays";
            "after.distinct_arrays"; "before.predicted_balance";
            "after.predicted_balance" ]
      | l -> Alcotest.failf "%s: expected 1 span, got %d" name (List.length l))
    all_passes;
  (* one committed guard span per stage (input + 6 passes) *)
  let guard_spans = List.filter (fun s -> s.Trace.cat = "guard") spans in
  check int "one guard span per stage" 7 (List.length guard_spans);
  List.iter
    (fun s ->
      check int (s.Trace.name ^ " under root") 1 s.Trace.depth;
      check bool (s.Trace.name ^ " committed") true
        (find_attr s "verdict" = Some (Trace.Str "committed")))
    guard_spans;
  check int "plus the optimize root" 1
    (List.length
       (List.filter
          (fun s -> s.Trace.cat = "optimizer")
          spans))

let test_disabled_strategy_traces_nothing () =
  Trace.reset ();
  Trace.set_enabled false;
  let p = Bw_workloads.Fig6.original ~n:64 in
  ignore (Bw_transform.Strategy.run p);
  check int "no spans without tracing" 0 (List.length (Trace.collect ()))

(* --- Ir_stats --------------------------------------------------------------- *)

let test_ir_stats_exact_on_constant_bounds () =
  let p =
    Bw_ir.Parser.parse_program_exn
      {|
      program tiny
        real a[10]
        real b[10]
        live_out a
        for i = 1, 10
          a[i] = b[i] + 1.0
        end for
      end
      |}
  in
  let s = Bw_transform.Ir_stats.of_program p in
  check int "toplevel" 1 s.Bw_transform.Ir_stats.toplevel;
  check int "statements (loop + assign)" 2 s.Bw_transform.Ir_stats.statements;
  check int "two arrays" 2 s.Bw_transform.Ir_stats.distinct_arrays;
  check (Alcotest.float 1e-9) "10 adds" 10.0 s.Bw_transform.Ir_stats.est_flops;
  check (Alcotest.float 1e-9) "2 elements x 8B x 10 trips" 160.0
    s.Bw_transform.Ir_stats.est_bytes;
  check (Alcotest.float 1e-9) "balance 16 B/flop" 16.0
    s.Bw_transform.Ir_stats.predicted_balance

(* --- Chrome export --------------------------------------------------------- *)

let test_chrome_export_roundtrip () =
  Trace.reset ();
  Trace.with_enabled true (fun () ->
      Trace.with_span ~cat:"outer"
        ~attrs:
          [ ("note", Trace.Str "quotes \" and \\ and \nnewlines");
            ("n", Trace.Int 3); ("x", Trace.Float 1.5);
            ("ok", Trace.Bool true) ]
        "root"
        (fun () -> Trace.with_span "leaf" (fun () -> ()) |> ignore)
      |> ignore);
  let spans = Trace.collect () in
  let module J = Bw_core.Bench_json in
  let doc = Bw_core.Trace_export.json_of_spans spans in
  let parsed = J.parse (J.to_string doc) in
  let events =
    match Option.bind (J.member "traceEvents" parsed) J.to_list with
    | Some l -> l
    | None -> Alcotest.fail "traceEvents missing"
  in
  check int "two events" 2 (List.length events);
  let root =
    List.find
      (fun e -> J.member "name" e |> Option.get |> J.to_str = Some "root")
      events
  in
  check (Alcotest.option Alcotest.string) "complete event" (Some "X")
    (Option.bind (J.member "ph" root) J.to_str);
  check bool "duration present" true
    (Option.bind (J.member "dur" root) J.to_float <> None);
  let args = Option.get (J.member "args" root) in
  check (Alcotest.option Alcotest.string) "string attr with escapes survives"
    (Some "quotes \" and \\ and \nnewlines")
    (Option.bind (J.member "note" args) J.to_str);
  check (Alcotest.option Alcotest.int) "int attr" (Some 3)
    (Option.bind (J.member "n" args) (function J.Int i -> Some i | _ -> None))

(* --- Fault injection -------------------------------------------------------- *)

module Fault = Bw_obs.Fault

let test_fault_policies_deterministic () =
  Fault.reset ();
  Fun.protect ~finally:Fault.reset @@ fun () ->
  (* Nth fires exactly once, on the n-th crossing *)
  Fault.arm "t.nth" Fault.Raise (Fault.Nth 3);
  let fired =
    List.init 6 (fun _ -> Fault.check "t.nth" <> None)
  in
  check (Alcotest.list bool) "nth:3 fires only on hit 3"
    [ false; false; true; false; false; false ] fired;
  check int "hits counted" 6 (Fault.hits "t.nth");
  check int "one fire" 1 (Fault.fires "t.nth");
  (* Every fires on every n-th crossing *)
  Fault.arm "t.every" Fault.Corrupt (Fault.Every 2);
  let fired = List.init 6 (fun _ -> Fault.check "t.every" = Some Fault.Corrupt) in
  check (Alcotest.list bool) "every:2 fires on hits 2,4,6"
    [ false; true; false; true; false; true ] fired;
  (* Probability is a seeded draw: the same seed gives the same pattern *)
  let pattern () =
    Fault.arm "t.prob" Fault.Raise (Fault.Probability (0.5, 1234));
    List.init 32 (fun _ -> Fault.check "t.prob" <> None)
  in
  let a = pattern () and b = pattern () in
  check (Alcotest.list bool) "seeded pattern reproducible" a b;
  check bool "p=0.5 fires sometimes, not always" true
    (List.mem true a && List.mem false a);
  (* unarmed sites never fire but still count hits *)
  check bool "unarmed is silent" true (Fault.check "t.unarmed" = None);
  check int "unarmed hit counted" 1 (Fault.hits "t.unarmed")

let test_fault_cut_raises () =
  Fault.reset ();
  Fun.protect ~finally:Fault.reset @@ fun () ->
  Fault.arm "t.cut" Fault.Corrupt (Fault.Nth 1);
  (* cut treats Corrupt as Raise: sites without corruption semantics *)
  (match Fault.cut "t.cut" with
  | exception Fault.Injected site -> check Alcotest.string "site named" "t.cut" site
  | () -> Alcotest.fail "expected Injected");
  Fault.cut "t.cut" (* nth:1 already fired; further crossings pass *)

let test_fault_spec_parsing () =
  Fault.reset ();
  Fun.protect ~finally:Fault.reset @@ fun () ->
  (match
     Fault.arm_spec "guard.fuse=raise,guard.shrink=corrupt@nth:2,x=raise@every:3,y=raise@prob:0.25:77"
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "spec rejected: %s" e);
  check int "four sites armed" 4 (List.length (Fault.armed ()));
  check bool "fuse armed" true
    (List.mem_assoc "guard.fuse" (Fault.armed ()));
  (* malformed specs are Errors, not exceptions *)
  List.iter
    (fun spec ->
      match Fault.arm_spec spec with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "spec %S should be rejected" spec)
    [ "no-equals"; "s=explode"; "s=raise@nope"; "s=raise@nth:0";
      "s=raise@prob:2.0:1"; "s=raise@nth:x" ];
  (* arm validation *)
  (match Fault.arm "s" Fault.Raise (Fault.Nth 0) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "Nth 0 must be rejected");
  Fault.reset ();
  check int "reset disarms" 0 (List.length (Fault.armed ()));
  check int "reset zeroes hits" 0 (Fault.hits "guard.fuse")

let test_fault_sites_declared () =
  (* Forcing the libraries that declare sites at module init must make
     them visible to `bwc faults` via Fault.sites — the guard stages and
     the harness sites in particular. *)
  ignore Bw_transform.Strategy.stage_names;
  Bw_core.Harness.declare_fault_sites ();
  let names = List.map fst (Fault.sites ()) in
  List.iter
    (fun site ->
      check bool (site ^ " declared") true (List.mem site names))
    [ "guard.input"; "guard.fuse"; "guard.contract"; "guard.shrink";
      "guard.forward"; "guard.store-elim"; "guard.contract-tidy";
      "harness.worker" ]

(* --- Loader (CLI robustness) ------------------------------------------------ *)

let test_loader_errors_not_exceptions () =
  let load = Bw_core.Loader.load_program ~scale:1 in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  (match load "no_such_workload_or_file" with
  | Error msg ->
    check bool "points at 'bwc list'" true (contains msg "bwc list")
  | Ok _ -> Alcotest.fail "unknown name must not load");
  (match load "/tmp" with
  | Error msg ->
    check bool "directory rejected" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "directory must not load");
  let bad = Filename.temp_file "bwc_test" ".bw" in
  let oc = open_out bad in
  output_string oc "this is not a program";
  close_out oc;
  (match load bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parse failure must be an Error");
  Sys.remove bad;
  match load "fig6" with
  | Ok p -> check bool "registry still works" true (p.Bw_ir.Ast.body <> [])
  | Error e -> Alcotest.fail e

let suites =
  [ ( "obs.trace",
      [ Alcotest.test_case "disabled records nothing" `Quick
          test_disabled_records_nothing;
        Alcotest.test_case "nesting, attrs, results" `Quick
          test_nesting_and_attrs;
        Alcotest.test_case "exception finishes span" `Quick
          test_exception_finishes_span;
        Alcotest.test_case "multi-domain merge" `Quick test_multidomain_merge ] );
    ( "obs.metrics",
      [ Alcotest.test_case "instruments and snapshot" `Quick
          test_metrics_instruments;
        Alcotest.test_case "simulate publishes cache+engine" `Quick
          test_simulate_publishes_metrics;
        Alcotest.test_case "fusion publishes min-cut" `Quick
          test_fusion_publishes_metrics ] );
    ( "obs.passes",
      [ Alcotest.test_case "one span per pass with stats" `Quick
          test_strategy_emits_pass_spans;
        Alcotest.test_case "silent when disabled" `Quick
          test_disabled_strategy_traces_nothing;
        Alcotest.test_case "ir_stats exact on constants" `Quick
          test_ir_stats_exact_on_constant_bounds ] );
    ( "obs.export",
      [ Alcotest.test_case "chrome trace round-trip" `Quick
          test_chrome_export_roundtrip ] );
    ( "obs.fault",
      [ Alcotest.test_case "deterministic policies" `Quick
          test_fault_policies_deterministic;
        Alcotest.test_case "cut raises Injected" `Quick test_fault_cut_raises;
        Alcotest.test_case "spec parsing" `Quick test_fault_spec_parsing;
        Alcotest.test_case "sites declared" `Quick test_fault_sites_declared ] );
    ( "obs.loader",
      [ Alcotest.test_case "errors, never exceptions" `Quick
          test_loader_errors_not_exceptions ] )
  ]
