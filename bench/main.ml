(* Benchmark harness.

   Default run: regenerate every table/figure of the paper's evaluation
   (the experiment drivers of Bw_core.Experiments) and print them.
   Table generation fans out across domains (Bw_core.Harness) but the
   output order — and the table contents — match a serial run exactly.

     dune exec bench/main.exe                 -- all tables, full scale
     dune exec bench/main.exe -- --quick      -- all tables, small scale
     dune exec bench/main.exe -- --table fig3 -- one table
     dune exec bench/main.exe -- --jobs 4     -- cap the worker domains
     dune exec bench/main.exe -- --json       -- also write BENCH_results.json
                                                 (per-table spans included)
     dune exec bench/main.exe -- --out F.json -- write the JSON to F.json
     dune exec bench/main.exe -- --micro      -- Bechamel micro-benchmarks
                                                 of the core algorithms
     dune exec bench/main.exe -- --serve      -- serve load bench only
                                                 (--requests N, --clients N;
                                                 runs automatically with
                                                 --json, stats under "serve") *)

let default_json_path = "BENCH_results.json"

(* --- Bechamel micro-benchmarks -------------------------------------------- *)

let micro_tests () =
  let open Bechamel in
  let cache_streaming =
    Test.make ~name:"cache: stream 64k accesses"
      (Staged.stage (fun () ->
           let c =
             Bw_machine.Cache.create
               [ { Bw_machine.Cache.size_bytes = 32 * 1024;
                   line_bytes = 32;
                   associativity = 2 } ]
           in
           for i = 0 to 65_535 do
             Bw_machine.Cache.read c ~addr:(8 * i) ~bytes:8
           done))
  in
  let interp_sum =
    let p = Bw_workloads.Simple_example.read_loop ~n:10_000 in
    Test.make ~name:"interp: 10k-element reduction"
      (Staged.stage (fun () -> ignore (Bw_exec.Interp.run p)))
  in
  let compiled_sum =
    let p = Bw_workloads.Simple_example.read_loop ~n:10_000 in
    Test.make ~name:"compile: 10k-element reduction"
      (Staged.stage (fun () -> ignore (Bw_exec.Compile.run p)))
  in
  let simulate_kernel =
    let p = Bw_workloads.Stride_kernels.kernel ~writes:1 ~reads:2 ~n:5_000 in
    Test.make ~name:"simulate: 1w2r kernel on Origin2000"
      (Staged.stage (fun () ->
           ignore
             (Bw_exec.Run.simulate ~machine:Bw_machine.Machine.origin2000 p)))
  in
  let capture_kernel =
    let p = Bw_workloads.Stride_kernels.kernel ~writes:1 ~reads:2 ~n:5_000 in
    Test.make ~name:"capture: 1w2r kernel trace"
      (Staged.stage (fun () -> ignore (Bw_exec.Run.capture p)))
  in
  let replay_kernel =
    let p = Bw_workloads.Stride_kernels.kernel ~writes:1 ~reads:2 ~n:5_000 in
    let c = Bw_exec.Run.capture p in
    Test.make ~name:"replay: 1w2r capture on Origin2000"
      (Staged.stage (fun () ->
           ignore
             (Bw_exec.Run.replay ~machine:Bw_machine.Machine.origin2000 c)))
  in
  (* The before/after pair for the capture-once path: simulating two
     machines the old way re-executes the engine per machine; the new
     way captures once and fans the replays across domains. *)
  let two_machines_serial =
    let p = Bw_workloads.Stride_kernels.kernel ~writes:1 ~reads:2 ~n:5_000 in
    Test.make ~name:"2 machines: simulate each (baseline)"
      (Staged.stage (fun () ->
           ignore (Bw_exec.Run.simulate ~machine:Bw_machine.Machine.origin2000 p);
           ignore (Bw_exec.Run.simulate ~machine:Bw_machine.Machine.exemplar p)))
  in
  let two_machines_fanout =
    let p = Bw_workloads.Stride_kernels.kernel ~writes:1 ~reads:2 ~n:5_000 in
    let machines =
      [ Bw_machine.Machine.origin2000; Bw_machine.Machine.exemplar ]
    in
    (* jobs defaults to min(recommended_domain_count, machines): real
       domains on multicore hosts, serial replay on a 1-CPU box — where
       the win is still capture-once (one engine run instead of two). *)
    Test.make ~name:"2 machines: capture + parallel replay"
      (Staged.stage (fun () ->
           ignore (Bw_exec.Run.simulate_many ~machines p)))
  in
  let hyper_cut =
    let h =
      Bw_graph.Graph_gen.hypergraph ~seed:42 ~nodes:60 ~edges:120 ~max_arity:5
    in
    Test.make ~name:"hyper-graph min-cut (60 loops, 120 arrays)"
      (Staged.stage (fun () ->
           ignore (Bw_graph.Hyper_cut.min_cut h ~s:0 ~t:59)))
  in
  let fusion_plan =
    let p = Bw_workloads.Random_programs.generate ~seed:3 ~loops:8 ~arrays:5 ~n:32 in
    let g = Bw_fusion.Fusion_graph.build p in
    Test.make ~name:"bandwidth-minimal planning (8 loops)"
      (Staged.stage (fun () ->
           ignore (Bw_fusion.Bandwidth_minimal.multi_partition g)))
  in
  let strategy_pipeline =
    let p = Bw_workloads.Fig7.original ~n:2_000 in
    Test.make ~name:"full strategy pipeline on fig7"
      (Staged.stage (fun () -> ignore (Bw_transform.Strategy.run p)))
  in
  let parse_program =
    let src =
      Bw_ir.Pretty.program_to_string (Bw_workloads.Fig6.fused ~n:64)
    in
    Test.make ~name:"parse + check fig6 source"
      (Staged.stage (fun () ->
           ignore (Bw_ir.Parser.parse_program_exn src)))
  in
  (* The tiered-evaluator pair: the same registry workload priced by the
     exact tier (replay of a pre-captured stream — the engine run is
     deliberately excluded, biasing the comparison *against* the
     analytic tier) and by the analytic tier (closed form, no execution
     at all).  The speedup between these two rows is the triage factor
     the tiered evaluator buys and is asserted >= 100x below. *)
  let mm =
    match Bw_workloads.Registry.find "mm_jki" with
    | Some e -> e.Bw_workloads.Registry.build ~scale:1
    | None -> assert false
  in
  let evaluate_exact =
    let c = Bw_exec.Run.capture mm in
    Test.make ~name:"evaluate mm_jki: exact tier (replay)"
      (Staged.stage (fun () ->
           ignore
             (Bw_exec.Run.replay ~machine:Bw_machine.Machine.origin2000 c)))
  in
  let evaluate_analytic =
    Test.make ~name:"evaluate mm_jki: analytic tier (closed form)"
      (Staged.stage (fun () ->
           ignore
             (Bw_exec.Evaluate.of_program
                ~budget:Bw_exec.Evaluate.Microseconds
                ~machine:Bw_machine.Machine.origin2000 mm)))
  in
  [ cache_streaming; interp_sum; compiled_sum; simulate_kernel;
    capture_kernel; replay_kernel; two_machines_serial; two_machines_fanout;
    hyper_cut; fusion_plan; strategy_pipeline; parse_program;
    evaluate_exact; evaluate_analytic ]

(* Run the micro suite and return sorted (name, ns/run) estimates. *)
let micro_estimates () =
  let open Bechamel in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"micro" ~fmt:"%s %s" (micro_tests ()))
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let measured = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold (fun name result acc -> (name, result) :: acc) measured []
  |> List.sort compare
  |> List.filter_map (fun (name, result) ->
         match Analyze.OLS.estimates result with
         | Some [ est ] -> Some (name, est)
         | _ -> None)

let print_micro estimates =
  Format.printf "== micro-benchmarks (monotonic clock, ns/run) ==@.";
  List.iter
    (fun (name, est) -> Format.printf "%-50s %12.0f ns@." name est)
    estimates;
  (* Surface the tiered-evaluator triage factor explicitly: exact-tier
     replay ns / analytic-tier ns on the same registry workload. *)
  let find needle =
    List.find_opt
      (fun (name, _) ->
        String.length name >= String.length needle
        && List.exists
             (fun i -> String.sub name i (String.length needle) = needle)
             (List.init (String.length name - String.length needle + 1) Fun.id))
      estimates
  in
  match (find "exact tier (replay)", find "analytic tier (closed form)") with
  | Some (_, exact), Some (_, analytic) when analytic > 0.0 ->
    Format.printf "analytic tier speedup over exact replay: %.0fx@."
      (exact /. analytic)
  | _ -> ()

(* --- serve load bench ------------------------------------------------------ *)

(* Spin up an in-process server on a private Unix socket, drive it with
   the load generator (client domains with their own connections and a
   seeded mixed op stream), and report latency percentiles, throughput
   and the cache hit rate.  This is the service-level companion to the
   micro suite: it exercises the accept loop, the worker pool, the
   result cache and the simulate batcher together. *)
let serve_bench ~requests ~clients =
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bwc-bench-%d.sock" (Unix.getpid ()))
  in
  let server =
    Bw_serve.Server.start
      (Bw_serve.Server.default_config (Bw_serve.Server.Unix_sock sock))
  in
  Fun.protect
    ~finally:(fun () -> Bw_serve.Server.stop server)
    (fun () ->
      let spec =
        { (Bw_serve.Loadgen.default_spec (Bw_serve.Server.addr server)) with
          Bw_serve.Loadgen.requests;
          clients }
      in
      let stats = Bw_serve.Loadgen.run spec in
      Format.printf
        "== serve load bench ==@.%d requests / %d clients in %.2f s \
         (%.0f req/s)@.latency p50 %.2f ms, p90 %.2f ms, p99 %.2f ms, max \
         %.2f ms@.cache hit rate %.1f%%, %d errors (%d degraded, %d shed, \
         %d retried)@."
        stats.Bw_serve.Loadgen.requests stats.Bw_serve.Loadgen.clients
        stats.Bw_serve.Loadgen.wall_seconds
        stats.Bw_serve.Loadgen.throughput_rps stats.Bw_serve.Loadgen.p50_ms
        stats.Bw_serve.Loadgen.p90_ms stats.Bw_serve.Loadgen.p99_ms
        stats.Bw_serve.Loadgen.max_ms
        (100.0 *. stats.Bw_serve.Loadgen.hit_rate)
        stats.Bw_serve.Loadgen.errors stats.Bw_serve.Loadgen.degraded
        stats.Bw_serve.Loadgen.shed stats.Bw_serve.Loadgen.retried;
      stats)

(* --- entry point ---------------------------------------------------------- *)

let () =
  (* Deterministic fault injection for CI: BWC_FAULTS="site=raise@nth:1,..."
     arms sites like harness.table.fig3 before any table renders. *)
  (match Bw_obs.Fault.arm_from_env () with
  | Ok () -> ()
  | Error msg ->
    Format.eprintf "bench: bad BWC_FAULTS: %s@." msg;
    exit 1);
  let args = Array.to_list Sys.argv |> List.tl in
  let has flag = List.mem flag args in
  let value_of flag =
    let rec go = function
      | f :: v :: _ when f = flag -> Some v
      | _ :: rest -> go rest
      | [] -> None
    in
    go args
  in
  let json = has "--json" || value_of "--out" <> None in
  let json_path =
    Option.value (value_of "--out") ~default:default_json_path
  in
  let micro =
    if has "--micro" || json then begin
      let estimates = micro_estimates () in
      print_micro estimates;
      estimates
    end
    else []
  in
  (* The serve load bench runs whenever the JSON artifact is written
     (its stats land under the "serve" key) or on explicit request. *)
  let serve_stats =
    if has "--serve" || json then begin
      let requests =
        match Option.bind (value_of "--requests") int_of_string_opt with
        | Some n when n >= 1 -> n
        | _ -> 1000
      in
      let clients =
        match Option.bind (value_of "--clients") int_of_string_opt with
        | Some n when n >= 1 -> n
        | _ -> 2
      in
      Some (serve_bench ~requests ~clients)
    end
    else None
  in
  if (has "--micro" || has "--serve") && not json then ()
  else begin
    let scale = if has "--quick" then 1 else 2 in
    let only = value_of "--table" in
    let experiments =
      match only with
      | None -> Bw_core.Experiments.all
      | Some w -> List.filter (fun (id, _) -> id = w) Bw_core.Experiments.all
    in
    (match (only, experiments) with
    | Some w, [] ->
      Format.eprintf "no experiment named %S; known ids:@." w;
      List.iter
        (fun (id, _) -> Format.eprintf "  %s@." id)
        Bw_core.Experiments.all;
      exit 1
    | _ -> ());
    let jobs =
      match value_of "--jobs" with
      | Some j -> (
        match int_of_string_opt j with
        | Some j when j >= 1 -> j
        | _ ->
          Format.eprintf "--jobs expects a positive integer, got %S@." j;
          exit 1)
      | None -> min (Bw_core.Harness.default_jobs ()) (List.length experiments)
    in
    (* Per-table spans ride along in the JSON document; tracing stays
       off for plain text runs so the tables themselves are unperturbed. *)
    if json then begin
      Bw_obs.Trace.reset ();
      Bw_obs.Trace.set_enabled true
    end;
    let outcomes = Bw_core.Harness.run ~jobs ~scale experiments in
    Bw_obs.Trace.set_enabled false;
    List.iter
      (fun o ->
        match o.Bw_core.Harness.status with
        | Bw_core.Harness.Ok ->
          print_string o.Bw_core.Harness.body;
          Format.printf "(generated in %.1f s)@.@." o.Bw_core.Harness.seconds
        | Bw_core.Harness.Error _ -> ())
      outcomes;
    (* Partial results are still written (and still parse); the exit
       code and a one-line summary per failed table carry the bad news. *)
    if json then begin
      let trace = Bw_obs.Trace.collect () in
      let serve = Option.map Bw_serve.Loadgen.json_of_stats serve_stats in
      let doc =
        Bw_core.Harness.json_of_results ~trace ?serve ~scale ~jobs ~micro
          outcomes
      in
      let oc = open_out json_path in
      output_string oc (Bw_core.Bench_json.to_string doc);
      output_char oc '\n';
      close_out oc;
      Format.printf "wrote %s (%d tables, %d micro estimates, %d spans)@."
        json_path (List.length outcomes) (List.length micro)
        (List.length trace)
    end;
    let failed =
      List.filter (fun o -> not (Bw_core.Harness.ok o)) outcomes
    in
    if failed <> [] then begin
      List.iter
        (fun o ->
          match o.Bw_core.Harness.status with
          | Bw_core.Harness.Error msg ->
            Format.eprintf "bench: table %s failed: %s@."
              o.Bw_core.Harness.id msg
          | Bw_core.Harness.Ok -> ())
        failed;
      exit 1
    end
  end
