(* bwc — the bandwidth compiler driver.

   Subcommands:
     bwc list                      catalogue of built-in workloads
     bwc show <prog>               pretty-print a workload or .bw source file
     bwc parse <file>              parse a .bw file with line:column errors
                                   (--check: report only, print nothing)
     bwc fmt <file>                canonical formatting of a .bw file
                                   (--write rewrites in place; --check exits 1
                                   when the file is not canonical)
     bwc corpus [dir]              run the golden-file corpus: parse every
                                   *.bw, render its golden artifact and diff
                                   against the committed *.golden
                                   (--promote regenerates the goldens)
     bwc analyze <prog>            balance, predicted time, bottleneck
     bwc optimize <prog>           run the fusion/storage/store-elimination
                                   pipeline and report before/after
                                   (--trace FILE writes a Chrome trace with
                                   one span per pass; --layout follows with
                                   the data-layout pass; --validate[=N] checks
                                   each stage differentially on both engines;
                                   --no-rollback fails fast; --fuel N bounds
                                   the pipeline's step budget; --faults SPEC
                                   arms fault-injection sites)
     bwc profile <prog>            run simulation + optimizer pipeline under
                                   full span/metrics instrumentation
     bwc fuse <prog>               compare fusion plans and their costs
     bwc simulate <prog>|--registry
                                   capture a trace once, replay it on several
                                   machines in parallel (--machines a,b;
                                   --check verifies replay = direct simulate;
                                   --trace-store prints capture stats)
     bwc predict <prog>|--registry
                                   closed-form analytic prediction next to
                                   the exact simulator with per-cell error
                                   (--machines a,b; --check gates on the
                                   documented error envelope, exit 2)
     bwc experiments               regenerate the paper's tables
     bwc fuzz                      differentially fuzz the optimizer pipeline
                                   (--seed/--count/--size drive Qa.Gen;
                                   --minimize delta-debugs the first failure
                                   and writes the reproducer to --out;
                                   --corpus DIR also records it as a golden
                                   corpus entry)
     bwc lint <prog>|--registry    statically check dependence preservation
                                   across the pipeline (Qa.Lint)
     bwc faults                    list the registered fault-injection sites
     bwc validate-json <file>      check a bench/trace JSON artifact parses

   Exit codes: 0 success; 1 usage, load or runtime error (reported as a
   one-line "bwc: ..." message, never a backtrace); 2 guard validation
   failure under optimize --no-rollback, a fuzz counterexample, or a
   lint violation.  Fault-injection sites can also be armed via the
   BWC_FAULTS environment variable (syntax: SITE=ACTION[@POLICY],
   comma-separated — see `bwc faults`). *)

open Cmdliner

(* The -rp variants place array pages at pseudo-random physical
   addresses (a fixed seed keeps them reproducible), defeating the
   page-colouring assumption behind the contiguous models — the setting
   where data-layout rewrites earn their keep. *)
let random_pages (m : Bw_machine.Machine.t) suffix =
  { m with
    Bw_machine.Machine.name = m.Bw_machine.Machine.name ^ suffix;
    paging = Bw_machine.Machine.Random_pages { page_bytes = 4096; seed = 1 } }

let machines =
  [ ("origin2000", Bw_machine.Machine.origin2000);
    ("exemplar", Bw_machine.Machine.exemplar);
    ("origin-scaled", Bw_core.Experiments.origin_scaled);
    ("unconstrained", Bw_machine.Machine.unconstrained);
    ("origin-rp", random_pages Bw_machine.Machine.origin2000 "-rp");
    ("exemplar-rp", random_pages Bw_machine.Machine.exemplar "-rp") ]

let machine_conv =
  let parse s =
    match List.assoc_opt s machines with
    | Some m -> Ok m
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown machine '%s' (try %s)" s
             (String.concat ", " (List.map fst machines))))
  in
  let print ppf (m : Bw_machine.Machine.t) =
    Format.pp_print_string ppf m.Bw_machine.Machine.name
  in
  Arg.conv (parse, print)

let machine_arg =
  Arg.(
    value
    & opt machine_conv Bw_machine.Machine.origin2000
    & info [ "m"; "machine" ] ~docv:"MACHINE"
        ~doc:
          "Machine model: origin2000, exemplar, origin-scaled, \
           unconstrained, or the random-page-placement variants origin-rp \
           and exemplar-rp.")

let scale_arg =
  Arg.(
    value & opt int 1
    & info [ "s"; "scale" ] ~docv:"SCALE"
        ~doc:"Workload size: 1 quick, 2 full, 3 stress.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record observability spans and write them to $(docv) as a \
           Chrome trace-event JSON document (open in chrome://tracing or \
           Perfetto).")

(* Resolve a program: registry name or path to a surface-language file.
   Total — every failure is an [Error] (see Bw_core.Loader). *)
let load_program = Bw_core.Loader.load_program

let program_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"PROGRAM" ~doc:"Workload name or .bw source file.")

let or_die = function
  | Ok v -> v
  | Error msg ->
    Format.eprintf "bwc: %s@." msg;
    exit 1

(* --- list ----------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Bw_workloads.Registry.entry) ->
        Format.printf "%-16s %s@." e.Bw_workloads.Registry.name
          e.Bw_workloads.Registry.description)
      Bw_workloads.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the built-in workloads")
    Term.(const run $ const ())

(* --- show ----------------------------------------------------------------- *)

let show_cmd =
  let run name scale =
    let p = or_die (load_program ~scale name) in
    Format.printf "%a@." Bw_ir.Pretty.pp_program p
  in
  Cmd.v (Cmd.info "show" ~doc:"Pretty-print a program")
    Term.(const run $ program_arg $ scale_arg)

(* --- parse / fmt ----------------------------------------------------------- *)

let bw_file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:".bw source file.")

let check_flag ~doc = Arg.(value & flag & info [ "check" ] ~doc)

let parse_cmd =
  let run file check =
    let p = or_die (Bw_lang.Parse.parse_file file) in
    if not check then Format.printf "%a@." Bw_ir.Pretty.pp_program p
  in
  Cmd.v
    (Cmd.info "parse"
       ~doc:
         "Parse a .bw source file with the position-tracking front end and \
          print its canonical form.  Every diagnostic is one line, \
          FILE:LINE:COL: message, exit code 1.")
    Term.(
      const run $ bw_file_arg
      $ check_flag ~doc:"Only check the file; print nothing on success.")

let fmt_cmd =
  let run file check write =
    let p = or_die (Bw_lang.Parse.parse_file file) in
    let canonical = Bw_ir.Pretty.program_to_string p in
    let current =
      match Bw_core.Loader.read_file file with
      | Ok s -> s
      | Error msg -> or_die (Error msg)
    in
    if check then begin
      if String.trim current <> String.trim canonical then begin
        Format.eprintf "bwc: %s is not canonically formatted@." file;
        exit 1
      end
    end
    else if write then begin
      let oc = open_out file in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc canonical)
    end
    else print_string canonical
  in
  let write_flag =
    Arg.(value & flag & info [ "w"; "write" ] ~doc:"Rewrite the file in place.")
  in
  Cmd.v
    (Cmd.info "fmt"
       ~doc:
         "Canonically format a .bw source file (the same rendering the \
          pretty-printer round-trips through the parser).")
    Term.(
      const run $ bw_file_arg
      $ check_flag ~doc:"Exit 1 if the file differs from its canonical form."
      $ write_flag)

(* --- corpus ---------------------------------------------------------------- *)

let corpus_cmd =
  let run dir promote filter =
    let entries =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".bw")
      |> List.filter (fun f ->
             match filter with
             | None -> true
             | Some sub ->
               let rec has i =
                 i + String.length sub <= String.length f
                 && (String.sub f i (String.length sub) = sub || has (i + 1))
               in
               has 0)
      |> List.sort compare
    in
    if entries = [] then begin
      Format.eprintf "bwc: no .bw files under %s@." dir;
      exit 1
    end;
    let failures = ref 0 and promoted = ref 0 in
    List.iter
      (fun f ->
        let bw = Filename.concat dir f in
        let golden = Bw_lang.Golden.golden_path bw in
        match Bw_lang.Parse.parse_file bw with
        | Error msg ->
          incr failures;
          Format.printf "FAIL %s: %s@." bw msg
        | Ok p ->
          let want = Bw_lang.Golden.render p in
          let got =
            if Sys.file_exists golden then Bw_core.Loader.read_file golden
            else Error "missing golden"
          in
          if promote then begin
            match got with
            | Ok g when g = want -> Format.printf "ok   %s@." bw
            | _ ->
              let oc = open_out golden in
              Fun.protect
                ~finally:(fun () -> close_out_noerr oc)
                (fun () -> output_string oc want);
              incr promoted;
              Format.printf "new  %s@." golden
          end
          else begin
            match got with
            | Error msg ->
              incr failures;
              Format.printf "FAIL %s: %s (run bwc corpus --promote)@." bw msg
            | Ok g when g = want -> Format.printf "ok   %s@." bw
            | Ok g ->
              incr failures;
              (match Bw_lang.Golden.first_diff g want with
              | Some (n, committed, fresh) ->
                Format.printf
                  "FAIL %s: golden drift at %s:%d@.  committed: %s@.  \
                   rendered:  %s@."
                  bw golden n committed fresh
              | None -> Format.printf "FAIL %s: golden drift@." bw)
          end)
      entries;
    if promote then
      Format.printf "corpus: %d entr%s, %d golden(s) rewritten@."
        (List.length entries)
        (if List.length entries = 1 then "y" else "ies")
        !promoted
    else
      Format.printf "corpus: %d entr%s, %d failure(s)@." (List.length entries)
        (if List.length entries = 1 then "y" else "ies")
        !failures;
    if !failures > 0 then exit 1
  in
  let dir_arg =
    Arg.(
      value & pos 0 dir "corpus"
      & info [] ~docv:"DIR" ~doc:"Corpus directory (default ./corpus).")
  in
  let promote_flag =
    Arg.(
      value & flag
      & info [ "promote" ]
          ~doc:
            "Regenerate every stale or missing .golden from the current \
             toolchain instead of failing; rendering is deterministic, so \
             an unchanged toolchain rewrites nothing.")
  in
  let filter_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "filter" ] ~docv:"SUBSTRING"
          ~doc:"Only run corpus entries whose file name contains $(docv).")
  in
  Cmd.v
    (Cmd.info "corpus"
       ~doc:
         "Golden-file harness over the .bw corpus: parse each source, \
          render its parse/check/analysis artifact and compare against the \
          committed golden, reporting the first drifting line.  Exit 1 on \
          any drift, parse failure or missing golden.")
    Term.(const run $ dir_arg $ promote_flag $ filter_arg)

(* --- analyze -------------------------------------------------------------- *)

let analyze machine p =
  let r = Bw_exec.Run.simulate ~machine p in
  Format.printf "program: %s@." p.Bw_ir.Ast.prog_name;
  Format.printf "machine: %s@.@." machine.Bw_machine.Machine.name;
  Format.printf "counters: %a@.@." Bw_machine.Counters.pp r.Bw_exec.Run.counters;
  Format.printf "program balance (bytes/flop):@.";
  List.iter
    (fun (name, v) -> Format.printf "  %-8s %8.2f@." name v)
    (Bw_exec.Run.program_balance r);
  Format.printf "@.machine balance (bytes/flop):@.";
  List.iter2
    (fun name v -> Format.printf "  %-8s %8.2f@." name v)
    (Bw_machine.Machine.boundary_names machine)
    (Bw_machine.Machine.balance machine);
  let row = { Bw_core.Balance.name = p.Bw_ir.Ast.prog_name;
              per_boundary = Bw_exec.Run.program_balance r } in
  let resource, ratio = Bw_core.Balance.worst_ratio row machine in
  Format.printf
    "@.demand/supply: worst at %s (%.1fx) -> CPU utilisation bound %.0f%%@."
    resource ratio
    (100.0 *. Bw_core.Balance.cpu_utilisation_bound row machine);
  Format.printf "@.predicted time:@.%a@." Bw_machine.Timing.pp_breakdown
    r.Bw_exec.Run.breakdown;
  Format.printf "effective memory bandwidth: %.0f MB/s@."
    (Bw_exec.Run.effective_bandwidth r /. 1e6)

let analyze_cmd =
  let run name scale machine = analyze machine (or_die (load_program ~scale name)) in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Balance and predicted performance of a program")
    Term.(const run $ program_arg $ scale_arg $ machine_arg)

(* --- optimize --------------------------------------------------------------- *)

(* Enable tracing, run [f], write the collected spans to [file] as a
   Chrome trace document.  Trailing newline + re-parse is a self-check
   that what we wrote is well-formed. *)
let with_trace_file file f =
  Bw_obs.Trace.reset ();
  let v = Bw_obs.Trace.with_enabled true f in
  let spans = Bw_obs.Trace.collect () in
  let doc = Bw_core.Trace_export.json_of_spans spans in
  Bw_core.Trace_export.write_file file doc;
  ignore (Bw_core.Bench_json.parse (Bw_core.Bench_json.to_string doc));
  Format.printf "wrote %s (%d spans)@." file (List.length spans);
  v

let arm_faults_or_die ~what = function
  | None -> ()
  | Some spec -> (
    match Bw_obs.Fault.arm_spec spec with
    | Ok () -> ()
    | Error msg ->
      Format.eprintf "bwc: bad %s: %s@." what msg;
      exit 1)

let optimize_cmd =
  let run name scale machine print_program layout trace_out validate lint
      no_rollback fuel faults fuse_search search_seed =
    arm_faults_or_die ~what:"--faults" faults;
    let p = or_die (load_program ~scale name) in
    let guard =
      { Bw_transform.Guard.default_config with
        Bw_transform.Guard.validate = Option.value validate ~default:0;
        lint;
        rollback = not no_rollback;
        fuel }
    in
    let search_engine =
      match fuse_search with
      | None -> None
      | Some s -> (
        match Bw_fusion.Search.engine_of_string s with
        | Some e -> Some e
        | None ->
          Format.eprintf
            "bwc: unknown fuse-search engine '%s' (greedy, anneal, exact)@." s;
          exit 1)
    in
    (* the closure records the last search's stats so they can be
       reported after the guarded pipeline finishes *)
    let search_stats = ref None in
    let fuse_search =
      Option.map
        (fun engine ->
          let cfg =
            Bw_fusion.Search.default_config ~engine ~machine ~seed:search_seed
              ()
          in
          fun q ->
            match Bw_fusion.Search.run cfg q with
            | Ok (q', st) ->
              search_stats := Some st;
              q'
            | Error msg ->
              Format.eprintf "fuse-search failed: %s@." msg;
              q)
        search_engine
    in
    let run_pipeline () =
      Bw_transform.Strategy.run_guarded ~guard ?fuse_search p
    in
    let outcome =
      try
        Ok
          (match trace_out with
          | None -> run_pipeline ()
          | Some file -> with_trace_file file run_pipeline)
      with Bw_transform.Guard.Guard_failed events -> Error events
    in
    let p', report, events =
      match outcome with
      | Ok v -> v
      | Error events ->
        (* fail-fast mode: the guard report is the diagnosis *)
        Format.eprintf "bwc: optimization aborted by the guard:@.%a@."
          Bw_transform.Guard.pp_report events;
        exit 2
    in
    (* the data-layout pass runs after the loop pipeline (inside its own
       guarded stage) so its candidate analysis sees the final nests *)
    let p', events =
      if not layout then (p', events)
      else begin
        let g = Bw_transform.Guard.create guard in
        let p', actions =
          Bw_transform.Guard.stage g ~name:"layout" ~default:[]
            (fun q -> Bw_transform.Layout.run ~machine q)
            p'
        in
        (match actions with
        | [] -> Format.printf "layout: no profitable rewrite@."
        | actions ->
          List.iter
            (fun a ->
              Format.printf "layout: %s@."
                (Bw_transform.Layout.action_to_string a))
            actions);
        (p', events @ Bw_transform.Guard.events g)
      end
    in
    (match !search_stats with
    | None -> ()
    | Some st ->
      let open Bw_fusion.Search in
      Format.printf "%a@." pp_stats st;
      (match st.engine with
      | Greedy ->
        Format.printf "fuse-search: greedy baseline %.2f MB@."
          (st.greedy_traffic /. 1e6)
      | engine ->
        let win =
          if st.greedy_traffic > 0.0 then
            100.0 *. (st.greedy_traffic -. st.traffic) /. st.greedy_traffic
          else 0.0
        in
        Format.printf "fuse-search: greedy %.2f MB, %s %.2f MB, %s greedy by %.1f%%@."
          (st.greedy_traffic /. 1e6)
          (engine_to_string engine)
          (st.traffic /. 1e6)
          (if win >= 0.0 then "beats" else "trails")
          (Float.abs win));
      if not st.accepted then
        Format.printf "fuse-search: declined (no predicted win over the input)@.");
    Format.printf "%a@.@." Bw_transform.Strategy.pp_report report;
    let rolled_back =
      List.exists
        (fun (e : Bw_transform.Guard.event) ->
          match e.Bw_transform.Guard.verdict with
          | Bw_transform.Guard.Rolled_back _ -> true
          | Bw_transform.Guard.Committed -> false)
        events
    in
    if validate <> None || lint || no_rollback || fuel <> None
       || faults <> None || rolled_back
    then Format.printf "%a@.@." Bw_transform.Guard.pp_report events;
    let before = Bw_exec.Run.simulate ~machine p in
    let after = Bw_exec.Run.simulate ~machine p' in
    let traffic r =
      float_of_int (Bw_machine.Timing.memory_bytes r.Bw_exec.Run.cache) /. 1e6
    in
    Format.printf "memory traffic: %.2f MB -> %.2f MB@." (traffic before)
      (traffic after);
    Format.printf "predicted time: %.2f ms -> %.2f ms (%.2fx)@."
      (1e3 *. Bw_exec.Run.seconds before)
      (1e3 *. Bw_exec.Run.seconds after)
      (Bw_exec.Run.seconds before /. Bw_exec.Run.seconds after);
    let same =
      Bw_exec.Interp.equal_observation before.Bw_exec.Run.observation
        after.Bw_exec.Run.observation
    in
    Format.printf "observable behaviour preserved: %b@." same;
    if print_program then Format.printf "@.%a@." Bw_ir.Pretty.pp_program p'
  in
  let print_flag =
    Arg.(value & flag & info [ "p"; "print" ] ~doc:"Print the transformed program.")
  in
  let layout_flag =
    Arg.(
      value & flag
      & info [ "layout" ]
          ~doc:
            "After the loop pipeline, run the data-layout pass (array \
             padding, interleaving, AoS-to-SoA splitting, read-only \
             transposition) as a guarded stage, keeping only rewrites the \
             analytic evaluator prices as a memory-traffic win on \
             $(b,--machine).")
  in
  let validate_arg =
    Arg.(
      value
      & opt ~vopt:(Some 1) (some int) None
      & info [ "validate" ] ~docv:"TRIALS"
          ~doc:
            "Differentially validate every optimizer stage: run its input \
             and output programs on both execution engines over $(docv) \
             deterministic input sets (default 1) and roll the stage back \
             on any disagreement.")
  in
  let lint_flag =
    Arg.(
      value & flag
      & info [ "lint" ]
          ~doc:
            "Statically lint every optimizer stage with the \
             dependence-preservation checker (dropped live-out stores, \
             changed print counts, new backward dependences) and roll the \
             stage back on any violation.")
  in
  let no_rollback_flag =
    Arg.(
      value & flag
      & info [ "no-rollback" ]
          ~doc:
            "Fail fast: abort with exit code 2 and a guard report on the \
             first stage failure instead of rolling back and continuing.")
  in
  let fuel_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"N"
          ~doc:
            "Bound the pipeline's step budget: each stage charges its \
             statement count (validation trials charge four executions \
             each); a stage that cannot pay is rolled back.")
  in
  let faults_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Arm fault-injection sites, e.g. \
             'guard.fuse=raise,guard.shrink=corrupt@nth:2' (same syntax as \
             the BWC_FAULTS environment variable; see $(b,bwc faults)).")
  in
  let fuse_search_arg =
    Arg.(
      value
      & opt ~vopt:(Some "anneal") (some string) None
      & info [ "fuse-search" ] ~docv:"ENGINE"
          ~doc:
            "Replace the greedy adjacent-fusion sweep with the k-way fusion \
             search: $(docv) is greedy (sequential min-cut), anneal \
             (seeded randomized-restart annealing, the default when the \
             flag is given bare) or exact (set-partition DP, small \
             programs only).  The winning plan runs in its own guarded \
             stage behind the analytic regression gate; greedy-vs-search \
             predicted traffic is reported either way.")
  in
  let search_seed_arg =
    Arg.(
      value & opt int 1
      & info [ "search-seed" ] ~docv:"SEED"
          ~doc:
            "Seed for the annealing engine's private random state (the \
             search is deterministic for a fixed seed).")
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Apply the bandwidth-reduction pipeline and compare")
    Term.(
      const run $ program_arg $ scale_arg $ machine_arg $ print_flag
      $ layout_flag $ trace_arg $ validate_arg $ lint_flag $ no_rollback_flag
      $ fuel_arg $ faults_arg $ fuse_search_arg $ search_seed_arg)

(* --- profile ---------------------------------------------------------------- *)

let profile_cmd =
  let run name scale machine trace_out =
    let p = or_die (load_program ~scale name) in
    Bw_obs.Trace.reset ();
    Bw_obs.Metrics.reset ();
    Bw_obs.Trace.set_enabled true;
    let root =
      Bw_obs.Trace.start ~cat:"profile"
        ~attrs:
          [ ("machine", Bw_obs.Trace.Str machine.Bw_machine.Machine.name);
            ("scale", Bw_obs.Trace.Int scale) ]
        ("profile:" ^ p.Bw_ir.Ast.prog_name)
    in
    let before = Bw_exec.Run.simulate ~machine p in
    let p', report = Bw_transform.Strategy.run p in
    let after = Bw_exec.Run.simulate ~machine p' in
    Bw_obs.Trace.finish root;
    Bw_obs.Trace.set_enabled false;
    let spans = Bw_obs.Trace.collect () in
    Format.printf "== optimizer ==@.%a@.@." Bw_transform.Strategy.pp_report
      report;
    let traffic r =
      float_of_int (Bw_machine.Timing.memory_bytes r.Bw_exec.Run.cache) /. 1e6
    in
    Format.printf
      "memory traffic: %.2f MB -> %.2f MB; predicted time %.2f ms -> %.2f ms \
       (%.2fx)@.@."
      (traffic before) (traffic after)
      (1e3 *. Bw_exec.Run.seconds before)
      (1e3 *. Bw_exec.Run.seconds after)
      (Bw_exec.Run.seconds before /. Bw_exec.Run.seconds after);
    Format.printf "== spans ==@.%a@.@." Bw_core.Trace_export.pp_span_tree spans;
    Format.printf "== metrics ==@.%a@." Bw_obs.Metrics.pp_snapshot
      (Bw_obs.Metrics.snapshot ());
    match trace_out with
    | None -> ()
    | Some file ->
      let doc = Bw_core.Trace_export.json_of_spans spans in
      Bw_core.Trace_export.write_file file doc;
      ignore (Bw_core.Bench_json.parse (Bw_core.Bench_json.to_string doc));
      Format.printf "@.wrote %s (%d spans)@." file (List.length spans)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a program's simulation and optimization under full \
          observability: per-pass spans, cache/engine/fusion metrics, and \
          an optional Chrome trace")
    Term.(const run $ program_arg $ scale_arg $ machine_arg $ trace_arg)

(* --- validate-json --------------------------------------------------------- *)

let validate_json_cmd =
  let run file =
    if not (Sys.file_exists file) then begin
      Format.eprintf "bwc: '%s' does not exist@." file;
      exit 1
    end;
    let ic = open_in_bin file in
    let src =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Bw_core.Bench_json.parse src with
    | _ -> Format.printf "%s: valid JSON (%d bytes)@." file (String.length src)
    | exception Bw_core.Bench_json.Parse_error msg ->
      Format.eprintf "bwc: %s: invalid JSON: %s@." file msg;
      exit 1
  in
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"JSON artifact to validate.")
  in
  Cmd.v
    (Cmd.info "validate-json"
       ~doc:
         "Check that a bench/trace JSON artifact parses with the \
          harness's JSON reader (used by CI)")
    Term.(const run $ file_arg)

(* --- fuzz ------------------------------------------------------------------ *)

let fuzz_cmd =
  let run seed count size minimize out corpus trace_out faults =
    arm_faults_or_die ~what:"--faults" faults;
    if count < 1 then begin
      Format.eprintf "bwc: --count must be >= 1@.";
      exit 1
    end;
    let fuzz () =
      let failure = ref None in
      let k = ref 0 in
      while !failure = None && !k < count do
        let p = Bw_qa.Gen.generate ~seed:(seed + !k) ~size in
        (match Bw_qa.Oracle.test p with
        | Ok () -> ()
        | Error msg -> failure := Some (seed + !k, p, msg));
        incr k
      done;
      !failure
    in
    let outcome =
      match trace_out with None -> fuzz () | Some file -> with_trace_file file fuzz
    in
    match outcome with
    | None ->
      Format.printf "fuzz: %d program(s) ok (seeds %d..%d, size %d)@." count
        seed (seed + count - 1) size
    | Some (bad_seed, p, msg) ->
      Format.eprintf "bwc: fuzz counterexample at seed %d: %s@." bad_seed msg;
      let repro =
        if not minimize then p
        else begin
          let small, st =
            Bw_qa.Minimize.minimize ~still_fails:Bw_qa.Oracle.fails p
          in
          Format.eprintf
            "minimized: %d -> %d statement(s) (%d round(s), %d candidate(s), \
             %d kept)@."
            (Bw_ir.Ast_util.stmt_count p.Bw_ir.Ast.body)
            (Bw_ir.Ast_util.stmt_count small.Bw_ir.Ast.body)
            st.Bw_qa.Minimize.rounds st.Bw_qa.Minimize.candidates
            st.Bw_qa.Minimize.kept;
          small
        end
      in
      let write path s =
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc s)
      in
      write out (Bw_ir.Pretty.program_to_string repro);
      Format.eprintf "wrote reproducer to %s@." out;
      (match corpus with
      | None -> ()
      | Some dir ->
        (* keep the reproducer as a permanent corpus entry: canonical
           source plus its golden, so the regression is pinned by the
           golden harness from now on *)
        let bw = Filename.concat dir (Printf.sprintf "fuzz_%d.bw" bad_seed) in
        write bw (Bw_ir.Pretty.program_to_string repro);
        write (Bw_lang.Golden.golden_path bw) (Bw_lang.Golden.render repro);
        Format.eprintf "added corpus entry %s (and its .golden)@." bw);
      exit 2
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N" ~doc:"Base RNG seed (program $(i,k) uses seed+k).")
  in
  let count_arg =
    Arg.(
      value & opt int 100
      & info [ "count" ] ~docv:"N" ~doc:"Number of programs to generate and test.")
  in
  let size_arg =
    Arg.(
      value & opt int 6
      & info [ "size" ] ~docv:"N"
          ~doc:"Top-level statements per generated program.")
  in
  let minimize_flag =
    Arg.(
      value & flag
      & info [ "minimize" ]
          ~doc:"Delta-debug the first counterexample before writing it.")
  in
  let out_arg =
    Arg.(
      value & opt string "qa-repro.bw"
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Where to write the (pretty-printed) counterexample program.")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some dir) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Also emit the (minimized) counterexample as a corpus entry: \
             $(docv)/fuzz_<seed>.bw plus its rendered .golden, ready to \
             commit so the golden harness pins the regression.")
  in
  let faults_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Arm fault-injection sites (same syntax as BWC_FAULTS); arm \
             'qa.pipeline=corrupt@every:1' to exercise the whole \
             counterexample path.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing of the optimizer: generate seeded random \
          programs, optimize each through the guarded pipeline, and compare \
          original vs optimized on both execution engines over deterministic \
          inputs.  Exits 0 when every program agrees; exits 2 on the first \
          counterexample, written to --out (minimized when --minimize).")
    Term.(
      const run $ seed_arg $ count_arg $ size_arg $ minimize_flag $ out_arg
      $ corpus_arg $ trace_arg $ faults_arg)

(* --- lint ------------------------------------------------------------------- *)

let lint_cmd =
  let run name_opt registry scale faults =
    arm_faults_or_die ~what:"--faults" faults;
    let reports =
      match (name_opt, registry) with
      | None, false ->
        Format.eprintf "bwc: lint needs a PROGRAM argument or --registry@.";
        exit 1
      | Some name, _ ->
        [ Bw_qa.Lint.check_program (or_die (load_program ~scale name)) ]
      | None, true -> Bw_qa.Lint.check_registry ~scale ()
    in
    List.iter (fun r -> Format.printf "%a@." Bw_qa.Lint.pp_report r) reports;
    let bad = List.filter (fun r -> not (Bw_qa.Lint.ok r)) reports in
    if bad <> [] then begin
      Format.eprintf "bwc: %d program(s) violate dependence preservation@."
        (List.length bad);
      exit 2
    end
  in
  let program_opt_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"PROGRAM" ~doc:"Workload name or .bw source file.")
  in
  let registry_flag =
    Arg.(
      value & flag
      & info [ "registry" ] ~doc:"Lint every workload in the registry.")
  in
  let faults_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:"Arm fault-injection sites (same syntax as BWC_FAULTS).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run a program (or the whole registry with --registry) through the \
          optimizer pipeline and statically verify dependence preservation: \
          live-out stores kept, print counts unchanged, no new backward \
          dependences.  Exits 2 on any violation.")
    Term.(const run $ program_opt_arg $ registry_flag $ scale_arg $ faults_arg)

(* --- faults ----------------------------------------------------------------- *)

let faults_cmd =
  let run () =
    (* force registration of sites living in modules this command does
       not otherwise touch *)
    Bw_core.Harness.declare_fault_sites ();
    ignore Bw_transform.Strategy.stage_names;
    ignore Bw_qa.Oracle.site;
    let armed = Bw_obs.Fault.armed () in
    List.iter
      (fun (name, doc) ->
        let mark =
          match List.assoc_opt name armed with
          | Some spec -> Printf.sprintf "  [armed: %s]" spec
          | None -> ""
        in
        Format.printf "%-24s %s%s@." name doc mark)
      (Bw_obs.Fault.sites ())
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "List the registered fault-injection sites.  Arm them with \
          BWC_FAULTS or optimize --faults using \
          SITE=ACTION[@POLICY][,...] where ACTION is raise|corrupt and \
          POLICY is nth:N, every:N or prob:P:SEED (default nth:1).")
    Term.(const run $ const ())

(* --- fuse ------------------------------------------------------------------- *)

let fuse_cmd =
  let run name scale =
    let p = or_die (load_program ~scale name) in
    let g = Bw_fusion.Fusion_graph.build p in
    Format.printf "%a@.@." Bw_fusion.Fusion_graph.pp g;
    let report label plan =
      Format.printf "%-28s arrays loaded %2d, cross weight %2d, %d partition(s)@."
        label
        (Bw_fusion.Cost.bandwidth_cost g plan)
        (Bw_fusion.Cost.edge_weight_cost g plan)
        (List.length plan)
    in
    report "no fusion:" (Bw_fusion.Cost.unfused g);
    report "edge-weighted greedy:" (Bw_fusion.Edge_weighted.greedy_merge g);
    report "bandwidth-minimal:" (Bw_fusion.Bandwidth_minimal.multi_partition g);
    if Bw_fusion.Fusion_graph.node_count g <= 10 then
      report "exhaustive optimum:" (Bw_fusion.Bandwidth_minimal.exhaustive g)
  in
  Cmd.v (Cmd.info "fuse" ~doc:"Compare fusion strategies on a program")
    Term.(const run $ program_arg $ scale_arg)

(* --- advise --------------------------------------------------------------- *)

let advise_cmd =
  let run name scale machine =
    let p = or_die (load_program ~scale name) in
    let report = Bw_core.Advisor.diagnose ~machine p in
    Format.printf "%a@." Bw_core.Advisor.pp_report report
  in
  Cmd.v
    (Cmd.info "advise"
       ~doc:"Suggest bandwidth-reducing transformations, ranked by measured saving")
    Term.(const run $ program_arg $ scale_arg $ machine_arg)

(* --- reuse ----------------------------------------------------------------- *)

let reuse_cmd =
  let run name scale granularity =
    let p = or_die (load_program ~scale name) in
    let t = Bw_exec.Run.reuse_profile ~granularity p in
    Format.printf
      "reuse profile of %s (block = %d bytes): %d accesses, %d blocks, %d cold@.@."
      p.Bw_ir.Ast.prog_name granularity
      (Bw_machine.Reuse.total t)
      (Bw_machine.Reuse.footprint_blocks t)
      (Bw_machine.Reuse.cold t);
    Format.printf "reuse-distance histogram (blocks):@.";
    List.iter
      (fun (lo, count) -> Format.printf "  >= %-8d %d@." lo count)
      (Bw_machine.Reuse.histogram t);
    Format.printf "@.predicted miss ratio vs fully-associative LRU size:@.";
    List.iter
      (fun (size, mr) ->
        Format.printf "  %8d KB  %5.1f%%@." (size / 1024) (100.0 *. mr))
      (Bw_machine.Reuse.curve t
         ~sizes:
           [ 1024; 4 * 1024; 16 * 1024; 64 * 1024; 256 * 1024;
             1024 * 1024; 4 * 1024 * 1024 ])
  in
  let granularity =
    Arg.(
      value & opt int 32
      & info [ "g"; "granularity" ] ~docv:"BYTES"
          ~doc:"Block size for reuse tracking (cache line).")
  in
  Cmd.v
    (Cmd.info "reuse"
       ~doc:"Reuse-distance profile and cache-size-independent miss-ratio curve")
    Term.(const run $ program_arg $ scale_arg $ granularity)

(* --- simulate ----------------------------------------------------------------- *)

let simulate_cmd =
  let run name_opt registry scale machines engine jobs check stats =
    let programs =
      match (name_opt, registry) with
      | None, false ->
        Format.eprintf "bwc: simulate needs a PROGRAM argument or --registry@.";
        exit 1
      | Some name, _ -> [ (name, or_die (load_program ~scale name)) ]
      | None, true ->
        List.map
          (fun (e : Bw_workloads.Registry.entry) ->
            (e.Bw_workloads.Registry.name, e.Bw_workloads.Registry.build ~scale))
          Bw_workloads.Registry.all
    in
    let mismatches = ref 0 in
    List.iter
      (fun (name, p) ->
        let c = Bw_exec.Run.capture ~engine p in
        let results = Bw_exec.Run.replay_many ?jobs ~machines c in
        Format.printf "%s:@." name;
        if stats then begin
          let s = c.Bw_exec.Run.store in
          let bpr = Bw_machine.Trace_store.bytes_per_record s in
          Format.printf
            "  trace store: %d records in %d bytes (%.2f bytes/record, \
             %.1fx smaller than flat), %d chunk(s)@."
            (Bw_machine.Trace_store.records s)
            (Bw_machine.Trace_store.encoded_bytes s)
            bpr
            (if bpr > 0.0 then 24.0 /. bpr else 0.0)
            (Bw_machine.Trace_store.chunks s)
        end;
        List.iter2
          (fun machine r ->
            let suffix =
              if not check then ""
              else if
                Bw_exec.Run.equal_result r
                  (Bw_exec.Run.simulate ~engine ~machine p)
              then "  replay = direct"
              else begin
                incr mismatches;
                "  REPLAY MISMATCH"
              end
            in
            Format.printf "  %-28s %10.2f ms  %8.0f MB/s%s@."
              machine.Bw_machine.Machine.name
              (1e3 *. Bw_exec.Run.seconds r)
              (Bw_exec.Run.effective_bandwidth r /. 1e6)
              suffix)
          machines results)
      programs;
    if !mismatches > 0 then begin
      Format.eprintf "bwc: %d replay/direct mismatch(es)@." !mismatches;
      exit 2
    end
  in
  let program_opt_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"PROGRAM" ~doc:"Workload name or .bw source file.")
  in
  let registry_flag =
    Arg.(
      value & flag
      & info [ "registry" ] ~doc:"Simulate every workload in the registry.")
  in
  let machines_arg =
    Arg.(
      value
      & opt (list machine_conv)
          [ Bw_machine.Machine.origin2000; Bw_machine.Machine.exemplar ]
      & info [ "machines" ] ~docv:"M1,M2,..."
          ~doc:
            "Comma-separated machine models to replay the capture on \
             (origin2000, exemplar, origin-scaled, unconstrained).")
  in
  let engine_arg =
    Arg.(
      value
      & opt (enum [ ("compiled", `Compiled); ("interpreted", `Interpreted) ])
          `Compiled
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:"Execution engine for the capture: compiled or interpreted.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains for the parallel replay fan-out.")
  in
  let check_flag =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Also run a direct per-machine simulation and verify the replay \
             is bit-identical (exit 2 on any mismatch).")
  in
  let stats_flag =
    Arg.(
      value & flag
      & info [ "trace-store" ]
          ~doc:
            "Print capture statistics: record count, encoded size, bytes \
             per record and chunk count.")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Capture a program's memory-reference trace once and replay it \
          against several machine models in parallel; results are \
          bit-identical to per-machine direct simulation (verifiable with \
          --check)")
    Term.(
      const run $ program_opt_arg $ registry_flag $ scale_arg $ machines_arg
      $ engine_arg $ jobs_arg $ check_flag $ stats_flag)

(* --- predict ----------------------------------------------------------------- *)

let predict_cmd =
  let run name_opt registry scale machines check =
    let rows =
      match (name_opt, registry) with
      | None, false ->
        Format.eprintf "bwc: predict needs a PROGRAM argument or --registry@.";
        exit 1
      | Some name, _ ->
        Bw_core.Accuracy.measure_program ~machines ~name
          (or_die (load_program ~scale name))
      | None, true -> Bw_core.Accuracy.measure ~scale ~machines ()
    in
    print_string (Bw_core.Table.to_string (Bw_core.Accuracy.table rows));
    if check then begin
      match Bw_core.Accuracy.check rows with
      | [] ->
        Format.printf "envelope: ok (%d cell(s) within documented bounds)@."
          (List.length rows)
      | violations ->
        List.iter (Format.eprintf "bwc: envelope violation: %s@.") violations;
        exit 2
    end
  in
  let program_opt_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"PROGRAM" ~doc:"Workload name or .bw source file.")
  in
  let registry_flag =
    Arg.(
      value & flag
      & info [ "registry" ] ~doc:"Predict every workload in the registry.")
  in
  let machines_arg =
    Arg.(
      value
      & opt (list machine_conv) Bw_core.Accuracy.default_machines
      & info [ "machines" ] ~docv:"M1,M2,..."
          ~doc:
            "Comma-separated machine models to predict and simulate on \
             (origin2000, exemplar, origin-scaled, unconstrained).")
  in
  let check_flag =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Verify every cell against the documented error envelope; \
             exit 2 on a violation (CI gate).")
  in
  Cmd.v
    (Cmd.info "predict"
       ~doc:
         "Closed-form analytic prediction (no execution) next to the exact \
          simulator, with per-cell relative error")
    Term.(
      const run $ program_opt_arg $ registry_flag $ scale_arg $ machines_arg
      $ check_flag)

(* --- experiments -------------------------------------------------------------- *)

let experiments_cmd =
  let run scale only =
    (match only with
    | Some w when not (List.mem_assoc w Bw_core.Experiments.all) ->
      Format.eprintf "bwc: no experiment named '%s' (known: %s)@." w
        (String.concat ", " (List.map fst Bw_core.Experiments.all));
      exit 1
    | _ -> ());
    List.iter
      (fun (id, f) ->
        match only with
        | Some w when w <> id -> ()
        | _ -> Format.printf "%a@." Bw_core.Table.render (f ?scale:(Some scale) ()))
      Bw_core.Experiments.all
  in
  let only =
    Arg.(
      value
      & opt (some string) None
      & info [ "t"; "table" ] ~docv:"ID"
          ~doc:"Only this table (e1, fig1..fig8, sp, ablation-*).")
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Regenerate the paper's tables and figures")
    Term.(const run $ scale_arg $ only)

(* --- serve / client ---------------------------------------------------------- *)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Listen on (serve) or connect to (client) a Unix socket at $(docv).")

let host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"TCP host (with --port).")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT"
        ~doc:"Listen on (serve) or connect to (client) TCP $(docv); 0 lets \
              the kernel pick (printed at startup).")

(* --socket wins if both are given; neither means a Unix socket at the
   default path. *)
let resolve_addr socket host port =
  match (socket, port) with
  | Some path, _ -> Bw_serve.Server.Unix_sock path
  | None, Some p -> Bw_serve.Server.Tcp (host, p)
  | None, None -> Bw_serve.Server.Unix_sock "bwc.sock"

let serve_cmd =
  let run socket host port jobs cache_capacity max_queue degrade_queue
      default_deadline_ms max_deadline_ms idle_timeout max_request_bytes
      verbose =
    let addr = resolve_addr socket host port in
    let config =
      { (Bw_serve.Server.default_config addr) with
        Bw_serve.Server.jobs;
        cache_capacity;
        max_queue;
        degrade_queue;
        default_deadline_ms;
        max_deadline_ms;
        idle_timeout_s = idle_timeout;
        max_request_bytes;
        verbose }
    in
    let server = Bw_serve.Server.start config in
    Bw_serve.Server.install_signal_handlers server;
    Format.printf "bwc serve: listening on %a (pid %d)@."
      Bw_serve.Server.pp_addr
      (Bw_serve.Server.addr server)
      (Unix.getpid ());
    Bw_serve.Server.wait server;
    if verbose then Format.eprintf "bwc serve: drained, exiting@."
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains for the compute pool (default: cores - 1).")
  in
  let cache_arg =
    Arg.(
      value & opt int 512
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:"Result-cache entries before LRU eviction.")
  in
  let max_queue_arg =
    Arg.(
      value & opt int 64
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Pending compute requests before new ones are rejected with \
             $(b,overloaded) and a retry_after_ms hint.")
  in
  let degrade_queue_arg =
    Arg.(
      value & opt int 16
      & info [ "degrade-queue" ] ~docv:"N"
          ~doc:
            "Pending compute requests before predict/analyze answers degrade \
             to the analytic tier (marked $(b,degraded: true)).")
  in
  let default_deadline_arg =
    Arg.(
      value & opt int 30_000
      & info [ "default-deadline-ms" ] ~docv:"MS"
          ~doc:
            "Deadline applied to requests that do not carry their own \
             deadline_ms; 0 disables.")
  in
  let max_deadline_arg =
    Arg.(
      value & opt int 300_000
      & info [ "max-deadline-ms" ] ~docv:"MS"
          ~doc:"Cap on client-supplied deadline_ms; 0 disables the cap.")
  in
  let idle_timeout_arg =
    Arg.(
      value & opt float 60.0
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Watchdog closes connections idle longer than this (half-dead \
             peers, slow-loris writers); 0 disables.")
  in
  let max_request_bytes_arg =
    Arg.(
      value & opt int (4 * 1024 * 1024)
      & info [ "max-request-bytes" ] ~docv:"N"
          ~doc:
            "Longest accepted request line; longer ones get a structured \
             $(b,request_too_large) error and the connection closes.")
  in
  let verbose_flag =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Log drain progress to stderr.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the bandwidth-advisor service: a long-running daemon answering \
          analyze/predict/optimize/simulate/fuzz requests as JSON lines over \
          a Unix or TCP socket, with a content-addressed result cache, \
          batched simulation, and a /metrics endpoint.  Per-request \
          deadlines, admission control with tier-degrading load shed, and \
          worker-domain supervision keep it answering under overload and \
          injected faults.  SIGTERM drains and exits 0.")
    Term.(
      const run $ socket_arg $ host_arg $ port_arg $ jobs_arg $ cache_arg
      $ max_queue_arg $ degrade_queue_arg $ default_deadline_arg
      $ max_deadline_arg $ idle_timeout_arg $ max_request_bytes_arg
      $ verbose_flag)

let client_cmd =
  let run socket host port op_name id program source_file machines engine_name
      budget_name scale seed count size no_cache deadline_ms timeout retries
      chaos load clients requests out =
    let addr = resolve_addr socket host port in
    if load then begin
      (* load-generator mode: seeded mixed stream, stats JSON out.
         --chaos switches to resilient retrying clients and a
         fault-hunting stream; its pass criterion is failed = 0 (every
         request answered or cleanly rejected), where plain load keeps
         the stricter errors = 0. *)
      let spec =
        { (Bw_serve.Loadgen.default_spec addr) with
          Bw_serve.Loadgen.clients;
          requests;
          seed;
          scale;
          chaos;
          timeout_s = (if timeout > 0. then timeout else 10.0);
          retries = (if retries > 0 then retries else 3) }
      in
      let stats = Bw_serve.Loadgen.run spec in
      let doc = Bw_core.Json.to_string (Bw_serve.Loadgen.json_of_stats stats) in
      (match out with
      | None -> print_endline doc
      | Some path ->
        let oc = open_out path in
        output_string oc doc;
        output_char oc '\n';
        close_out oc);
      let bad =
        if chaos then stats.Bw_serve.Loadgen.failed > 0
        else stats.Bw_serve.Loadgen.errors > 0
      in
      if bad then exit 2
    end
    else if op_name = "metrics-raw" then
      (* scrape the /metrics endpoint and print the exposition text *)
      print_string (or_die (Bw_serve.Client.fetch_metrics addr))
    else begin
      let op =
        match Bw_serve.Protocol.op_of_name op_name with
        | Some op -> op
        | None ->
          Format.eprintf "bwc: unknown op '%s' (try ping, metrics, analyze, \
                          predict, optimize, simulate, fuzz, shutdown)@."
            op_name;
          exit 1
      in
      let source =
        Option.map
          (fun path ->
            let ic = open_in_bin path in
            let n = in_channel_length ic in
            let s = really_input_string ic n in
            close_in ic;
            s)
          source_file
      in
      let base = Bw_serve.Protocol.default_request op in
      let req =
        { base with
          Bw_serve.Protocol.id;
          program;
          source;
          scale;
          machines =
            (if machines = [] then base.Bw_serve.Protocol.machines
             else machines);
          engine = or_die (Bw_serve.Protocol.engine_of_name engine_name);
          budget = or_die (Bw_serve.Protocol.budget_of_name budget_name);
          seed;
          count;
          size;
          no_cache;
          deadline_ms = (if deadline_ms > 0 then Some deadline_ms else None) }
      in
      let response =
        if retries > 0 then begin
          (* resilient path: per-attempt timeout, bounded retries with
             backoff, honours the server's retry_after_ms hint *)
          let cfg =
            { Bw_serve.Client.default_retry_config with
              Bw_serve.Client.timeout_s =
                (if timeout > 0. then timeout
                 else Bw_serve.Client.default_retry_config
                        .Bw_serve.Client.timeout_s);
              max_retries = retries }
          in
          let rc = Bw_serve.Client.resilient ~cfg ~seed addr in
          Fun.protect
            ~finally:(fun () -> Bw_serve.Client.resilient_close rc)
            (fun () -> or_die (Bw_serve.Client.resilient_request rc req))
        end
        else if timeout > 0. then begin
          let client = Bw_serve.Client.connect ~timeout_s:timeout addr in
          Fun.protect
            ~finally:(fun () -> Bw_serve.Client.close client)
            (fun () -> or_die (Bw_serve.Client.request client req))
        end
        else or_die (Bw_serve.Client.one_shot addr req)
      in
      print_endline (Bw_core.Json.to_string response);
      match Bw_serve.Protocol.response_result response with
      | Ok _ -> ()
      | Error _ -> exit 1
    end
  in
  let op_arg =
    Arg.(
      value
      & pos 0 string "ping"
      & info [] ~docv:"OP"
          ~doc:
            "Operation: ping, metrics, analyze, predict, optimize, simulate, \
             fuzz, shutdown — or metrics-raw to scrape the /metrics endpoint.")
  in
  let id_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "id" ] ~docv:"ID" ~doc:"Correlation id echoed in the response.")
  in
  let program_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "program" ] ~docv:"NAME"
          ~doc:"Registry workload name or server-side .bw path.")
  in
  let source_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "source" ] ~docv:"FILE"
          ~doc:"Send the contents of a local .bw file as inline source.")
  in
  let machines_arg =
    Arg.(
      value
      & opt (list string) []
      & info [ "machines" ] ~docv:"M1,M2,..."
          ~doc:"Machine models the server should target.")
  in
  let engine_arg =
    Arg.(
      value & opt string "compiled"
      & info [ "engine" ] ~docv:"ENGINE" ~doc:"compiled or interpreted.")
  in
  let budget_arg =
    Arg.(
      value & opt string "exact"
      & info [ "budget" ] ~docv:"TIER"
          ~doc:"Predict tier: analytic, reuse or exact.")
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N" ~doc:"Fuzz / load-generator seed.")
  in
  let count_arg =
    Arg.(
      value & opt int 10
      & info [ "count" ] ~docv:"N" ~doc:"Fuzz: programs to test.")
  in
  let size_arg =
    Arg.(
      value & opt int 5
      & info [ "size" ] ~docv:"N" ~doc:"Fuzz: generator size knob.")
  in
  let no_cache_flag =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"Bypass the server's result cache.")
  in
  let deadline_arg =
    Arg.(
      value & opt int 0
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Per-request deadline: the server abandons work past it and \
             answers $(b,deadline_exceeded).  0 leaves the server default.")
  in
  let timeout_arg =
    Arg.(
      value & opt float 0.
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Socket send/receive timeout per attempt, so a stalled server \
             surfaces as an error instead of a hang.  0 disables (load \
             --chaos mode then uses 10 s).")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry transport failures and retryable rejections (overloaded, \
             worker_crashed) up to $(docv) times with jittered backoff — \
             idempotent requests only.  0 disables (load --chaos mode then \
             uses 3).")
  in
  let chaos_flag =
    Arg.(
      value & flag
      & info [ "chaos" ]
          ~doc:
            "With --load: chaos-harness mode.  Clients retry with timeouts \
             and backoff, the stream carries tight deadlines and cache \
             bypasses, and the exit criterion relaxes to \"no request left \
             unanswered\" (exit 2 only if a request got no reply at all) — \
             structured rejections and degraded answers count as survival.")
  in
  let load_flag =
    Arg.(
      value & flag
      & info [ "load" ]
          ~doc:
            "Load-generator mode: drive a seeded mixed request stream from \
             --clients domains and print latency/hit-rate statistics as JSON \
             (exit 2 if any request failed).")
  in
  let clients_arg =
    Arg.(
      value & opt int 2
      & info [ "clients" ] ~docv:"N" ~doc:"Load mode: client domains.")
  in
  let requests_arg =
    Arg.(
      value & opt int 1000
      & info [ "requests" ] ~docv:"N" ~doc:"Load mode: total requests.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Load mode: write the stats JSON here.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Talk to a running bwc serve daemon: send one request and print the \
          response, scrape metrics, or drive a load-generator stream.")
    Term.(
      const run $ socket_arg $ host_arg $ port_arg $ op_arg $ id_arg
      $ program_arg $ source_arg $ machines_arg $ engine_arg $ budget_arg
      $ scale_arg $ seed_arg $ count_arg $ size_arg $ no_cache_flag
      $ deadline_arg $ timeout_arg $ retries_arg $ chaos_flag $ load_flag
      $ clients_arg $ requests_arg $ out_arg)

let () =
  (match Bw_obs.Fault.arm_from_env () with
  | Ok () -> ()
  | Error msg ->
    Format.eprintf "bwc: bad BWC_FAULTS: %s@." msg;
    exit 1);
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "bwc" ~version:"1.0"
      ~doc:
        "Bandwidth-oriented compilation: balance analysis, bandwidth-minimal \
         loop fusion, storage reduction and store elimination (Ding & \
         Kennedy, IPPS 2000)"
  in
  let group =
    Cmd.group ~default info
      [ list_cmd; show_cmd; parse_cmd; fmt_cmd; corpus_cmd; analyze_cmd;
        optimize_cmd; profile_cmd; fuse_cmd;
        advise_cmd; reuse_cmd; simulate_cmd; predict_cmd; experiments_cmd;
        fuzz_cmd; lint_cmd; faults_cmd; validate_json_cmd; serve_cmd;
        client_cmd ]
  in
  (* ~catch:false + our own handler: any escaped exception becomes a
     one-line "bwc: ..." on stderr and exit code 1 — no backtraces.
     Cmdliner's own CLI/internal error codes (124/125) are folded into
     the documented usage-error code 1. *)
  exit
    (match Cmd.eval ~catch:false group with
    | 124 | 125 -> 1
    | code -> code
    | exception e ->
      let msg =
        match String.index_opt (Printexc.to_string e) '\n' with
        | Some i -> String.sub (Printexc.to_string e) 0 i
        | None -> Printexc.to_string e
      in
      Format.eprintf "bwc: %s@." msg;
      1)
