open Bw_ir.Ast

type access = Read | Write

type loop_context = { index : string; lo : expr; hi : expr; step : expr }

type t = {
  array : string;
  subscripts : expr list;
  affine : Affine.t option list;
  access : access;
  loops : loop_context list;
  position : int;
}

type state = { mutable acc : t list; mutable position : int }

let make st loops access array subscripts =
  let r =
    { array;
      subscripts;
      affine = List.map Affine.of_expr subscripts;
      access;
      loops = List.rev loops;
      position = st.position }
  in
  st.position <- st.position + 1;
  st.acc <- r :: st.acc

let rec scan_expr st loops e =
  match e with
  | Int_lit _ | Float_lit _ | Scalar _ -> ()
  | Element (a, idxs) ->
    List.iter (scan_expr st loops) idxs;
    make st loops Read a idxs
  | Unary (_, e) -> scan_expr st loops e
  | Binary (_, a, b) ->
    scan_expr st loops a;
    scan_expr st loops b
  | Call (_, args) -> List.iter (scan_expr st loops) args

let rec scan_cond st loops = function
  | Cmp (_, a, b) ->
    scan_expr st loops a;
    scan_expr st loops b
  | And (a, b) | Or (a, b) ->
    scan_cond st loops a;
    scan_cond st loops b
  | Not a -> scan_cond st loops a

let scan_lvalue st loops = function
  | Lscalar _ -> ()
  | Lelement (a, idxs) ->
    List.iter (scan_expr st loops) idxs;
    make st loops Write a idxs

let rec scan_stmt st loops = function
  | Assign (lv, e) ->
    scan_expr st loops e;
    scan_lvalue st loops lv
  | Read_input lv -> scan_lvalue st loops lv
  | Print e -> scan_expr st loops e
  | If (c, t, e) ->
    scan_cond st loops c;
    List.iter (scan_stmt st loops) t;
    List.iter (scan_stmt st loops) e
  | For { index; lo; hi; step; body } ->
    scan_expr st loops lo;
    scan_expr st loops hi;
    scan_expr st loops step;
    let ctx = { index; lo; hi; step } in
    List.iter (scan_stmt st (ctx :: loops)) body

let collect stmts =
  let st = { acc = []; position = 0 } in
  List.iter (scan_stmt st []) stmts;
  List.rev st.acc

let of_array name refs = List.filter (fun r -> r.array = name) refs
let reads refs = List.filter (fun r -> r.access = Read) refs
let writes refs = List.filter (fun r -> r.access = Write) refs

let revisit_free r ~under =
  let rec inner = function
    | [] -> []
    | lc :: rest -> if lc.index = under then List.map (fun l -> l.index) rest else inner rest
  in
  let inner_indices = inner r.loops in
  let subscript_vars =
    List.concat_map Bw_ir.Ast_util.expr_reads r.subscripts
  in
  List.for_all (fun idx -> List.mem idx subscript_vars) inner_indices

let subscript_wrt r ~index =
  let rec go dim = function
    | [] -> None
    | Some form :: rest ->
      if Affine.coeff form index <> 0 then Some (dim, form)
      else go (dim + 1) rest
    | None :: rest ->
      (* a non-affine dimension might mention the index: check textually *)
      let subscript = List.nth r.subscripts dim in
      if List.mem index (Bw_ir.Ast_util.expr_reads subscript) then None
      else go (dim + 1) rest
  in
  go 0 r.affine

let pp ppf r =
  Format.fprintf ppf "%s %s[%s] under [%s]"
    (match r.access with Read -> "read" | Write -> "write")
    r.array
    (String.concat ","
       (List.map Bw_ir.Pretty.expr_to_string r.subscripts))
    (String.concat "," (List.map (fun l -> l.index) r.loops))
