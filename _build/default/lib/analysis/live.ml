open Bw_ir.Ast

type range = {
  array : string;
  first : int;
  last : int;
  read_positions : int list;
  write_positions : int list;
  live_out : bool;
}

let pp_range ppf r =
  Format.fprintf ppf "%s: [%d,%d]%s" r.array r.first r.last
    (if r.live_out then " live-out" else "")

let stmt_array_accesses stmt =
  let refs = Refs.collect [ stmt ] in
  List.map
    (fun (r : Refs.t) ->
      (r.Refs.array, match r.Refs.access with Refs.Read -> `Read | Refs.Write -> `Write))
    refs

let analyse (p : program) =
  let table : (string, int list ref * int list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let is_array name =
    match find_decl p name with Some d -> is_array d | None -> false
  in
  List.iteri
    (fun pos stmt ->
      List.iter
        (fun (name, access) ->
          if is_array name then begin
            let reads, writes =
              match Hashtbl.find_opt table name with
              | Some cell -> cell
              | None ->
                let cell = (ref [], ref []) in
                Hashtbl.add table name cell;
                cell
            in
            match access with
            | `Read -> reads := pos :: !reads
            | `Write -> writes := pos :: !writes
          end)
        (stmt_array_accesses stmt))
    p.body;
  p.decls
  |> List.filter_map (fun d ->
         match Hashtbl.find_opt table d.var_name with
         | None -> None
         | Some (reads, writes) ->
           let read_positions = List.sort_uniq compare !reads in
           let write_positions = List.sort_uniq compare !writes in
           let all = read_positions @ write_positions in
           Some
             { array = d.var_name;
               first = List.fold_left min max_int all;
               last = List.fold_left max min_int all;
               read_positions;
               write_positions;
               live_out = List.mem d.var_name p.live_out })

let range_of ranges name = List.find_opt (fun r -> r.array = name) ranges

let dead_after p ~position name =
  match range_of (analyse p) name with
  | None -> not (List.mem name p.live_out)
  | Some r ->
    (not r.live_out)
    && not (List.exists (fun pos -> pos > position) r.read_positions)

let local_to p ~position =
  analyse p
  |> List.filter (fun r ->
         r.first = position && r.last = position && not r.live_out)
  |> List.map (fun r -> r.array)
