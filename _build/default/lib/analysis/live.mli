(** Live ranges of arrays across the top-level statement sequence.

    The paper's storage transformations key off this: loop fusion shortens
    an array's live range to a single loop nest, after which the array can
    be shrunk, peeled, or have its write-backs eliminated.  Positions are
    indices into [program.body]. *)

type range = {
  array : string;
  first : int;  (** first top-level statement touching the array *)
  last : int;  (** last top-level statement touching it *)
  read_positions : int list;
  write_positions : int list;
  live_out : bool;
      (** listed in [program.live_out] — its final contents escape *)
}

val pp_range : Format.formatter -> range -> unit

(** One range per declared array that is referenced at all. *)
val analyse : Bw_ir.Ast.program -> range list

val range_of : range list -> string -> range option

(** [dead_after ranges ~position array]: no statement strictly after
    [position] reads [array], and it is not live-out — so values written
    at or before [position] need never reach memory. *)
val dead_after : Bw_ir.Ast.program -> position:int -> string -> bool

(** Arrays whose entire live range is the single statement at [position]
    (and that are not live-out): candidates for storage reduction. *)
val local_to : Bw_ir.Ast.program -> position:int -> string list
