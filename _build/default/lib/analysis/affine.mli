(** Affine forms of subscript expressions: [const + sum of coeff * var].

    Dependence testing (ZIV/SIV/MIV, the GCD test) operates on these
    forms; a subscript that is not affine in the loop indices makes the
    tests answer "unknown" and the client transformations stay
    conservative. *)

type t = {
  const : int;
  terms : (string * int) list;  (** variable name -> coefficient, sorted
                                    by name, zero coefficients dropped *)
}

val const : int -> t
val var : string -> t
val equal : t -> t -> bool
val add : t -> t -> t
val sub : t -> t -> t
val scale : int -> t -> t

(** [of_expr e] is the affine form of [e], treating every [Scalar] as a
    symbolic variable; [None] if [e] contains array elements, calls,
    non-linear products, or float operations. *)
val of_expr : Bw_ir.Ast.expr -> t option

(** Back to an expression (canonical form: const + c1*v1 + ...). *)
val to_expr : t -> Bw_ir.Ast.expr

val coeff : t -> string -> int
val is_const : t -> bool

(** Variables with non-zero coefficients. *)
val vars : t -> string list

(** [eval t lookup] with every variable resolved. *)
val eval : t -> (string -> int) -> int

(** [drop_var t v] is [t] with [v]'s term removed (used to compare the
    shape of two subscripts modulo one index). *)
val drop_var : t -> string -> t

val pp : Format.formatter -> t -> unit
