lib/analysis/affine.ml: Bw_ir Format List Option
