lib/analysis/depend.ml: Affine Bw_ir Format List Printf Refs Result
