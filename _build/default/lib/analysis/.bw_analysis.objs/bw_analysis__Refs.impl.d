lib/analysis/refs.ml: Affine Bw_ir Format List String
