lib/analysis/depend.mli: Bw_ir Format Refs
