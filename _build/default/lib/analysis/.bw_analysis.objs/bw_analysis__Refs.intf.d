lib/analysis/refs.mli: Affine Bw_ir Format
