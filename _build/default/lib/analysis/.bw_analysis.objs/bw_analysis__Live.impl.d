lib/analysis/live.ml: Bw_ir Format Hashtbl List Refs
