lib/analysis/affine.mli: Bw_ir Format
