lib/analysis/live.mli: Bw_ir Format
