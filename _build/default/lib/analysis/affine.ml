open Bw_ir.Ast

type t = { const : int; terms : (string * int) list }

let normalise terms =
  terms
  |> List.filter (fun (_, c) -> c <> 0)
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let const c = { const = c; terms = [] }
let var v = { const = 0; terms = [ (v, 1) ] }

let equal a b = a.const = b.const && a.terms = b.terms

let merge f a b =
  let rec go xs ys =
    match (xs, ys) with
    | [], rest -> List.map (fun (v, c) -> (v, f 0 c)) rest
    | rest, [] -> List.map (fun (v, c) -> (v, f c 0)) rest
    | (vx, cx) :: xs', (vy, cy) :: ys' ->
      if vx = vy then (vx, f cx cy) :: go xs' ys'
      else if vx < vy then (vx, f cx 0) :: go xs' ys
      else (vy, f 0 cy) :: go xs ys'
  in
  normalise (go a.terms b.terms)

let add a b = { const = a.const + b.const; terms = merge ( + ) a b }
let sub a b = { const = a.const - b.const; terms = merge ( - ) a b }

let scale k a =
  { const = k * a.const;
    terms = normalise (List.map (fun (v, c) -> (v, k * c)) a.terms) }

let rec of_expr = function
  | Int_lit n -> Some (const n)
  | Scalar s -> Some (var s)
  | Unary (Neg, e) -> Option.map (scale (-1)) (of_expr e)
  | Binary (Add, a, b) -> combine add a b
  | Binary (Sub, a, b) -> combine sub a b
  | Binary (Mul, a, b) -> (
    match (of_expr a, of_expr b) with
    | Some fa, Some fb when is_const_form fa -> Some (scale fa.const fb)
    | Some fa, Some fb when is_const_form fb -> Some (scale fb.const fa)
    | _ -> None)
  | Float_lit _ | Element _ | Call _
  | Unary ((Abs | Sqrt | Int_to_float), _)
  | Binary ((Div | Mod | Min | Max), _, _) ->
    None

and combine f a b =
  match (of_expr a, of_expr b) with
  | Some fa, Some fb -> Some (f fa fb)
  | _ -> None

and is_const_form t = t.terms = []

let to_expr t =
  let term (v, c) =
    if c = 1 then Scalar v else Binary (Mul, Int_lit c, Scalar v)
  in
  match t.terms with
  | [] -> Int_lit t.const
  | first :: rest ->
    let sum =
      List.fold_left (fun acc tm -> Binary (Add, acc, term tm)) (term first) rest
    in
    if t.const = 0 then sum
    else if t.const > 0 then Binary (Add, sum, Int_lit t.const)
    else Binary (Sub, sum, Int_lit (-t.const))

let coeff t v = match List.assoc_opt v t.terms with Some c -> c | None -> 0
let is_const t = t.terms = []
let vars t = List.map fst t.terms

let eval t lookup =
  List.fold_left (fun acc (v, c) -> acc + (c * lookup v)) t.const t.terms

let drop_var t v =
  { t with terms = List.filter (fun (name, _) -> name <> v) t.terms }

let pp ppf t =
  if t.terms = [] then Format.pp_print_int ppf t.const
  else begin
    List.iteri
      (fun i (v, c) ->
        if i > 0 || c < 0 then
          Format.pp_print_string ppf (if c < 0 then " - " else " + ");
        let c = abs c in
        if c = 1 then Format.pp_print_string ppf v
        else Format.fprintf ppf "%d*%s" c v)
      t.terms;
    if t.const > 0 then Format.fprintf ppf " + %d" t.const
    else if t.const < 0 then Format.fprintf ppf " - %d" (-t.const)
  end
