(** Collection of array references with their loop context. *)

type access = Read | Write

type loop_context = {
  index : string;
  lo : Bw_ir.Ast.expr;
  hi : Bw_ir.Ast.expr;
  step : Bw_ir.Ast.expr;
}

type t = {
  array : string;
  subscripts : Bw_ir.Ast.expr list;
  affine : Affine.t option list;  (** one entry per subscript *)
  access : access;
  loops : loop_context list;  (** enclosing loops, outermost first *)
  position : int;  (** order of occurrence in a pre-order walk *)
}

(** All array references in the statements, in evaluation-ish order
    (pre-order; for an assignment, RHS reads precede the LHS write).
    [Read_input] lvalues count as writes. *)
val collect : Bw_ir.Ast.stmt list -> t list

(** References touching a specific array. *)
val of_array : string -> t list -> t list

val reads : t list -> t list
val writes : t list -> t list

(** [revisit_free r ~under] holds when every loop index enclosing [r]
    strictly inside the loop [under] appears in [r]'s subscripts — i.e.
    consecutive iterations of those inner loops touch distinct elements,
    so a value stored at one inner iteration is not re-read by the next.
    Used to validate textual-order reasoning at dependence distance 0. *)
val revisit_free : t -> under:string -> bool

(** [subscript_wrt r ~index] is the affine subscript of [r] in the (first)
    dimension that mentions the loop [index], together with that
    dimension's position — [None] when no dimension mentions it or the
    dimension is not affine. *)
val subscript_wrt : t -> index:string -> (int * Affine.t) option

val pp : Format.formatter -> t -> unit
