(** Array shrinking and peeling (Section 3.2, Figure 6).

    After fusion localises an array's live range to one loop nest, the
    dimension swept by the loop index usually carries only a short window
    of live values (e.g. subscripts [j-1] and [j] — a window of 2).  The
    transformation

    - {b peels} columns referenced with a constant subscript (the
      [a[i,1] -> a1[i]] rewrite) into dedicated smaller arrays,
    - {b unrolls} the boundary iterations where a windowed reference
      aliases a peeled column (the paper's [if (j=2)] guards, realised
      here as loop splitting), and
    - {b shrinks} the swept dimension to the window depth, rewriting
      subscripts to modular form.

    The result replaces an [N x N] array by one [N x depth] buffer plus
    [N]-element peels — the storage reduction the paper reports. *)

type plan = {
  array : string;
  loop_position : int;  (** top-level position of the enclosing loop *)
  dim : int;  (** dimension swept by the loop index *)
  depth : int;  (** live window: max offset - min offset + 1 *)
  offsets : int list;  (** window offsets of the variable references *)
  write_offset : int;
  peeled_columns : int list;  (** constant columns split into peel arrays *)
  unrolled_iterations : int list;  (** boundary iterations made explicit *)
}

val pp_plan : Format.formatter -> plan -> unit

(** [plan p array] analyses feasibility without rewriting. *)
val plan : Bw_ir.Ast.program -> string -> (plan, string) result

(** [apply p array] shrinks one array.  The returned program is
    semantically equivalent (checked by construction and by the test
    suite's interpreter comparisons). *)
val apply : Bw_ir.Ast.program -> string -> (Bw_ir.Ast.program * plan, string) result

(** Shrink every array the analysis accepts; returns the plans applied. *)
val shrink_all : Bw_ir.Ast.program -> Bw_ir.Ast.program * plan list

(** Total declared data bytes of a program — the storage metric Figure 6
    reduces. *)
val storage_bytes : Bw_ir.Ast.program -> int
