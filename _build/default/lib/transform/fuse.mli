(** Loop fusion: the rewriting side.

    [fuse_adjacent] merges two loops that {!Bw_analysis.Depend.fusable}
    accepts.  Conformable loops concatenate their bodies under one header;
    constant-bound loops with mismatched ranges fuse over the convex hull
    of their iteration spaces, with each body guarded by its own range
    test — the form the paper's Figure 6(b) takes. *)

(** [fuse_adjacent l1 l2] is the fused loop, running over [l1]'s index. *)
val fuse_adjacent :
  Bw_ir.Ast.loop -> Bw_ir.Ast.loop -> (Bw_ir.Ast.loop, string) result

(** [fuse_at p position] fuses the top-level statements at [position] and
    [position + 1] (both must be loops). *)
val fuse_at : Bw_ir.Ast.program -> int -> (Bw_ir.Ast.program, string) result

(** [apply_plan p partitions] reorders the top-level statements into the
    given partition sequence (each partition lists original positions, and
    is kept in ascending original order) and fuses each multi-statement
    partition into a single loop.  Every position must appear exactly
    once; the implied order must respect top-level dependences; partitions
    of size > 1 must contain only loops that fuse pairwise. *)
val apply_plan :
  Bw_ir.Ast.program -> int list list -> (Bw_ir.Ast.program, string) result

(** Greedy fusion sweep: repeatedly fuse the first fusable adjacent pair
    of top-level loops until none remains.  A baseline used by the
    ablation benchmarks. *)
val greedy : Bw_ir.Ast.program -> Bw_ir.Ast.program
