(** Loop interchange, strip-mining and tiling (blocking).

    These single-nest transformations implement what the paper attributes
    to the vendor compiler at [-O3] (Carr-Kennedy blocking of linear
    algebra codes): they reduce the memory traffic of kernels such as
    matrix multiply by orders of magnitude, turning the mm row of Figure 1
    from 5.9 bytes/flop to nearly zero. *)

(** [interchange outer] swaps a loop with its single, perfectly nested
    inner loop.  Legality is conservative: every array written inside must
    have all its reads at syntactically identical subscripts (reduction
    style) or not be read at all, and scalars must be private or pure
    accumulators. *)
val interchange : Bw_ir.Ast.loop -> (Bw_ir.Ast.loop, string) result

(** [strip_mine l ~tile ~outer_index] splits [For i = lo, hi] (constant
    bounds, unit step) into [For ii = lo, hi, tile / For i = ii,
    min(ii+tile-1, hi)].  Always legal. *)
val strip_mine :
  Bw_ir.Ast.loop -> tile:int -> outer_index:string ->
  (Bw_ir.Ast.loop, string) result

(** [tile_nest l ~tiles] tiles a perfect nest: [tiles] maps loop indices
    (outermost first, a prefix of the nest) to tile sizes.  Strip-mines
    each named loop and hoists all tile loops outside the element loops,
    preserving their relative order.  Legality: all element loops must be
    fully permutable, checked with the same conservative reduction rule as
    {!interchange}. *)
val tile_nest :
  Bw_ir.Ast.loop -> tiles:(string * int) list ->
  (Bw_ir.Ast.loop, string) result
