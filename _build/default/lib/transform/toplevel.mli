(** Dependences between top-level statements of a program.

    Node [i] is [List.nth program.body i].  There is an edge [a -> b]
    (with [a < b]) whenever the two statements access a common variable
    and at least one of them writes it — the condition under which their
    relative order must be preserved by any reordering or partitioning. *)

val dep_graph : Bw_ir.Ast.program -> Bw_graph.Digraph.t

(** [order_respects_deps p order] checks that the permutation [order] of
    [0 .. n-1] keeps every dependence edge forward. *)
val order_respects_deps : Bw_ir.Ast.program -> int list -> bool

(** [reorder p order] permutes the top-level statements; fails when the
    order drops/duplicates positions or violates a dependence. *)
val reorder : Bw_ir.Ast.program -> int list -> (Bw_ir.Ast.program, string) result
