(** Constant folding and control simplification.  Used to clean up the
    residue of iteration peeling and tiling: guards whose conditions have
    become literal, subscripts that fold to integers, loops with constant
    single-iteration ranges. *)

val fold_expr : Bw_ir.Ast.expr -> Bw_ir.Ast.expr

(** [fold_cond c] is [`True], [`False], or [`Cond c'] partially folded. *)
val fold_cond :
  Bw_ir.Ast.cond -> [ `True | `False | `Cond of Bw_ir.Ast.cond ]

(** Fold everything; prune dead branches; unroll loops whose constant
    range has exactly one iteration. *)
val simplify_stmts : Bw_ir.Ast.stmt list -> Bw_ir.Ast.stmt list

val simplify_program : Bw_ir.Ast.program -> Bw_ir.Ast.program
