open Bw_ir.Ast

(* Write-before-read discipline for array [a] at statement-list level,
   assuming all refs use identical subscripts per iteration.  Mirrors
   Depend.scalar_private but for array element accesses. *)
let array_write_first body a =
  let reads_a e =
    List.mem a (Bw_ir.Ast_util.expr_array_reads e)
  in
  let rec seq written stmts =
    List.fold_left
      (fun (safe, written) stmt ->
        if not safe then (false, written) else step written stmt)
      (true, written) stmts
  and step written stmt =
    match stmt with
    | Assign (lv, e) ->
      let lv_reads =
        match lv with
        | Lscalar _ -> false
        | Lelement (_, idxs) -> List.exists reads_a idxs
      in
      if (reads_a e || lv_reads) && not written then (false, written)
      else (true, written || lvalue_name lv = a)
    | Read_input lv -> (true, written || lvalue_name lv = a)
    | Print e -> if reads_a e && not written then (false, written) else (true, written)
    | If (c, t, e) ->
      let rec cond_reads = function
        | Cmp (_, x, y) -> reads_a x || reads_a y
        | And (x, y) | Or (x, y) -> cond_reads x || cond_reads y
        | Not x -> cond_reads x
      in
      if cond_reads c && not written then (false, written)
      else begin
        let safe_t, wt = seq written t in
        let safe_e, we = seq written e in
        (safe_t && safe_e, wt && we)
      end
    | For l ->
      (* each inner iteration must re-establish the discipline on its own:
         the subscripts involve the inner index, so elements differ per
         inner iteration and the write-first rule must hold within the
         inner body starting from "not written". *)
      let safe, _ = seq written l.body in
      (safe, written)
  in
  let safe, _ = seq false body in
  safe

let refs_of p = Bw_analysis.Refs.collect p.body

let contractable (p : program) =
  let all_refs = refs_of p in
  let ranges = Bw_analysis.Live.analyse p in
  p.decls
  |> List.filter_map (fun d ->
         if not (is_array d) then None
         else
           match Bw_analysis.Live.range_of ranges d.var_name with
           | None -> None
           | Some r ->
             if r.Bw_analysis.Live.live_out then None
             else if r.Bw_analysis.Live.first <> r.Bw_analysis.Live.last then
               None
             else begin
               let mine = Bw_analysis.Refs.of_array d.var_name all_refs in
               match mine with
               | [] -> None
               | first :: rest ->
                 let same_subscripts =
                   List.for_all
                     (fun (x : Bw_analysis.Refs.t) ->
                       x.Bw_analysis.Refs.subscripts
                       = first.Bw_analysis.Refs.subscripts)
                     rest
                 in
                 let stmt = List.nth p.body r.Bw_analysis.Live.first in
                 let enclosing_body =
                   match stmt with For l -> l.body | _ -> [ stmt ]
                 in
                 if
                   same_subscripts
                   && array_write_first enclosing_body d.var_name
                 then Some d.var_name
                 else None
             end)

let rec rewrite_expr a temp e =
  let recur = rewrite_expr a temp in
  match e with
  | Element (a', idxs) ->
    if a' = a then Scalar temp else Element (a', List.map recur idxs)
  | Int_lit _ | Float_lit _ | Scalar _ -> e
  | Unary (op, x) -> Unary (op, recur x)
  | Binary (op, x, y) -> Binary (op, recur x, recur y)
  | Call (f, args) -> Call (f, List.map recur args)

let rec rewrite_cond a temp c =
  let fe = rewrite_expr a temp and fc = rewrite_cond a temp in
  match c with
  | Cmp (op, x, y) -> Cmp (op, fe x, fe y)
  | And (x, y) -> And (fc x, fc y)
  | Or (x, y) -> Or (fc x, fc y)
  | Not x -> Not (fc x)

let rewrite_lvalue a temp = function
  | Lscalar s -> Lscalar s
  | Lelement (a', idxs) ->
    if a' = a then Lscalar temp
    else Lelement (a', List.map (rewrite_expr a temp) idxs)

let rec rewrite_stmt a temp = function
  | Assign (lv, e) -> Assign (rewrite_lvalue a temp lv, rewrite_expr a temp e)
  | Read_input lv -> Read_input (rewrite_lvalue a temp lv)
  | Print e -> Print (rewrite_expr a temp e)
  | If (c, t, e) ->
    If
      ( rewrite_cond a temp c,
        List.map (rewrite_stmt a temp) t,
        List.map (rewrite_stmt a temp) e )
  | For l -> For { l with body = List.map (rewrite_stmt a temp) l.body }

let contract_one (p : program) a =
  let taken =
    List.map (fun d -> d.var_name) p.decls @ Bw_ir.Ast_util.loop_indices p.body
  in
  let temp = Bw_ir.Ast_util.fresh_name ~taken (a ^ "1") in
  let dtype =
    match find_decl p a with Some d -> d.dtype | None -> F64
  in
  let decls =
    List.filter_map
      (fun d ->
        if d.var_name = a then None else Some d)
      p.decls
    @ [ { var_name = temp; dtype; dims = []; init = Init_zero } ]
  in
  { p with decls; body = List.map (rewrite_stmt a temp) p.body }

let contract_arrays (p : program) =
  let candidates = contractable p in
  (List.fold_left contract_one p candidates, candidates)
