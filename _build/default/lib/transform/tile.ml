open Bw_ir.Ast

(* Collect a perfect nest: loops whose body is exactly one inner loop. *)
let rec collect_nest (l : loop) =
  match l.body with
  | [ For inner ] ->
    let loops, body = collect_nest inner in
    (l :: loops, body)
  | body -> ([ l ], body)

let rebuild_nest loops innermost_body =
  let rec go : loop list -> loop = function
    | [] -> invalid_arg "rebuild_nest: empty"
    | [ l ] -> { l with body = innermost_body }
    | l :: rest -> { l with body = [ For (go rest) ] }
  in
  go loops

(* Conservative full-permutability test for a nest: inner bounds must not
   depend on outer indices, and every array written in the body must be
   read only at syntactically identical subscripts (pure reduction) or
   not read at all.  Scalars must be loop indices or private. *)
let permutable loops innermost_body =
  let indices = List.map (fun l -> l.index) loops in
  let bounds_independent =
    List.for_all
      (fun l ->
        List.for_all
          (fun e ->
            List.for_all
              (fun v -> not (List.mem v indices))
              (Bw_ir.Ast_util.expr_reads e))
          [ l.lo; l.hi; l.step ])
      loops
  in
  if not bounds_independent then Error "inner bounds depend on outer indices"
  else begin
    let refs = Bw_analysis.Refs.collect innermost_body in
    let bad_array =
      List.find_map
        (fun (w : Bw_analysis.Refs.t) ->
          if w.Bw_analysis.Refs.access <> Bw_analysis.Refs.Write then None
          else
            let offending =
              List.exists
                (fun (r : Bw_analysis.Refs.t) ->
                  r.Bw_analysis.Refs.access = Bw_analysis.Refs.Read
                  && r.Bw_analysis.Refs.array = w.Bw_analysis.Refs.array
                  && r.Bw_analysis.Refs.subscripts
                     <> w.Bw_analysis.Refs.subscripts)
                refs
            in
            if offending then Some w.Bw_analysis.Refs.array else None)
        refs
    in
    match bad_array with
    | Some a -> Error (Printf.sprintf "array '%s' blocks permutation" a)
    | None ->
      let arrays =
        List.map (fun (r : Bw_analysis.Refs.t) -> r.Bw_analysis.Refs.array) refs
      in
      let inner_indices = Bw_ir.Ast_util.loop_indices innermost_body in
      let scalars =
        Bw_ir.Ast_util.vars_written innermost_body
        |> List.filter (fun v ->
               (not (List.mem v arrays))
               && (not (List.mem v indices))
               && not (List.mem v inner_indices))
      in
      let bad_scalar =
        List.find_opt
          (fun s ->
            not (Bw_analysis.Depend.scalar_private innermost_body s))
          scalars
      in
      (match bad_scalar with
      | Some s -> Error (Printf.sprintf "scalar '%s' blocks permutation" s)
      | None -> Ok ())
  end

let interchange (l : loop) =
  match l.body with
  | [ For inner ] -> (
    match permutable [ l; inner ] inner.body with
    | Error e -> Error e
    | Ok () -> Ok { inner with body = [ For { l with body = inner.body } ] })
  | _ -> Error "interchange: not a perfect 2-deep nest"

let strip_mine (l : loop) ~tile ~outer_index =
  if tile <= 0 then Error "strip_mine: non-positive tile"
  else
    match Bw_analysis.Depend.constant_bounds l with
    | Some (lo, hi, 1) ->
      let inner_hi =
        Binary (Min, Binary (Add, Scalar outer_index, Int_lit (tile - 1)), Int_lit hi)
      in
      Ok
        { index = outer_index;
          lo = Int_lit lo;
          hi = Int_lit hi;
          step = Int_lit tile;
          body =
            [ For { l with lo = Scalar outer_index; hi = inner_hi } ] }
    | Some _ -> Error "strip_mine: step must be 1"
    | None -> Error "strip_mine: bounds must be constant"

let tile_nest (l : loop) ~tiles =
  let loops, innermost_body = collect_nest l in
  match permutable loops innermost_body with
  | Error e -> Error e
  | Ok () ->
    let indices = List.map (fun lp -> lp.index) loops in
    if List.exists (fun (i, _) -> not (List.mem i indices)) tiles then
      Error "tile_nest: unknown loop index"
    else if List.exists (fun (_, t) -> t <= 0) tiles then
      Error "tile_nest: non-positive tile"
    else begin
      let taken =
        ref (indices @ Bw_ir.Ast_util.loop_indices innermost_body)
      in
      let tile_loops = ref [] and element_loops = ref [] in
      let result =
        List.fold_left
          (fun ok lp ->
            match ok with
            | Error _ as e -> e
            | Ok () -> (
              match List.assoc_opt lp.index tiles with
              | None ->
                element_loops := !element_loops @ [ lp ];
                Ok ()
              | Some t -> (
                match Bw_analysis.Depend.constant_bounds lp with
                | Some (lo, hi, 1) ->
                  let tname =
                    Bw_ir.Ast_util.fresh_name ~taken:!taken
                      (lp.index ^ lp.index)
                  in
                  taken := tname :: !taken;
                  tile_loops :=
                    !tile_loops
                    @ [ { index = tname;
                          lo = Int_lit lo;
                          hi = Int_lit hi;
                          step = Int_lit t;
                          body = [] } ];
                  let elem_hi =
                    Binary
                      ( Min,
                        Binary (Add, Scalar tname, Int_lit (t - 1)),
                        Int_lit hi )
                  in
                  element_loops :=
                    !element_loops
                    @ [ { lp with lo = Scalar tname; hi = elem_hi } ];
                  Ok ()
                | Some _ -> Error "tile_nest: step must be 1"
                | None -> Error "tile_nest: bounds must be constant")))
          (Ok ()) loops
      in
      match result with
      | Error e -> Error e
      | Ok () -> Ok (rebuild_nest (!tile_loops @ !element_loops) innermost_body)
    end
