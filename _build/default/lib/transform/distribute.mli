(** Loop distribution (fission) — fusion's dual.

    The body's statements are partitioned into the strongly connected
    components of their dependence graph (statements tied by a cycle of
    loop-carried dependences must stay together); each component becomes
    its own loop, emitted in topological order.  Distribution is how a
    compiler canonicalises loops into minimal pieces before re-fusing
    them under the bandwidth-minimal objective — running
    [distribute_all] then {!Bw_fusion.Bandwidth_minimal.fuse_program}
    re-derives the best grouping regardless of how the source was
    written. *)

(** [distribute l] splits one loop; returns the replacement loops in
    execution order (a single element when the body is one big cycle).
    Conservative: scalars written in the body must be private
    (write-before-read) or they glue their statements together. *)
val distribute : Bw_ir.Ast.loop -> (Bw_ir.Ast.loop list, string) result

(** [distribute_at p pos] replaces the loop at top-level position [pos]. *)
val distribute_at :
  Bw_ir.Ast.program -> int -> (Bw_ir.Ast.program, string) result

(** Distribute every top-level loop as far as it will go. *)
val distribute_all : Bw_ir.Ast.program -> Bw_ir.Ast.program
