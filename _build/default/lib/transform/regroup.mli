(** Inter-array data regrouping — the spatial-locality companion the
    paper's related-work section attributes to Ding's dissertation:
    arrays that are always accessed together at the same subscripts
    (like an FFT's real/imaginary halves) are interleaved into a single
    array with one extra leading dimension, so each cache line delivers
    both operands of a butterfly instead of one.

    Regrouping is a pure layout change: the rewritten program is
    observationally identical (modulo the grouped arrays no longer being
    individually addressable, so live-out arrays are never grouped). *)

(** Pairs worth grouping: same shape and type, not live-out, and
    co-accessed — every statement that touches one touches the other at
    identical subscripts. *)
val candidates : Bw_ir.Ast.program -> (string * string) list

(** [regroup_pair p a b] interleaves [a] and [b] into a fresh array with
    a leading dimension of extent 2. *)
val regroup_pair :
  Bw_ir.Ast.program -> string -> string -> (Bw_ir.Ast.program, string) result

(** Group every candidate pair greedily; returns the grouped pairs. *)
val regroup_all : Bw_ir.Ast.program -> Bw_ir.Ast.program * (string * string) list
