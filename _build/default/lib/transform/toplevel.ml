open Bw_ir.Ast

let stmt_vars stmt =
  let reads = Bw_ir.Ast_util.vars_read [ stmt ] in
  let writes = Bw_ir.Ast_util.vars_written [ stmt ] in
  let indices = Bw_ir.Ast_util.loop_indices [ stmt ] in
  let strip vars = List.filter (fun v -> not (List.mem v indices)) vars in
  (strip reads, strip writes)

let dep_graph (p : program) =
  let n = List.length p.body in
  let g = Bw_graph.Digraph.create ~size_hint:n () in
  Bw_graph.Digraph.ensure_nodes g n;
  let accesses = Array.of_list (List.map stmt_vars p.body) in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      let reads_a, writes_a = accesses.(a) in
      let reads_b, writes_b = accesses.(b) in
      let conflict =
        List.exists (fun v -> List.mem v reads_b || List.mem v writes_b) writes_a
        || List.exists (fun v -> List.mem v writes_b) reads_a
      in
      if conflict then Bw_graph.Digraph.add_edge g a b
    done
  done;
  g

let order_respects_deps p order =
  let g = dep_graph p in
  let pos = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace pos v i) order;
  Bw_graph.Digraph.fold_edges g ~init:true ~f:(fun ok a b ->
      ok
      &&
      match (Hashtbl.find_opt pos a, Hashtbl.find_opt pos b) with
      | Some pa, Some pb -> pa < pb
      | _ -> false)

let reorder (p : program) order =
  let n = List.length p.body in
  if List.sort compare order <> List.init n (fun i -> i) then
    Error "reorder: order is not a permutation of statement positions"
  else if not (order_respects_deps p order) then
    Error "reorder: order violates a top-level dependence"
  else begin
    let body = Array.of_list p.body in
    Ok { p with body = List.map (fun i -> body.(i)) order }
  end
