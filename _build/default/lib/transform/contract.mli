(** Array contraction: replace an array by a single scalar (the
    Sarkar-Gao transformation the paper generalises).

    An array is contractable when its entire live range sits inside one
    top-level loop nest, every reference uses the same subscripts per
    iteration, and each iteration writes the element before reading it —
    so no value crosses iterations and one register cell suffices.  This
    is the [b -> b1] rewrite of Figure 6(c). *)

(** [contractable p] lists the arrays the analysis can contract. *)
val contractable : Bw_ir.Ast.program -> string list

(** [contract_arrays p] rewrites every contractable array into a fresh
    scalar, removing the array declarations.  Returns the program and the
    contracted array names. *)
val contract_arrays : Bw_ir.Ast.program -> Bw_ir.Ast.program * string list
