open Bw_ir.Ast

let rec fold_expr e =
  match e with
  | Int_lit _ | Float_lit _ | Scalar _ -> e
  | Element (a, idxs) -> Element (a, List.map fold_expr idxs)
  | Unary (op, x) -> (
    let x = fold_expr x in
    match (op, x) with
    | Neg, Int_lit n -> Int_lit (-n)
    | Neg, Float_lit f -> Float_lit (-.f)
    | Abs, Int_lit n -> Int_lit (abs n)
    | Abs, Float_lit f -> Float_lit (Float.abs f)
    | Int_to_float, Int_lit n -> Float_lit (float_of_int n)
    | (Neg | Abs | Sqrt | Int_to_float), _ -> Unary (op, x))
  | Binary (op, a, b) -> (
    let a = fold_expr a and b = fold_expr b in
    match (op, a, b) with
    | Add, Int_lit x, Int_lit y -> Int_lit (x + y)
    | Sub, Int_lit x, Int_lit y -> Int_lit (x - y)
    | Mul, Int_lit x, Int_lit y -> Int_lit (x * y)
    | Div, Int_lit x, Int_lit y when y <> 0 -> Int_lit (x / y)
    | Mod, Int_lit x, Int_lit y when y <> 0 -> Int_lit (x mod y)
    | Min, Int_lit x, Int_lit y -> Int_lit (min x y)
    | Max, Int_lit x, Int_lit y -> Int_lit (max x y)
    | Add, x, Int_lit 0 | Add, Int_lit 0, x -> x
    | Sub, x, Int_lit 0 -> x
    | Mul, x, Int_lit 1 | Mul, Int_lit 1, x -> x
    | _ -> Binary (op, a, b))
  | Call (f, args) -> Call (f, List.map fold_expr args)

let compare_lits op c =
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let rec fold_cond c =
  match c with
  | Cmp (op, a, b) -> (
    let a = fold_expr a and b = fold_expr b in
    match (a, b) with
    | Int_lit x, Int_lit y ->
      if compare_lits op (compare x y) then `True else `False
    | Float_lit x, Float_lit y ->
      if compare_lits op (compare x y) then `True else `False
    | _ -> `Cond (Cmp (op, a, b)))
  | And (a, b) -> (
    match (fold_cond a, fold_cond b) with
    | `False, _ | _, `False -> `False
    | `True, other | other, `True -> other
    | `Cond a, `Cond b -> `Cond (And (a, b)))
  | Or (a, b) -> (
    match (fold_cond a, fold_cond b) with
    | `True, _ | _, `True -> `True
    | `False, other | other, `False -> other
    | `Cond a, `Cond b -> `Cond (Or (a, b)))
  | Not a -> (
    match fold_cond a with
    | `True -> `False
    | `False -> `True
    | `Cond a -> `Cond (Not a))

let fold_lvalue = function
  | Lscalar s -> Lscalar s
  | Lelement (a, idxs) -> Lelement (a, List.map fold_expr idxs)

let rec simplify_stmts stmts =
  List.concat_map
    (fun stmt ->
      match stmt with
      | Assign (lv, e) -> [ Assign (fold_lvalue lv, fold_expr e) ]
      | Read_input lv -> [ Read_input (fold_lvalue lv) ]
      | Print e -> [ Print (fold_expr e) ]
      | If (c, t, e) -> (
        let t = simplify_stmts t and e = simplify_stmts e in
        match fold_cond c with
        | `True -> t
        | `False -> e
        | `Cond c -> if t = [] && e = [] then [] else [ If (c, t, e) ])
      | For l -> (
        let l =
          { l with
            lo = fold_expr l.lo;
            hi = fold_expr l.hi;
            step = fold_expr l.step;
            body = simplify_stmts l.body }
        in
        match (l.lo, l.hi, l.step) with
        | Int_lit lo, Int_lit hi, Int_lit _ when lo > hi -> []
        | Int_lit lo, Int_lit hi, Int_lit step when lo = hi || lo + step > hi
          ->
          (* single iteration: inline with the index substituted *)
          simplify_stmts
            (List.map
               (fun s ->
                 List.hd
                   (Bw_ir.Ast_util.subst_scalar_stmts ~name:l.index
                      ~value:(Int_lit lo) [ s ]))
               l.body)
        | _ -> [ For l ]))
    stmts

let simplify_program (p : program) = { p with body = simplify_stmts p.body }
