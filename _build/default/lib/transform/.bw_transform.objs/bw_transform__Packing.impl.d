lib/transform/packing.ml: Bw_analysis Bw_ir List Option Printf Result
