lib/transform/distribute.mli: Bw_ir
