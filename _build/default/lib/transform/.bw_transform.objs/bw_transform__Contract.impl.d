lib/transform/contract.ml: Bw_analysis Bw_ir List
