lib/transform/fuse.ml: Array Bw_analysis Bw_ir List Result Toplevel
