lib/transform/contract.mli: Bw_ir
