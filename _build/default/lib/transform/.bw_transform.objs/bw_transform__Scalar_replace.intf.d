lib/transform/scalar_replace.mli: Bw_ir
