lib/transform/tile.ml: Bw_analysis Bw_ir List Printf
