lib/transform/store_elim.mli: Bw_ir
