lib/transform/toplevel.ml: Array Bw_graph Bw_ir Hashtbl List
