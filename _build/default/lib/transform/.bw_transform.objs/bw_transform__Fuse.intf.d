lib/transform/fuse.mli: Bw_ir
