lib/transform/simplify.mli: Bw_ir
