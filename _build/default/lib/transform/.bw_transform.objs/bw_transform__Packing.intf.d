lib/transform/packing.mli: Bw_ir
