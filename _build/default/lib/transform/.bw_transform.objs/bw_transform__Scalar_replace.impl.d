lib/transform/scalar_replace.ml: Bw_ir List
