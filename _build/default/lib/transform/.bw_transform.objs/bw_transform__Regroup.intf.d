lib/transform/regroup.mli: Bw_ir
