lib/transform/toplevel.mli: Bw_graph Bw_ir
