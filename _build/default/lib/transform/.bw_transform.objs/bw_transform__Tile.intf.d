lib/transform/tile.mli: Bw_ir
