lib/transform/shrink.ml: Bw_analysis Bw_ir Format List Option Printf Result Simplify String
