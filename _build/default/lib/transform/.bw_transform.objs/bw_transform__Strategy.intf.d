lib/transform/strategy.mli: Bw_ir Format Shrink
