lib/transform/regroup.ml: Bw_analysis Bw_ir List
