lib/transform/strategy.ml: Bw_ir Contract Format Fuse List Scalar_replace Shrink Store_elim String
