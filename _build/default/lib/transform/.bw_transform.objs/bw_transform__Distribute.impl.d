lib/transform/distribute.ml: Array Bw_analysis Bw_graph Bw_ir List Result
