lib/transform/store_elim.ml: Bw_analysis Bw_ir List Scalar_replace
