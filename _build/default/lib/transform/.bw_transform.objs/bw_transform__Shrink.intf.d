lib/transform/shrink.mli: Bw_ir Format
