lib/transform/simplify.ml: Bw_ir Float List
