open Bw_ir.Ast

(* Are [a] and [b] co-accessed?  Walk statements; in every Assign /
   Read_input / Print, the multisets of subscript lists used for [a] and
   [b] must match.  (Statement granularity keeps the test simple and
   conservative.) *)
let co_accessed (p : program) a b =
  let subs_of name stmt =
    Bw_analysis.Refs.collect [ stmt ]
    |> Bw_analysis.Refs.of_array name
    |> List.map (fun (r : Bw_analysis.Refs.t) -> r.Bw_analysis.Refs.subscripts)
    |> List.sort compare
  in
  (* top-level statement granularity: each loop nest must use the two
     arrays through the same multiset of subscript lists *)
  List.for_all (fun stmt -> subs_of a stmt = subs_of b stmt) p.body

let candidates (p : program) =
  let arrays = List.filter is_array p.decls in
  let eligible d =
    not (List.mem d.var_name p.live_out)
  in
  let rec pairs = function
    | [] -> []
    | d :: rest ->
      List.filter_map
        (fun d' ->
          if
            eligible d && eligible d'
            && d.dims = d'.dims
            && d.dtype = d'.dtype
            && co_accessed p d.var_name d'.var_name
            && Bw_analysis.Refs.of_array d.var_name
                 (Bw_analysis.Refs.collect p.body)
               <> []
          then Some (d.var_name, d'.var_name)
          else None)
        rest
      @ pairs rest
  in
  pairs arrays

let rec rewrite_expr a b group e =
  let recur = rewrite_expr a b group in
  match e with
  | Element (name, idxs) when name = a ->
    Element (group, Int_lit 1 :: List.map recur idxs)
  | Element (name, idxs) when name = b ->
    Element (group, Int_lit 2 :: List.map recur idxs)
  | Element (name, idxs) -> Element (name, List.map recur idxs)
  | Int_lit _ | Float_lit _ | Scalar _ -> e
  | Unary (op, x) -> Unary (op, recur x)
  | Binary (op, x, y) -> Binary (op, recur x, recur y)
  | Call (f, args) -> Call (f, List.map recur args)

let rec rewrite_cond a b group c =
  let fe = rewrite_expr a b group and fc = rewrite_cond a b group in
  match c with
  | Cmp (op, x, y) -> Cmp (op, fe x, fe y)
  | And (x, y) -> And (fc x, fc y)
  | Or (x, y) -> Or (fc x, fc y)
  | Not x -> Not (fc x)

let rewrite_lvalue a b group = function
  | Lscalar s -> Lscalar s
  | Lelement (name, idxs) -> (
    match rewrite_expr a b group (Element (name, idxs)) with
    | Element (name', idxs') -> Lelement (name', idxs')
    | _ -> assert false)

let rec rewrite_stmt a b group = function
  | Assign (lv, e) ->
    Assign (rewrite_lvalue a b group lv, rewrite_expr a b group e)
  | Read_input lv -> Read_input (rewrite_lvalue a b group lv)
  | Print e -> Print (rewrite_expr a b group e)
  | If (c, t, e) ->
    If
      ( rewrite_cond a b group c,
        List.map (rewrite_stmt a b group) t,
        List.map (rewrite_stmt a b group) e )
  | For l -> For { l with body = List.map (rewrite_stmt a b group) l.body }

let regroup_pair (p : program) a b =
  match (find_decl p a, find_decl p b) with
  | Some da, Some db when is_array da && is_array db ->
    if da.dims <> db.dims || da.dtype <> db.dtype then
      Error "arrays have different shapes"
    else if List.mem a p.live_out || List.mem b p.live_out then
      Error "a grouped array is live-out"
    else begin
      let taken =
        List.map (fun d -> d.var_name) p.decls
        @ Bw_ir.Ast_util.loop_indices p.body
      in
      let group = Bw_ir.Ast_util.fresh_name ~taken (a ^ "_" ^ b) in
      (* Interleaving at stride 2 maps group offset k to member offset
         k / 2, so identical member initialisers are reproduced exactly
         by Init_lanes; differing ones cannot be. *)
      if da.init <> db.init then
        Error "arrays have different initialisers"
      else begin
        let init =
          match da.init with
          | Init_zero -> Init_zero
          | other -> Init_lanes (other, 2)
        in
        let decls =
          List.filter (fun d -> d.var_name <> a && d.var_name <> b) p.decls
          @ [ { var_name = group; dtype = da.dtype; dims = 2 :: da.dims; init } ]
        in
        Ok
          { p with
            decls;
            body = List.map (rewrite_stmt a b group) p.body }
      end
    end
  | _ -> Error "no such arrays"

let regroup_all (p : program) =
  let rec go p done_pairs =
    match
      List.find_opt
        (fun (a, b) ->
          not (List.exists (fun (a', b') -> a = a' || b = b' || a = b' || b = a') done_pairs))
        (candidates p)
    with
    | None -> (p, List.rev done_pairs)
    | Some (a, b) -> (
      match regroup_pair p a b with
      | Ok p' -> go p' ((a, b) :: done_pairs)
      | Error _ -> (p, List.rev done_pairs))
  in
  go p []
