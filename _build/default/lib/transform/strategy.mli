(** The paper's end-to-end compiler strategy: fuse loops globally, then
    reduce storage (contract, shrink, peel), then eliminate the remaining
    write-backs.  Each stage is optional so the ablation benchmarks can
    switch pieces off. *)

type stage_report = {
  fused_loops : int;  (** top-level statements removed by fusion *)
  contracted : string list;
  shrink_plans : Shrink.plan list;
  stores_eliminated : string list;
  forwarded : int;  (** store sites whose uses were forwarded *)
}

type options = {
  fuse : bool;
  contract : bool;
  shrink : bool;
  store_elim : bool;
}

val all_on : options
val fusion_only : options

(** [run ?options p] applies the pipeline, returning the transformed
    program and a report of what each stage did.  The result always
    type-checks; semantic preservation is the test suite's burden. *)
val run : ?options:options -> Bw_ir.Ast.program -> Bw_ir.Ast.program * stage_report

val pp_report : Format.formatter -> stage_report -> unit
