(** Run-time locality optimisation for irregular applications (the
    dynamic-application arm of the paper's strategy, Section 4):

    - {b data packing}: renumber the particles in first-touch order of
      the interaction list and copy the data arrays into that order, so
      neighbouring interactions touch neighbouring memory;
    - {b locality grouping}: counting-sort the interaction list by one
      of its index arrays, so consecutive iterations revisit the same
      particle's cache lines.

    Both are expressed as IR-to-IR rewrites that emit the run-time
    prologue code (permutation construction, copies, counting sort) into
    the program itself, so the cost of the reorganisation is simulated
    along with its benefit.

    Packing preserves observable behaviour exactly (live-out arrays are
    unpacked at the end).  Grouping reorders floating-point accumulation
    and is exact only up to rounding — verify with
    {!Bw_exec.Interp.close_observation}. *)

type spec = {
  index_arrays : string list;
      (** parallel 1-D integer arrays holding particle numbers *)
  data_arrays : string list;
      (** 1-D arrays subscripted only through the index arrays *)
}

(** [pack p spec] renumbers and copies.  Fails when a data array is
    accessed directly (not through an index array) after the insertion
    point, when shapes disagree, or when an index array is rewritten
    after the interaction lists are final. *)
val pack : Bw_ir.Ast.program -> spec -> (Bw_ir.Ast.program, string) result

(** [group p spec ~by] counting-sorts the interaction list by the index
    array [by] (which must belong to [spec.index_arrays]). *)
val group :
  Bw_ir.Ast.program -> spec -> by:string -> (Bw_ir.Ast.program, string) result
