type stage_report = {
  fused_loops : int;
  contracted : string list;
  shrink_plans : Shrink.plan list;
  stores_eliminated : string list;
  forwarded : int;
}

type options = {
  fuse : bool;
  contract : bool;
  shrink : bool;
  store_elim : bool;
}

let all_on = { fuse = true; contract = true; shrink = true; store_elim = true }

let fusion_only =
  { fuse = true; contract = false; shrink = false; store_elim = false }

let run ?(options = all_on) (p : Bw_ir.Ast.program) =
  let before = List.length p.Bw_ir.Ast.body in
  let p = if options.fuse then Fuse.greedy p else p in
  let fused_loops = before - List.length p.Bw_ir.Ast.body in
  let p, contracted =
    if options.contract then Contract.contract_arrays p else (p, [])
  in
  let p, shrink_plans =
    if options.shrink then Shrink.shrink_all p else (p, [])
  in
  let p, forwarded =
    if options.store_elim then Scalar_replace.forward_stores p else (p, 0)
  in
  let p, stores_eliminated =
    if options.store_elim then Store_elim.eliminate_dead_stores p else (p, [])
  in
  (* The pipeline may leave a forwarding temp whose store was the only
     consumer; one more contraction pass tidies that up. *)
  let p, contracted2 =
    if options.contract then Contract.contract_arrays p else (p, [])
  in
  Bw_ir.Check.check_exn p;
  ( p,
    { fused_loops;
      contracted = contracted @ contracted2;
      shrink_plans;
      stores_eliminated;
      forwarded } )

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>fused %d loop(s)@,contracted: %s@,shrunk: %s@,store-eliminated: %s@,forwarded %d site(s)@]"
    r.fused_loops
    (match r.contracted with [] -> "-" | l -> String.concat ", " l)
    (match r.shrink_plans with
    | [] -> "-"
    | l ->
      String.concat ", "
        (List.map (fun (pl : Shrink.plan) -> pl.Shrink.array) l))
    (match r.stores_eliminated with [] -> "-" | l -> String.concat ", " l)
    r.forwarded
