(** Scalar replacement (value forwarding): after a store [a[idx] = e],
    later reads of the syntactically identical element in the same
    iteration are replaced by a fresh scalar temporary holding [e].

    This finishes the remaining uses of a stored value in registers, which
    is the enabling step for store elimination (Figure 7): once no read
    consumes the stored value, the store itself is dead. *)

(** [forward_stores p] returns the rewritten program and the number of
    store sites that had reads forwarded.  The scan is conservative: it
    follows straight-line code and descends into [If] branches, but stops
    at nested loops, at any other write to the same array, and at writes
    to variables appearing in the subscripts. *)
val forward_stores : Bw_ir.Ast.program -> Bw_ir.Ast.program * int
