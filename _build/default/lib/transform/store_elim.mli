(** Store elimination (Section 3.3): remove memory write-backs to arrays
    whose stored values are never consumed.

    A store site [a[f(i)] = e] inside a loop is dead when

    - [a] is not live-out and no later top-level statement reads it, and
    - no read of [a] inside the same loop can observe a stored value:
      for every (write, read) pair the dependence distance [d = iter_read
      - iter_write] satisfies [d < 0] (the read sees only initial values),
      or [d = 0] with the read occurring textually before the store.

    Removing the assignment also removes its right-hand side; combined
    with {!Scalar_replace.forward_stores} this is exactly the paper's
    transformation: finish the uses in registers, then stop writing the
    array back. *)

(** Returns the rewritten program and the arrays whose stores were
    removed. *)
val eliminate_dead_stores : Bw_ir.Ast.program -> Bw_ir.Ast.program * string list

(** The full Figure 7 pipeline: forward stores, then eliminate the dead
    ones.  Returns the program and the arrays eliminated. *)
val run : Bw_ir.Ast.program -> Bw_ir.Ast.program * string list
