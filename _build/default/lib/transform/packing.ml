open Bw_ir.Ast

type spec = { index_arrays : string list; data_arrays : string list }

let ( let* ) = Result.bind

let find_array (p : program) name =
  match find_decl p name with
  | Some d when is_array d -> Ok d
  | Some _ -> Error (name ^ " is not an array")
  | None -> Error ("no such array: " ^ name)

let extent1 d =
  match d.dims with
  | [ n ] -> Ok n
  | _ -> Error (d.var_name ^ " is not one-dimensional")

(* First top-level statement that references any of the data arrays. *)
let insert_position (p : program) spec =
  let refs_data stmt =
    let refs = Bw_analysis.Refs.collect [ stmt ] in
    List.exists
      (fun (r : Bw_analysis.Refs.t) ->
        List.mem r.Bw_analysis.Refs.array spec.data_arrays)
      refs
  in
  let rec go i = function
    | [] -> Error "data arrays are never referenced"
    | stmt :: _ when refs_data stmt -> Ok i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 p.body

let validate_after (p : program) spec position =
  let after = List.filteri (fun i _ -> i >= position) p.body in
  let refs = Bw_analysis.Refs.collect after in
  (* index arrays must be read-only from here on *)
  let* () =
    match
      List.find_opt
        (fun (r : Bw_analysis.Refs.t) ->
          r.Bw_analysis.Refs.access = Bw_analysis.Refs.Write
          && List.mem r.Bw_analysis.Refs.array spec.index_arrays)
        refs
    with
    | Some r ->
      Error
        (Printf.sprintf "index array '%s' is written after the lists are used"
           r.Bw_analysis.Refs.array)
    | None -> Ok ()
  in
  (* every data-array subscript must be an indirect load from an index
     array *)
  let indirect (r : Bw_analysis.Refs.t) =
    match r.Bw_analysis.Refs.subscripts with
    | [ Element (ia, _) ] -> List.mem ia spec.index_arrays
    | _ -> false
  in
  match
    List.find_opt
      (fun (r : Bw_analysis.Refs.t) ->
        List.mem r.Bw_analysis.Refs.array spec.data_arrays
        && not (indirect r))
      refs
  with
  | Some r ->
    Error
      (Printf.sprintf "array '%s' is accessed directly, not through an index array"
         r.Bw_analysis.Refs.array)
  | None -> Ok ()

let rename_arrays names_map stmts =
  let rename name =
    match List.assoc_opt name names_map with Some n -> n | None -> name
  in
  let rec rn_expr = function
    | Element (a, idxs) -> Element (rename a, List.map rn_expr idxs)
    | (Int_lit _ | Float_lit _ | Scalar _) as e -> e
    | Unary (op, x) -> Unary (op, rn_expr x)
    | Binary (op, x, y) -> Binary (op, rn_expr x, rn_expr y)
    | Call (f, args) -> Call (f, List.map rn_expr args)
  in
  let rec rn_cond = function
    | Cmp (op, x, y) -> Cmp (op, rn_expr x, rn_expr y)
    | And (x, y) -> And (rn_cond x, rn_cond y)
    | Or (x, y) -> Or (rn_cond x, rn_cond y)
    | Not x -> Not (rn_cond x)
  in
  let rn_lvalue = function
    | Lscalar s -> Lscalar s
    | Lelement (a, idxs) -> Lelement (rename a, List.map rn_expr idxs)
  in
  let rec rn_stmt = function
    | Assign (lv, e) -> Assign (rn_lvalue lv, rn_expr e)
    | Read_input lv -> Read_input (rn_lvalue lv)
    | Print e -> Print (rn_expr e)
    | If (c, t, e) -> If (rn_cond c, List.map rn_stmt t, List.map rn_stmt e)
    | For l -> For { l with body = List.map rn_stmt l.body }
  in
  List.map rn_stmt stmts

let fresh taken base =
  let name = Bw_ir.Ast_util.fresh_name ~taken:!taken base in
  taken := name :: !taken;
  name

let split_at n list =
  let rec go i acc = function
    | rest when i = n -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (i + 1) (x :: acc) rest
  in
  go 0 [] list

let pack (p : program) spec =
  let open Bw_ir.Builder in
  let* data_decls =
    List.fold_left
      (fun acc a ->
        let* acc = acc in
        let* d = find_array p a in
        Ok (acc @ [ d ]))
      (Ok []) spec.data_arrays
  in
  let* n =
    match data_decls with
    | [] -> Error "no data arrays"
    | d :: rest ->
      let* n = extent1 d in
      if List.for_all (fun d' -> d'.dims = [ n ]) rest then Ok n
      else Error "data arrays have different extents"
  in
  let* index_decls =
    List.fold_left
      (fun acc a ->
        let* acc = acc in
        let* d = find_array p a in
        let* _ = extent1 d in
        if d.dtype = I64 then Ok (acc @ [ d ])
        else Error (a ^ " is not an integer array"))
      (Ok []) spec.index_arrays
  in
  let* position = insert_position p spec in
  let* () = validate_after p spec position in
  let taken =
    ref
      (List.map (fun d -> d.var_name) p.decls
      @ Bw_ir.Ast_util.loop_indices p.body)
  in
  let perm = fresh taken "perm" in
  let pos = fresh taken "pos" in
  let k = fresh taken "pk" in
  let i = fresh taken "pi" in
  let packed =
    List.map (fun a -> (a, fresh taken ("packed_" ^ a))) spec.data_arrays
  in
  (* first-touch numbering over each index array, in order *)
  let number_loop (d : decl) =
    let m = List.hd d.dims in
    let ival = d.var_name $ [ v k ] in
    for_ k (int 1) (int m)
      [ if_
          ((perm $ [ ival ]) =: int 0)
          [ sc pos <-- (v pos +: int 1);
            (perm $. [ ival ]) <-- v pos ]
          [] ]
  in
  let sweep_untouched =
    for_ i (int 1) (int n)
      [ if_
          ((perm $ [ v i ]) =: int 0)
          [ sc pos <-- (v pos +: int 1); (perm $. [ v i ]) <-- v pos ]
          [] ]
  in
  let copy_in =
    List.map
      (fun (a, pa) ->
        for_ i (int 1) (int n)
          [ (pa $. [ perm $ [ v i ] ]) <-- (a $ [ v i ]) ])
      packed
  in
  let remap_indices =
    List.map
      (fun (d : decl) ->
        let m = List.hd d.dims in
        for_ k (int 1) (int m)
          [ (d.var_name $. [ v k ])
            <-- (perm $ [ d.var_name $ [ v k ] ]) ])
      index_decls
  in
  let prologue =
    (Lscalar pos <-- int 0)
    :: (List.map number_loop index_decls
       @ [ sweep_untouched ] @ copy_in @ remap_indices)
  in
  let before, after = split_at position p.body in
  let renamed_after = rename_arrays packed after in
  (* unpack live-out data arrays at the very end *)
  let unpack =
    List.filter_map
      (fun (a, pa) ->
        if List.mem a p.live_out then
          Some
            (for_ i (int 1) (int n)
               [ (a $. [ v i ]) <-- (pa $ [ perm $ [ v i ] ]) ])
        else None)
      packed
  in
  let decls =
    p.decls
    @ [ { var_name = perm; dtype = I64; dims = [ n ]; init = Init_zero };
        { var_name = pos; dtype = I64; dims = []; init = Init_zero } ]
    @ List.map
        (fun (a, pa) ->
          let d = Option.get (find_decl p a) in
          { d with var_name = pa; init = Init_zero })
        packed
  in
  let p' = { p with decls; body = before @ prologue @ renamed_after @ unpack } in
  Bw_ir.Check.check_exn p';
  Ok p'

let group (p : program) spec ~by =
  let open Bw_ir.Builder in
  let* () =
    if List.mem by spec.index_arrays then Ok ()
    else Error ("'" ^ by ^ "' is not one of the index arrays")
  in
  let* data0 =
    match spec.data_arrays with
    | a :: _ -> find_array p a
    | [] -> Error "no data arrays"
  in
  let* n = extent1 data0 in
  let* index_decls =
    List.fold_left
      (fun acc a ->
        let* acc = acc in
        let* d = find_array p a in
        Ok (acc @ [ d ]))
      (Ok []) spec.index_arrays
  in
  let* m =
    match index_decls with
    | [] -> Error "no index arrays"
    | d :: rest ->
      let* m = extent1 d in
      if List.for_all (fun d' -> d'.dims = [ m ]) rest then Ok m
      else Error "index arrays have different extents"
  in
  let* position = insert_position p spec in
  let* () = validate_after p spec position in
  let taken =
    ref
      (List.map (fun d -> d.var_name) p.decls
      @ Bw_ir.Ast_util.loop_indices p.body)
  in
  let cnt = fresh taken "cnt" in
  let run = fresh taken "run" in
  let tmp = fresh taken "cnt_tmp" in
  let slot = fresh taken "slot" in
  let k = fresh taken "gk" in
  let i = fresh taken "gi" in
  let sorted =
    List.map (fun a -> (a, fresh taken ("sorted_" ^ a))) spec.index_arrays
  in
  let prologue =
    [ (* histogram of the grouping key *)
      for_ k (int 1) (int m)
        [ (cnt $. [ by $ [ v k ] ])
          <-- ((cnt $ [ by $ [ v k ] ]) +: int 1) ];
      (* exclusive prefix sum *)
      (Lscalar run <-- int 0);
      for_ i (int 1) (int n)
        [ sc tmp <-- (cnt $ [ v i ]);
          (cnt $. [ v i ]) <-- v run;
          sc run <-- (v run +: v tmp) ];
      (* stable scatter of all parallel index arrays *)
      for_ k (int 1) (int m)
        ([ (cnt $. [ by $ [ v k ] ])
           <-- ((cnt $ [ by $ [ v k ] ]) +: int 1);
           sc slot <-- (cnt $ [ by $ [ v k ] ]) ]
        @ List.map
            (fun (a, sa) -> (sa $. [ v slot ]) <-- (a $ [ v k ]))
            sorted) ]
  in
  let before, after = split_at position p.body in
  let renamed_after = rename_arrays sorted after in
  let decls =
    p.decls
    @ [ { var_name = cnt; dtype = I64; dims = [ n ]; init = Init_zero };
        { var_name = run; dtype = I64; dims = []; init = Init_zero };
        { var_name = tmp; dtype = I64; dims = []; init = Init_zero };
        { var_name = slot; dtype = I64; dims = []; init = Init_zero } ]
    @ List.map
        (fun (a, sa) ->
          let d = Option.get (find_decl p a) in
          { d with var_name = sa; init = Init_zero })
        sorted
  in
  let p' = { p with decls; body = before @ prologue @ renamed_after } in
  Bw_ir.Check.check_exn p';
  Ok p'
