open Bw_ir.Ast

type plan = {
  array : string;
  loop_position : int;
  dim : int;
  depth : int;
  offsets : int list;
  write_offset : int;
  peeled_columns : int list;
  unrolled_iterations : int list;
}

let pp_plan ppf p =
  Format.fprintf ppf
    "shrink %s: loop@%d dim=%d depth=%d offsets=[%s] write@%d peel=[%s] unroll=[%s]"
    p.array p.loop_position p.dim p.depth
    (String.concat ";" (List.map string_of_int p.offsets))
    p.write_offset
    (String.concat ";" (List.map string_of_int p.peeled_columns))
    (String.concat ";" (List.map string_of_int p.unrolled_iterations))

let storage_bytes (p : program) =
  List.fold_left (fun acc d -> acc + decl_bytes d) 0 p.decls

let ( let* ) r f = Result.bind r f

(* Classify one reference of the target array w.r.t. loop index [x] and
   dimension [dim]. *)
type ref_kind =
  | Windowed of int  (** subscript x + c in [dim] *)
  | Column of int  (** constant subscript K in [dim] *)

let classify_ref ~x ~dim (r : Bw_analysis.Refs.t) =
  match List.nth_opt r.Bw_analysis.Refs.affine dim with
  | None | Some None -> Error "non-affine subscript"
  | Some (Some f) ->
    let c = Bw_analysis.Affine.coeff f x in
    let rest = Bw_analysis.Affine.drop_var f x in
    if c = 1 && Bw_analysis.Affine.is_const rest then Ok (Windowed rest.Bw_analysis.Affine.const)
    else if c = 0 && Bw_analysis.Affine.is_const rest then Ok (Column rest.Bw_analysis.Affine.const)
    else Error "subscript not of the form index + constant"

(* All other dimensions must not mention [x]. *)
let other_dims_free ~x ~dim (r : Bw_analysis.Refs.t) =
  List.for_all
    (fun (d, sub) ->
      d = dim || not (List.mem x (Bw_ir.Ast_util.expr_reads sub)))
    (List.mapi (fun d sub -> (d, sub)) r.Bw_analysis.Refs.subscripts)

let plan (p : program) array =
  let* decl =
    match find_decl p array with
    | Some d when is_array d -> Ok d
    | Some _ -> Error "not an array"
    | None -> Error "no such array"
  in
  let* () =
    if List.mem array p.live_out then Error "array is live-out" else Ok ()
  in
  (* refs tagged with the top-level statement position they live in *)
  let tagged =
    List.concat
      (List.mapi
         (fun top stmt ->
           Bw_analysis.Refs.collect [ stmt ]
           |> Bw_analysis.Refs.of_array array
           |> List.map (fun r -> (top, r)))
         p.body)
  in
  let mine = List.map snd tagged in
  let top_of (r : Bw_analysis.Refs.t) =
    fst (List.find (fun (_, r') -> r' == r) tagged)
  in
  let* () = if mine = [] then Error "array never referenced" else Ok () in
  (* Find the unique top-level loop whose index appears in the subscripts. *)
  let top_loops =
    List.mapi (fun i s -> (i, s)) p.body
    |> List.filter_map (fun (i, s) ->
           match s with For l -> Some (i, l) | _ -> None)
  in
  let candidates =
    List.filter_map
      (fun (pos, (l : loop)) ->
        let uses_index =
          List.exists
            (fun (r : Bw_analysis.Refs.t) ->
              List.exists
                (fun sub -> List.mem l.index (Bw_ir.Ast_util.expr_reads sub))
                r.Bw_analysis.Refs.subscripts)
            mine
        in
        if uses_index then Some (pos, l) else None)
      top_loops
  in
  let* () =
    if candidates = [] then Error "no loop sweeps the array" else Ok ()
  in
  (* Try each sweeping loop in turn; refs under the other candidates must
     then classify as constant columns for the attempt to succeed. *)
  let rec try_candidates errors = function
    | [] ->
      Error
        (match errors with
        | e :: _ -> e
        | [] -> "no loop sweeps the array")
    | candidate :: rest -> (
      match plan_for candidate with
      | Ok plan -> Ok plan
      | Error e -> try_candidates (e :: errors) rest)
  and plan_for (pos, (l : loop)) =
  let x = l.index in
  let* lo, hi, step =
    match Bw_analysis.Depend.constant_bounds l with
    | Some b -> Ok b
    | None -> Error "loop bounds are not constant"
  in
  let* () = if step = 1 then Ok () else Error "loop step must be 1" in
  (* Determine the swept dimension. *)
  let* dim =
    let dims =
      List.concat_map
        (fun (r : Bw_analysis.Refs.t) ->
          List.mapi (fun d sub -> (d, sub)) r.Bw_analysis.Refs.subscripts
          |> List.filter_map (fun (d, sub) ->
                 if List.mem x (Bw_ir.Ast_util.expr_reads sub) then Some d
                 else None))
        mine
      |> List.sort_uniq compare
    in
    match dims with
    | [ d ] -> Ok d
    | [] -> Error "loop index not used in subscripts"
    | _ -> Error "loop index used in several dimensions"
  in
  let* () =
    if List.for_all (other_dims_free ~x ~dim) mine then Ok ()
    else Error "loop index appears in another dimension"
  in
  (* Classify every reference. *)
  let* kinds =
    List.fold_left
      (fun acc r ->
        let* acc = acc in
        let* k = classify_ref ~x ~dim r in
        Ok ((r, k) :: acc))
      (Ok []) mine
    |> Result.map List.rev
  in
  let windowed =
    List.filter_map
      (fun ((r : Bw_analysis.Refs.t), k) ->
        match k with Windowed c -> Some (r, c) | Column _ -> None)
      kinds
  in
  let columns =
    List.filter_map
      (fun ((r : Bw_analysis.Refs.t), k) ->
        match k with Column kc -> Some (r, kc) | Windowed _ -> None)
      kinds
  in
  let* () =
    if windowed = [] then Error "no windowed references to shrink" else Ok ()
  in
  (* Windowed refs must live inside the top-level loop at [pos]. *)
  let* () =
    if List.for_all (fun (r, _) -> top_of r = pos) windowed then Ok ()
    else Error "windowed reference outside the sweeping loop"
  in
  let offsets = List.sort_uniq compare (List.map snd windowed) in
  let write_offsets =
    List.filter_map
      (fun ((r : Bw_analysis.Refs.t), c) ->
        if r.Bw_analysis.Refs.access = Bw_analysis.Refs.Write then Some c
        else None)
      windowed
    |> List.sort_uniq compare
  in
  let* cw =
    match write_offsets with
    | [ c ] -> Ok c
    | [] -> Error "array never written in the loop"
    | _ -> Error "writes at several offsets"
  in
  let max_offset = List.fold_left max min_int offsets in
  let min_offset = List.fold_left min max_int offsets in
  let* () =
    if cw = max_offset then Ok ()
    else Error "a read looks ahead of the write"
  in
  let depth = max_offset - min_offset + 1 in
  (* Same-offset reads must follow the write textually. *)
  let write_positions =
    List.filter_map
      (fun ((r : Bw_analysis.Refs.t), c) ->
        if r.Bw_analysis.Refs.access = Bw_analysis.Refs.Write && c = cw then
          Some r.Bw_analysis.Refs.position
        else None)
      windowed
  in
  let first_write_pos = List.fold_left min max_int write_positions in
  let* () =
    if
      List.for_all
        (fun ((r : Bw_analysis.Refs.t), c) ->
          r.Bw_analysis.Refs.access = Bw_analysis.Refs.Write
          || c < cw
          || (r.Bw_analysis.Refs.position > first_write_pos
             && Bw_analysis.Refs.revisit_free r ~under:x))
        windowed
    then Ok ()
    else Error "read at the write offset precedes the write"
  in
  let* () =
    if
      List.for_all
        (fun ((r : Bw_analysis.Refs.t), _) ->
          Bw_analysis.Refs.revisit_free r ~under:x)
        (List.filter
           (fun ((r : Bw_analysis.Refs.t), _) ->
             r.Bw_analysis.Refs.access = Bw_analysis.Refs.Write)
           windowed)
    then Ok ()
    else Error "a write revisits elements across inner iterations"
  in
  let peeled_columns = List.sort_uniq compare (List.map snd columns) in
  (* Peeled columns must not be written through the window. *)
  let* () =
    if
      List.for_all
        (fun kc ->
          let alias = kc - cw in
          alias < lo || alias > hi)
        peeled_columns
    then Ok ()
    else Error "a windowed write aliases a peeled column"
  in
  (* Peel init safety: first access to each column is a write, or zero init. *)
  let* () =
    if decl.init = Init_zero then Ok ()
    else
      let ok =
        List.for_all
          (fun kc ->
            match
              List.filter (fun (_, kc') -> kc' = kc) columns
              |> List.map fst
              |> List.sort (fun (a : Bw_analysis.Refs.t) b ->
                     compare
                       (top_of a, a.Bw_analysis.Refs.position)
                       (top_of b, b.Bw_analysis.Refs.position))
            with
            | [] -> true
            | first :: _ ->
              first.Bw_analysis.Refs.access = Bw_analysis.Refs.Write)
          peeled_columns
      in
      if ok then Ok () else Error "peeled column reads initial values"
  in
  (* Reads behind the write must resolve to written iterations or to
     peeled columns; collect the boundary iterations to unroll. *)
  let read_offsets =
    List.filter_map
      (fun ((r : Bw_analysis.Refs.t), c) ->
        if r.Bw_analysis.Refs.access = Bw_analysis.Refs.Read then Some c
        else None)
      windowed
    |> List.sort_uniq compare
  in
  let* unroll =
    List.fold_left
      (fun acc cr ->
        let* acc = acc in
        if cr >= cw then Ok acc
        else begin
          (* iterations x in [lo, lo + cw - cr - 1] read column x + cr,
             which is written only before the loop *)
          let rec collect x acc =
            if x > lo + (cw - cr) - 1 then Ok acc
            else if List.mem (x + cr) peeled_columns then
              collect (x + 1) ((x :: acc) [@warning "-26"])
            else Error "a windowed read reaches pre-loop values"
          in
          collect lo acc
        end)
      (Ok []) read_offsets
  in
  (* also unroll any iteration where a windowed read aliases a peeled
     column, even past the prologue window *)
  let alias_iterations =
    List.concat_map
      (fun cr ->
        List.filter_map
          (fun kc ->
            let x0 = kc - cr in
            if x0 >= lo && x0 <= hi then Some x0 else None)
          peeled_columns)
      read_offsets
    |> List.sort_uniq compare
  in
  let unrolled_iterations =
    List.sort_uniq compare (unroll @ alias_iterations)
  in
  let* () =
    if
      List.for_all
        (fun u -> u - lo <= 3 || hi - u <= 3)
        unrolled_iterations
    then Ok ()
    else Error "aliasing iteration too far from the loop boundary"
  in
  let* () =
    if List.length unrolled_iterations * 2 < hi - lo + 1 then Ok ()
    else Error "loop too short to split"
  in
  Ok
    { array;
      loop_position = pos;
      dim;
      depth;
      offsets;
      write_offset = cw;
      peeled_columns;
      unrolled_iterations }
  in
  try_candidates [] candidates

(* ------------------------------------------------------------------ *)
(* Rewriting *)

let remove_nth n list = List.filteri (fun i _ -> i <> n) list

(* Rewrite refs of [array] whose dim-[dim] subscript folds to a constant
   in [peeled] into the peel arrays. *)
let rec peel_expr ~array ~dim ~peel_name e =
  let recur = peel_expr ~array ~dim ~peel_name in
  match e with
  | Element (a, idxs) when a = array -> (
    let idxs = List.map recur idxs in
    match Simplify.fold_expr (List.nth idxs dim) with
    | Int_lit v when peel_name v <> None ->
      Element (Option.get (peel_name v), remove_nth dim idxs)
    | _ -> Element (a, idxs))
  | Element (a, idxs) -> Element (a, List.map recur idxs)
  | Int_lit _ | Float_lit _ | Scalar _ -> e
  | Unary (op, x) -> Unary (op, recur x)
  | Binary (op, x, y) -> Binary (op, recur x, recur y)
  | Call (f, args) -> Call (f, List.map recur args)

let rec peel_cond ~array ~dim ~peel_name c =
  let fe = peel_expr ~array ~dim ~peel_name in
  let fc = peel_cond ~array ~dim ~peel_name in
  match c with
  | Cmp (op, a, b) -> Cmp (op, fe a, fe b)
  | And (a, b) -> And (fc a, fc b)
  | Or (a, b) -> Or (fc a, fc b)
  | Not a -> Not (fc a)

let peel_lvalue ~array ~dim ~peel_name = function
  | Lscalar s -> Lscalar s
  | Lelement (a, idxs) -> (
    match peel_expr ~array ~dim ~peel_name (Element (a, idxs)) with
    | Element (a', idxs') -> Lelement (a', idxs')
    | _ -> assert false)

let rec peel_stmt ~array ~dim ~peel_name s =
  let fe = peel_expr ~array ~dim ~peel_name in
  let fl = peel_lvalue ~array ~dim ~peel_name in
  match s with
  | Assign (lv, e) -> Assign (fl lv, fe e)
  | Read_input lv -> Read_input (fl lv)
  | Print e -> Print (fe e)
  | If (c, t, e) ->
    If
      ( peel_cond ~array ~dim ~peel_name c,
        List.map (peel_stmt ~array ~dim ~peel_name) t,
        List.map (peel_stmt ~array ~dim ~peel_name) e )
  | For l -> For { l with body = List.map (peel_stmt ~array ~dim ~peel_name) l.body }

(* Rewrite remaining refs of [array] into the modular buffer. *)
let modular_subscript ~base ~depth sub =
  match Simplify.fold_expr sub with
  | Int_lit v -> Int_lit (((v - base) mod depth) + 1)
  | e ->
    Binary
      ( Add,
        Binary (Mod, Simplify.fold_expr (Binary (Sub, e, Int_lit base)), Int_lit depth),
        Int_lit 1 )

let rec modular_expr ~array ~dim ~base ~depth e =
  let recur = modular_expr ~array ~dim ~base ~depth in
  match e with
  | Element (a, idxs) when a = array ->
    let idxs = List.map recur idxs in
    Element
      ( a,
        List.mapi
          (fun d sub ->
            if d = dim then modular_subscript ~base ~depth sub else sub)
          idxs )
  | Element (a, idxs) -> Element (a, List.map recur idxs)
  | Int_lit _ | Float_lit _ | Scalar _ -> e
  | Unary (op, x) -> Unary (op, recur x)
  | Binary (op, x, y) -> Binary (op, recur x, recur y)
  | Call (f, args) -> Call (f, List.map recur args)

let rec modular_cond ~array ~dim ~base ~depth c =
  let fe = modular_expr ~array ~dim ~base ~depth in
  let fc = modular_cond ~array ~dim ~base ~depth in
  match c with
  | Cmp (op, a, b) -> Cmp (op, fe a, fe b)
  | And (a, b) -> And (fc a, fc b)
  | Or (a, b) -> Or (fc a, fc b)
  | Not a -> Not (fc a)

let modular_lvalue ~array ~dim ~base ~depth = function
  | Lscalar s -> Lscalar s
  | Lelement (a, idxs) -> (
    match modular_expr ~array ~dim ~base ~depth (Element (a, idxs)) with
    | Element (a', idxs') -> Lelement (a', idxs')
    | _ -> assert false)

let rec modular_stmt ~array ~dim ~base ~depth s =
  let fe = modular_expr ~array ~dim ~base ~depth in
  let fl = modular_lvalue ~array ~dim ~base ~depth in
  match s with
  | Assign (lv, e) -> Assign (fl lv, fe e)
  | Read_input lv -> Read_input (fl lv)
  | Print e -> Print (fe e)
  | If (c, t, e) ->
    If
      ( modular_cond ~array ~dim ~base ~depth c,
        List.map (modular_stmt ~array ~dim ~base ~depth) t,
        List.map (modular_stmt ~array ~dim ~base ~depth) e )
  | For l ->
    For { l with body = List.map (modular_stmt ~array ~dim ~base ~depth) l.body }

let apply (p : program) array =
  let* pl = plan p array in
  let decl = Option.get (find_decl p array) in
  let l =
    match List.nth p.body pl.loop_position with
    | For l -> l
    | _ -> assert false
  in
  let lo, hi, _ = Option.get (Bw_analysis.Depend.constant_bounds l) in
  let min_offset = List.fold_left min max_int pl.offsets in
  let base = lo + min_offset in
  (* fresh names for the peel arrays *)
  let taken =
    ref (List.map (fun d -> d.var_name) p.decls @ Bw_ir.Ast_util.loop_indices p.body)
  in
  let peel_names =
    List.map
      (fun kc ->
        let name =
          Bw_ir.Ast_util.fresh_name ~taken:!taken
            (Printf.sprintf "%s_col%d" array (abs kc))
        in
        taken := name :: !taken;
        (kc, name))
      pl.peeled_columns
  in
  let peel_name v = List.assoc_opt v peel_names in
  (* 1. split the sweeping loop around the unrolled iterations *)
  let prefix = List.filter (fun u -> u - lo <= 3) pl.unrolled_iterations in
  let suffix = List.filter (fun u -> u - lo > 3) pl.unrolled_iterations in
  let core_lo = List.fold_left max lo (List.map (fun u -> u + 1) prefix) in
  let core_hi = List.fold_left min hi (List.map (fun u -> u - 1) suffix) in
  let unrolled_at x =
    List.concat_map
      (fun s ->
        Bw_ir.Ast_util.subst_scalar_stmts ~name:l.index ~value:(Int_lit x) [ s ])
      l.body
    |> Simplify.simplify_stmts
  in
  let split_stmts =
    List.concat_map unrolled_at (List.sort compare prefix)
    @ [ For { l with lo = Int_lit core_lo; hi = Int_lit core_hi } ]
    @ List.concat_map unrolled_at (List.sort compare suffix)
  in
  let body =
    List.concat
      (List.mapi
         (fun i s -> if i = pl.loop_position then split_stmts else [ s ])
         p.body)
  in
  (* 2. peel rewrite over the whole program *)
  let body = List.map (peel_stmt ~array ~dim:pl.dim ~peel_name) body in
  (* 3. modular rewrite of the remaining refs *)
  let body =
    List.map (modular_stmt ~array ~dim:pl.dim ~base ~depth:pl.depth) body
  in
  (* 4. declarations: shrink the swept dimension, add the peels *)
  let shrunk_dims =
    List.mapi (fun d ext -> if d = pl.dim then pl.depth else ext) decl.dims
  in
  let peel_decls =
    List.map
      (fun (_, name) ->
        { var_name = name;
          dtype = decl.dtype;
          dims = remove_nth pl.dim decl.dims;
          init = Init_zero })
      peel_names
  in
  let decls =
    List.map
      (fun d ->
        if d.var_name = array then
          { d with dims = shrunk_dims; init = Init_zero }
        else d)
      p.decls
    @ peel_decls
  in
  Ok ({ p with decls; body = Simplify.simplify_stmts body }, pl)

let shrink_all (p : program) =
  let rec go p plans =
    let arrays = List.filter_map (fun d -> if is_array d then Some d.var_name else None) p.decls in
    let attempt =
      List.find_map
        (fun a ->
          if List.exists (fun (pl : plan) -> pl.array = a) plans then None
          else match apply p a with Ok r -> Some r | Error _ -> None)
        arrays
    in
    match attempt with
    | Some (p', pl) -> go p' (plans @ [ pl ])
    | None -> (p, plans)
  in
  go p []
