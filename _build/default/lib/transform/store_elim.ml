open Bw_ir.Ast

(* Can any read of [a] inside loop [l] observe a value stored by a write
   inside [l]? *)
let stored_value_read (l : loop) a =
  let refs = Bw_analysis.Refs.collect [ For l ] in
  let mine = Bw_analysis.Refs.of_array a refs in
  let writes = Bw_analysis.Refs.writes mine in
  let reads = Bw_analysis.Refs.reads mine in
  List.exists
    (fun (w : Bw_analysis.Refs.t) ->
      List.exists
        (fun (r : Bw_analysis.Refs.t) ->
          match Bw_analysis.Depend.pair_test ~index:l.index w r with
          | Bw_analysis.Depend.Independent -> false
          | Bw_analysis.Depend.Dependent (Some d) ->
            d > 0
            || d = 0
               && (r.Bw_analysis.Refs.position > w.Bw_analysis.Refs.position
                  || not
                       (Bw_analysis.Refs.revisit_free w ~under:l.index
                       && Bw_analysis.Refs.revisit_free r ~under:l.index))
          | Bw_analysis.Depend.Dependent None | Bw_analysis.Depend.Unknown ->
            true)
        reads)
    writes

let written_by_read_input stmts a =
  Bw_ir.Ast_util.fold_stmts
    (fun acc s ->
      acc
      ||
      match s with
      | Read_input lv -> lvalue_name lv = a
      | Assign _ | Print _ | If _ | For _ -> false)
    false stmts

let remove_stores_to a stmts =
  let rec filter stmts =
    List.filter_map
      (fun s ->
        match s with
        | Assign (Lelement (a', _), _) when a' = a -> None
        | If (c, t, e) -> Some (If (c, filter t, filter e))
        | For l -> Some (For { l with body = filter l.body })
        | Assign _ | Read_input _ | Print _ -> Some s)
      stmts
  in
  filter stmts

let eliminate_dead_stores (p : program) =
  let eliminated = ref [] in
  let body =
    List.mapi
      (fun pos stmt ->
        match stmt with
        | For l ->
          let arrays_written =
            Bw_analysis.Refs.collect [ stmt ]
            |> Bw_analysis.Refs.writes
            |> List.map (fun (r : Bw_analysis.Refs.t) -> r.Bw_analysis.Refs.array)
            |> List.sort_uniq compare
            |> List.filter (fun a ->
                   match find_decl p a with
                   | Some d -> is_array d
                   | None -> false)
          in
          let removable =
            List.filter
              (fun a ->
                Bw_analysis.Live.dead_after p ~position:pos a
                && (not (stored_value_read l a))
                && not (written_by_read_input [ stmt ] a))
              arrays_written
          in
          if removable = [] then stmt
          else begin
            eliminated := !eliminated @ removable;
            let body =
              List.fold_left (fun b a -> remove_stores_to a b) l.body removable
            in
            For { l with body }
          end
        | Assign _ | Read_input _ | Print _ | If _ -> stmt)
      p.body
  in
  ({ p with body }, List.sort_uniq compare !eliminated)

let run p =
  let p, _ = Scalar_replace.forward_stores p in
  eliminate_dead_stores p
