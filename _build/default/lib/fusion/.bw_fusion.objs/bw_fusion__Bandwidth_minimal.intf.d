lib/fusion/bandwidth_minimal.mli: Bw_ir Fusion_graph
