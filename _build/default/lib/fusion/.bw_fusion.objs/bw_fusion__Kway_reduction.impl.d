lib/fusion/kway_reduction.ml: Bw_graph Hyper_fusion List
