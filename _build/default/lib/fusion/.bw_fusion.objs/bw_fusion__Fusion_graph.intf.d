lib/fusion/fusion_graph.mli: Bw_graph Bw_ir Format
