lib/fusion/hyper_fusion.ml: Array Bw_graph Fusion_graph List
