lib/fusion/hyper_fusion.mli: Bw_graph Fusion_graph
