lib/fusion/fusion_graph.ml: Array Bw_analysis Bw_graph Bw_ir Bw_transform Format List Printf String
