lib/fusion/cost.ml: Array Bw_graph Fusion_graph List Printf
