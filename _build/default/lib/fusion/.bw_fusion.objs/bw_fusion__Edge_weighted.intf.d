lib/fusion/edge_weighted.mli: Fusion_graph
