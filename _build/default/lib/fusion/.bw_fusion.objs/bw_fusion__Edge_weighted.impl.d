lib/fusion/edge_weighted.ml: Array Bandwidth_minimal Bw_graph Cost Fusion_graph Hashtbl List Option
