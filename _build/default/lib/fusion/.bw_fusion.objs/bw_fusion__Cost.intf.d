lib/fusion/cost.mli: Fusion_graph
