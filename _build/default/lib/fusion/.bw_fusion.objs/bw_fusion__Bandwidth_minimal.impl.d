lib/fusion/bandwidth_minimal.ml: Array Bw_graph Bw_transform Cost Fusion_graph Hashtbl List Option Result
