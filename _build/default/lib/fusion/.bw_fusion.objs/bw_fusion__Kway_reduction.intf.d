lib/fusion/kway_reduction.mli: Bw_graph Hyper_fusion
