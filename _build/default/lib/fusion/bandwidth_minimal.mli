(** Bandwidth-minimal loop fusion (Problems 3.1 / 3.2).

    The two-partition case is solved optimally with the paper's Figure 5
    algorithm: arrays become unit-weight hyper-edges, and each dependence
    [u -> v] contributes three hyper-edges [{s,v}; {v,u}; {u,t}] of weight
    [N] (larger than any array cut), which charge every cut a constant
    [N] but a violating placement [3N] — so a minimum cut never orders a
    dependence backwards.  The partition containing the cut terminal [t]
    executes first.

    The general (multi-partition) problem is NP-complete; [multi_partition]
    is the recursive-bisection heuristic the paper proposes (bisect on a
    fusion-preventing pair with the min-cut, recurse on both halves), and
    [exhaustive] is the exact solver used as a small-instance oracle. *)

type split = {
  first : int list;  (** partition executed first (cut terminal [t]'s side) *)
  second : int list;
  cut_arrays : string list;  (** arrays whose hyper-edge was cut *)
}

(** [two_partition g ~within ~s ~t] splits the node subset [within]
    (which must contain [s] and [t]) so that [s] and [t] end up apart,
    minimising the number of distinct arrays per partition summed.
    If the dependence graph orders the pair, the earlier node's side runs
    first; [t]'s side is always [first]. *)
val two_partition :
  Fusion_graph.t -> within:int list -> s:int -> t:int -> split

(** Recursive-bisection heuristic for the full problem.  The result
    always satisfies {!Cost.validate}. *)
val multi_partition : Fusion_graph.t -> int list list

(** Exact optimum by canonical set-partition enumeration (Bell-number
    search); intended for [n <= 10].
    @param objective defaults to {!Cost.bandwidth_cost}. *)
val exhaustive :
  ?objective:(Fusion_graph.t -> int list list -> int) ->
  Fusion_graph.t ->
  int list list

(** Convenience: run [multi_partition] and apply it to the program with
    {!Bw_transform.Fuse.apply_plan}. *)
val fuse_program : Bw_ir.Ast.program -> (Bw_ir.Ast.program * int list list, string) result
