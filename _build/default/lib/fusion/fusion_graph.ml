open Bw_ir.Ast

type node = { position : int; is_loop : bool; arrays : string list }

type t = {
  program : program;
  nodes : node array;
  deps : Bw_graph.Digraph.t;
  preventing : (int * int) list;
  hyper : Bw_graph.Hypergraph.t;
  edge_of_array : (string * int) list;
}

let build (p : program) =
  let stmts = Array.of_list p.body in
  let n = Array.length stmts in
  let nodes =
    Array.mapi
      (fun position stmt ->
        { position;
          is_loop = (match stmt with For _ -> true | _ -> false);
          arrays = Bw_ir.Ast_util.arrays_accessed p [ stmt ] })
      stmts
  in
  let deps = Bw_transform.Toplevel.dep_graph p in
  let preventing = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let bad =
        match (stmts.(u), stmts.(v)) with
        | For lu, For lv -> (
          match Bw_analysis.Depend.fusable lu lv with
          | Ok () -> false
          | Error _ -> true)
        | _ -> true
      in
      if bad then preventing := (u, v) :: !preventing
    done
  done;
  let hyper = Bw_graph.Hypergraph.create ~size_hint:n () in
  Bw_graph.Hypergraph.ensure_nodes hyper n;
  let all_arrays =
    Array.to_list nodes
    |> List.concat_map (fun node -> node.arrays)
    |> List.sort_uniq compare
  in
  let edge_of_array =
    List.map
      (fun a ->
        let members =
          Array.to_list nodes
          |> List.filter_map (fun node ->
                 if List.mem a node.arrays then Some node.position else None)
        in
        (a, Bw_graph.Hypergraph.add_edge ~label:a hyper members))
      all_arrays
  in
  { program = p;
    nodes;
    deps;
    preventing = List.rev !preventing;
    hyper;
    edge_of_array }

let node_count t = Array.length t.nodes

let prevents t u v =
  let key = (min u v, max u v) in
  List.mem key t.preventing

let pp ppf t =
  Format.fprintf ppf "@[<v>fusion graph (%d nodes)@," (node_count t);
  Array.iter
    (fun node ->
      Format.fprintf ppf "  %d%s: {%s}@," node.position
        (if node.is_loop then "" else " (straight-line)")
        (String.concat "," node.arrays))
    t.nodes;
  Format.fprintf ppf "  preventing: %s@,"
    (String.concat ", "
       (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) t.preventing));
  Format.fprintf ppf "  deps: %s@]"
    (String.concat ", "
       (Bw_graph.Digraph.fold_edges t.deps ~init:[] ~f:(fun acc u v ->
            Printf.sprintf "%d->%d" u v :: acc)
       |> List.rev))
