(** The classical edge-weighted fusion formulation (Gao et al. 1992;
    Kennedy & McKinley 1993), implemented as the paper's baseline.

    Data reuse between two loops is modelled as an edge weighted by the
    number of arrays they share; the objective is to minimise the total
    weight of edges crossing partition boundaries.  Section 3.1.1 shows
    (Figure 4) that this objective does not minimise memory transfer —
    the benchmarks here reproduce that gap quantitatively. *)

(** Greedy weighted-fusion heuristic: repeatedly merge the pair of
    partitions joined by the heaviest edge whose merge stays legal
    (no preventing pair inside, no dependence cycle between partitions).
    Result always satisfies {!Cost.validate}. *)
val greedy_merge : Fusion_graph.t -> int list list

(** Exact optimum of the edge-weighted objective (small instances). *)
val exhaustive : Fusion_graph.t -> int list list
