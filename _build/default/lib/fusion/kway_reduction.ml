let instance_of_kway g ~terminals =
  let n = Bw_graph.Undirected.node_count g in
  let hyper = Bw_graph.Hypergraph.create ~size_hint:n () in
  Bw_graph.Hypergraph.ensure_nodes hyper n;
  List.iter
    (fun (u, v, w) ->
      ignore (Bw_graph.Hypergraph.add_edge ~weight:w hyper [ u; v ]))
    (Bw_graph.Undirected.edges g);
  let rec pairs = function
    | [] -> []
    | t :: rest -> List.map (fun t' -> (min t t', max t t')) rest @ pairs rest
  in
  { Hyper_fusion.nodes = n;
    hyper;
    preventing = pairs terminals;
    deps = Bw_graph.Digraph.of_edges ~n [] }

let total_weight g =
  List.fold_left (fun acc (_, _, w) -> acc + w) 0 (Bw_graph.Undirected.edges g)

let optimal_cut_via_fusion g ~terminals =
  let inst = instance_of_kway g ~terminals in
  let partitions = Hyper_fusion.exhaustive inst in
  Hyper_fusion.total_length inst partitions - total_weight g
