(** Objectives and correctness constraints over partition sequences.

    A partition sequence is [int list list]: each inner list holds
    top-level statement positions (ascending), and the outer order is the
    execution order of the fused partitions. *)

(** Problem 3.1's correctness constraints: every node exactly once, no
    fusion-preventing pair inside a partition, and every dependence edge
    flowing to the same or a later partition. *)
val validate : Fusion_graph.t -> int list list -> (unit, string) result

(** The paper's objective: sum over partitions of the number of distinct
    arrays the partition accesses (= total arrays loaded from memory). *)
val bandwidth_cost : Fusion_graph.t -> int list list -> int

(** The Gao et al. / Kennedy-McKinley objective this paper argues
    against: total number of (loop, loop, shared array) coincidences
    crossing partition boundaries, counted pairwise with edge weights. *)
val edge_weight_cost : Fusion_graph.t -> int list list -> int

(** Cost with no fusion at all: each statement its own partition. *)
val unfused : Fusion_graph.t -> int list list

(** Shared-array count between two nodes (the edge weight of the
    classical formulation). *)
val shared_arrays : Fusion_graph.t -> int -> int -> int
