(** The fusion graph of Section 3.1: one node per top-level statement,
    directed dependence edges, undirected fusion-preventing edges, and one
    hyper-edge per array connecting every loop that accesses it.

    Fusion-preventing pairs are derived from the program: two loops whose
    pairwise fusion {!Bw_analysis.Depend.fusable} rejects, or any pair
    involving a non-loop statement. *)

type node = {
  position : int;  (** index into [program.body] *)
  is_loop : bool;
  arrays : string list;  (** arrays the statement accesses *)
}

type t = {
  program : Bw_ir.Ast.program;
  nodes : node array;
  deps : Bw_graph.Digraph.t;  (** must-precede edges between positions *)
  preventing : (int * int) list;  (** unordered, [u < v] *)
  hyper : Bw_graph.Hypergraph.t;  (** nodes mirror positions *)
  edge_of_array : (string * int) list;  (** array -> hyper-edge id *)
}

val build : Bw_ir.Ast.program -> t

val node_count : t -> int

(** Is the unordered pair fusion-preventing? *)
val prevents : t -> int -> int -> bool

val pp : Format.formatter -> t -> unit
