type instance = {
  nodes : int;
  hyper : Bw_graph.Hypergraph.t;
  preventing : (int * int) list;
  deps : Bw_graph.Digraph.t;
}

let total_length inst partitions =
  let part_of = Array.make inst.nodes (-1) in
  List.iteri
    (fun pi nodes -> List.iter (fun v -> part_of.(v) <- pi) nodes)
    partitions;
  let total = ref 0 in
  Bw_graph.Hypergraph.iter_edges inst.hyper (fun e nodes ->
      let touched = List.sort_uniq compare (List.map (fun v -> part_of.(v)) nodes) in
      total :=
        !total + (List.length touched * Bw_graph.Hypergraph.edge_weight inst.hyper e));
  !total

let validate inst partitions =
  let flat = List.concat partitions in
  if List.sort compare flat <> List.init inst.nodes (fun i -> i) then
    Error "not a permutation of the nodes"
  else begin
    let part_of = Array.make inst.nodes (-1) in
    List.iteri
      (fun pi nodes -> List.iter (fun v -> part_of.(v) <- pi) nodes)
      partitions;
    if List.exists (fun (u, v) -> part_of.(u) = part_of.(v)) inst.preventing
    then Error "fusion-preventing pair co-located"
    else if
      Bw_graph.Digraph.fold_edges inst.deps ~init:false ~f:(fun acc u v ->
          acc || part_of.(u) > part_of.(v))
    then Error "dependence flows backwards"
    else Ok ()
  end

let exhaustive inst =
  let n = inst.nodes in
  if n > 12 then invalid_arg "Hyper_fusion.exhaustive: too many nodes";
  let best_cost = ref max_int and best = ref None in
  let assignment = Array.make n 0 in
  let consider blocks_used =
    let ok_preventing =
      List.for_all
        (fun (u, v) -> assignment.(u) <> assignment.(v))
        inst.preventing
    in
    if ok_preventing then begin
      let bg = Bw_graph.Digraph.create ~size_hint:blocks_used () in
      Bw_graph.Digraph.ensure_nodes bg blocks_used;
      Bw_graph.Digraph.iter_edges inst.deps (fun u v ->
          if assignment.(u) <> assignment.(v) then
            Bw_graph.Digraph.add_edge bg assignment.(u) assignment.(v));
      match Bw_graph.Topo.sort bg with
      | None -> ()
      | Some order ->
        let partitions =
          List.map
            (fun block ->
              List.init n (fun i -> i)
              |> List.filter (fun i -> assignment.(i) = block))
            order
        in
        let cost = total_length inst partitions in
        if cost < !best_cost then begin
          best_cost := cost;
          best := Some partitions
        end
    end
  in
  let rec go i blocks_used =
    if i = n then consider blocks_used
    else
      for b = 0 to min blocks_used (n - 1) do
        assignment.(i) <- b;
        go (i + 1) (max blocks_used (b + 1))
      done
  in
  go 0 0;
  match !best with
  | Some partitions -> partitions
  | None -> List.init n (fun i -> [ i ])

let of_fusion_graph (g : Fusion_graph.t) =
  { nodes = Fusion_graph.node_count g;
    hyper = g.Fusion_graph.hyper;
    preventing = g.Fusion_graph.preventing;
    deps = g.Fusion_graph.deps }
