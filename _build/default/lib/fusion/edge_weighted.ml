(* Union-find over partition blocks, with legality checks on merge. *)

let exhaustive g = Bandwidth_minimal.exhaustive ~objective:Cost.edge_weight_cost g

let greedy_merge (g : Fusion_graph.t) =
  let n = Fusion_graph.node_count g in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let blocks () =
    let table = Hashtbl.create n in
    for i = 0 to n - 1 do
      let root = find i in
      let members = Option.value (Hashtbl.find_opt table root) ~default:[] in
      Hashtbl.replace table root (i :: members)
    done;
    Hashtbl.fold (fun _ members acc -> List.rev members :: acc) table []
  in
  let legal_partitioning () =
    (* order blocks topologically over contracted dependences *)
    let bs = blocks () in
    let roots = List.map (fun b -> find (List.hd b)) bs in
    let root_index = Hashtbl.create n in
    List.iteri (fun i r -> Hashtbl.replace root_index r i) roots;
    let bg = Bw_graph.Digraph.create ~size_hint:(List.length bs) () in
    Bw_graph.Digraph.ensure_nodes bg (List.length bs);
    Bw_graph.Digraph.iter_edges g.Fusion_graph.deps (fun u v ->
        let bu = Hashtbl.find root_index (find u)
        and bv = Hashtbl.find root_index (find v) in
        if bu <> bv then Bw_graph.Digraph.add_edge bg bu bv);
    match Bw_graph.Topo.sort bg with
    | None -> None
    | Some order ->
      let arr = Array.of_list bs in
      let partitions =
        List.map (fun i -> List.sort compare arr.(i)) order
      in
      (match Cost.validate g partitions with
      | Ok () -> Some partitions
      | Error _ -> None)
  in
  (* candidate edges by decreasing shared-array weight *)
  let candidates = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let w = Cost.shared_arrays g u v in
      if w > 0 && not (Fusion_graph.prevents g u v) then
        candidates := (w, u, v) :: !candidates
    done
  done;
  let candidates =
    List.sort (fun (a, _, _) (b, _, _) -> compare b a) !candidates
  in
  List.iter
    (fun (_, u, v) ->
      let ru = find u and rv = find v in
      if ru <> rv then begin
        (* tentative merge; roll back if it breaks legality *)
        parent.(ru) <- rv;
        match legal_partitioning () with
        | Some _ -> ()
        | None -> parent.(ru) <- ru
      end)
    candidates;
  match legal_partitioning () with
  | Some partitions -> partitions
  | None ->
    (* unreachable: singletons are always legal *)
    Cost.unfused g
