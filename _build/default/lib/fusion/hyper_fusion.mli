(** The abstract hyper-graph fusion problem of Problem 3.2, detached from
    any program: nodes, array hyper-edges, fusion-preventing pairs and
    dependence edges.  The objective is the total {e length} of all
    hyper-edges — the number of partitions each edge touches — which
    equals the total memory transfer (each partition loads each array it
    touches once). *)

type instance = {
  nodes : int;
  hyper : Bw_graph.Hypergraph.t;
  preventing : (int * int) list;
  deps : Bw_graph.Digraph.t;
}

(** Sum over hyper-edges of the number of partitions they intersect,
    weighted by edge weight. *)
val total_length : instance -> int list list -> int

val validate : instance -> int list list -> (unit, string) result

(** Exact minimiser of {!total_length} by set-partition enumeration;
    intended for [nodes <= 10]. *)
val exhaustive : instance -> int list list

(** The view of a program-derived fusion graph as an abstract instance
    (hyper-edge weights 1).  [total_length] on it coincides with
    {!Cost.bandwidth_cost}. *)
val of_fusion_graph : Fusion_graph.t -> instance
