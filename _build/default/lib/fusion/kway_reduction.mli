(** The Section 3.1.3 NP-hardness reduction, made executable: a k-way cut
    instance (weighted undirected graph + terminals) becomes a fusion
    instance by adding a fusion-preventing pair per terminal pair and a
    2-node hyper-edge per graph edge.  A minimum k-way cut of weight [c]
    corresponds to an optimal fusion of total length [W + c] where [W] is
    the total edge weight (every edge has length >= 1; cut edges have
    length 2). *)

val instance_of_kway :
  Bw_graph.Undirected.t -> terminals:int list -> Hyper_fusion.instance

(** Total edge weight of the graph ([W] above). *)
val total_weight : Bw_graph.Undirected.t -> int

(** [optimal_cut_via_fusion g ~terminals] solves the k-way cut by solving
    the fusion instance exhaustively and subtracting [W] — the round trip
    the NP-completeness proof relies on. *)
val optimal_cut_via_fusion : Bw_graph.Undirected.t -> terminals:int list -> int
