type t = {
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let make ~title ~header ?(notes = []) rows = { title; header; rows; notes }

let render ppf t =
  let all = t.header :: t.rows in
  let columns =
    List.fold_left (fun acc row -> max acc (List.length row)) 0 all
  in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init columns width in
  let print_row row =
    List.iteri
      (fun c w ->
        let cell = Option.value (List.nth_opt row c) ~default:"" in
        if c = 0 then Format.fprintf ppf "%-*s" w cell
        else Format.fprintf ppf "  %*s" w cell)
      widths;
    Format.pp_print_newline ppf ()
  in
  let rule =
    String.concat "--" (List.map (fun w -> String.make w '-') widths)
  in
  Format.fprintf ppf "== %s ==@." t.title;
  print_row t.header;
  Format.fprintf ppf "%s@." rule;
  List.iter print_row t.rows;
  List.iter (fun n -> Format.fprintf ppf "note: %s@." n) t.notes

let to_string t = Format.asprintf "%a" render t

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let f3 x = Printf.sprintf "%.3f" x
let mb_s x = Printf.sprintf "%.0f MB/s" (x /. 1e6)
let ms x = Printf.sprintf "%.2f ms" (x *. 1e3)
let pct x = Printf.sprintf "%.0f%%" (100.0 *. x)
