(** The balance performance model (Section 2.2).

    Program balance: bytes of data transfer required per floating-point
    operation, at every memory-hierarchy boundary, measured by simulating
    the program.  Machine balance: bytes of transfer the machine supplies
    per peak flop, from its configuration.  Their ratio bounds CPU
    utilisation: a program demanding [r] times more bandwidth than the
    machine supplies runs at most [1/r] of peak. *)

type row = {
  name : string;
  per_boundary : (string * float) list;
      (** bytes/flop at each boundary, CPU side first *)
}

(** Measure a program's balance on the given machine's cache hierarchy. *)
val of_program :
  machine:Bw_machine.Machine.t -> Bw_ir.Ast.program -> row

(** A machine's supply row. *)
val of_machine : Bw_machine.Machine.t -> row

(** Demand/supply ratios per boundary.  The machine's boundary names must
    match the row's. *)
val ratios : row -> Bw_machine.Machine.t -> (string * float) list

(** Largest demand/supply ratio — the binding resource.  The reciprocal
    bounds CPU utilisation. *)
val worst_ratio : row -> Bw_machine.Machine.t -> string * float

(** Upper bound on achievable CPU utilisation, [1 / worst_ratio]
    (capped at 1). *)
val cpu_utilisation_bound : row -> Bw_machine.Machine.t -> float
