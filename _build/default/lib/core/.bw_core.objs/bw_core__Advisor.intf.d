lib/core/advisor.mli: Bw_ir Bw_machine Format
