lib/core/balance.ml: Bw_exec Bw_ir Bw_machine List
