lib/core/experiments.mli: Bw_machine Table
