lib/core/advisor.ml: Balance Bw_exec Bw_fusion Bw_ir Bw_machine Bw_transform Format List Printf String
