lib/core/balance.mli: Bw_ir Bw_machine
