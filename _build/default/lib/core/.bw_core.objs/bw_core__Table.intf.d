lib/core/table.mli: Format
