lib/core/table.ml: Format List Option Printf String
