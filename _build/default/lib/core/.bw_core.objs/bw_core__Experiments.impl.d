lib/core/experiments.ml: Array Balance Bw_exec Bw_fusion Bw_graph Bw_machine Bw_transform Bw_workloads Cache List Machine Printf Sys Table
