type row = { name : string; per_boundary : (string * float) list }

let of_program ~machine (p : Bw_ir.Ast.program) =
  let r = Bw_exec.Run.simulate ~machine p in
  { name = p.Bw_ir.Ast.prog_name;
    per_boundary = Bw_exec.Run.program_balance r }

let of_machine (m : Bw_machine.Machine.t) =
  { name = m.Bw_machine.Machine.name;
    per_boundary =
      List.combine
        (Bw_machine.Machine.boundary_names m)
        (Bw_machine.Machine.balance m) }

let ratios row machine =
  let supply = of_machine machine in
  List.map2
    (fun (name, demand) (name', s) ->
      if name <> name' then
        invalid_arg "Balance.ratios: boundary mismatch"
      else (name, demand /. s))
    row.per_boundary supply.per_boundary

let worst_ratio row machine =
  List.fold_left
    (fun (bn, bv) (n, v) -> if v > bv then (n, v) else (bn, bv))
    ("", neg_infinity) (ratios row machine)

let cpu_utilisation_bound row machine =
  let _, r = worst_ratio row machine in
  if r <= 1.0 then 1.0 else 1.0 /. r
