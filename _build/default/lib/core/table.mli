(** Plain-text tables with aligned columns, used by every experiment
    driver and by the benchmark harness to print the paper's figures. *)

type t = {
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

val make : title:string -> header:string list -> ?notes:string list ->
  string list list -> t

val render : Format.formatter -> t -> unit
val to_string : t -> string

(** Formatting helpers. *)
val f1 : float -> string  (** one decimal *)

val f2 : float -> string  (** two decimals *)

val f3 : float -> string

val mb_s : float -> string  (** bytes/s rendered as MB/s *)

val ms : float -> string  (** seconds rendered as milliseconds *)

val pct : float -> string  (** fraction rendered as percent *)
