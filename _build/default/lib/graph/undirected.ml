type t = {
  mutable n : int;
  mutable adj : int list array;
  mutable edges : int;
  weights : (int * int, int) Hashtbl.t;
}

let key u v = if u <= v then (u, v) else (v, u)

let create ?(size_hint = 8) () =
  { n = 0;
    adj = Array.make (max size_hint 1) [];
    edges = 0;
    weights = Hashtbl.create 64 }

let node_count g = g.n
let edge_count g = g.edges

let grow g wanted =
  let cap = Array.length g.adj in
  if wanted > cap then begin
    let adj' = Array.make (max wanted (2 * cap)) [] in
    Array.blit g.adj 0 adj' 0 g.n;
    g.adj <- adj'
  end

let add_node g =
  grow g (g.n + 1);
  let id = g.n in
  g.n <- g.n + 1;
  id

let ensure_nodes g n =
  if n > g.n then begin
    grow g n;
    g.n <- n
  end

let check g v =
  if v < 0 || v >= g.n then invalid_arg "Undirected: node out of range"

let mem_edge g u v =
  check g u;
  check g v;
  Hashtbl.mem g.weights (key u v)

let add_edge ?(weight = 1) g u v =
  check g u;
  check g v;
  if not (Hashtbl.mem g.weights (key u v)) then begin
    Hashtbl.add g.weights (key u v) weight;
    g.adj.(u) <- v :: g.adj.(u);
    if u <> v then g.adj.(v) <- u :: g.adj.(v);
    g.edges <- g.edges + 1
  end

let weight g u v =
  check g u;
  check g v;
  match Hashtbl.find_opt g.weights (key u v) with
  | Some w -> w
  | None -> invalid_arg "Undirected.weight: no such edge"

let neighbours g u =
  check g u;
  List.rev g.adj.(u)

let edges g =
  Hashtbl.fold (fun (u, v) w acc -> (u, v, w) :: acc) g.weights []
  |> List.sort compare

let component_of g root =
  check g root;
  let seen = Array.make g.n false in
  let queue = Queue.create () in
  seen.(root) <- true;
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          Queue.add v queue
        end)
      g.adj.(u)
  done;
  seen

let components g =
  let seen = Array.make (max g.n 1) false in
  let comps = ref [] in
  for v = 0 to g.n - 1 do
    if not seen.(v) then begin
      let flags = component_of g v in
      let comp = ref [] in
      for u = g.n - 1 downto 0 do
        if flags.(u) then begin
          seen.(u) <- true;
          comp := u :: !comp
        end
      done;
      comps := !comp :: !comps
    end
  done;
  List.rev !comps
