(** Maximum flow on directed networks with integer capacities.

    The implementation is Dinic's algorithm (BFS level graph + blocking
    flows), which runs in O(V^2 E) in general and O(E sqrt(V)) on the
    unit-capacity networks produced by vertex-cut reductions.  An
    Edmonds-Karp driver is provided as an independent oracle for testing. *)

type t

(** A capacity large enough to act as infinity without overflow. *)
val infinite : int

(** [create n] is an empty network on nodes [0 .. n-1]. *)
val create : int -> t

val node_count : t -> int

(** [add_edge t ~src ~dst ~cap] adds a directed arc with capacity
    [cap >= 0].  Parallel arcs accumulate.  Returns an arc id usable with
    {!flow_on}. *)
val add_edge : t -> src:int -> dst:int -> cap:int -> int

(** [max_flow t ~s ~t:snk] computes the maximum s-t flow (Dinic) and leaves
    the flow assignment in place.  Repeated calls recompute from zero. *)
val max_flow : t -> s:int -> t:int -> int

(** Same value, computed with Edmonds-Karp; used as a test oracle. *)
val max_flow_edmonds_karp : t -> s:int -> t:int -> int

(** Flow currently routed on the given arc (after [max_flow]). *)
val flow_on : t -> int -> int

(** [min_cut t ~s ~t:snk] computes a maximum flow, then returns
    [(value, side, cut_arcs)] where [side.(v)] is true iff [v] is reachable
    from [s] in the residual network, and [cut_arcs] are the saturated arc
    ids crossing from the source side to the sink side. *)
val min_cut : t -> s:int -> t:int -> int * bool array * int list

(** Endpoints and capacity of an arc id: [(src, dst, cap)]. *)
val arc : t -> int -> int * int * int
