(** Minimum hyper-edge cut between two nodes of a hyper-graph — the
    algorithm of Figure 5 in the paper.

    Step 1 converts the hyper-graph into a normal ("conflict") graph with
    one node per hyper-edge, connecting two nodes when the hyper-edges
    overlap, plus fresh end nodes [s'] (adjacent to the hyper-edges
    containing [s]) and [t'] (likewise for [t]).  Step 2 finds a minimum
    vertex cut in the conflict graph via node splitting and max-flow.
    Step 3 maps the cut vertices back to hyper-edges and splits the node
    set into the side connected to [s] and the rest. *)

type result = {
  value : int;  (** total weight of the cut hyper-edges *)
  cut : int list;  (** ids of the cut hyper-edges, ascending *)
  part1 : int list;
      (** nodes still connected to [s] once the cut edges are removed *)
  part2 : int list;  (** the remaining nodes (contains [t]) *)
}

(** [min_cut h ~s ~t] computes a minimum-weight set of hyper-edges whose
    removal disconnects [s] from [t].  Always succeeds: in the worst case
    the cut contains every hyper-edge incident to [s].
    @raise Invalid_argument if [s = t]. *)
val min_cut : Hypergraph.t -> s:int -> t:int -> result
