(** Hyper-graphs: graphs whose edges connect arbitrary sets of nodes.

    The paper models data sharing among loops with hyper-edges — one per
    array, connecting every loop that accesses the array — because a normal
    edge cannot express that the same data is shared by more than two
    loops (Section 3.1.2).

    Nodes are dense integers; hyper-edges get dense integer ids in creation
    order and carry an integer weight (default 1) and an optional label
    (typically the array name). *)

type t

val create : ?size_hint:int -> unit -> t
val add_node : t -> int
val ensure_nodes : t -> int -> unit
val node_count : t -> int
val edge_count : t -> int

(** [add_edge h nodes] adds a hyper-edge over [nodes] (duplicates inside
    [nodes] are collapsed; the set may be empty) and returns its id. *)
val add_edge : ?weight:int -> ?label:string -> t -> int list -> int

val edge_nodes : t -> int -> int list
val edge_weight : t -> int -> int
val edge_label : t -> int -> string option

(** Ids of the hyper-edges incident to a node. *)
val edges_of_node : t -> int -> int list

(** [edge_mem h e v] tests whether node [v] belongs to hyper-edge [e]. *)
val edge_mem : t -> int -> int -> bool

(** [edges_overlap h e1 e2] tests whether two hyper-edges share a node. *)
val edges_overlap : t -> int -> int -> bool

val iter_edges : t -> (int -> int list -> unit) -> unit

(** [connected_without h ~removed s] marks the nodes connected to [s] by
    paths of hyper-edges, ignoring the hyper-edges in [removed].  Two nodes
    are adjacent when some remaining hyper-edge contains both. *)
val connected_without : t -> removed:int list -> int -> bool array

val pp : Format.formatter -> t -> unit
