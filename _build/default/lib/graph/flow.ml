(* Arc-array representation: arc 2k and 2k+1 are a forward/backward pair.
   [head.(a)] is the target of arc [a]; [cap.(a)] its residual capacity.
   Public arc ids are the even (forward) indices divided by 2. *)

type t = {
  n : int;
  mutable head : int array;
  mutable cap : int array;
  mutable cap0 : int array; (* original capacities, to reset between runs *)
  mutable first : int list array; (* arc ids out of each node, reversed *)
  mutable arcs : int; (* number of directed arc slots used *)
}

let infinite = max_int / 4

let create n =
  if n < 0 then invalid_arg "Flow.create";
  { n;
    head = Array.make 16 0;
    cap = Array.make 16 0;
    cap0 = Array.make 16 0;
    first = Array.make (max n 1) [];
    arcs = 0 }

let node_count t = t.n

let check t v =
  if v < 0 || v >= t.n then invalid_arg "Flow: node out of range"

let grow t =
  let len = Array.length t.head in
  if t.arcs + 2 > len then begin
    let len' = 2 * len in
    let extend a def =
      let a' = Array.make len' def in
      Array.blit a 0 a' 0 t.arcs;
      a'
    in
    t.head <- extend t.head 0;
    t.cap <- extend t.cap 0;
    t.cap0 <- extend t.cap0 0
  end

let add_edge t ~src ~dst ~cap =
  check t src;
  check t dst;
  if cap < 0 then invalid_arg "Flow.add_edge: negative capacity";
  grow t;
  let a = t.arcs in
  t.head.(a) <- dst;
  t.cap.(a) <- cap;
  t.cap0.(a) <- cap;
  t.head.(a + 1) <- src;
  t.cap.(a + 1) <- 0;
  t.cap0.(a + 1) <- 0;
  t.first.(src) <- a :: t.first.(src);
  t.first.(dst) <- (a + 1) :: t.first.(dst);
  t.arcs <- t.arcs + 2;
  a / 2

let reset t = Array.blit t.cap0 0 t.cap 0 t.arcs

let arc t id =
  let a = 2 * id in
  if a < 0 || a >= t.arcs then invalid_arg "Flow.arc";
  (t.head.(a + 1), t.head.(a), t.cap0.(a))

let flow_on t id =
  let a = 2 * id in
  if a < 0 || a >= t.arcs then invalid_arg "Flow.flow_on";
  t.cap0.(a) - t.cap.(a)

(* BFS levels over the residual graph. *)
let bfs_levels t s =
  let level = Array.make t.n (-1) in
  let queue = Queue.create () in
  level.(s) <- 0;
  Queue.add s queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun a ->
        let v = t.head.(a) in
        if t.cap.(a) > 0 && level.(v) < 0 then begin
          level.(v) <- level.(u) + 1;
          Queue.add v queue
        end)
      t.first.(u)
  done;
  level

let max_flow t ~s ~t:snk =
  check t s;
  check t snk;
  if s = snk then invalid_arg "Flow.max_flow: s = t";
  reset t;
  let total = ref 0 in
  let continue = ref true in
  while !continue do
    let level = bfs_levels t s in
    if level.(snk) < 0 then continue := false
    else begin
      (* iter.(u): arcs of u not yet exhausted in this phase *)
      let iter = Array.make t.n [] in
      for u = 0 to t.n - 1 do
        iter.(u) <- t.first.(u)
      done;
      (* DFS for blocking flow, recursive on the level graph (depth <= n). *)
      let rec push u limit =
        if u = snk then limit
        else begin
          let sent = ref 0 in
          let exhausted = ref false in
          while (not !exhausted) && !sent < limit do
            match iter.(u) with
            | [] -> exhausted := true
            | a :: rest ->
              let v = t.head.(a) in
              if t.cap.(a) > 0 && level.(v) = level.(u) + 1 then begin
                let got = push v (min t.cap.(a) (limit - !sent)) in
                if got > 0 then begin
                  t.cap.(a) <- t.cap.(a) - got;
                  t.cap.(a lxor 1) <- t.cap.(a lxor 1) + got;
                  sent := !sent + got
                end
                else iter.(u) <- rest
              end
              else iter.(u) <- rest
          done;
          !sent
        end
      in
      let pushed = push s infinite in
      if pushed = 0 then continue := false else total := !total + pushed
    end
  done;
  !total

let max_flow_edmonds_karp t ~s ~t:snk =
  check t s;
  check t snk;
  if s = snk then invalid_arg "Flow.max_flow_edmonds_karp: s = t";
  reset t;
  let total = ref 0 in
  let continue = ref true in
  while !continue do
    (* BFS recording the arc used to reach each node. *)
    let via = Array.make t.n (-1) in
    let seen = Array.make t.n false in
    seen.(s) <- true;
    let queue = Queue.create () in
    Queue.add s queue;
    while not (Queue.is_empty queue) && not seen.(snk) do
      let u = Queue.pop queue in
      List.iter
        (fun a ->
          let v = t.head.(a) in
          if t.cap.(a) > 0 && not seen.(v) then begin
            seen.(v) <- true;
            via.(v) <- a;
            Queue.add v queue
          end)
        t.first.(u)
    done;
    if not seen.(snk) then continue := false
    else begin
      (* Find bottleneck along the recorded path, then augment. *)
      let rec bottleneck v acc =
        if v = s then acc
        else
          let a = via.(v) in
          bottleneck t.head.(a lxor 1) (min acc t.cap.(a))
      in
      let rec augment v amount =
        if v <> s then begin
          let a = via.(v) in
          t.cap.(a) <- t.cap.(a) - amount;
          t.cap.(a lxor 1) <- t.cap.(a lxor 1) + amount;
          augment t.head.(a lxor 1) amount
        end
      in
      let b = bottleneck snk infinite in
      augment snk b;
      total := !total + b
    end
  done;
  !total

let min_cut t ~s ~t:snk =
  let value = max_flow t ~s ~t:snk in
  (* Residual reachability from s. *)
  let side = Array.make t.n false in
  let queue = Queue.create () in
  side.(s) <- true;
  Queue.add s queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun a ->
        let v = t.head.(a) in
        if t.cap.(a) > 0 && not side.(v) then begin
          side.(v) <- true;
          Queue.add v queue
        end)
      t.first.(u)
  done;
  let cut = ref [] in
  for id = 0 to (t.arcs / 2) - 1 do
    let a = 2 * id in
    let u = t.head.(a + 1) and v = t.head.(a) in
    if t.cap0.(a) > 0 && side.(u) && not side.(v) then cut := id :: !cut
  done;
  (value, side, List.rev !cut)
