(** Order-related algorithms on directed graphs: topological sorting,
    cycle detection, strongly connected components and reachability. *)

(** [sort g] is a topological order of the nodes of [g] (sources first),
    or [None] if [g] has a cycle. *)
val sort : Digraph.t -> int list option

val is_acyclic : Digraph.t -> bool

(** [scc g] is the list of strongly connected components of [g] in reverse
    topological order of the condensation (Tarjan). Each component is a
    non-empty list of node ids. *)
val scc : Digraph.t -> int list list

(** [reachable g s] is a boolean array [r] with [r.(v)] true iff there is a
    directed path (possibly empty) from [s] to [v]. *)
val reachable : Digraph.t -> int -> bool array

(** [reachable_from_set g srcs] marks every node reachable from any source. *)
val reachable_from_set : Digraph.t -> int list -> bool array

(** [has_path g u v] tests directed reachability from [u] to [v]. *)
val has_path : Digraph.t -> int -> int -> bool

(** [transitive_closure g] is a matrix [m] with [m.(u).(v)] true iff [v] is
    reachable from [u].  Quadratic space — intended for small graphs such as
    fusion graphs. *)
val transitive_closure : Digraph.t -> bool array array
