(** Minimum weighted vertex cut between two terminals of an undirected
    graph, by the classical node-splitting reduction to edge min-cut:
    every vertex [v] becomes an arc [v_in -> v_out] of capacity
    [weight v]; every undirected edge becomes a pair of infinite arcs.
    The saturated internal arcs of a minimum s-t cut are the cut
    vertices. *)

type result = {
  value : int;  (** total weight of the cut vertices *)
  cut : int list;  (** the cut vertices, ascending *)
  source_side : bool array;
      (** [source_side.(v)] iff [v] remains connected to [s] once the cut
          vertices are removed.  Cut vertices themselves are on neither
          side and are marked [false]. *)
}

exception Inseparable
(** Raised when [s] and [t] are adjacent or equal, in which case no vertex
    cut can separate them. *)

(** [min_cut g ~weight ~s ~t] computes a minimum vertex cut separating
    [s] from [t]; the terminals are never part of the cut.
    @param weight weight of each non-terminal vertex (must be [>= 0]).
    @raise Inseparable if [s = t] or [g] has the edge [s -- t]. *)
val min_cut : Undirected.t -> weight:(int -> int) -> s:int -> t:int -> result
