(** Multiway (k-way) cuts on weighted undirected graphs.

    The paper proves bandwidth-minimal fusion NP-complete by reduction from
    the k-way cut problem: find a minimum-weight edge set whose removal
    pairwise disconnects k designated terminals.  This module provides the
    classical isolation heuristic (a 2 - 2/k approximation) and an exact
    enumerative solver for small instances, used both as a test oracle and
    to exercise the reduction of Section 3.1.3. *)

type cut = {
  value : int;  (** total weight of the removed edges *)
  removed : (int * int) list;  (** removed edges as (u, v) with u <= v *)
  assignment : int array;
      (** [assignment.(v)] is the index (into the terminal list) of the
          terminal whose component contains [v]; [-1] for nodes in no
          terminal's component. *)
}

(** [isolation g ~terminals] runs the isolation heuristic: compute, for
    each terminal, a minimum cut separating it from all the others, and
    return the union of all but the most expensive of these cuts.
    @raise Invalid_argument on fewer than 2 terminals or duplicates. *)
val isolation : Undirected.t -> terminals:int list -> cut

(** [exact g ~terminals] enumerates every assignment of non-terminal nodes
    to terminals and returns a minimum k-way cut.  Exponential:
    k^(n-k) assignments; intended for n - k <= 12 or so. *)
val exact : Undirected.t -> terminals:int list -> cut

(** [cut_value g assignment] is the total weight of edges whose endpoints
    received different assignments. *)
val cut_value : Undirected.t -> int array -> int

(** [isolating_cut g ~terminal ~others] is the minimum edge cut separating
    [terminal] from every node of [others], as (value, removed edges). *)
val isolating_cut :
  Undirected.t -> terminal:int -> others:int list -> int * (int * int) list
