type result = { value : int; cut : int list; part1 : int list; part2 : int list }

let min_cut h ~s ~t =
  if s = t then invalid_arg "Hyper_cut.min_cut: s = t";
  let m = Hypergraph.edge_count h in
  let n = Hypergraph.node_count h in
  (* Step 1: conflict graph.  Nodes 0..m-1 mirror the hyper-edges; nodes m
     and m+1 are the fresh end nodes s' and t'. *)
  let conflict = Undirected.create ~size_hint:(m + 2) () in
  Undirected.ensure_nodes conflict (m + 2);
  let s' = m and t' = m + 1 in
  for e1 = 0 to m - 1 do
    for e2 = e1 + 1 to m - 1 do
      if Hypergraph.edges_overlap h e1 e2 then
        Undirected.add_edge conflict e1 e2
    done
  done;
  List.iter (fun e -> Undirected.add_edge conflict s' e) (Hypergraph.edges_of_node h s);
  List.iter (fun e -> Undirected.add_edge conflict t' e) (Hypergraph.edges_of_node h t);
  (* Steps 2-3: minimum vertex cut between s' and t', mapped back. *)
  let weight e = Hypergraph.edge_weight h e in
  let cut =
    match Vertex_cut.min_cut conflict ~weight ~s:s' ~t:t' with
    | { cut; _ } -> cut
    | exception Vertex_cut.Inseparable ->
      (* A hyper-edge contains both s and t: it is unavoidable, as are all
         its overlapping neighbours on any s-t path; fall back to cutting
         everything incident to s.  (Cannot happen for fusion graphs, where
         s and t are the artificial end loops.) *)
      Hypergraph.edges_of_node h s
  in
  let value = List.fold_left (fun acc e -> acc + weight e) 0 cut in
  let side = Hypergraph.connected_without h ~removed:cut s in
  assert (not side.(t));
  let part1 = ref [] and part2 = ref [] in
  for v = n - 1 downto 0 do
    if side.(v) then part1 := v :: !part1 else part2 := v :: !part2
  done;
  { value; cut = List.sort compare cut; part1 = !part1; part2 = !part2 }
