lib/graph/hyper_cut.ml: Array Hypergraph List Undirected Vertex_cut
