lib/graph/kway.mli: Undirected
