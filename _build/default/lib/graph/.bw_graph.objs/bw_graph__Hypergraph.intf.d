lib/graph/hypergraph.mli: Format
