lib/graph/flow.mli:
