lib/graph/graph_gen.mli: Digraph Hypergraph Undirected
