lib/graph/hyper_cut.mli: Hypergraph
