lib/graph/vertex_cut.ml: Array Flow Hashtbl List Undirected
