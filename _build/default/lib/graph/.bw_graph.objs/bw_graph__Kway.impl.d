lib/graph/kway.ml: Array Flow Hashtbl List Queue Undirected
