lib/graph/graph_gen.ml: Digraph Hypergraph List Random Undirected
