lib/graph/undirected.mli:
