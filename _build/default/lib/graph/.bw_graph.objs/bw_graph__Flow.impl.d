lib/graph/flow.ml: Array List Queue
