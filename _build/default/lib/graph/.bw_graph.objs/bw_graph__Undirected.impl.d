lib/graph/undirected.ml: Array Hashtbl List Queue
