lib/graph/hypergraph.ml: Array Format Int List Queue Set
