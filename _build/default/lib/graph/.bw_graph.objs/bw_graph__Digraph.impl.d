lib/graph/digraph.ml: Array Format Hashtbl List Printf
