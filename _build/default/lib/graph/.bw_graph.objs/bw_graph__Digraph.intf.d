lib/graph/digraph.mli: Format
