lib/graph/vertex_cut.mli: Undirected
