type cut = { value : int; removed : (int * int) list; assignment : int array }

let check_terminals g terminals =
  let n = Undirected.node_count g in
  if List.length terminals < 2 then
    invalid_arg "Kway: need at least two terminals";
  let sorted = List.sort_uniq compare terminals in
  if List.length sorted <> List.length terminals then
    invalid_arg "Kway: duplicate terminals";
  List.iter
    (fun t ->
      if t < 0 || t >= n then invalid_arg "Kway: terminal out of range")
    terminals

let cut_value g assignment =
  List.fold_left
    (fun acc (u, v, w) ->
      if assignment.(u) <> assignment.(v) then acc + w else acc)
    0 (Undirected.edges g)

(* Edge min-cut between [terminal] and a merged super-sink of [others],
   via max-flow on a bidirected network. *)
let isolating_cut g ~terminal ~others =
  let n = Undirected.node_count g in
  let sink = n in
  let net = Flow.create (n + 1) in
  let arc_of_edge = Hashtbl.create 64 in
  List.iter
    (fun (u, v, w) ->
      if u <> v then begin
        let a = Flow.add_edge net ~src:u ~dst:v ~cap:w in
        let b = Flow.add_edge net ~src:v ~dst:u ~cap:w in
        Hashtbl.add arc_of_edge a (u, v);
        Hashtbl.add arc_of_edge b (u, v)
      end)
    (Undirected.edges g);
  List.iter
    (fun t ->
      ignore (Flow.add_edge net ~src:t ~dst:sink ~cap:Flow.infinite))
    others;
  let value, side, cut_arcs = Flow.min_cut net ~s:terminal ~t:sink in
  ignore side;
  let removed =
    List.filter_map (fun a -> Hashtbl.find_opt arc_of_edge a) cut_arcs
    |> List.map (fun (u, v) -> if u <= v then (u, v) else (v, u))
    |> List.sort_uniq compare
  in
  (value, removed)

let assignment_of_removed g ~terminals removed =
  let n = Undirected.node_count g in
  let removed_set = Hashtbl.create 64 in
  List.iter
    (fun (u, v) -> Hashtbl.replace removed_set (min u v, max u v) ())
    removed;
  let assignment = Array.make n (-1) in
  List.iteri
    (fun idx t ->
      (* BFS from each terminal avoiding removed edges; earlier terminals
         win ties (they are disconnected anyway in a valid cut). *)
      if assignment.(t) = -1 then begin
        let queue = Queue.create () in
        assignment.(t) <- idx;
        Queue.add t queue;
        while not (Queue.is_empty queue) do
          let u = Queue.pop queue in
          List.iter
            (fun v ->
              let key = (min u v, max u v) in
              if (not (Hashtbl.mem removed_set key)) && assignment.(v) = -1
              then begin
                assignment.(v) <- idx;
                Queue.add v queue
              end)
            (Undirected.neighbours g u)
        done
      end)
    terminals;
  assignment

let isolation g ~terminals =
  check_terminals g terminals;
  let cuts =
    List.map
      (fun t ->
        let others = List.filter (fun x -> x <> t) terminals in
        isolating_cut g ~terminal:t ~others)
      terminals
  in
  (* Union of all but the single most expensive isolating cut. *)
  let most_expensive =
    List.fold_left (fun acc (v, _) -> max acc v) min_int cuts
  in
  let dropped = ref false in
  let removed =
    List.concat_map
      (fun (v, edges) ->
        if v = most_expensive && not !dropped then begin
          dropped := true;
          []
        end
        else edges)
      cuts
    |> List.sort_uniq compare
  in
  let assignment = assignment_of_removed g ~terminals removed in
  (* Re-derive the exact value: the union can overlap, and edges internal
     to one side may appear; charge only edges that truly separate. *)
  let value =
    List.fold_left
      (fun acc (u, v) -> acc + Undirected.weight g u v)
      0 removed
  in
  { value; removed; assignment }

let exact g ~terminals =
  check_terminals g terminals;
  let n = Undirected.node_count g in
  let k = List.length terminals in
  let terminal_index = Hashtbl.create k in
  List.iteri (fun idx t -> Hashtbl.add terminal_index t idx) terminals;
  let free =
    List.filter
      (fun v -> not (Hashtbl.mem terminal_index v))
      (List.init n (fun v -> v))
  in
  let base = Array.make n (-1) in
  List.iteri (fun idx t -> base.(t) <- idx) terminals;
  let best_value = ref max_int in
  let best_assignment = ref (Array.copy base) in
  let rec go assigned = function
    | [] ->
      let v = cut_value g assigned in
      if v < !best_value then begin
        best_value := v;
        best_assignment := Array.copy assigned
      end
    | node :: rest ->
      for idx = 0 to k - 1 do
        assigned.(node) <- idx;
        go assigned rest
      done;
      assigned.(node) <- -1
  in
  go (Array.copy base) free;
  let assignment = !best_assignment in
  let removed =
    List.filter_map
      (fun (u, v, _) ->
        if assignment.(u) <> assignment.(v) then Some (min u v, max u v)
        else None)
      (Undirected.edges g)
    |> List.sort_uniq compare
  in
  { value = !best_value; removed; assignment }
