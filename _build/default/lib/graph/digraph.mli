(** Growable directed graphs over integer node identifiers.

    Nodes are dense integers [0 .. node_count - 1].  The structure is
    imperative: nodes and edges can be added at any time.  Parallel edges
    are collapsed (adding an existing edge is a no-op); self-loops are
    permitted.  All operations that take a node id raise [Invalid_argument]
    if the id is outside the current node range. *)

type t

(** [create ()] is an empty graph.  [size_hint] pre-allocates internal
    storage for roughly that many nodes. *)
val create : ?size_hint:int -> unit -> t

(** [add_node g] allocates a fresh node and returns its id. *)
val add_node : t -> int

(** [ensure_nodes g n] grows the graph so that ids [0 .. n-1] are valid. *)
val ensure_nodes : t -> int -> unit

val node_count : t -> int
val edge_count : t -> int

(** [add_edge g u v] adds the directed edge [u -> v]. *)
val add_edge : t -> int -> int -> unit

val mem_edge : t -> int -> int -> bool

(** Successors of a node, in insertion order. *)
val succ : t -> int -> int list

(** Predecessors of a node, in insertion order. *)
val pred : t -> int -> int list

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val iter_nodes : t -> (int -> unit) -> unit
val iter_succ : t -> int -> (int -> unit) -> unit
val iter_edges : t -> (int -> int -> unit) -> unit
val fold_edges : t -> init:'a -> f:('a -> int -> int -> 'a) -> 'a

(** All edges as pairs, in no particular order. *)
val edges : t -> (int * int) list

(** [of_edges ~n edges] builds a graph with [n] nodes and the given edges. *)
val of_edges : n:int -> (int * int) list -> t

(** A structural copy sharing nothing with the original. *)
val copy : t -> t

(** The graph with every edge reversed. *)
val reverse : t -> t

val pp : Format.formatter -> t -> unit
