(** Simple undirected graphs over dense integer nodes, with optional
    per-edge weights.  Used for conflict graphs and for the weighted-graph
    inputs of the k-way cut reduction. *)

type t

val create : ?size_hint:int -> unit -> t
val add_node : t -> int
val ensure_nodes : t -> int -> unit
val node_count : t -> int
val edge_count : t -> int

(** [add_edge g u v] adds an undirected edge of weight [weight]
    (default [1]).  Re-adding an edge keeps the first weight. *)
val add_edge : ?weight:int -> t -> int -> int -> unit

val mem_edge : t -> int -> int -> bool
val weight : t -> int -> int -> int

(** Neighbours of a node (each adjacent node once). *)
val neighbours : t -> int -> int list

(** Each edge once, as [(u, v, weight)] with [u <= v]. *)
val edges : t -> (int * int * int) list

(** Connected components as lists of nodes. *)
val components : t -> int list list

(** [component_of g v] is the set of nodes connected to [v], as a flag
    array. *)
val component_of : t -> int -> bool array
