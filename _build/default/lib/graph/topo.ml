let sort g =
  let n = Digraph.node_count g in
  let indeg = Array.make n 0 in
  Digraph.iter_edges g (fun _ v -> indeg.(v) <- indeg.(v) + 1);
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indeg;
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    incr seen;
    order := u :: !order;
    Digraph.iter_succ g u (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v queue)
  done;
  if !seen = n then Some (List.rev !order) else None

let is_acyclic g = sort g <> None

(* Tarjan's algorithm, iterative to survive deep graphs. *)
let scc g =
  let n = Digraph.node_count g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = Stack.create () in
  let next_index = ref 0 in
  let components = ref [] in
  let visit root =
    (* Work list holds (node, remaining successors). *)
    let work = Stack.create () in
    Stack.push (root, Digraph.succ g root) work;
    index.(root) <- !next_index;
    lowlink.(root) <- !next_index;
    incr next_index;
    Stack.push root stack;
    on_stack.(root) <- true;
    while not (Stack.is_empty work) do
      let u, rest = Stack.pop work in
      match rest with
      | v :: rest' ->
        Stack.push (u, rest') work;
        if index.(v) = -1 then begin
          index.(v) <- !next_index;
          lowlink.(v) <- !next_index;
          incr next_index;
          Stack.push v stack;
          on_stack.(v) <- true;
          Stack.push (v, Digraph.succ g v) work
        end
        else if on_stack.(v) then lowlink.(u) <- min lowlink.(u) index.(v)
      | [] ->
        if lowlink.(u) = index.(u) then begin
          let comp = ref [] in
          let continue = ref true in
          while !continue do
            let w = Stack.pop stack in
            on_stack.(w) <- false;
            comp := w :: !comp;
            if w = u then continue := false
          done;
          components := !comp :: !components
        end;
        if not (Stack.is_empty work) then begin
          let parent, _ = Stack.top work in
          lowlink.(parent) <- min lowlink.(parent) lowlink.(u)
        end
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then visit v
  done;
  List.rev !components

let reachable_from_set g srcs =
  let n = Digraph.node_count g in
  let seen = Array.make n false in
  let queue = Queue.create () in
  let enqueue v =
    if v >= 0 && v < n && not seen.(v) then begin
      seen.(v) <- true;
      Queue.add v queue
    end
  in
  List.iter enqueue srcs;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Digraph.iter_succ g u enqueue
  done;
  seen

let reachable g s = reachable_from_set g [ s ]

let has_path g u v =
  let r = reachable g u in
  v >= 0 && v < Array.length r && r.(v)

let transitive_closure g =
  let n = Digraph.node_count g in
  Array.init n (fun u -> reachable g u)
