let state seed = Random.State.make [| seed; 0x5eed; seed lxor 0x9e3779b9 |]

let digraph ~seed ~nodes ~edge_prob =
  let rng = state seed in
  let g = Digraph.create ~size_hint:nodes () in
  Digraph.ensure_nodes g nodes;
  for u = 0 to nodes - 1 do
    for v = 0 to nodes - 1 do
      if u <> v && Random.State.float rng 1.0 < edge_prob then
        Digraph.add_edge g u v
    done
  done;
  g

let dag ~seed ~nodes ~edge_prob =
  let rng = state seed in
  let g = Digraph.create ~size_hint:nodes () in
  Digraph.ensure_nodes g nodes;
  for u = 0 to nodes - 1 do
    for v = u + 1 to nodes - 1 do
      if Random.State.float rng 1.0 < edge_prob then Digraph.add_edge g u v
    done
  done;
  g

let undirected ~seed ~nodes ~edge_prob ~max_weight =
  let rng = state seed in
  let g = Undirected.create ~size_hint:nodes () in
  Undirected.ensure_nodes g nodes;
  for u = 0 to nodes - 1 do
    for v = u + 1 to nodes - 1 do
      if Random.State.float rng 1.0 < edge_prob then
        Undirected.add_edge ~weight:(1 + Random.State.int rng max_weight) g u v
    done
  done;
  g

let hypergraph ~seed ~nodes ~edges ~max_arity =
  if max_arity < 1 then invalid_arg "Graph_gen.hypergraph: max_arity < 1";
  let rng = state seed in
  let h = Hypergraph.create ~size_hint:nodes () in
  Hypergraph.ensure_nodes h nodes;
  for _ = 1 to edges do
    let arity = 1 + Random.State.int rng max_arity in
    let members = ref [] in
    for _ = 1 to arity do
      members := Random.State.int rng nodes :: !members
    done;
    ignore (Hypergraph.add_edge h (List.sort_uniq compare !members))
  done;
  h
