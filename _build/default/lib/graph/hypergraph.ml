module Int_set = Set.Make (Int)

type edge = { nodes : Int_set.t; weight : int; label : string option }

type t = {
  mutable n : int;
  mutable edges : edge array;
  mutable m : int;
  mutable incidence : int list array; (* node -> edge ids, reversed *)
}

let dummy_edge = { nodes = Int_set.empty; weight = 0; label = None }

let create ?(size_hint = 8) () =
  let cap = max size_hint 1 in
  { n = 0; edges = Array.make cap dummy_edge; m = 0; incidence = Array.make cap [] }

let node_count h = h.n
let edge_count h = h.m

let grow_nodes h wanted =
  let cap = Array.length h.incidence in
  if wanted > cap then begin
    let inc' = Array.make (max wanted (2 * cap)) [] in
    Array.blit h.incidence 0 inc' 0 h.n;
    h.incidence <- inc'
  end

let add_node h =
  grow_nodes h (h.n + 1);
  let id = h.n in
  h.n <- h.n + 1;
  id

let ensure_nodes h n =
  if n > h.n then begin
    grow_nodes h n;
    h.n <- n
  end

let check_node h v =
  if v < 0 || v >= h.n then invalid_arg "Hypergraph: node out of range"

let check_edge h e =
  if e < 0 || e >= h.m then invalid_arg "Hypergraph: edge out of range"

let add_edge ?(weight = 1) ?label h nodes =
  List.iter (check_node h) nodes;
  if weight < 0 then invalid_arg "Hypergraph.add_edge: negative weight";
  let cap = Array.length h.edges in
  if h.m + 1 > cap then begin
    let edges' = Array.make (2 * cap) dummy_edge in
    Array.blit h.edges 0 edges' 0 h.m;
    h.edges <- edges'
  end;
  let id = h.m in
  h.edges.(id) <- { nodes = Int_set.of_list nodes; weight; label };
  h.m <- h.m + 1;
  Int_set.iter
    (fun v -> h.incidence.(v) <- id :: h.incidence.(v))
    h.edges.(id).nodes;
  id

let edge_nodes h e =
  check_edge h e;
  Int_set.elements h.edges.(e).nodes

let edge_weight h e =
  check_edge h e;
  h.edges.(e).weight

let edge_label h e =
  check_edge h e;
  h.edges.(e).label

let edges_of_node h v =
  check_node h v;
  List.rev h.incidence.(v)

let edge_mem h e v =
  check_edge h e;
  check_node h v;
  Int_set.mem v h.edges.(e).nodes

let edges_overlap h e1 e2 =
  check_edge h e1;
  check_edge h e2;
  not (Int_set.is_empty (Int_set.inter h.edges.(e1).nodes h.edges.(e2).nodes))

let iter_edges h f =
  for e = 0 to h.m - 1 do
    f e (Int_set.elements h.edges.(e).nodes)
  done

let connected_without h ~removed s =
  check_node h s;
  let removed_set = Int_set.of_list removed in
  let seen = Array.make h.n false in
  let edge_seen = Array.make h.m false in
  let queue = Queue.create () in
  seen.(s) <- true;
  Queue.add s queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun e ->
        if (not edge_seen.(e)) && not (Int_set.mem e removed_set) then begin
          edge_seen.(e) <- true;
          Int_set.iter
            (fun v ->
              if not seen.(v) then begin
                seen.(v) <- true;
                Queue.add v queue
              end)
            h.edges.(e).nodes
        end)
      h.incidence.(u)
  done;
  seen

let pp ppf h =
  Format.fprintf ppf "@[<v>hypergraph (%d nodes, %d edges)" h.n h.m;
  iter_edges h (fun e nodes ->
      Format.fprintf ppf "@,e%d%s {%a}" e
        (match edge_label h e with Some l -> ":" ^ l | None -> "")
        Format.(
          pp_print_list ~pp_sep:(fun ppf () -> pp_print_string ppf ", ")
            pp_print_int)
        nodes);
  Format.fprintf ppf "@]"
