type t = {
  mutable n : int;
  mutable succ : int list array; (* reversed insertion order, re-reversed on read *)
  mutable pred : int list array;
  mutable edges : int;
  edge_set : (int * int, unit) Hashtbl.t;
}

let create ?(size_hint = 8) () =
  let cap = max size_hint 1 in
  { n = 0;
    succ = Array.make cap [];
    pred = Array.make cap [];
    edges = 0;
    edge_set = Hashtbl.create (4 * cap) }

let node_count g = g.n
let edge_count g = g.edges

let grow g wanted =
  let cap = Array.length g.succ in
  if wanted > cap then begin
    let cap' = max wanted (2 * cap) in
    let succ' = Array.make cap' [] and pred' = Array.make cap' [] in
    Array.blit g.succ 0 succ' 0 g.n;
    Array.blit g.pred 0 pred' 0 g.n;
    g.succ <- succ';
    g.pred <- pred'
  end

let add_node g =
  grow g (g.n + 1);
  let id = g.n in
  g.n <- g.n + 1;
  id

let ensure_nodes g n =
  if n > g.n then begin
    grow g n;
    g.n <- n
  end

let check g v =
  if v < 0 || v >= g.n then
    invalid_arg (Printf.sprintf "Digraph: node %d out of range [0,%d)" v g.n)

let mem_edge g u v =
  check g u;
  check g v;
  Hashtbl.mem g.edge_set (u, v)

let add_edge g u v =
  check g u;
  check g v;
  if not (Hashtbl.mem g.edge_set (u, v)) then begin
    Hashtbl.add g.edge_set (u, v) ();
    g.succ.(u) <- v :: g.succ.(u);
    g.pred.(v) <- u :: g.pred.(v);
    g.edges <- g.edges + 1
  end

let succ g u =
  check g u;
  List.rev g.succ.(u)

let pred g v =
  check g v;
  List.rev g.pred.(v)

let out_degree g u =
  check g u;
  List.length g.succ.(u)

let in_degree g v =
  check g v;
  List.length g.pred.(v)

let iter_nodes g f =
  for v = 0 to g.n - 1 do
    f v
  done

let iter_succ g u f =
  check g u;
  List.iter f (List.rev g.succ.(u))

let iter_edges g f = iter_nodes g (fun u -> iter_succ g u (fun v -> f u v))

let fold_edges g ~init ~f =
  let acc = ref init in
  iter_edges g (fun u v -> acc := f !acc u v);
  !acc

let edges g = fold_edges g ~init:[] ~f:(fun acc u v -> (u, v) :: acc)

let of_edges ~n es =
  let g = create ~size_hint:n () in
  ensure_nodes g n;
  List.iter (fun (u, v) -> add_edge g u v) es;
  g

let copy g =
  let g' = of_edges ~n:g.n [] in
  iter_edges g (fun u v -> add_edge g' u v);
  g'

let reverse g =
  let g' = of_edges ~n:g.n [] in
  iter_edges g (fun u v -> add_edge g' v u);
  g'

let pp ppf g =
  Format.fprintf ppf "@[<v>digraph (%d nodes, %d edges)" g.n g.edges;
  iter_nodes g (fun u ->
      match succ g u with
      | [] -> ()
      | vs ->
        Format.fprintf ppf "@,%d -> %a" u
          Format.(
            pp_print_list ~pp_sep:(fun ppf () -> pp_print_string ppf ", ")
              pp_print_int)
          vs);
  Format.fprintf ppf "@]"
