type result = { value : int; cut : int list; source_side : bool array }

exception Inseparable

let min_cut g ~weight ~s ~t =
  let n = Undirected.node_count g in
  if s = t || Undirected.mem_edge g s t then raise Inseparable;
  let v_in v = 2 * v and v_out v = (2 * v) + 1 in
  let net = Flow.create (2 * n) in
  let internal_arc = Array.make n (-1) in
  for v = 0 to n - 1 do
    let cap =
      if v = s || v = t then Flow.infinite
      else begin
        let w = weight v in
        if w < 0 then invalid_arg "Vertex_cut.min_cut: negative weight";
        w
      end
    in
    internal_arc.(v) <- Flow.add_edge net ~src:(v_in v) ~dst:(v_out v) ~cap
  done;
  List.iter
    (fun (u, v, _) ->
      ignore (Flow.add_edge net ~src:(v_out u) ~dst:(v_in v) ~cap:Flow.infinite);
      ignore (Flow.add_edge net ~src:(v_out v) ~dst:(v_in u) ~cap:Flow.infinite))
    (Undirected.edges g);
  let value, side, cut_arcs = Flow.min_cut net ~s:(v_out s) ~t:(v_in t) in
  if value >= Flow.infinite then raise Inseparable;
  (* Cut vertices: internal arcs crossing the cut. *)
  let is_cut = Array.make n false in
  let arc_to_vertex = Hashtbl.create n in
  Array.iteri (fun v a -> Hashtbl.add arc_to_vertex a v) internal_arc;
  List.iter
    (fun a ->
      match Hashtbl.find_opt arc_to_vertex a with
      | Some v -> is_cut.(v) <- true
      | None -> ())
    cut_arcs;
  let cut = ref [] in
  for v = n - 1 downto 0 do
    if is_cut.(v) then cut := v :: !cut
  done;
  let source_side =
    Array.init n (fun v -> (not is_cut.(v)) && side.(v_in v))
  in
  { value; cut = !cut; source_side }
