lib/workloads/random_programs.mli: Bw_ir
