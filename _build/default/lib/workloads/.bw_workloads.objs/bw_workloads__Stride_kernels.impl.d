lib/workloads/stride_kernels.ml: Bw_ir List Option Printf
