lib/workloads/registry.mli: Bw_ir
