lib/workloads/fft.ml: Bw_ir
