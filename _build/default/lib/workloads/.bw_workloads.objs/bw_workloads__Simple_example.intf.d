lib/workloads/simple_example.mli: Bw_ir
