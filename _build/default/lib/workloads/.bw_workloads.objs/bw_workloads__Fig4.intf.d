lib/workloads/fig4.mli: Bw_ir
