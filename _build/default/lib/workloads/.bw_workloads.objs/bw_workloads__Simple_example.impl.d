lib/workloads/simple_example.ml: Bw_ir
