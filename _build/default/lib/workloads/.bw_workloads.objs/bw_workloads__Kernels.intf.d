lib/workloads/kernels.mli: Bw_ir
