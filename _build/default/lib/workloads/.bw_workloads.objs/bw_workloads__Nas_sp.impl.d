lib/workloads/nas_sp.ml: Bw_ir List Printf
