lib/workloads/registry.ml: Bw_ir Fft Fig4 Fig6 Fig7 Irregular Kernels List Nas_sp Printf Simple_example Stride_kernels Sweep3d
