lib/workloads/nas_sp.mli: Bw_ir
