lib/workloads/fig7.mli: Bw_ir
