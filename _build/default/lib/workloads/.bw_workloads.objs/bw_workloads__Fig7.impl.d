lib/workloads/fig7.ml: Bw_ir
