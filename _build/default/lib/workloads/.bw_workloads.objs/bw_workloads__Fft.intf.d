lib/workloads/fft.mli: Bw_ir
