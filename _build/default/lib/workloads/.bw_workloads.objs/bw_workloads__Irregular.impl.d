lib/workloads/irregular.ml: Bw_ir List
