lib/workloads/irregular.mli: Bw_ir
