lib/workloads/fig6.mli: Bw_ir
