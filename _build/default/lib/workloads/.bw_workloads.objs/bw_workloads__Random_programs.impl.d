lib/workloads/random_programs.ml: Bw_ir List Printf Random
