lib/workloads/sweep3d.mli: Bw_ir
