lib/workloads/sweep3d.ml: Bw_ir List
