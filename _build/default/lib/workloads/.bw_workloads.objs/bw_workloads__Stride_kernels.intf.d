lib/workloads/stride_kernels.mli: Bw_ir
