lib/workloads/kernels.ml: Bw_ir Bw_transform
