lib/workloads/fig4.ml: Bw_ir
