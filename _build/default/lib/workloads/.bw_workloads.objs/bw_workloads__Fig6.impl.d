lib/workloads/fig6.ml: Bw_ir
