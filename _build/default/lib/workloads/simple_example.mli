(** The Section 2.1 motivating example: two loops over a large array with
    identical reads and flops, one of which also writes the array back.
    On a bandwidth-bound machine the writing loop takes twice as long. *)

(** [For i: a[i] = a[i] + 0.4] — reads and writes [n] doubles. *)
val write_loop : n:int -> Bw_ir.Ast.program

(** [For i: sum = sum + a[i]] — reads [n] doubles, writes nothing. *)
val read_loop : n:int -> Bw_ir.Ast.program

(** Both loops in one program, in the paper's order. *)
val combined : n:int -> Bw_ir.Ast.program
