(** Name-indexed catalogue of every workload, for the CLI and benches.
    [scale] is a coarse size knob: 1 = quick test sizes, 2 = the sizes
    the experiment drivers use, 3 = stress sizes. *)

type entry = {
  name : string;
  description : string;
  build : scale:int -> Bw_ir.Ast.program;
}

val all : entry list
val find : string -> entry option
val names : unit -> string list
