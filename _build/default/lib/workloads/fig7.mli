(** The Figure 7 / Figure 8 store-elimination program.

    [original]: one loop updates [res] in place from [data], a second
    reduces [res] into [sum].  [fused_by_hand] is Figure 7(b).  The
    library derives (b) via loop fusion and Figure 7(c) — no write-back
    of [res] at all — via scalar forwarding + dead-store elimination.

    Figure 8 measures: original 0.32s / fusion 0.22s / store elimination
    0.16s on Origin2000 (0.24 / 0.21 / 0.14 on Exemplar). *)

val original : n:int -> Bw_ir.Ast.program
val fused_by_hand : n:int -> Bw_ir.Ast.program
