(** Iterative radix-2 Cooley-Tukey FFT over split real/imaginary arrays:
    bit-reversal permutation followed by log2(n) butterfly stages with
    power-of-two strides.  The twiddle factors come from the IR's opaque
    (deterministic) intrinsics rather than real trigonometry — the memory
    access pattern, which is what the balance model measures, is exactly
    the classic FFT's. *)

(** [fft ~log2n] builds the kernel for [n = 2^log2n] points.
    @raise Invalid_argument if [log2n < 2]. *)
val fft : log2n:int -> Bw_ir.Ast.program
