open Bw_ir.Builder

let fft ~log2n =
  if log2n < 2 then invalid_arg "fft: log2n must be >= 2";
  let n = 1 lsl log2n in
  let xr i = "xr" $ [ i ] and xi i = "xi" $ [ i ] in
  let set_xr i e = ("xr" $. [ i ]) <-- e and set_xi i e = ("xi" $. [ i ]) <-- e in
  program "fft"
    ~decls:
      [ array ~init:(Init_hash 41) "xr" [ n ];
        array ~init:(Init_hash 42) "xi" [ n ];
        int_scalar "jrev";
        int_scalar "krev";
        int_scalar "le";
        int_scalar "le2";
        int_scalar "ib";
        int_scalar "ip";
        scalar "wr";
        scalar "wi";
        scalar "tr";
        scalar "ti";
        scalar "swap" ]
    ~live_out:[ "xr"; "xi" ]
    [ (* bit-reversal permutation (bounded-loop form of the classic
         while-based index update) *)
      sc "jrev" <-- int 1;
      for_ "i" (int 1) (int (n - 1))
        [ if_
            (v "i" <: v "jrev")
            [ sc "swap" <-- xr (v "i");
              set_xr (v "i") (xr (v "jrev"));
              set_xr (v "jrev") (v "swap");
              sc "swap" <-- xi (v "i");
              set_xi (v "i") (xi (v "jrev"));
              set_xi (v "jrev") (v "swap") ]
            [];
          sc "krev" <-- int (n / 2);
          for_ "b" (int 1) (int log2n)
            [ if_
                (and_ (v "krev" >=: int 1) (v "jrev" >: v "krev"))
                [ sc "jrev" <-- (v "jrev" -: v "krev");
                  sc "krev" <-- (v "krev" /: int 2) ]
                [] ];
          sc "jrev" <-- (v "jrev" +: v "krev") ];
      (* butterfly stages, block-major: the inner loop walks contiguous
         elements (ib = b..b+le-1 and their partners), the ordering any
         cache-aware FFT uses *)
      sc "le" <-- int 1;
      for_ "s" (int 1) (int log2n)
        [ sc "le2" <-- (v "le" *: int 2);
          for_ "b" (int 1) (int n) ~step:(v "le2")
            [ for_ "j" (int 0) (v "le" -: int 1)
                [ sc "ib" <-- (v "b" +: v "j");
                  sc "ip" <-- (v "ib" +: v "le");
                  sc "wr" <-- call "cos_tw" [ to_float (v "j"); to_float (v "le") ];
                  sc "wi" <-- call "sin_tw" [ to_float (v "j"); to_float (v "le") ];
                  sc "tr"
                  <-- ((xr (v "ip") *: v "wr") -: (xi (v "ip") *: v "wi"));
                  sc "ti"
                  <-- ((xr (v "ip") *: v "wi") +: (xi (v "ip") *: v "wr"));
                  set_xr (v "ip") (xr (v "ib") -: v "tr");
                  set_xi (v "ip") (xi (v "ib") -: v "ti");
                  set_xr (v "ib") (xr (v "ib") +: v "tr");
                  set_xi (v "ib") (xi (v "ib") +: v "ti") ] ];
          sc "le" <-- v "le2" ] ]
