(** The Figure 4 fusion instance: six loops over arrays A..F plus the
    scalar [sum].

    - Loops 1-3 access {A, D, E, F} (A read-only, so no dependence ties
      them to loop 5).
    - Loop 4 accesses {B, C, D, E, F}.
    - Loop 5 reduces A into [sum].
    - Loop 6 consumes [sum] and {B, C}; the scalar makes 5 and 6
      fusion-preventing and creates the dependence 5 -> 6.

    Unfused, the six loops load 20 arrays; the optimal bandwidth-minimal
    fusion ({5} then {1,2,3,4,6}) loads 7; the optimal edge-weighted
    fusion ({1,2,3,4,5} then {6}) loads 8. *)

val program : n:int -> Bw_ir.Ast.program

(** Node indices of loops 5 and 6 (0-based positions in the body). *)
val preventing_pair : int * int

(** Arrays accessed by each loop, in loop order — the hyper-edge data. *)
val loop_arrays : string list list
