(** The Figure 6 program: array shrinking and peeling.

    [original] is Figure 6(a): initialise [a[N,N]] from input, compute
    [b[i,j] = f(a[i,j-1], a[i,j])], adjust the last column with
    [g(b[i,N], a[i,1])], and reduce everything into [sum].

    [fused] is Figure 6(b): the same computation restructured into one
    prologue loop plus one fused loop nest (the paper performs this step
    with loop embedding, which we reproduce by hand exactly as printed).
    From [fused], the library's contraction and shrinking passes derive
    the Figure 6(c) storage: [b] becomes a scalar and [a[N,N]] becomes an
    [N x 2] rolling buffer plus one peeled [N]-element column — O(N)
    storage in place of O(N^2). *)

val original : n:int -> Bw_ir.Ast.program
val fused : n:int -> Bw_ir.Ast.program
