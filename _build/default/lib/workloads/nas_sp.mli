(** A scaled-down port of the NAS/SP benchmark's compute core.

    SP is an ADI solver over a 3-D grid with a 5-component state vector.
    This port keeps the seven major subroutine groups the paper measures
    (Section 2.3) and their array-streaming structure — multi-array
    stencil sweeps, pointwise transforms and line recurrences — while
    shrinking the physics to deterministic arithmetic on the same
    arrays.  Program balance is a per-flop ratio, so fidelity of the
    access pattern, not of the fluid dynamics, is what matters. *)

(** The seven subroutines as standalone programs over an [n^3] grid:
    compute_aux, compute_rhs, txinvr, x_solve, y_solve, z_solve, add. *)
val subroutines : n:int -> (string * Bw_ir.Ast.program) list

(** All seven in sequence, sharing state. *)
val full : n:int -> Bw_ir.Ast.program
