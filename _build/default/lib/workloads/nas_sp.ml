open Bw_ir.Builder

(* State: five conserved components u1..u5; auxiliaries; five rhs
   components.  All [n,n,n], column-major, i fastest. *)

let grid_decls n =
  let cube seed name = array ~init:(Init_hash seed) name [ n; n; n ] in
  List.mapi (fun k name -> cube (100 + k) name)
    [ "u1"; "u2"; "u3"; "u4"; "u5";
      "rhs1"; "rhs2"; "rhs3"; "rhs4"; "rhs5";
      "us"; "vs"; "ws"; "qs"; "rho_i"; "speed" ]

let at name = name $ [ v "i"; v "j"; v "k" ]
let set name e = (name $. [ v "i"; v "j"; v "k" ]) <-- e

let shift name di dj dk =
  name $ [ v "i" +: int di; v "j" +: int dj; v "k" +: int dk ]

let sweep ?(lo = 1) ?(hi_off = 0) n body =
  for_ "k" (int lo) (int (n - hi_off))
    [ for_ "j" (int lo) (int (n - hi_off))
        [ for_ "i" (int lo) (int (n - hi_off)) body ] ]

(* 1. compute_aux: pointwise preparation of velocities and sound speed
   (SP's initialize/adi prologue). *)
let compute_aux_body =
  [ set "rho_i" (fl 1.0 /: at "u1");
    set "us" (at "u2" *: at "rho_i");
    set "vs" (at "u3" *: at "rho_i");
    set "ws" (at "u4" *: at "rho_i");
    set "qs"
      (fl 0.5
      *: ((at "us" *: at "us") +: (at "vs" *: at "vs") +: (at "ws" *: at "ws")));
    set "speed" (sqrt_ (abs_ ((fl 1.4 *: at "u5" *: at "rho_i") -: at "qs"))) ]

(* 2. compute_rhs: central-difference stencil over the state in all three
   directions -- the big streaming phase. *)
let compute_rhs_body c =
  let u = Printf.sprintf "u%d" c and rhs = Printf.sprintf "rhs%d" c in
  [ set rhs
      ((fl (-6.0) *: at u)
      +: shift u 1 0 0 +: shift u (-1) 0 0
      +: shift u 0 1 0 +: shift u 0 (-1) 0
      +: shift u 0 0 1 +: shift u 0 0 (-1)
      +: (at "qs" *: fl 0.1)) ]

(* 3. txinvr: pointwise 5x5-ish transform mixing the rhs components. *)
let txinvr_body =
  [ set "rhs1"
      (at "rhs1" +: (at "rho_i" *: ((at "us" *: at "rhs2") +: (at "vs" *: at "rhs3"))));
    set "rhs2" (at "rhs2" -: (at "speed" *: at "rhs1"));
    set "rhs3" (at "rhs3" +: (at "speed" *: at "rhs1"));
    set "rhs4" (at "rhs4" -: (at "qs" *: at "rhs5"));
    set "rhs5" ((at "rhs5" *: fl 0.98) +: (at "ws" *: at "rhs4")) ]

(* 4-6. line solves: first-order recurrence then back-substitution along
   one grid direction, SP's Thomas-algorithm structure. *)
let line_solve ~dir n =
  let fwd, bwd, name =
    match dir with
    | `X ->
      ( (fun body -> [ for_ "k" (int 1) (int n) [ for_ "j" (int 1) (int n) [ for_ "i" (int 2) (int n) body ] ] ]),
        (fun body -> [ for_ "k" (int 1) (int n) [ for_ "j" (int 1) (int n) [ for_ "i" (int 1) (int (n - 1)) body ] ] ]),
        "x_solve" )
    | `Y ->
      ( (fun body -> [ for_ "k" (int 1) (int n) [ for_ "i" (int 1) (int n) [ for_ "j" (int 2) (int n) body ] ] ]),
        (fun body -> [ for_ "k" (int 1) (int n) [ for_ "i" (int 1) (int n) [ for_ "j" (int 1) (int (n - 1)) body ] ] ]),
        "y_solve" )
    | `Z ->
      ( (fun body -> [ for_ "j" (int 1) (int n) [ for_ "i" (int 1) (int n) [ for_ "k" (int 2) (int n) body ] ] ]),
        (fun body -> [ for_ "j" (int 1) (int n) [ for_ "i" (int 1) (int n) [ for_ "k" (int 1) (int (n - 1)) body ] ] ]),
        "z_solve" )
  in
  let prev name_ =
    match dir with
    | `X -> shift name_ (-1) 0 0
    | `Y -> shift name_ 0 (-1) 0
    | `Z -> shift name_ 0 0 (-1)
  in
  let next name_ =
    match dir with
    | `X -> shift name_ 1 0 0
    | `Y -> shift name_ 0 1 0
    | `Z -> shift name_ 0 0 1
  in
  let forward c =
    let rhs = Printf.sprintf "rhs%d" c in
    set rhs (at rhs -: (fl 0.45 *: prev rhs *: at "speed"))
  in
  let backward c =
    let rhs = Printf.sprintf "rhs%d" c in
    set rhs (at rhs -: (fl 0.45 *: next rhs))
  in
  (name, fwd [ forward 1; forward 2; forward 3 ] @ bwd [ backward 1; backward 2; backward 3 ])

(* 7. add: u += rhs for all five components. *)
let add_body =
  List.init 5 (fun c ->
      let c = c + 1 in
      let u = Printf.sprintf "u%d" c and rhs = Printf.sprintf "rhs%d" c in
      set u (at u +: at rhs))

let named_bodies n =
  [ ("compute_aux", [ sweep n compute_aux_body ]);
    ( "compute_rhs",
      [ sweep ~lo:2 ~hi_off:1 n (List.concat_map compute_rhs_body [ 1; 2; 3; 4; 5 ]) ] );
    ("txinvr", [ sweep n txinvr_body ]);
    (let name, body = line_solve ~dir:`X n in
     (name, body));
    (let name, body = line_solve ~dir:`Y n in
     (name, body));
    (let name, body = line_solve ~dir:`Z n in
     (name, body));
    ("add", [ sweep n add_body ]) ]

let subroutines ~n =
  List.map
    (fun (name, body) ->
      ( name,
        program ("sp_" ^ name) ~decls:(grid_decls n)
          ~live_out:[ "u1"; "u5"; "rhs1" ]
          body ))
    (named_bodies n)

let full ~n =
  program "sp_full" ~decls:(grid_decls n) ~live_out:[ "u1"; "u5" ]
    (List.concat_map snd (named_bodies n))
