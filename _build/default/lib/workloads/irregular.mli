(** An irregular, moldyn-like interaction kernel: a list of particle
    pairs [(idx1 k, idx2 k)] drives indirect reads of the coordinate
    array and indirect updates of the force array.  With hash-random
    pairs the accesses have no locality — the dynamic-application case
    the paper's strategy handles with run-time locality grouping and
    data packing (Section 4). *)

(** [interactions ~particles ~pairs ~sweeps] builds the kernel.  Index
    arrays are initialised to pseudo-random particle numbers; the force
    array is live-out. *)
val interactions :
  particles:int -> pairs:int -> sweeps:int -> Bw_ir.Ast.program

(** Names of the pieces, for the packing transformation:
    index arrays [["idx1"; "idx2"]], data arrays [["x"; "f"]]. *)
val index_arrays : string list

val data_arrays : string list
