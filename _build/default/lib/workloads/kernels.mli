(** The Figure 1 kernel programs: convolution, dmxpy, matrix multiply. *)

(** 1-D convolution: [out[i] = sum_k in[i+k-1] * w[k]], [k = 1..taps]. *)
val convolution : n:int -> taps:int -> Bw_ir.Ast.program

(** The Linpack dmxpy kernel: [y[i] += m[i,j] * x[j]] over all [j], [i] —
    a dense matrix-vector accumulate. *)
val dmxpy : n:int -> Bw_ir.Ast.program

type mm_order = Ijk | Jki

(** Dense matrix multiply [c = a * b] in the given loop order.  [Jki] is
    the classic Fortran inner-product order the paper measures at -O2. *)
val mm : ?order:mm_order -> n:int -> unit -> Bw_ir.Ast.program

(** [mm] blocked with the library's tiling pass — the paper's "-O3"
    (Carr-Kennedy blocking).  @raise Invalid_argument if tiling fails. *)
val mm_blocked : n:int -> tile:int -> Bw_ir.Ast.program
