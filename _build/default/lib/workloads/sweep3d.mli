(** A Sweep3D-like discrete-ordinates wavefront sweep.

    Each cell combines its source and total cross-section with the
    incoming angular fluxes carried by three 2-D edge arrays (one per
    upwind face), accumulates the scalar flux, and updates the edge
    arrays in place — the DOE Sweep3D kernel's memory structure: three
    3-D streams plus three reused 2-D planes per sweep direction. *)

(** [sweep ~n ~octants] builds [octants] full sweeps (1..8) over an
    [n^3] grid. *)
val sweep : n:int -> octants:int -> Bw_ir.Ast.program
