open Bw_ir.Builder

let original ~n =
  let a i j = "a" $ [ i; j ] in
  let b i j = "b" $ [ i; j ] in
  program "fig6_original"
    ~decls:[ array "a" [ n; n ]; array "b" [ n; n ]; scalar "sum" ]
    ~live_out:[ "sum" ]
    [ (* initialisation of data *)
      for_ "j" (int 1) (int n)
        [ for_ "i" (int 1) (int n) [ read ("a" $. [ v "i"; v "j" ]) ] ];
      (* computation *)
      for_ "j" (int 2) (int n)
        [ for_ "i" (int 1) (int n)
            [ ("b" $. [ v "i"; v "j" ])
              <-- call "f" [ a (v "i") (v "j" -: int 1); a (v "i") (v "j") ] ] ];
      for_ "i" (int 1) (int n)
        [ ("b" $. [ v "i"; int n ])
          <-- call "g" [ b (v "i") (int n); a (v "i") (int 1) ] ];
      (* check results *)
      for_ "j" (int 2) (int n)
        [ for_ "i" (int 1) (int n)
            [ sc "sum" <-- (v "sum" +: a (v "i") (v "j") +: b (v "i") (v "j")) ] ];
      print (v "sum") ]

let fused ~n =
  let a i j = "a" $ [ i; j ] in
  let b i j = "b" $ [ i; j ] in
  program "fig6_fused"
    ~decls:[ array "a" [ n; n ]; array "b" [ n; n ]; scalar "sum" ]
    ~live_out:[ "sum" ]
    [ for_ "i" (int 1) (int n) [ read ("a" $. [ v "i"; int 1 ]) ];
      for_ "j" (int 2) (int n)
        [ for_ "i" (int 1) (int n)
            [ read ("a" $. [ v "i"; v "j" ]);
              ("b" $. [ v "i"; v "j" ])
                <-- call "f" [ a (v "i") (v "j" -: int 1); a (v "i") (v "j") ];
              if_
                (v "j" <=: int (n - 1))
                [ sc "sum" <-- (v "sum" +: a (v "i") (v "j") +: b (v "i") (v "j")) ]
                [ ("b" $. [ v "i"; v "j" ])
                    <-- call "g" [ b (v "i") (v "j"); a (v "i") (int 1) ];
                  sc "sum"
                  <-- (v "sum" +: a (v "i") (v "j") +: b (v "i") (v "j")) ] ] ];
      print (v "sum") ]
