open Bw_ir.Builder

(* The paper prints [sum = 0.0] between the two loops; it is hoisted
   above them here (no dependence is crossed) so that the loops are
   adjacent and the greedy fusion sweep applies directly. *)
let make_decls n =
  [ array ~init:(Init_hash 7) "res" [ n ];
    array ~init:(Init_hash 8) "data" [ n ];
    scalar "sum" ]

let original ~n =
  program "fig7_original" ~decls:(make_decls n) ~live_out:[ "sum" ]
    [ sc "sum" <-- fl 0.0;
      for_ "i" (int 1) (int n)
        [ ("res" $. [ v "i" ])
          <-- (("res" $ [ v "i" ]) +: ("data" $ [ v "i" ])) ];
      for_ "i" (int 1) (int n)
        [ sc "sum" <-- (v "sum" +: ("res" $ [ v "i" ])) ];
      print (v "sum") ]

let fused_by_hand ~n =
  program "fig7_fused" ~decls:(make_decls n) ~live_out:[ "sum" ]
    [ sc "sum" <-- fl 0.0;
      for_ "i" (int 1) (int n)
        [ ("res" $. [ v "i" ])
          <-- (("res" $ [ v "i" ]) +: ("data" $ [ v "i" ]));
          sc "sum" <-- (v "sum" +: ("res" $ [ v "i" ])) ];
      print (v "sum") ]
