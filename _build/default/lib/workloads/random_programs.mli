(** Deterministic random stream programs, used by the fusion ablation
    benchmarks and by property tests: a sequence of loops, each updating
    one array from a random subset of the others, interleaved with scalar
    reduction loops that create fusion-preventing structure. *)

val generate :
  seed:int -> loops:int -> arrays:int -> n:int -> Bw_ir.Ast.program
