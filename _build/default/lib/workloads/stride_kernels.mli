(** The stride-one read/write kernels of Figure 3.

    A kernel [wWrR] reads [R] distinct arrays in unit stride and writes
    [W] of them; e.g. [1w2r] is [a[i] = a[i] + b[i]] and [0w2r] is
    [s = s + a[i]*b[i]].  The paper measures 13 such kernels and shows
    they all saturate memory bandwidth. *)

(** [kernel ~writes ~reads ~n] with [0 <= writes <= reads], [reads >= 1].
    @raise Invalid_argument outside that range. *)
val kernel : writes:int -> reads:int -> n:int -> Bw_ir.Ast.program

(** Kernel name in the paper's convention, e.g. ["1w2r"]. *)
val name : writes:int -> reads:int -> string

(** The 13 paper kernels in presentation order:
    1w1r 2w2r 3w3r 1w2r 1w3r 1w4r 2w3r 2w4r 2w5r 3w6r 0w1r 0w2r 0w3r. *)
val all : (string * (int * int)) list
