type entry = {
  name : string;
  description : string;
  build : scale:int -> Bw_ir.Ast.program;
}

let pick ~scale a b c = match scale with 1 -> a | 2 -> b | _ -> c

let all =
  [ { name = "write_loop";
      description = "Section 2.1: a[i] = a[i] + 0.4 over a large array";
      build =
        (fun ~scale ->
          Simple_example.write_loop ~n:(pick ~scale 10_000 500_000 2_000_000)) };
    { name = "read_loop";
      description = "Section 2.1: sum += a[i] over a large array";
      build =
        (fun ~scale ->
          Simple_example.read_loop ~n:(pick ~scale 10_000 500_000 2_000_000)) };
    { name = "convolution";
      description = "Figure 1 kernel: 1-D convolution";
      build =
        (fun ~scale ->
          Kernels.convolution
            ~n:(pick ~scale 5_000 200_000 1_000_000)
            ~taps:8) };
    { name = "dmxpy";
      description = "Figure 1 kernel: Linpack dmxpy (matrix-vector)";
      build = (fun ~scale -> Kernels.dmxpy ~n:(pick ~scale 64 512 1024)) };
    { name = "mm_jki";
      description = "Figure 1 kernel: matrix multiply, jki order (-O2)";
      build = (fun ~scale -> Kernels.mm ~order:Kernels.Jki ~n:(pick ~scale 32 144 256) ()) };
    { name = "mm_blocked";
      description = "Figure 1 kernel: blocked matrix multiply (-O3)";
      build =
        (fun ~scale ->
          Kernels.mm_blocked ~n:(pick ~scale 32 144 256)
            ~tile:(pick ~scale 8 24 32)) };
    { name = "fft";
      description = "Figure 1 kernel: radix-2 FFT";
      build = (fun ~scale -> Fft.fft ~log2n:(pick ~scale 10 16 18)) };
    { name = "nas_sp";
      description = "NAS/SP-like ADI solver (7 subroutines)";
      build = (fun ~scale -> Nas_sp.full ~n:(pick ~scale 8 24 32)) };
    { name = "sweep3d";
      description = "Sweep3D-like wavefront transport sweep";
      build = (fun ~scale -> Sweep3d.sweep ~n:(pick ~scale 8 24 40) ~octants:2) };
    { name = "fig4";
      description = "Figure 4: six-loop fusion instance";
      build = (fun ~scale -> Fig4.program ~n:(pick ~scale 1_000 200_000 1_000_000)) };
    { name = "fig6";
      description = "Figure 6: shrinking/peeling program (fused form)";
      build = (fun ~scale -> Fig6.fused ~n:(pick ~scale 64 512 1024)) };
    { name = "irregular";
      description = "moldyn-like irregular particle interactions";
      build =
        (fun ~scale ->
          Irregular.interactions
            ~particles:(pick ~scale 2_000 20_000 100_000)
            ~pairs:(pick ~scale 1_000 8_000 50_000)
            ~sweeps:4) };
    { name = "fig7";
      description = "Figure 7: store-elimination program";
      build =
        (fun ~scale -> Fig7.original ~n:(pick ~scale 10_000 500_000 2_000_000)) } ]
  @ List.map
      (fun (kname, (w, r)) ->
        { name = "stride_" ^ kname;
          description = Printf.sprintf "Figure 3 kernel %s" kname;
          build =
            (fun ~scale ->
              Stride_kernels.kernel ~writes:w ~reads:r
                ~n:(pick ~scale 10_000 300_000 1_000_000)) })
      Stride_kernels.all

let find name = List.find_opt (fun e -> e.name = name) all
let names () = List.map (fun e -> e.name) all
