open Bw_ir.Builder

let loop_arrays =
  [ [ "a"; "d"; "e"; "f" ];
    [ "a"; "d"; "e"; "f" ];
    [ "a"; "d"; "e"; "f" ];
    [ "b"; "c"; "d"; "e"; "f" ];
    [ "a" ];
    [ "b"; "c" ] ]

let preventing_pair = (4, 5)

let program ~n =
  let idx = [ v "i" ] in
  let a k = k $ idx in
  let upd k rhs = (k $. idx) <-- rhs in
  program "fig4"
    ~decls:
      [ array ~init:(Init_hash 1) "a" [ n ];
        array ~init:(Init_hash 2) "b" [ n ];
        array ~init:(Init_hash 3) "c" [ n ];
        array ~init:(Init_hash 4) "d" [ n ];
        array ~init:(Init_hash 5) "e" [ n ];
        array ~init:(Init_hash 6) "f" [ n ];
        scalar "sum" ]
    ~live_out:[ "sum"; "d"; "e"; "f"; "b" ]
    [ (* loops 1-3: {a,d,e,f}, a read-only *)
      for_ "i" (int 1) (int n) [ upd "d" (a "d" +: (a "a" *: a "e") +: a "f") ];
      for_ "i" (int 1) (int n) [ upd "e" (a "e" +: (a "a" *: a "f") +: a "d") ];
      for_ "i" (int 1) (int n) [ upd "f" (a "f" +: (a "a" *: a "d") +: a "e") ];
      (* loop 4: {b,c,d,e,f} *)
      for_ "i" (int 1) (int n)
        [ upd "b" (a "b" +: a "c" +: a "d" +: a "e" +: a "f") ];
      (* loop 5: sum over a *)
      for_ "i" (int 1) (int n) [ sc "sum" <-- (v "sum" +: a "a") ];
      (* loop 6: uses sum, b, c *)
      for_ "i" (int 1) (int n)
        [ sc "sum" <-- (v "sum" +: (a "b" *: a "c")) ];
      print (v "sum") ]
