open Bw_ir.Builder

let sweep ~n ~octants =
  if octants < 1 || octants > 8 then invalid_arg "sweep: octants in 1..8";
  let at3 name = name $ [ v "i"; v "j"; v "k" ] in
  let cell o =
    (* angle weights vary per octant so the octant loops are not folded
       away by constant folding; diamond difference with theta = 1 makes
       the outgoing face fluxes plain copies of psi *)
    let w = 0.125 +. (0.01 *. float_of_int o) in
    [ sc "psi"
      <-- ((at3 "src"
           +: (fl w *: ("phi_i" $ [ v "j"; v "k" ]))
           +: (fl w *: ("phi_j" $ [ v "i"; v "k" ]))
           +: (fl w *: ("phi_k" $ [ v "i"; v "j" ])))
          /: (fl 0.5 +: at3 "sigt"));
      ("flux" $. [ v "i"; v "j"; v "k" ]) <-- (at3 "flux" +: (fl w *: v "psi"));
      ("psi_out" $. [ v "i"; v "j"; v "k" ]) <-- v "psi";
      ("phi_i" $. [ v "j"; v "k" ]) <-- v "psi";
      ("phi_j" $. [ v "i"; v "k" ]) <-- v "psi";
      ("phi_k" $. [ v "i"; v "j" ]) <-- v "psi" ]
  in
  let one_octant o =
    for_ "k" (int 1) (int n)
      [ for_ "j" (int 1) (int n) [ for_ "i" (int 1) (int n) (cell o) ] ]
  in
  program "sweep3d"
    ~decls:
      [ array ~init:(Init_hash 51) "src" [ n; n; n ];
        array ~init:(Init_hash 52) "sigt" [ n; n; n ];
        array ~init:Init_zero "flux" [ n; n; n ];
        array ~init:Init_zero "psi_out" [ n; n; n ];
        array ~init:(Init_hash 53) "phi_i" [ n; n ];
        array ~init:(Init_hash 54) "phi_j" [ n; n ];
        array ~init:(Init_hash 55) "phi_k" [ n; n ];
        scalar "psi" ]
    ~live_out:[ "flux"; "psi_out" ]
    (List.init octants (fun o -> one_octant (o + 1)))
