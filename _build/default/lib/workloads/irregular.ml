open Bw_ir.Builder

let index_arrays = [ "idx1"; "idx2" ]
let data_arrays = [ "x"; "f" ]

(* idx values must land in [1, particles]: Init_hash produces values in
   [0, 1000); build the program with a prologue that folds them into
   range so the kernel stays checked and deterministic. *)
let interactions ~particles ~pairs ~sweeps =
  if particles < 2 || pairs < 1 || sweeps < 1 then
    invalid_arg "Irregular.interactions";
  let i1 k = "idx1" $ [ k ] and i2 k = "idx2" $ [ k ] in
  program "irregular"
    ~decls:
      [ array ~dtype:I64 ~init:(Init_hash 61) "idx1" [ pairs ];
        array ~dtype:I64 ~init:(Init_hash 62) "idx2" [ pairs ];
        array ~init:(Init_hash 63) "x" [ particles ];
        array ~init:Init_zero "f" [ particles ];
        scalar "d" ]
    ~live_out:[ "f" ]
    ([ (* fold the raw hash values into [1, particles], avoiding self
          pairs by bumping the second index *)
       for_ "k" (int 1) (int pairs)
         [ ("idx1" $. [ v "k" ]) <-- ((i1 (v "k") %: int particles) +: int 1);
           ("idx2" $. [ v "k" ]) <-- ((i2 (v "k") %: int particles) +: int 1);
           if_
             (i1 (v "k") =: i2 (v "k"))
             [ ("idx2" $. [ v "k" ])
               <-- ((i2 (v "k") %: int (particles - 1)) +: int 1) ]
             [] ] ]
    @ List.init sweeps (fun s ->
          let w = 0.5 +. (0.01 *. float_of_int s) in
          for_ "k" (int 1) (int pairs)
            [ sc "d"
              <-- (fl w
                  *: (("x" $ [ i1 (v "k") ]) -: ("x" $ [ i2 (v "k") ])));
              ("f" $. [ i1 (v "k") ]) <-- (("f" $ [ i1 (v "k") ]) +: v "d");
              ("f" $. [ i2 (v "k") ]) <-- (("f" $ [ i2 (v "k") ]) -: v "d") ]))
