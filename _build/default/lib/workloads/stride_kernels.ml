open Bw_ir.Builder

let name ~writes ~reads = Printf.sprintf "%dw%dr" writes reads

let array_name k = Printf.sprintf "a%d" (k + 1)

let kernel ~writes ~reads ~n =
  if reads < 1 || writes < 0 || writes > reads then
    invalid_arg "Stride_kernels.kernel: need 0 <= writes <= reads, reads >= 1";
  let arrays = List.init reads (fun k -> array ~init:(Init_hash k) (array_name k) [ n ]) in
  let idx = [ v "i" ] in
  let body =
    if writes = 0 then
      (* pure reads feed a scalar reduction *)
      let sum_expr =
        List.fold_left
          (fun acc k ->
            match acc with
            | None -> Some (array_name k $ idx)
            | Some e -> Some (e +: (array_name k $ idx)))
          None
          (List.init reads (fun k -> k))
        |> Option.get
      in
      [ sc "s" <-- (v "s" +: sum_expr) ]
    else begin
      (* write array k gets its own value plus a share of the read-only
         arrays, so every array is read and the first [writes] written *)
      let read_only = List.init (reads - writes) (fun k -> writes + k) in
      List.init writes (fun k ->
          let extras =
            List.filteri (fun j _ -> j mod writes = k) read_only
          in
          let rhs =
            List.fold_left
              (fun acc r -> acc +: (array_name r $ idx))
              (array_name k $ idx)
              extras
          in
          (array_name k $. idx) <-- (rhs +: fl 1.0e-3))
    end
  in
  let decls = if writes = 0 then arrays @ [ scalar "s" ] else arrays in
  let live_out =
    if writes = 0 then [ "s" ] else List.init writes array_name
  in
  program (name ~writes ~reads) ~decls ~live_out
    [ for_ "i" (int 1) (int n) body ]

let all =
  [ ("1w1r", (1, 1));
    ("2w2r", (2, 2));
    ("3w3r", (3, 3));
    ("1w2r", (1, 2));
    ("1w3r", (1, 3));
    ("1w4r", (1, 4));
    ("2w3r", (2, 3));
    ("2w4r", (2, 4));
    ("2w5r", (2, 5));
    ("3w6r", (3, 6));
    ("0w1r", (0, 1));
    ("0w2r", (0, 2));
    ("0w3r", (0, 3)) ]
