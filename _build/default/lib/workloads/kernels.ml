open Bw_ir.Builder

let convolution ~n ~taps =
  if taps >= n then invalid_arg "convolution: taps >= n";
  program "convolution"
    ~decls:
      [ array ~init:(Init_hash 11) "in" [ n + taps ];
        array ~init:(Init_hash 12) "w" [ taps ];
        array "out" [ n ] ]
    ~live_out:[ "out" ]
    [ for_ "i" (int 1) (int n)
        [ ("out" $. [ v "i" ]) <-- fl 0.0;
          for_ "k" (int 1) (int taps)
            [ ("out" $. [ v "i" ])
              <-- (("out" $ [ v "i" ])
                  +: (("in" $ [ v "i" +: v "k" -: int 1 ]) *: ("w" $ [ v "k" ]))) ] ] ]

let dmxpy ~n =
  program "dmxpy"
    ~decls:
      [ array ~init:(Init_hash 21) "m" [ n; n ];
        array ~init:(Init_hash 22) "x" [ n ];
        array ~init:(Init_hash 23) "y" [ n ] ]
    ~live_out:[ "y" ]
    [ for_ "j" (int 1) (int n)
        [ for_ "i" (int 1) (int n)
            [ ("y" $. [ v "i" ])
              <-- (("y" $ [ v "i" ])
                  +: (("x" $ [ v "j" ]) *: ("m" $ [ v "i"; v "j" ]))) ] ] ]

type mm_order = Ijk | Jki

let mm_loop_body =
  ("c" $. [ v "i"; v "j" ])
  <-- (("c" $ [ v "i"; v "j" ])
      +: (("a" $ [ v "i"; v "k" ]) *: ("b" $ [ v "k"; v "j" ])))

let mm ?(order = Jki) ~n () =
  let loop index body = for_ index (int 1) (int n) body in
  let nest =
    match order with
    | Ijk -> loop "i" [ loop "j" [ loop "k" [ mm_loop_body ] ] ]
    | Jki -> loop "j" [ loop "k" [ loop "i" [ mm_loop_body ] ] ]
  in
  program
    (match order with Ijk -> "mm_ijk" | Jki -> "mm_jki")
    ~decls:
      [ array ~init:(Init_hash 31) "a" [ n; n ];
        array ~init:(Init_hash 32) "b" [ n; n ];
        array ~init:Init_zero "c" [ n; n ] ]
    ~live_out:[ "c" ] [ nest ]

let mm_blocked ~n ~tile =
  let base = mm ~order:Jki ~n () in
  match base.Bw_ir.Ast.body with
  | [ Bw_ir.Ast.For nest ] -> (
    match
      Bw_transform.Tile.tile_nest nest
        ~tiles:[ ("j", tile); ("k", tile); ("i", tile) ]
    with
    | Ok tiled ->
      { base with
        Bw_ir.Ast.prog_name = "mm_blocked";
        Bw_ir.Ast.body = [ Bw_ir.Ast.For tiled ] }
    | Error e -> invalid_arg ("mm_blocked: " ^ e))
  | _ -> assert false
