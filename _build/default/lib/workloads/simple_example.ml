open Bw_ir.Builder

let write_loop ~n =
  program "write_loop"
    ~decls:[ array "a" [ n ] ]
    ~live_out:[ "a" ]
    [ for_ "i" (int 1) (int n)
        [ ("a" $. [ v "i" ]) <-- (("a" $ [ v "i" ]) +: fl 0.4) ] ]

let read_loop ~n =
  program "read_loop"
    ~decls:[ array "a" [ n ]; scalar "sum" ]
    ~live_out:[ "sum" ]
    [ for_ "i" (int 1) (int n)
        [ sc "sum" <-- (v "sum" +: ("a" $ [ v "i" ])) ];
      print (v "sum") ]

let combined ~n =
  program "simple_example"
    ~decls:[ array "a" [ n ]; scalar "sum" ]
    ~live_out:[ "sum" ]
    [ for_ "i" (int 1) (int n)
        [ ("a" $. [ v "i" ]) <-- (("a" $ [ v "i" ]) +: fl 0.4) ];
      for_ "i" (int 1) (int n)
        [ sc "sum" <-- (v "sum" +: ("a" $ [ v "i" ])) ];
      print (v "sum") ]
