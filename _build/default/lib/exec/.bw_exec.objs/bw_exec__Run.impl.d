lib/exec/run.ml: Bw_ir Bw_machine Cache Compile Counters Interp Layout List Machine Reuse Timing Translate
