lib/exec/compile.ml: Array Bw_ir Float Hashtbl Interp List Printf
