lib/exec/run.mli: Bw_ir Bw_machine Interp
