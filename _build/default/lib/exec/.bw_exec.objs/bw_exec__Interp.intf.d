lib/exec/interp.mli: Bw_ir Format
