lib/exec/interp.ml: Array Bw_ir Float Format Hashtbl List Printf
