lib/exec/compile.mli: Bw_ir Interp
