open Bw_machine

type result = {
  machine : Machine.t;
  observation : Interp.observation;
  counters : Counters.t;
  cache : Cache.t;
  breakdown : Timing.breakdown;
}

let simulate ?(flush = true) ?(engine = `Compiled) ~machine
    (program : Bw_ir.Ast.program) =
  let layout =
    Layout.assign ~align_bytes:machine.Machine.array_align_bytes
      ~stagger_bytes:machine.Machine.array_stagger_bytes
      (List.filter_map
         (fun d ->
           if Bw_ir.Ast.is_array d then
             Some (d.Bw_ir.Ast.var_name, Bw_ir.Ast.decl_bytes d)
           else None)
         program.Bw_ir.Ast.decls)
  in
  let translation = Machine.fresh_translation machine in
  let cache = Machine.fresh_cache machine in
  let counters = Counters.create () in
  let sink =
    { Interp.on_load =
        (fun ~addr ~bytes ->
          counters.Counters.loads <- counters.Counters.loads + 1;
          Cache.read cache ~addr:(Translate.apply translation addr) ~bytes);
      on_store =
        (fun ~addr ~bytes ->
          counters.Counters.stores <- counters.Counters.stores + 1;
          Cache.write cache ~addr:(Translate.apply translation addr) ~bytes);
      on_flop = (fun n -> counters.Counters.flops <- counters.Counters.flops + n);
      on_int_op =
        (fun n -> counters.Counters.int_ops <- counters.Counters.int_ops + n) }
  in
  let base_of name = Layout.base layout name in
  let observation =
    match engine with
    | `Compiled -> Compile.run ~sink ~base_of program
    | `Interpreted -> Interp.run ~sink ~base_of program
  in
  if flush then Cache.flush cache;
  let breakdown = Timing.predict machine cache counters in
  { machine; observation; counters; cache; breakdown }

let observe program =
  let counters = Counters.create () in
  let sink =
    { Interp.on_load =
        (fun ~addr:_ ~bytes:_ ->
          counters.Counters.loads <- counters.Counters.loads + 1);
      on_store =
        (fun ~addr:_ ~bytes:_ ->
          counters.Counters.stores <- counters.Counters.stores + 1);
      on_flop = (fun n -> counters.Counters.flops <- counters.Counters.flops + n);
      on_int_op =
        (fun n -> counters.Counters.int_ops <- counters.Counters.int_ops + n) }
  in
  let observation = Interp.run ~sink program in
  (observation, counters)

let reuse_profile ?(granularity = 32) (program : Bw_ir.Ast.program) =
  let profile = Reuse.create ~granularity () in
  let layout =
    Layout.assign ~stagger_bytes:0
      (List.filter_map
         (fun d ->
           if Bw_ir.Ast.is_array d then
             Some (d.Bw_ir.Ast.var_name, Bw_ir.Ast.decl_bytes d)
           else None)
         program.Bw_ir.Ast.decls)
  in
  let sink =
    { Interp.on_load = (fun ~addr ~bytes:_ -> Reuse.access profile ~addr);
      on_store = (fun ~addr ~bytes:_ -> Reuse.access profile ~addr);
      on_flop = (fun _ -> ());
      on_int_op = (fun _ -> ()) }
  in
  ignore
    (Interp.run ~sink ~base_of:(fun name -> Layout.base layout name) program);
  profile

let effective_bandwidth r =
  Timing.effective_bandwidth r.machine r.cache r.counters

let nominal_bandwidth r =
  (* STREAM-style accounting: 8 bytes read per load, 8 written per store;
     write-allocate fills and conflict refetches are invisible to it *)
  let nominal = 8 * (r.counters.Counters.loads + r.counters.Counters.stores) in
  let t = r.breakdown.Timing.total in
  if t <= 0.0 then 0.0 else float_of_int nominal /. t

let seconds r = r.breakdown.Timing.total

let program_balance r =
  let flops = float_of_int (max 1 r.counters.Counters.flops) in
  let register = float_of_int (Counters.register_bytes r.counters) /. flops in
  let names = Machine.boundary_names r.machine in
  let boundary_values =
    List.init (Cache.level_count r.cache) (fun i ->
        if i = Cache.level_count r.cache - 1 then
          float_of_int (Timing.memory_bytes r.cache) /. flops
        else float_of_int (Cache.boundary_bytes r.cache i) /. flops)
  in
  List.combine names (register :: boundary_values)
