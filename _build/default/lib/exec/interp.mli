(** Checked interpreter for IR programs.

    Arrays are stored column-major (Fortran order, matching the paper's
    loop nests, where [For j / For i ... a[i,j]] is a stride-1 sweep) and
    subscripts are 1-based.  Every array access is bounds-checked.

    The interpreter reports two kinds of outcome:

    - an {!observation} — the program's observable behaviour (values
      printed plus final contents of [live_out] variables), used to verify
      that a transformed program behaves identically to the original;
    - a stream of machine events (loads, stores, flops) delivered to a
      {!sink}, used to drive the cache simulator and the counters.

    Scalars are treated as register-allocated: reading or writing one
    produces no memory event, matching the balance model's accounting
    where only array traffic reaches the memory hierarchy. *)

exception Runtime_error of string

type value = V_int of int | V_float of float

val pp_value : Format.formatter -> value -> unit

type observation = {
  prints : value list;
  finals : (string * value array) list;
      (** final contents of each [live_out] variable, in declaration
          order; scalars are singleton arrays *)
}

(** Exact structural equality of observations. *)
val equal_observation : observation -> observation -> bool

(** Equality up to an absolute/relative tolerance on floats, for
    transformations that reassociate arithmetic. *)
val close_observation : ?tol:float -> observation -> observation -> bool

val pp_observation : Format.formatter -> observation -> unit

type sink = {
  on_load : addr:int -> bytes:int -> unit;
  on_store : addr:int -> bytes:int -> unit;
  on_flop : int -> unit;
  on_int_op : int -> unit;
}

val null_sink : sink

(** [run ?sink ?base_of program] executes [program] (which must pass
    {!Bw_ir.Check.check}; the interpreter re-checks and raises
    [Invalid_argument] otherwise).

    [base_of] gives each array's base virtual address for event
    generation; it defaults to a packed layout.  Addresses of events are
    virtual — callers apply their own translation.

    @raise Runtime_error on out-of-bounds subscripts, non-positive steps,
    division by zero, or reading an undeclared input. *)
val run :
  ?sink:sink -> ?base_of:(string -> int) -> Bw_ir.Ast.program -> observation

(** The deterministic semantics shared with {!Compile}: the opaque
    intrinsic function, initial element values, and the [read()] input
    stream.  Exposed so alternative engines reproduce runs bit-exactly. *)

val intrinsic : string -> float list -> float

(** [init_value init dtype k] is the initial value of element [k]. *)
val init_value : Bw_ir.Ast.init -> Bw_ir.Ast.dtype -> int -> value

(** [input_value counter dtype] is the [counter]-th [read()] value. *)
val input_value : int -> Bw_ir.Ast.dtype -> value
