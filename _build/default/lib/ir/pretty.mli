(** Rendering of IR programs in the paper's pseudo-code style:

    {v
    For i=1, N
      a[i] = a[i] + 0.4
    End for
    v} *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_cond : Format.formatter -> Ast.cond -> unit
val pp_lvalue : Format.formatter -> Ast.lvalue -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_stmts : Format.formatter -> Ast.stmt list -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val expr_to_string : Ast.expr -> string
val program_to_string : Ast.program -> string
