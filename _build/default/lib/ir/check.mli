(** Static well-formedness and type checking of IR programs.

    The checker enforces: unique declarations; every variable reference
    resolves to a declaration or an enclosing loop index; array references
    carry exactly one subscript per declared dimension and subscripts are
    integer-typed; operand types agree ([Mod] is integer-only, [Sqrt] and
    [Call] are float-only); loop bounds and steps are integers; loop
    indices are never assigned and never shadow declarations; [live_out]
    names are declared. *)

type error = { context : string; message : string }

val pp_error : Format.formatter -> error -> unit

(** [check p] is [Ok ()] or [Error es] with every problem found. *)
val check : Ast.program -> (unit, error list) result

(** [check_exn p] raises [Invalid_argument] with a rendered error list. *)
val check_exn : Ast.program -> unit

(** [type_of_expr ~lookup e] infers the type of [e], where [lookup]
    resolves a name to its declared type ([None] = undeclared). *)
val type_of_expr :
  lookup:(string -> Ast.dtype option) -> Ast.expr -> (Ast.dtype, string) result
