(** Abstract syntax of the loop-nest intermediate representation.

    The IR models the Fortran-style scientific programs of the paper:
    a flat list of declarations (scalars and dense rectangular arrays)
    followed by a statement list of counted loops, assignments,
    conditionals, input reads and result prints.  Array extents are
    concrete integers — workloads are OCaml functions that bake a problem
    size into the program — while loop bounds are ordinary expressions so
    that transformations such as tiling can introduce symbolic bounds. *)

type dtype = F64 | I64 [@@deriving show { with_path = false }, eq, ord]

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod  (** integer remainder; ill-typed on floats *)
  | Min
  | Max
[@@deriving show { with_path = false }, eq, ord]

type unop = Neg | Abs | Sqrt | Int_to_float
[@@deriving show { with_path = false }, eq, ord]

type cmpop = Eq | Ne | Lt | Le | Gt | Ge
[@@deriving show { with_path = false }, eq, ord]

type expr =
  | Int_lit of int
  | Float_lit of float
  | Scalar of string  (** scalar variable or loop index *)
  | Element of string * expr list  (** array element, one index per dim *)
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Call of string * expr list
      (** opaque numeric intrinsic (the paper's [f], [g]); costed as one
          flop plus the cost of its arguments *)
[@@deriving show { with_path = false }, eq, ord]

type cond =
  | Cmp of cmpop * expr * expr
  | And of cond * cond
  | Or of cond * cond
  | Not of cond
[@@deriving show { with_path = false }, eq, ord]

type lvalue = Lscalar of string | Lelement of string * expr list
[@@deriving show { with_path = false }, eq, ord]

type stmt =
  | Assign of lvalue * expr
  | If of cond * stmt list * stmt list
  | For of loop
  | Read_input of lvalue
      (** the paper's [read(a[i,j])]: store a fresh input value; counts as
          a store but not a flop *)
  | Print of expr  (** observable output, compared across transformations *)

and loop = {
  index : string;
  lo : expr;
  hi : expr;  (** inclusive upper bound, Fortran-style *)
  step : expr;  (** must evaluate to a positive integer *)
  body : stmt list;
}
[@@deriving show { with_path = false }, eq, ord]

(** How a variable's storage is initialised before execution.  Initial
    values are deterministic so that a transformed program can be checked
    against the original run for bit-identical observable behaviour. *)
type init =
  | Init_zero
  | Init_linear of float * float
      (** [Init_linear (a, b)]: element at flattened offset [k] starts as
          [a +. (b *. float k)] (or the truncation for [I64]) *)
  | Init_hash of int
      (** pseudo-random but reproducible: a hash of the offset and seed *)
  | Init_lanes of init * int
      (** [Init_lanes (inner, l)]: element [k] starts as [inner (k / l)] —
          the initialiser of an array into which [l] identically
          initialised arrays were interleaved by data regrouping *)
[@@deriving show { with_path = false }, eq, ord]

type decl = {
  var_name : string;
  dtype : dtype;
  dims : int list;  (** [[]] for scalars; extents are per-dimension *)
  init : init;
}
[@@deriving show { with_path = false }, eq, ord]

type program = {
  prog_name : string;
  decls : decl list;
  body : stmt list;
  live_out : string list;
      (** variables whose final contents are observable after the program
          finishes; stores into anything else may legally be eliminated *)
}
[@@deriving show { with_path = false }, eq, ord]

(** Number of elements of a declaration (1 for scalars). *)
let decl_size d = List.fold_left ( * ) 1 d.dims

(** Bytes occupied by one element of the given type (both are 8 here, but
    the indirection keeps sizing honest if smaller types are added). *)
let dtype_bytes = function F64 -> 8 | I64 -> 8

(** Total bytes occupied by a declaration. *)
let decl_bytes d = decl_size d * dtype_bytes d.dtype

let find_decl program name =
  List.find_opt (fun d -> d.var_name = name) program.decls

let is_array d = d.dims <> []

(** The name an lvalue writes. *)
let lvalue_name = function Lscalar s -> s | Lelement (a, _) -> a
