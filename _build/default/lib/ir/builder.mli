(** Concise combinators for constructing IR programs.

    Workload definitions read close to the paper's pseudo-code:
    {[
      let open Bw_ir.Builder in
      program "axpy" ~decls:[ array "a" [ n ]; array "b" [ n ] ]
        ~live_out:[ "a" ]
        [ for_ "i" (int 1) (int n)
            [ "a" $. [ v "i" ] <-- (("a" $ [ v "i" ]) +: ("b" $ [ v "i" ])) ] ]
    ]}

    All operators carry a [:] suffix ([+:], [<=:], ...) so opening the
    module does not shadow the standard integer operators. *)

open Ast

val int : int -> expr
val fl : float -> expr

(** Scalar or loop-index read. *)
val v : string -> expr

(** Array element read: ["a" $ [ v "i"; v "j" ]]. *)
val ( $ ) : string -> expr list -> expr

(** Array element lvalue: ["a" $. [ v "i" ]]. *)
val ( $. ) : string -> expr list -> lvalue

(** Scalar lvalue. *)
val sc : string -> lvalue

val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( *: ) : expr -> expr -> expr
val ( /: ) : expr -> expr -> expr

(** Integer remainder. *)
val ( %: ) : expr -> expr -> expr

val min_ : expr -> expr -> expr
val max_ : expr -> expr -> expr
val neg : expr -> expr
val abs_ : expr -> expr
val sqrt_ : expr -> expr

(** Integer-to-float conversion. *)
val to_float : expr -> expr

(** Opaque numeric intrinsic (the paper's [f], [g]). *)
val call : string -> expr list -> expr

val ( =: ) : expr -> expr -> cond
val ( <>: ) : expr -> expr -> cond
val ( <: ) : expr -> expr -> cond
val ( <=: ) : expr -> expr -> cond
val ( >: ) : expr -> expr -> cond
val ( >=: ) : expr -> expr -> cond
val and_ : cond -> cond -> cond
val or_ : cond -> cond -> cond
val not_ : cond -> cond

(** Assignment statement: [lhs <-- rhs]. *)
val ( <-- ) : lvalue -> expr -> stmt

(** Counted loop with inclusive bounds; [step] defaults to 1. *)
val for_ : ?step:expr -> string -> expr -> expr -> stmt list -> stmt

val if_ : cond -> stmt list -> stmt list -> stmt
val read : lvalue -> stmt
val print : expr -> stmt

(** Scalar declaration (default [F64], zero-initialised). *)
val scalar : ?dtype:dtype -> ?init:init -> string -> decl

(** Array declaration; extents must be positive.
    Default initialiser: [Init_linear (1.0, 0.001)].
    @raise Invalid_argument on a non-positive extent. *)
val array : ?dtype:dtype -> ?init:init -> string -> int list -> decl

(** Integer scalar declaration. *)
val int_scalar : ?init:init -> string -> decl

val program :
  ?live_out:string list -> string -> decls:decl list -> stmt list -> program
