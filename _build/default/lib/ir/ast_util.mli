(** Traversals and queries over the IR. *)

open Ast

(** Every sub-expression of an expression, including itself (pre-order). *)
val subexprs : expr -> expr list

(** Fold over every expression occurring in a statement, including those
    inside nested statements, loop bounds and lvalue subscripts. *)
val fold_stmt_exprs : ('a -> expr -> 'a) -> 'a -> stmt -> 'a

val fold_stmts_exprs : ('a -> expr -> 'a) -> 'a -> stmt list -> 'a

(** Fold over every statement in a statement list, visiting nested
    statements pre-order. *)
val fold_stmts : ('a -> stmt -> 'a) -> 'a -> stmt list -> 'a

(** Names of variables read by an expression (scalars and arrays). *)
val expr_reads : expr -> string list

(** Names of arrays referenced (read) by an expression. *)
val expr_array_reads : expr -> string list

(** [vars_read body] / [vars_written body]: names of variables read /
    written anywhere in the statements.  A [Read_input] counts as a write.
    Loop indices are not included in [vars_written]. *)
val vars_read : stmt list -> string list

val vars_written : stmt list -> string list

(** Arrays (per the program's declarations) accessed anywhere in the
    statements, in first-occurrence order. *)
val arrays_accessed : program -> stmt list -> string list

(** All loop index names bound anywhere in the statements. *)
val loop_indices : stmt list -> string list

(** [rename_scalar ~from ~into stmts] renames every occurrence of the
    scalar (or loop index) [from] — reads, writes and loop headers. *)
val rename_scalar : from:string -> into:string -> stmt list -> stmt list

(** [subst_scalar ~name ~value e] replaces reads of scalar [name] in [e]. *)
val subst_scalar : name:string -> value:expr -> expr -> expr

(** [subst_scalar_stmts ~name ~value stmts] substitutes in every expression
    position (fails with [Invalid_argument] if [name] is written). *)
val subst_scalar_stmts : name:string -> value:expr -> stmt list -> stmt list

(** Map over the immediate statements of a list, without descending. *)
val map_toplevel : (stmt -> stmt) -> stmt list -> stmt list

(** Rewrite every statement bottom-up: children first, then the parent. *)
val rewrite_stmts : (stmt -> stmt) -> stmt list -> stmt list

(** Structural statement count (loops, assigns, ifs, reads, prints). *)
val stmt_count : stmt list -> int

(** A fresh name based on [base] that clashes with nothing in [taken]. *)
val fresh_name : taken:string list -> string -> string
