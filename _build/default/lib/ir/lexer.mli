(** Hand-written lexer for the small Fortran-like surface language.
    Keywords are case-insensitive; comments run from [//] or [!] to the
    end of the line. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | ASSIGN  (** [=] in statement position *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQ  (** [==] *)
  | NE
  | LT
  | LE
  | GT
  | GE
  | KW of string  (** lower-cased keyword: program, for, end, if, ... *)
  | EOF

type t = { token : token; line : int }

exception Lex_error of string * int  (** message, line *)

(** Tokenise a whole source string. The final element is [EOF]. *)
val tokenize : string -> t list

val token_to_string : token -> string
