(** Recursive-descent parser for the surface language.

    {v
    program axpy
      real a[100] = linear(1.0, 0.5)
      real b[100]
      real s
      live_out a, s
      for i = 1, 100
        a[i] = a[i] + 2.0 * b[i]
      end for
      print s
    end
    v}

    Comparison inside conditions uses [==] (or a single [=], tolerated to
    match the paper's pseudo-code), [<>], [<], [<=], [>], [>=].  [for]
    loops take [lo, hi] or [lo, hi, step] and are closed by [end for] (or
    [endfor]); [if (cond) ... else ... end if] likewise.  The parsed
    program is checked with {!Check.check} before being returned. *)

type parse_error = { message : string; line : int }

val pp_parse_error : Format.formatter -> parse_error -> unit

val parse_program : string -> (Ast.program, parse_error) result

(** Parse and raise [Invalid_argument] on failure — for tests and inline
    program literals. *)
val parse_program_exn : string -> Ast.program

(** Parse a standalone expression (used by the REPL-ish CLI). *)
val parse_expr : string -> (Ast.expr, parse_error) result
