(** Concise combinators for constructing IR programs.

    Workload definitions read close to the paper's pseudo-code:
    {[
      let open Bw_ir.Builder in
      program "axpy" ~decls:[ array "a" [ n ]; array "b" [ n ] ]
        ~live_out:[ "a" ]
        [ for_ "i" (int 1) (int n)
            [ "a" $. [ v "i" ] <-- (("a" $ [ v "i" ]) +: ("b" $ [ v "i" ])) ] ]
    ]} *)

open Ast

let int n = Int_lit n
let fl x = Float_lit x
let v name = Scalar name

(** Array element read: ["a" $ [v "i"; v "j"]]. *)
let ( $ ) name indices = Element (name, indices)

(** Array element lvalue: ["a" $. [v "i"]]. *)
let ( $. ) name indices = Lelement (name, indices)

let sc name = Lscalar name
let ( +: ) a b = Binary (Add, a, b)
let ( -: ) a b = Binary (Sub, a, b)
let ( *: ) a b = Binary (Mul, a, b)
let ( /: ) a b = Binary (Div, a, b)
let ( %: ) a b = Binary (Mod, a, b)
let min_ a b = Binary (Min, a, b)
let max_ a b = Binary (Max, a, b)
let neg a = Unary (Neg, a)
let abs_ a = Unary (Abs, a)
let sqrt_ a = Unary (Sqrt, a)
let to_float a = Unary (Int_to_float, a)
let call name args = Call (name, args)
let ( =: ) a b = Cmp (Eq, a, b)
let ( <>: ) a b = Cmp (Ne, a, b)
let ( <: ) a b = Cmp (Lt, a, b)
let ( <=: ) a b = Cmp (Le, a, b)
let ( >: ) a b = Cmp (Gt, a, b)
let ( >=: ) a b = Cmp (Ge, a, b)
let and_ a b = And (a, b)
let or_ a b = Or (a, b)
let not_ a = Not a

(** Assignment: [lhs <-- rhs]. *)
let ( <-- ) lhs rhs = Assign (lhs, rhs)

let for_ ?(step = Int_lit 1) index lo hi body =
  For { index; lo; hi; step; body }

let if_ cond then_ else_ = If (cond, then_, else_)
let read lv = Read_input lv
let print e = Print e

let scalar ?(dtype = F64) ?(init = Init_zero) var_name =
  { var_name; dtype; dims = []; init }

let array ?(dtype = F64) ?(init = Init_linear (1.0, 0.001)) var_name dims =
  if List.exists (fun d -> d <= 0) dims then
    invalid_arg "Builder.array: non-positive extent";
  { var_name; dtype; dims; init }

let int_scalar ?(init = Init_zero) var_name =
  { var_name; dtype = I64; dims = []; init }

let program ?(live_out = []) prog_name ~decls body =
  { prog_name; decls; body; live_out }
