open Ast

let rec subexprs e =
  e
  ::
  (match e with
  | Int_lit _ | Float_lit _ | Scalar _ -> []
  | Element (_, idxs) -> List.concat_map subexprs idxs
  | Unary (_, a) -> subexprs a
  | Binary (_, a, b) -> subexprs a @ subexprs b
  | Call (_, args) -> List.concat_map subexprs args)

let rec fold_cond_exprs f acc = function
  | Cmp (_, a, b) -> f (f acc a) b
  | And (a, b) | Or (a, b) -> fold_cond_exprs f (fold_cond_exprs f acc a) b
  | Not a -> fold_cond_exprs f acc a

let lvalue_exprs = function Lscalar _ -> [] | Lelement (_, idxs) -> idxs

let rec fold_stmt_exprs f acc stmt =
  match stmt with
  | Assign (lv, e) -> f (List.fold_left f acc (lvalue_exprs lv)) e
  | Read_input lv -> List.fold_left f acc (lvalue_exprs lv)
  | Print e -> f acc e
  | If (c, t, e) ->
    let acc = fold_cond_exprs f acc c in
    fold_stmts_exprs f (fold_stmts_exprs f acc t) e
  | For { lo; hi; step; body; _ } ->
    let acc = f (f (f acc lo) hi) step in
    fold_stmts_exprs f acc body

and fold_stmts_exprs f acc stmts = List.fold_left (fold_stmt_exprs f) acc stmts

let rec fold_stmts f acc stmts =
  List.fold_left
    (fun acc s ->
      let acc = f acc s in
      match s with
      | If (_, t, e) -> fold_stmts f (fold_stmts f acc t) e
      | For { body; _ } -> fold_stmts f acc body
      | Assign _ | Read_input _ | Print _ -> acc)
    acc stmts

let rec expr_reads = function
  | Int_lit _ | Float_lit _ -> []
  | Scalar s -> [ s ]
  | Element (a, idxs) -> a :: List.concat_map expr_reads idxs
  | Unary (_, e) -> expr_reads e
  | Binary (_, a, b) -> expr_reads a @ expr_reads b
  | Call (_, args) -> List.concat_map expr_reads args

let rec expr_array_reads = function
  | Int_lit _ | Float_lit _ | Scalar _ -> []
  | Element (a, idxs) -> a :: List.concat_map expr_array_reads idxs
  | Unary (_, e) -> expr_array_reads e
  | Binary (_, a, b) -> expr_array_reads a @ expr_array_reads b
  | Call (_, args) -> List.concat_map expr_array_reads args

let dedup_keep_order names =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun n ->
      if Hashtbl.mem seen n then false
      else begin
        Hashtbl.add seen n ();
        true
      end)
    names

let vars_read stmts =
  fold_stmts_exprs (fun acc e -> acc @ expr_reads e) [] stmts
  |> dedup_keep_order

let vars_written stmts =
  fold_stmts
    (fun acc s ->
      match s with
      | Assign (lv, _) | Read_input lv -> acc @ [ lvalue_name lv ]
      | If _ | For _ | Print _ -> acc)
    [] stmts
  |> dedup_keep_order

let arrays_accessed program stmts =
  let is_array name =
    match find_decl program name with Some d -> is_array d | None -> false
  in
  (vars_read stmts @ vars_written stmts)
  |> List.filter is_array |> dedup_keep_order

let loop_indices stmts =
  fold_stmts
    (fun acc s -> match s with For { index; _ } -> acc @ [ index ] | _ -> acc)
    [] stmts
  |> dedup_keep_order

let rec subst_scalar ~name ~value e =
  let recur = subst_scalar ~name ~value in
  match e with
  | Scalar s when s = name -> value
  | Int_lit _ | Float_lit _ | Scalar _ -> e
  | Element (a, idxs) -> Element (a, List.map recur idxs)
  | Unary (op, a) -> Unary (op, recur a)
  | Binary (op, a, b) -> Binary (op, recur a, recur b)
  | Call (f, args) -> Call (f, List.map recur args)

let rec subst_cond ~name ~value c =
  let fe = subst_scalar ~name ~value and fc = subst_cond ~name ~value in
  match c with
  | Cmp (op, a, b) -> Cmp (op, fe a, fe b)
  | And (a, b) -> And (fc a, fc b)
  | Or (a, b) -> Or (fc a, fc b)
  | Not a -> Not (fc a)

let subst_lvalue ~name ~value = function
  | Lscalar s -> Lscalar s
  | Lelement (a, idxs) ->
    Lelement (a, List.map (subst_scalar ~name ~value) idxs)

let rec subst_scalar_stmt ~name ~value s =
  let fe = subst_scalar ~name ~value in
  match s with
  | Assign (lv, e) ->
    if lvalue_name lv = name then
      invalid_arg "Ast_util.subst_scalar_stmts: variable is written";
    Assign (subst_lvalue ~name ~value lv, fe e)
  | Read_input lv ->
    if lvalue_name lv = name then
      invalid_arg "Ast_util.subst_scalar_stmts: variable is written";
    Read_input (subst_lvalue ~name ~value lv)
  | Print e -> Print (fe e)
  | If (c, t, e) ->
    If
      ( subst_cond ~name ~value c,
        subst_scalar_stmts ~name ~value t,
        subst_scalar_stmts ~name ~value e )
  | For l ->
    if l.index = name then
      (* The loop rebinds the name: bounds still see the outer value. *)
      For { l with lo = fe l.lo; hi = fe l.hi; step = fe l.step }
    else
      For
        { l with
          lo = fe l.lo;
          hi = fe l.hi;
          step = fe l.step;
          body = subst_scalar_stmts ~name ~value l.body }

and subst_scalar_stmts ~name ~value stmts =
  List.map (subst_scalar_stmt ~name ~value) stmts

let rename_scalar ~from ~into stmts =
  let rec rn_expr e =
    match e with
    | Scalar s when s = from -> Scalar into
    | Int_lit _ | Float_lit _ | Scalar _ -> e
    | Element (a, idxs) -> Element (a, List.map rn_expr idxs)
    | Unary (op, a) -> Unary (op, rn_expr a)
    | Binary (op, a, b) -> Binary (op, rn_expr a, rn_expr b)
    | Call (f, args) -> Call (f, List.map rn_expr args)
  in
  let rec rn_cond = function
    | Cmp (op, a, b) -> Cmp (op, rn_expr a, rn_expr b)
    | And (a, b) -> And (rn_cond a, rn_cond b)
    | Or (a, b) -> Or (rn_cond a, rn_cond b)
    | Not a -> Not (rn_cond a)
  in
  let rn_lvalue = function
    | Lscalar s -> Lscalar (if s = from then into else s)
    | Lelement (a, idxs) -> Lelement (a, List.map rn_expr idxs)
  in
  let rec rn_stmt = function
    | Assign (lv, e) -> Assign (rn_lvalue lv, rn_expr e)
    | Read_input lv -> Read_input (rn_lvalue lv)
    | Print e -> Print (rn_expr e)
    | If (c, t, e) -> If (rn_cond c, List.map rn_stmt t, List.map rn_stmt e)
    | For l ->
      For
        { index = (if l.index = from then into else l.index);
          lo = rn_expr l.lo;
          hi = rn_expr l.hi;
          step = rn_expr l.step;
          body = List.map rn_stmt l.body }
  in
  List.map rn_stmt stmts

let map_toplevel f stmts = List.map f stmts

let rec rewrite_stmts f stmts =
  List.map
    (fun s ->
      let s' =
        match s with
        | If (c, t, e) -> If (c, rewrite_stmts f t, rewrite_stmts f e)
        | For l -> For { l with body = rewrite_stmts f l.body }
        | Assign _ | Read_input _ | Print _ -> s
      in
      f s')
    stmts

let stmt_count stmts = fold_stmts (fun acc _ -> acc + 1) 0 stmts

let fresh_name ~taken base =
  if not (List.mem base taken) then base
  else
    let rec go i =
      let candidate = Printf.sprintf "%s%d" base i in
      if List.mem candidate taken then go (i + 1) else candidate
    in
    go 1
