lib/ir/lexer.pp.mli:
