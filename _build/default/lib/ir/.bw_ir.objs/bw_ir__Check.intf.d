lib/ir/check.pp.mli: Ast Format
