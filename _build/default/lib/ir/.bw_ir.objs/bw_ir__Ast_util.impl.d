lib/ir/ast_util.pp.ml: Ast Hashtbl List Printf
