lib/ir/builder.pp.mli: Ast
