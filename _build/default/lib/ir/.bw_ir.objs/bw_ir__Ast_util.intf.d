lib/ir/ast_util.pp.mli: Ast
