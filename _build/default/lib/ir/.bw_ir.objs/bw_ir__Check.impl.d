lib/ir/check.pp.ml: Ast Format Hashtbl List Pretty Printf String
