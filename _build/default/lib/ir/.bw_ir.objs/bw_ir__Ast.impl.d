lib/ir/ast.pp.ml: List Ppx_deriving_runtime
