lib/ir/pretty.pp.mli: Ast Format
