lib/ir/lexer.pp.ml: List Printf String
