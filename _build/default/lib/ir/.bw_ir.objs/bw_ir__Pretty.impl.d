lib/ir/pretty.pp.ml: Ast Format List String
