lib/ir/builder.pp.ml: Ast List
