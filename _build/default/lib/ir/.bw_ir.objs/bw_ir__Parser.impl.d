lib/ir/parser.pp.ml: Ast Check Format Lexer List Printf String
