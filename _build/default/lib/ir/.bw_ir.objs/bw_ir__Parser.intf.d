lib/ir/parser.pp.mli: Ast Format
