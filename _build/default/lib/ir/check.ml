open Ast

type error = { context : string; message : string }

let pp_error ppf e = Format.fprintf ppf "[%s] %s" e.context e.message

type env = {
  decls : (string, decl) Hashtbl.t;
  mutable loop_stack : string list;
  mutable errors : error list;
  mutable context : string;
}

let add_error env message =
  env.errors <- { context = env.context; message } :: env.errors

let lookup_dtype env name =
  if List.mem name env.loop_stack then Some I64
  else
    match Hashtbl.find_opt env.decls name with
    | Some d when d.dims = [] -> Some d.dtype
    | Some _ | None -> None

let rec infer ~lookup e =
  let both a b =
    match (infer ~lookup a, infer ~lookup b) with
    | Ok ta, Ok tb ->
      if ta = tb then Ok ta
      else Error (Printf.sprintf "mixed operand types in %s" (Pretty.expr_to_string e))
    | (Error _ as err), _ | _, (Error _ as err) -> err
  in
  match e with
  | Int_lit _ -> Ok I64
  | Float_lit _ -> Ok F64
  | Scalar s -> (
    match lookup s with
    | Some t -> Ok t
    | None -> Error (Printf.sprintf "undeclared scalar '%s'" s))
  | Element (_, _) ->
    (* resolved by the caller, which knows the array decls *)
    Error "Element outside of checker context"
  | Unary (Neg, a) | Unary (Abs, a) -> infer ~lookup a
  | Unary (Sqrt, a) -> (
    match infer ~lookup a with
    | Ok F64 -> Ok F64
    | Ok I64 -> Error "sqrt of an integer expression"
    | Error _ as err -> err)
  | Unary (Int_to_float, a) -> (
    match infer ~lookup a with
    | Ok I64 -> Ok F64
    | Ok F64 -> Error "float() of a float expression"
    | Error _ as err -> err)
  | Binary (Mod, a, b) -> (
    match both a b with
    | Ok I64 -> Ok I64
    | Ok F64 -> Error "mod of float expressions"
    | Error _ as err -> err)
  | Binary (_, a, b) -> both a b
  | Call (_, args) ->
    let bad =
      List.filter_map
        (fun a ->
          match infer ~lookup a with
          | Ok F64 -> None
          | Ok I64 -> Some "integer argument to intrinsic call"
          | Error m -> Some m)
        args
    in
    (match bad with [] -> Ok F64 | m :: _ -> Error m)

let type_of_expr ~lookup e = infer ~lookup e

(* Full inference within the checker, resolving array elements. *)
let rec type_expr env e : dtype option =
  match e with
  | Int_lit _ -> Some I64
  | Float_lit _ -> Some F64
  | Scalar s -> (
    match lookup_dtype env s with
    | Some t -> Some t
    | None ->
      (match Hashtbl.find_opt env.decls s with
      | Some d when d.dims <> [] ->
        add_error env
          (Printf.sprintf "array '%s' used without subscripts" s)
      | _ -> add_error env (Printf.sprintf "undeclared scalar '%s'" s));
      None)
  | Element (a, idxs) -> (
    match Hashtbl.find_opt env.decls a with
    | None ->
      add_error env (Printf.sprintf "undeclared array '%s'" a);
      None
    | Some d when d.dims = [] ->
      add_error env (Printf.sprintf "scalar '%s' used with subscripts" a);
      None
    | Some d ->
      if List.length idxs <> List.length d.dims then
        add_error env
          (Printf.sprintf "array '%s' has %d dims but %d subscripts" a
             (List.length d.dims) (List.length idxs));
      List.iter
        (fun idx ->
          match type_expr env idx with
          | Some I64 | None -> ()
          | Some F64 ->
            add_error env
              (Printf.sprintf "non-integer subscript %s of '%s'"
                 (Pretty.expr_to_string idx) a))
        idxs;
      Some d.dtype)
  | Unary (Neg, a) | Unary (Abs, a) -> type_expr env a
  | Unary (Sqrt, a) -> (
    match type_expr env a with
    | Some F64 | None -> Some F64
    | Some I64 ->
      add_error env "sqrt of an integer expression";
      Some F64)
  | Unary (Int_to_float, a) -> (
    match type_expr env a with
    | Some I64 | None -> Some F64
    | Some F64 ->
      add_error env "float() of an already-float expression";
      Some F64)
  | Binary (Mod, a, b) ->
    let ta = type_expr env a and tb = type_expr env b in
    (match (ta, tb) with
    | Some F64, _ | _, Some F64 ->
      add_error env "mod of float expressions";
      Some I64
    | _ -> Some I64)
  | Binary (_, a, b) -> (
    let ta = type_expr env a and tb = type_expr env b in
    match (ta, tb) with
    | Some x, Some y when x <> y ->
      add_error env
        (Printf.sprintf "mixed operand types in %s" (Pretty.expr_to_string e));
      Some x
    | Some x, _ -> Some x
    | None, other -> other)
  | Call (_, args) ->
    List.iter
      (fun a ->
        match type_expr env a with
        | Some I64 -> add_error env "integer argument to intrinsic call"
        | Some F64 | None -> ())
      args;
    Some F64

let rec check_cond env = function
  | Cmp (_, a, b) ->
    let ta = type_expr env a and tb = type_expr env b in
    (match (ta, tb) with
    | Some x, Some y when x <> y -> add_error env "comparison of mixed types"
    | _ -> ())
  | And (a, b) | Or (a, b) ->
    check_cond env a;
    check_cond env b
  | Not a -> check_cond env a

let check_lvalue env lv : dtype option =
  match lv with
  | Lscalar s -> (
    if List.mem s env.loop_stack then begin
      add_error env (Printf.sprintf "assignment to loop index '%s'" s);
      None
    end
    else
      match Hashtbl.find_opt env.decls s with
      | Some d when d.dims = [] -> Some d.dtype
      | Some _ ->
        add_error env (Printf.sprintf "array '%s' assigned as a scalar" s);
        None
      | None ->
        add_error env (Printf.sprintf "assignment to undeclared '%s'" s);
        None)
  | Lelement (a, idxs) -> type_expr env (Element (a, idxs))

let expect_int env what e =
  match type_expr env e with
  | Some I64 | None -> ()
  | Some F64 ->
    add_error env (Printf.sprintf "%s must be an integer expression" what)

let rec check_stmt env s =
  match s with
  | Assign (lv, e) ->
    env.context <- Format.asprintf "%a" Pretty.pp_stmt s;
    let tl = check_lvalue env lv and tr = type_expr env e in
    (match (tl, tr) with
    | Some a, Some b when a <> b ->
      add_error env "assignment between mixed types"
    | _ -> ())
  | Read_input lv ->
    env.context <- Format.asprintf "%a" Pretty.pp_stmt s;
    ignore (check_lvalue env lv)
  | Print e ->
    env.context <- Format.asprintf "%a" Pretty.pp_stmt s;
    ignore (type_expr env e)
  | If (c, t, e) ->
    env.context <- "if";
    check_cond env c;
    List.iter (check_stmt env) t;
    List.iter (check_stmt env) e
  | For { index; lo; hi; step; body } ->
    env.context <- Printf.sprintf "for %s" index;
    if Hashtbl.mem env.decls index then
      add_error env
        (Printf.sprintf "loop index '%s' shadows a declaration" index);
    if List.mem index env.loop_stack then
      add_error env
        (Printf.sprintf "loop index '%s' shadows an enclosing loop" index);
    expect_int env "loop lower bound" lo;
    expect_int env "loop upper bound" hi;
    expect_int env "loop step" step;
    env.loop_stack <- index :: env.loop_stack;
    List.iter (check_stmt env) body;
    env.loop_stack <- List.tl env.loop_stack

let check (p : program) =
  let decls = Hashtbl.create 16 in
  let errors = ref [] in
  List.iter
    (fun d ->
      if Hashtbl.mem decls d.var_name then
        errors :=
          { context = "decls";
            message = Printf.sprintf "duplicate declaration '%s'" d.var_name }
          :: !errors;
      if List.exists (fun e -> e <= 0) d.dims then
        errors :=
          { context = "decls";
            message = Printf.sprintf "non-positive extent in '%s'" d.var_name }
          :: !errors;
      Hashtbl.replace decls d.var_name d)
    p.decls;
  List.iter
    (fun name ->
      if not (Hashtbl.mem decls name) then
        errors :=
          { context = "live_out";
            message = Printf.sprintf "undeclared live-out '%s'" name }
          :: !errors)
    p.live_out;
  let env = { decls; loop_stack = []; errors = !errors; context = "body" } in
  List.iter (check_stmt env) p.body;
  match env.errors with [] -> Ok () | es -> Error (List.rev es)

let check_exn p =
  match check p with
  | Ok () -> ()
  | Error es ->
    let msg =
      es
      |> List.map (fun e -> Format.asprintf "%a" pp_error e)
      |> String.concat "; "
    in
    invalid_arg (Printf.sprintf "program '%s' ill-formed: %s" p.prog_name msg)
