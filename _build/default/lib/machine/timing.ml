type breakdown = {
  cpu_time : float;
  register_time : float;
  boundary_times : (string * float) list;
  total : float;
  binding_resource : string;
}

let memory_bytes cache =
  Cache.memory_bytes_in cache + Cache.memory_bytes_out cache

let predict (machine : Machine.t) cache counters =
  let cpu_time = float_of_int counters.Counters.flops /. machine.flops_per_sec in
  let register_time =
    float_of_int (Counters.register_bytes counters)
    /. machine.register_bandwidth
  in
  let n_levels = Cache.level_count cache in
  let boundary_name i =
    if i = n_levels - 1 then Printf.sprintf "Mem-L%d" (i + 1)
    else Printf.sprintf "L%d-L%d" (i + 2) (i + 1)
  in
  let bandwidths = Array.of_list machine.cache_bandwidths in
  if Array.length bandwidths <> n_levels then
    invalid_arg "Timing.predict: machine bandwidths do not match cache levels";
  let boundary_times =
    List.init n_levels (fun i ->
        let bytes =
          if i = n_levels - 1 then
            float_of_int (Cache.memory_bytes_in cache)
            +. (machine.writeback_penalty
               *. float_of_int (Cache.memory_bytes_out cache))
          else float_of_int (Cache.boundary_bytes cache i)
        in
        (boundary_name i, bytes /. bandwidths.(i)))
  in
  let all =
    ("CPU", cpu_time) :: ("L1-Reg", register_time) :: boundary_times
  in
  let binding_resource, total =
    List.fold_left
      (fun (bn, bt) (n, t) -> if t > bt then (n, t) else (bn, bt))
      ("CPU", cpu_time) all
  in
  { cpu_time; register_time; boundary_times; total; binding_resource }

let effective_bandwidth machine cache counters =
  let b = predict machine cache counters in
  if b.total <= 0.0 then 0.0 else float_of_int (memory_bytes cache) /. b.total

let memory_utilisation machine cache counters =
  let bw = effective_bandwidth machine cache counters in
  let mem_bw =
    match List.rev machine.cache_bandwidths with
    | last :: _ -> last
    | [] -> machine.register_bandwidth
  in
  Float.min 1.0 (bw /. mem_bw)

let pp_breakdown ppf b =
  Format.fprintf ppf "@[<v>CPU      %8.4f ms@,L1-Reg   %8.4f ms@,"
    (b.cpu_time *. 1e3)
    (b.register_time *. 1e3);
  List.iter
    (fun (name, t) -> Format.fprintf ppf "%-8s %8.4f ms@," name (t *. 1e3))
    b.boundary_times;
  Format.fprintf ppf "total    %8.4f ms (bound by %s)@]" (b.total *. 1e3)
    b.binding_resource

let predict_with_latency machine cache counters ~miss_latency ~overlap =
  if overlap < 0.0 || overlap > 1.0 then
    invalid_arg "Timing.predict_with_latency: overlap must be in [0,1]";
  let b = predict machine cache counters in
  let exposed =
    (1.0 -. overlap)
    *. float_of_int (Cache.memory_lines_in cache)
    *. miss_latency
  in
  b.total +. exposed
