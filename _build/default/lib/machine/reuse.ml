(* Fenwick (binary indexed) tree over access timestamps: position [i]
   holds 1 while timestamp [i] is the most recent access to its block.
   The raw bit array is kept alongside so the tree can be rebuilt when it
   grows. *)
type t = {
  granularity : int;
  last_access : (int, int) Hashtbl.t; (* block -> timestamp *)
  mutable bits : Bytes.t; (* bits.(t) = 1 if timestamp t is active *)
  mutable fen : int array; (* 1-based Fenwick over bits *)
  mutable time : int;
  mutable cold : int;
  mutable finite_counts : int array; (* log2-bucket histogram *)
}

let create ~granularity () =
  if granularity <= 0 || granularity land (granularity - 1) <> 0 then
    invalid_arg "Reuse.create: granularity must be a positive power of two";
  { granularity;
    last_access = Hashtbl.create 4096;
    bits = Bytes.make 1024 '\000';
    fen = Array.make 1025 0;
    time = 0;
    cold = 0;
    finite_counts = Array.make 64 0 }

let ensure_capacity t wanted =
  let cap = Bytes.length t.bits in
  if wanted >= cap then begin
    let cap' = max (2 * cap) (wanted + 1) in
    let bits' = Bytes.make cap' '\000' in
    Bytes.blit t.bits 0 bits' 0 cap;
    t.bits <- bits';
    (* rebuild the Fenwick tree from the bit array *)
    let fen' = Array.make (cap' + 1) 0 in
    for i = 0 to cap - 1 do
      if Bytes.get t.bits i = '\001' then begin
        let rec add j =
          if j <= cap' then begin
            fen'.(j) <- fen'.(j) + 1;
            add (j + (j land -j))
          end
        in
        add (i + 1)
      end
    done;
    t.fen <- fen'
  end

let fen_add t i delta =
  let n = Array.length t.fen - 1 in
  let rec go j =
    if j <= n then begin
      t.fen.(j) <- t.fen.(j) + delta;
      go (j + (j land -j))
    end
  in
  go (i + 1)

(* count of active timestamps in [0, i] *)
let fen_prefix t i =
  let rec go j acc =
    if j <= 0 then acc else go (j - (j land -j)) (acc + t.fen.(j))
  in
  go (i + 1) 0

let bucket_of d =
  if d = 0 then 0
  else begin
    let rec log2 x acc = if x <= 1 then acc else log2 (x lsr 1) (acc + 1) in
    1 + log2 d 0
  end

let access t ~addr =
  if addr < 0 then invalid_arg "Reuse.access: negative address";
  let block = addr / t.granularity in
  ensure_capacity t t.time;
  (match Hashtbl.find_opt t.last_access block with
  | None -> t.cold <- t.cold + 1
  | Some t0 ->
    (* distinct blocks touched strictly after t0 *)
    let active_after = fen_prefix t (t.time - 1) - fen_prefix t t0 in
    let b = bucket_of active_after in
    if b >= Array.length t.finite_counts then begin
      let counts' = Array.make (2 * b) 0 in
      Array.blit t.finite_counts 0 counts' 0 (Array.length t.finite_counts);
      t.finite_counts <- counts'
    end;
    t.finite_counts.(b) <- t.finite_counts.(b) + 1;
    (* deactivate the previous access *)
    Bytes.set t.bits t0 '\000';
    fen_add t t0 (-1));
  Bytes.set t.bits t.time '\001';
  fen_add t t.time 1;
  Hashtbl.replace t.last_access block t.time;
  t.time <- t.time + 1

let total t = t.time
let cold t = t.cold
let footprint_blocks t = Hashtbl.length t.last_access

let bucket_lower b = if b = 0 then 0 else 1 lsl (b - 1)

let histogram t =
  Array.to_list t.finite_counts
  |> List.mapi (fun b count -> (bucket_lower b, count))
  |> List.filter (fun (_, c) -> c > 0)

let misses t ~capacity_blocks =
  if capacity_blocks <= 0 then t.time
  else begin
    (* finite distances >= capacity miss; bucket granularity makes this
       exact only at power-of-two capacities, so count buckets whose
       entire range is >= capacity and prorate the straddling bucket
       assuming a uniform distribution inside it. *)
    let hits_and_misses =
      Array.to_list t.finite_counts
      |> List.mapi (fun b count -> (b, count))
      |> List.fold_left
           (fun acc (b, count) ->
             if count = 0 then acc
             else begin
               let lo = bucket_lower b in
               let hi = if b = 0 then 1 else 2 * lo in
               if lo >= capacity_blocks then acc + count
               else if hi <= capacity_blocks then acc
               else begin
                 (* straddling bucket *)
                 let frac =
                   float_of_int (hi - capacity_blocks)
                   /. float_of_int (hi - lo)
                 in
                 acc + int_of_float (frac *. float_of_int count)
               end
             end)
           0
    in
    hits_and_misses + t.cold
  end

let miss_ratio t ~capacity_blocks =
  if t.time = 0 then 0.0
  else float_of_int (misses t ~capacity_blocks) /. float_of_int t.time

let curve t ~sizes =
  List.map
    (fun size ->
      (size, miss_ratio t ~capacity_blocks:(max 1 (size / t.granularity))))
    sizes
