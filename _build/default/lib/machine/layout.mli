(** Virtual-address layout of program variables.

    Arrays are placed one after another in declaration order, 8-byte
    aligned, separated by the machine's stagger padding; scalars live in
    their own region and are treated as register-resident (they generate
    no cache traffic).  The base address is nonzero so that address 0
    never aliases real data. *)

type t

(** [assign ~stagger_bytes vars] places [vars = (name, bytes)] in order.
    [align_bytes] (default 8, must be a power of two) aligns each base. *)
val assign : ?align_bytes:int -> stagger_bytes:int -> (string * int) list -> t

(** Base virtual address of a variable.
    @raise Not_found for unknown names. *)
val base : t -> string -> int

(** End of the highest allocation (exclusive). *)
val limit : t -> int

val pp : Format.formatter -> t -> unit
