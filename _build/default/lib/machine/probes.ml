type stream_result = { copy : float; scale : float; add : float; triad : float }

(* Run one kernel: per element, [reads] arrays are loaded and [writes]
   arrays stored, plus [flops] floating-point operations.  Returns the
   STREAM-style bandwidth: the benchmark's nominal bytes (it counts one
   read + one write per participating array element, no write-allocate
   traffic) divided by the model's predicted time. *)
let run_kernel machine ~elements ~read_arrays ~write_arrays ~flops_per_elem =
  let cache = Machine.fresh_cache machine in
  let translation = Machine.fresh_translation machine in
  let counters = Counters.create () in
  let bytes = 8 in
  let all_arrays = read_arrays @ write_arrays in
  let layout =
    Layout.assign ~align_bytes:machine.Machine.array_align_bytes
      ~stagger_bytes:machine.Machine.array_stagger_bytes
      (List.map (fun name -> (name, elements * bytes)) all_arrays)
  in
  for i = 0 to elements - 1 do
    List.iter
      (fun name ->
        let addr = Translate.apply translation (Layout.base layout name + (i * bytes)) in
        Cache.read cache ~addr ~bytes;
        counters.Counters.loads <- counters.Counters.loads + 1)
      read_arrays;
    List.iter
      (fun name ->
        let addr = Translate.apply translation (Layout.base layout name + (i * bytes)) in
        Cache.write cache ~addr ~bytes;
        counters.Counters.stores <- counters.Counters.stores + 1)
      write_arrays;
    counters.Counters.flops <- counters.Counters.flops + flops_per_elem
  done;
  Cache.flush cache;
  let b = Timing.predict machine cache counters in
  let nominal_bytes =
    float_of_int (List.length all_arrays * elements * bytes)
  in
  nominal_bytes /. b.Timing.total /. 1e6

let stream ?(elements = 2_000_000) machine =
  { copy =
      run_kernel machine ~elements ~read_arrays:[ "a" ] ~write_arrays:[ "c" ]
        ~flops_per_elem:0;
    scale =
      run_kernel machine ~elements ~read_arrays:[ "c" ] ~write_arrays:[ "b" ]
        ~flops_per_elem:1;
    add =
      run_kernel machine ~elements ~read_arrays:[ "a"; "b" ]
        ~write_arrays:[ "c" ] ~flops_per_elem:1;
    triad =
      run_kernel machine ~elements ~read_arrays:[ "b"; "c" ]
        ~write_arrays:[ "a" ] ~flops_per_elem:2 }

let cache_read_curve machine ~sizes =
  List.map
    (fun size ->
      let elements = max 1 (size / 8) in
      let sweeps = max 2 (1 + (4_000_000 / max 1 size)) in
      let cache = Machine.fresh_cache machine in
      let translation = Machine.fresh_translation machine in
      let counters = Counters.create () in
      let layout = Layout.assign ~stagger_bytes:0 [ ("a", elements * 8) ] in
      let base = Layout.base layout "a" in
      for _ = 1 to sweeps do
        for i = 0 to elements - 1 do
          let addr = Translate.apply translation (base + (i * 8)) in
          Cache.read cache ~addr ~bytes:8;
          counters.Counters.loads <- counters.Counters.loads + 1;
          counters.Counters.flops <- counters.Counters.flops + 1
        done
      done;
      let b = Timing.predict machine cache counters in
      let bytes_touched = float_of_int (sweeps * elements * 8) in
      (size, bytes_touched /. b.Timing.total /. 1e6))
    sizes

let sustained_memory_bandwidth machine =
  let elements = 2_000_000 in
  let cache = Machine.fresh_cache machine in
  let translation = Machine.fresh_translation machine in
  let counters = Counters.create () in
  let layout = Layout.assign ~stagger_bytes:0 [ ("a", elements * 8) ] in
  let base = Layout.base layout "a" in
  for i = 0 to elements - 1 do
    let addr = Translate.apply translation (base + (i * 8)) in
    Cache.read cache ~addr ~bytes:8;
    counters.Counters.loads <- counters.Counters.loads + 1;
    counters.Counters.flops <- counters.Counters.flops + 1
  done;
  let b = Timing.predict machine cache counters in
  float_of_int (Timing.memory_bytes cache) /. b.Timing.total
