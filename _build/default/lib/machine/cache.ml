type geometry = { size_bytes : int; line_bytes : int; associativity : int }

exception Bad_geometry of string

type level_stats = {
  mutable reads : int;
  mutable writes : int;
  mutable read_misses : int;
  mutable write_misses : int;
  mutable writebacks : int;
}

type level = {
  geometry : geometry;
  n_sets : int;
  (* way-major storage: slot = set * associativity + way *)
  tags : int array;
  valid : bool array;
  dirty : bool array;
  last_use : int array;
  stats : level_stats;
}

type write_policy = Write_back | Write_through

type t = {
  levels : level array;
  policy : write_policy;
  mutable clock : int;
  mutable mem_lines_in : int;
  mutable mem_lines_out : int;
  mem_line_bytes : int; (* line size used to charge memory traffic *)
}

let is_power_of_two x = x > 0 && x land (x - 1) = 0

let fresh_stats () =
  { reads = 0; writes = 0; read_misses = 0; write_misses = 0; writebacks = 0 }

let make_level g =
  if g.size_bytes <= 0 || g.line_bytes <= 0 || g.associativity <= 0 then
    raise (Bad_geometry "non-positive cache parameter");
  if not (is_power_of_two g.line_bytes) then
    raise (Bad_geometry "line size must be a power of two");
  if g.size_bytes mod (g.line_bytes * g.associativity) <> 0 then
    raise (Bad_geometry "size not divisible by line * associativity");
  let n_sets = g.size_bytes / (g.line_bytes * g.associativity) in
  let slots = n_sets * g.associativity in
  { geometry = g;
    n_sets;
    tags = Array.make slots 0;
    valid = Array.make slots false;
    dirty = Array.make slots false;
    last_use = Array.make slots 0;
    stats = fresh_stats () }

let create ?(write_policy = Write_back) geometries =
  let levels = Array.of_list (List.map make_level geometries) in
  let mem_line_bytes =
    match Array.length levels with
    | 0 -> 8 (* uncached machine: charge memory per 8-byte word *)
    | n -> levels.(n - 1).geometry.line_bytes
  in
  { levels; policy = write_policy; clock = 0; mem_lines_in = 0;
    mem_lines_out = 0; mem_line_bytes }

let level_count t = Array.length t.levels

let geometry t i =
  if i < 0 || i >= Array.length t.levels then invalid_arg "Cache.geometry";
  t.levels.(i).geometry

let stats t i =
  if i < 0 || i >= Array.length t.levels then invalid_arg "Cache.stats";
  t.levels.(i).stats

(* Access one line at [line_addr] (in units of this level's line size) at
   level [i]; recurses down on misses and write-backs. *)
let rec access_line t i ~byte_addr ~is_write =
  if i >= Array.length t.levels then begin
    (* main memory *)
    if is_write then t.mem_lines_out <- t.mem_lines_out + 1
    else t.mem_lines_in <- t.mem_lines_in + 1
  end
  else begin
    let level = t.levels.(i) in
    let g = level.geometry in
    let line_addr = byte_addr / g.line_bytes in
    let set = line_addr mod level.n_sets in
    let tag = line_addr / level.n_sets in
    let s = level.stats in
    if is_write then s.writes <- s.writes + 1 else s.reads <- s.reads + 1;
    t.clock <- t.clock + 1;
    let base = set * g.associativity in
    (* look for a hit *)
    let hit_way = ref (-1) in
    for w = 0 to g.associativity - 1 do
      let slot = base + w in
      if level.valid.(slot) && level.tags.(slot) = tag then hit_way := w
    done;
    if !hit_way >= 0 then begin
      let slot = base + !hit_way in
      level.last_use.(slot) <- t.clock;
      match t.policy with
      | Write_back -> if is_write then level.dirty.(slot) <- true
      | Write_through ->
        (* hit updates the line; the store still goes down *)
        if is_write then begin
          s.writebacks <- s.writebacks + 1;
          access_line t (i + 1) ~byte_addr ~is_write:true
        end
    end
    else if t.policy = Write_through && is_write then begin
      (* no-write-allocate: count the miss, forward the store *)
      s.write_misses <- s.write_misses + 1;
      s.writebacks <- s.writebacks + 1;
      access_line t (i + 1) ~byte_addr ~is_write:true
    end
    else begin
      if is_write then s.write_misses <- s.write_misses + 1
      else s.read_misses <- s.read_misses + 1;
      (* choose victim: invalid way if any, else LRU *)
      let victim = ref (-1) in
      for w = 0 to g.associativity - 1 do
        if !victim < 0 && not level.valid.(base + w) then victim := w
      done;
      if !victim < 0 then begin
        let best = ref 0 in
        for w = 1 to g.associativity - 1 do
          if level.last_use.(base + w) < level.last_use.(base + !best) then
            best := w
        done;
        victim := !best
      end;
      let slot = base + !victim in
      if level.valid.(slot) && level.dirty.(slot) then begin
        s.writebacks <- s.writebacks + 1;
        let victim_line = (level.tags.(slot) * level.n_sets) + set in
        access_line t (i + 1) ~byte_addr:(victim_line * g.line_bytes)
          ~is_write:true
      end;
      (* fetch the line from below (write-allocate on stores) *)
      access_line t (i + 1) ~byte_addr ~is_write:false;
      level.tags.(slot) <- tag;
      level.valid.(slot) <- true;
      level.dirty.(slot) <- is_write;
      level.last_use.(slot) <- t.clock
    end
  end

let top_line_bytes t =
  if Array.length t.levels = 0 then 8
  else t.levels.(0).geometry.line_bytes

let iter_lines t ~addr ~bytes f =
  if bytes <= 0 then invalid_arg "Cache: non-positive access size";
  if addr < 0 then invalid_arg "Cache: negative address";
  let line = top_line_bytes t in
  let first = addr / line and last = (addr + bytes - 1) / line in
  for l = first to last do
    f (l * line)
  done

let read t ~addr ~bytes =
  iter_lines t ~addr ~bytes (fun byte_addr ->
      access_line t 0 ~byte_addr ~is_write:false)

let write t ~addr ~bytes =
  iter_lines t ~addr ~bytes (fun byte_addr ->
      access_line t 0 ~byte_addr ~is_write:true)

let memory_lines_in t = t.mem_lines_in
let memory_lines_out t = t.mem_lines_out
let memory_bytes_in t = t.mem_lines_in * t.mem_line_bytes
let memory_bytes_out t = t.mem_lines_out * t.mem_line_bytes

let boundary_bytes t i =
  if i < 0 || i >= Array.length t.levels then invalid_arg "Cache.boundary_bytes";
  let s = t.levels.(i).stats in
  (s.read_misses + s.write_misses + s.writebacks)
  * t.levels.(i).geometry.line_bytes

let flush t =
  (* Evict dirty lines top-down so L1 dirt propagates through L2. *)
  Array.iteri
    (fun i level ->
      let g = level.geometry in
      Array.iteri
        (fun slot valid ->
          if valid && level.dirty.(slot) then begin
            let set = slot / g.associativity in
            let line_addr = (level.tags.(slot) * level.n_sets) + set in
            level.stats.writebacks <- level.stats.writebacks + 1;
            level.dirty.(slot) <- false;
            access_line t (i + 1) ~byte_addr:(line_addr * g.line_bytes)
              ~is_write:true
          end)
        level.valid)
    t.levels

let clear t =
  t.clock <- 0;
  t.mem_lines_in <- 0;
  t.mem_lines_out <- 0;
  Array.iter
    (fun level ->
      Array.fill level.valid 0 (Array.length level.valid) false;
      Array.fill level.dirty 0 (Array.length level.dirty) false;
      Array.fill level.last_use 0 (Array.length level.last_use) 0;
      let s = level.stats in
      s.reads <- 0;
      s.writes <- 0;
      s.read_misses <- 0;
      s.write_misses <- 0;
      s.writebacks <- 0)
    t.levels
