(** CPU-side event counters: the software analogue of the hardware
    counters the paper uses to measure program balance (flops, register
    loads/stores). *)

type t = {
  mutable flops : int;  (** floating-point operations *)
  mutable loads : int;  (** register loads from memory (array reads) *)
  mutable stores : int;  (** register stores to memory (array writes) *)
  mutable int_ops : int;  (** integer/address arithmetic, not flops *)
}

val create : unit -> t
val clear : t -> unit
val add : t -> t -> unit

(** Bytes moved between registers and L1: 8 bytes per load/store. *)
val register_bytes : t -> int

val pp : Format.formatter -> t -> unit
