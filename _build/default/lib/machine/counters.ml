type t = {
  mutable flops : int;
  mutable loads : int;
  mutable stores : int;
  mutable int_ops : int;
}

let create () = { flops = 0; loads = 0; stores = 0; int_ops = 0 }

let clear t =
  t.flops <- 0;
  t.loads <- 0;
  t.stores <- 0;
  t.int_ops <- 0

let add t other =
  t.flops <- t.flops + other.flops;
  t.loads <- t.loads + other.loads;
  t.stores <- t.stores + other.stores;
  t.int_ops <- t.int_ops + other.int_ops

let register_bytes t = 8 * (t.loads + t.stores)

let pp ppf t =
  Format.fprintf ppf "flops=%d loads=%d stores=%d int_ops=%d" t.flops t.loads
    t.stores t.int_ops
