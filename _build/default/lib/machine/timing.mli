(** The bounded-resource timing model.

    A program's execution time is bounded below by the time each shared
    resource needs to move its share of the work:

    - CPU:        [flops / flops_per_sec]
    - registers:  [8 * (loads + stores) / register_bandwidth]
    - cache boundary [i]: [boundary traffic / bandwidth(i)]
    - memory:     [(bytes_in + penalty * bytes_out) / memory_bandwidth]

    The predicted time is the maximum of these — the paper's thesis that
    actual latency is the inverse of consumed bandwidth, so a saturated
    channel determines the execution time.  The per-resource terms are
    exposed so experiments can report which resource binds. *)

type breakdown = {
  cpu_time : float;
  register_time : float;
  boundary_times : (string * float) list;
      (** one entry per cache boundary, e.g. [("L2-L1", t); ("Mem-L2", t)];
          the memory term includes the write-back penalty *)
  total : float;  (** max of all terms *)
  binding_resource : string;  (** name of the term achieving the max *)
}

(** [predict machine cache counters] evaluates the model after a
    simulation run on [cache]. *)
val predict : Machine.t -> Cache.t -> Counters.t -> breakdown

(** Total memory traffic in bytes (both directions, unweighted). *)
val memory_bytes : Cache.t -> int

(** [effective_bandwidth machine cache counters] is total memory traffic
    divided by predicted time — the quantity plotted in Figure 3. *)
val effective_bandwidth : Machine.t -> Cache.t -> Counters.t -> float

(** Fraction of the machine's memory bandwidth the program sustains:
    effective bandwidth / memory bandwidth (the §2.3 utilisation metric,
    capped at 1). *)
val memory_utilisation : Machine.t -> Cache.t -> Counters.t -> float

val pp_breakdown : Format.formatter -> breakdown -> unit

(** [predict_with_latency machine cache counters ~miss_latency ~overlap]
    adds an exposed-latency term to the bandwidth model:
    [total + (1 - overlap) * memory_line_fetches * miss_latency].
    [overlap = 0] models a blocking cache (every miss stalls);
    [overlap = 1] models perfect prefetching / non-blocking caches — and
    recovers the pure bandwidth bound, the paper's point that latency
    tolerance converges on the bandwidth limit. *)
val predict_with_latency :
  Machine.t -> Cache.t -> Counters.t -> miss_latency:float -> overlap:float ->
  float
