(** Synthetic bandwidth probes, mirroring how the paper calibrates machine
    balance: STREAM [McCalpin 95] for memory bandwidth and CacheBench
    [Mucci & London 98] for cache bandwidth.  The probes drive the cache
    simulator with the same access patterns the real benchmarks use, then
    report the model's sustained bandwidth — used in tests to confirm each
    machine model delivers its configured supply. *)

type stream_result = {
  copy : float;  (** c[i] = a[i],            MB/s *)
  scale : float;  (** b[i] = s*c[i],         MB/s *)
  add : float;  (** c[i] = a[i]+b[i],        MB/s *)
  triad : float;  (** a[i] = b[i]+s*c[i],    MB/s *)
}

(** [stream machine ~elements] runs the four STREAM kernels over arrays of
    [elements] doubles (default 2 million). *)
val stream : ?elements:int -> Machine.t -> stream_result

(** [cache_read_curve machine ~sizes] is CacheBench's read experiment:
    repeatedly sweep a working set of each size and report sustained
    read bandwidth in MB/s for each [(size_bytes, mb_per_s)]. *)
val cache_read_curve : Machine.t -> sizes:int list -> (int * float) list

(** Sustained memory bandwidth the model provides to a pure read stream —
    used as "the machine's measured memory bandwidth" in experiments. *)
val sustained_memory_bandwidth : Machine.t -> float
