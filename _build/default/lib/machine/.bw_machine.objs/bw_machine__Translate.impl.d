lib/machine/translate.ml: Hashtbl
