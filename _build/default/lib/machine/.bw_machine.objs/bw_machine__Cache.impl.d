lib/machine/cache.ml: Array List
