lib/machine/counters.mli: Format
