lib/machine/reuse.mli:
