lib/machine/translate.mli:
