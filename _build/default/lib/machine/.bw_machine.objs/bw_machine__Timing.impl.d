lib/machine/timing.ml: Array Cache Counters Float Format List Machine Printf
