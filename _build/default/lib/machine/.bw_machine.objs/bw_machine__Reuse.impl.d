lib/machine/reuse.ml: Array Bytes Hashtbl List
