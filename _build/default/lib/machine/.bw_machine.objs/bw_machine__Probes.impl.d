lib/machine/probes.ml: Cache Counters Layout List Machine Timing Translate
