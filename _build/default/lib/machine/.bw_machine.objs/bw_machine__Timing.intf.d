lib/machine/timing.mli: Cache Counters Format Machine
