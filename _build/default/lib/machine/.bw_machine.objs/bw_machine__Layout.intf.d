lib/machine/layout.mli: Format
