lib/machine/probes.mli: Machine
