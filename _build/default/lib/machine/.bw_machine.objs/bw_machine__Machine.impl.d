lib/machine/machine.ml: Cache Format List Printf Translate
