lib/machine/machine.mli: Cache Format Translate
