lib/machine/counters.ml: Format
