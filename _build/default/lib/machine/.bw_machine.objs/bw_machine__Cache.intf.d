lib/machine/cache.mli:
