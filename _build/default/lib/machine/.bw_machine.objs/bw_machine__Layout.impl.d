lib/machine/layout.ml: Format Hashtbl List
