type t = { bases : (string, int) Hashtbl.t; mutable limit : int }

let align_up a x = (x + a - 1) land lnot (a - 1)

let assign ?(align_bytes = 8) ~stagger_bytes vars =
  if stagger_bytes < 0 then invalid_arg "Layout.assign: negative stagger";
  if align_bytes <= 0 || align_bytes land (align_bytes - 1) <> 0 then
    invalid_arg "Layout.assign: alignment must be a positive power of two";
  let t = { bases = Hashtbl.create 16; limit = 4096 } in
  List.iter
    (fun (name, bytes) ->
      if bytes < 0 then invalid_arg "Layout.assign: negative size";
      if Hashtbl.mem t.bases name then
        invalid_arg ("Layout.assign: duplicate variable " ^ name);
      let base = align_up (max 8 align_bytes) t.limit in
      Hashtbl.add t.bases name base;
      t.limit <- base + bytes + stagger_bytes)
    vars;
  t

let base t name =
  match Hashtbl.find_opt t.bases name with
  | Some b -> b
  | None -> raise Not_found

let limit t = t.limit

let pp ppf t =
  let entries =
    Hashtbl.fold (fun name base acc -> (base, name) :: acc) t.bases []
    |> List.sort compare
  in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (base, name) -> Format.fprintf ppf "%#x  %s@," base name)
    entries;
  Format.fprintf ppf "@]"
