(* Machine exploration: how much memory bandwidth would a machine need
   before a bandwidth-bound kernel becomes CPU-bound?  The paper argues
   (Section 2.2) that matching the demand of its applications would take
   1-3 GB/s against the Origin2000's 300 MB/s; this example sweeps the
   model's memory bus to find the crossover for each kernel.

     dune exec examples/machine_explorer.exe *)

let kernels =
  [ ("1w1r update", Bw_workloads.Stride_kernels.kernel ~writes:1 ~reads:1 ~n:200_000);
    ("0w2r dot product", Bw_workloads.Stride_kernels.kernel ~writes:0 ~reads:2 ~n:200_000);
    ("convolution (3 taps)", Bw_workloads.Kernels.convolution ~n:150_000 ~taps:3);
    ("dmxpy", Bw_workloads.Kernels.dmxpy ~n:1024) ]

let factors = [ 1.0; 2.0; 4.0; 8.0; 16.0 ]

let () =
  Format.printf
    "Binding resource as the Origin2000 memory bus is scaled up:@.@.";
  Format.printf "%-22s" "kernel";
  List.iter (fun f -> Format.printf "  %8s" (Printf.sprintf "%gx" f)) factors;
  Format.printf "@.";
  List.iter
    (fun (name, p) ->
      Format.printf "%-22s" name;
      List.iter
        (fun factor ->
          let machine =
            Bw_machine.Machine.scaled
              ~name:(Printf.sprintf "origin-x%g" factor)
              ~memory_factor:factor Bw_machine.Machine.origin2000
          in
          let r = Bw_exec.Run.simulate ~machine p in
          Format.printf "  %8s"
            r.Bw_exec.Run.breakdown.Bw_machine.Timing.binding_resource)
        factors;
      Format.printf "@.")
    kernels;
  Format.printf
    "@.(the paper: applications need 3.4x-10.5x the Origin2000's memory \
     bandwidth@. to stop being memory-bound -- 1.02 to 3.15 GB/s)@.";
  (* quantify one crossover precisely *)
  let p = Bw_workloads.Kernels.dmxpy ~n:1024 in
  let rec search lo hi iters =
    if iters = 0 then (lo +. hi) /. 2.0
    else begin
      let mid = (lo +. hi) /. 2.0 in
      let machine =
        Bw_machine.Machine.scaled ~name:"probe" ~memory_factor:mid
          Bw_machine.Machine.origin2000
      in
      let r = Bw_exec.Run.simulate ~machine p in
      if
        String.equal
          r.Bw_exec.Run.breakdown.Bw_machine.Timing.binding_resource "Mem-L2"
      then search mid hi (iters - 1)
      else search lo mid (iters - 1)
    end
  in
  let crossover = search 1.0 32.0 12 in
  Format.printf
    "@.dmxpy stops being memory-bound at ~%.1fx the Origin2000 bus (%.2f GB/s),@."
    crossover
    (crossover *. 312e6 /. 1e9);
  Format.printf
    "at which point register bandwidth — the paper's second most critical@.";
  Format.printf "resource — becomes the wall.@."
