(* Dynamic (irregular) applications: a moldyn-like particle kernel whose
   interaction list defeats static loop transformations, handled by the
   strategy's run-time arm — locality grouping (sort the interaction
   list) and data packing (renumber particles in first-touch order) —
   plus a reuse-distance profile showing *why* they work.

     dune exec examples/irregular_dynamics.exe *)

let machine =
  { Bw_machine.Machine.origin2000 with
    Bw_machine.Machine.name = "origin-small-cache";
    caches =
      [ { Bw_machine.Cache.size_bytes = 4096; line_bytes = 32; associativity = 2 };
        { Bw_machine.Cache.size_bytes = 32 * 1024;
          line_bytes = 128;
          associativity = 2 } ] }

let spec =
  { Bw_transform.Packing.index_arrays = Bw_workloads.Irregular.index_arrays;
    data_arrays = Bw_workloads.Irregular.data_arrays }

let () =
  let p =
    Bw_workloads.Irregular.interactions ~particles:30_000 ~pairs:12_000
      ~sweeps:8
  in
  let grouped =
    Result.get_ok (Bw_transform.Packing.group p spec ~by:"idx1")
  in
  let both =
    let spec' =
      { spec with
        Bw_transform.Packing.index_arrays =
          List.map (fun a -> "sorted_" ^ a)
            spec.Bw_transform.Packing.index_arrays }
    in
    Result.get_ok (Bw_transform.Packing.pack grouped spec')
  in

  let report label q =
    let r = Bw_exec.Run.simulate ~machine q in
    Format.printf "%-28s %7.2f MB traffic, %7.2f ms predicted@." label
      (float_of_int (Bw_machine.Timing.memory_bytes r.Bw_exec.Run.cache) /. 1e6)
      (1e3 *. Bw_exec.Run.seconds r);
    r.Bw_exec.Run.observation
  in
  Format.printf "--- traffic and time ---@.";
  let o1 = report "random list:" p in
  let o2 = report "grouped:" grouped in
  let o3 = report "grouped + packed:" both in
  Format.printf "values preserved (to 1e-9): %b@.@."
    (Bw_exec.Interp.close_observation ~tol:1e-9 o1 o2
    && Bw_exec.Interp.close_observation ~tol:1e-9 o1 o3);

  (* The mechanism, visible without any cache model: the transformations
     move reuse distances below the cache capacity. *)
  Format.printf "--- reuse-distance view (32-byte blocks) ---@.";
  List.iter
    (fun (label, q) ->
      let t = Bw_exec.Run.reuse_profile ~granularity:32 q in
      let mr c = 100.0 *. Bw_machine.Reuse.miss_ratio t ~capacity_blocks:c in
      Format.printf "%-28s miss ratio at 4KB %5.1f%%, 32KB %5.1f%%, 256KB %5.1f%%@."
        label (mr 128) (mr 1024) (mr 8192))
    [ ("random list:", p); ("grouped:", grouped); ("grouped + packed:", both) ]
