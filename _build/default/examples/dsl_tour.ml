(* The surface language end to end: parse a Fortran-like source text,
   type-check it, analyse its dependences, and watch the individual
   compiler passes rewrite it.

     dune exec examples/dsl_tour.exe *)

let source =
  {|
  program heatflow
    real t[50000]  = hash(7)
    real t2[50000]
    real probe[50000]
    real energy
    live_out energy

    // forward difference
    for i = 2, 49999
      t2[i] = t[i] + 0.1 * (t[i-1] - 2.0 * t[i] + t[i+1])
    end for

    // a probe array only consumed by the reduction below
    for i = 2, 49999
      probe[i] = t2[i] * t2[i]
    end for

    // total energy
    for i = 2, 49999
      energy = energy + probe[i]
    end for

    print energy
  end
  |}

let () =
  (* 1. parse + check *)
  let program =
    match Bw_ir.Parser.parse_program source with
    | Ok p -> p
    | Error e ->
      Format.eprintf "%a@." Bw_ir.Parser.pp_parse_error e;
      exit 1
  in
  Format.printf "parsed '%s': %d declarations, %d statements@.@."
    program.Bw_ir.Ast.prog_name
    (List.length program.Bw_ir.Ast.decls)
    (List.length program.Bw_ir.Ast.body);

  (* 2. dependence analysis: which adjacent loops may fuse? *)
  let loops =
    List.filter_map
      (function Bw_ir.Ast.For l -> Some l | _ -> None)
      program.Bw_ir.Ast.body
  in
  List.iteri
    (fun i l1 ->
      match List.nth_opt loops (i + 1) with
      | None -> ()
      | Some l2 ->
        (match Bw_analysis.Depend.fusable l1 l2 with
        | Ok () -> Format.printf "loops %d and %d: fusable@." i (i + 1)
        | Error why ->
          Format.printf "loops %d and %d: not fusable (%s)@." i (i + 1) why))
    loops;

  (* 3. live ranges of the arrays *)
  Format.printf "@.array live ranges (top-level statement spans):@.";
  List.iter
    (fun r -> Format.printf "  %a@." Bw_analysis.Live.pp_range r)
    (Bw_analysis.Live.analyse program);

  (* 4. pass by pass *)
  let fused = Bw_transform.Fuse.greedy program in
  Format.printf "@.after greedy fusion: %d statements@."
    (List.length fused.Bw_ir.Ast.body);
  let contracted, arrays = Bw_transform.Contract.contract_arrays fused in
  Format.printf "contracted to scalars: %s@."
    (match arrays with [] -> "-" | l -> String.concat ", " l);
  let eliminated, dead = Bw_transform.Store_elim.run contracted in
  Format.printf "stores eliminated for: %s@.@."
    (match dead with [] -> "-" | l -> String.concat ", " l);
  Format.printf "--- final program ---@.%a@.@." Bw_ir.Pretty.pp_program
    eliminated;

  (* 5. verify and measure *)
  let machine = Bw_machine.Machine.origin2000 in
  let before = Bw_exec.Run.simulate ~machine program in
  let after = Bw_exec.Run.simulate ~machine eliminated in
  Format.printf "traffic %.2f MB -> %.2f MB, time %.2f ms -> %.2f ms@."
    (float_of_int (Bw_machine.Timing.memory_bytes before.Bw_exec.Run.cache) /. 1e6)
    (float_of_int (Bw_machine.Timing.memory_bytes after.Bw_exec.Run.cache) /. 1e6)
    (1e3 *. Bw_exec.Run.seconds before)
    (1e3 *. Bw_exec.Run.seconds after);
  Format.printf "behaviour preserved: %b@."
    (Bw_exec.Interp.equal_observation before.Bw_exec.Run.observation
       after.Bw_exec.Run.observation)
