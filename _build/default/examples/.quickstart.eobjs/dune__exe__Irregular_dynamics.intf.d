examples/irregular_dynamics.mli:
