examples/stencil_pipeline.ml: Bw_exec Bw_fusion Bw_ir Bw_machine Bw_transform Format List
