examples/quickstart.mli:
