examples/dsl_tour.ml: Bw_analysis Bw_exec Bw_ir Bw_machine Bw_transform Format List String
