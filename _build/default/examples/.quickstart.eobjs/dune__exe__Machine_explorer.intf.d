examples/machine_explorer.mli:
