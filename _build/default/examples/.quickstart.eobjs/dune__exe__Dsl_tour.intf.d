examples/dsl_tour.mli:
