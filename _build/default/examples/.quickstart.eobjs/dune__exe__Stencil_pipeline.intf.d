examples/stencil_pipeline.mli:
