examples/quickstart.ml: Bw_exec Bw_ir Bw_machine Bw_transform Format List
