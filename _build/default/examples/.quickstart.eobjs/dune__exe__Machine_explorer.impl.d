examples/machine_explorer.ml: Bw_exec Bw_machine Bw_workloads Format List Printf String
