examples/irregular_dynamics.ml: Bw_exec Bw_machine Bw_transform Bw_workloads Format List Result
