(* Quickstart: build a program, measure its balance on a machine model,
   let the bandwidth-reduction pipeline rewrite it, and compare.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. Write a program with the builder DSL: scale a vector, then reduce
     it -- two loops over the same temporary array. *)
  let n = 500_000 in
  let program =
    let open Bw_ir.Builder in
    program "quickstart"
      ~decls:
        [ array ~init:(Init_hash 1) "input" [ n ];
          array "scaled" [ n ];
          scalar "total" ]
      ~live_out:[ "total" ]
      [ for_ "i" (int 1) (int n)
          [ ("scaled" $. [ v "i" ]) <-- (("input" $ [ v "i" ]) *: fl 1.5) ];
        for_ "i" (int 1) (int n)
          [ sc "total" <-- (v "total" +: ("scaled" $ [ v "i" ])) ];
        print (v "total") ]
  in
  Format.printf "--- the program ---@.%a@.@." Bw_ir.Pretty.pp_program program;

  (* 2. Simulate it on the Origin2000 model. *)
  let machine = Bw_machine.Machine.origin2000 in
  let before = Bw_exec.Run.simulate ~machine program in
  Format.printf "--- before optimisation ---@.";
  Format.printf "predicted time: %.2f ms, bound by %s@."
    (1e3 *. Bw_exec.Run.seconds before)
    before.Bw_exec.Run.breakdown.Bw_machine.Timing.binding_resource;
  List.iter
    (fun (boundary, v) -> Format.printf "  %-8s %6.2f bytes/flop@." boundary v)
    (Bw_exec.Run.program_balance before);

  (* 3. Run the paper's strategy: fuse, contract, eliminate stores. *)
  let optimised, report = Bw_transform.Strategy.run program in
  Format.printf "@.--- what the compiler did ---@.%a@.@."
    Bw_transform.Strategy.pp_report report;
  Format.printf "--- the optimised program ---@.%a@.@."
    Bw_ir.Pretty.pp_program optimised;

  (* 4. Same observable behaviour, less memory traffic, less time. *)
  let after = Bw_exec.Run.simulate ~machine optimised in
  let traffic r =
    float_of_int (Bw_machine.Timing.memory_bytes r.Bw_exec.Run.cache) /. 1e6
  in
  Format.printf "--- after optimisation ---@.";
  Format.printf "memory traffic  %.2f MB -> %.2f MB@." (traffic before)
    (traffic after);
  Format.printf "predicted time  %.2f ms -> %.2f ms (%.2fx)@."
    (1e3 *. Bw_exec.Run.seconds before)
    (1e3 *. Bw_exec.Run.seconds after)
    (Bw_exec.Run.seconds before /. Bw_exec.Run.seconds after);
  Format.printf "behaviour preserved: %b@."
    (Bw_exec.Interp.equal_observation before.Bw_exec.Run.observation
       after.Bw_exec.Run.observation)
