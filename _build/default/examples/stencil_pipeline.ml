(* A multi-stage stencil pipeline — the kind of code the paper's intro
   motivates: several sweeps over large grids, each reading what the
   previous one wrote.  The example plans bandwidth-minimal fusion with
   the hyper-graph min-cut, applies the plan, and compares it with the
   classical edge-weighted objective.

     dune exec examples/stencil_pipeline.exe *)

let n = 400_000

(* Five pipeline stages over 1-D grids:
     smooth  : tmp  = 0.25*u[i-1] + 0.5*u[i] + 0.25*u[i+1]
     scale   : tmp2 = alpha * tmp
     flux    : fl   = tmp2[i+1] - tmp2[i]
     update  : u2   = u + fl
     norm    : nrm += u2 * u2           (separate reduction)
   plus a final diagnostic reduction over the original field, which
   cannot fuse with the reduction that precedes it (both update 'nrm'). *)
let pipeline =
  let open Bw_ir.Builder in
  let g name i = name $ [ i ] in
  program "stencil_pipeline"
    ~decls:
      [ array ~init:(Init_hash 1) "u" [ n ];
        array "tmp" [ n ];
        array "tmp2" [ n ];
        array "fl" [ n ];
        array "u2" [ n ];
        scalar "nrm" ]
    ~live_out:[ "u2"; "nrm" ]
    [ for_ "i" (int 2) (int (n - 1))
        [ ("tmp" $. [ v "i" ])
          <-- ((fl 0.25 *: g "u" (v "i" -: int 1))
              +: (fl 0.5 *: g "u" (v "i"))
              +: (fl 0.25 *: g "u" (v "i" +: int 1))) ];
      for_ "i" (int 2) (int (n - 1))
        [ ("tmp2" $. [ v "i" ]) <-- (fl 1.01 *: g "tmp" (v "i")) ];
      for_ "i" (int 2) (int (n - 2))
        [ ("fl" $. [ v "i" ])
          <-- (g "tmp2" (v "i" +: int 1) -: g "tmp2" (v "i")) ];
      for_ "i" (int 2) (int (n - 2))
        [ ("u2" $. [ v "i" ]) <-- (g "u" (v "i") +: g "fl" (v "i")) ];
      for_ "i" (int 2) (int (n - 2))
        [ sc "nrm" <-- (v "nrm" +: (g "u2" (v "i") *: g "u2" (v "i"))) ];
      for_ "i" (int 2) (int (n - 2))
        [ sc "nrm" <-- (v "nrm" +: (g "u" (v "i") *: g "u" (v "i"))) ];
      print (v "nrm") ]

let () =
  let machine = Bw_machine.Machine.origin2000 in
  let g = Bw_fusion.Fusion_graph.build pipeline in
  Format.printf "%a@.@." Bw_fusion.Fusion_graph.pp g;

  let describe label plan =
    Format.printf "%-24s %d partition(s), %2d arrays loaded, cross weight %2d@."
      label (List.length plan)
      (Bw_fusion.Cost.bandwidth_cost g plan)
      (Bw_fusion.Cost.edge_weight_cost g plan)
  in
  let unfused = Bw_fusion.Cost.unfused g in
  let bw_plan = Bw_fusion.Bandwidth_minimal.multi_partition g in
  let ew_plan = Bw_fusion.Edge_weighted.greedy_merge g in
  describe "no fusion:" unfused;
  describe "edge-weighted greedy:" ew_plan;
  describe "bandwidth-minimal:" bw_plan;

  (* Apply the bandwidth-minimal plan, then let storage reduction and
     store elimination exploit the localised live ranges. *)
  let fused =
    match Bw_transform.Fuse.apply_plan pipeline bw_plan with
    | Ok p -> p
    | Error e -> failwith e
  in
  let optimised, report = Bw_transform.Strategy.run fused in
  Format.printf "@.%a@.@." Bw_transform.Strategy.pp_report report;

  let measure label p =
    let r = Bw_exec.Run.simulate ~machine p in
    Format.printf "%-24s %6.2f MB traffic, %6.2f ms predicted@." label
      (float_of_int (Bw_machine.Timing.memory_bytes r.Bw_exec.Run.cache) /. 1e6)
      (1e3 *. Bw_exec.Run.seconds r);
    r.Bw_exec.Run.observation
  in
  let o1 = measure "original:" pipeline in
  let o2 = measure "fused:" fused in
  let o3 = measure "fused + storage:" optimised in
  Format.printf "behaviour preserved: %b@."
    (Bw_exec.Interp.equal_observation o1 o2
    && Bw_exec.Interp.equal_observation o2 o3)
