test/test_exec.ml: Alcotest Array Bw_exec Bw_ir Bw_machine Float Interp List Parser Printf QCheck QCheck_alcotest Run Test
