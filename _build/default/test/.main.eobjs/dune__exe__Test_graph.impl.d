test/test_graph.ml: Alcotest Array Bw_graph Digraph Flow Graph_gen Hashtbl Hyper_cut Hypergraph Kway List Printf QCheck QCheck_alcotest Random Test Topo Undirected Vertex_cut
