test/main.mli:
