test/test_core.ml: Alcotest Bw_core Bw_exec Bw_ir Bw_machine Bw_transform Bw_workloads Float List Printf String
