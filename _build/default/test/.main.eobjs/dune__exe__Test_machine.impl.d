test/test_machine.ml: Alcotest Array Bw_machine Cache Counters Layout List Machine Probes QCheck QCheck_alcotest Random Test Timing Translate
