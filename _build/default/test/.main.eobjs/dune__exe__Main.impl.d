test/main.ml: Alcotest Test_analysis Test_compile Test_core Test_exec Test_fusion Test_graph Test_ir Test_machine Test_misc Test_packing Test_reuse Test_transform Test_workloads
