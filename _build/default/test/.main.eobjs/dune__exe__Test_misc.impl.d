test/test_misc.ml: Alcotest Array Ast Builder Bw_exec Bw_fusion Bw_graph Bw_ir Bw_machine Bw_transform Bw_workloads List Parser Printf Result
