test/test_reuse.ml: Alcotest Bw_exec Bw_machine Bw_workloads Cache List Printf QCheck QCheck_alcotest Random Reuse Test
