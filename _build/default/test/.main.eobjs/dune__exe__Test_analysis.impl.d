test/test_analysis.ml: Affine Alcotest Ast Bw_analysis Bw_ir Bw_workloads Depend Format Gen List Live Option Parser Printf QCheck QCheck_alcotest Refs Test
