test/test_compile.ml: Alcotest Bw_exec Bw_ir Bw_machine Bw_transform Bw_workloads List Printf Sys
