test/test_workloads.ml: Alcotest Array Bw_exec Bw_ir Bw_machine Bw_workloads Fft Fig6 Fig7 Float Format Kernels List Nas_sp Printf Registry Stride_kernels String Sweep3d
