test/test_packing.ml: Alcotest Bw_exec Bw_ir Bw_machine Bw_transform Bw_workloads Irregular List Packing Printf
