test/test_ir.ml: Alcotest Ast_util Builder Bw_ir Check Format Lexer List Parser Pretty QCheck QCheck_alcotest Stdlib String Test
