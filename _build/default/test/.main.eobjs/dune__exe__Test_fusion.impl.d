test/test_fusion.ml: Alcotest Bandwidth_minimal Bw_exec Bw_fusion Bw_graph Bw_ir Bw_workloads Cost Edge_weighted Fusion_graph Hyper_fusion Kway_reduction List Printf Random
