open Bw_workloads
open Bw_transform

let check = Alcotest.check
let bool = Alcotest.bool

let spec =
  { Packing.index_arrays = Irregular.index_arrays;
    Packing.data_arrays = Irregular.data_arrays }

let traffic machine p =
  Bw_machine.Timing.memory_bytes
    (Bw_exec.Run.simulate ~machine p).Bw_exec.Run.cache

(* a machine whose cache is much smaller than the particle arrays, so
   locality matters *)
let tiny_cache =
  { Bw_machine.Machine.origin2000 with
    Bw_machine.Machine.name = "tiny";
    caches =
      [ { Bw_machine.Cache.size_bytes = 4096; line_bytes = 32; associativity = 2 };
        { Bw_machine.Cache.size_bytes = 32 * 1024;
          line_bytes = 128;
          associativity = 2 } ] }

let test_pack_preserves_semantics () =
  let p = Irregular.interactions ~particles:300 ~pairs:600 ~sweeps:2 in
  match Packing.pack p spec with
  | Error e -> Alcotest.fail e
  | Ok p' ->
    let o1 = Bw_exec.Interp.run p and o2 = Bw_exec.Interp.run p' in
    check bool "bit-identical (packing only moves data)" true
      (Bw_exec.Interp.equal_observation o1 o2)

let test_group_preserves_values_closely () =
  let p = Irregular.interactions ~particles:300 ~pairs:600 ~sweeps:2 in
  match Packing.group p spec ~by:"idx1" with
  | Error e -> Alcotest.fail e
  | Ok p' ->
    let o1 = Bw_exec.Interp.run p and o2 = Bw_exec.Interp.run p' in
    check bool "equal up to reassociation" true
      (Bw_exec.Interp.close_observation ~tol:1e-9 o1 o2)

let test_group_then_pack_compose () =
  let p = Irregular.interactions ~particles:200 ~pairs:500 ~sweeps:1 in
  let grouped =
    match Packing.group p spec ~by:"idx1" with
    | Ok g -> g
    | Error e -> Alcotest.fail e
  in
  (* after grouping, the index arrays are the sorted_ versions *)
  let spec' =
    { spec with
      Packing.index_arrays =
        List.map (fun a -> "sorted_" ^ a) Irregular.index_arrays }
  in
  match Packing.pack grouped spec' with
  | Error e -> Alcotest.fail e
  | Ok p' ->
    let o1 = Bw_exec.Interp.run p and o2 = Bw_exec.Interp.run p' in
    check bool "composition sound" true
      (Bw_exec.Interp.close_observation ~tol:1e-9 o1 o2)

let test_pack_improves_locality () =
  (* first-touch packing densifies the ~touched subset of particles and
     the sweeps amortise the prologue *)
  let p = Irregular.interactions ~particles:20_000 ~pairs:8_000 ~sweeps:8 in
  match Packing.pack p spec with
  | Error e -> Alcotest.fail e
  | Ok p' ->
    let before = traffic tiny_cache p and after = traffic tiny_cache p' in
    check bool
      (Printf.sprintf "traffic %d -> %d" before after)
      true
      (float_of_int after < 0.9 *. float_of_int before)

let test_group_improves_locality () =
  let p = Irregular.interactions ~particles:20_000 ~pairs:8_000 ~sweeps:8 in
  match Packing.group p spec ~by:"idx1" with
  | Error e -> Alcotest.fail e
  | Ok p' ->
    let before = traffic tiny_cache p and after = traffic tiny_cache p' in
    check bool
      (Printf.sprintf "traffic %d -> %d" before after)
      true
      (float_of_int after < 0.95 *. float_of_int before)

let test_pack_rejects_direct_access () =
  let p =
    Bw_ir.Parser.parse_program_exn
      {|
      program direct
        integer idx[10] = linear(1.0, 0.5)
        real x[20] = hash(1)
        real s
        live_out s
        for k = 1, 10
          s = s + x[idx[k]]
        end for
        for i = 1, 20
          s = s + x[i]
        end for
      end
      |}
  in
  match
    Packing.pack p
      { Packing.index_arrays = [ "idx" ]; Packing.data_arrays = [ "x" ] }
  with
  | Ok _ -> Alcotest.fail "expected rejection (direct access to x)"
  | Error _ -> ()

let test_pack_rejects_index_rewrite () =
  let p =
    Bw_ir.Parser.parse_program_exn
      {|
      program rewrite
        integer idx[10] = linear(1.0, 0.5)
        real x[20] = hash(1)
        real s
        live_out s
        for k = 1, 10
          s = s + x[idx[k]]
          idx[k] = idx[k] + 1
        end for
      end
      |}
  in
  match
    Packing.pack p
      { Packing.index_arrays = [ "idx" ]; Packing.data_arrays = [ "x" ] }
  with
  | Ok _ -> Alcotest.fail "expected rejection (index rewritten)"
  | Error _ -> ()

let test_group_unknown_key () =
  let p = Irregular.interactions ~particles:50 ~pairs:60 ~sweeps:1 in
  match Packing.group p spec ~by:"ghost" with
  | Ok _ -> Alcotest.fail "expected rejection"
  | Error _ -> ()

let suites =
  [ ( "transform.packing",
      [ Alcotest.test_case "pack preserves semantics" `Quick test_pack_preserves_semantics;
        Alcotest.test_case "group preserves values" `Quick test_group_preserves_values_closely;
        Alcotest.test_case "group + pack compose" `Quick test_group_then_pack_compose;
        Alcotest.test_case "pack improves locality" `Slow test_pack_improves_locality;
        Alcotest.test_case "group improves locality" `Slow test_group_improves_locality;
        Alcotest.test_case "rejects direct access" `Quick test_pack_rejects_direct_access;
        Alcotest.test_case "rejects index rewrite" `Quick test_pack_rejects_index_rewrite;
        Alcotest.test_case "rejects unknown key" `Quick test_group_unknown_key ] )
  ]
