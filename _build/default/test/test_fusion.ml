open Bw_fusion

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let fig4_graph n = Fusion_graph.build (Bw_workloads.Fig4.program ~n)

(* --- Fusion graph construction ------------------------------------------- *)

let test_fig4_graph_shape () =
  let g = fig4_graph 32 in
  check int "seven nodes (6 loops + print)" 7 (Fusion_graph.node_count g);
  check bool "5-6 preventing" true (Fusion_graph.prevents g 4 5);
  check bool "1-2 fusable" false (Fusion_graph.prevents g 0 1);
  check bool "print prevents" true (Fusion_graph.prevents g 5 6);
  (* loop 5 depends on nothing; loop 6 depends on loops 4 and 5 *)
  check bool "dep 4->6... loop4 -> loop6 via b" true
    (Bw_graph.Digraph.mem_edge g.Fusion_graph.deps 3 5);
  check bool "dep 5->6 via sum" true
    (Bw_graph.Digraph.mem_edge g.Fusion_graph.deps 4 5);
  check bool "loop5 has no incoming deps" true
    (Bw_graph.Digraph.in_degree g.Fusion_graph.deps 4 = 0)

let test_fig4_unfused_cost () =
  let g = fig4_graph 32 in
  (* the paper: without fusion the six loops access 20 arrays *)
  check int "20 array loads" 20 (Cost.bandwidth_cost g (Cost.unfused g))

(* --- Two-partitioning ------------------------------------------------------ *)

let test_fig4_two_partition () =
  let g = fig4_graph 32 in
  let split =
    Bandwidth_minimal.two_partition g ~within:[ 0; 1; 2; 3; 4; 5 ] ~s:5 ~t:4
  in
  check Alcotest.(list int) "loop 5 alone, first" [ 4 ]
    split.Bandwidth_minimal.first;
  check Alcotest.(list int) "the rest" [ 0; 1; 2; 3; 5 ]
    split.Bandwidth_minimal.second;
  check Alcotest.(list string) "cut = {a}" [ "a" ]
    split.Bandwidth_minimal.cut_arrays

(* --- Multi-partitioning ----------------------------------------------------- *)

let test_fig4_multi_partition () =
  let g = fig4_graph 32 in
  let plan = Bandwidth_minimal.multi_partition g in
  (match Cost.validate g plan with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* the paper's optimum: 7 array loads (plus the costless print) *)
  check int "bandwidth cost 7" 7 (Cost.bandwidth_cost g plan)

let test_fig4_exhaustive_agrees () =
  let g = fig4_graph 32 in
  let exact = Bandwidth_minimal.exhaustive g in
  check int "optimal is 7" 7 (Cost.bandwidth_cost g exact)

let test_fig4_edge_weighted_is_worse () =
  let g = fig4_graph 32 in
  (* optimal under the edge-weight objective... *)
  let ew = Edge_weighted.exhaustive g in
  check int "cross weight 2" 2 (Cost.edge_weight_cost g ew);
  (* ...loads 8 arrays, one more than bandwidth-minimal *)
  check int "bandwidth cost 8" 8 (Cost.bandwidth_cost g ew);
  (* and the bandwidth-minimal plan has higher edge weight (3) *)
  let bw = Bandwidth_minimal.exhaustive g in
  check int "bw plan edge weight 3" 3 (Cost.edge_weight_cost g bw)

let test_fig4_greedy_edge_weighted_valid () =
  let g = fig4_graph 32 in
  let plan = Edge_weighted.greedy_merge g in
  match Cost.validate g plan with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_fuse_program_fig4 () =
  let p = Bw_workloads.Fig4.program ~n:64 in
  match Bandwidth_minimal.fuse_program p with
  | Error e -> Alcotest.fail e
  | Ok (p', plan) ->
    check bool "fewer statements" true
      (List.length p'.Bw_ir.Ast.body < List.length p.Bw_ir.Ast.body);
    check bool "plan has >= 3 partitions" true (List.length plan >= 3);
    let o1 = Bw_exec.Interp.run p and o2 = Bw_exec.Interp.run p' in
    check bool "semantics preserved" true
      (Bw_exec.Interp.equal_observation o1 o2)

(* --- Random program stress -------------------------------------------------- *)

(* Random stream programs: [loops] loops, each updating one of [arrays]
   arrays from a random subset; a few scalar-reduction loops create
   fusion-preventing structure. *)
let random_program ~seed ~loops ~arrays =
  let rng = Random.State.make [| seed; 77 |] in
  let open Bw_ir.Builder in
  let n = 64 in
  let array_name k = Printf.sprintf "x%d" k in
  let decls =
    List.init arrays (fun k -> array ~init:(Init_hash k) (array_name k) [ n ])
    @ [ scalar "acc" ]
  in
  let body =
    List.init loops (fun _ ->
        if Random.State.int rng 4 = 0 then
          (* reduction loop over a random array; shares 'acc' *)
          let a = array_name (Random.State.int rng arrays) in
          for_ "i" (int 1) (int n)
            [ sc "acc" <-- (v "acc" +: (a $ [ v "i" ])) ]
        else begin
          let target = array_name (Random.State.int rng arrays) in
          let sources =
            List.init (1 + Random.State.int rng 3) (fun _ ->
                array_name (Random.State.int rng arrays))
          in
          let rhs =
            List.fold_left
              (fun acc a -> acc +: (a $ [ v "i" ]))
              (target $ [ v "i" ])
              sources
          in
          for_ "i" (int 1) (int n) [ (target $. [ v "i" ]) <-- rhs ]
        end)
  in
  program
    (Printf.sprintf "random%d" seed)
    ~decls ~live_out:[ "acc" ]
    (body @ [ print (v "acc") ])

let test_multi_partition_never_beats_exhaustive () =
  for seed = 1 to 12 do
    let p = random_program ~seed ~loops:(4 + (seed mod 3)) ~arrays:4 in
    let g = Fusion_graph.build p in
    let heuristic = Bandwidth_minimal.multi_partition g in
    let exact = Bandwidth_minimal.exhaustive g in
    (match Cost.validate g heuristic with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d: %s" seed e);
    let hc = Cost.bandwidth_cost g heuristic in
    let ec = Cost.bandwidth_cost g exact in
    check bool
      (Printf.sprintf "seed %d: heuristic %d >= optimal %d" seed hc ec)
      true (hc >= ec);
    check bool
      (Printf.sprintf "seed %d: heuristic %d <= unfused" seed hc)
      true
      (hc <= Cost.bandwidth_cost g (Cost.unfused g))
  done

let test_fused_random_programs_preserve_semantics () =
  for seed = 1 to 8 do
    let p = random_program ~seed ~loops:5 ~arrays:3 in
    match Bandwidth_minimal.fuse_program p with
    | Error e -> Alcotest.failf "seed %d: %s" seed e
    | Ok (p', _) ->
      let o1 = Bw_exec.Interp.run p and o2 = Bw_exec.Interp.run p' in
      if not (Bw_exec.Interp.equal_observation o1 o2) then
        Alcotest.failf "seed %d: semantics changed" seed
  done

(* --- Hyper_fusion / NP reduction ---------------------------------------------- *)

let test_total_length_fig4 () =
  let g = fig4_graph 32 in
  let inst = Hyper_fusion.of_fusion_graph g in
  check int "unfused length 20" 20
    (Hyper_fusion.total_length inst (Cost.unfused g));
  let exact = Bandwidth_minimal.exhaustive g in
  check int "coincides with bandwidth cost" (Cost.bandwidth_cost g exact)
    (Hyper_fusion.total_length inst exact)

let test_kway_reduction_matches_exact () =
  for seed = 1 to 10 do
    let g =
      Bw_graph.Graph_gen.undirected ~seed ~nodes:6 ~edge_prob:0.5 ~max_weight:3
    in
    let terminals = [ 0; 5 ] in
    let via_fusion = Kway_reduction.optimal_cut_via_fusion g ~terminals in
    let direct = (Bw_graph.Kway.exact g ~terminals).Bw_graph.Kway.value in
    check int (Printf.sprintf "seed %d" seed) direct via_fusion
  done

let test_kway_reduction_three_terminals () =
  for seed = 1 to 6 do
    let g =
      Bw_graph.Graph_gen.undirected ~seed:(seed + 50) ~nodes:6 ~edge_prob:0.6
        ~max_weight:2
    in
    let terminals = [ 0; 2; 5 ] in
    let via_fusion = Kway_reduction.optimal_cut_via_fusion g ~terminals in
    let direct = (Bw_graph.Kway.exact g ~terminals).Bw_graph.Kway.value in
    check int (Printf.sprintf "seed %d" seed) direct via_fusion
  done

let suites =
  [ ( "fusion.graph",
      [ Alcotest.test_case "fig4 shape" `Quick test_fig4_graph_shape;
        Alcotest.test_case "fig4 unfused cost 20" `Quick test_fig4_unfused_cost ] );
    ( "fusion.two_partition",
      [ Alcotest.test_case "fig4 optimal split" `Quick test_fig4_two_partition ] );
    ( "fusion.multi_partition",
      [ Alcotest.test_case "fig4 heuristic cost 7" `Quick test_fig4_multi_partition;
        Alcotest.test_case "fig4 exhaustive cost 7" `Quick test_fig4_exhaustive_agrees;
        Alcotest.test_case "fig4 edge-weighted costs 8" `Quick test_fig4_edge_weighted_is_worse;
        Alcotest.test_case "greedy edge-weighted valid" `Quick test_fig4_greedy_edge_weighted_valid;
        Alcotest.test_case "fuse_program fig4" `Quick test_fuse_program_fig4;
        Alcotest.test_case "heuristic vs exhaustive" `Slow test_multi_partition_never_beats_exhaustive;
        Alcotest.test_case "random fusion semantics" `Slow test_fused_random_programs_preserve_semantics ] );
    ( "fusion.np_reduction",
      [ Alcotest.test_case "fig4 total length" `Quick test_total_length_fig4;
        Alcotest.test_case "2-terminal round trip" `Quick test_kway_reduction_matches_exact;
        Alcotest.test_case "3-terminal round trip" `Quick test_kway_reduction_three_terminals ] )
  ]
