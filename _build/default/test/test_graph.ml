open Bw_graph

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let int_list = Alcotest.(list int)

(* --- Digraph ------------------------------------------------------------ *)

let test_digraph_basics () =
  let g = Digraph.create () in
  let a = Digraph.add_node g in
  let b = Digraph.add_node g in
  let c = Digraph.add_node g in
  Digraph.add_edge g a b;
  Digraph.add_edge g b c;
  Digraph.add_edge g a b;
  (* duplicate collapses *)
  check int "nodes" 3 (Digraph.node_count g);
  check int "edges" 2 (Digraph.edge_count g);
  check bool "mem a->b" true (Digraph.mem_edge g a b);
  check bool "mem b->a" false (Digraph.mem_edge g b a);
  check int_list "succ a" [ b ] (Digraph.succ g a);
  check int_list "pred c" [ b ] (Digraph.pred g c);
  check int "out_degree a" 1 (Digraph.out_degree g a);
  check int "in_degree b" 1 (Digraph.in_degree g b)

let test_digraph_bounds () =
  let g = Digraph.of_edges ~n:2 [ (0, 1) ] in
  Alcotest.check_raises "bad node" (Invalid_argument "Digraph: node 5 out of range [0,2)")
    (fun () -> ignore (Digraph.succ g 5))

let test_digraph_reverse () =
  let g = Digraph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let r = Digraph.reverse g in
  check bool "reversed edge" true (Digraph.mem_edge r 1 0);
  check bool "reversed edge 2" true (Digraph.mem_edge r 2 1);
  check int "same edge count" 2 (Digraph.edge_count r)

let test_digraph_copy_independent () =
  let g = Digraph.of_edges ~n:2 [ (0, 1) ] in
  let g' = Digraph.copy g in
  Digraph.add_edge g' 1 0;
  check bool "copy edge added" true (Digraph.mem_edge g' 1 0);
  check bool "original untouched" false (Digraph.mem_edge g 1 0)

let test_digraph_self_loop () =
  let g = Digraph.of_edges ~n:1 [ (0, 0) ] in
  check bool "self loop" true (Digraph.mem_edge g 0 0);
  check int_list "succ includes self" [ 0 ] (Digraph.succ g 0)

(* --- Topo ---------------------------------------------------------------- *)

let valid_topo_order g order =
  let pos = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.add pos v i) order;
  List.length order = Digraph.node_count g
  && Digraph.fold_edges g ~init:true ~f:(fun ok u v ->
         ok && Hashtbl.find pos u < Hashtbl.find pos v)

let test_topo_sort_dag () =
  let g = Digraph.of_edges ~n:5 [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4) ] in
  match Topo.sort g with
  | None -> Alcotest.fail "expected a topological order"
  | Some order -> check bool "valid order" true (valid_topo_order g order)

let test_topo_sort_cycle () =
  let g = Digraph.of_edges ~n:3 [ (0, 1); (1, 2); (2, 0) ] in
  check bool "cycle detected" true (Topo.sort g = None);
  check bool "not acyclic" false (Topo.is_acyclic g)

let test_scc () =
  (* two 2-cycles and an isolated node *)
  let g =
    Digraph.of_edges ~n:5 [ (0, 1); (1, 0); (2, 3); (3, 2); (1, 2) ]
  in
  let comps = Topo.scc g |> List.map (List.sort compare) in
  let sorted = List.sort compare comps in
  check
    Alcotest.(list (list int))
    "components" [ [ 0; 1 ]; [ 2; 3 ]; [ 4 ] ] sorted

let test_scc_ordering () =
  (* Tarjan returns reverse topological order of the condensation. *)
  let g = Digraph.of_edges ~n:4 [ (0, 1); (1, 0); (1, 2); (2, 3); (3, 2) ] in
  match Topo.scc g with
  | [ first; second ] ->
    check int_list "sink component first" [ 2; 3 ] (List.sort compare first);
    check int_list "source component last" [ 0; 1 ] (List.sort compare second)
  | other ->
    Alcotest.failf "expected two components, got %d" (List.length other)

let test_reachable () =
  let g = Digraph.of_edges ~n:4 [ (0, 1); (1, 2) ] in
  let r = Topo.reachable g 0 in
  check bool "reaches 2" true r.(2);
  check bool "does not reach 3" false r.(3);
  check bool "has_path" true (Topo.has_path g 0 2);
  check bool "no path back" false (Topo.has_path g 2 0)

let test_transitive_closure () =
  let g = Digraph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let m = Topo.transitive_closure g in
  check bool "0->2" true m.(0).(2);
  check bool "2->0" false m.(2).(0);
  check bool "self" true m.(1).(1)

(* --- Flow ----------------------------------------------------------------- *)

let clrs_network () =
  (* CLRS Figure 26.1: max flow 23 from 0 to 5. *)
  let net = Flow.create 6 in
  let e = Flow.add_edge net in
  ignore (e ~src:0 ~dst:1 ~cap:16);
  ignore (e ~src:0 ~dst:2 ~cap:13);
  ignore (e ~src:1 ~dst:3 ~cap:12);
  ignore (e ~src:2 ~dst:1 ~cap:4);
  ignore (e ~src:2 ~dst:4 ~cap:14);
  ignore (e ~src:3 ~dst:2 ~cap:9);
  ignore (e ~src:3 ~dst:5 ~cap:20);
  ignore (e ~src:4 ~dst:3 ~cap:7);
  ignore (e ~src:4 ~dst:5 ~cap:4);
  net

let test_flow_clrs () =
  let net = clrs_network () in
  check int "dinic value" 23 (Flow.max_flow net ~s:0 ~t:5);
  check int "edmonds-karp value" 23 (Flow.max_flow_edmonds_karp net ~s:0 ~t:5)

let test_flow_disconnected () =
  let net = Flow.create 4 in
  ignore (Flow.add_edge net ~src:0 ~dst:1 ~cap:5);
  ignore (Flow.add_edge net ~src:2 ~dst:3 ~cap:5);
  check int "no path" 0 (Flow.max_flow net ~s:0 ~t:3)

let test_flow_min_cut_consistent () =
  let net = clrs_network () in
  let value, side, cut = Flow.min_cut net ~s:0 ~t:5 in
  check int "cut value" 23 value;
  check bool "s on source side" true side.(0);
  check bool "t on sink side" false side.(5);
  let cut_cap =
    List.fold_left (fun acc id -> let _, _, c = Flow.arc net id in acc + c) 0 cut
  in
  check int "cut capacity = flow" 23 cut_cap

let test_flow_parallel_edges () =
  let net = Flow.create 2 in
  ignore (Flow.add_edge net ~src:0 ~dst:1 ~cap:3);
  ignore (Flow.add_edge net ~src:0 ~dst:1 ~cap:4);
  check int "parallel arcs accumulate" 7 (Flow.max_flow net ~s:0 ~t:1)

let test_flow_dinic_equals_ek_random () =
  (* Independent implementations agree on random networks. *)
  for seed = 1 to 25 do
    let rng = Random.State.make [| seed |] in
    let n = 2 + Random.State.int rng 8 in
    let net = Flow.create n in
    let arcs = Random.State.int rng 20 in
    for _ = 1 to arcs do
      let u = Random.State.int rng n and v = Random.State.int rng n in
      if u <> v then
        ignore (Flow.add_edge net ~src:u ~dst:v ~cap:(Random.State.int rng 10))
    done;
    let d = Flow.max_flow net ~s:0 ~t:(n - 1) in
    let ek = Flow.max_flow_edmonds_karp net ~s:0 ~t:(n - 1) in
    check int (Printf.sprintf "seed %d" seed) ek d
  done

(* --- Vertex cut ----------------------------------------------------------- *)

let test_vertex_cut_diamond () =
  (* s=0 - {1,2} - t=3: both middle vertices must be cut. *)
  let g = Undirected.create () in
  Undirected.ensure_nodes g 4;
  Undirected.add_edge g 0 1;
  Undirected.add_edge g 0 2;
  Undirected.add_edge g 1 3;
  Undirected.add_edge g 2 3;
  let r = Vertex_cut.min_cut g ~weight:(fun _ -> 1) ~s:0 ~t:3 in
  check int "value" 2 r.Vertex_cut.value;
  check int_list "cut" [ 1; 2 ] r.Vertex_cut.cut

let test_vertex_cut_path () =
  let g = Undirected.create () in
  Undirected.ensure_nodes g 4;
  Undirected.add_edge g 0 1;
  Undirected.add_edge g 1 2;
  Undirected.add_edge g 2 3;
  let r = Vertex_cut.min_cut g ~weight:(fun _ -> 1) ~s:0 ~t:3 in
  check int "value" 1 r.Vertex_cut.value;
  check int "single cut vertex" 1 (List.length r.Vertex_cut.cut)

let test_vertex_cut_weighted () =
  (* Two disjoint paths: one through heavy vertex 1, one through light
     vertices 2,4: cutting 1 (weight 5) vs cutting 2 (weight 1). *)
  let g = Undirected.create () in
  Undirected.ensure_nodes g 5;
  Undirected.add_edge g 0 1;
  Undirected.add_edge g 1 3;
  Undirected.add_edge g 0 2;
  Undirected.add_edge g 2 4;
  Undirected.add_edge g 4 3;
  let weight = function 1 -> 5 | _ -> 1 in
  let r = Vertex_cut.min_cut g ~weight ~s:0 ~t:3 in
  (* must cut both paths: vertex 1 (5) + one of {2,4} (1) = 6 *)
  check int "value" 6 r.Vertex_cut.value

let test_vertex_cut_inseparable () =
  let g = Undirected.create () in
  Undirected.ensure_nodes g 2;
  Undirected.add_edge g 0 1;
  Alcotest.check_raises "adjacent terminals" Vertex_cut.Inseparable (fun () ->
      ignore (Vertex_cut.min_cut g ~weight:(fun _ -> 1) ~s:0 ~t:1))

let test_vertex_cut_disconnected () =
  let g = Undirected.create () in
  Undirected.ensure_nodes g 2;
  let r = Vertex_cut.min_cut g ~weight:(fun _ -> 1) ~s:0 ~t:1 in
  check int "empty cut" 0 r.Vertex_cut.value

(* --- Undirected ------------------------------------------------------------ *)

let test_undirected_components () =
  let g = Undirected.create () in
  Undirected.ensure_nodes g 5;
  Undirected.add_edge g 0 1;
  Undirected.add_edge g 3 4;
  let comps = Undirected.components g in
  check Alcotest.(list (list int)) "components" [ [ 0; 1 ]; [ 2 ]; [ 3; 4 ] ] comps

let test_undirected_weights () =
  let g = Undirected.create () in
  Undirected.ensure_nodes g 2;
  Undirected.add_edge ~weight:7 g 0 1;
  check int "weight" 7 (Undirected.weight g 0 1);
  check int "weight symmetric" 7 (Undirected.weight g 1 0)

(* --- Hypergraph ------------------------------------------------------------ *)

let test_hypergraph_basics () =
  let h = Hypergraph.create () in
  Hypergraph.ensure_nodes h 4;
  let e1 = Hypergraph.add_edge ~label:"A" h [ 0; 1; 2 ] in
  let e2 = Hypergraph.add_edge ~label:"B" h [ 2; 3 ] in
  check int_list "edge nodes" [ 0; 1; 2 ] (Hypergraph.edge_nodes h e1);
  check bool "overlap" true (Hypergraph.edges_overlap h e1 e2);
  check bool "mem" true (Hypergraph.edge_mem h e1 1);
  check bool "not mem" false (Hypergraph.edge_mem h e2 0);
  check int_list "edges of node 2" [ e1; e2 ] (Hypergraph.edges_of_node h 2);
  check (Alcotest.option Alcotest.string) "label" (Some "A")
    (Hypergraph.edge_label h e1)

let test_hypergraph_connected_without () =
  let h = Hypergraph.create () in
  Hypergraph.ensure_nodes h 4;
  let e1 = Hypergraph.add_edge h [ 0; 1 ] in
  let _e2 = Hypergraph.add_edge h [ 1; 2 ] in
  let _e3 = Hypergraph.add_edge h [ 2; 3 ] in
  let all = Hypergraph.connected_without h ~removed:[] 0 in
  check bool "fully connected" true (all.(3));
  let cutoff = Hypergraph.connected_without h ~removed:[ e1 ] 0 in
  check bool "0 isolated" false cutoff.(1)

(* --- Hyper_cut -------------------------------------------------------------- *)

(* The Figure 4 instance: loops 1..6 are nodes 0..5; arrays are
   hyper-edges.  The minimum cut between loop 5 (node 4) and loop 6
   (node 5) removes only array A. *)
let figure4_hypergraph () =
  let h = Hypergraph.create () in
  Hypergraph.ensure_nodes h 6;
  let a = Hypergraph.add_edge ~label:"A" h [ 0; 1; 2; 4 ] in
  let b = Hypergraph.add_edge ~label:"B" h [ 3; 5 ] in
  let c = Hypergraph.add_edge ~label:"C" h [ 3; 5 ] in
  let d = Hypergraph.add_edge ~label:"D" h [ 0; 1; 2; 3 ] in
  let e = Hypergraph.add_edge ~label:"E" h [ 0; 1; 2; 3 ] in
  let f = Hypergraph.add_edge ~label:"F" h [ 0; 1; 2; 3 ] in
  (h, a, b, c, d, e, f)

let test_hyper_cut_figure4 () =
  let h, a, _, _, _, _, _ = figure4_hypergraph () in
  let r = Hyper_cut.min_cut h ~s:4 ~t:5 in
  check int "cut value" 1 r.Hyper_cut.value;
  check int_list "cut = {A}" [ a ] r.Hyper_cut.cut;
  check int_list "partition 1 = {loop5}" [ 4 ] r.Hyper_cut.part1;
  check int_list "partition 2" [ 0; 1; 2; 3; 5 ] r.Hyper_cut.part2

let test_hyper_cut_chain () =
  let h = Hypergraph.create () in
  Hypergraph.ensure_nodes h 3;
  let _a = Hypergraph.add_edge h [ 0; 1 ] in
  let b = Hypergraph.add_edge h [ 1; 2 ] in
  let r = Hyper_cut.min_cut h ~s:0 ~t:2 in
  check int "value" 1 r.Hyper_cut.value;
  check bool "cut is one of the two edges" true
    (r.Hyper_cut.cut = [ 0 ] || r.Hyper_cut.cut = [ b ])

let test_hyper_cut_disconnected () =
  let h = Hypergraph.create () in
  Hypergraph.ensure_nodes h 2;
  let r = Hyper_cut.min_cut h ~s:0 ~t:1 in
  check int "no cut needed" 0 r.Hyper_cut.value;
  check int_list "empty" [] r.Hyper_cut.cut

let test_hyper_cut_shared_edge () =
  (* s and t inside one hyper-edge: that edge must fall. *)
  let h = Hypergraph.create () in
  Hypergraph.ensure_nodes h 3;
  let a = Hypergraph.add_edge h [ 0; 1; 2 ] in
  let r = Hyper_cut.min_cut h ~s:0 ~t:2 in
  check int "value" 1 r.Hyper_cut.value;
  check int_list "cut" [ a ] r.Hyper_cut.cut

(* Brute-force oracle: minimum cut by enumerating edge subsets in
   increasing size order. *)
let brute_force_min_cut h ~s ~t =
  let m = Hypergraph.edge_count h in
  let rec subsets_of_size k from =
    if k = 0 then [ [] ]
    else if from >= m then []
    else
      List.map (fun rest -> from :: rest) (subsets_of_size (k - 1) (from + 1))
      @ subsets_of_size k (from + 1)
  in
  let disconnects removed =
    let side = Hypergraph.connected_without h ~removed s in
    not side.(t)
  in
  let rec go k =
    if k > m then m
    else if List.exists disconnects (subsets_of_size k 0) then k
    else go (k + 1)
  in
  go 0

let test_hyper_cut_matches_brute_force () =
  for seed = 1 to 30 do
    let h =
      Graph_gen.hypergraph ~seed ~nodes:6 ~edges:(3 + (seed mod 5)) ~max_arity:4
    in
    let r = Hyper_cut.min_cut h ~s:0 ~t:5 in
    let expected = brute_force_min_cut h ~s:0 ~t:5 in
    check int (Printf.sprintf "seed %d optimal" seed) expected r.Hyper_cut.value;
    (* the returned cut really disconnects *)
    let side = Hypergraph.connected_without h ~removed:r.Hyper_cut.cut 0 in
    check bool (Printf.sprintf "seed %d separates" seed) false side.(5)
  done

(* --- Kway -------------------------------------------------------------------- *)

let test_kway_triangle () =
  (* Triangle with unit weights, all three vertices terminals: every edge
     joins two terminals directly, so all three must be removed. *)
  let g = Undirected.create () in
  Undirected.ensure_nodes g 3;
  Undirected.add_edge g 0 1;
  Undirected.add_edge g 1 2;
  Undirected.add_edge g 0 2;
  let exact = Kway.exact g ~terminals:[ 0; 1; 2 ] in
  check int "exact" 3 exact.Kway.value;
  let iso = Kway.isolation g ~terminals:[ 0; 1; 2 ] in
  check bool "isolation >= exact" true (iso.Kway.value >= exact.Kway.value);
  check bool "isolation valid" true
    (Kway.cut_value g iso.Kway.assignment <= iso.Kway.value)

let test_kway_star () =
  (* Star: centre 4 connected to terminals 0..3; must cut 3 edges. *)
  let g = Undirected.create () in
  Undirected.ensure_nodes g 5;
  List.iter (fun t -> Undirected.add_edge g 4 t) [ 0; 1; 2; 3 ];
  let exact = Kway.exact g ~terminals:[ 0; 1; 2; 3 ] in
  check int "exact star" 3 exact.Kway.value

let test_kway_exact_separates () =
  for seed = 1 to 15 do
    let g = Graph_gen.undirected ~seed ~nodes:7 ~edge_prob:0.4 ~max_weight:3 in
    let terminals = [ 0; 6 ] in
    let r = Kway.exact g ~terminals in
    check int
      (Printf.sprintf "seed %d assignment consistent" seed)
      r.Kway.value
      (Kway.cut_value g r.Kway.assignment)
  done

let test_kway_isolation_upper_bounds () =
  for seed = 1 to 15 do
    let g = Graph_gen.undirected ~seed ~nodes:7 ~edge_prob:0.5 ~max_weight:2 in
    let terminals = [ 0; 3; 6 ] in
    let exact = Kway.exact g ~terminals in
    let iso = Kway.isolation g ~terminals in
    check bool
      (Printf.sprintf "seed %d iso >= exact" seed)
      true
      (iso.Kway.value >= exact.Kway.value);
    (* isolation heuristic guarantee: within 2 - 2/k of optimal *)
    check bool
      (Printf.sprintf "seed %d iso within bound" seed)
      true
      (float_of_int iso.Kway.value
      <= (2.0 *. float_of_int (max 1 exact.Kway.value)) +. 1e-9)
  done

(* --- QCheck properties -------------------------------------------------------- *)

let qcheck_cases =
  let open QCheck in
  [ Test.make ~name:"topo order respects all edges" ~count:100
      (pair small_nat (pair small_nat small_nat))
      (fun (seed, (n_raw, _)) ->
        let nodes = 2 + (n_raw mod 10) in
        let g = Graph_gen.dag ~seed ~nodes ~edge_prob:0.3 in
        match Topo.sort g with
        | None -> false
        | Some order -> valid_topo_order g order);
    Test.make ~name:"scc of a DAG is all singletons" ~count:100 small_nat
      (fun seed ->
        let g = Graph_gen.dag ~seed ~nodes:8 ~edge_prob:0.3 in
        Topo.scc g |> List.for_all (fun c -> List.length c = 1));
    Test.make ~name:"hyper cut always separates" ~count:50 small_nat
      (fun seed ->
        let h = Graph_gen.hypergraph ~seed ~nodes:8 ~edges:8 ~max_arity:4 in
        let r = Hyper_cut.min_cut h ~s:0 ~t:7 in
        let side = Hypergraph.connected_without h ~removed:r.Hyper_cut.cut 0 in
        not side.(7));
    Test.make ~name:"min cut value is symmetric in s,t" ~count:50 small_nat
      (fun seed ->
        let h = Graph_gen.hypergraph ~seed ~nodes:7 ~edges:7 ~max_arity:3 in
        let a = Hyper_cut.min_cut h ~s:0 ~t:6 in
        let b = Hyper_cut.min_cut h ~s:6 ~t:0 in
        a.Hyper_cut.value = b.Hyper_cut.value) ]

let suites =
  [ ( "graph.digraph",
      [ Alcotest.test_case "basics" `Quick test_digraph_basics;
        Alcotest.test_case "bounds checking" `Quick test_digraph_bounds;
        Alcotest.test_case "reverse" `Quick test_digraph_reverse;
        Alcotest.test_case "copy independence" `Quick test_digraph_copy_independent;
        Alcotest.test_case "self loop" `Quick test_digraph_self_loop ] );
    ( "graph.topo",
      [ Alcotest.test_case "sort dag" `Quick test_topo_sort_dag;
        Alcotest.test_case "sort cycle" `Quick test_topo_sort_cycle;
        Alcotest.test_case "scc" `Quick test_scc;
        Alcotest.test_case "scc ordering" `Quick test_scc_ordering;
        Alcotest.test_case "reachable" `Quick test_reachable;
        Alcotest.test_case "transitive closure" `Quick test_transitive_closure ] );
    ( "graph.flow",
      [ Alcotest.test_case "CLRS instance" `Quick test_flow_clrs;
        Alcotest.test_case "disconnected" `Quick test_flow_disconnected;
        Alcotest.test_case "min cut consistency" `Quick test_flow_min_cut_consistent;
        Alcotest.test_case "parallel edges" `Quick test_flow_parallel_edges;
        Alcotest.test_case "dinic = edmonds-karp" `Quick test_flow_dinic_equals_ek_random ] );
    ( "graph.vertex_cut",
      [ Alcotest.test_case "diamond" `Quick test_vertex_cut_diamond;
        Alcotest.test_case "path" `Quick test_vertex_cut_path;
        Alcotest.test_case "weighted" `Quick test_vertex_cut_weighted;
        Alcotest.test_case "inseparable" `Quick test_vertex_cut_inseparable;
        Alcotest.test_case "disconnected" `Quick test_vertex_cut_disconnected ] );
    ( "graph.undirected",
      [ Alcotest.test_case "components" `Quick test_undirected_components;
        Alcotest.test_case "weights" `Quick test_undirected_weights ] );
    ( "graph.hypergraph",
      [ Alcotest.test_case "basics" `Quick test_hypergraph_basics;
        Alcotest.test_case "connected_without" `Quick test_hypergraph_connected_without ] );
    ( "graph.hyper_cut",
      [ Alcotest.test_case "figure 4 instance" `Quick test_hyper_cut_figure4;
        Alcotest.test_case "chain" `Quick test_hyper_cut_chain;
        Alcotest.test_case "disconnected" `Quick test_hyper_cut_disconnected;
        Alcotest.test_case "shared edge" `Quick test_hyper_cut_shared_edge;
        Alcotest.test_case "matches brute force" `Slow test_hyper_cut_matches_brute_force ] );
    ( "graph.kway",
      [ Alcotest.test_case "triangle" `Quick test_kway_triangle;
        Alcotest.test_case "star" `Quick test_kway_star;
        Alcotest.test_case "exact separates" `Quick test_kway_exact_separates;
        Alcotest.test_case "isolation bounds" `Quick test_kway_isolation_upper_bounds ] );
    ("graph.properties", List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_cases)
  ]
