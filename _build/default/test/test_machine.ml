open Bw_machine

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let flt = Alcotest.float 1e-6

let small_geometry =
  (* 4 sets x 2 ways x 16B lines = 128 bytes *)
  { Cache.size_bytes = 128; line_bytes = 16; associativity = 2 }

(* --- Cache --------------------------------------------------------------- *)

let test_cache_hit_after_miss () =
  let c = Cache.create [ small_geometry ] in
  Cache.read c ~addr:0 ~bytes:8;
  Cache.read c ~addr:8 ~bytes:8;
  let s = Cache.stats c 0 in
  check int "reads" 2 s.Cache.reads;
  check int "one miss (same line)" 1 s.Cache.read_misses;
  check int "memory lines" 1 (Cache.memory_lines_in c)

let test_cache_line_granularity () =
  let c = Cache.create [ small_geometry ] in
  (* an access spanning two lines touches both *)
  Cache.read c ~addr:12 ~bytes:8;
  let s = Cache.stats c 0 in
  check int "two line accesses" 2 s.Cache.reads;
  check int "two misses" 2 s.Cache.read_misses

let test_cache_lru_eviction () =
  let c = Cache.create [ small_geometry ] in
  (* set 0 holds lines with line_addr mod 4 = 0: addresses 0, 64, 128 *)
  Cache.read c ~addr:0 ~bytes:8;
  Cache.read c ~addr:64 ~bytes:8;
  Cache.read c ~addr:128 ~bytes:8;
  (* evicts line 0 (LRU) *)
  Cache.read c ~addr:0 ~bytes:8;
  let s = Cache.stats c 0 in
  check int "all four miss" 4 s.Cache.read_misses

let test_cache_lru_refresh () =
  let c = Cache.create [ small_geometry ] in
  Cache.read c ~addr:0 ~bytes:8;
  Cache.read c ~addr:64 ~bytes:8;
  Cache.read c ~addr:0 ~bytes:8;
  (* refresh line 0: now 64 is LRU *)
  Cache.read c ~addr:128 ~bytes:8;
  (* evicts 64 *)
  Cache.read c ~addr:0 ~bytes:8;
  (* still a hit *)
  let s = Cache.stats c 0 in
  check int "misses" 3 s.Cache.read_misses;
  check int "hits" 2 (s.Cache.reads - s.Cache.read_misses)

let test_cache_writeback () =
  let c = Cache.create [ small_geometry ] in
  Cache.write c ~addr:0 ~bytes:8;
  (* dirty line in set 0 *)
  Cache.read c ~addr:64 ~bytes:8;
  Cache.read c ~addr:128 ~bytes:8;
  (* evicts dirty line 0 -> writeback *)
  let s = Cache.stats c 0 in
  check int "writebacks" 1 s.Cache.writebacks;
  check int "memory lines out" 1 (Cache.memory_lines_out c)

let test_cache_write_allocate () =
  let c = Cache.create [ small_geometry ] in
  Cache.write c ~addr:0 ~bytes:8;
  let s = Cache.stats c 0 in
  check int "write miss" 1 s.Cache.write_misses;
  (* write-allocate fetches the line from memory *)
  check int "line fetched" 1 (Cache.memory_lines_in c);
  Cache.read c ~addr:8 ~bytes:8;
  check int "subsequent read hits" 0 s.Cache.read_misses

let test_cache_flush () =
  let c = Cache.create [ small_geometry ] in
  Cache.write c ~addr:0 ~bytes:8;
  Cache.write c ~addr:16 ~bytes:8;
  check int "nothing written yet" 0 (Cache.memory_lines_out c);
  Cache.flush c;
  check int "both lines flushed" 2 (Cache.memory_lines_out c);
  Cache.flush c;
  check int "flush idempotent" 2 (Cache.memory_lines_out c)

let test_cache_two_levels () =
  let l2 = { Cache.size_bytes = 512; line_bytes = 32; associativity = 2 } in
  let c = Cache.create [ small_geometry; l2 ] in
  Cache.read c ~addr:0 ~bytes:8;
  let s1 = Cache.stats c 0 and s2 = Cache.stats c 1 in
  check int "L1 miss" 1 s1.Cache.read_misses;
  check int "L2 read" 1 s2.Cache.reads;
  check int "L2 miss" 1 s2.Cache.read_misses;
  (* L1 eviction of a clean line does not touch L2 *)
  Cache.read c ~addr:64 ~bytes:8;
  Cache.read c ~addr:128 ~bytes:8;
  check int "L2 reads grow with L1 misses" 3 s2.Cache.reads

let test_cache_direct_mapped_conflicts () =
  let direct = { Cache.size_bytes = 128; line_bytes = 16; associativity = 1 } in
  let c = Cache.create [ direct ] in
  (* two addresses 128 apart map to the same set and thrash *)
  for _ = 1 to 10 do
    Cache.read c ~addr:0 ~bytes:8;
    Cache.read c ~addr:128 ~bytes:8
  done;
  let s = Cache.stats c 0 in
  check int "all conflict misses" 20 s.Cache.read_misses

let test_cache_bad_geometry () =
  Alcotest.check_raises "line not power of two"
    (Cache.Bad_geometry "line size must be a power of two") (fun () ->
      ignore
        (Cache.create
           [ { Cache.size_bytes = 120; line_bytes = 24; associativity = 1 } ]))

let test_cache_clear () =
  let c = Cache.create [ small_geometry ] in
  Cache.write c ~addr:0 ~bytes:8;
  Cache.clear c;
  let s = Cache.stats c 0 in
  check int "stats reset" 0 s.Cache.writes;
  Cache.read c ~addr:0 ~bytes:8;
  check int "contents invalidated" 1 s.Cache.read_misses

let test_write_through_hit_forwards () =
  let c = Cache.create ~write_policy:Cache.Write_through [ small_geometry ] in
  Cache.read c ~addr:0 ~bytes:8;
  (* line present: the store updates it and still goes to memory *)
  Cache.write c ~addr:0 ~bytes:8;
  check int "store forwarded" 1 (Cache.memory_lines_out c);
  Cache.write c ~addr:0 ~bytes:8;
  check int "every store forwarded" 2 (Cache.memory_lines_out c)

let test_write_through_no_allocate () =
  let c = Cache.create ~write_policy:Cache.Write_through [ small_geometry ] in
  Cache.write c ~addr:0 ~bytes:8;
  (* miss: no fetch, store goes straight down *)
  check int "no line fetched" 0 (Cache.memory_lines_in c);
  check int "store forwarded" 1 (Cache.memory_lines_out c);
  Cache.read c ~addr:0 ~bytes:8;
  let s = Cache.stats c 0 in
  check int "read still misses (no allocation happened)" 1 s.Cache.read_misses

let test_write_through_reads_like_write_back () =
  let wb = Cache.create [ small_geometry ] in
  let wt = Cache.create ~write_policy:Cache.Write_through [ small_geometry ] in
  for i = 0 to 63 do
    Cache.read wb ~addr:(8 * i) ~bytes:8;
    Cache.read wt ~addr:(8 * i) ~bytes:8
  done;
  check int "same read misses" (Cache.stats wb 0).Cache.read_misses
    (Cache.stats wt 0).Cache.read_misses

(* --- Machine / balance ----------------------------------------------------- *)

let test_origin_balance () =
  let b = Machine.balance Machine.origin2000 in
  check Alcotest.(list string) "boundaries"
    [ "L1-Reg"; "L2-L1"; "Mem-L2" ]
    (Machine.boundary_names Machine.origin2000);
  match b with
  | [ reg; l2; mem ] ->
    check flt "register balance" 4.0 reg;
    check flt "cache balance" 4.0 l2;
    check flt "memory balance" 0.8 mem
  | _ -> Alcotest.fail "expected three boundaries"

let test_scaled_machine () =
  let m =
    Machine.scaled ~name:"2x" ~memory_factor:2.0 Machine.origin2000
  in
  match Machine.balance m with
  | [ _; _; mem ] -> check flt "memory doubled" 1.6 mem
  | _ -> Alcotest.fail "expected three boundaries"

(* --- Layout ------------------------------------------------------------------ *)

let test_layout_packed () =
  let l = Layout.assign ~stagger_bytes:0 [ ("a", 100); ("b", 50) ] in
  let a = Layout.base l "a" and b = Layout.base l "b" in
  check bool "ordered" true (a < b);
  check bool "8-aligned" true (a mod 8 = 0 && b mod 8 = 0);
  check bool "no overlap" true (b >= a + 100)

let test_layout_stagger () =
  let l = Layout.assign ~stagger_bytes:4096 [ ("a", 8); ("b", 8) ] in
  check bool "stagger" true (Layout.base l "b" - Layout.base l "a" >= 4096)

let test_layout_duplicate () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Layout.assign: duplicate variable a") (fun () ->
      ignore (Layout.assign ~stagger_bytes:0 [ ("a", 8); ("a", 8) ]))

(* --- Translate ----------------------------------------------------------------- *)

let test_translate_identity () =
  check int "identity" 12345 (Translate.apply Translate.identity 12345)

let test_translate_hashed_properties () =
  let t = Translate.hashed ~page_bytes:4096 ~seed:7 in
  (* offsets within a page are preserved *)
  let a = Translate.apply t 4096 in
  let b = Translate.apply t 4100 in
  check int "offset preserved" 4 (b - a);
  (* mapping is stable *)
  check int "stable" a (Translate.apply t 4096);
  (* distinct pages stay distinct *)
  let pages = List.init 200 (fun i -> Translate.apply t (i * 4096) / 4096) in
  let distinct = List.sort_uniq compare pages in
  check int "injective" 200 (List.length distinct)

let test_translate_reset () =
  let t = Translate.hashed ~page_bytes:4096 ~seed:7 in
  let a = Translate.apply t 0 in
  Translate.reset t;
  (* deterministic: same first draw after reset *)
  check int "deterministic" a (Translate.apply t 0)

(* --- Timing -------------------------------------------------------------------- *)

let counters_with ~flops ~loads ~stores =
  let c = Counters.create () in
  c.Counters.flops <- flops;
  c.Counters.loads <- loads;
  c.Counters.stores <- stores;
  c

let test_timing_cpu_bound () =
  let m = Machine.origin2000 in
  let cache = Machine.fresh_cache m in
  (* no memory traffic at all: CPU binds *)
  let c = counters_with ~flops:1_000_000 ~loads:0 ~stores:0 in
  let b = Timing.predict m cache c in
  check Alcotest.string "binding" "CPU" b.Timing.binding_resource;
  check flt "time" (1_000_000.0 /. 390e6) b.Timing.total

let test_timing_memory_bound () =
  let m = Machine.origin2000 in
  let cache = Machine.fresh_cache m in
  (* stream 1M doubles with almost no compute *)
  for i = 0 to 999_999 do
    Cache.read cache ~addr:(8 * i) ~bytes:8
  done;
  let c = counters_with ~flops:1000 ~loads:1_000_000 ~stores:0 in
  let b = Timing.predict m cache c in
  check Alcotest.string "binding" "Mem-L2" b.Timing.binding_resource;
  let bw = Timing.effective_bandwidth m cache c in
  (* effective bandwidth approaches the 312 MB/s configured supply *)
  check bool "near machine bandwidth" true (bw > 280e6 && bw <= 315e6)

let test_timing_utilisation_capped () =
  let m = Machine.origin2000 in
  let cache = Machine.fresh_cache m in
  for i = 0 to 99_999 do
    Cache.read cache ~addr:(8 * i) ~bytes:8
  done;
  let c = counters_with ~flops:1 ~loads:100_000 ~stores:0 in
  let u = Timing.memory_utilisation m cache c in
  check bool "in [0,1]" true (u >= 0.0 && u <= 1.0);
  check bool "saturated" true (u > 0.9)

(* --- Probes --------------------------------------------------------------------- *)

let test_stream_calibration () =
  let r = Probes.stream ~elements:500_000 Machine.origin2000 in
  (* The Origin2000 model should sustain roughly its configured 312 MB/s
     on reads; STREAM-style accounting (no write-allocate traffic) lands
     copy/scale near 2/3 of that because a copy moves 3 bytes on the bus
     per 2 bytes STREAM credits. *)
  check bool "copy in range"
    true
    (r.Probes.copy > 100.0 && r.Probes.copy < 400.0);
  check bool "triad in range" true
    (r.Probes.triad > 100.0 && r.Probes.triad < 400.0)

let test_cache_read_curve_shape () =
  let curve =
    Probes.cache_read_curve Machine.origin2000
      ~sizes:[ 8 * 1024; 1024 * 1024; 32 * 1024 * 1024 ]
  in
  match curve with
  | [ (_, small); (_, mid); (_, large) ] ->
    (* in-cache working sets sustain far more bandwidth than memory *)
    check bool "L1 > L2" true (small > mid);
    check bool "L2 > memory" true (mid > large)
  | _ -> Alcotest.fail "expected three points"

let test_sustained_memory_bandwidth () =
  let bw = Probes.sustained_memory_bandwidth Machine.origin2000 in
  check bool "close to 312 MB/s" true (bw > 250e6 && bw <= 315e6)

(* --- QCheck --------------------------------------------------------------------- *)

let qcheck_cases =
  let open QCheck in
  [ Test.make ~name:"cache misses never exceed accesses" ~count:50
      (pair small_nat (small_list (pair small_nat bool)))
      (fun (assoc_raw, ops) ->
        let geometry =
          { Cache.size_bytes = 256;
            line_bytes = 16;
            associativity = 1 + (assoc_raw mod 4) }
        in
        let geometry =
          { geometry with
            size_bytes = 16 * geometry.Cache.associativity * 4 }
        in
        let c = Cache.create [ geometry ] in
        List.iter
          (fun (addr, is_write) ->
            let addr = addr * 8 in
            if is_write then Cache.write c ~addr ~bytes:8
            else Cache.read c ~addr ~bytes:8)
          ops;
        let s = Cache.stats c 0 in
        s.Cache.read_misses <= s.Cache.reads
        && s.Cache.write_misses <= s.Cache.writes);
    Test.make ~name:"memory traffic conservation" ~count:50
      (small_list small_nat) (fun addrs ->
        (* every fetched line was a last-level miss *)
        let c = Cache.create [ small_geometry ] in
        List.iter (fun a -> Cache.read c ~addr:(a * 8) ~bytes:8) addrs;
        let s = Cache.stats c 0 in
        Cache.memory_lines_in c = s.Cache.read_misses + s.Cache.write_misses);
    Test.make ~name:"higher associativity never hurts a stream" ~count:30
      small_nat (fun seed ->
        let mk assoc =
          Cache.create
            [ { Cache.size_bytes = 512; line_bytes = 16; associativity = assoc } ]
        in
        let c1 = mk 1 and c2 = mk 4 in
        let rng = Random.State.make [| seed |] in
        (* a handful of interleaved sequential streams *)
        let bases = Array.init 3 (fun i -> 1024 * i * (1 + Random.State.int rng 4)) in
        for i = 0 to 200 do
          Array.iter
            (fun base ->
              Cache.read c1 ~addr:(base + (8 * i)) ~bytes:8;
              Cache.read c2 ~addr:(base + (8 * i)) ~bytes:8)
            bases
        done;
        let m1 = (Cache.stats c1 0).Cache.read_misses in
        let m2 = (Cache.stats c2 0).Cache.read_misses in
        m2 <= m1) ]

let suites =
  [ ( "machine.cache",
      [ Alcotest.test_case "hit after miss" `Quick test_cache_hit_after_miss;
        Alcotest.test_case "line granularity" `Quick test_cache_line_granularity;
        Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
        Alcotest.test_case "LRU refresh" `Quick test_cache_lru_refresh;
        Alcotest.test_case "writeback" `Quick test_cache_writeback;
        Alcotest.test_case "write allocate" `Quick test_cache_write_allocate;
        Alcotest.test_case "flush" `Quick test_cache_flush;
        Alcotest.test_case "two levels" `Quick test_cache_two_levels;
        Alcotest.test_case "direct-mapped conflicts" `Quick test_cache_direct_mapped_conflicts;
        Alcotest.test_case "bad geometry" `Quick test_cache_bad_geometry;
        Alcotest.test_case "write-through hit" `Quick test_write_through_hit_forwards;
        Alcotest.test_case "write-through no-allocate" `Quick test_write_through_no_allocate;
        Alcotest.test_case "write-through reads" `Quick test_write_through_reads_like_write_back;
        Alcotest.test_case "clear" `Quick test_cache_clear ] );
    ( "machine.balance",
      [ Alcotest.test_case "origin2000" `Quick test_origin_balance;
        Alcotest.test_case "scaled" `Quick test_scaled_machine ] );
    ( "machine.layout",
      [ Alcotest.test_case "packed" `Quick test_layout_packed;
        Alcotest.test_case "stagger" `Quick test_layout_stagger;
        Alcotest.test_case "duplicate" `Quick test_layout_duplicate ] );
    ( "machine.translate",
      [ Alcotest.test_case "identity" `Quick test_translate_identity;
        Alcotest.test_case "hashed" `Quick test_translate_hashed_properties;
        Alcotest.test_case "reset" `Quick test_translate_reset ] );
    ( "machine.timing",
      [ Alcotest.test_case "cpu bound" `Quick test_timing_cpu_bound;
        Alcotest.test_case "memory bound" `Quick test_timing_memory_bound;
        Alcotest.test_case "utilisation capped" `Quick test_timing_utilisation_capped ] );
    ( "machine.probes",
      [ Alcotest.test_case "stream calibration" `Slow test_stream_calibration;
        Alcotest.test_case "cache curve shape" `Slow test_cache_read_curve_shape;
        Alcotest.test_case "sustained memory bw" `Slow test_sustained_memory_bandwidth ] );
    ("machine.properties", List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_cases)
  ]
