(* bwc — the bandwidth compiler driver.

   Subcommands:
     bwc list                      catalogue of built-in workloads
     bwc show <prog>               pretty-print a workload or .bw source file
     bwc analyze <prog>            balance, predicted time, bottleneck
     bwc optimize <prog>           run the fusion/storage/store-elimination
                                   pipeline and report before/after
     bwc fuse <prog>               compare fusion plans and their costs
     bwc experiments               regenerate the paper's tables *)

open Cmdliner

let machines =
  [ ("origin2000", Bw_machine.Machine.origin2000);
    ("exemplar", Bw_machine.Machine.exemplar);
    ("origin-scaled", Bw_core.Experiments.origin_scaled);
    ("unconstrained", Bw_machine.Machine.unconstrained) ]

let machine_conv =
  let parse s =
    match List.assoc_opt s machines with
    | Some m -> Ok m
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown machine '%s' (try %s)" s
             (String.concat ", " (List.map fst machines))))
  in
  let print ppf (m : Bw_machine.Machine.t) =
    Format.pp_print_string ppf m.Bw_machine.Machine.name
  in
  Arg.conv (parse, print)

let machine_arg =
  Arg.(
    value
    & opt machine_conv Bw_machine.Machine.origin2000
    & info [ "m"; "machine" ] ~docv:"MACHINE"
        ~doc:"Machine model: origin2000, exemplar, origin-scaled or unconstrained.")

let scale_arg =
  Arg.(
    value & opt int 1
    & info [ "s"; "scale" ] ~docv:"SCALE"
        ~doc:"Workload size: 1 quick, 2 full, 3 stress.")

(* Resolve a program: registry name or path to a surface-language file. *)
let load_program ~scale name =
  match Bw_workloads.Registry.find name with
  | Some entry -> Ok (entry.Bw_workloads.Registry.build ~scale)
  | None ->
    if Sys.file_exists name then begin
      let ic = open_in name in
      let len = in_channel_length ic in
      let src = really_input_string ic len in
      close_in ic;
      match Bw_ir.Parser.parse_program src with
      | Ok p -> Ok p
      | Error e -> Error (Format.asprintf "%a" Bw_ir.Parser.pp_parse_error e)
    end
    else
      Error
        (Printf.sprintf
           "'%s' is neither a built-in workload nor a file (try 'bwc list')"
           name)

let program_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"PROGRAM" ~doc:"Workload name or .bw source file.")

let or_die = function
  | Ok v -> v
  | Error msg ->
    Format.eprintf "bwc: %s@." msg;
    exit 1

(* --- list ----------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Bw_workloads.Registry.entry) ->
        Format.printf "%-16s %s@." e.Bw_workloads.Registry.name
          e.Bw_workloads.Registry.description)
      Bw_workloads.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the built-in workloads")
    Term.(const run $ const ())

(* --- show ----------------------------------------------------------------- *)

let show_cmd =
  let run name scale =
    let p = or_die (load_program ~scale name) in
    Format.printf "%a@." Bw_ir.Pretty.pp_program p
  in
  Cmd.v (Cmd.info "show" ~doc:"Pretty-print a program")
    Term.(const run $ program_arg $ scale_arg)

(* --- analyze -------------------------------------------------------------- *)

let analyze machine p =
  let r = Bw_exec.Run.simulate ~machine p in
  Format.printf "program: %s@." p.Bw_ir.Ast.prog_name;
  Format.printf "machine: %s@.@." machine.Bw_machine.Machine.name;
  Format.printf "counters: %a@.@." Bw_machine.Counters.pp r.Bw_exec.Run.counters;
  Format.printf "program balance (bytes/flop):@.";
  List.iter
    (fun (name, v) -> Format.printf "  %-8s %8.2f@." name v)
    (Bw_exec.Run.program_balance r);
  Format.printf "@.machine balance (bytes/flop):@.";
  List.iter2
    (fun name v -> Format.printf "  %-8s %8.2f@." name v)
    (Bw_machine.Machine.boundary_names machine)
    (Bw_machine.Machine.balance machine);
  let row = { Bw_core.Balance.name = p.Bw_ir.Ast.prog_name;
              per_boundary = Bw_exec.Run.program_balance r } in
  let resource, ratio = Bw_core.Balance.worst_ratio row machine in
  Format.printf
    "@.demand/supply: worst at %s (%.1fx) -> CPU utilisation bound %.0f%%@."
    resource ratio
    (100.0 *. Bw_core.Balance.cpu_utilisation_bound row machine);
  Format.printf "@.predicted time:@.%a@." Bw_machine.Timing.pp_breakdown
    r.Bw_exec.Run.breakdown;
  Format.printf "effective memory bandwidth: %.0f MB/s@."
    (Bw_exec.Run.effective_bandwidth r /. 1e6)

let analyze_cmd =
  let run name scale machine = analyze machine (or_die (load_program ~scale name)) in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Balance and predicted performance of a program")
    Term.(const run $ program_arg $ scale_arg $ machine_arg)

(* --- optimize --------------------------------------------------------------- *)

let optimize_cmd =
  let run name scale machine print_program =
    let p = or_die (load_program ~scale name) in
    let p', report = Bw_transform.Strategy.run p in
    Format.printf "%a@.@." Bw_transform.Strategy.pp_report report;
    let before = Bw_exec.Run.simulate ~machine p in
    let after = Bw_exec.Run.simulate ~machine p' in
    let traffic r =
      float_of_int (Bw_machine.Timing.memory_bytes r.Bw_exec.Run.cache) /. 1e6
    in
    Format.printf "memory traffic: %.2f MB -> %.2f MB@." (traffic before)
      (traffic after);
    Format.printf "predicted time: %.2f ms -> %.2f ms (%.2fx)@."
      (1e3 *. Bw_exec.Run.seconds before)
      (1e3 *. Bw_exec.Run.seconds after)
      (Bw_exec.Run.seconds before /. Bw_exec.Run.seconds after);
    let same =
      Bw_exec.Interp.equal_observation before.Bw_exec.Run.observation
        after.Bw_exec.Run.observation
    in
    Format.printf "observable behaviour preserved: %b@." same;
    if print_program then Format.printf "@.%a@." Bw_ir.Pretty.pp_program p'
  in
  let print_flag =
    Arg.(value & flag & info [ "p"; "print" ] ~doc:"Print the transformed program.")
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Apply the bandwidth-reduction pipeline and compare")
    Term.(const run $ program_arg $ scale_arg $ machine_arg $ print_flag)

(* --- fuse ------------------------------------------------------------------- *)

let fuse_cmd =
  let run name scale =
    let p = or_die (load_program ~scale name) in
    let g = Bw_fusion.Fusion_graph.build p in
    Format.printf "%a@.@." Bw_fusion.Fusion_graph.pp g;
    let report label plan =
      Format.printf "%-28s arrays loaded %2d, cross weight %2d, %d partition(s)@."
        label
        (Bw_fusion.Cost.bandwidth_cost g plan)
        (Bw_fusion.Cost.edge_weight_cost g plan)
        (List.length plan)
    in
    report "no fusion:" (Bw_fusion.Cost.unfused g);
    report "edge-weighted greedy:" (Bw_fusion.Edge_weighted.greedy_merge g);
    report "bandwidth-minimal:" (Bw_fusion.Bandwidth_minimal.multi_partition g);
    if Bw_fusion.Fusion_graph.node_count g <= 10 then
      report "exhaustive optimum:" (Bw_fusion.Bandwidth_minimal.exhaustive g)
  in
  Cmd.v (Cmd.info "fuse" ~doc:"Compare fusion strategies on a program")
    Term.(const run $ program_arg $ scale_arg)

(* --- advise --------------------------------------------------------------- *)

let advise_cmd =
  let run name scale machine =
    let p = or_die (load_program ~scale name) in
    let report = Bw_core.Advisor.diagnose ~machine p in
    Format.printf "%a@." Bw_core.Advisor.pp_report report
  in
  Cmd.v
    (Cmd.info "advise"
       ~doc:"Suggest bandwidth-reducing transformations, ranked by measured saving")
    Term.(const run $ program_arg $ scale_arg $ machine_arg)

(* --- reuse ----------------------------------------------------------------- *)

let reuse_cmd =
  let run name scale granularity =
    let p = or_die (load_program ~scale name) in
    let t = Bw_exec.Run.reuse_profile ~granularity p in
    Format.printf
      "reuse profile of %s (block = %d bytes): %d accesses, %d blocks, %d cold@.@."
      p.Bw_ir.Ast.prog_name granularity
      (Bw_machine.Reuse.total t)
      (Bw_machine.Reuse.footprint_blocks t)
      (Bw_machine.Reuse.cold t);
    Format.printf "reuse-distance histogram (blocks):@.";
    List.iter
      (fun (lo, count) -> Format.printf "  >= %-8d %d@." lo count)
      (Bw_machine.Reuse.histogram t);
    Format.printf "@.predicted miss ratio vs fully-associative LRU size:@.";
    List.iter
      (fun (size, mr) ->
        Format.printf "  %8d KB  %5.1f%%@." (size / 1024) (100.0 *. mr))
      (Bw_machine.Reuse.curve t
         ~sizes:
           [ 1024; 4 * 1024; 16 * 1024; 64 * 1024; 256 * 1024;
             1024 * 1024; 4 * 1024 * 1024 ])
  in
  let granularity =
    Arg.(
      value & opt int 32
      & info [ "g"; "granularity" ] ~docv:"BYTES"
          ~doc:"Block size for reuse tracking (cache line).")
  in
  Cmd.v
    (Cmd.info "reuse"
       ~doc:"Reuse-distance profile and cache-size-independent miss-ratio curve")
    Term.(const run $ program_arg $ scale_arg $ granularity)

(* --- experiments -------------------------------------------------------------- *)

let experiments_cmd =
  let run scale only =
    List.iter
      (fun (id, f) ->
        match only with
        | Some w when w <> id -> ()
        | _ -> Format.printf "%a@." Bw_core.Table.render (f ?scale:(Some scale) ()))
      Bw_core.Experiments.all
  in
  let only =
    Arg.(
      value
      & opt (some string) None
      & info [ "t"; "table" ] ~docv:"ID"
          ~doc:"Only this table (e1, fig1..fig8, sp, ablation-*).")
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Regenerate the paper's tables and figures")
    Term.(const run $ scale_arg $ only)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "bwc" ~version:"1.0"
      ~doc:
        "Bandwidth-oriented compilation: balance analysis, bandwidth-minimal \
         loop fusion, storage reduction and store elimination (Ding & \
         Kennedy, IPPS 2000)"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [ list_cmd; show_cmd; analyze_cmd; optimize_cmd; fuse_cmd;
            advise_cmd; reuse_cmd; experiments_cmd ]))
