(** Data-dependence tests between array references and the fusion-legality
    judgement built on them.

    The tests are the classical ZIV / strong-SIV family restricted to the
    loop being fused: for a pair of references with affine subscripts
    [c*i + k1] and [c*i + k2] in some dimension, the dependence distance
    is [(k1 - k2) / c] when integral, and the references are independent
    when a dimension admits no solution.  Anything non-affine or with
    mismatched coefficients is Unknown and treated conservatively. *)

type answer =
  | Independent  (** the references can never touch the same element *)
  | Dependent of int option
      (** they can; [Some d] when every conflict satisfies
          [iter2 - iter1 = d] for the tested index *)
  | Unknown  (** analysis gave up; assume the worst *)

val pp_answer : Format.formatter -> answer -> unit

(** [pair_test ~index r1 r2] relates iterations of the loop [index]
    between reference [r1] (in the first loop) and [r2] (in the second,
    with its loop index already renamed to [index]). *)
val pair_test : index:string -> Refs.t -> Refs.t -> answer

(** One tested reference pair of a loop: [acc1] occurs textually before
    [acc2] on the same [array], and [answer] relates their iterations of
    the loop's index (so [Dependent (Some d)] with [d < 0] means the
    later reference touches an element a {e later} iteration of the
    earlier one also touches — a backward dependence). *)
type pair_info = {
  array : string;
  acc1 : Refs.access;
  acc2 : Refs.access;
  answer : answer;
}

(** [loop_pairs l] tests every textually ordered pair of same-array
    references in [l]'s body (nested statements included) against [l]'s
    index, skipping read/read pairs.  This is the dependence summary the
    {!Preserve} linter compares across a transformation. *)
val loop_pairs : Bw_ir.Ast.loop -> pair_info list

(** [conformable l1 l2] holds when the loops have structurally equal
    bounds and step once [l2]'s index is renamed to [l1]'s. *)
val conformable : Bw_ir.Ast.loop -> Bw_ir.Ast.loop -> bool

(** Constant bounds [(lo, hi, step)] of a loop, when they are literals. *)
val constant_bounds : Bw_ir.Ast.loop -> (int * int * int) option

(** Does any statement (at any depth) consume the [read()] input
    stream?  The stream is a sequential resource: code motion that
    interleaves or reorders two consumers changes which value each
    receives. *)
val consumes_input : Bw_ir.Ast.stmt list -> bool

(** [fusable l1 l2] decides whether the adjacent loops [l1; l2] may be
    fused into one loop over [l1]'s index:
    - bounds must be conformable, or both constant with equal step (the
      fused loop then runs over the hull with guards);
    - at most one of the loops may consume the [read()] input stream
      (fusing two consumers interleaves their stream positions);
    - no array dependence from one loop to the other with negative
      distance, and nothing Unknown;
    - no scalar carried between the loops unless the scalar is private
      (written before read) in the loop that reads it.

    Returns [Error reason] naming the offending variable. *)
val fusable : Bw_ir.Ast.loop -> Bw_ir.Ast.loop -> (unit, string) result

(** [scalar_private body s] holds when every read of scalar [s] in [body]
    is preceded by a write to [s] on the same straight-line path of the
    same iteration (so each iteration can use a fresh private copy). *)
val scalar_private : Bw_ir.Ast.stmt list -> string -> bool
