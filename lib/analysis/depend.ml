open Bw_ir.Ast

type answer = Independent | Dependent of int option | Unknown

let pp_answer ppf = function
  | Independent -> Format.pp_print_string ppf "independent"
  | Dependent (Some d) -> Format.fprintf ppf "dependent(d=%d)" d
  | Dependent None -> Format.pp_print_string ppf "dependent(?)"
  | Unknown -> Format.pp_print_string ppf "unknown"

(* Verdict for one subscript dimension. *)
type dim_verdict =
  | Dim_never  (** never equal: whole pair independent *)
  | Dim_any  (** imposes no constraint on the tested index *)
  | Dim_distance of int  (** equal iff iter2 - iter1 = d *)
  | Dim_unknown

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let dim_test ~index a1 a2 =
  match (a1, a2) with
  | None, _ | _, None -> Dim_unknown
  | Some f1, Some f2 ->
    let c1 = Affine.coeff f1 index and c2 = Affine.coeff f2 index in
    let rest1 = Affine.drop_var f1 index and rest2 = Affine.drop_var f2 index in
    if c1 = 0 && c2 = 0 then
      if Affine.equal rest1 rest2 then Dim_any
      else if Affine.is_const rest1 && Affine.is_const rest2 then Dim_never
      else
        (* differing symbolic parts: other (inner) indices sweep full
           ranges, so a match is possible; no constraint on [index] *)
        Dim_any
    else if c1 = c2 then
      if Affine.equal rest1 rest2 then
        (* c*i1 + r = c*i2 + r  =>  i1 = i2 *)
        Dim_distance 0
      else if Affine.is_const rest1 && Affine.is_const rest2 then begin
        (* c*i1 + k1 = c*i2 + k2  =>  i2 - i1 = (k1 - k2) / c *)
        let diff = rest1.Affine.const - rest2.Affine.const in
        if diff mod c1 = 0 then Dim_distance (diff / c1) else Dim_never
      end
      else Dim_unknown
    else if Affine.is_const rest1 && Affine.is_const rest2 then begin
      (* mismatched coefficients: the GCD test.  c1*i1 - c2*i2 = k2 - k1
         has an integer solution iff gcd(c1, c2) divides the difference
         (weak-zero SIV falls out as the c = 0 case). *)
      let diff = rest2.Affine.const - rest1.Affine.const in
      let g = gcd c1 c2 in
      if g <> 0 && diff mod g <> 0 then Dim_never else Dim_unknown
    end
    else Dim_unknown

let pair_test ~index (r1 : Refs.t) (r2 : Refs.t) =
  if r1.Refs.array <> r2.Refs.array then Independent
  else if List.length r1.Refs.affine <> List.length r2.Refs.affine then Unknown
  else begin
    let verdicts =
      List.map2 (fun a1 a2 -> dim_test ~index a1 a2) r1.Refs.affine
        r2.Refs.affine
    in
    let rec combine distance unknown = function
      | [] ->
        if unknown then Unknown
        else Dependent distance
      | Dim_never :: _ -> Independent
      | Dim_any :: rest -> combine distance unknown rest
      | Dim_unknown :: rest -> combine distance true rest
      | Dim_distance d :: rest -> (
        match distance with
        | None -> combine (Some d) unknown rest
        | Some d' when d = d' -> combine distance unknown rest
        | Some _ ->
          (* two dimensions demand different distances: no solution *)
          Independent)
    in
    combine None false verdicts
  end

type pair_info = {
  array : string;
  acc1 : Refs.access;
  acc2 : Refs.access;
  answer : answer;
}

let loop_pairs (l : loop) =
  let refs = Refs.collect l.body in
  List.concat_map
    (fun (r1 : Refs.t) ->
      List.filter_map
        (fun (r2 : Refs.t) ->
          if r2.Refs.position <= r1.Refs.position then None
          else if r1.Refs.array <> r2.Refs.array then None
          else if r1.Refs.access = Refs.Read && r2.Refs.access = Refs.Read then
            None
          else
            Some
              { array = r1.Refs.array;
                acc1 = r1.Refs.access;
                acc2 = r2.Refs.access;
                answer = pair_test ~index:l.index r1 r2 })
        refs)
    refs

let conformable (l1 : loop) (l2 : loop) =
  let rename e =
    Bw_ir.Ast_util.subst_scalar ~name:l2.index ~value:(Scalar l1.index) e
  in
  equal_expr l1.lo (rename l2.lo)
  && equal_expr l1.hi (rename l2.hi)
  && equal_expr l1.step (rename l2.step)

let constant_bounds (l : loop) =
  match (Affine.of_expr l.lo, Affine.of_expr l.hi, Affine.of_expr l.step) with
  | Some lo, Some hi, Some step
    when Affine.is_const lo && Affine.is_const hi && Affine.is_const step ->
    Some (lo.Affine.const, hi.Affine.const, step.Affine.const)
  | _ -> None

(* Is every read of scalar [s] preceded by a write on the same
   straight-line path?  Conservative over conditionals: both branches must
   independently establish the write before any read escapes. *)
let scalar_private body s =
  (* returns (safe_so_far, definitely_written_after) *)
  let rec seq written stmts =
    List.fold_left
      (fun (safe, written) stmt ->
        if not safe then (false, written)
        else step written stmt)
      (true, written) stmts
  and step written stmt =
    match stmt with
    | Assign (lv, e) ->
      let reads = Bw_ir.Ast_util.expr_reads e in
      let lv_reads =
        match lv with
        | Lscalar _ -> []
        | Lelement (_, idxs) ->
          List.concat_map Bw_ir.Ast_util.expr_reads idxs
      in
      if (List.mem s reads || List.mem s lv_reads) && not written then
        (false, written)
      else
        let written = written || lvalue_name lv = s in
        (true, written)
    | Read_input lv ->
      let lv_reads =
        match lv with
        | Lscalar _ -> []
        | Lelement (_, idxs) ->
          List.concat_map Bw_ir.Ast_util.expr_reads idxs
      in
      if List.mem s lv_reads && not written then (false, written)
      else (true, written || lvalue_name lv = s)
    | Print e ->
      if List.mem s (Bw_ir.Ast_util.expr_reads e) && not written then
        (false, written)
      else (true, written)
    | If (c, t, e) ->
      let cond_reads =
        let rec go = function
          | Cmp (_, a, b) ->
            Bw_ir.Ast_util.expr_reads a @ Bw_ir.Ast_util.expr_reads b
          | And (a, b) | Or (a, b) -> go a @ go b
          | Not a -> go a
        in
        go c
      in
      if List.mem s cond_reads && not written then (false, written)
      else begin
        let safe_t, written_t = seq written t in
        let safe_e, written_e = seq written e in
        (safe_t && safe_e, written_t && written_e)
      end
    | For l ->
      (* a nested loop body executes many times; require the property
         recursively with the outer "written" state, and treat the loop
         as writing only if its body always writes *)
      if List.exists
           (fun e' -> List.mem s (Bw_ir.Ast_util.expr_reads e'))
           [ l.lo; l.hi; l.step ]
         && not written
      then (false, written)
      else begin
        let safe, written_body = seq written l.body in
        (* if the body reads s before writing it, only safe when already
           written; across iterations the scalar persists, so a body that
           writes s then reads it is fine. *)
        (safe, written && written_body)
      end
  in
  let safe, _ = seq false body in
  safe

let scalars_of_stmts stmts ~arrays =
  let reads =
    Bw_ir.Ast_util.vars_read stmts
    |> List.filter (fun v -> not (List.mem v arrays))
  in
  let writes =
    Bw_ir.Ast_util.vars_written stmts
    |> List.filter (fun v -> not (List.mem v arrays))
  in
  (reads, writes)

let consumes_input stmts =
  Bw_ir.Ast_util.fold_stmts
    (fun acc s -> acc || match s with Read_input _ -> true | _ -> false)
    false stmts

let fusable (l1 : loop) (l2 : loop) =
  let ( let* ) r f = Result.bind r f in
  (* bounds *)
  let* () =
    if conformable l1 l2 then Ok ()
    else
      match (constant_bounds l1, constant_bounds l2) with
      | Some (_, _, s1), Some (_, _, s2) when s1 = s2 -> Ok ()
      | Some _, Some _ -> Error "loop steps differ"
      | _ -> Error "loop bounds are neither conformable nor constant"
  in
  (* the read() stream is a sequential resource: fusing two loops that
     both consume it interleaves their stream positions *)
  let* () =
    if consumes_input l1.body && consumes_input l2.body then
      Error "both loops consume the input stream"
    else Ok ()
  in
  let body2 =
    Bw_ir.Ast_util.rename_scalar ~from:l2.index ~into:l1.index l2.body
  in
  let refs1 = Refs.collect l1.body in
  let refs2 = Refs.collect body2 in
  (* array dependences *)
  let bad =
    List.find_map
      (fun (r1 : Refs.t) ->
        List.find_map
          (fun (r2 : Refs.t) ->
            if r1.Refs.array <> r2.Refs.array then None
            else if r1.Refs.access = Refs.Read && r2.Refs.access = Refs.Read
            then None
            else
              match pair_test ~index:l1.index r1 r2 with
              | Independent -> None
              | Dependent (Some d) when d >= 0 -> None
              | Dependent (Some d) ->
                Some
                  (Printf.sprintf
                     "array '%s': backward dependence (distance %d)"
                     r1.Refs.array d)
              | Dependent None ->
                Some
                  (Printf.sprintf "array '%s': unconstrained dependence"
                     r1.Refs.array)
              | Unknown ->
                Some
                  (Printf.sprintf "array '%s': dependence unknown"
                     r1.Refs.array))
          refs2)
      refs1
  in
  let* () = match bad with None -> Ok () | Some reason -> Error reason in
  (* scalar dependences *)
  let arrays1 = List.map (fun (r : Refs.t) -> r.Refs.array) refs1 in
  let arrays2 = List.map (fun (r : Refs.t) -> r.Refs.array) refs2 in
  let indices =
    l1.index :: Bw_ir.Ast_util.loop_indices l1.body
    @ Bw_ir.Ast_util.loop_indices body2
  in
  let non_scalar = arrays1 @ arrays2 @ indices in
  let reads1, writes1 = scalars_of_stmts l1.body ~arrays:non_scalar in
  let reads2, writes2 = scalars_of_stmts body2 ~arrays:non_scalar in
  let offending =
    List.find_opt
      (fun s ->
        let flow = List.mem s writes1 && List.mem s reads2 in
        let anti = List.mem s reads1 && List.mem s writes2 in
        let output = List.mem s writes1 && List.mem s writes2 in
        if flow || output then not (scalar_private body2 s)
        else if anti then not (scalar_private body2 s)
        else false)
      (List.sort_uniq compare (reads1 @ writes1 @ reads2 @ writes2))
  in
  match offending with
  | None -> Ok ()
  | Some s -> Error (Printf.sprintf "scalar '%s' carried between loops" s)
