open Bw_ir

let default_trips = 16
let elem_bytes = 8.0

let rec const_int (e : Ast.expr) =
  match e with
  | Ast.Int_lit n -> Some n
  | Ast.Unary (Ast.Neg, e) -> Option.map (fun n -> -n) (const_int e)
  | Ast.Binary (op, a, b) -> (
    match (const_int a, const_int b) with
    | Some a, Some b -> (
      match op with
      | Ast.Add -> Some (a + b)
      | Ast.Sub -> Some (a - b)
      | Ast.Mul -> Some (a * b)
      | Ast.Div -> if b = 0 then None else Some (a / b)
      | Ast.Mod -> if b = 0 then None else Some (a mod b)
      | Ast.Min -> Some (min a b)
      | Ast.Max -> Some (max a b))
    | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Trip-count estimation over an interval environment                  *)
(* ------------------------------------------------------------------ *)

type env = (string * (int * int)) list

let empty_env = []

(* Interval of an expression's value: affine forms evaluated over the
   index intervals, min/max handled structurally (Affine rejects them). *)
let rec interval env (e : Ast.expr) : (int * int) option =
  match e with
  | Ast.Binary (Ast.Min, a, b) -> lift2 min env a b
  | Ast.Binary (Ast.Max, a, b) -> lift2 max env a b
  | _ -> (
    match Affine.of_expr e with
    | None -> None
    | Some a ->
      List.fold_left
        (fun acc (v, c) ->
          match (acc, List.assoc_opt v env) with
          | Some (lo, hi), Some (vlo, vhi) ->
            if c >= 0 then Some (lo + (c * vlo), hi + (c * vhi))
            else Some (lo + (c * vhi), hi + (c * vlo))
          | _ -> None)
        (Some (a.Affine.const, a.Affine.const))
        a.Affine.terms)

and lift2 f env a b =
  match (interval env a, interval env b) with
  | Some (alo, ahi), Some (blo, bhi) -> Some (f alo blo, f ahi bhi)
  | (Some _ as s), None | None, (Some _ as s) -> s
  | None, None -> None

(* Midpoint estimate of an affine form over the index intervals. *)
let affine_mid env (a : Affine.t) =
  List.fold_left
    (fun acc (v, c) ->
      match (acc, List.assoc_opt v env) with
      | Some m, Some (vlo, vhi) ->
        Some (m +. (float_of_int c *. (float_of_int (vlo + vhi) /. 2.0)))
      | _ -> None)
    (Some (float_of_int a.Affine.const))
    a.Affine.terms

let opt2 f a b =
  match (a, b) with
  | Some x, Some y -> Some (f x y)
  | (Some _ as s), None | None, (Some _ as s) -> s
  | None, None -> None

(* Estimated value of [hi - lo].  The crucial case is the loop Tile
   introduces — [lo = Scalar t; hi = min (t + tile - 1) n] — where the
   affine difference cancels the shared symbolic origin exactly. *)
let rec span_est env ~lo ~hi =
  match hi with
  | Ast.Binary (Ast.Min, a, b) ->
    opt2 Float.min (span_est env ~lo ~hi:a) (span_est env ~lo ~hi:b)
  | Ast.Binary (Ast.Max, a, b) ->
    opt2 Float.max (span_est env ~lo ~hi:a) (span_est env ~lo ~hi:b)
  | _ -> (
    match lo with
    | Ast.Binary (Ast.Max, a, b) ->
      opt2 Float.min (span_est env ~lo:a ~hi) (span_est env ~lo:b ~hi)
    | Ast.Binary (Ast.Min, a, b) ->
      opt2 Float.max (span_est env ~lo:a ~hi) (span_est env ~lo:b ~hi)
    | _ -> (
      match (Affine.of_expr hi, Affine.of_expr lo) with
      | Some ah, Some al -> affine_mid env (Affine.sub ah al)
      | _ -> None))

let trips env (l : Ast.loop) =
  match (const_int l.Ast.lo, const_int l.Ast.hi, const_int l.Ast.step) with
  | Some lo, Some hi, Some step when step > 0 ->
    float_of_int (max 0 (((hi - lo) / step) + 1))
  | _ -> (
    match const_int l.Ast.step with
    | Some step when step > 0 -> (
      match span_est env ~lo:l.Ast.lo ~hi:l.Ast.hi with
      | Some span -> Float.max 0.0 ((span /. float_of_int step) +. 1.0)
      | None -> float_of_int default_trips)
    | _ -> (
      (* symbolic step over a known span: for an unknown step in
         [1, span] the trip count is span/step; the geometric midpoint
         sqrt(span) beats a fixed default by orders of magnitude on
         stage loops such as FFT's [step = le2] *)
      match span_est env ~lo:l.Ast.lo ~hi:l.Ast.hi with
      | Some span when span >= 0.0 -> Float.max 1.0 (Float.sqrt (span +. 1.0))
      | _ -> float_of_int default_trips))

let bind_loop env (l : Ast.loop) =
  match (interval env l.Ast.lo, interval env l.Ast.hi) with
  | Some (llo, _), Some (_, hhi) -> (l.Ast.index, (llo, max llo hhi)) :: env
  | _ -> env

(* ------------------------------------------------------------------ *)
(* Reference groups: per-array, per-loop reuse structure               *)
(* ------------------------------------------------------------------ *)

(* One enclosing loop of a reference group, outermost first. *)
type rloop = {
  l_trips : float;
  l_contrib : bool;  (** iterating it moves the reference to new data *)
  l_stride : float option;
      (** |bytes| between consecutive iterations; [None] = irregular
          (non-affine subscript, or affine through a scalar the loop body
          mutates) *)
  l_body : group list;
      (** snapshot of the loop-body scope: its footprint is the reuse
          distance that repeated references see across iterations *)
}

(* A group of references to one array that touch the same data (equal
   affine subscript shape modulo constants), merged so that in-body
   reuse — a[i] read and written, or read at small offsets — is charged
   one line fetch, not several. *)
and group = {
  g_array : string;
  g_decl_bytes : float;
  g_write : bool;
  g_reads : int;  (** element reads per innermost execution *)
  g_writes : int;
  g_subs : Ast.expr list;
  g_affine : Affine.t option list;
  g_dimprod : int list;  (** per-dim element multiplier (column-major) *)
  g_loops : rloop list;  (** outermost first *)
  g_sealed : bool;  (** wrapped by a loop; merging across scopes is off *)
  g_dedup_body : group list option;
      (** another group in the same scope covers the same data; charge
          this one only when that scope's footprint exceeds the cache *)
}

let make_group decls array subs ~write =
  let decl = Hashtbl.find_opt decls array in
  let decl_bytes =
    match decl with
    | Some d -> float_of_int (Ast.decl_bytes d)
    | None -> infinity
  in
  let dimprod =
    match decl with
    | Some d ->
      let _, rev =
        List.fold_left
          (fun (acc, out) extent -> (acc * extent, acc :: out))
          (1, []) d.Ast.dims
      in
      List.rev rev
    | None -> List.map (fun _ -> 1) subs
  in
  { g_array = array;
    g_decl_bytes = decl_bytes;
    g_write = write;
    g_reads = (if write then 0 else 1);
    g_writes = (if write then 1 else 0);
    g_subs = subs;
    g_affine = List.map Affine.of_expr subs;
    g_dimprod = dimprod;
    g_loops = [];
    g_sealed = false;
    g_dedup_body = None }

(* Two groups address the same data when they name the same array with
   the same affine shape (constants may differ: a[i] and a[i-1] share
   lines).  Non-affine subscripts match only when syntactically equal. *)
let shape_key g =
  if List.for_all Option.is_some g.g_affine then
    Some (List.map (fun a -> (Option.get a).Affine.terms) g.g_affine)
  else None

let same_shape g1 g2 =
  g1.g_array = g2.g_array
  &&
  match (shape_key g1, shape_key g2) with
  | Some k1, Some k2 -> k1 = k2
  | None, None -> (
    try List.for_all2 Ast.equal_expr g1.g_subs g2.g_subs
    with Invalid_argument _ -> false)
  | _ -> false

let total_iters g =
  List.fold_left (fun acc l -> acc *. l.l_trips) 1.0 g.g_loops

let contrib_elems g =
  List.fold_left
    (fun acc l -> if l.l_contrib then acc *. l.l_trips else acc)
    1.0 g.g_loops

(* Distinct bytes a group touches over its contributing loops
   (element-dense; reported as the program footprint). *)
let group_unique_bytes g =
  Float.min (contrib_elems g *. elem_bytes) g.g_decl_bytes

let spatial_fraction ~line stride =
  match stride with
  | Some s when s > 0.0 && s < line -> s /. line
  | _ -> 1.0

(* Distinct cache lines the group covers at [line]-byte granularity:
   elements of a dense run share lines, while strided and irregular
   elements occupy one line each — the reason a scattered working set
   overflows a cache its element count says should hold it.  The spatial
   fraction applies only at the innermost contributing loop: outer loops
   either continue the dense run (tile loops) or jump whole lines, and
   the declaration clamp catches run overlap either way. *)
let covered_lines g ~line =
  let decl_lines = Float.max 1.0 (g.g_decl_bytes /. line) in
  let lines, _ =
    List.fold_left
      (fun (cov, innermost) l ->
        if not l.l_contrib then (cov, innermost)
        else
          let f = if innermost then spatial_fraction ~line l.l_stride else 1.0 in
          (Float.min (cov *. l.l_trips *. f) decl_lines, false))
      (1.0, true)
      (List.rev g.g_loops)
  in
  Float.max 1.0 (Float.min lines decl_lines)

(* Scope footprint at line granularity: per array the max over its
   groups (they overlap the same storage), summed across arrays. *)
let scope_fp_lines groups ~line =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun g ->
      let cur = Option.value ~default:0.0 (Hashtbl.find_opt tbl g.g_array) in
      Hashtbl.replace tbl g.g_array (Float.max cur (covered_lines g ~line)))
    groups;
  Hashtbl.fold (fun _ v acc -> acc +. v) tbl 0.0

let scope_fp_bytes groups ~line = scope_fp_lines groups ~line *. line

(* Element-dense footprint, for reporting. *)
let fp_of_groups groups =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun g ->
      let cur = Option.value ~default:0.0 (Hashtbl.find_opt tbl g.g_array) in
      Hashtbl.replace tbl g.g_array (Float.max cur (group_unique_bytes g)))
    groups;
  Hashtbl.fold (fun _ v acc -> acc +. v) tbl 0.0

let merge_unsealed groups =
  List.fold_left
    (fun acc g ->
      if g.g_sealed then g :: acc
      else begin
        let rec insert = function
          | [] -> [ g ]
          | h :: t when (not h.g_sealed) && same_shape h g ->
            { h with
              g_write = h.g_write || g.g_write;
              g_reads = h.g_reads + g.g_reads;
              g_writes = h.g_writes + g.g_writes }
            :: t
          | h :: t -> h :: insert t
        in
        insert acc
      end)
    [] groups
  |> List.rev

(* Same-scope groups covering the same data — an initialising store next
   to the accumulation loop that rereads it — would be double-charged.
   Keep the widest of each family as the representative; the rest are
   charged only when the scope's footprint exceeds the cache, mirroring
   the short-distance reuse they enjoy in reality. *)
let dedup_scope groups =
  let arr = Array.of_list groups in
  let n = Array.length arr in
  let shadowed = Array.make n false in
  let eligible i = (not shadowed.(i)) && arr.(i).g_dedup_body = None in
  let score g = (contrib_elems g, total_iters g) in
  for i = 0 to n - 1 do
    if eligible i then begin
      let family = ref [ i ] in
      for j = i + 1 to n - 1 do
        if eligible j && same_shape arr.(i) arr.(j) then family := j :: !family
      done;
      match !family with
      | [ _ ] -> ()
      | members ->
        let rep =
          List.fold_left
            (fun best j -> if score arr.(j) > score arr.(best) then j else best)
            i members
        in
        List.iter (fun j -> if j <> rep then shadowed.(j) <- true) members
    end
  done;
  if not (Array.exists Fun.id shadowed) then groups
  else begin
    let scope = Array.to_list arr in
    Array.to_list
      (Array.mapi
         (fun i g ->
           if shadowed.(i) then { g with g_dedup_body = Some scope } else g)
         arr)
  end

(* Stride in elements of one step of [index] through the group's
   subscripts under column-major layout; [None] when a non-affine
   subscript mentions the index (irregular). *)
let stride_of g index =
  let rec go affs subs prods acc irregular =
    match (affs, subs) with
    | [], _ | _, [] -> if irregular then None else Some acc
    | a :: affs', s :: subs' ->
      let p, prods' =
        match prods with p :: rest -> (p, rest) | [] -> (1, [])
      in
      let acc, irregular =
        match a with
        | Some f -> (acc + (Affine.coeff f index * p), irregular)
        | None -> (acc, irregular || List.mem index (Ast_util.expr_reads s))
      in
      go affs' subs' prods' acc irregular
  in
  go g.g_affine g.g_subs g.g_dimprod 0 false

(* Substituting the wrapped index by its lower bound's affine form is
   what makes tile loops contribute: the element loop's subscript [i]
   never mentions the tile origin [ii], but [i] starts at [ii], so after
   the inner wrap the subscript's coefficients transfer to [ii]. *)
let subst_index index lo_affine affs =
  List.map
    (fun a ->
      Option.map
        (fun f ->
          let c = Affine.coeff f index in
          if c = 0 then f
          else
            let dropped = Affine.drop_var f index in
            match lo_affine with
            | Some lo -> Affine.add dropped (Affine.scale c lo)
            | None -> dropped)
        a)
    affs

(* An affine subscript through a scalar the loop body itself mutates
   (FFT's [ib], [ip]) moves unpredictably within the loop: irregular. *)
let mentions_mutated mutated affs =
  mutated <> []
  && List.exists
       (fun a ->
         match a with
         | Some f -> List.exists (fun v -> List.mem v mutated) (Affine.vars f)
         | None -> false)
       affs

let wrap_loop (l : Ast.loop) tcount body_groups =
  let index = l.Ast.index in
  let step = abs (Option.value ~default:1 (const_int l.Ast.step)) in
  let lo_affine = Affine.of_expr l.Ast.lo in
  let inner_indices = Ast_util.loop_indices l.Ast.body in
  let mutated =
    List.filter
      (fun v -> (not (List.mem v inner_indices)) && v <> index)
      (Ast_util.vars_written l.Ast.body)
  in
  List.map
    (fun g ->
      let l_contrib, l_stride =
        if mentions_mutated mutated g.g_affine then (true, None)
        else
          match stride_of g index with
          | None -> (true, None)
          | Some 0 -> (false, Some 0.0)
          | Some s ->
            (true, Some (Float.abs (float_of_int (s * step)) *. elem_bytes))
      in
      { g with
        g_affine = subst_index index lo_affine g.g_affine;
        g_loops =
          { l_trips = tcount; l_contrib; l_stride; l_body = body_groups }
          :: g.g_loops;
        g_sealed = true })
    body_groups

(* ------------------------------------------------------------------ *)
(* Collecting groups from the program                                  *)
(* ------------------------------------------------------------------ *)

let rec expr_groups decls (e : Ast.expr) =
  match e with
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Scalar _ -> []
  | Ast.Element (a, subs) ->
    make_group decls a subs ~write:false
    :: List.concat_map (expr_groups decls) subs
  | Ast.Unary (_, a) -> expr_groups decls a
  | Ast.Binary (_, a, b) -> expr_groups decls a @ expr_groups decls b
  | Ast.Call (_, args) -> List.concat_map (expr_groups decls) args

let rec cond_groups decls (c : Ast.cond) =
  match c with
  | Ast.Cmp (_, a, b) -> expr_groups decls a @ expr_groups decls b
  | Ast.And (a, b) | Ast.Or (a, b) -> cond_groups decls a @ cond_groups decls b
  | Ast.Not a -> cond_groups decls a

let lvalue_groups decls (lv : Ast.lvalue) =
  match lv with
  | Ast.Lscalar _ -> []
  | Ast.Lelement (a, subs) ->
    make_group decls a subs ~write:true
    :: List.concat_map (expr_groups decls) subs

let rec walk_stmts decls env stmts =
  List.concat_map (walk_stmt decls env) stmts
  |> merge_unsealed |> dedup_scope

and walk_stmt decls env (s : Ast.stmt) =
  match s with
  | Ast.Assign (lv, e) -> expr_groups decls e @ lvalue_groups decls lv
  | Ast.Read_input lv -> lvalue_groups decls lv
  | Ast.Print e -> expr_groups decls e
  | Ast.If (c, t, e) ->
    (* both arms charged: the model has no branch probabilities *)
    cond_groups decls c @ walk_stmts decls env t @ walk_stmts decls env e
  | Ast.For l ->
    let env' = bind_loop env l in
    let inner = walk_stmts decls env' l.Ast.body in
    wrap_loop l (trips env l) inner

(* ------------------------------------------------------------------ *)
(* Miss model                                                          *)
(* ------------------------------------------------------------------ *)

(* Lines fetched by one group at a cache level, walking its loops from
   the innermost out and tracking (misses, distinct lines covered):

   - a non-contributing loop repeats the inner reference pattern; the
     repetitions hit iff the loop body's footprint fits in the level;
   - a contributing loop multiplies both, scaled by the spatial fraction
     of its stride; once coverage saturates the array, further
     iterations revisit old lines — those hit iff the reuse distance
     (the body footprint; for irregular loops also the full working set,
     since revisits land far apart) fits in the level. *)
let group_misses g ~capacity ~line =
  let fits groups = scope_fp_bytes groups ~line <= capacity in
  match g.g_dedup_body with
  | Some scope when fits scope -> 0.0
  | _ ->
    let decl_lines = Float.max 1.0 (g.g_decl_bytes /. line) in
    let m, _, _ =
      List.fold_left
        (fun (m, cov, innermost) l ->
          if not l.l_contrib then
            if fits l.l_body then (m, cov, innermost)
            else (m *. l.l_trips, cov, innermost)
          else begin
            let f =
              if innermost then spatial_fraction ~line l.l_stride else 1.0
            in
            let fresh = cov *. l.l_trips *. f in
            let cov' = Float.min fresh decl_lines in
            let m = m *. l.l_trips *. f in
            let m =
              if fresh > decl_lines then begin
                let revisits_hit =
                  fits l.l_body
                  &&
                  match l.l_stride with
                  | Some _ -> true
                  | None -> cov' *. line <= capacity
                in
                if revisits_hit then m *. (decl_lines /. fresh) else m
              end
              else m
            in
            (m, cov', false)
          end)
        (1.0, 1.0, true)
        (List.rev g.g_loops)
    in
    Float.max 1.0 m

(* ------------------------------------------------------------------ *)
(* Typed operation counts                                              *)
(* ------------------------------------------------------------------ *)

let rec is_float decls (e : Ast.expr) =
  match e with
  | Ast.Float_lit _ -> true
  | Ast.Int_lit _ -> false
  | Ast.Scalar s -> (
    match Hashtbl.find_opt decls s with
    | Some d -> d.Ast.dtype = Ast.F64
    | None -> false (* loop index *))
  | Ast.Element (a, _) -> (
    match Hashtbl.find_opt decls a with
    | Some d -> d.Ast.dtype = Ast.F64
    | None -> true)
  | Ast.Unary (Ast.Int_to_float, _) -> true
  | Ast.Unary (_, a) -> is_float decls a
  | Ast.Binary (_, a, b) -> is_float decls a || is_float decls b
  | Ast.Call _ -> true

(* Mirrors Interp's sink: only float arithmetic and intrinsic calls are
   flops; integer subscript arithmetic and Int_to_float are not. *)
let rec expr_flops decls (e : Ast.expr) =
  match e with
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Scalar _ -> 0.0
  | Ast.Element (_, subs) ->
    List.fold_left (fun acc s -> acc +. expr_flops decls s) 0.0 subs
  | Ast.Unary (Ast.Int_to_float, a) -> expr_flops decls a
  | Ast.Unary (_, a) ->
    expr_flops decls a +. (if is_float decls a then 1.0 else 0.0)
  | Ast.Binary (_, a, b) ->
    expr_flops decls a +. expr_flops decls b
    +. (if is_float decls a || is_float decls b then 1.0 else 0.0)
  | Ast.Call (_, args) ->
    List.fold_left (fun acc a -> acc +. expr_flops decls a) 1.0 args

let rec cond_flops decls (c : Ast.cond) =
  match c with
  | Ast.Cmp (_, a, b) -> expr_flops decls a +. expr_flops decls b
  | Ast.And (a, b) | Ast.Or (a, b) -> cond_flops decls a +. cond_flops decls b
  | Ast.Not a -> cond_flops decls a

let lvalue_flops decls (lv : Ast.lvalue) =
  match lv with
  | Ast.Lscalar _ -> 0.0
  | Ast.Lelement (_, subs) ->
    List.fold_left (fun acc s -> acc +. expr_flops decls s) 0.0 subs

let rec stmts_flops decls env mult stmts =
  List.fold_left (fun acc s -> acc +. stmt_flops decls env mult s) 0.0 stmts

and stmt_flops decls env mult (s : Ast.stmt) =
  match s with
  | Ast.Assign (lv, e) -> mult *. (expr_flops decls e +. lvalue_flops decls lv)
  | Ast.Read_input lv -> mult *. lvalue_flops decls lv
  | Ast.Print e -> mult *. expr_flops decls e
  | Ast.If (c, t, e) ->
    (mult *. cond_flops decls c)
    +. stmts_flops decls env mult t
    +. stmts_flops decls env mult e
  | Ast.For l ->
    let env' = bind_loop env l in
    let t = trips env l in
    (mult
    *. (expr_flops decls l.Ast.lo
       +. expr_flops decls l.Ast.hi
       +. expr_flops decls l.Ast.step))
    +. stmts_flops decls env' (mult *. t) l.Ast.body

(* ------------------------------------------------------------------ *)
(* Prediction                                                          *)
(* ------------------------------------------------------------------ *)

type level = {
  capacity_bytes : int;
  line_bytes : int;
  lines_in : float;
  lines_out : float;
}

type t = {
  flops : float;
  loads : float;
  stores : float;
  footprint_bytes : float;
  levels : level list;
  memory_bytes_in : float;
  memory_bytes_out : float;
  cpu_seconds : float;
  register_seconds : float;
  boundary_seconds : (string * float) list;
  seconds : float;
  binding_resource : string;
}

let memory_bytes t = t.memory_bytes_in +. t.memory_bytes_out

let level_traffic groups ~write_policy ~capacity ~line =
  let linef = float_of_int line in
  let capf = float_of_int capacity in
  let write_allocate = write_policy = Bw_machine.Cache.Write_back in
  let write_through_lines () =
    List.fold_left
      (fun acc g ->
        acc +. (float_of_int g.g_writes *. total_iters g *. elem_bytes))
      0.0 groups
    /. linef
  in
  if scope_fp_bytes groups ~line:linef <= capf then begin
    (* everything fits: compulsory misses only — one fetch per distinct
       line of each accessed array, one writeback per written line *)
    let per_array pred =
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun g ->
          if pred g then begin
            let cur =
              Option.value ~default:0.0 (Hashtbl.find_opt tbl g.g_array)
            in
            Hashtbl.replace tbl g.g_array
              (Float.max cur (covered_lines g ~line:linef))
          end)
        groups;
      Hashtbl.fold (fun _ v acc -> acc +. v) tbl 0.0
    in
    let lines_in =
      per_array (fun g -> g.g_reads > 0 || (g.g_write && write_allocate))
    in
    let lines_out =
      match write_policy with
      | Bw_machine.Cache.Write_back -> per_array (fun g -> g.g_write)
      | Bw_machine.Cache.Write_through -> write_through_lines ()
    in
    (lines_in, lines_out)
  end
  else begin
    let sum pred =
      List.fold_left
        (fun acc g ->
          if pred g then acc +. group_misses g ~capacity:capf ~line:linef
          else acc)
        0.0 groups
    in
    let lines_in =
      sum (fun g -> g.g_reads > 0 || (g.g_write && write_allocate))
    in
    let lines_out =
      match write_policy with
      | Bw_machine.Cache.Write_back -> sum (fun g -> g.g_write)
      | Bw_machine.Cache.Write_through -> write_through_lines ()
    in
    (lines_in, lines_out)
  end

let predict ~(machine : Bw_machine.Machine.t) (p : Ast.program) =
  let decls = Hashtbl.create 16 in
  List.iter (fun d -> Hashtbl.replace decls d.Ast.var_name d) p.Ast.decls;
  let groups = walk_stmts decls empty_env p.Ast.body in
  let loads =
    List.fold_left
      (fun acc g -> acc +. (float_of_int g.g_reads *. total_iters g))
      0.0 groups
  in
  let stores =
    List.fold_left
      (fun acc g -> acc +. (float_of_int g.g_writes *. total_iters g))
      0.0 groups
  in
  let flops = stmts_flops decls empty_env 1.0 p.Ast.body in
  let footprint_bytes = fp_of_groups groups in
  let levels =
    List.map
      (fun (geo : Bw_machine.Cache.geometry) ->
        let lines_in, lines_out =
          level_traffic groups
            ~write_policy:machine.Bw_machine.Machine.cache_write_policy
            ~capacity:geo.Bw_machine.Cache.size_bytes
            ~line:geo.Bw_machine.Cache.line_bytes
        in
        { capacity_bytes = geo.Bw_machine.Cache.size_bytes;
          line_bytes = geo.Bw_machine.Cache.line_bytes;
          lines_in;
          lines_out })
      machine.Bw_machine.Machine.caches
  in
  let memory_bytes_in, memory_bytes_out =
    match List.rev levels with
    | last :: _ ->
      ( last.lines_in *. float_of_int last.line_bytes,
        last.lines_out *. float_of_int last.line_bytes )
    | [] -> (loads *. elem_bytes, stores *. elem_bytes)
  in
  let cpu_seconds = flops /. machine.Bw_machine.Machine.flops_per_sec in
  let register_seconds =
    (loads +. stores) *. elem_bytes
    /. machine.Bw_machine.Machine.register_bandwidth
  in
  let n_levels = List.length levels in
  let boundary_name i =
    if i = n_levels - 1 then Printf.sprintf "Mem-L%d" (i + 1)
    else Printf.sprintf "L%d-L%d" (i + 2) (i + 1)
  in
  let bandwidths = Array.of_list machine.Bw_machine.Machine.cache_bandwidths in
  let boundary_seconds =
    List.mapi
      (fun i lvl ->
        let linef = float_of_int lvl.line_bytes in
        let bytes =
          if i = n_levels - 1 then
            (lvl.lines_in *. linef)
            +. machine.Bw_machine.Machine.writeback_penalty
               *. lvl.lines_out *. linef
          else (lvl.lines_in +. lvl.lines_out) *. linef
        in
        let bw =
          if i < Array.length bandwidths then bandwidths.(i)
          else machine.Bw_machine.Machine.register_bandwidth
        in
        (boundary_name i, bytes /. bw))
      levels
  in
  let all =
    ("CPU", cpu_seconds) :: ("L1-Reg", register_seconds) :: boundary_seconds
  in
  let binding_resource, seconds =
    List.fold_left
      (fun (bn, bt) (n, t) -> if t > bt then (n, t) else (bn, bt))
      ("CPU", cpu_seconds) all
  in
  { flops;
    loads;
    stores;
    footprint_bytes;
    levels;
    memory_bytes_in;
    memory_bytes_out;
    cpu_seconds;
    register_seconds;
    boundary_seconds;
    seconds;
    binding_resource }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>flops %.3e  loads %.3e  stores %.3e  footprint %.3e B@," t.flops
    t.loads t.stores t.footprint_bytes;
  List.iteri
    (fun i lvl ->
      Format.fprintf ppf "L%d (%d B lines): %.3e lines in, %.3e out@," (i + 1)
        lvl.line_bytes lvl.lines_in lvl.lines_out)
    t.levels;
  Format.fprintf ppf "memory %.3e B in, %.3e B out@," t.memory_bytes_in
    t.memory_bytes_out;
  Format.fprintf ppf "predicted %.6f s (bound by %s)@]" t.seconds
    t.binding_resource
