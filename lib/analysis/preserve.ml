open Bw_ir

type violation =
  | Live_out_store_dropped of string
  | Live_out_decl_dropped of string
  | Print_count_changed of int * int
  | Backward_dependence of {
      array : string;
      acc1 : Refs.access;
      acc2 : Refs.access;
      distance : int;
    }

let pp_access ppf = function
  | Refs.Read -> Format.pp_print_string ppf "read"
  | Refs.Write -> Format.pp_print_string ppf "write"

let pp_violation ppf = function
  | Live_out_store_dropped v ->
    Format.fprintf ppf "live-out '%s' was stored to before but not after" v
  | Live_out_decl_dropped v ->
    Format.fprintf ppf "live-out '%s' is no longer declared" v
  | Print_count_changed (b, a) ->
    Format.fprintf ppf "print statements changed from %d to %d" b a
  | Backward_dependence { array; acc1; acc2; distance } ->
    Format.fprintf ppf
      "array '%s': new backward %a-%a dependence (distance %d)" array
      pp_access acc1 pp_access acc2 distance

(* Every loop in the statements, any nesting depth, pre-order. *)
let rec loops_of stmts =
  List.concat_map
    (fun s ->
      match s with
      | Ast.For l -> l :: loops_of l.Ast.body
      | Ast.If (_, t, e) -> loops_of t @ loops_of e
      | Ast.Assign _ | Ast.Read_input _ | Ast.Print _ -> [])
    stmts

let print_count stmts =
  Ast_util.fold_stmts
    (fun n s -> match s with Ast.Print _ -> n + 1 | _ -> n)
    0 stmts

(* Dependence signatures of a program: for every loop, every textually
   ordered same-array pair with a known distance.  The signature is
   index-name independent, so a fused loop "inherits" both source loops'
   signatures and only genuinely new pairs stand out. *)
let signatures (p : Ast.program) =
  loops_of p.Ast.body
  |> List.concat_map (fun l ->
         Depend.loop_pairs l
         |> List.filter_map (fun (pi : Depend.pair_info) ->
                match pi.Depend.answer with
                | Depend.Dependent (Some d) ->
                  Some (pi.Depend.array, pi.Depend.acc1, pi.Depend.acc2, d)
                | Depend.Independent | Depend.Dependent None | Depend.Unknown
                  ->
                  None))
  |> List.sort_uniq compare

let lint ~(before : Ast.program) ~(after : Ast.program) =
  let live_out_violations =
    let written_before = Ast_util.vars_written before.Ast.body in
    let written_after = Ast_util.vars_written after.Ast.body in
    List.concat_map
      (fun v ->
        if Ast.find_decl after v = None then [ Live_out_decl_dropped v ]
        else if List.mem v written_before && not (List.mem v written_after)
        then [ Live_out_store_dropped v ]
        else [])
      before.Ast.live_out
  in
  let print_violations =
    let b = print_count before.Ast.body and a = print_count after.Ast.body in
    if b <> a then [ Print_count_changed (b, a) ] else []
  in
  let dependence_violations =
    let known = signatures before in
    signatures after
    |> List.filter_map (fun ((array, acc1, acc2, d) as sg) ->
           if d < 0 && not (List.mem sg known) then
             Some (Backward_dependence { array; acc1; acc2; distance = d })
           else None)
  in
  live_out_violations @ print_violations @ dependence_violations

let lint_ok ~before ~after = lint ~before ~after = []

let pp_violations ppf = function
  | [] -> Format.pp_print_string ppf "no violations"
  | vs ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_cut ppf ())
      pp_violation ppf vs
