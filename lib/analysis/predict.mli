(** Closed-form bandwidth and runtime prediction — the analytic tier.

    The predictor walks the IR once, building a per-array, per-loop
    picture of the reference pattern (trip counts, strides from
    {!Affine} subscripts, footprints), and evaluates a
    Treibig-&-Hager-style bandwidth-limited performance model against a
    machine's cache geometry: per-level line traffic, memory bytes, and
    a runtime bound as the max over the CPU rate and every hierarchy
    boundary's bandwidth.  Nothing executes; a query costs microseconds
    regardless of problem size, which is what lets fusion searches and
    capacity sweeps triage thousands of candidates before paying for a
    single trace replay.

    The model is deliberately simple — fully associative caches, affine
    reuse only, both branches of every [If] charged — so its answers
    carry an error envelope, not a guarantee.  The envelope measured
    against the exact simulator across the workload registry is
    documented in EXPERIMENTS.md; callers that need exactness use the
    higher tiers of {!Bw_exec.Evaluate}. *)

(** {1 Trip-count estimation}

    Shared with {!Bw_transform.Ir_stats}: an interval environment for
    loop indices lets symbolic bounds introduced by tiling
    ([lo = Scalar tile_origin; hi = min (tile_origin + t - 1) n]) be
    estimated instead of falling back to a fixed default. *)

(** Maps loop indices to the integer interval their values span. *)
type env

val empty_env : env

(** [bind_loop env l] extends [env] with [l.index]'s value interval, when
    the bounds are estimable; otherwise returns [env] unchanged. *)
val bind_loop : env -> Bw_ir.Ast.loop -> env

(** Fallback trip count when bounds cannot be estimated at all. *)
val default_trips : int

(** [trips env l] estimates how many iterations [l] executes: exact for
    constant bounds, the interval-midpoint estimate for affine and
    min/max bounds over indices in [env] (exact for the loops {!Tile}
    introduces when the tile divides the extent), [default_trips]
    otherwise. *)
val trips : env -> Bw_ir.Ast.loop -> float

(** {1 Prediction} *)

(** Predicted behaviour of one cache level. *)
type level = {
  capacity_bytes : int;
  line_bytes : int;
  lines_in : float;  (** lines fetched into this level *)
  lines_out : float;  (** dirty lines written back toward the next level *)
}

type t = {
  flops : float;
  loads : float;  (** array-element reads (scalars are register-resident) *)
  stores : float;
  footprint_bytes : float;  (** distinct bytes the program touches *)
  levels : level list;  (** CPU-closest first, one per machine cache *)
  memory_bytes_in : float;
  memory_bytes_out : float;
  cpu_seconds : float;
  register_seconds : float;
  boundary_seconds : (string * float) list;
  seconds : float;  (** max over CPU and all bandwidth terms *)
  binding_resource : string;
}

(** Total predicted memory-bus traffic, in + out. *)
val memory_bytes : t -> float

(** [predict ~machine p] evaluates the model.  Pure and O(program size ×
    cache levels): no execution, no allocation proportional to the trip
    counts. *)
val predict : machine:Bw_machine.Machine.t -> Bw_ir.Ast.program -> t

val pp : Format.formatter -> t -> unit
