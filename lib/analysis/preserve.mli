(** Static dependence-preservation linting of a transformation.

    Differential execution can miss a miscompilation that happens to
    agree on the tested inputs; this linter instead compares what the
    dependence analysis {e proves} about the original and transformed
    programs.  A transformation is flagged when it

    - drops every store to (or the declaration of) a [live_out]
      variable — its observable final value changed owner;
    - changes the number of [print] statements; or
    - introduces a {e backward} dependence: a textually ordered
      same-array pair inside some loop whose {!Depend.pair_test}
      distance is negative and whose signature
      [(array, access1, access2, distance)] appears in no loop of the
      original program.  Legal fusion never creates one (the
      {!Depend.fusable} judgement rejects exactly these), so a new
      backward pair means a pass reordered a dependence it was required
      to preserve.

    Signatures are index-name independent and collected over loops at
    every nesting depth, so pre-existing negative-distance pairs (an
    original loop reading ahead of its own writes) are not flagged —
    only pairs a transformation newly brought together. *)

type violation =
  | Live_out_store_dropped of string
  | Live_out_decl_dropped of string
  | Print_count_changed of int * int  (** (before, after) *)
  | Backward_dependence of {
      array : string;
      acc1 : Refs.access;
      acc2 : Refs.access;
      distance : int;
    }

(** [lint ~before ~after] returns every preservation violation the
    transformed program [after] exhibits relative to [before]; [[]]
    means the transformation is consistent with the rules above (not a
    semantic-equivalence proof — the differential oracle covers the
    dynamic side). *)
val lint :
  before:Bw_ir.Ast.program -> after:Bw_ir.Ast.program -> violation list

val lint_ok : before:Bw_ir.Ast.program -> after:Bw_ir.Ast.program -> bool
val pp_violation : Format.formatter -> violation -> unit

(** One violation per line; ["no violations"] when empty. *)
val pp_violations : Format.formatter -> violation list -> unit
