open Bw_ir.Ast
open Bw_ir.Builder

(* Float literals restricted to values whose shortest decimal rendering
   re-reads exactly, so generated programs survive the pretty/parse
   round-trip bit-for-bit. *)
let float_palette = [| 0.5; 0.25; 0.75; 1.5; 2.5; 0.125; 3.5 |]

type ctx = {
  rng : Random.State.t;
  n : int;  (** 1-D loop trip count *)
  m : int;  (** 2-D extent *)
  fa : string array;  (** 1-D float arrays, extent [4n+2] *)
  ia : string array;  (** 1-D int arrays, extent [4n+2] *)
  b2 : string option;  (** 2-D float array, extents [m; m] *)
}

let ri ctx k = Random.State.int ctx.rng k
let pick ctx arr = arr.(ri ctx (Array.length arr))
let flit ctx = fl (pick ctx float_palette)

(* Subscripts for a 1-D array of extent 4n+2 over [i] in [1, n]: plain,
   offset, and strided forms all stay in [1, 4n+2]; the non-affine form
   [(i*i) % n + 1] stays in [1, n] and must drive Depend to Unknown. *)
let subscript ctx =
  match ri ctx 16 with
  | 0 | 1 | 2 | 3 | 4 | 5 -> v "i"
  | 6 | 7 | 8 -> v "i" +: int (1 + ri ctx 2)
  | 9 | 10 -> int 2 *: v "i"
  | 11 | 12 -> (int 2 *: v "i") +: int 1
  | 13 | 14 -> int 3 *: v "i"
  | _ -> ((v "i" *: v "i") %: int ctx.n) +: int 1

let float_array ctx = pick ctx ctx.fa
let int_array ctx = pick ctx ctx.ia

(* A float-typed expression over the 1-D arrays (no division: generated
   programs must be runtime-error free on both engines). *)
let rec float_expr ctx depth =
  if depth <= 0 then
    match ri ctx 3 with
    | 0 -> flit ctx
    | _ -> float_array ctx $ [ subscript ctx ]
  else
    match ri ctx 8 with
    | 0 -> flit ctx
    | 1 -> to_float (int_array ctx $ [ subscript ctx ])
    | 2 -> call (pick ctx [| "f"; "g" |]) [ float_expr ctx (depth - 1) ]
    | 3 -> min_ (float_expr ctx (depth - 1)) (float_expr ctx (depth - 1))
    | 4 -> float_expr ctx (depth - 1) *: flit ctx
    | 5 -> float_expr ctx (depth - 1) -: float_expr ctx (depth - 1)
    | _ -> float_expr ctx (depth - 1) +: float_expr ctx (depth - 1)

(* An int-typed expression; [%] only by non-zero literals. *)
let int_expr ctx depth =
  if depth <= 0 then int (1 + ri ctx 5)
  else
    match ri ctx 5 with
    | 0 -> int (1 + ri ctx 5)
    | 1 -> (int_array ctx $ [ subscript ctx ]) +: int (1 + ri ctx 3)
    | 2 -> ((int_array ctx $ [ v "i" ]) *: int 3) %: int 7
    | 3 -> max_ (int_array ctx $ [ subscript ctx ]) (int 0)
    | _ ->
      (int_array ctx $ [ subscript ctx ]) +: (int_array ctx $ [ v "i" ])

let loop_1d ctx body = for_ "i" (int 1) (int ctx.n) body

let statement ctx =
  match ri ctx 10 with
  | 0 | 1 | 2 ->
    (* float map loop, possibly self-referencing *)
    let t = float_array ctx in
    loop_1d ctx [ (t $. [ subscript ctx ]) <-- float_expr ctx 2 ]
  | 3 | 4 ->
    (* scalar reduction *)
    loop_1d ctx [ sc "acc" <-- (v "acc" +: float_expr ctx 1) ]
  | 5 ->
    (* int map loop *)
    let t = int_array ctx in
    loop_1d ctx [ (t $. [ v "i" ]) <-- int_expr ctx 1 ]
  | 6 ->
    (* int reduction *)
    loop_1d ctx [ sc "isum" <-- (v "isum" +: int_expr ctx 1) ]
  | 7 ->
    (* deterministic input stream *)
    let t = if ri ctx 2 = 0 then float_array ctx else int_array ctx in
    loop_1d ctx [ read (t $. [ v "i" ]) ]
  | 8 ->
    (* guarded update *)
    let t = float_array ctx and s = subscript ctx in
    loop_1d ctx
      [ if_
          (float_expr ctx 0 >: flit ctx)
          [ (t $. [ s ]) <-- float_expr ctx 1 ]
          [ (t $. [ s ]) <-- float_expr ctx 1 ] ]
  | _ -> (
    (* 2-D nest when a 2-D array exists, else another float loop *)
    match ctx.b2 with
    | None ->
      let t = float_array ctx in
      loop_1d ctx [ (t $. [ v "i" ]) <-- float_expr ctx 2 ]
    | Some b ->
      let rd =
        if ri ctx 2 = 0 then b $ [ v "i"; v "j" ] else b $ [ v "j"; v "i" ]
      in
      for_ "j" (int 1) (int ctx.m)
        [ for_ "i" (int 1) (int ctx.m)
            [ (b $. [ v "i"; v "j" ]) <-- (rd *: flit ctx) +: flit ctx ] ])

let init_1d ctx k =
  match ri ctx 4 with
  | 0 -> Init_zero
  | 1 -> Init_linear (pick ctx float_palette, pick ctx float_palette)
  | _ -> Init_hash k

let generate ~seed ~size =
  if size < 1 then invalid_arg "Qa.Gen.generate: size must be >= 1";
  let rng = Random.State.make [| seed; 0x9a7a |] in
  let pre = { rng; n = 0; m = 0; fa = [||]; ia = [||]; b2 = None } in
  let n = 4 + ri pre 5 in
  let m = 3 + ri pre 3 in
  let nf = 2 + ri pre 2 and ni = 1 + ri pre 2 in
  let ctx =
    { pre with
      n;
      m;
      fa = Array.init nf (Printf.sprintf "a%d");
      ia = Array.init ni (Printf.sprintf "k%d");
      b2 = (if ri pre 2 = 0 then Some "b0" else None) }
  in
  let extent = (4 * n) + 2 in
  let decls =
    (Array.to_list ctx.fa
    |> List.mapi (fun k name -> array ~init:(init_1d ctx k) name [ extent ]))
    @ (Array.to_list ctx.ia
      |> List.mapi (fun k name ->
             array ~dtype:I64 ~init:(Init_hash (100 + k)) name [ extent ]))
    @ (match ctx.b2 with
      | Some b -> [ array ~init:(Init_hash 7) b [ m; m ] ]
      | None -> [])
    @ [ scalar "acc"; int_scalar "isum" ]
  in
  let body =
    List.init size (fun _ -> statement ctx)
    @ [ print (v "acc"); print (v "isum") ]
  in
  let written = Bw_ir.Ast_util.vars_written body in
  let live_out =
    let keep = List.filter (fun _ -> ri ctx 2 = 0) written in
    let keep =
      if keep = [] then [ List.nth written (ri ctx (List.length written)) ]
      else keep
    in
    (* occasionally an untouched declaration, for live-out variety *)
    let extra =
      List.filter_map
        (fun (d : decl) ->
          if (not (List.mem d.var_name written)) && ri ctx 6 = 0 then
            Some d.var_name
          else None)
        decls
    in
    keep @ extra
  in
  program (Printf.sprintf "fuzz%d" seed) ~decls ~live_out body
