(** Differential oracle: does the optimizer preserve a program's
    observable behaviour?

    Each tested program runs through the full guarded pipeline
    ({!Bw_transform.Strategy.run_guarded}) and then original and
    optimized are executed on {e both} engines ({!Bw_exec.Interp.run}
    and {!Bw_exec.Compile.run}) over deterministic [read()] input
    streams ([?input_offset] varies per trial); live-out finals and
    prints must agree within tolerance
    ({!Bw_transform.Guard.validate_pair}).

    Counters [qa.fuzz.programs] / [qa.fuzz.failures] and one ["qa"]
    span per oracle run feed the {!Bw_obs} subsystem. *)

(** The fault-injection site (["qa.pipeline"]) crossed after the
    pipeline runs.  [Raise] makes {!transform} raise
    {!Bw_obs.Fault.Injected}; [Corrupt] applies
    {!drop_live_out_stores} — arm it (e.g.
    [BWC_FAULTS=qa.pipeline=corrupt@every:1]) to simulate a silently
    miscompiling optimizer that both the oracle and {!Lint} must
    catch. *)
val site : string

(** Delete every assignment and [read()] whose target is a [live_out]
    variable, at any depth.  [None] if the program stores to no
    live-out variable (nothing to corrupt). *)
val drop_live_out_stores : Bw_ir.Ast.program -> Bw_ir.Ast.program option

(** The optimized program: guarded pipeline + the [qa.pipeline] fault
    site.  Raises only when a [Raise] fault is armed; a [Corrupt] fault
    with nothing to corrupt (no live-out stores) is a no-op, so
    minimization cannot collapse a reproducer into a degenerate empty
    program. *)
val transform : Bw_ir.Ast.program -> Bw_ir.Ast.program

(** [test ?trials ?tolerance p] checks [p], transforms it, and
    differentially validates the pair over [trials] (default 2) input
    streams.  [Error msg] describes the first failure: a [Check]
    rejection, an optimizer exception, an engine runtime error, or an
    observation mismatch. *)
val test :
  ?trials:int -> ?tolerance:float -> Bw_ir.Ast.program ->
  (unit, string) result

(** [fails p] — [test p] returned [Error _].  The predicate the
    minimizer preserves. *)
val fails : Bw_ir.Ast.program -> bool
