open Bw_ir

let site = "qa.pipeline"

let () =
  Bw_obs.Fault.declare site
    ~doc:
      "QA pipeline wrapper: Raise aborts the optimization, Corrupt drops \
       every store to a live-out variable from the optimized program"

(* The QA-specific corruption: delete every assignment/read targeting a
   live-out variable, at any nesting depth.  Unlike Guard's off-by-one
   corruption this is visible to *both* halves of the QA subsystem: the
   differential oracle sees changed final values, and the static linter
   sees dropped live-out stores. *)
let drop_live_out_stores (p : Ast.program) =
  let live name = List.mem name p.Ast.live_out in
  let dropped = ref false in
  let rec keep s =
    match s with
    | Ast.Assign (lv, _) | Ast.Read_input lv ->
      if live (Ast.lvalue_name lv) then begin
        dropped := true;
        None
      end
      else Some s
    | Ast.If (c, th, el) ->
      Some (Ast.If (c, List.filter_map keep th, List.filter_map keep el))
    | Ast.For l ->
      Some (Ast.For { l with Ast.body = List.filter_map keep l.Ast.body })
    | Ast.Print _ -> Some s
  in
  let body = List.filter_map keep p.Ast.body in
  if !dropped then Some { p with Ast.body } else None

(* Run the real guarded pipeline, then cross the [qa.pipeline] fault
   site so CI and tests can simulate a silently miscompiling optimizer
   end-to-end. *)
let transform (p : Ast.program) =
  let p', _report, _events = Bw_transform.Strategy.run_guarded p in
  match Bw_obs.Fault.check site with
  | Some Bw_obs.Fault.Raise -> raise (Bw_obs.Fault.Injected site)
  | Some Bw_obs.Fault.Corrupt -> (
    match drop_live_out_stores p' with
    | Some bad -> bad
    (* nothing stores to a live-out variable: the corruption is a no-op
       (raising here would let the minimizer collapse a reproducer into
       a degenerate empty program that "fails" for the wrong reason) *)
    | None -> p')
  | Some (Bw_obs.Fault.Delay ms) ->
    Bw_obs.Fault.sleep_ms ms;
    p'
  | None -> p'

let programs_total = Bw_obs.Metrics.counter "qa.fuzz.programs"
let failures_total = Bw_obs.Metrics.counter "qa.fuzz.failures"

let test ?(trials = 2) ?(tolerance = 1e-9) (p : Ast.program) =
  Bw_obs.Metrics.incr programs_total;
  let span =
    Bw_obs.Trace.start ~cat:"qa"
      ~attrs:[ ("program", Bw_obs.Trace.Str p.Ast.prog_name) ]
      "qa:oracle"
  in
  let result =
    match Check.check p with
    | Error es ->
      Error
        (Format.asprintf "generated program fails Check.check: %a"
           (Format.pp_print_list Check.pp_error)
           es)
    | Ok () -> (
      match transform p with
      | exception e ->
        Error (Printf.sprintf "optimizer raised: %s" (Printexc.to_string e))
      | p' ->
        Bw_transform.Guard.validate_pair ~trials ~tolerance ~before:p
          ~after:p' ())
  in
  (match result with Ok () -> () | Error _ -> Bw_obs.Metrics.incr failures_total);
  Bw_obs.Trace.finish
    ~attrs:
      [ ("verdict",
         Bw_obs.Trace.Str
           (match result with Ok () -> "ok" | Error _ -> "fail")) ]
    span;
  result

let fails p = match test p with Ok () -> false | Error _ -> true
