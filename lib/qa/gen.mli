(** Seeded random-program generator for differential fuzzing.

    Richer than {!Bw_workloads.Random_programs}: programs mix [int] and
    [real] dtypes, 1-D and 2-D arrays, offset ([a(i+1)]) and strided
    ([a(2*i)], [a(3*i)]) affine subscripts, scalar reductions,
    deterministic [read()] input loops, guarded updates, varied
    initializers and [live_out] sets — and occasionally a non-affine
    subscript ([(i*i) mod n + 1]) that {!Bw_analysis.Depend} must answer
    {!Bw_analysis.Depend.Unknown} on.

    Every generated program:

    - passes {!Bw_ir.Check.check} by construction (subscripts are
      bounds-safe for the declared extents, types line up, no
      duplicate declarations);
    - is runtime-error free on both engines (no division, no
      [mod]-by-zero, no NaN-producing intrinsics);
    - survives the pretty-print/re-parse round trip to an
      [equal_program] AST (float literals come from an exact palette,
      conditions are simple comparisons).

    Determinism: [generate ~seed ~size] is a pure function of its
    arguments — it seeds a private {!Random.State} and never touches
    the global RNG. *)

(** [generate ~seed ~size] builds a program with [size] top-level
    statements (plus trailing prints of the [acc]/[isum] reduction
    scalars).
    @raise Invalid_argument if [size < 1]. *)
val generate : seed:int -> size:int -> Bw_ir.Ast.program
