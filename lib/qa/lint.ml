open Bw_ir

type report = {
  program : string;
  violations : Bw_analysis.Preserve.violation list;
}

let check_program (p : Ast.program) =
  let after = Oracle.transform p in
  { program = p.Ast.prog_name;
    violations = Bw_analysis.Preserve.lint ~before:p ~after }

let check_registry ?(scale = 1) () =
  List.map
    (fun (e : Bw_workloads.Registry.entry) -> check_program (e.build ~scale))
    Bw_workloads.Registry.all

let ok r = r.violations = []

let pp_report ppf r =
  if ok r then Format.fprintf ppf "%s: ok" r.program
  else
    Format.fprintf ppf "@[<v2>%s:@,%a@]" r.program
      Bw_analysis.Preserve.pp_violations r.violations
