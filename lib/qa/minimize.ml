open Bw_ir

type stats = { rounds : int; candidates : int; kept : int }

(* --- candidate enumeration -------------------------------------------- *)

(* All programs obtained by deleting exactly one statement, at any
   nesting depth.  Smaller deletions first would be nice, but greedy
   first-improvement over this list already converges fast. *)
let drop_one_stmt (p : Ast.program) =
  let out = ref [] in
  (* [go body k] calls [k smaller_body] for every one-statement deletion
     (recursively) inside [body]. *)
  let rec go body k =
    List.iteri
      (fun idx s ->
        (* delete statement [idx] outright *)
        k (List.filteri (fun j _ -> j <> idx) body);
        (* or delete inside it *)
        let replace s' = k (List.mapi (fun j x -> if j = idx then s' else x) body) in
        match s with
        | Ast.For l -> go l.Ast.body (fun b -> replace (Ast.For { l with Ast.body = b }))
        | Ast.If (c, th, el) ->
          go th (fun b -> replace (Ast.If (c, b, el)));
          go el (fun b -> replace (Ast.If (c, th, b)))
        | Ast.Assign _ | Ast.Read_input _ | Ast.Print _ -> ())
      body
  in
  go p.Ast.body (fun body -> out := { p with Ast.body } :: !out);
  List.rev !out

(* Halve the span of every constant-bound loop, one loop at a time. *)
let shrink_bounds (p : Ast.program) =
  let out = ref [] in
  let rec go body k =
    List.iteri
      (fun idx s ->
        let replace s' = k (List.mapi (fun j x -> if j = idx then s' else x) body) in
        match s with
        | Ast.For l ->
          (match (l.Ast.lo, l.Ast.hi) with
          | Ast.Int_lit lo, Ast.Int_lit hi when hi - lo >= 2 ->
            let hi' = lo + ((hi - lo) / 2) in
            replace (Ast.For { l with Ast.hi = Ast.Int_lit hi' })
          | _ -> ());
          go l.Ast.body (fun b -> replace (Ast.For { l with Ast.body = b }))
        | Ast.If (c, th, el) ->
          go th (fun b -> replace (Ast.If (c, b, el)));
          go el (fun b -> replace (Ast.If (c, th, b)))
        | Ast.Assign _ | Ast.Read_input _ | Ast.Print _ -> ())
      body
  in
  go p.Ast.body (fun body -> out := { p with Ast.body } :: !out);
  List.rev !out

(* Drop declarations no remaining statement mentions (and the matching
   live_out entries), as a single candidate. *)
let prune_decls (p : Ast.program) =
  let used =
    Ast_util.vars_read p.Ast.body @ Ast_util.vars_written p.Ast.body
  in
  let keep (d : Ast.decl) = List.mem d.Ast.var_name used in
  let decls = List.filter keep p.Ast.decls in
  if List.length decls = List.length p.Ast.decls then []
  else
    let names = List.map (fun (d : Ast.decl) -> d.Ast.var_name) decls in
    let live_out = List.filter (fun n -> List.mem n names) p.Ast.live_out in
    [ { p with Ast.decls; live_out } ]

(* Shrinking live_out one element at a time often unlocks further
   statement deletions (stores to the removed name become dead). *)
let shrink_live_out (p : Ast.program) =
  if List.length p.Ast.live_out <= 1 then []
  else
    List.mapi
      (fun idx _ ->
        { p with
          Ast.live_out = List.filteri (fun j _ -> j <> idx) p.Ast.live_out })
      p.Ast.live_out

let candidates p =
  drop_one_stmt p @ shrink_bounds p @ shrink_live_out p @ prune_decls p

(* --- the ddmin-style greedy loop -------------------------------------- *)

let size (p : Ast.program) =
  Ast_util.stmt_count p.Ast.body + List.length p.Ast.decls

let minimize ?(max_candidates = 2000) ~still_fails (p : Ast.program) =
  let tried = ref 0 and kept = ref 0 and rounds = ref 0 in
  let ok c = Result.is_ok (Check.check c) in
  let rec fixpoint p =
    incr rounds;
    let rec first = function
      | [] -> None
      | c :: rest ->
        if !tried >= max_candidates then None
        else begin
          incr tried;
          if size c < size p && ok c && still_fails c then begin
            incr kept;
            Some c
          end
          else first rest
        end
    in
    match first (candidates p) with
    | Some smaller -> fixpoint smaller
    | None -> p
  in
  let p' = fixpoint p in
  (p', { rounds = !rounds; candidates = !tried; kept = !kept })
