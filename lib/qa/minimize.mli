(** Delta-debugging minimizer for failing fuzz programs.

    Greedy first-improvement reduction: from the current program, try
    candidates that each (a) delete one statement at any nesting depth,
    (b) halve a constant loop bound, (c) drop one [live_out] entry, or
    (d) prune declarations nothing mentions — keeping a candidate only
    if it is strictly smaller, still passes {!Bw_ir.Check.check}, and
    [still_fails] holds.  Repeats to a fixpoint, so the reported
    reproducer is 1-minimal with respect to these operations. *)

type stats = {
  rounds : int;  (** fixpoint iterations (successful shrinks + 1) *)
  candidates : int;  (** candidates evaluated against [still_fails] *)
  kept : int;  (** candidates accepted *)
}

(** [minimize ~still_fails p] assumes [still_fails p = true] (e.g.
    {!Oracle.fails}); the result is guaranteed to satisfy [still_fails]
    and [Check.check].  [max_candidates] (default 2000) bounds total
    oracle invocations. *)
val minimize :
  ?max_candidates:int ->
  still_fails:(Bw_ir.Ast.program -> bool) ->
  Bw_ir.Ast.program ->
  Bw_ir.Ast.program * stats
