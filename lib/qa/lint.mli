(** Static dependence-preservation linting of the optimizer pipeline.

    Thin front end over {!Bw_analysis.Preserve}: run a program through
    {!Oracle.transform} (the guarded pipeline plus the [qa.pipeline]
    fault site) and report every preservation violation the transformed
    program exhibits — dropped live-out stores or declarations, changed
    print counts, new backward dependences.  On a clean tree every
    registered workload must lint to zero violations. *)

type report = {
  program : string;
  violations : Bw_analysis.Preserve.violation list;
}

(** Optimize [p] and lint the (before, after) pair. *)
val check_program : Bw_ir.Ast.program -> report

(** Lint every workload in {!Bw_workloads.Registry} at [scale]
    (default 1). *)
val check_registry : ?scale:int -> unit -> report list

val ok : report -> bool
val pp_report : Format.formatter -> report -> unit
