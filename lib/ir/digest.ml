(* Canonical content digest of an IR program.  See digest.mli. *)

(* The serialisation is type-directed and unambiguous: every
   constructor writes a distinct tag byte, every string and list is
   length-prefixed, and floats are written as their IEEE-754 bits (with
   -0.0 canonicalised to +0.0 so that [equal_program] — which uses
   float [=] — can never distinguish two programs this digest
   separates).  Nothing here depends on pretty-printer output, so the
   digest is stable across pretty/parse round trips by construction:
   the round trip yields an [equal_program] AST (a generator invariant
   the test suite enforces) and structurally equal ASTs serialise to
   identical bytes. *)

open Ast

let add_tag buf c = Buffer.add_char buf c

let add_int buf i =
  Buffer.add_char buf 'i';
  Buffer.add_int64_le buf (Int64.of_int i)

let add_float buf f =
  (* +0.0 and -0.0 are [=]-equal but differ in bits; canonicalise. *)
  let f = if f = 0.0 then 0.0 else f in
  Buffer.add_char buf 'f';
  Buffer.add_int64_le buf (Int64.bits_of_float f)

let add_string buf s =
  Buffer.add_char buf 's';
  add_int buf (String.length s);
  Buffer.add_string buf s

let add_list buf add items =
  Buffer.add_char buf 'L';
  add_int buf (List.length items);
  List.iter (add buf) items

let add_dtype buf = function
  | F64 -> add_tag buf 'F'
  | I64 -> add_tag buf 'I'

let add_binop buf op =
  add_tag buf
    (match op with
    | Add -> '+'
    | Sub -> '-'
    | Mul -> '*'
    | Div -> '/'
    | Mod -> '%'
    | Min -> 'm'
    | Max -> 'M')

let add_unop buf op =
  add_tag buf
    (match op with Neg -> 'n' | Abs -> 'a' | Sqrt -> 'q' | Int_to_float -> 't')

let add_cmpop buf op =
  add_tag buf
    (match op with
    | Eq -> '=' | Ne -> '!' | Lt -> '<' | Le -> 'l' | Gt -> '>' | Ge -> 'g')

let rec add_expr buf = function
  | Int_lit i ->
    add_tag buf '0';
    add_int buf i
  | Float_lit f ->
    add_tag buf '1';
    add_float buf f
  | Scalar s ->
    add_tag buf '2';
    add_string buf s
  | Element (a, idx) ->
    add_tag buf '3';
    add_string buf a;
    add_list buf add_expr idx
  | Unary (op, e) ->
    add_tag buf '4';
    add_unop buf op;
    add_expr buf e
  | Binary (op, a, b) ->
    add_tag buf '5';
    add_binop buf op;
    add_expr buf a;
    add_expr buf b
  | Call (f, args) ->
    add_tag buf '6';
    add_string buf f;
    add_list buf add_expr args

let rec add_cond buf = function
  | Cmp (op, a, b) ->
    add_tag buf 'C';
    add_cmpop buf op;
    add_expr buf a;
    add_expr buf b
  | And (a, b) ->
    add_tag buf '&';
    add_cond buf a;
    add_cond buf b
  | Or (a, b) ->
    add_tag buf '|';
    add_cond buf a;
    add_cond buf b
  | Not c ->
    add_tag buf '~';
    add_cond buf c

let add_lvalue buf = function
  | Lscalar s ->
    add_tag buf 'v';
    add_string buf s
  | Lelement (a, idx) ->
    add_tag buf 'e';
    add_string buf a;
    add_list buf add_expr idx

let rec add_stmt buf = function
  | Assign (lv, e) ->
    add_tag buf 'A';
    add_lvalue buf lv;
    add_expr buf e
  | If (c, t, e) ->
    add_tag buf 'G';
    add_cond buf c;
    add_list buf add_stmt t;
    add_list buf add_stmt e
  | For l ->
    add_tag buf 'D';
    add_string buf l.index;
    add_expr buf l.lo;
    add_expr buf l.hi;
    add_expr buf l.step;
    add_list buf add_stmt l.body
  | Read_input lv ->
    add_tag buf 'R';
    add_lvalue buf lv
  | Print e ->
    add_tag buf 'P';
    add_expr buf e

let rec add_init buf = function
  | Init_zero -> add_tag buf 'Z'
  | Init_linear (a, b) ->
    add_tag buf 'N';
    add_float buf a;
    add_float buf b
  | Init_hash seed ->
    add_tag buf 'H';
    add_int buf seed
  | Init_lanes (inner, l) ->
    add_tag buf 'W';
    add_init buf inner;
    add_int buf l

let add_decl buf d =
  add_tag buf 'd';
  add_string buf d.var_name;
  add_dtype buf d.dtype;
  add_list buf add_int d.dims;
  add_init buf d.init

let add_program buf p =
  add_tag buf 'p';
  add_string buf p.prog_name;
  add_list buf add_decl p.decls;
  add_list buf add_stmt p.body;
  add_list buf add_string p.live_out

let program p =
  let buf = Buffer.create 1024 in
  add_program buf p;
  Stdlib.Digest.to_hex (Stdlib.Digest.string (Buffer.contents buf))

let body_only p =
  let buf = Buffer.create 1024 in
  add_list buf add_stmt p.body;
  Stdlib.Digest.to_hex (Stdlib.Digest.string (Buffer.contents buf))
