open Ast

let binop_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Min -> "min"
  | Max -> "max"

let cmpop_symbol = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

(* Precedence levels for parenthesis elision: higher binds tighter. *)
let binop_prec = function
  | Add | Sub -> 1
  | Mul | Div | Mod -> 2
  | Min | Max -> 3

(* Shortest float rendering that re-reads to the same value: %g when it
   is lossless (almost always), full precision otherwise.  Integral
   values keep a trailing ".0" so the token re-lexes as a float — "x =
   0" would re-parse as an integer literal and fail the type check.
   Keeps printed programs re-parseable to an equal AST. *)
let float_repr x =
  let s = Printf.sprintf "%g" x in
  let s = if float_of_string s = x then s else Printf.sprintf "%.17g" x in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'n' || c = 'i') s then s
  else s ^ ".0"

let rec pp_expr_prec prec ppf e =
  match e with
  | Int_lit n -> Format.pp_print_int ppf n
  | Float_lit x -> Format.pp_print_string ppf (float_repr x)
  | Scalar s -> Format.pp_print_string ppf s
  | Element (a, idxs) ->
    Format.fprintf ppf "%s[%a]" a
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         (pp_expr_prec 0))
      idxs
  | Unary (Neg, a) -> Format.fprintf ppf "-%a" (pp_expr_prec 9) a
  | Unary (Abs, a) -> Format.fprintf ppf "abs(%a)" (pp_expr_prec 0) a
  | Unary (Sqrt, a) -> Format.fprintf ppf "sqrt(%a)" (pp_expr_prec 0) a
  | Unary (Int_to_float, a) -> Format.fprintf ppf "float(%a)" (pp_expr_prec 0) a
  | Binary (((Min | Max) as op), a, b) ->
    Format.fprintf ppf "%s(%a, %a)" (binop_symbol op) (pp_expr_prec 0) a
      (pp_expr_prec 0) b
  | Binary (op, a, b) ->
    let p = binop_prec op in
    let open_paren = p < prec in
    if open_paren then Format.pp_print_string ppf "(";
    Format.fprintf ppf "%a %s %a" (pp_expr_prec p) a (binop_symbol op)
      (pp_expr_prec (p + 1))
      b;
    if open_paren then Format.pp_print_string ppf ")"
  | Call (f, args) ->
    Format.fprintf ppf "%s(%a)" f
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (pp_expr_prec 0))
      args

let pp_expr ppf e = pp_expr_prec 0 ppf e

let rec pp_cond ppf = function
  | Cmp (op, a, b) ->
    Format.fprintf ppf "%a %s %a" pp_expr a (cmpop_symbol op) pp_expr b
  | And (a, b) -> Format.fprintf ppf "(%a and %a)" pp_cond a pp_cond b
  | Or (a, b) -> Format.fprintf ppf "(%a or %a)" pp_cond a pp_cond b
  | Not a -> Format.fprintf ppf "not (%a)" pp_cond a

let pp_lvalue ppf = function
  | Lscalar s -> Format.pp_print_string ppf s
  | Lelement (a, idxs) ->
    Format.fprintf ppf "%s[%a]" a
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         pp_expr)
      idxs

let rec pp_stmt ppf = function
  | Assign (lv, e) -> Format.fprintf ppf "@[<h>%a = %a@]" pp_lvalue lv pp_expr e
  | Read_input lv -> Format.fprintf ppf "@[<h>read(%a)@]" pp_lvalue lv
  | Print e -> Format.fprintf ppf "@[<h>print %a@]" pp_expr e
  | If (c, t, []) ->
    Format.fprintf ppf "@[<v 2>if (%a)@,%a@]@,end if" pp_cond c pp_stmts t
  | If (c, t, e) ->
    Format.fprintf ppf "@[<v 2>if (%a)@,%a@]@,@[<v 2>else@,%a@]@,end if"
      pp_cond c pp_stmts t pp_stmts e
  | For { index; lo; hi; step; body } ->
    let pp_header ppf () =
      match step with
      | Int_lit 1 ->
        Format.fprintf ppf "For %s=%a, %a" index pp_expr lo pp_expr hi
      | _ ->
        Format.fprintf ppf "For %s=%a, %a, %a" index pp_expr lo pp_expr hi
          pp_expr step
    in
    Format.fprintf ppf "@[<v 2>%a@,%a@]@,End for" pp_header () pp_stmts body

and pp_stmts ppf stmts =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_cut ppf ())
    pp_stmt ppf stmts

let rec pp_init ppf = function
  | Init_zero -> Format.pp_print_string ppf "zero"
  | Init_linear (a, b) ->
    Format.fprintf ppf "linear(%s, %s)" (float_repr a) (float_repr b)
  | Init_hash seed -> Format.fprintf ppf "hash(%d)" seed
  | Init_lanes (inner, l) -> Format.fprintf ppf "lanes(%a, %d)" pp_init inner l

(* The parser's defaults; a decl carrying one round-trips without being
   printed, so the common case stays as terse as the paper's listings. *)
let default_init d =
  if d.dims = [] then Init_zero else Init_linear (1.0, 0.001)

let pp_decl ppf d =
  let type_name = match d.dtype with F64 -> "real" | I64 -> "integer" in
  (match d.dims with
  | [] -> Format.fprintf ppf "%s %s" type_name d.var_name
  | dims ->
    Format.fprintf ppf "%s %s[%a]" type_name d.var_name
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Format.pp_print_int)
      dims);
  if not (equal_init d.init (default_init d)) then
    Format.fprintf ppf " = %a" pp_init d.init

let pp_program ppf p =
  Format.fprintf ppf "@[<v>program %s@," p.prog_name;
  List.iter (fun d -> Format.fprintf ppf "  %a@," pp_decl d) p.decls;
  if p.live_out <> [] then
    Format.fprintf ppf "  live_out %s@," (String.concat ", " p.live_out);
  Format.fprintf ppf "@[<v>%a@]@,end@]" pp_stmts p.body

let expr_to_string e = Format.asprintf "%a" pp_expr e
let program_to_string p = Format.asprintf "%a" pp_program p
