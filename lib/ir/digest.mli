(** Canonical content digest of an IR program — the cache-key primitive
    of the [bwc serve] result cache.

    [program p] is a 32-character hex MD5 of a type-directed, tagged,
    length-prefixed serialisation of the whole AST (name, declarations
    with dtypes/extents/initialisers, body, live-out set).  Two
    programs that are [Ast.equal_program] always digest identically —
    floats are hashed by their IEEE bits with [-0.0] canonicalised to
    [+0.0], so the digest never separates values float [=] equates —
    and the digest is stable across a pretty-print/re-parse round trip
    (which produces an [equal_program] AST).  It does {e not} depend on
    the pretty-printer's concrete syntax: whitespace or formatting
    changes cannot shift cache keys. *)

val program : Ast.program -> string

(** Digest of the statement body alone (no name, declarations or
    live-out): useful for spotting structurally identical computations
    declared under different names.  Not a cache key — two programs
    with equal bodies but different initialisers behave differently. *)
val body_only : Ast.program -> string
