open Ast

type parse_error = { message : string; line : int }

let pp_parse_error ppf e =
  Format.fprintf ppf "parse error at line %d: %s" e.line e.message

exception Error of parse_error

type state = { mutable tokens : Lexer.t list }

let fail_at line fmt =
  Printf.ksprintf (fun message -> raise (Error { message; line })) fmt

let peek st =
  match st.tokens with
  | t :: _ -> t
  | [] -> { Lexer.token = Lexer.EOF; line = 0 }

let advance st =
  match st.tokens with _ :: rest -> st.tokens <- rest | [] -> ()

let next st =
  let t = peek st in
  advance st;
  t

let expect st token =
  let t = next st in
  if t.Lexer.token <> token then
    fail_at t.line "expected %s, found %s"
      (Lexer.token_to_string token)
      (Lexer.token_to_string t.Lexer.token)

let expect_ident st =
  let t = next st in
  match t.Lexer.token with
  | Lexer.IDENT s -> s
  | other -> fail_at t.line "expected identifier, found %s" (Lexer.token_to_string other)

let expect_int st =
  let t = next st in
  match t.Lexer.token with
  | Lexer.INT n -> n
  | other -> fail_at t.line "expected integer, found %s" (Lexer.token_to_string other)

let expect_number st =
  let t = next st in
  match t.Lexer.token with
  | Lexer.FLOAT x -> x
  | Lexer.INT n -> float_of_int n
  | Lexer.MINUS -> (
    let t2 = next st in
    match t2.Lexer.token with
    | Lexer.FLOAT x -> -.x
    | Lexer.INT n -> float_of_int (-n)
    | other ->
      fail_at t2.line "expected number after '-', found %s"
        (Lexer.token_to_string other))
  | other -> fail_at t.line "expected number, found %s" (Lexer.token_to_string other)

let builtin_unops = [ ("abs", Abs); ("sqrt", Sqrt); ("float", Int_to_float) ]

(* --- expressions ------------------------------------------------------- *)

let rec parse_expression st =
  let lhs = parse_term st in
  let rec loop lhs =
    match (peek st).Lexer.token with
    | Lexer.PLUS ->
      advance st;
      loop (Binary (Add, lhs, parse_term st))
    | Lexer.MINUS ->
      advance st;
      loop (Binary (Sub, lhs, parse_term st))
    | _ -> lhs
  in
  loop lhs

and parse_term st =
  let lhs = parse_factor st in
  let rec loop lhs =
    match (peek st).Lexer.token with
    | Lexer.STAR ->
      advance st;
      loop (Binary (Mul, lhs, parse_factor st))
    | Lexer.SLASH ->
      advance st;
      loop (Binary (Div, lhs, parse_factor st))
    | Lexer.PERCENT ->
      advance st;
      loop (Binary (Mod, lhs, parse_factor st))
    | _ -> lhs
  in
  loop lhs

and parse_factor st =
  let t = next st in
  match t.Lexer.token with
  | Lexer.INT n -> Int_lit n
  | Lexer.FLOAT x -> Float_lit x
  | Lexer.MINUS -> Unary (Neg, parse_factor st)
  | Lexer.LPAREN ->
    let e = parse_expression st in
    expect st Lexer.RPAREN;
    e
  | Lexer.IDENT name -> (
    match (peek st).Lexer.token with
    | Lexer.LBRACKET ->
      advance st;
      let idxs = parse_expr_list st Lexer.RBRACKET in
      Element (name, idxs)
    | Lexer.LPAREN ->
      advance st;
      let args = parse_expr_list st Lexer.RPAREN in
      let lower = String.lowercase_ascii name in
      (match (List.assoc_opt lower builtin_unops, args) with
      | Some op, [ a ] -> Unary (op, a)
      | Some _, _ ->
        fail_at t.line "builtin '%s' expects exactly one argument" name
      | None, args -> (
        match (lower, args) with
        | "min", [ a; b ] -> Binary (Min, a, b)
        | "max", [ a; b ] -> Binary (Max, a, b)
        | ("min" | "max"), _ ->
          fail_at t.line "'%s' expects exactly two arguments" name
        | _ -> Call (name, args)))
    | _ -> Scalar name)
  | other ->
    fail_at t.line "expected an expression, found %s" (Lexer.token_to_string other)

and parse_expr_list st closing =
  if (peek st).Lexer.token = closing then begin
    advance st;
    []
  end
  else begin
    let first = parse_expression st in
    let rec loop acc =
      let t = next st in
      match t.Lexer.token with
      | c when c = closing -> List.rev acc
      | Lexer.COMMA -> loop (parse_expression st :: acc)
      | other ->
        fail_at t.line "expected ',' or %s, found %s"
          (Lexer.token_to_string closing)
          (Lexer.token_to_string other)
    in
    loop [ first ]
  end

(* --- conditions -------------------------------------------------------- *)

let rec parse_cond st =
  let lhs = parse_conjunction st in
  match (peek st).Lexer.token with
  | Lexer.KW "or" ->
    advance st;
    Or (lhs, parse_cond st)
  | _ -> lhs

and parse_conjunction st =
  let lhs = parse_cond_atom st in
  match (peek st).Lexer.token with
  | Lexer.KW "and" ->
    advance st;
    And (lhs, parse_conjunction st)
  | _ -> lhs

and parse_cond_atom st =
  match (peek st).Lexer.token with
  | Lexer.KW "not" ->
    advance st;
    expect st Lexer.LPAREN;
    let c = parse_cond st in
    expect st Lexer.RPAREN;
    Not c
  | _ ->
    let lhs = parse_expression st in
    let t = next st in
    let op =
      match t.Lexer.token with
      | Lexer.EQ | Lexer.ASSIGN -> Eq
      | Lexer.NE -> Ne
      | Lexer.LT -> Lt
      | Lexer.LE -> Le
      | Lexer.GT -> Gt
      | Lexer.GE -> Ge
      | other ->
        fail_at t.line "expected a comparison operator, found %s"
          (Lexer.token_to_string other)
    in
    Cmp (op, lhs, parse_expression st)

(* --- statements -------------------------------------------------------- *)

let rec parse_stmts st ~stop =
  let rec loop acc =
    let t = peek st in
    match t.Lexer.token with
    | Lexer.KW k when List.mem k stop -> List.rev acc
    | Lexer.EOF -> fail_at t.line "unexpected end of input inside a block"
    | _ -> loop (parse_stmt st :: acc)
  in
  loop []

and parse_stmt st =
  let t = peek st in
  match t.Lexer.token with
  | Lexer.KW "for" ->
    advance st;
    let index = expect_ident st in
    expect st Lexer.ASSIGN;
    let lo = parse_expression st in
    expect st Lexer.COMMA;
    let hi = parse_expression st in
    let step =
      if (peek st).Lexer.token = Lexer.COMMA then begin
        advance st;
        parse_expression st
      end
      else Int_lit 1
    in
    let body = parse_stmts st ~stop:[ "end"; "endfor" ] in
    close_block st ~short:"endfor" ~long:"for";
    For { index; lo; hi; step; body }
  | Lexer.KW "if" ->
    advance st;
    expect st Lexer.LPAREN;
    let cond = parse_cond st in
    expect st Lexer.RPAREN;
    let then_ = parse_stmts st ~stop:[ "else"; "end"; "endif" ] in
    let else_ =
      if (peek st).Lexer.token = Lexer.KW "else" then begin
        advance st;
        parse_stmts st ~stop:[ "end"; "endif" ]
      end
      else []
    in
    close_block st ~short:"endif" ~long:"if";
    If (cond, then_, else_)
  | Lexer.KW "read" ->
    advance st;
    expect st Lexer.LPAREN;
    let lv = parse_lvalue st in
    expect st Lexer.RPAREN;
    Read_input lv
  | Lexer.KW "print" ->
    advance st;
    Print (parse_expression st)
  | Lexer.IDENT _ ->
    let lv = parse_lvalue st in
    expect st Lexer.ASSIGN;
    Assign (lv, parse_expression st)
  | other ->
    fail_at t.line "expected a statement, found %s" (Lexer.token_to_string other)

and parse_lvalue st =
  let name = expect_ident st in
  if (peek st).Lexer.token = Lexer.LBRACKET then begin
    advance st;
    let idxs = parse_expr_list st Lexer.RBRACKET in
    Lelement (name, idxs)
  end
  else Lscalar name

and close_block st ~short ~long =
  let t = next st in
  match t.Lexer.token with
  | Lexer.KW k when k = short -> ()
  | Lexer.KW "end" -> (
    match (peek st).Lexer.token with
    | Lexer.KW k when k = long -> advance st
    | Lexer.KW "if" when long = "if" -> advance st
    | _ -> fail_at t.line "expected 'end %s'" long)
  | other ->
    fail_at t.line "expected 'end %s', found %s" long
      (Lexer.token_to_string other)

(* --- declarations and program ------------------------------------------ *)

let rec parse_init st =
  let t = next st in
  match t.Lexer.token with
  | Lexer.KW "zero" -> Init_zero
  | Lexer.KW "linear" ->
    expect st Lexer.LPAREN;
    let a = expect_number st in
    expect st Lexer.COMMA;
    let b = expect_number st in
    expect st Lexer.RPAREN;
    Init_linear (a, b)
  | Lexer.KW "hash" ->
    expect st Lexer.LPAREN;
    let seed = expect_int st in
    expect st Lexer.RPAREN;
    Init_hash seed
  | Lexer.KW "lanes" ->
    expect st Lexer.LPAREN;
    let inner = parse_init st in
    expect st Lexer.COMMA;
    let l = expect_int st in
    expect st Lexer.RPAREN;
    Init_lanes (inner, l)
  | other ->
    fail_at t.line
      "expected an initialiser (zero | linear(a,b) | hash(s) | lanes(i,l)), found %s"
      (Lexer.token_to_string other)

let parse_decl st dtype =
  let var_name = expect_ident st in
  let dims =
    if (peek st).Lexer.token = Lexer.LBRACKET then begin
      advance st;
      let first = expect_int st in
      let rec loop acc =
        let t = next st in
        match t.Lexer.token with
        | Lexer.RBRACKET -> List.rev acc
        | Lexer.COMMA -> loop (expect_int st :: acc)
        | other ->
          fail_at t.line "expected ',' or ']', found %s"
            (Lexer.token_to_string other)
      in
      loop [ first ]
    end
    else []
  in
  let init =
    if (peek st).Lexer.token = Lexer.ASSIGN then begin
      advance st;
      parse_init st
    end
    else if dims = [] then Init_zero
    else Init_linear (1.0, 0.001)
  in
  { var_name; dtype; dims; init }

let parse_program_tokens st =
  expect st (Lexer.KW "program");
  let prog_name = expect_ident st in
  let decls = ref [] and live_out = ref [] in
  let rec parse_header () =
    match (peek st).Lexer.token with
    | Lexer.KW "real" ->
      advance st;
      decls := parse_decl st F64 :: !decls;
      parse_header ()
    | Lexer.KW "integer" ->
      advance st;
      decls := parse_decl st I64 :: !decls;
      parse_header ()
    | Lexer.KW "live_out" ->
      advance st;
      let rec names acc =
        let name = expect_ident st in
        if (peek st).Lexer.token = Lexer.COMMA then begin
          advance st;
          names (name :: acc)
        end
        else List.rev (name :: acc)
      in
      live_out := !live_out @ names [];
      parse_header ()
    | _ -> ()
  in
  parse_header ();
  let body = parse_stmts st ~stop:[ "end" ] in
  expect st (Lexer.KW "end");
  (match (peek st).Lexer.token with
  | Lexer.EOF -> ()
  | other ->
    fail_at (peek st).Lexer.line "trailing input after 'end': %s"
      (Lexer.token_to_string other));
  { prog_name; decls = List.rev !decls; body; live_out = !live_out }

let parse_program src =
  match
    let st = { tokens = Lexer.tokenize src } in
    parse_program_tokens st
  with
  | program -> (
    match Check.check program with
    | Ok () -> Ok program
    | Error es ->
      let message =
        es
        |> List.map (fun e -> Format.asprintf "%a" Check.pp_error e)
        |> String.concat "; "
      in
      Error { message; line = 0 })
  | exception Error e -> Error e
  | exception Lexer.Lex_error (message, line) -> Error { message; line }

let parse_program_exn src =
  match parse_program src with
  | Ok p -> p
  | Error e -> invalid_arg (Format.asprintf "%a" pp_parse_error e)

let parse_expr src =
  match
    let st = { tokens = Lexer.tokenize src } in
    let e = parse_expression st in
    expect st Lexer.EOF;
    e
  with
  | e -> Ok e
  | exception Error e -> Error e
  | exception Lexer.Lex_error (message, line) -> Error { message; line }
