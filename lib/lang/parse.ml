open Bw_ir.Ast

type error = { message : string; line : int; col : int }

let pp_error ppf e =
  Format.fprintf ppf "%d:%d: %s" e.line e.col e.message

let error_to_string ?file e =
  match file with
  | Some f -> Printf.sprintf "%s:%d:%d: %s" f e.line e.col e.message
  | None -> Printf.sprintf "%d:%d: %s" e.line e.col e.message

exception Error of error

type state = {
  mutable tokens : Lexer.t list;
  decl_dims : (string, int) Hashtbl.t;  (** declared name -> dimensions *)
  mutable indices : string list;  (** active loop indices, innermost first *)
}

let fail_at (pos : Lexer.pos) fmt =
  Printf.ksprintf
    (fun message ->
      raise (Error { message; line = pos.Lexer.line; col = pos.Lexer.col }))
    fmt

let peek st =
  match st.tokens with
  | t :: _ -> t
  | [] -> { Lexer.token = Lexer.EOF; pos = { Lexer.line = 0; col = 0 } }

let advance st =
  match st.tokens with _ :: rest -> st.tokens <- rest | [] -> ()

let next st =
  let t = peek st in
  advance st;
  t

let expect st token =
  let t = next st in
  if t.Lexer.token <> token then
    fail_at t.pos "expected %s, found %s"
      (Lexer.token_to_string token)
      (Lexer.token_to_string t.Lexer.token)

let expect_ident st =
  let t = next st in
  match t.Lexer.token with
  | Lexer.IDENT s -> (s, t.Lexer.pos)
  | other ->
    fail_at t.pos "expected identifier, found %s" (Lexer.token_to_string other)

let expect_int st =
  let t = next st in
  match t.Lexer.token with
  | Lexer.INT n -> n
  | other ->
    fail_at t.pos "expected integer, found %s" (Lexer.token_to_string other)

let expect_number st =
  let t = next st in
  match t.Lexer.token with
  | Lexer.FLOAT x -> x
  | Lexer.INT n -> float_of_int n
  | Lexer.MINUS -> (
    let t2 = next st in
    match t2.Lexer.token with
    | Lexer.FLOAT x -> -.x
    | Lexer.INT n -> float_of_int (-n)
    | other ->
      fail_at t2.pos "expected number after '-', found %s"
        (Lexer.token_to_string other))
  | other ->
    fail_at t.pos "expected number, found %s" (Lexer.token_to_string other)

let builtin_unops = [ ("abs", Abs); ("sqrt", Sqrt); ("float", Int_to_float) ]

(* --- scope checks ------------------------------------------------------- *)

let check_scalar_ref st name pos =
  if not (List.mem name st.indices) then
    match Hashtbl.find_opt st.decl_dims name with
    | Some 0 -> ()
    | Some _ -> fail_at pos "array '%s' used without subscripts" name
    | None -> fail_at pos "undeclared variable '%s'" name

let check_element_ref st name pos n_subscripts =
  match Hashtbl.find_opt st.decl_dims name with
  | Some 0 -> fail_at pos "scalar '%s' cannot be subscripted" name
  | Some d when d <> n_subscripts ->
    fail_at pos "array '%s' has %d dimension(s), found %d subscript(s)" name d
      n_subscripts
  | Some _ -> ()
  | None -> fail_at pos "undeclared array '%s'" name

(* --- expressions ------------------------------------------------------- *)

let rec parse_expression st =
  let lhs = parse_term st in
  let rec loop lhs =
    match (peek st).Lexer.token with
    | Lexer.PLUS ->
      advance st;
      loop (Binary (Add, lhs, parse_term st))
    | Lexer.MINUS ->
      advance st;
      loop (Binary (Sub, lhs, parse_term st))
    | _ -> lhs
  in
  loop lhs

and parse_term st =
  let lhs = parse_factor st in
  let rec loop lhs =
    match (peek st).Lexer.token with
    | Lexer.STAR ->
      advance st;
      loop (Binary (Mul, lhs, parse_factor st))
    | Lexer.SLASH ->
      advance st;
      loop (Binary (Div, lhs, parse_factor st))
    | Lexer.PERCENT ->
      advance st;
      loop (Binary (Mod, lhs, parse_factor st))
    | _ -> lhs
  in
  loop lhs

and parse_factor st =
  let t = next st in
  match t.Lexer.token with
  | Lexer.INT n -> Int_lit n
  | Lexer.FLOAT x -> Float_lit x
  | Lexer.MINUS -> Unary (Neg, parse_factor st)
  | Lexer.LPAREN ->
    let e = parse_expression st in
    expect st Lexer.RPAREN;
    e
  | Lexer.IDENT name -> (
    match (peek st).Lexer.token with
    | Lexer.LBRACKET ->
      advance st;
      let idxs = parse_expr_list st Lexer.RBRACKET in
      check_element_ref st name t.Lexer.pos (List.length idxs);
      Element (name, idxs)
    | Lexer.LPAREN ->
      advance st;
      let args = parse_expr_list st Lexer.RPAREN in
      let lower = String.lowercase_ascii name in
      (match (List.assoc_opt lower builtin_unops, args) with
      | Some op, [ a ] -> Unary (op, a)
      | Some _, _ ->
        fail_at t.Lexer.pos "builtin '%s' expects exactly one argument" name
      | None, args -> (
        match (lower, args) with
        | "min", [ a; b ] -> Binary (Min, a, b)
        | "max", [ a; b ] -> Binary (Max, a, b)
        | ("min" | "max"), _ ->
          fail_at t.Lexer.pos "'%s' expects exactly two arguments" name
        | _ -> Call (name, args)))
    | _ ->
      check_scalar_ref st name t.Lexer.pos;
      Scalar name)
  | other ->
    fail_at t.Lexer.pos "expected an expression, found %s"
      (Lexer.token_to_string other)

and parse_expr_list st closing =
  if (peek st).Lexer.token = closing then begin
    advance st;
    []
  end
  else begin
    let first = parse_expression st in
    let rec loop acc =
      let t = next st in
      match t.Lexer.token with
      | c when c = closing -> List.rev acc
      | Lexer.COMMA -> loop (parse_expression st :: acc)
      | other ->
        fail_at t.Lexer.pos "expected ',' or %s, found %s"
          (Lexer.token_to_string closing)
          (Lexer.token_to_string other)
    in
    loop [ first ]
  end

(* --- conditions -------------------------------------------------------- *)

let rec parse_cond st =
  let lhs = parse_conjunction st in
  match (peek st).Lexer.token with
  | Lexer.KW "or" ->
    advance st;
    Or (lhs, parse_cond st)
  | _ -> lhs

and parse_conjunction st =
  let lhs = parse_cond_atom st in
  match (peek st).Lexer.token with
  | Lexer.KW "and" ->
    advance st;
    And (lhs, parse_conjunction st)
  | _ -> lhs

and parse_cond_atom st =
  match (peek st).Lexer.token with
  | Lexer.KW "not" ->
    advance st;
    expect st Lexer.LPAREN;
    let c = parse_cond st in
    expect st Lexer.RPAREN;
    Not c
  | Lexer.LPAREN -> (
    (* a '(' may open a nested condition — what the pretty-printer emits
       for and/or — or a parenthesized comparison operand; try the
       condition reading first and fall back on the operand one *)
    let saved = st.tokens in
    match
      advance st;
      let c = parse_cond st in
      expect st Lexer.RPAREN;
      c
    with
    | c -> c
    | exception Error _ ->
      st.tokens <- saved;
      parse_comparison st)
  | _ -> parse_comparison st

and parse_comparison st =
    let lhs = parse_expression st in
    let t = next st in
    let op =
      match t.Lexer.token with
      | Lexer.EQ | Lexer.ASSIGN -> Eq
      | Lexer.NE -> Ne
      | Lexer.LT -> Lt
      | Lexer.LE -> Le
      | Lexer.GT -> Gt
      | Lexer.GE -> Ge
      | other ->
        fail_at t.Lexer.pos "expected a comparison operator, found %s"
          (Lexer.token_to_string other)
    in
    Cmp (op, lhs, parse_expression st)

(* --- statements -------------------------------------------------------- *)

let rec parse_stmts st ~stop =
  let rec loop acc =
    let t = peek st in
    match t.Lexer.token with
    | Lexer.KW k when List.mem k stop -> List.rev acc
    | Lexer.EOF -> fail_at t.Lexer.pos "unexpected end of input inside a block"
    | _ -> loop (parse_stmt st :: acc)
  in
  loop []

and parse_stmt st =
  let t = peek st in
  match t.Lexer.token with
  | Lexer.KW "for" ->
    advance st;
    let index, ipos = expect_ident st in
    if Hashtbl.mem st.decl_dims index then
      fail_at ipos "loop index '%s' shadows a declaration" index;
    expect st Lexer.ASSIGN;
    (* bounds and step are parsed in the enclosing scope: the loop's own
       index is not visible in them *)
    let lo = parse_expression st in
    expect st Lexer.COMMA;
    let hi = parse_expression st in
    let step =
      if (peek st).Lexer.token = Lexer.COMMA then begin
        advance st;
        parse_expression st
      end
      else Int_lit 1
    in
    st.indices <- index :: st.indices;
    let body = parse_stmts st ~stop:[ "end"; "endfor" ] in
    st.indices <- List.tl st.indices;
    close_block st ~short:"endfor" ~long:"for";
    For { index; lo; hi; step; body }
  | Lexer.KW "if" ->
    advance st;
    expect st Lexer.LPAREN;
    let cond = parse_cond st in
    expect st Lexer.RPAREN;
    let then_ = parse_stmts st ~stop:[ "else"; "end"; "endif" ] in
    let else_ =
      if (peek st).Lexer.token = Lexer.KW "else" then begin
        advance st;
        parse_stmts st ~stop:[ "end"; "endif" ]
      end
      else []
    in
    close_block st ~short:"endif" ~long:"if";
    If (cond, then_, else_)
  | Lexer.KW "read" ->
    advance st;
    expect st Lexer.LPAREN;
    let lv = parse_lvalue st in
    expect st Lexer.RPAREN;
    Read_input lv
  | Lexer.KW "print" ->
    advance st;
    Print (parse_expression st)
  | Lexer.IDENT _ ->
    let lv = parse_lvalue st in
    expect st Lexer.ASSIGN;
    Assign (lv, parse_expression st)
  | other ->
    fail_at t.Lexer.pos "expected a statement, found %s"
      (Lexer.token_to_string other)

and parse_lvalue st =
  let name, pos = expect_ident st in
  if (peek st).Lexer.token = Lexer.LBRACKET then begin
    advance st;
    let idxs = parse_expr_list st Lexer.RBRACKET in
    check_element_ref st name pos (List.length idxs);
    Lelement (name, idxs)
  end
  else begin
    if List.mem name st.indices then
      fail_at pos "loop index '%s' cannot be assigned" name;
    check_scalar_ref st name pos;
    Lscalar name
  end

and close_block st ~short ~long =
  let t = next st in
  match t.Lexer.token with
  | Lexer.KW k when k = short -> ()
  | Lexer.KW "end" -> (
    match (peek st).Lexer.token with
    | Lexer.KW k when k = long -> advance st
    | Lexer.KW "if" when long = "if" -> advance st
    | _ -> fail_at t.Lexer.pos "expected 'end %s'" long)
  | other ->
    fail_at t.Lexer.pos "expected 'end %s', found %s" long
      (Lexer.token_to_string other)

(* --- declarations and program ------------------------------------------ *)

let rec parse_init st =
  let t = next st in
  match t.Lexer.token with
  | Lexer.KW "zero" -> Init_zero
  | Lexer.KW "linear" ->
    expect st Lexer.LPAREN;
    let a = expect_number st in
    expect st Lexer.COMMA;
    let b = expect_number st in
    expect st Lexer.RPAREN;
    Init_linear (a, b)
  | Lexer.KW "hash" ->
    expect st Lexer.LPAREN;
    let seed = expect_int st in
    expect st Lexer.RPAREN;
    Init_hash seed
  | Lexer.KW "lanes" ->
    expect st Lexer.LPAREN;
    let inner = parse_init st in
    expect st Lexer.COMMA;
    let l = expect_int st in
    expect st Lexer.RPAREN;
    Init_lanes (inner, l)
  | other ->
    fail_at t.Lexer.pos
      "expected an initialiser (zero | linear(a,b) | hash(s) | lanes(i,l)), found %s"
      (Lexer.token_to_string other)

let parse_decl st dtype =
  let var_name, npos = expect_ident st in
  if Hashtbl.mem st.decl_dims var_name then
    fail_at npos "duplicate declaration of '%s'" var_name;
  let dims =
    if (peek st).Lexer.token = Lexer.LBRACKET then begin
      advance st;
      let first = expect_int st in
      let rec loop acc =
        let t = next st in
        match t.Lexer.token with
        | Lexer.RBRACKET -> List.rev acc
        | Lexer.COMMA -> loop (expect_int st :: acc)
        | other ->
          fail_at t.Lexer.pos "expected ',' or ']', found %s"
            (Lexer.token_to_string other)
      in
      loop [ first ]
    end
    else []
  in
  let init =
    if (peek st).Lexer.token = Lexer.ASSIGN then begin
      advance st;
      parse_init st
    end
    else if dims = [] then Init_zero
    else Init_linear (1.0, 0.001)
  in
  Hashtbl.replace st.decl_dims var_name (List.length dims);
  { var_name; dtype; dims; init }

let parse_program_tokens st =
  let header = peek st in
  expect st (Lexer.KW "program");
  let prog_name, _ = expect_ident st in
  let decls = ref [] and live_out = ref [] in
  let rec parse_header () =
    match (peek st).Lexer.token with
    | Lexer.KW "real" ->
      advance st;
      decls := parse_decl st F64 :: !decls;
      parse_header ()
    | Lexer.KW "integer" ->
      advance st;
      decls := parse_decl st I64 :: !decls;
      parse_header ()
    | Lexer.KW "live_out" ->
      advance st;
      let rec names acc =
        let name = expect_ident st in
        if (peek st).Lexer.token = Lexer.COMMA then begin
          advance st;
          names (name :: acc)
        end
        else List.rev (name :: acc)
      in
      live_out := !live_out @ names [];
      parse_header ()
    | _ -> ()
  in
  parse_header ();
  List.iter
    (fun (name, pos) ->
      if not (Hashtbl.mem st.decl_dims name) then
        fail_at pos "live_out name '%s' is not declared" name)
    !live_out;
  let body = parse_stmts st ~stop:[ "end" ] in
  expect st (Lexer.KW "end");
  (match (peek st).Lexer.token with
  | Lexer.EOF -> ()
  | other ->
    fail_at (peek st).Lexer.pos "trailing input after 'end': %s"
      (Lexer.token_to_string other));
  let program =
    { prog_name;
      decls = List.rev !decls;
      body;
      live_out = List.map fst !live_out }
  in
  (* backstop for what the scope checks cannot see (operand typing,
     subscript bounds); anchored at the 'program' keyword *)
  (match Bw_ir.Check.check program with
  | Ok () -> ()
  | Error es ->
    fail_at header.Lexer.pos "%s"
      (String.concat "; "
         (List.map (fun e -> Format.asprintf "%a" Bw_ir.Check.pp_error e) es)));
  program

let parse_program src =
  match
    let st =
      { tokens = Lexer.tokenize src;
        decl_dims = Hashtbl.create 16;
        indices = [] }
    in
    parse_program_tokens st
  with
  | program -> Ok program
  | exception Error e -> Error e
  | exception Lexer.Lex_error (message, pos) ->
    Error { message; line = pos.Lexer.line; col = pos.Lexer.col }

let parse_program_exn src =
  match parse_program src with
  | Ok p -> p
  | Error e -> invalid_arg (error_to_string e)

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | src -> Ok src
  | exception Sys_error msg -> Error msg
  | exception End_of_file -> Error (path ^ ": truncated read")

let parse_file path =
  Result.bind (read_file path) (fun src ->
      match parse_program src with
      | Ok p -> Ok p
      | Error e -> Error (error_to_string ~file:path e))
