(** Position-tracking lexer for the [.bw] surface language.

    Token set and lexical rules are identical to the legacy
    {!Bw_ir.Lexer} — keywords are case-insensitive, [!] and [//] start
    line comments — but every token carries its 1-based line {e and}
    column, so the parser can report errors in the
    [FILE:LINE:COL: message] style. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | KW of string
  | EOF

(** 1-based source position of a token's first character.  The [EOF]
    token points just past the last character of the input. *)
type pos = { line : int; col : int }

type t = { token : token; pos : pos }

exception Lex_error of string * pos

(** Tokenize the whole input; the final element is always [EOF].
    @raise Lex_error on an unexpected character. *)
val tokenize : string -> t list

(** Human-readable rendering used in error messages, e.g.
    ["identifier 'a'"], ["','"], ["end of input"]. *)
val token_to_string : token -> string
