(** Golden-artifact rendering for the [.bw] corpus.

    One corpus entry is a [NAME.bw] source file plus a committed
    [NAME.golden] file holding everything a front-end or pass change
    could silently disturb:

    - [== parse ==]: the canonical pretty-print of the parsed program
      (also the answer [bwc fmt] gives for the file);
    - [== check ==]: the {!Bw_ir.Check} verdict and the
      {!Bw_transform.Ir_stats} shape summary;
    - [== analysis ==]: the analytic tier of {!Bw_exec.Evaluate} on the
      Origin2000 model — flops, loads/stores, per-direction memory
      traffic, predicted seconds and the binding resource.

    Rendering is deterministic (no wall clock, no RNG, fixed [%.6g]
    float formatting), so goldens regenerate byte-identically and a
    one-byte drift is a real behaviour change. *)

(** Render the golden text for a parsed program. *)
val render : Bw_ir.Ast.program -> string

(** [golden_path "corpus/mm.bw"] is ["corpus/mm.golden"]. *)
val golden_path : string -> string

(** First differing line of two golden texts, 1-based, with both lines
    ([None] when equal).  Drives the corpus runner's one-line drift
    report. *)
val first_diff : string -> string -> (int * string * string) option
