let fl x = Printf.sprintf "%.6g" x

let render (p : Bw_ir.Ast.program) =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "== parse ==\n";
  add "%s\n" (Bw_ir.Pretty.program_to_string p);
  add "\n== check ==\n";
  (match Bw_ir.Check.check p with
  | Ok () -> add "ok\n"
  | Error es ->
    List.iter
      (fun e -> add "error: %s\n" (Format.asprintf "%a" Bw_ir.Check.pp_error e))
      es);
  let s = Bw_transform.Ir_stats.of_program p in
  add "toplevel: %d\n" s.Bw_transform.Ir_stats.toplevel;
  add "statements: %d\n" s.Bw_transform.Ir_stats.statements;
  add "distinct arrays: %d\n" s.Bw_transform.Ir_stats.distinct_arrays;
  add "est flops: %s\n" (fl s.Bw_transform.Ir_stats.est_flops);
  add "est bytes: %s\n" (fl s.Bw_transform.Ir_stats.est_bytes);
  add "predicted balance: %s\n" (fl s.Bw_transform.Ir_stats.predicted_balance);
  let machine = Bw_machine.Machine.origin2000 in
  let e =
    Bw_exec.Evaluate.of_program ~budget:Bw_exec.Evaluate.Microseconds ~machine p
  in
  add "\n== analysis ==\n";
  add "machine: %s\n" machine.Bw_machine.Machine.name;
  add "fidelity: %s\n" (Bw_exec.Evaluate.fidelity_name e.Bw_exec.Evaluate.fidelity);
  add "flops: %s\n" (fl e.Bw_exec.Evaluate.flops);
  add "loads: %s\n" (fl e.Bw_exec.Evaluate.loads);
  add "stores: %s\n" (fl e.Bw_exec.Evaluate.stores);
  add "memory bytes in: %s\n" (fl e.Bw_exec.Evaluate.memory_bytes_in);
  add "memory bytes out: %s\n" (fl e.Bw_exec.Evaluate.memory_bytes_out);
  add "predicted seconds: %s\n" (fl e.Bw_exec.Evaluate.seconds);
  add "binding resource: %s\n" e.Bw_exec.Evaluate.binding_resource;
  Buffer.contents buf

let golden_path bw_path =
  (if Filename.check_suffix bw_path ".bw" then Filename.chop_suffix bw_path ".bw"
   else bw_path)
  ^ ".golden"

let first_diff a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go i la lb =
    match (la, lb) with
    | [], [] -> None
    | x :: la, y :: lb -> if x = y then go (i + 1) la lb else Some (i, x, y)
    | x :: _, [] -> Some (i, x, "<end of file>")
    | [], y :: _ -> Some (i, "<end of file>", y)
  in
  go 1 la lb
