(** Recursive-descent parser for the [.bw] surface language.

    Accepts exactly the language of the legacy {!Bw_ir.Parser} (and in
    particular everything {!Bw_ir.Pretty.pp_program} prints), but every
    diagnostic — lexical, syntactic, {e and} the common semantic
    mistakes — carries a 1-based line and column:

    - undeclared variables and arrays, at the offending reference;
    - a scalar subscripted, or an array used bare / with the wrong
      number of subscripts;
    - duplicate declarations, undeclared [live_out] names;
    - a loop index that shadows a declaration or is assigned.

    Anything the parse-time scope checks cannot see (operand typing,
    bounds) is caught by the {!Bw_ir.Check} backstop that runs on every
    successful parse; those messages are anchored at the [program]
    keyword.  Errors render as one line in the [Loader] style —
    [FILE:LINE:COL: message] — never a backtrace. *)

type error = { message : string; line : int; col : int }

(** ["LINE:COL: message"]. *)
val pp_error : Format.formatter -> error -> unit

(** ["FILE:LINE:COL: message"] when [file] is given, {!pp_error}'s
    rendering otherwise. *)
val error_to_string : ?file:string -> error -> string

(** Parse and check a whole program. *)
val parse_program : string -> (Bw_ir.Ast.program, error) result

(** @raise Invalid_argument with the rendered error on failure. *)
val parse_program_exn : string -> Bw_ir.Ast.program

(** [parse_file path] reads [path] and parses it; I/O and parse errors
    are rendered ["path:LINE:COL: message"] (I/O errors carry no
    position). *)
val parse_file : string -> (Bw_ir.Ast.program, string) result
