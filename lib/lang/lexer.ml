type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | KW of string
  | EOF

type pos = { line : int; col : int }

type t = { token : token; pos : pos }

exception Lex_error of string * pos

let keywords =
  [ "program"; "end"; "for"; "endfor"; "if"; "endif"; "else"; "read";
    "print"; "real"; "integer"; "live_out"; "and"; "or"; "not"; "zero";
    "linear"; "hash"; "lanes"; "init" ]

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_digit c || is_alpha c

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  (* byte offset of the first character of the current line; column of
     offset [p] is [p - bol + 1] *)
  let bol = ref 0 in
  let pos = ref 0 in
  let here () = { line = !line; col = !pos - !bol + 1 } in
  let emit_at p token = tokens := { token; pos = p } :: !tokens in
  let advance () = incr pos in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then begin
      incr line;
      advance ();
      bol := !pos
    end
    else if c = ' ' || c = '\t' || c = '\r' then advance ()
    else if c = '!' || (c = '/' && !pos + 1 < n && src.[!pos + 1] = '/') then begin
      while !pos < n && src.[!pos] <> '\n' do
        advance ()
      done
    end
    else if is_digit c then begin
      let start_pos = here () in
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do
        advance ()
      done;
      let is_float = ref false in
      if
        !pos < n
        && src.[!pos] = '.'
        && !pos + 1 < n
        && is_digit src.[!pos + 1]
      then begin
        is_float := true;
        advance ();
        while !pos < n && is_digit src.[!pos] do
          advance ()
        done
      end;
      if !pos < n && (src.[!pos] = 'e' || src.[!pos] = 'E') then begin
        is_float := true;
        advance ();
        if !pos < n && (src.[!pos] = '+' || src.[!pos] = '-') then advance ();
        while !pos < n && is_digit src.[!pos] do
          advance ()
        done
      end;
      let text = String.sub src start (!pos - start) in
      if !is_float then emit_at start_pos (FLOAT (float_of_string text))
      else emit_at start_pos (INT (int_of_string text))
    end
    else if is_alpha c then begin
      let start_pos = here () in
      let start = !pos in
      while !pos < n && is_alnum src.[!pos] do
        advance ()
      done;
      let text = String.sub src start (!pos - start) in
      let lower = String.lowercase_ascii text in
      if List.mem lower keywords then emit_at start_pos (KW lower)
      else emit_at start_pos (IDENT text)
    end
    else begin
      let start_pos = here () in
      let two = if !pos + 1 < n then Some (String.sub src !pos 2) else None in
      match two with
      | Some "==" ->
        emit_at start_pos EQ;
        advance ();
        advance ()
      | Some ("<>" | "!=") ->
        emit_at start_pos NE;
        advance ();
        advance ()
      | Some "<=" ->
        emit_at start_pos LE;
        advance ();
        advance ()
      | Some ">=" ->
        emit_at start_pos GE;
        advance ();
        advance ()
      | _ -> (
        advance ();
        match c with
        | '(' -> emit_at start_pos LPAREN
        | ')' -> emit_at start_pos RPAREN
        | '[' -> emit_at start_pos LBRACKET
        | ']' -> emit_at start_pos RBRACKET
        | ',' -> emit_at start_pos COMMA
        | '=' -> emit_at start_pos ASSIGN
        | '+' -> emit_at start_pos PLUS
        | '-' -> emit_at start_pos MINUS
        | '*' -> emit_at start_pos STAR
        | '/' -> emit_at start_pos SLASH
        | '%' -> emit_at start_pos PERCENT
        | '<' -> emit_at start_pos LT
        | '>' -> emit_at start_pos GT
        | _ ->
          raise
            (Lex_error
               (Printf.sprintf "unexpected character '%c'" c, start_pos)))
    end
  done;
  tokens := { token = EOF; pos = here () } :: !tokens;
  List.rev !tokens

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier '%s'" s
  | INT n -> Printf.sprintf "integer %d" n
  | FLOAT x -> Printf.sprintf "float %g" x
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | COMMA -> "','"
  | ASSIGN -> "'='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | EQ -> "'=='"
  | NE -> "'<>'"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | KW k -> Printf.sprintf "keyword '%s'" k
  | EOF -> "end of input"
