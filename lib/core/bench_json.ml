(* Compatibility alias: the generic JSON machinery moved to Json
   (lib/core/json.ml) so the serve wire protocol and the bench harness
   share one parser/printer.  Existing Bench_json callers are
   unaffected. *)

include Json
