type suggestion = {
  action : string;
  traffic_before : int;
  traffic_after : int;
  time_speedup : float;
  apply : Bw_ir.Ast.program;
}

type report = {
  program_name : string;
  machine_name : string;
  binding_resource : string;
  memory_demand_ratio : float;
  analytic : Bw_exec.Evaluate.t;
  suggestions : suggestion list;
}

let traffic r = Bw_machine.Timing.memory_bytes r.Bw_exec.Run.cache

(* Candidate transformations, each as (action, transformed program). *)
let candidates (p : Bw_ir.Ast.program) =
  let fusions =
    List.concat
      (List.mapi
         (fun pos stmt ->
           match (stmt, List.nth_opt p.Bw_ir.Ast.body (pos + 1)) with
           | Bw_ir.Ast.For _, Some (Bw_ir.Ast.For _) -> (
             match Bw_transform.Fuse.fuse_at p pos with
             | Ok p' ->
               [ (Printf.sprintf "fuse loops %d and %d" pos (pos + 1), p') ]
             | Error _ -> [])
           | _ -> [])
         p.Bw_ir.Ast.body)
  in
  let global_fusion =
    match Bw_fusion.Bandwidth_minimal.fuse_program p with
    | Ok (p', plan) when List.length plan < List.length p.Bw_ir.Ast.body ->
      [ ("bandwidth-minimal global fusion", p') ]
    | _ -> []
  in
  let search_fusion =
    let cfg =
      Bw_fusion.Search.default_config ~engine:Bw_fusion.Search.Anneal ()
    in
    match Bw_fusion.Search.run cfg p with
    | Ok (p', st)
      when st.Bw_fusion.Search.accepted
           && List.length st.Bw_fusion.Search.plan
              < List.length p.Bw_ir.Ast.body ->
      [ ("annealed k-way fusion search", p') ]
    | _ -> []
  in
  let contractions =
    List.map
      (fun a ->
        let p', _ = Bw_transform.Contract.contract_arrays p in
        (Printf.sprintf "contract array '%s' to a scalar" a, p'))
      (match Bw_transform.Contract.contractable p with
      | [] -> []
      | l -> [ String.concat ", " l ])
  in
  let shrinks =
    List.filter_map
      (fun d ->
        if not (Bw_ir.Ast.is_array d) then None
        else
          match Bw_transform.Shrink.apply p d.Bw_ir.Ast.var_name with
          | Ok (p', plan) ->
            Some
              ( Printf.sprintf "shrink array '%s' to a depth-%d window"
                  d.Bw_ir.Ast.var_name plan.Bw_transform.Shrink.depth,
                p' )
          | Error _ -> None)
      p.Bw_ir.Ast.decls
  in
  let store_elims =
    let p', eliminated = Bw_transform.Store_elim.run p in
    match eliminated with
    | [] -> []
    | l ->
      [ (Printf.sprintf "eliminate write-backs to %s" (String.concat ", " l), p') ]
  in
  let regroups =
    match Bw_transform.Regroup.regroup_all p with
    | _, [] -> []
    | p', pairs ->
      [ ( "interleave "
          ^ String.concat ", "
              (List.map (fun (a, b) -> Printf.sprintf "%s/%s" a b) pairs),
          p' ) ]
  in
  let tilings =
    List.concat
      (List.mapi
         (fun pos stmt ->
           match stmt with
           | Bw_ir.Ast.For l -> (
             let indices =
               l.Bw_ir.Ast.index :: Bw_ir.Ast_util.loop_indices l.Bw_ir.Ast.body
             in
             if List.length indices < 2 then []
             else
               match
                 Bw_transform.Tile.tile_nest l
                   ~tiles:(List.map (fun i -> (i, 32)) indices)
               with
               | Ok tiled ->
                 let body =
                   List.mapi
                     (fun i s -> if i = pos then Bw_ir.Ast.For tiled else s)
                     p.Bw_ir.Ast.body
                 in
                 [ (Printf.sprintf "tile the loop nest at statement %d" pos,
                    { p with Bw_ir.Ast.body = body }) ]
               | Error _ -> [])
           | _ -> [])
         p.Bw_ir.Ast.body)
  in
  let full_pipeline =
    let p', _ = Bw_transform.Strategy.run p in
    [ ("full pipeline (fuse + contract + shrink + eliminate stores)", p') ]
  in
  fusions @ global_fusion @ search_fusion @ contractions @ shrinks
  @ store_elims @ regroups @ tilings @ full_pipeline

let diagnose ~machine (p : Bw_ir.Ast.program) =
  let base = Bw_exec.Run.simulate ~machine p in
  let row =
    { Balance.name = p.Bw_ir.Ast.prog_name;
      Balance.per_boundary = Bw_exec.Run.program_balance base }
  in
  let _, ratio = Balance.worst_ratio row machine in
  let before_traffic = traffic base in
  let suggestions =
    candidates p
    |> List.filter_map (fun (action, p') ->
           match Bw_exec.Run.simulate ~machine p' with
           | exception _ -> None
           | after ->
             if
               not
                 (Bw_exec.Interp.equal_observation
                    base.Bw_exec.Run.observation after.Bw_exec.Run.observation)
             then None
             else begin
               let after_traffic = traffic after in
               if after_traffic >= before_traffic then None
               else
                 Some
                   { action;
                     traffic_before = before_traffic;
                     traffic_after = after_traffic;
                     time_speedup =
                       Bw_exec.Run.seconds base /. Bw_exec.Run.seconds after;
                     apply = p' }
             end)
    |> List.sort (fun a b -> compare a.traffic_after b.traffic_after)
  in
  { program_name = p.Bw_ir.Ast.prog_name;
    machine_name = machine.Bw_machine.Machine.name;
    binding_resource = base.Bw_exec.Run.breakdown.Bw_machine.Timing.binding_resource;
    memory_demand_ratio = ratio;
    analytic =
      Bw_exec.Evaluate.of_program ~budget:Bw_exec.Evaluate.Microseconds
        ~machine p;
    suggestions }

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%s on %s: bound by %s (worst demand/supply %.1fx)@,"
    r.program_name r.machine_name r.binding_resource r.memory_demand_ratio;
  Format.fprintf ppf
    "analytic prediction (no execution): %.3f ms, %.2f MB memory traffic, \
     bound by %s@,"
    (r.analytic.Bw_exec.Evaluate.seconds *. 1e3)
    (Bw_exec.Evaluate.memory_bytes r.analytic /. 1e6)
    r.analytic.Bw_exec.Evaluate.binding_resource;
  (match r.suggestions with
  | [] -> Format.fprintf ppf "no bandwidth-reducing transformation found@,"
  | l ->
    List.iter
      (fun s ->
        Format.fprintf ppf "- %-55s %6.2f MB -> %6.2f MB (%.2fx faster)@,"
          s.action
          (float_of_int s.traffic_before /. 1e6)
          (float_of_int s.traffic_after /. 1e6)
          s.time_speedup)
      l);
  Format.fprintf ppf "@]"
