(** Resolution of a CLI program argument: a built-in workload name from
    {!Bw_workloads.Registry}, or a path to a surface-language [.bw] file.

    Total: every failure mode — unknown name, missing file, a path that
    is a directory, an unreadable file, a parse error — comes back as
    [Error] with a one-line message, never as an exception, so drivers
    can print it and [exit 1] (the CLI-robustness contract tested in
    [test/test_obs.ml]). *)

val load_program :
  scale:int -> string -> (Bw_ir.Ast.program, string) result

(** Read a whole file; [Error] carries the [Sys_error] message. *)
val read_file : string -> (string, string) result
