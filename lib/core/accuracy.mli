(** Predicted-vs-simulated validation of the analytic tier.

    The closed-form predictor ({!Bw_analysis.Predict}, surfaced as the
    [Microseconds] tier of {!Bw_exec.Evaluate}) is only useful for
    triage if its error is characterised.  This module measures it:
    every registry workload is captured once and replayed on a set of
    machine variants, and each (workload, machine) cell compares the
    analytic prediction against the exact simulator.  The resulting
    rows feed the [predict] experiment table, the
    [bwc predict --check] CI smoke, and the error-envelope table in
    EXPERIMENTS.md. *)

(** One (workload, machine) comparison cell. *)
type row = {
  workload : string;
  machine : string;
  pred_seconds : float;
  sim_seconds : float;
  pred_memory_bytes : float;  (** analytic memory-bus traffic, in + out *)
  sim_memory_bytes : float;  (** exact simulator memory-bus traffic *)
}

(** predicted / simulated; [infinity] when the simulated value is 0 but
    the prediction is not, 1.0 when both are 0. *)
val seconds_ratio : row -> float

val memory_ratio : row -> float

(** The documented error envelope: per-cell ratio bounds plus a bound on
    the median relative memory error across all cells.  The constants
    live in one place so EXPERIMENTS.md, the tests and the CI gate
    cannot drift apart. *)
type envelope = {
  memory_ratio_min : float;
  memory_ratio_max : float;
  seconds_ratio_min : float;
  seconds_ratio_max : float;
  median_memory_rel_err_max : float;
}

(** Bounds with headroom over the measured worst cases (see
    EXPERIMENTS.md for the measured table and the divergence classes:
    associativity conflicts, cross-phase reuse, runtime-computed loop
    structure). *)
val documented_envelope : envelope

(** The Origin2000 variant with a 256 KB L2 used by the figure drivers
    (laptop-scale arrays stay well beyond L2). *)
val origin_scaled : Bw_machine.Machine.t

(** The default validation machines: Origin2000, Exemplar, and
    {!origin_scaled} — three distinct geometries (two-level 2-way,
    single-level direct-mapped, and a capacity-starved two-level). *)
val default_machines : Bw_machine.Machine.t list

(** [measure_program ?machines ~name p] compares the analytic tier
    against the exact simulator for one program: [p] is captured once
    and the capture replayed on every machine; one row per machine. *)
val measure_program :
  ?machines:Bw_machine.Machine.t list ->
  name:string ->
  Bw_ir.Ast.program ->
  row list

(** [measure ?scale ?machines ()] is {!measure_program} over every
    registry workload built at [scale] (default 1).  Rows are ordered
    workload-major in registry order. *)
val measure :
  ?scale:int -> ?machines:Bw_machine.Machine.t list -> unit -> row list

(** Median of |pred - sim| / sim over the rows' memory traffic. *)
val median_memory_rel_err : row list -> float

(** [check ?envelope rows] returns the violations — one human-readable
    line per out-of-envelope cell, plus one for the median bound if
    exceeded.  Empty means the envelope holds. *)
val check : ?envelope:envelope -> row list -> string list

(** Predicted-vs-simulated table with per-cell relative error. *)
val table : row list -> Table.t
