(** Drivers that regenerate every table and figure in the paper's
    evaluation, as {!Table.t} values the benchmark harness prints.

    Absolute numbers come from the simulator, so they are not the paper's
    wall-clock values; each table's notes record what shape the paper
    reports so the two can be compared (EXPERIMENTS.md does this
    systematically).

    [scale] selects problem sizes: 1 is quick (CI-sized), 2 is the
    default used for the recorded results. *)

(** The machine used to measure the Figure 1/2 program balances: the
    Origin2000's compute rate and bandwidths with proportionally scaled
    cache capacities, so that laptop-sized problems sit in the same
    "arrays much larger than cache" regime as the paper's runs. *)
val origin_scaled : Bw_machine.Machine.t

(** E1, Section 2.1: write loop vs read loop on both machine models. *)
val simple_example : ?scale:int -> unit -> Table.t

(** E2, Figure 1: program and machine balance. *)
val fig1 : ?scale:int -> unit -> Table.t

(** E3, Figure 2: ratios of bandwidth demand to supply. *)
val fig2 : ?scale:int -> unit -> Table.t

(** E4, Figure 3: effective memory bandwidth of the 13 stride-1 kernels
    on the Origin2000 and Exemplar models. *)
val fig3 : ?scale:int -> unit -> Table.t

(** E5, Figure 4: fusion objectives compared on the six-loop instance
    (no fusion / edge-weighted / bandwidth-minimal), both as graph costs
    and as simulated memory traffic of the fused programs. *)
val fig4 : ?scale:int -> unit -> Table.t

(** E6, Figure 5: behaviour of the hyper-graph min-cut algorithm —
    optimality against brute force on small random instances and runtime
    scaling on larger ones. *)
val fig5 : ?scale:int -> unit -> Table.t

(** E7, Figure 6: storage and traffic before/after shrinking & peeling. *)
val fig6 : ?scale:int -> unit -> Table.t

(** E8, Figures 7-8: store elimination timings on both machines. *)
val fig8 : ?scale:int -> unit -> Table.t

(** E9, Section 2.3: per-subroutine memory-bandwidth utilisation of the
    SP-like application. *)
val sp_utilisation : ?scale:int -> unit -> Table.t

(** Ablation: fusion objective quality over a random program suite. *)
val ablation_fusion : ?scale:int -> unit -> Table.t

(** Ablation: pipeline stages toggled on the Figure 6/7 programs. *)
val ablation_pipeline : ?scale:int -> unit -> Table.t

(** Ablation: sensitivity of memory balance to cache capacity. *)
val ablation_cache : ?scale:int -> unit -> Table.t

(** Fusion search: greedy sequential min-cut vs the annealed k-way
    engine (and the exact DP where affordable) on the seeded DAG
    family, priced by the analytic predictor ({!Bw_fusion.Search}). *)
val fuse_search : ?scale:int -> unit -> Table.t

(** Analytic predictor vs exact simulator over the registry on the
    {!Accuracy.default_machines} (see {!Accuracy} for the envelope). *)
val predict : ?scale:int -> unit -> Table.t

(** All experiments, keyed by the ids used in DESIGN.md. *)
val all : (string * (?scale:int -> unit -> Table.t)) list
