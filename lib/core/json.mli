(** A minimal, dependency-free JSON representation.

    Grown out of the benchmark harness's machine-readable output and now
    shared by every JSON producer/consumer in the repository: the bench
    harness ([Bw_core.Bench_json] re-exports this module), the Chrome
    trace export, and the [bwc serve] wire protocol
    ({!Bw_serve.Protocol}).

    Deliberately tiny: objects, arrays, strings, numbers, booleans and
    null.  The parser accepts exactly what {!to_string} emits (standard
    JSON with the common escapes), and the emitter is deterministic —
    the same value always serialises to the same bytes, a property the
    serve result cache's byte-identical-hit guarantee relies on. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

exception Parse_error of string

(** Parse a complete JSON document; raises {!Parse_error} on malformed
    input or trailing garbage. *)
val parse : string -> t

(** Accessors returning [None] on shape mismatch. *)
val member : string -> t -> t option

val to_list : t -> t list option
val to_float : t -> float option (* accepts Int too *)
val to_str : t -> string option

(** More accessors for the wire protocol; same [None]-on-mismatch
    contract. *)

val to_int : t -> int option (* Int only; floats are not truncated *)
val to_bool : t -> bool option
