(** Multicore experiment driver.

    Generating every table in {!Experiments.all} is embarrassingly
    parallel — each table builds its own programs, machines and caches
    and shares nothing mutable — so the harness fans the table thunks
    out across OCaml 5 domains.  Results come back in the order the
    experiments were given, regardless of which domain finished first,
    so the rendered report is byte-identical to a serial run.

    The harness is crash-tolerant: a table thunk that raises yields an
    [Error] outcome for that table only (sibling tables render
    normally, in both serial and parallel runs), and a worker domain
    that dies outright leaves its claimed-but-unfinished index to be
    retried — up to 2 times — on a surviving domain after the joins.
    Retries and per-table failures are counted in the
    [harness.retries] / [harness.table_errors] metrics. *)

type status =
  | Ok
  | Error of string  (** first line of the exception that killed the table *)

type outcome = {
  id : string;  (** stable experiment id, e.g. ["fig3"] *)
  title : string;  (** the rendered table's title line; [""] on error *)
  body : string;  (** the fully rendered table text; [""] on error *)
  seconds : float;  (** wall-clock seconds to generate this table *)
  status : status;
}

val ok : outcome -> bool
val all_ok : outcome list -> bool

(** [run ?jobs ?scale experiments] renders each [(id, table_fn)] pair,
    fanning out over [jobs] domains (default:
    [Domain.recommended_domain_count ()], capped at the number of
    experiments).  [jobs <= 1] runs everything inline on the calling
    domain.  The result list preserves the input order and always has
    one outcome per experiment — failures are reported in the outcome's
    [status], never raised. *)
val run :
  ?jobs:int ->
  ?scale:int ->
  (string * (?scale:int -> unit -> Table.t)) list ->
  outcome list

(** The default worker count [run] uses when [?jobs] is omitted. *)
val default_jobs : unit -> int

(** Forces this module's fault-injection sites ([harness.table.<id>],
    [harness.worker]) to be registered, for [bwc faults]. *)
val declare_fault_sites : unit -> unit

(** [json_of_results ~scale ~jobs ~micro outcomes] builds the
    [BENCH_results.json] document (schema version 4): run parameters;
    each table's id, title, full rendered body, wall-clock seconds, a
    [status] field (["ok"] or ["error"]) and — for failed tables — an
    [error] message; and micro-benchmark estimates as
    [(name, ns_per_run)] pairs (empty when the micro suite was not
    run).  [?serve] embeds the service load-bench statistics under a
    ["serve"] key (omitted when the serve bench was not run).
    [?trace] embeds the harness's collected spans under a ["trace"]
    key as a Chrome trace document (omitted when absent or empty), so
    one artifact carries both the numbers and the timeline that
    produced them. *)
val json_of_results :
  ?trace:Bw_obs.Trace.span list ->
  ?serve:Bench_json.t ->
  scale:int ->
  jobs:int ->
  micro:(string * float) list ->
  outcome list ->
  Bench_json.t
