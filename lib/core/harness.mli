(** Multicore experiment driver.

    Generating every table in {!Experiments.all} is embarrassingly
    parallel — each table builds its own programs, machines and caches
    and shares nothing mutable — so the harness fans the table thunks
    out across OCaml 5 domains.  Results come back in the order the
    experiments were given, regardless of which domain finished first,
    so the rendered report is byte-identical to a serial run. *)

type outcome = {
  id : string;  (** stable experiment id, e.g. ["fig3"] *)
  title : string;  (** the rendered table's title line *)
  body : string;  (** the fully rendered table text *)
  seconds : float;  (** wall-clock seconds to generate this table *)
}

(** [run ?jobs ?scale experiments] renders each [(id, table_fn)] pair,
    fanning out over [jobs] domains (default:
    [Domain.recommended_domain_count ()], capped at the number of
    experiments).  [jobs <= 1] runs everything inline on the calling
    domain.  The result list preserves the input order. *)
val run :
  ?jobs:int ->
  ?scale:int ->
  (string * (?scale:int -> unit -> Table.t)) list ->
  outcome list

(** The default worker count [run] uses when [?jobs] is omitted. *)
val default_jobs : unit -> int

(** [json_of_results ~scale ~jobs ~micro outcomes] builds the
    [BENCH_results.json] document (schema version 2): run parameters,
    each table's id, title, full rendered body and wall-clock seconds,
    and micro-benchmark estimates as [(name, ns_per_run)] pairs (empty
    when the micro suite was not run).  [?trace] embeds the harness's
    collected spans under a ["trace"] key as a Chrome trace document
    (omitted when absent or empty), so one artifact carries both the
    numbers and the timeline that produced them. *)
val json_of_results :
  ?trace:Bw_obs.Trace.span list ->
  scale:int ->
  jobs:int ->
  micro:(string * float) list ->
  outcome list ->
  Bench_json.t
