type row = {
  workload : string;
  machine : string;
  pred_seconds : float;
  sim_seconds : float;
  pred_memory_bytes : float;
  sim_memory_bytes : float;
}

let ratio pred sim =
  if sim = 0.0 then if pred = 0.0 then 1.0 else infinity else pred /. sim

let seconds_ratio r = ratio r.pred_seconds r.sim_seconds
let memory_ratio r = ratio r.pred_memory_bytes r.sim_memory_bytes

type envelope = {
  memory_ratio_min : float;
  memory_ratio_max : float;
  seconds_ratio_min : float;
  seconds_ratio_max : float;
  median_memory_rel_err_max : float;
}

(* Measured worst cases across the registry at scales 1-2 on the three
   default machines: memory ratio 0.70 (mm under a 2-way 256 KB L2,
   conflict misses) to 3.20 (NAS/SP cross-phase reuse the per-nest model
   cannot see); seconds ratio 0.25 (FFT's runtime-computed loop
   structure) to 2.84.  The bounds below add ~40% headroom so workload
   tweaks do not trip CI, while still catching a broken model (an order
   of magnitude off).  The median bound is the sharper claim: most cells
   are within a few percent. *)
let documented_envelope =
  { memory_ratio_min = 0.45;
    memory_ratio_max = 4.5;
    seconds_ratio_min = 0.18;
    seconds_ratio_max = 4.0;
    median_memory_rel_err_max = 0.15 }

let origin_scaled =
  let open Bw_machine in
  { Machine.origin2000 with
    Machine.name = "Origin2000 (scaled caches)";
    (* L1 keeps its real 32 KB (stream working sets are small); only the
       4 MB L2 shrinks, keeping laptop-sized arrays >> L2 *)
    caches =
      [ { Cache.size_bytes = 32 * 1024; line_bytes = 32; associativity = 2 };
        { Cache.size_bytes = 256 * 1024; line_bytes = 128; associativity = 2 } ] }

let default_machines =
  [ Bw_machine.Machine.origin2000; Bw_machine.Machine.exemplar; origin_scaled ]

let measure_program ?(machines = default_machines) ~name p =
  let c = Bw_exec.Run.capture p in
  let results = Bw_exec.Run.replay_many ~machines c in
  List.map2
    (fun machine (r : Bw_exec.Run.result) ->
      let pred =
        Bw_exec.Evaluate.of_program ~budget:Bw_exec.Evaluate.Microseconds
          ~machine p
      in
      { workload = name;
        machine = machine.Bw_machine.Machine.name;
        pred_seconds = pred.Bw_exec.Evaluate.seconds;
        sim_seconds = Bw_exec.Run.seconds r;
        pred_memory_bytes = Bw_exec.Evaluate.memory_bytes pred;
        sim_memory_bytes =
          float_of_int (Bw_machine.Timing.memory_bytes r.Bw_exec.Run.cache) })
    machines results

let measure ?(scale = 1) ?(machines = default_machines) () =
  List.concat_map
    (fun (e : Bw_workloads.Registry.entry) ->
      measure_program ~machines ~name:e.Bw_workloads.Registry.name
        (e.Bw_workloads.Registry.build ~scale))
    Bw_workloads.Registry.all

let median_memory_rel_err rows =
  let errs =
    List.filter_map
      (fun r ->
        if r.sim_memory_bytes = 0.0 then None
        else
          Some
            (Float.abs (r.pred_memory_bytes -. r.sim_memory_bytes)
            /. r.sim_memory_bytes))
      rows
    |> List.sort compare
  in
  match errs with
  | [] -> 0.0
  | _ ->
    let n = List.length errs in
    let nth k = List.nth errs k in
    if n mod 2 = 1 then nth (n / 2)
    else (nth ((n / 2) - 1) +. nth (n / 2)) /. 2.0

let check ?(envelope = documented_envelope) rows =
  let cell_violations =
    List.concat_map
      (fun r ->
        let where = Printf.sprintf "%s on %s" r.workload r.machine in
        let out what v lo hi =
          if v < lo || v > hi then
            [ Printf.sprintf "%s: %s ratio %.2f outside [%.2f, %.2f]" where
                what v lo hi ]
          else []
        in
        out "memory" (memory_ratio r) envelope.memory_ratio_min
          envelope.memory_ratio_max
        @ out "seconds" (seconds_ratio r) envelope.seconds_ratio_min
            envelope.seconds_ratio_max)
      rows
  in
  let med = median_memory_rel_err rows in
  if med > envelope.median_memory_rel_err_max then
    cell_violations
    @ [ Printf.sprintf "median memory relative error %.3f exceeds %.3f" med
          envelope.median_memory_rel_err_max ]
  else cell_violations

let table rows =
  let cells =
    List.map
      (fun r ->
        [ r.workload;
          r.machine;
          Table.ms r.pred_seconds;
          Table.ms r.sim_seconds;
          Table.pct (seconds_ratio r -. 1.0);
          Table.f2 (r.pred_memory_bytes /. 1e6);
          Table.f2 (r.sim_memory_bytes /. 1e6);
          Table.pct (memory_ratio r -. 1.0) ])
      rows
  in
  Table.make ~title:"Analytic predictor vs exact simulator"
    ~header:
      [ "workload"; "machine"; "pred time"; "sim time"; "err";
        "pred mem (MB)"; "sim mem (MB)"; "err" ]
    ~notes:
      [ Printf.sprintf "median memory relative error: %.1f%%"
          (100.0 *. median_memory_rel_err rows);
        "prediction is closed-form (no execution); simulator is the \
         exact per-reference cache model";
        "divergence classes: associativity conflicts, cross-phase \
         reuse, runtime-computed loop structure (see EXPERIMENTS.md)" ]
    cells
