type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------- emit ---------- *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_string v =
  let buf = Buffer.create 256 in
  let rec emit = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s ->
      Buffer.add_char buf '"';
      escape_into buf s;
      Buffer.add_char buf '"'
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape_into buf k;
          Buffer.add_string buf "\":";
          emit item)
        fields;
      Buffer.add_char buf '}'
  in
  emit v;
  Buffer.contents buf

(* ---------- parse (recursive descent) ---------- *)

exception Parse_error of string

let fail msg = raise (Parse_error msg)

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail (Printf.sprintf "expected '%c', found '%c' at %d" ch x c.pos)
  | None -> fail (Printf.sprintf "expected '%c', found end of input" ch)

let parse_literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail (Printf.sprintf "bad literal at %d" c.pos)

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail "unterminated string"
    | Some '"' ->
      advance c;
      Buffer.contents buf
    | Some '\\' -> (
      advance c;
      match peek c with
      | Some '"' -> advance c; Buffer.add_char buf '"'; go ()
      | Some '\\' -> advance c; Buffer.add_char buf '\\'; go ()
      | Some '/' -> advance c; Buffer.add_char buf '/'; go ()
      | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
      | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
      | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
      | Some 'b' -> advance c; Buffer.add_char buf '\b'; go ()
      | Some 'f' -> advance c; Buffer.add_char buf '\012'; go ()
      | Some 'u' ->
        advance c;
        if c.pos + 4 > String.length c.s then fail "truncated \\u escape";
        let hex = String.sub c.s c.pos 4 in
        let code =
          try int_of_string ("0x" ^ hex)
          with _ -> fail (Printf.sprintf "bad \\u escape at %d" c.pos)
        in
        c.pos <- c.pos + 4;
        (* The emitter only produces \u for control characters; decode
           the BMP subset as UTF-8 so round-trips are lossless. *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end;
        go ()
      | _ -> fail (Printf.sprintf "bad escape at %d" c.pos))
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek c with
    | Some ch when is_num_char ch ->
      advance c;
      go ()
    | _ -> ()
  in
  go ();
  let text = String.sub c.s start (c.pos - start) in
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail (Printf.sprintf "bad number %S at %d" text start))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input"
  | Some 'n' -> parse_literal c "null" Null
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some '"' -> String (parse_string_body c)
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let items = ref [ parse_value c ] in
      let rec go () =
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items := parse_value c :: !items;
          go ()
        | Some ']' -> advance c
        | _ -> fail (Printf.sprintf "expected ',' or ']' at %d" c.pos)
      in
      go ();
      List (List.rev !items)
    end
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let field () =
        skip_ws c;
        let k = parse_string_body c in
        skip_ws c;
        expect c ':';
        (k, parse_value c)
      in
      let fields = ref [ field () ] in
      let rec go () =
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields := field () :: !fields;
          go ()
        | Some '}' -> advance c
        | _ -> fail (Printf.sprintf "expected ',' or '}' at %d" c.pos)
      in
      go ();
      Obj (List.rev !fields)
    end
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail (Printf.sprintf "unexpected '%c' at %d" ch c.pos)

let parse s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then
    fail (Printf.sprintf "trailing garbage at %d" c.pos);
  v

(* ---------- accessors ---------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List items -> Some items | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function String s -> Some s | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
