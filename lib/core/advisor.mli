(** Bandwidth-based performance tuning (the user-facing side of the
    compiler strategy: the paper's §4 notes the full strategy "supports
    user tuning ... with bandwidth-based performance tuning and
    prediction").

    The advisor diagnoses a program on a machine model — which resource
    binds, how far demand exceeds supply — then tries each transformation
    the library implements, re-simulates, and reports the ones that
    actually reduce memory traffic, ranked by measured saving. *)

type suggestion = {
  action : string;  (** human-readable, e.g. "fuse loops 0 and 1" *)
  traffic_before : int;  (** bytes *)
  traffic_after : int;
  time_speedup : float;  (** predicted time before / after *)
  apply : Bw_ir.Ast.program;  (** the transformed program *)
}

type report = {
  program_name : string;
  machine_name : string;
  binding_resource : string;
  memory_demand_ratio : float;  (** worst demand/supply ratio *)
  analytic : Bw_exec.Evaluate.t;
      (** the analytic tier's prediction for the input program — what a
          pure triage pass (no execution) would have reported; its
          fidelity tag is always [Analytic] *)
  suggestions : suggestion list;  (** best first; empty if nothing helps *)
}

(** [diagnose ~machine p] — each candidate transformation is validated by
    re-running the interpreter (suggestions never change observable
    behaviour). *)
val diagnose : machine:Bw_machine.Machine.t -> Bw_ir.Ast.program -> report

val pp_report : Format.formatter -> report -> unit
