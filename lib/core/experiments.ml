open Bw_machine

let origin_scaled = Accuracy.origin_scaled

let pick scale a b = if scale <= 1 then a else b

(* Multi-machine tables run each program once: capture the trace, then
   replay it (in parallel, across domains) against every machine — the
   results are bit-identical to per-machine Run.simulate calls (enforced
   by the test suite), only the engine re-execution is saved. *)
let seconds_on machines p =
  List.map Bw_exec.Run.seconds (Bw_exec.Run.simulate_many ~machines p)

(* --- E1 ------------------------------------------------------------------ *)

let simple_example ?(scale = 2) () =
  let n = pick scale 100_000 2_000_000 in
  let machines = [ Machine.origin2000; Machine.exemplar ] in
  let write = Bw_workloads.Simple_example.write_loop ~n in
  let read = Bw_workloads.Simple_example.read_loop ~n in
  let rows =
    List.map2
      (fun machine (tw, tr) ->
        [ machine.Machine.name; Table.ms tw; Table.ms tr;
          Table.f2 (tw /. tr) ])
      machines
      (List.combine (seconds_on machines write) (seconds_on machines read))
  in
  Table.make ~title:"E1 (Section 2.1): write loop vs read loop"
    ~header:[ "machine"; "a[i]=a[i]+0.4"; "sum+=a[i]"; "ratio" ]
    ~notes:
      [ "paper: Origin2000 0.104s vs 0.054s (1.93x); Exemplar 0.055s vs 0.036s (1.53x)";
        "the writing loop moves twice the memory traffic, so a bandwidth-bound machine runs it ~2x slower" ]
    rows

(* --- Figure 1 workloads ----------------------------------------------------- *)

(* Sizes keep every array well beyond the scaled 256 KB L2 at scale 2. *)
let fig1_workloads scale =
  [ ("convolution",
     Bw_workloads.Kernels.convolution ~n:(pick scale 60_000 400_000) ~taps:3);
    ("dmxpy", Bw_workloads.Kernels.dmxpy ~n:(pick scale 256 768));
    ("mm (-O2, jki)",
     Bw_workloads.Kernels.mm ~order:Bw_workloads.Kernels.Jki
       ~n:(pick scale 128 256) ());
    ("mm (-O3, blocked)",
     Bw_workloads.Kernels.mm_blocked ~n:(pick scale 128 256)
       ~tile:(pick scale 32 48));
    ("FFT", Bw_workloads.Fft.fft ~log2n:(pick scale 13 15));
    ("NAS/SP", Bw_workloads.Nas_sp.full ~n:(pick scale 16 36));
    ("Sweep3D", Bw_workloads.Sweep3d.sweep ~n:(pick scale 16 36) ~octants:2) ]

let fig1 ?(scale = 2) () =
  let machine = origin_scaled in
  let program_rows =
    List.map
      (fun (name, p) ->
        let b = Balance.of_program ~machine p in
        name :: List.map (fun (_, v) -> Table.f2 v) b.Balance.per_boundary)
      (fig1_workloads scale)
  in
  let machine_row =
    let b = Balance.of_machine Machine.origin2000 in
    "Origin2000 (supply)"
    :: List.map (fun (_, v) -> Table.f2 v) b.Balance.per_boundary
  in
  Table.make ~title:"Figure 1: program and machine balance (bytes per flop)"
    ~header:[ "program/machine"; "L1-Reg"; "L2-L1"; "Mem-L2" ]
    ~notes:
      [ "paper: conv 6.4/5.1/5.2, dmxpy 8.3/8.3/8.4, mm -O2 24.0/8.2/5.9, mm -O3 8.08/0.97/0.04, FFT 8.3/3.0/2.7, SP 10.8/6.4/4.9, Sweep3D 15.0/9.1/7.8; machine 4/4/0.8";
        "program balance measured on the Origin2000 model with proportionally scaled caches (laptop-sized arrays remain >> cache)" ]
    (program_rows @ [ machine_row ])

let fig2 ?(scale = 2) () =
  let machine = origin_scaled in
  let rows =
    List.filter_map
      (fun (name, p) ->
        if name = "mm (-O3, blocked)" then None
        else begin
          let b = Balance.of_program ~machine p in
          let ratios = Balance.ratios b Machine.origin2000 in
          Some (name :: List.map (fun (_, v) -> Table.f1 v) ratios)
        end)
      (fig1_workloads scale)
  in
  Table.make ~title:"Figure 2: ratios of bandwidth demand to supply"
    ~header:[ "application"; "L1-Reg"; "L2-L1"; "Mem-L2" ]
    ~notes:
      [ "paper: memory ratios 6.5 / 10.5 / 7.4 / 3.4 / 6.1 / 9.8 (conv, dmxpy, mm -O2, FFT, SP, Sweep3D)";
        "the last column bounds CPU utilisation: a ratio r caps utilisation at 1/r" ]
    rows

(* --- Figure 3 ------------------------------------------------------------------ *)

let fig3 ?(scale = 2) () =
  (* 51917 doubles: successive packed arrays then sit 419432 bytes apart,
     and 5 * 419432 = 2 MB + 8, so arrays 1 and 6 share their cache line
     index in the Exemplar's 1 MB direct-mapped cache -- only the
     six-array kernel thrashes, exactly the paper's outlier *)
  let n = 51_917 in
  ignore scale;
  let machines = [ Machine.origin2000; Machine.exemplar ] in
  let rows =
    List.map
      (fun (name, (w, r)) ->
        let p = Bw_workloads.Stride_kernels.kernel ~writes:w ~reads:r ~n in
        name
        :: List.map
             (fun res -> Table.mb_s (Bw_exec.Run.nominal_bandwidth res))
             (Bw_exec.Run.simulate_many ~machines p))
      Bw_workloads.Stride_kernels.all
  in
  Table.make
    ~title:"Figure 3: effective memory bandwidth of stride-1 kernels"
    ~header:[ "kernel"; "Origin2000"; "Exemplar" ]
    ~notes:
      [ "paper: all kernels within ~20% on Origin2000 (~300 MB/s); Exemplar 417-551 MB/s except 3w6r (conflict misses on the direct-mapped cache)";
        "bandwidth is nominal bytes / time, as measured without hardware counters; on the virtually-indexed direct-mapped Exemplar cache, arrays 1 and 6 of the packed layout share a line index, so only 3w6r thrashes" ]
    rows

(* --- Figure 4 ------------------------------------------------------------------- *)

let fig4 ?(scale = 2) () =
  let n = pick scale 20_000 200_000 in
  let p = Bw_workloads.Fig4.program ~n in
  let g = Bw_fusion.Fusion_graph.build p in
  let machine = origin_scaled in
  let traffic plan =
    match Bw_transform.Fuse.apply_plan p plan with
    | Error e -> invalid_arg e
    | Ok p' ->
      let r = Bw_exec.Run.simulate ~machine p' in
      Bw_machine.Timing.memory_bytes r.Bw_exec.Run.cache
  in
  let unfused = Bw_fusion.Cost.unfused g in
  let bw_min = Bw_fusion.Bandwidth_minimal.exhaustive g in
  let ew = Bw_fusion.Edge_weighted.exhaustive g in
  let row name plan =
    [ name;
      string_of_int (Bw_fusion.Cost.bandwidth_cost g plan);
      string_of_int (Bw_fusion.Cost.edge_weight_cost g plan);
      string_of_int (List.length plan);
      Printf.sprintf "%.1f MB" (float_of_int (traffic plan) /. 1e6) ]
  in
  Table.make ~title:"Figure 4: fusion objectives on the six-loop instance"
    ~header:
      [ "strategy"; "arrays loaded"; "cross weight"; "partitions"; "simulated traffic" ]
    ~notes:
      [ "paper: no fusion loads 20 arrays; bandwidth-minimal fusion 7; the edge-weighted optimum (cross weight 2) loads 8";
        "simulated traffic confirms the graph objective orders the real memory traffic the same way" ]
    [ row "no fusion" unfused;
      row "edge-weighted optimum" ew;
      row "bandwidth-minimal (min-cut)" bw_min ]

(* --- Figure 5 ------------------------------------------------------------------- *)

let brute_force_cut h ~s ~t =
  let m = Bw_graph.Hypergraph.edge_count h in
  let rec subsets k from =
    if k = 0 then [ [] ]
    else if from >= m then []
    else
      List.map (fun rest -> from :: rest) (subsets (k - 1) (from + 1))
      @ subsets k (from + 1)
  in
  let disconnects removed =
    not (Bw_graph.Hypergraph.connected_without h ~removed s).(t)
  in
  let rec go k =
    if k > m then m
    else if List.exists disconnects (subsets k 0) then k
    else go (k + 1)
  in
  go 0

let fig5 ?(scale = 2) () =
  (* quality on small instances *)
  let quality_checks = pick scale 10 25 in
  let optimal = ref 0 in
  for seed = 1 to quality_checks do
    let h = Bw_graph.Graph_gen.hypergraph ~seed ~nodes:7 ~edges:7 ~max_arity:4 in
    let r = Bw_graph.Hyper_cut.min_cut h ~s:0 ~t:6 in
    if r.Bw_graph.Hyper_cut.value = brute_force_cut h ~s:0 ~t:6 then
      incr optimal
  done;
  (* runtime scaling *)
  let scaling =
    List.map
      (fun nodes ->
        let edges = 2 * nodes in
        let h =
          Bw_graph.Graph_gen.hypergraph ~seed:nodes ~nodes ~edges ~max_arity:5
        in
        (* Wall clock, not [Sys.time]: under the multicore harness
           [Sys.time] sums CPU across all domains and would overstate
           the per-instance cost. *)
        let t0 = Unix.gettimeofday () in
        let r = Bw_graph.Hyper_cut.min_cut h ~s:0 ~t:(nodes - 1) in
        let dt = Unix.gettimeofday () -. t0 in
        [ string_of_int nodes;
          string_of_int edges;
          string_of_int r.Bw_graph.Hyper_cut.value;
          Printf.sprintf "%.1f ms" (dt *. 1e3) ])
      (pick scale [ 20; 40 ] [ 20; 40; 80; 160; 320 ])
  in
  Table.make
    ~title:"Figure 5: hyper-graph min-cut — optimality and scaling"
    ~header:[ "loops"; "arrays"; "cut value"; "time" ]
    ~notes:
      [ Printf.sprintf
          "optimal on %d/%d random 7-node instances (exhaustive oracle)"
          !optimal quality_checks;
        "complexity O(E^3 + V): cubic in arrays, linear in loops (Section 3.1.2)" ]
    scaling

(* --- Figure 6 -------------------------------------------------------------------- *)

let fig6 ?(scale = 2) () =
  let n = pick scale 128 512 in
  let machine = origin_scaled in
  let stats name p =
    let r = Bw_exec.Run.simulate ~machine p in
    [ name;
      Printf.sprintf "%d" (Bw_transform.Shrink.storage_bytes p);
      Printf.sprintf "%.2f MB"
        (float_of_int (Bw_machine.Timing.memory_bytes r.Bw_exec.Run.cache) /. 1e6) ]
  in
  let original = Bw_workloads.Fig6.original ~n in
  let fused = Bw_workloads.Fig6.fused ~n in
  let contracted, _ = Bw_transform.Contract.contract_arrays fused in
  let shrunk =
    match Bw_transform.Shrink.apply contracted "a" with
    | Ok (p, _) -> p
    | Error e -> invalid_arg e
  in
  Table.make
    ~title:"Figure 6: array shrinking and peeling (storage and traffic)"
    ~header:[ "version"; "data bytes"; "memory traffic" ]
    ~notes:
      [ Printf.sprintf
          "paper: two N x N arrays (N=%d) reduce to O(N): a rolling N x 2 buffer, one peeled column, and a scalar"
          n;
        "the transformed program is bit-identical in observable behaviour (test suite checks)" ]
    [ stats "original (a)" original;
      stats "fused (b)" fused;
      stats "contract b -> scalar" contracted;
      stats "shrink + peel a (c)" shrunk ]

(* --- Figure 8 -------------------------------------------------------------------- *)

let fig8 ?(scale = 2) () =
  (* res must exceed every cache (2 MB / 16 MB at the two scales) *)
  let n = pick scale 300_000 2_000_000 in
  let original = Bw_workloads.Fig7.original ~n in
  let fused =
    match Bw_transform.Fuse.fuse_at original 1 with
    | Ok p -> p
    | Error e -> invalid_arg e
  in
  let eliminated, _ = Bw_transform.Store_elim.run fused in
  let machines = [ Machine.origin2000; Machine.exemplar ] in
  (* Three captures (one per program version), each replayed on both
     machines, instead of six engine executions. *)
  let t0s = seconds_on machines original in
  let t1s = seconds_on machines fused in
  let t2s = seconds_on machines eliminated in
  let rows =
    List.map2
      (fun machine ((t0, t1), t2) ->
        [ machine.Machine.name; Table.ms t0; Table.ms t1; Table.ms t2;
          Table.f2 (t0 /. t2) ])
      machines
      (List.combine (List.combine t0s t1s) t2s)
  in
  Table.make ~title:"Figure 8: effect of store elimination"
    ~header:[ "machine"; "original"; "fusion only"; "store elimination"; "speedup" ]
    ~notes:
      [ "paper: Origin2000 0.32 / 0.22 / 0.16 s (2.0x); Exemplar 0.24 / 0.21 / 0.14 s (1.7x)";
        "fusion removes one read pass over res; store elimination removes its write-back" ]
    rows

(* --- SP utilisation ----------------------------------------------------------------- *)

let sp_utilisation ?(scale = 2) () =
  let n = pick scale 16 36 in
  let machine = origin_scaled in
  let rows =
    List.map
      (fun (name, p) ->
        let r = Bw_exec.Run.simulate ~machine p in
        let u =
          Bw_machine.Timing.memory_utilisation machine r.Bw_exec.Run.cache
            r.Bw_exec.Run.counters
        in
        [ name; Table.pct u;
          r.Bw_exec.Run.breakdown.Bw_machine.Timing.binding_resource ])
      (Bw_workloads.Nas_sp.subroutines ~n)
  in
  Table.make
    ~title:"Section 2.3: NAS/SP memory-bandwidth utilisation by subroutine"
    ~header:[ "subroutine"; "memory BW utilisation"; "bound by" ]
    ~notes:
      [ "paper: 5 of the 7 major SP subroutines sustain >= 84% of the Origin2000's memory bandwidth" ]
    rows

(* --- Ablations ------------------------------------------------------------------------ *)

let ablation_fusion ?(scale = 2) () =
  let trials = pick scale 6 15 in
  let totals = Array.make 4 0 in
  for seed = 1 to trials do
    let p =
      Bw_workloads.Random_programs.generate ~seed ~loops:6 ~arrays:4 ~n:64
    in
    let g = Bw_fusion.Fusion_graph.build p in
    let cost plan = Bw_fusion.Cost.bandwidth_cost g plan in
    totals.(0) <- totals.(0) + cost (Bw_fusion.Cost.unfused g);
    totals.(1) <- totals.(1) + cost (Bw_fusion.Edge_weighted.greedy_merge g);
    totals.(2) <- totals.(2) + cost (Bw_fusion.Bandwidth_minimal.multi_partition g);
    totals.(3) <- totals.(3) + cost (Bw_fusion.Bandwidth_minimal.exhaustive g)
  done;
  let avg i = float_of_int totals.(i) /. float_of_int trials in
  Table.make
    ~title:"Ablation: fusion objective quality (random 6-loop programs)"
    ~header:[ "strategy"; "mean arrays loaded" ]
    ~notes:
      [ Printf.sprintf "%d random programs, 4 arrays each" trials;
        "lower is better; 'exhaustive' is the true optimum of the paper's objective" ]
    [ [ "no fusion"; Table.f2 (avg 0) ];
      [ "edge-weighted greedy"; Table.f2 (avg 1) ];
      [ "bandwidth-minimal (recursive min-cut)"; Table.f2 (avg 2) ];
      [ "exhaustive optimum"; Table.f2 (avg 3) ] ]

let ablation_pipeline ?(scale = 2) () =
  let n = pick scale 300_000 2_000_000 in
  let machine = Machine.origin2000 in
  let p = Bw_workloads.Fig7.original ~n in
  let traffic options =
    let p', _ = Bw_transform.Strategy.run ~options p in
    let r = Bw_exec.Run.simulate ~machine p' in
    float_of_int (Bw_machine.Timing.memory_bytes r.Bw_exec.Run.cache) /. 1e6
  in
  let open Bw_transform.Strategy in
  Table.make
    ~title:"Ablation: pipeline stages on the Figure 7 program"
    ~header:[ "stages"; "memory traffic (MB)" ]
    ~notes:[ "each stage strictly reduces traffic; store elimination needs fusion first" ]
    [ [ "none";
        Table.f2 (traffic { fuse = false; contract = false; shrink = false; store_elim = false }) ];
      [ "fusion"; Table.f2 (traffic fusion_only) ];
      [ "fusion + store elimination"; Table.f2 (traffic all_on) ];
      [ "store elimination alone (no fusion)";
        Table.f2 (traffic { fuse = false; contract = false; shrink = false; store_elim = true }) ] ]

let ablation_cache ?(scale = 2) () =
  let n = pick scale 64 144 in
  let p = Bw_workloads.Kernels.mm ~order:Bw_workloads.Kernels.Jki ~n () in
  let l2_sizes_kb = [ 16; 32; 64; 128; 256; 1024 ] in
  let line_bytes = 128 in
  (* One engine execution covers the whole sweep: the capture is replayed
     against each L2 size for the exact (2-way LRU) simulator columns,
     and a single Reuse pass over the same capture predicts the miss
     count of *every* capacity at once (fully associative LRU: an access
     misses iff its reuse distance >= capacity, plus cold misses). *)
  let c = Bw_exec.Run.capture p in
  let reuse = Bw_exec.Run.reuse_of_capture ~granularity:line_bytes c in
  let machines =
    List.map
      (fun l2_kb ->
        { Machine.origin2000 with
          Machine.name = Printf.sprintf "L2=%dKB" l2_kb;
          caches =
            [ { Cache.size_bytes = 2 * 1024; line_bytes = 32; associativity = 2 };
              { Cache.size_bytes = l2_kb * 1024;
                line_bytes;
                associativity = 2 } ] })
      l2_sizes_kb
  in
  let rows =
    List.map2
      (fun (l2_kb, machine) r ->
        let mem =
          match List.rev (Bw_exec.Run.program_balance r) with
          | (_, v) :: _ -> v
          | [] -> assert false
        in
        let exact = Cache.memory_lines_in r.Bw_exec.Run.cache in
        let predicted =
          Reuse.misses reuse ~capacity_blocks:(l2_kb * 1024 / line_bytes)
        in
        (* Analytic tier: no execution at all — closed-form traffic from
           the IR and this variant's geometry. *)
        let analytic =
          Bw_exec.Evaluate.of_program ~budget:Bw_exec.Evaluate.Microseconds
            ~machine p
        in
        let analytic_lines =
          analytic.Bw_exec.Evaluate.memory_bytes_in
          /. float_of_int line_bytes
        in
        [ Printf.sprintf "%d KB" l2_kb;
          Table.f2 mem;
          string_of_int exact;
          string_of_int predicted;
          Printf.sprintf "%.0f" analytic_lines ])
      (List.combine l2_sizes_kb machines)
      (Bw_exec.Run.replay_many ~machines c)
  in
  Table.make
    ~title:"Ablation: mm (jki) memory traffic vs L2 capacity"
    ~header:
      [ "L2 size"; "Mem-L2 bytes/flop"; "L2 misses (exact)";
        "L2 misses (reuse fast path)"; "L2 misses (analytic)" ]
    ~notes:
      [ "once the working set fits, traffic collapses to compulsory misses — the same effect blocking achieves at fixed cache size";
        "exact column: lines fetched from memory by the 2-way set-associative simulator, one replay per size from a single capture";
        "fast-path column: one reuse-distance pass over the same capture predicts all capacities at once (fully associative LRU model; all sweep capacities are powers of two, so the histogram is bucket-exact)";
        "analytic column: closed-form prediction from the IR alone (Evaluate Microseconds tier) — no execution, microseconds per cell; error envelope in EXPERIMENTS.md" ]
    rows

let extensions ?(scale = 2) () =
  let machine =
    { Machine.origin2000 with
      Machine.name = "origin-small";
      caches =
        [ { Cache.size_bytes = 4096; line_bytes = 32; associativity = 2 };
          { Cache.size_bytes = 32 * 1024; line_bytes = 128; associativity = 2 } ] }
  in
  let particles = pick scale 20_000 60_000 in
  let pairs = pick scale 8_000 24_000 in
  let p =
    Bw_workloads.Irregular.interactions ~particles ~pairs ~sweeps:8
  in
  let spec =
    { Bw_transform.Packing.index_arrays = Bw_workloads.Irregular.index_arrays;
      data_arrays = Bw_workloads.Irregular.data_arrays }
  in
  let traffic q =
    float_of_int
      (Bw_machine.Timing.memory_bytes
         (Bw_exec.Run.simulate ~machine q).Bw_exec.Run.cache)
    /. 1e6
  in
  let grouped =
    match Bw_transform.Packing.group p spec ~by:"idx1" with
    | Ok g -> g
    | Error e -> invalid_arg e
  in
  let packed =
    match Bw_transform.Packing.pack p spec with
    | Ok g -> g
    | Error e -> invalid_arg e
  in
  let both =
    let spec' =
      { spec with
        Bw_transform.Packing.index_arrays =
          List.map (fun a -> "sorted_" ^ a) spec.Bw_transform.Packing.index_arrays }
    in
    match Bw_transform.Packing.pack grouped spec' with
    | Ok g -> g
    | Error e -> invalid_arg e
  in
  Table.make
    ~title:
      "Extension: run-time locality grouping and data packing (irregular kernel)"
    ~header:[ "variant"; "memory traffic (MB)" ]
    ~notes:
      [ "the dynamic-application arm of the strategy (Section 4): counting-sort the interaction list, renumber particles in first-touch order";
        "prologue cost (sort, permutation, copies) is simulated along with the benefit" ]
    [ [ "random interaction list"; Table.f2 (traffic p) ];
      [ "locality grouping (sort by idx1)"; Table.f2 (traffic grouped) ];
      [ "data packing (first-touch renumbering)"; Table.f2 (traffic packed) ];
      [ "grouping + packing"; Table.f2 (traffic both) ] ]

(* The introduction's argument: prefetching and non-blocking caches hide
   latency by consuming bandwidth, so as tolerance improves, execution
   time converges on the bandwidth bound instead of going to zero. *)
let latency_tolerance ?(scale = 2) () =
  let n = pick scale 100_000 500_000 in
  let machine = Machine.origin2000 in
  let p = Bw_workloads.Stride_kernels.kernel ~writes:1 ~reads:1 ~n in
  let r = Bw_exec.Run.simulate ~machine p in
  let bound = r.Bw_exec.Run.breakdown.Bw_machine.Timing.total in
  let miss_latency = 400e-9 (* a 1990s DRAM round trip *) in
  let rows =
    List.map
      (fun overlap ->
        let t =
          Bw_machine.Timing.predict_with_latency machine
            r.Bw_exec.Run.cache r.Bw_exec.Run.counters ~miss_latency ~overlap
        in
        [ Printf.sprintf "%.0f%%" (100.0 *. overlap);
          Table.ms t;
          Table.f2 (t /. bound) ])
      [ 0.0; 0.25; 0.5; 0.75; 0.9; 1.0 ]
  in
  Table.make
    ~title:"Latency tolerance converges on the bandwidth bound (1w1r kernel)"
    ~header:[ "latency hidden"; "predicted time"; "x bandwidth bound" ]
    ~notes:
      [ "the paper's introduction: actual latency is the inverse of consumed bandwidth, so latency cannot be fully tolerated without infinite bandwidth";
        "400 ns exposed per unoverlapped memory line fetch" ]
    rows

(* Padding repairs the Figure 3 outlier: adding one line of inter-array
   padding breaks the 3w6r virtual-index alias on the Exemplar. *)
let ablation_padding ?(scale = 2) () =
  ignore scale;
  let n = 51_917 in
  let kernel = Bw_workloads.Stride_kernels.kernel ~writes:3 ~reads:6 ~n in
  let paddings = [ 0; 32; 64; 128 ] in
  (* One capture serves all four stagger variants: the canonical trace is
     layout-independent, and replay re-bases it onto each machine's
     (differently staggered) array layout. *)
  let machines =
    List.map
      (fun extra ->
        { Machine.exemplar with
          Machine.name = Printf.sprintf "stagger+%dB" extra;
          array_stagger_bytes =
            Machine.exemplar.Machine.array_stagger_bytes + extra })
      paddings
  in
  let rows =
    List.map2
      (fun extra r ->
        [ Printf.sprintf "+%d bytes" extra;
          Table.mb_s (Bw_exec.Run.nominal_bandwidth r) ])
      paddings
      (Bw_exec.Run.simulate_many ~machines kernel)
  in
  Table.make
    ~title:"Ablation: inter-array padding vs the 3w6r conflict outlier (Exemplar)"
    ~header:[ "extra padding"; "3w6r effective bandwidth" ]
    ~notes:
      [ "with the default layout, arrays 1 and 6 share a line index in the 1 MB direct-mapped cache; one extra cache line of padding removes the alias";
        "this is the fix the paper's conflict-miss conjecture implies" ]
    rows

(* --- Fusion search ------------------------------------------------------------ *)

(* Greedy sequential min-cut vs annealed k-way search on the seeded
   operation-DAG family, priced by the analytic predictor; the exact
   set-partition DP certifies optimality where it is affordable. *)
let fuse_search ?(scale = 2) () =
  let machine = origin_scaled in
  let open Bw_fusion.Search in
  let rows =
    List.map
      (fun (name, p) ->
        let cfg engine = { (default_config ~engine ~machine ()) with seed = 1 } in
        let greedy =
          match plan (cfg Greedy) p with
          | Ok (_, st) -> st
          | Error e -> invalid_arg e
        in
        let t0 = Unix.gettimeofday () in
        let anneal =
          match plan (cfg Anneal) p with
          | Ok (_, st) -> st
          | Error e -> invalid_arg e
        in
        let wall_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
        let exact_cell =
          match plan (cfg Exact) p with
          | Ok (_, st) -> Printf.sprintf "%.2f" (st.traffic /. 1e6)
          | Error _ -> "-"
        in
        let win =
          100.0 *. (greedy.traffic -. anneal.traffic) /. greedy.traffic
        in
        [ name;
          string_of_int anneal.nodes;
          Table.f2 (anneal.input_traffic /. 1e6);
          Table.f2 (greedy.traffic /. 1e6);
          Table.f2 (anneal.traffic /. 1e6);
          exact_cell;
          Table.f1 win;
          Printf.sprintf "%.0f ms" wall_ms ])
      (Bw_workloads.Dag_family.instances ~scale)
  in
  Table.make
    ~title:"Fusion search: greedy min-cut vs annealed k-way partitions (DAG family)"
    ~header:
      [ "instance"; "loops"; "unfused MB"; "greedy MB"; "anneal MB";
        "exact MB"; "anneal win %"; "search time" ]
    ~notes:
      [ "predicted memory traffic (analytic tier) on the scaled Origin2000; seed 1 throughout — rerun is bit-identical";
        "greedy = repeated 2-partition min-cut of the heaviest cluster; anneal = seeded restarts over legal k-way partitions; exact = set-partition DP, '-' where past its 12-node cap";
        "reductions sharing a scalar accumulator cannot fuse, so the instances force many partition boundaries whose best placement the greedy pass misses" ]
    rows

(* Predicted-vs-simulated accuracy of the analytic tier over the whole
   registry on the three default validation machines (see Accuracy). *)
let predict ?(scale = 2) () = Accuracy.table (Accuracy.measure ~scale ())

let all =
  [ ("e1", simple_example);
    ("fig1", fig1);
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig8", fig8);
    ("sp", sp_utilisation);
    ("extensions", extensions);
    ("latency", latency_tolerance);
    ("ablation-fusion", ablation_fusion);
    ("ablation-pipeline", ablation_pipeline);
    ("ablation-cache", ablation_cache);
    ("ablation-padding", ablation_padding);
    ("fuse-search", fuse_search);
    ("predict", predict) ]
