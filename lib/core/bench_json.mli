(** Alias of {!Json} kept for the benchmark harness's historical
    callers; new code should use {!Json} directly.  The type equation
    makes the two interchangeable. *)

type t = Json.t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

exception Parse_error of string

val parse : string -> t
val member : string -> t -> t option
val to_list : t -> t list option
val to_float : t -> float option
val to_str : t -> string option
val to_int : t -> int option
val to_bool : t -> bool option
