(** A minimal JSON representation for the benchmark harness's
    machine-readable output ([bench/main.exe --json]).

    Deliberately tiny: the repository has no JSON dependency, and the
    harness only needs objects, arrays, strings, numbers and ints.  The
    parser accepts exactly what {!to_string} emits (standard JSON with
    [true]/[false]/[null], numbers, strings with the common escapes),
    which is all the round-trip tests require. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

exception Parse_error of string

(** Parse a complete JSON document; raises {!Parse_error} on malformed
    input or trailing garbage. *)
val parse : string -> t

(** Accessors returning [None] on shape mismatch. *)
val member : string -> t -> t option

val to_list : t -> t list option
val to_float : t -> float option (* accepts Int too *)
val to_str : t -> string option
