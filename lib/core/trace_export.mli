(** Export of observability data ({!Bw_obs.Trace} spans and
    {!Bw_obs.Metrics} snapshots) as {!Bench_json} documents.

    Spans become the Chrome trace-event format (the ["traceEvents"]
    array of complete events, ["ph": "X"]) understood by
    [chrome://tracing], Perfetto and speedscope: timestamps and
    durations in microseconds, the recording domain as ["tid"], and
    span attributes under ["args"]. *)

val json_of_value : Bw_obs.Trace.value -> Bench_json.t

(** [json_of_spans spans] is a complete Chrome trace document:
    [{"traceEvents": [...], "displayTimeUnit": "ms"}]. *)
val json_of_spans : ?pid:int -> Bw_obs.Trace.span list -> Bench_json.t

(** One JSON object per instrument: [{"metric", "kind", "value"}] (and
    ["count"]/["sum"]/["buckets"] for histograms). *)
val json_of_metrics : Bw_obs.Metrics.snapshot list -> Bench_json.t

(** Pretty tree of the span forest (indented by depth, durations in
    ms), for terminal consumption by [bwc profile]. *)
val pp_span_tree : Format.formatter -> Bw_obs.Trace.span list -> unit

(** Write a document to [path] followed by a newline. *)
val write_file : string -> Bench_json.t -> unit
