let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | src -> Ok src
  | exception Sys_error msg -> Error msg
  | exception End_of_file -> Error (path ^ ": truncated read")

let load_program ~scale name =
  match Bw_workloads.Registry.find name with
  | Some entry -> (
    match entry.Bw_workloads.Registry.build ~scale with
    | p -> Ok p
    | exception e ->
      Error
        (Printf.sprintf "workload '%s' failed to build: %s" name
           (Printexc.to_string e)))
  | None -> (
    (* generated DAG-family instances ("dag<seed>x<loops>") are loadable
       by name without being registry entries, so the registry-wide
       accuracy/lint/simulate sweeps keep their fixed workload set *)
    match Bw_workloads.Dag_family.of_name name with
    | Some build -> (
      match build ~scale with
      | p -> Ok p
      | exception e ->
        Error
          (Printf.sprintf "DAG instance '%s' failed to build: %s" name
             (Printexc.to_string e)))
    | None ->
      if Sys.file_exists name then
      if Sys.is_directory name then
        Error (Printf.sprintf "'%s' is a directory, not a program" name)
      else
        (* the position-tracking front end: every parse diagnostic is
           one line, FILE:LINE:COL: message *)
        Bw_lang.Parse.parse_file name
      else
        Error
          (Printf.sprintf
             "'%s' is neither a built-in workload nor a file (try 'bwc list')"
             name))
