let json_of_value : Bw_obs.Trace.value -> Bench_json.t = function
  | Bw_obs.Trace.Int n -> Bench_json.Int n
  | Bw_obs.Trace.Float f -> Bench_json.Float f
  | Bw_obs.Trace.Str s -> Bench_json.String s
  | Bw_obs.Trace.Bool b -> Bench_json.Bool b

let json_of_span ~pid (s : Bw_obs.Trace.span) =
  Bench_json.Obj
    [ ("name", Bench_json.String s.Bw_obs.Trace.name);
      ("cat", Bench_json.String
          (if s.Bw_obs.Trace.cat = "" then "span" else s.Bw_obs.Trace.cat));
      ("ph", Bench_json.String "X");
      ("ts", Bench_json.Float s.Bw_obs.Trace.start_us);
      ("dur", Bench_json.Float s.Bw_obs.Trace.dur_us);
      ("pid", Bench_json.Int pid);
      ("tid", Bench_json.Int s.Bw_obs.Trace.tid);
      ( "args",
        Bench_json.Obj
          (("depth", Bench_json.Int s.Bw_obs.Trace.depth)
          :: List.map
               (fun (k, v) -> (k, json_of_value v))
               s.Bw_obs.Trace.attrs) ) ]

let json_of_spans ?(pid = 1) spans =
  Bench_json.Obj
    [ ("traceEvents", Bench_json.List (List.map (json_of_span ~pid) spans));
      ("displayTimeUnit", Bench_json.String "ms") ]

let json_of_metrics snaps =
  Bench_json.List
    (List.map
       (fun { Bw_obs.Metrics.metric; data } ->
         let fields =
           match data with
           | Bw_obs.Metrics.Counter_v n ->
             [ ("kind", Bench_json.String "counter");
               ("value", Bench_json.Int n) ]
           | Bw_obs.Metrics.Gauge_v v ->
             [ ("kind", Bench_json.String "gauge");
               ("value", Bench_json.Float v) ]
           | Bw_obs.Metrics.Hist_v h ->
             [ ("kind", Bench_json.String "histogram");
               ("count", Bench_json.Int h.Bw_obs.Metrics.count);
               ("sum", Bench_json.Float h.Bw_obs.Metrics.sum);
               ( "buckets",
                 Bench_json.List
                   (List.map
                      (fun (ub, n) ->
                        Bench_json.Obj
                          [ ("le", Bench_json.Float ub);
                            ("n", Bench_json.Int n) ])
                      h.Bw_obs.Metrics.buckets) ) ]
         in
         Bench_json.Obj (("metric", Bench_json.String metric) :: fields))
       snaps)

let pp_span_tree ppf spans =
  (* group by recording domain, then rely on start order + depth *)
  let tids =
    List.map (fun s -> s.Bw_obs.Trace.tid) spans |> List.sort_uniq compare
  in
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i tid ->
      if i > 0 then Format.fprintf ppf "@,";
      if List.length tids > 1 then Format.fprintf ppf "domain %d:@," tid;
      List.iter
        (fun (s : Bw_obs.Trace.span) ->
          if s.Bw_obs.Trace.tid = tid then begin
            Format.fprintf ppf "%s%-*s %8.3f ms"
              (String.make (2 * s.Bw_obs.Trace.depth) ' ')
              (max 1 (36 - (2 * s.Bw_obs.Trace.depth)))
              s.Bw_obs.Trace.name
              (s.Bw_obs.Trace.dur_us /. 1e3);
            List.iter
              (fun (k, v) ->
                let txt =
                  match v with
                  | Bw_obs.Trace.Int n -> string_of_int n
                  | Bw_obs.Trace.Float f -> Printf.sprintf "%.4g" f
                  | Bw_obs.Trace.Str s -> s
                  | Bw_obs.Trace.Bool b -> string_of_bool b
                in
                Format.fprintf ppf "  %s=%s" k txt)
              s.Bw_obs.Trace.attrs;
            Format.fprintf ppf "@,"
          end)
        spans)
    tids;
  Format.fprintf ppf "@]"

let write_file path doc =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Bench_json.to_string doc);
      output_char oc '\n')
