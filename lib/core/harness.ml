type status = Ok | Error of string

type outcome = {
  id : string;
  title : string;
  body : string;
  seconds : float;
  status : status;
}

let ok o = o.status = Ok
let all_ok outcomes = List.for_all ok outcomes

let default_jobs () = Bw_exec.Pool.default_jobs ()

(* Fault-injection sites: "harness.table.<id>" fires inside one table's
   rendering (confined to that table's outcome); "harness.worker" fires
   in the worker loop between claiming an index and rendering it,
   killing the whole domain — which is exactly the claimed-but-
   unfinished case the post-join retry sweep exists for. *)
let () =
  Bw_obs.Fault.declare
    ~doc:"per-table failure while rendering table <id> (harness.table.fig3 etc.)"
    "harness.table.<id>";
  Bw_obs.Fault.declare
    ~doc:"kill a worker domain after it claims a table index"
    "harness.worker"

let declare_fault_sites () = ()

(* One exception message, first line only — table errors render into
   reports and JSON, and backtraces belong to neither. *)
let error_message e =
  let s = Printexc.to_string e in
  match String.index_opt s '\n' with
  | Some i -> String.sub s 0 i
  | None -> s

(* Render one table; exceptions propagate (callers choose confinement). *)
let render_raw ~scale (id, table_fn) =
  (* Tables report wall-clock columns (fig5 ms, fuse-search search time);
     start each from a compacted heap so a table's timings don't inherit
     the garbage of whichever tables happened to run before it. *)
  Gc.compact ();
  let span =
    Bw_obs.Trace.start ~cat:"table"
      ~attrs:[ ("id", Bw_obs.Trace.Str id) ]
      ("table:" ^ id)
  in
  let t0 = Unix.gettimeofday () in
  match
    Bw_obs.Fault.cut ("harness.table." ^ id);
    table_fn ?scale:(Some scale) ()
  with
  | table ->
    let body = Table.to_string table in
    let seconds = Unix.gettimeofday () -. t0 in
    Bw_obs.Trace.finish
      ~attrs:[ ("seconds", Bw_obs.Trace.Float seconds) ]
      span;
    { id; title = table.Table.title; body; seconds; status = Ok }
  | exception e ->
    let seconds = Unix.gettimeofday () -. t0 in
    Bw_obs.Trace.finish
      ~attrs:
        [ ("seconds", Bw_obs.Trace.Float seconds);
          ("error", Bw_obs.Trace.Str (error_message e)) ]
      span;
    raise e

(* A raising table thunk is that table's problem only: catch everything
   into an [Error] outcome so sibling tables render regardless. *)
let render_protected ~scale ((id, _) as exp) =
  match render_raw ~scale exp with
  | o -> o
  | exception e ->
    Bw_obs.Metrics.incr (Bw_obs.Metrics.counter "harness.table_errors");
    { id;
      title = "";
      body = "";
      seconds = 0.0;
      status = Error (error_message e) }

let run ?jobs ?(scale = 1) experiments =
  let n = List.length experiments in
  let jobs =
    match jobs with Some j -> max 1 j | None -> min (default_jobs ()) n
  in
  if jobs <= 1 || n <= 1 then List.map (render_protected ~scale) experiments
  else begin
    (* Fan out over the shared work-stealing pool (Bw_exec.Pool — the
       same machinery multi-machine trace replay uses): a slow table
       (fig5 dominates) doesn't serialise the rest, and results come
       back in input order. *)
    let inputs = Array.of_list experiments in
    (* A slot a dead domain claimed but never finished: retry on the
       (surviving) calling domain, up to 2 times, before recording an
       error. *)
    let rec retry i attempts =
      Bw_obs.Metrics.incr (Bw_obs.Metrics.counter "harness.retries");
      match render_raw ~scale inputs.(i) with
      | o -> o
      | exception e ->
        if attempts < 2 then retry i (attempts + 1)
        else begin
          Bw_obs.Metrics.incr (Bw_obs.Metrics.counter "harness.table_errors");
          { id = fst inputs.(i);
            title = "";
            body = "";
            seconds = 0.0;
            status = Error (error_message e) }
        end
    in
    Bw_exec.Pool.map ~jobs
      ~on_claim:(fun _ -> Bw_obs.Fault.cut "harness.worker")
      ~retry:(fun i _ -> retry i 1)
      (render_protected ~scale) inputs
    |> Array.to_list
  end

let json_of_results ?trace ?serve ~scale ~jobs ~micro outcomes =
  let base =
    [
      (* v5: the "serve" block gained per-outcome counts
         (ok/degraded/rejected/shed/failed/retried) and an "outcomes"
         object of per-class latency percentiles *)
      ("schema_version", Bench_json.Int 5);
      ("scale", Bench_json.Int scale);
      ("jobs", Bench_json.Int jobs);
      ( "tables",
        Bench_json.List
          (List.map
             (fun o ->
               let fields =
                 [
                   ("id", Bench_json.String o.id);
                   ("title", Bench_json.String o.title);
                   ("body", Bench_json.String o.body);
                   ("seconds", Bench_json.Float o.seconds);
                   ( "status",
                     Bench_json.String
                       (match o.status with Ok -> "ok" | Error _ -> "error") );
                 ]
               in
               let error_field =
                 match o.status with
                 | Ok -> []
                 | Error msg -> [ ("error", Bench_json.String msg) ]
               in
               Bench_json.Obj (fields @ error_field))
             outcomes) );
      ( "micro",
        Bench_json.List
          (List.map
             (fun (name, ns) ->
               Bench_json.Obj
                 [
                   ("name", Bench_json.String name);
                   ("ns_per_run", Bench_json.Float ns);
                 ])
             micro) );
    ]
  in
  let trace_field =
    match trace with
    | None | Some [] -> []
    | Some spans -> [ ("trace", Trace_export.json_of_spans spans) ]
  in
  let serve_field =
    match serve with None -> [] | Some j -> [ ("serve", j) ]
  in
  Bench_json.Obj (base @ serve_field @ trace_field)
