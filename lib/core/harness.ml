type outcome = { id : string; title : string; body : string; seconds : float }

let default_jobs () = Domain.recommended_domain_count ()

let render_one ~scale (id, table_fn) =
  (* one span per table — recorded in the rendering domain's buffer, so
     the merged trace shows which domain ran which table and for how
     long *)
  let span =
    Bw_obs.Trace.start ~cat:"table"
      ~attrs:[ ("id", Bw_obs.Trace.Str id) ]
      ("table:" ^ id)
  in
  let t0 = Unix.gettimeofday () in
  let table = table_fn ?scale:(Some scale) () in
  let body = Table.to_string table in
  let seconds = Unix.gettimeofday () -. t0 in
  Bw_obs.Trace.finish
    ~attrs:[ ("seconds", Bw_obs.Trace.Float seconds) ]
    span;
  { id; title = table.Table.title; body; seconds }

let run ?jobs ?(scale = 1) experiments =
  let n = List.length experiments in
  let jobs =
    match jobs with Some j -> max 1 j | None -> min (default_jobs ()) n
  in
  if jobs <= 1 || n <= 1 then List.map (render_one ~scale) experiments
  else begin
    let inputs = Array.of_list experiments in
    let results = Array.make n None in
    (* Work-stealing by atomic counter: domains grab the next unclaimed
       index, so a slow table (fig5 dominates) doesn't serialise the
       rest.  Each slot is written by exactly one domain, and the joins
       below publish the writes before we read them. *)
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (render_one ~scale inputs.(i));
          go ()
        end
      in
      go ()
    in
    let domains =
      Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join domains;
    Array.to_list results
    |> List.map (function
         | Some r -> r
         | None -> failwith "Harness.run: missing result")
  end

let json_of_results ?trace ~scale ~jobs ~micro outcomes =
  let base =
    [
      ("schema_version", Bench_json.Int 2);
      ("scale", Bench_json.Int scale);
      ("jobs", Bench_json.Int jobs);
      ( "tables",
        Bench_json.List
          (List.map
             (fun o ->
               Bench_json.Obj
                 [
                   ("id", Bench_json.String o.id);
                   ("title", Bench_json.String o.title);
                   ("body", Bench_json.String o.body);
                   ("seconds", Bench_json.Float o.seconds);
                 ])
             outcomes) );
      ( "micro",
        Bench_json.List
          (List.map
             (fun (name, ns) ->
               Bench_json.Obj
                 [
                   ("name", Bench_json.String name);
                   ("ns_per_run", Bench_json.Float ns);
                 ])
             micro) );
    ]
  in
  let trace_field =
    match trace with
    | None | Some [] -> []
    | Some spans -> [ ("trace", Trace_export.json_of_spans spans) ]
  in
  Bench_json.Obj (base @ trace_field)
