(** Seeded operation-DAG workload family for the fusion search.

    Instances are long chains of single-statement loops in the style of
    runtime array-programming fusion (Kristensen et al., PAPERS.md):
    elementwise steps over a pool of large streamed arrays (extent [n])
    and small temporaries (extent [n/16]), plus scalar reductions onto a
    handful of shared accumulators.  Reductions sharing an accumulator
    cannot fuse (the scalar is carried between the loops), so large
    instances force many partition boundaries; because array footprints
    differ by 16x, the array-count min-cut objective and the
    predicted-traffic (bytes) objective rank those boundaries
    differently — the regime where greedy min-cut and global search
    measurably separate.

    {b Determinism:} [generate] is a pure function of its arguments.
    The generator draws from a private [Random.State] seeded with
    [seed] (and structural parameters); it never touches the global
    random state, so equal arguments produce structurally identical
    programs across runs and processes. *)

(** [generate ~seed ~loops ~n] builds an instance with [loops] top-level
    loops over big arrays of extent [n] (small arrays use [n/16]); the
    accumulator [print]s at the end add one top-level statement each.
    @raise Invalid_argument if [loops < 1] or [n < 64]. *)
val generate : seed:int -> loops:int -> n:int -> Bw_ir.Ast.program

(** Big-array extent for a benchmark scale: 64Ki, 256Ki or 1Mi
    elements — sized so the big arrays exceed the scaled Origin L2 at
    scale 1 and the real 4 MB L2 at scale 3. *)
val extent : scale:int -> int

(** Recognise instance names of the form ["dag<seed>x<loops>"]
    (e.g. ["dag1x200"]); the returned builder sizes arrays with
    {!extent}.  [None] if the name does not match. *)
val of_name : string -> (scale:int -> Bw_ir.Ast.program) option

(** The named benchmark set used by the fuse-search experiment table:
    five instances from 60 to 200 loops. *)
val instances : scale:int -> (string * Bw_ir.Ast.program) list
