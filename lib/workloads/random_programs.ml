let generate ~seed ~loops ~arrays ~n =
  if loops < 1 then
    invalid_arg
      (Printf.sprintf "Random_programs.generate: loops must be >= 1 (got %d)"
         loops);
  if arrays < 1 then
    invalid_arg
      (Printf.sprintf "Random_programs.generate: arrays must be >= 1 (got %d)"
         arrays);
  if n < 1 then
    invalid_arg
      (Printf.sprintf "Random_programs.generate: n must be >= 1 (got %d)" n);
  let rng = Random.State.make [| seed; 0xbeef |] in
  let open Bw_ir.Builder in
  let array_name k = Printf.sprintf "x%d" k in
  let decls =
    List.init arrays (fun k -> array ~init:(Init_hash k) (array_name k) [ n ])
    @ [ scalar "acc" ]
  in
  let body =
    List.init loops (fun _ ->
        if Random.State.int rng 4 = 0 then
          let a = array_name (Random.State.int rng arrays) in
          for_ "i" (int 1) (int n)
            [ sc "acc" <-- (v "acc" +: (a $ [ v "i" ])) ]
        else begin
          let target = array_name (Random.State.int rng arrays) in
          let sources =
            List.init
              (1 + Random.State.int rng 3)
              (fun _ -> array_name (Random.State.int rng arrays))
          in
          let rhs =
            List.fold_left
              (fun acc a -> acc +: (a $ [ v "i" ]))
              (target $ [ v "i" ])
              sources
          in
          for_ "i" (int 1) (int n) [ (target $. [ v "i" ]) <-- rhs ]
        end)
  in
  program
    (Printf.sprintf "random%d" seed)
    ~decls ~live_out:[ "acc" ]
    (body @ [ print (v "acc") ])
