(* Seeded generator for large elementwise/reduction operation DAGs in
   the style of runtime array-programming fusion (Kristensen et al.):
   hundreds of single-statement loops over a pool of "big" streamed
   arrays and "small" temporaries, plus scalar reductions onto a handful
   of shared accumulators.  Two reductions onto the same accumulator are
   fusion-preventing (the scalar is carried between the loops), so large
   instances force many partition boundaries — the regime where greedy
   min-cut and global search separate. *)

let big_name k = Printf.sprintf "big%d" k
let small_name k = Printf.sprintf "s%d" k
let acc_name k = Printf.sprintf "acc%d" k

let generate ~seed ~loops ~n =
  if loops < 1 then
    invalid_arg
      (Printf.sprintf "Dag_family.generate: loops must be >= 1 (got %d)" loops);
  if n < 64 then
    invalid_arg
      (Printf.sprintf "Dag_family.generate: n must be >= 64 (got %d)" n);
  let rng = Random.State.make [| seed; 0xda6; loops |] in
  let m = n / 16 in
  (* pool sizes grow with the instance so sharing stays dense but the
     same arrays keep being revisited by later loops *)
  let bigs = max 3 (loops / 12) in
  let smalls = max 4 (loops / 6) in
  let accs = max 2 (min 4 (loops / 25 + 2)) in
  let open Bw_ir.Builder in
  let decls =
    List.init bigs (fun k -> array ~init:(Init_hash k) (big_name k) [ n ])
    @ List.init smalls (fun k ->
          array ~init:(Init_hash (100 + k)) (small_name k) [ m ])
    @ List.init accs (fun k -> scalar (acc_name k))
  in
  let pick_big () = big_name (Random.State.int rng bigs) in
  let pick_small () = small_name (Random.State.int rng smalls) in
  let pick_acc () = acc_name (Random.State.int rng accs) in
  let elementwise ~extent ~target ~sources =
    let rhs =
      List.fold_left
        (fun acc a -> acc +: (a $ [ v "i" ]))
        (List.hd sources $ [ v "i" ])
        (List.tl sources)
    in
    for_ "i" (int 1) (int extent) [ (target $. [ v "i" ]) <-- rhs ]
  in
  let body =
    List.init loops (fun _ ->
        match Random.State.int rng 100 with
        | r when r < 45 ->
          (* small elementwise chain step *)
          let sources =
            List.init (1 + Random.State.int rng 2) (fun _ -> pick_small ())
          in
          elementwise ~extent:m ~target:(pick_small ()) ~sources
        | r when r < 75 ->
          (* big streamed elementwise step *)
          let sources =
            List.init (1 + Random.State.int rng 2) (fun _ -> pick_big ())
          in
          elementwise ~extent:n ~target:(pick_big ()) ~sources
        | r when r < 90 ->
          (* big reduction onto a shared accumulator *)
          let acc = pick_acc () in
          for_ "i" (int 1) (int n)
            [ sc acc <-- (v acc +: (pick_big () $ [ v "i" ])) ]
        | _ ->
          (* small reduction onto a shared accumulator *)
          let acc = pick_acc () in
          for_ "i" (int 1) (int m)
            [ sc acc <-- (v acc +: (pick_small () $ [ v "i" ])) ])
  in
  let prints = List.init accs (fun k -> print (v (acc_name k))) in
  program
    (Printf.sprintf "dag%dx%d" seed loops)
    ~decls
    ~live_out:(List.init accs acc_name)
    (body @ prints)

let extent ~scale = match scale with 1 -> 65_536 | 2 -> 262_144 | _ -> 1_048_576

let of_name name =
  match Scanf.sscanf_opt name "dag%dx%d%!" (fun seed loops -> (seed, loops)) with
  | Some (seed, loops) when seed >= 0 && loops >= 1 && loops <= 10_000 ->
    Some (fun ~scale -> generate ~seed ~loops ~n:(extent ~scale))
  | _ -> None

let instances ~scale =
  let n = extent ~scale in
  List.map
    (fun (seed, loops) ->
      (Printf.sprintf "dag%dx%d" seed loops, generate ~seed ~loops ~n))
    [ (1, 60); (2, 60); (3, 120); (4, 120); (5, 200) ]
