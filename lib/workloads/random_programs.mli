(** Deterministic random stream programs, used by the fusion ablation
    benchmarks and by property tests: a sequence of loops, each updating
    one array from a random subset of the others, interleaved with scalar
    reduction loops that create fusion-preventing structure.

    Determinism contract: [generate] is a pure function of its four
    arguments.  It draws from a private {!Random.State} seeded with
    [seed] (the global RNG is never touched or re-seeded), so equal
    arguments produce structurally equal programs — across calls,
    processes, and OCaml versions that keep {!Random.State}'s algorithm
    — and unequal seeds may be compared side by side in one run.  Every
    generated program passes {!Bw_ir.Check.check}.

    For a generator with richer coverage (dtypes, 2-D arrays, strided
    subscripts, [read()] streams, non-affine subscripts), see
    [Bw_qa.Gen]. *)

(** [generate ~seed ~loops ~arrays ~n] builds [loops] loops over
    [arrays] arrays of extent [n].
    @raise Invalid_argument if [loops], [arrays] or [n] is [< 1]; the
    message names the offending parameter. *)
val generate :
  seed:int -> loops:int -> arrays:int -> n:int -> Bw_ir.Ast.program
