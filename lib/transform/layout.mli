(** Data-layout transformations, in the spirit of Ferry et al.'s
    burst/page-friendly data reorganisation: change {e where} values
    live, never {e what} is computed.

    Four rewrites:

    - {b Pad}: extend an array's {e last} dimension (column-major, so
      existing element offsets — and hence initial values — are
      untouched).  The extra rows shift every later array's base
      address, breaking the power-of-two inter-array alignments that
      thrash direct-mapped caches.
    - {b Interleave}: fuse two co-accessed same-shape arrays into one
      with a leading extent-2 dimension ({!Regroup}), so one cache line
      delivers both operands.
    - {b Split} (AoS → SoA): an array whose small leading dimension is
      only ever subscripted with constants is split into one array per
      lane, so loops that touch a subset of the lanes stop paying cache
      lines for the rest.
    - {b Transpose}: a read-only 2-D array whose innermost-loop
      subscript is the {e slow} one gets a transposed copy (built by
      emitted copy loops, whose cost is simulated like everything else)
      and all references are rewritten to the unit-stride orientation —
      page- and burst-friendly blocking at array granularity.

    {!run} applies candidates greedily, keeping only those the analytic
    tier of {!Bw_exec.Evaluate} prices as a memory-traffic improvement;
    layout decisions are counted under [pass.layout.*] metrics.  Every
    rewrite preserves observable behaviour exactly (validated in the
    test suite by {!Guard.validate_pair} and {!Bw_analysis.Preserve});
    live-out arrays are never padded, split or interleaved. *)

type action =
  | Pad of { array : string; extra : int }
      (** extend the last dimension by [extra] elements *)
  | Interleave of { first : string; second : string }
  | Split of { array : string; lanes : int }
  | Transpose of { array : string }

val pp_action : Format.formatter -> action -> unit
val action_to_string : action -> string

(** Apply one rewrite; [Error] explains why it does not apply (missing
    array, live-out, non-constant lane subscript, name clash, ...). *)
val apply :
  Bw_ir.Ast.program -> action -> (Bw_ir.Ast.program, string) result

(** Rewrites that structurally apply to the program, heuristically
    ordered (transposes first, then splits, interleaves, pads).  No
    scoring — {!run} prices them. *)
val candidates : Bw_ir.Ast.program -> action list

(** [run ?machine ?threshold p] greedily applies candidates: each round
    scores every remaining candidate with the analytic evaluator on
    [machine] (default Origin2000) and commits the best one as long as
    it cuts predicted memory traffic by more than [threshold] (default
    [0.02], i.e. 2%).  Returns the rewritten program and the actions
    applied, in order.  Never raises on a misbehaving candidate: one
    that fails to apply or breaks {!Bw_ir.Check.check} is skipped. *)
val run :
  ?machine:Bw_machine.Machine.t ->
  ?threshold:float ->
  Bw_ir.Ast.program ->
  Bw_ir.Ast.program * action list
