(** Transactional supervisor for optimizer passes.

    The pipeline's historical contract ("semantic preservation is the
    test suite's burden") is inverted here: each stage runs inside a
    transaction that re-checks the IR, optionally validates semantics
    differentially on both execution engines, bounds the work with a
    fuel budget, and — on any failure — rolls the program back to the
    stage's input and moves on.  A guarded pipeline never crashes and
    never commits a stage whose output fails its checks; the worst case
    is the identity transformation.

    Per stage, in order:

    + the stage's fuel charge is taken from the shared budget
      (proportional to the program's statement count; validation trials
      charge extra).  An exhausted budget rolls the stage back without
      running it;
    + the fault-injection site [guard.<stage>] is crossed
      ({!Bw_obs.Fault}), so tests can force a raise or an IR corruption
      at exactly this point;
    + the transform runs; any exception it raises is confined to the
      stage;
    + {!Bw_ir.Check.check} re-runs on the output;
    + when linting is on, {!Bw_analysis.Preserve.lint} statically
      compares the stage's input and output (live-out stores, print
      counts, dependence signatures) and any violation rolls the stage
      back;
    + when validation is on, the stage's input and output programs both
      execute on the interpreter {e and} the compiled engine over
      deterministic inputs ([input_offset] varies per trial), and every
      live-out array and print must agree within [tolerance].

    Outcomes are recorded as {!event}s, as [guard.<stage>.*] metrics
    (rollbacks / validation_failures / exceptions / check_failures /
    budget_exhausted / commits), and as one ["guard"] span per stage
    verdict when tracing is enabled. *)

type failure =
  | Check_failed of string
  | Lint_failed of string
      (** the {!Bw_analysis.Preserve} dependence-preservation lint
          flagged the stage's output *)
  | Validation_failed of string
  | Exception of string  (** includes injected faults *)
  | Budget_exhausted of string

type verdict = Committed | Rolled_back of failure

type event = { stage : string; verdict : verdict }

type config = {
  validate : int;
      (** differential-validation trials per stage; [0] disables
          validation (checks and exception confinement remain) *)
  lint : bool;
      (** statically lint each stage with {!Bw_analysis.Preserve.lint}
          (dropped live-out stores, changed print counts, new backward
          dependences) and roll back on any violation; purely static, no
          program execution *)
  tolerance : float;
      (** absolute/relative float tolerance for observation comparison *)
  rollback : bool;
      (** [false]: first failure raises {!Guard_failed} instead of
          rolling back (fail-fast mode for CI) *)
  fuel : int option;
      (** shared step budget for the whole pipeline; [None] = unbounded.
          One step is one IR statement processed; each validation trial
          charges four program executions. *)
}

(** [{ validate = 0; lint = false; tolerance = 1e-9; rollback = true;
    fuel = None }] — the cost-free guard the default [Strategy.run]
    uses: exceptions are confined, outputs are checked, nothing is
    executed. *)
val default_config : config

(** Raised (with all events so far, failure last) when a stage fails
    and [config.rollback] is [false]. *)
exception Guard_failed of event list

type t

val create : config -> t
val config : t -> config

(** Events recorded so far, in execution order. *)
val events : t -> event list

val rollbacks : t -> int

(** Fuel remaining, if the budget is bounded. *)
val fuel_left : t -> int option

(** [stage t ~name ~default f p] runs transform [f] on [p] under the
    transaction described above.  Returns [f p] on commit and
    [(p, default)] on rollback.
    @raise Guard_failed on failure when [config.rollback] is [false]. *)
val stage :
  t ->
  name:string ->
  default:'a ->
  (Bw_ir.Ast.program -> Bw_ir.Ast.program * 'a) ->
  Bw_ir.Ast.program ->
  Bw_ir.Ast.program * 'a

(** The corruption a [Corrupt] fault applies to a stage's output: the
    first assignment's right-hand side is offset by one, which
    type-checks but (for any live assignment) changes observable
    behaviour — exactly what differential validation must catch.
    [None] if the program contains no assignment to corrupt. *)
val corrupt_program : Bw_ir.Ast.program -> Bw_ir.Ast.program option

(** Differential validation as a standalone oracle: run [before] and
    [after] on both engines over [trials] deterministic input sets and
    compare observations within [tolerance].  [Ok ()] when everything
    agrees; [Error msg] names the first disagreement (or execution
    error). *)
val validate_pair :
  ?trials:int ->
  ?tolerance:float ->
  before:Bw_ir.Ast.program ->
  after:Bw_ir.Ast.program ->
  unit ->
  (unit, string) result

val pp_failure : Format.formatter -> failure -> unit
val pp_event : Format.formatter -> event -> unit

(** One line per stage plus a rollback/commit summary line. *)
val pp_report : Format.formatter -> event list -> unit
