open Bw_ir.Ast

(* Dependence edges between two body statements [u] (earlier) and [v]
   (later) of a loop over [index]:
   - u -> v when some iteration of u must precede some iteration of v;
   - v -> u when a value flows backwards across iterations (v at
     iteration i feeds u at iteration > i).
   Using the pair test: for refs (ru in u, rv in v) with a write,
   delta = iter(rv) - iter(ru) for conflicting elements:
   delta >= 0 (or unknown)  => u -> v;
   delta <= 0 (or unknown)  => v -> u. *)
let array_edges ~index u_stmt v_stmt =
  let refs_u = Bw_analysis.Refs.collect [ u_stmt ] in
  let refs_v = Bw_analysis.Refs.collect [ v_stmt ] in
  let forward = ref false and backward = ref false in
  List.iter
    (fun (ru : Bw_analysis.Refs.t) ->
      List.iter
        (fun (rv : Bw_analysis.Refs.t) ->
          if
            ru.Bw_analysis.Refs.array = rv.Bw_analysis.Refs.array
            && not
                 (ru.Bw_analysis.Refs.access = Bw_analysis.Refs.Read
                 && rv.Bw_analysis.Refs.access = Bw_analysis.Refs.Read)
          then begin
            match Bw_analysis.Depend.pair_test ~index ru rv with
            | Bw_analysis.Depend.Independent -> ()
            | Bw_analysis.Depend.Dependent (Some d) ->
              if d >= 0 then forward := true;
              if d < 0 then backward := true
            | Bw_analysis.Depend.Dependent None | Bw_analysis.Depend.Unknown
              ->
              forward := true;
              backward := true
          end)
        refs_v)
    refs_u;
  (!forward, !backward)

let scalar_conflict body u_stmt v_stmt =
  (* a scalar written by either and touched by both ties the statements
     together unless it is private over the whole body *)
  let vars stmt =
    (Bw_ir.Ast_util.vars_read [ stmt ], Bw_ir.Ast_util.vars_written [ stmt ])
  in
  let indices = Bw_ir.Ast_util.loop_indices body in
  let arrays =
    Bw_analysis.Refs.collect body
    |> List.map (fun (r : Bw_analysis.Refs.t) -> r.Bw_analysis.Refs.array)
  in
  let is_scalar x = (not (List.mem x arrays)) && not (List.mem x indices) in
  let ru, wu = vars u_stmt and rv, wv = vars v_stmt in
  let touched x l1 l2 = List.mem x l1 || List.mem x l2 in
  List.exists
    (fun x ->
      is_scalar x
      && touched x ru wu && touched x rv wv
      && (List.mem x wu || List.mem x wv)
      && not (Bw_analysis.Depend.scalar_private body x))
    (List.sort_uniq compare (ru @ wu @ rv @ wv))

let distribute (l : loop) =
  let stmts = Array.of_list l.body in
  let n = Array.length stmts in
  if n <= 1 then Ok [ l ]
  else begin
    let g = Bw_graph.Digraph.create ~size_hint:n () in
    Bw_graph.Digraph.ensure_nodes g n;
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        let fwd, bwd = array_edges ~index:l.index stmts.(u) stmts.(v) in
        (* two read() statements must stay in one loop: splitting them
           apart reorders their input-stream positions *)
        let glue =
          scalar_conflict l.body stmts.(u) stmts.(v)
          || Bw_analysis.Depend.(
               consumes_input [ stmts.(u) ] && consumes_input [ stmts.(v) ])
        in
        if fwd || glue then Bw_graph.Digraph.add_edge g u v;
        if bwd || glue then Bw_graph.Digraph.add_edge g v u
      done
    done;
    (* SCCs arrive in reverse topological order of the condensation *)
    let components = List.rev (Bw_graph.Topo.scc g) in
    let loops =
      List.map
        (fun comp ->
          let members = List.sort compare comp in
          { l with body = List.map (fun i -> stmts.(i)) members })
        components
    in
    Ok loops
  end

let distribute_at (p : program) pos =
  match List.nth_opt p.body pos with
  | Some (For l) ->
    Result.map
      (fun loops ->
        let body =
          List.concat
            (List.mapi
               (fun i s ->
                 if i = pos then List.map (fun l' -> For l') loops else [ s ])
               p.body)
        in
        { p with body })
      (distribute l)
  | Some _ -> Error "distribute_at: not a loop"
  | None -> Error "distribute_at: position out of range"

let distribute_all (p : program) =
  (* repeatedly distribute until no top-level loop splits further *)
  let rec go p pos =
    if pos >= List.length p.body then p
    else
      match List.nth p.body pos with
      | For _ -> (
        match distribute_at p pos with
        | Ok p' when List.length p'.body > List.length p.body -> go p' pos
        | _ -> go p (pos + 1))
      | _ -> go p (pos + 1)
  in
  go p 0
