open Bw_ir.Ast

type action =
  | Pad of { array : string; extra : int }
  | Interleave of { first : string; second : string }
  | Split of { array : string; lanes : int }
  | Transpose of { array : string }

let action_to_string = function
  | Pad { array; extra } -> Printf.sprintf "pad %s +%d" array extra
  | Interleave { first; second } ->
    Printf.sprintf "interleave %s with %s" first second
  | Split { array; lanes } -> Printf.sprintf "split %s into %d lanes" array lanes
  | Transpose { array } -> Printf.sprintf "transpose %s" array

let pp_action ppf a = Format.pp_print_string ppf (action_to_string a)

(* `bwc optimize --layout` runs this pass under a Guard stage; the site
   exists so `bwc faults` can list it before anything arms it. *)
let () =
  Bw_obs.Fault.declare ~doc:"data-layout stage (raise or corrupt)"
    "guard.layout"

(* --- generic reference rewriting ---------------------------------------
   [rw name idxs] maps an array reference (read or write) whose
   subscripts are already rewritten; used by Split and Transpose. *)

let rec rw_expr rw e =
  match e with
  | Int_lit _ | Float_lit _ | Scalar _ -> e
  | Element (a, idxs) ->
    let a, idxs = rw a (List.map (rw_expr rw) idxs) in
    Element (a, idxs)
  | Unary (op, x) -> Unary (op, rw_expr rw x)
  | Binary (op, x, y) -> Binary (op, rw_expr rw x, rw_expr rw y)
  | Call (f, args) -> Call (f, List.map (rw_expr rw) args)

let rec rw_cond rw c =
  match c with
  | Cmp (op, x, y) -> Cmp (op, rw_expr rw x, rw_expr rw y)
  | And (x, y) -> And (rw_cond rw x, rw_cond rw y)
  | Or (x, y) -> Or (rw_cond rw x, rw_cond rw y)
  | Not x -> Not (rw_cond rw x)

let rw_lvalue rw = function
  | Lscalar s -> Lscalar s
  | Lelement (a, idxs) ->
    let a, idxs = rw a (List.map (rw_expr rw) idxs) in
    Lelement (a, idxs)

let rec rw_stmt rw = function
  | Assign (lv, e) -> Assign (rw_lvalue rw lv, rw_expr rw e)
  | Read_input lv -> Read_input (rw_lvalue rw lv)
  | Print e -> Print (rw_expr rw e)
  | If (c, t, e) ->
    If (rw_cond rw c, List.map (rw_stmt rw) t, List.map (rw_stmt rw) e)
  | For l ->
    For
      { l with
        lo = rw_expr rw l.lo;
        hi = rw_expr rw l.hi;
        step = rw_expr rw l.step;
        body = List.map (rw_stmt rw) l.body }

(* --- reference collection ----------------------------------------------
   Every array reference in the body, reads and writes alike, as
   [(name, subscripts)]; lvalues are included (Refs/fold_stmt_exprs only
   see read-side [Element] nodes). *)

let collect_refs body =
  let acc = ref [] in
  let rec expr e =
    match e with
    | Int_lit _ | Float_lit _ | Scalar _ -> ()
    | Element (a, idxs) ->
      acc := (a, idxs) :: !acc;
      List.iter expr idxs
    | Unary (_, x) -> expr x
    | Binary (_, x, y) ->
      expr x;
      expr y
    | Call (_, args) -> List.iter expr args
  in
  let rec cond = function
    | Cmp (_, x, y) ->
      expr x;
      expr y
    | And (x, y) | Or (x, y) ->
      cond x;
      cond y
    | Not x -> cond x
  in
  let lvalue = function
    | Lscalar _ -> ()
    | Lelement (a, idxs) ->
      acc := (a, idxs) :: !acc;
      List.iter expr idxs
  in
  let rec stmt = function
    | Assign (lv, e) ->
      lvalue lv;
      expr e
    | Read_input lv -> lvalue lv
    | Print e -> expr e
    | If (c, t, e) ->
      cond c;
      List.iter stmt t;
      List.iter stmt e
    | For l ->
      expr l.lo;
      expr l.hi;
      expr l.step;
      List.iter stmt l.body
  in
  List.iter stmt body;
  List.rev !acc

let written_arrays body =
  let acc = ref [] in
  let note = function
    | Lelement (a, _) -> acc := a :: !acc
    | Lscalar _ -> ()
  in
  ignore
    (Bw_ir.Ast_util.fold_stmts
       (fun () s ->
         match s with
         | Assign (lv, _) | Read_input lv -> note lv
         | _ -> ())
       () body);
  !acc

let taken_names (p : program) =
  List.map (fun d -> d.var_name) p.decls
  @ Bw_ir.Ast_util.loop_indices p.body

let mentions_index name e =
  List.exists
    (function Scalar s -> s = name | _ -> false)
    (Bw_ir.Ast_util.subexprs e)

(* --- pad ---------------------------------------------------------------- *)

let pad (p : program) array extra =
  if extra <= 0 then Error "pad amount must be positive"
  else
    match find_decl p array with
    | None -> Error (Printf.sprintf "no array '%s'" array)
    | Some d when not (is_array d) ->
      Error (Printf.sprintf "'%s' is a scalar" array)
    | Some _ when List.mem array p.live_out ->
      Error (Printf.sprintf "'%s' is live-out" array)
    | Some d ->
      (* column-major: the last dimension is the slowest, so extending it
         appends storage without renumbering any existing element — the
         initialiser still produces identical values where the program
         looks. *)
      let rec extend = function
        | [] -> assert false
        | [ last ] -> [ last + extra ]
        | x :: rest -> x :: extend rest
      in
      let d' = { d with dims = extend d.dims } in
      Ok
        { p with
          decls =
            List.map (fun e -> if e.var_name = array then d' else e) p.decls }

(* --- split (AoS -> SoA) -------------------------------------------------- *)

let lane_name array c = Printf.sprintf "%s_l%d" array c

let split_init init lanes c =
  match init with
  | Init_zero -> Ok Init_zero
  | Init_linear (a, b) ->
    (* lane [c]'s element [k] sat at flattened offset [(c-1) + lanes*k] *)
    Ok (Init_linear (a +. (b *. float_of_int (c - 1)), b *. float_of_int lanes))
  | Init_lanes (inner, l) when l = lanes -> Ok inner
  | Init_lanes _ -> Error "lane count of initialiser does not match"
  | Init_hash _ -> Error "hash initialiser is offset-dependent, cannot split"

let split (p : program) array lanes =
  match find_decl p array with
  | None -> Error (Printf.sprintf "no array '%s'" array)
  | Some d -> (
    match d.dims with
    | f :: (_ :: _ as rest) when f = lanes && f >= 2 && f <= 8 ->
      if List.mem array p.live_out then
        Error (Printf.sprintf "'%s' is live-out" array)
      else begin
        let refs =
          List.filter (fun (a, _) -> a = array) (collect_refs p.body)
        in
        let constant_lane = function
          | (_, Int_lit c :: _) when c >= 1 && c <= f -> true
          | _ -> false
        in
        if refs = [] then Error (Printf.sprintf "'%s' is never accessed" array)
        else if not (List.for_all constant_lane refs) then
          Error
            (Printf.sprintf
               "'%s' has a non-constant (or out-of-range) lane subscript" array)
        else begin
          let taken = taken_names p in
          let lane_names = List.init f (fun i -> lane_name array (i + 1)) in
          if List.exists (fun n -> List.mem n taken) lane_names then
            Error "lane names would clash with existing declarations"
          else begin
            let inits =
              List.init f (fun i -> split_init d.init f (i + 1))
            in
            match
              List.find_opt (function Error _ -> true | Ok _ -> false) inits
            with
            | Some (Error msg) -> Error msg
            | _ ->
              let lane_decls =
                List.mapi
                  (fun i init ->
                    { var_name = List.nth lane_names i;
                      dtype = d.dtype;
                      dims = rest;
                      init = (match init with Ok v -> v | Error _ -> assert false)
                    })
                  inits
              in
              let decls =
                List.concat_map
                  (fun e -> if e.var_name = array then lane_decls else [ e ])
                  p.decls
              in
              let rw name idxs =
                if name = array then
                  match idxs with
                  | Int_lit c :: rest_idx -> (lane_name array c, rest_idx)
                  | _ -> assert false (* pre-scan guarantees constant lanes *)
                else (name, idxs)
              in
              Ok { p with decls; body = List.map (rw_stmt rw) p.body }
          end
        end
      end
    | _ ->
      Error
        (Printf.sprintf
           "'%s' is not an array with a leading lane dimension of %d" array
           lanes))

(* --- transpose ----------------------------------------------------------- *)

let transpose (p : program) array =
  match find_decl p array with
  | None -> Error (Printf.sprintf "no array '%s'" array)
  | Some d -> (
    match d.dims with
    | [ d0; d1 ] ->
      if List.mem array (written_arrays p.body) then
        Error (Printf.sprintf "'%s' is written, transposed copy would go stale"
                 array)
      else begin
        let taken = taken_names p in
        let t_name = Bw_ir.Ast_util.fresh_name ~taken (array ^ "_t") in
        let i = Bw_ir.Ast_util.fresh_name ~taken:(t_name :: taken) (array ^ "_i") in
        let j =
          Bw_ir.Ast_util.fresh_name ~taken:(i :: t_name :: taken) (array ^ "_j")
        in
        let t_decl =
          { var_name = t_name; dtype = d.dtype; dims = [ d1; d0 ]; init = Init_zero }
        in
        let decls =
          List.concat_map
            (fun e -> if e.var_name = array then [ e; t_decl ] else [ e ])
            p.decls
        in
        (* inner loop varies the transposed copy's fast subscript, so the
           copy's writes are unit-stride *)
        let copy =
          For
            { index = i;
              lo = Int_lit 1;
              hi = Int_lit d0;
              step = Int_lit 1;
              body =
                [ For
                    { index = j;
                      lo = Int_lit 1;
                      hi = Int_lit d1;
                      step = Int_lit 1;
                      body =
                        [ Assign
                            ( Lelement (t_name, [ Scalar j; Scalar i ]),
                              Element (array, [ Scalar i; Scalar j ]) ) ]
                    } ]
            }
        in
        let rw name idxs =
          if name = array then
            match idxs with
            | [ e1; e2 ] -> (t_name, [ e2; e1 ])
            | _ -> (name, idxs)
          else (name, idxs)
        in
        Ok { p with decls; body = copy :: List.map (rw_stmt rw) p.body }
      end
    | _ -> Error (Printf.sprintf "'%s' is not a 2-D array" array))

let apply p = function
  | Pad { array; extra } -> pad p array extra
  | Interleave { first; second } -> Regroup.regroup_pair p first second
  | Split { array; lanes } -> split p array lanes
  | Transpose { array } -> transpose p array

(* --- candidates ---------------------------------------------------------- *)

(* A 2-D read-only array is transpose-worthy when more of its references
   run the innermost loop index down the slow (second) subscript than
   down the fast (first) one. *)
let transpose_candidates (p : program) =
  let written = written_arrays p.body in
  let two_d =
    List.filter
      (fun d ->
        List.length d.dims = 2 && not (List.mem d.var_name written))
      p.decls
  in
  if two_d = [] then []
  else begin
    let bad = Hashtbl.create 8 and good = Hashtbl.create 8 in
    let bump tbl a = Hashtbl.replace tbl a (1 + Option.value ~default:0 (Hashtbl.find_opt tbl a)) in
    let rec walk indices stmts =
      List.iter
        (fun s ->
          match s with
          | For l ->
            (* bounds run in the enclosing scope *)
            walk (l.index :: indices) l.body
          | If (_, t, e) ->
            walk indices t;
            walk indices e
          | Assign (_, _) | Read_input _ | Print _ -> (
            match indices with
            | [] -> ()
            | innermost :: _ ->
              List.iter
                (fun (a, idxs) ->
                  match idxs with
                  | [ e1; e2 ]
                    when List.exists (fun d -> d.var_name = a) two_d ->
                    if mentions_index innermost e1 then bump good a
                    else if mentions_index innermost e2 then bump bad a
                  | _ -> ())
                (collect_refs [ s ])))
        stmts
    in
    walk [] p.body;
    List.filter_map
      (fun d ->
        let a = d.var_name in
        let b = Option.value ~default:0 (Hashtbl.find_opt bad a) in
        let g = Option.value ~default:0 (Hashtbl.find_opt good a) in
        if b >= 1 && b >= g then Some (Transpose { array = a }) else None)
      two_d
  end

let split_candidates (p : program) =
  let refs = collect_refs p.body in
  List.filter_map
    (fun d ->
      match d.dims with
      | f :: _ :: _ when f >= 2 && f <= 8 && not (List.mem d.var_name p.live_out)
        ->
        let mine = List.filter (fun (a, _) -> a = d.var_name) refs in
        let constant = function
          | (_, Int_lit c :: _) when c >= 1 && c <= f -> true
          | _ -> false
        in
        if mine <> [] && List.for_all constant mine then
          Some (Split { array = d.var_name; lanes = f })
        else None
      | _ -> None)
    p.decls

let pad_candidates (p : program) =
  List.filter_map
    (fun d ->
      if
        is_array d
        && (not (List.mem d.var_name p.live_out))
        && decl_bytes d mod 4096 = 0
      then
        Some
          (Pad
             { array = d.var_name;
               extra = (if List.length d.dims = 1 then 8 else 1) })
      else None)
    p.decls

let candidates (p : program) =
  transpose_candidates p
  @ split_candidates p
  @ List.map
      (fun (a, b) -> Interleave { first = a; second = b })
      (Regroup.candidates p)
  @ pad_candidates p

(* --- greedy analytic-gated driver ---------------------------------------- *)

let accept_counter = Bw_obs.Metrics.counter "pass.layout.accept"
let reject_counter = Bw_obs.Metrics.counter "pass.layout.reject"

let analytic_traffic ~machine p =
  Bw_exec.Evaluate.memory_bytes
    (Bw_exec.Evaluate.of_program ~budget:Bw_exec.Evaluate.Microseconds ~machine
       p)

let run ?(machine = Bw_machine.Machine.origin2000) ?(threshold = 0.02) p =
  let max_rounds = 8 in
  let rec go p applied round =
    if round >= max_rounds then (p, List.rev applied)
    else begin
      let base = analytic_traffic ~machine p in
      let scored =
        List.filter_map
          (fun a ->
            match apply p a with
            | Error _ -> None
            | Ok p' -> (
              match Bw_ir.Check.check p' with
              | Error _ -> None
              | Ok () -> Some (a, p', analytic_traffic ~machine p')))
          (candidates p)
      in
      match
        List.sort (fun (_, _, x) (_, _, y) -> compare x y) scored
      with
      | (a, p', best) :: _ when best < base *. (1.0 -. threshold) ->
        Bw_obs.Metrics.incr accept_counter;
        go p' (a :: applied) (round + 1)
      | _ :: _ ->
        Bw_obs.Metrics.incr ~by:(List.length scored) reject_counter;
        (p, List.rev applied)
      | [] -> (p, List.rev applied)
    end
  in
  go p [] 0
