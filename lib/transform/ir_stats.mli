(** Cheap static summary of a program, computed between optimizer passes
    so every pass's span can carry before/after shape and a predicted
    balance without re-running the simulator.

    The flop/byte estimates come from an abstract walk: each arithmetic
    operator or intrinsic call costs one flop, each array-element
    occurrence moves 8 bytes, and loop bodies are multiplied by the trip
    count when the bounds fold to constants (the shipped workloads bake
    concrete sizes in, so they fold).  Symbolic bounds are estimated by
    {!Bw_analysis.Predict.trips}'s interval analysis — in particular the
    [lo = t, hi = min (t + tile - 1) n] loops Tile introduces resolve to
    the tile extent instead of {!default_trips}.  Both arms of a
    conditional are charged — an upper bound. *)

type t = {
  toplevel : int;  (** top-level statements (fusion merges these) *)
  statements : int;  (** structural statement count, nested included *)
  distinct_arrays : int;  (** arrays referenced anywhere in the body *)
  est_flops : float;
  est_bytes : float;  (** register-boundary traffic: 8 bytes/element *)
  predicted_balance : float;  (** est_bytes / est_flops, bytes per flop *)
}

val default_trips : int

val of_program : Bw_ir.Ast.program -> t

(** Attributes for a span, each key prefixed (e.g. [~prefix:"before."]). *)
val span_attrs : prefix:string -> t -> (string * Bw_obs.Trace.value) list
