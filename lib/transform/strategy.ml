type stage_report = {
  fused_loops : int;
  contracted : string list;
  shrink_plans : Shrink.plan list;
  stores_eliminated : string list;
  forwarded : int;
}

type options = {
  fuse : bool;
  contract : bool;
  shrink : bool;
  store_elim : bool;
}

let all_on = { fuse = true; contract = true; shrink = true; store_elim = true }

let fusion_only =
  { fuse = true; contract = false; shrink = false; store_elim = false }

(* Every guarded stage has a fault-injection site, declared eagerly so
   `bwc faults` can list them before anything is armed. *)
let stage_names =
  [ "input"; "fuse"; "fuse_search"; "contract"; "shrink"; "forward";
    "store-elim"; "contract-tidy" ]

let () =
  List.iter
    (fun n ->
      Bw_obs.Fault.declare
        ~doc:(Printf.sprintf "optimizer stage '%s' (raise or corrupt)" n)
        ("guard." ^ n))
    stage_names

(* Run one pass under observability: a "pass:<name>" span carrying the
   program's static statistics before and after (statement counts,
   distinct arrays, predicted balance — see Ir_stats), plus a
   pass.<name>.runs counter.  The statistics are only computed when
   tracing is enabled, so the untraced pipeline pays one atomic load and
   a counter bump per pass. *)
let pass name f p =
  Bw_obs.Metrics.incr (Bw_obs.Metrics.counter ("pass." ^ name ^ ".runs"));
  if not (Bw_obs.Trace.enabled ()) then f p
  else begin
    let h =
      Bw_obs.Trace.start ~cat:"pass"
        ~attrs:
          (("pass", Bw_obs.Trace.Str name)
          :: Ir_stats.span_attrs ~prefix:"before." (Ir_stats.of_program p))
        ("pass:" ^ name)
    in
    match f p with
    | (p', _aux) as result ->
      Bw_obs.Trace.finish
        ~attrs:(Ir_stats.span_attrs ~prefix:"after." (Ir_stats.of_program p'))
        h;
      result
    | exception e ->
      Bw_obs.Trace.finish
        ~attrs:[ ("error", Bw_obs.Trace.Str (Printexc.to_string e)) ]
        h;
      raise e
  end

let count name n = Bw_obs.Metrics.incr ~by:n (Bw_obs.Metrics.counter name)

let fuse_accept = Bw_obs.Metrics.counter "pass.fuse.analytic_accept"
let fuse_reject = Bw_obs.Metrics.counter "pass.fuse.analytic_reject"
let search_accept = Bw_obs.Metrics.counter "pass.fuse_search.analytic_accept"
let search_reject = Bw_obs.Metrics.counter "pass.fuse_search.analytic_reject"

let analytic_traffic ~machine p =
  Bw_exec.Evaluate.memory_bytes
    (Bw_exec.Evaluate.of_program ~budget:Bw_exec.Evaluate.Microseconds ~machine
       p)

(* Fusion candidates are scored with the analytic tier of the tiered
   evaluator before being committed: the greedy sweep's output is kept
   only when the closed-form model does not predict a memory-traffic
   regression beyond 5% on [machine].  Fusion removes loop boundaries
   and never adds references, so the model should always accept real
   candidates — the gate exists to catch pathological ones for the price
   of two closed-form queries instead of a replay.  Accept/reject
   decisions are counted under [pass.fuse.analytic_*]. *)
let gated ~machine ~accept ~reject f p =
  let p' = f p in
  if p' == p then p'
  else if analytic_traffic ~machine p' <= 1.05 *. analytic_traffic ~machine p
  then begin
    Bw_obs.Metrics.incr accept;
    p'
  end
  else begin
    Bw_obs.Metrics.incr reject;
    p
  end

let gated_greedy ~machine p =
  gated ~machine ~accept:fuse_accept ~reject:fuse_reject Fuse.greedy p

let run_guarded ?(options = all_on) ?(guard = Guard.default_config)
    ?(machine = Bw_machine.Machine.origin2000) ?fuse_search
    (p : Bw_ir.Ast.program) =
  Bw_obs.Trace.with_span ~cat:"optimizer"
    ("optimize:" ^ p.Bw_ir.Ast.prog_name)
  @@ fun () ->
  let g = Guard.create guard in
  (* The "input" pseudo-stage re-checks the program we were handed (and,
     under validation, establishes that both engines agree on it) before
     any transform gets to run.  A program that fails here flows through
     untouched: every later stage would roll back against it anyway. *)
  let p, () = Guard.stage g ~name:"input" ~default:() (fun p -> (p, ())) p in
  let before = List.length p.Bw_ir.Ast.body in
  let p =
    (* A search engine, when supplied, subsumes the greedy adjacent
       sweep: it runs in its own guarded stage (fault site
       guard.fuse_search) behind the same 5% analytic gate. *)
    match fuse_search with
    | Some search ->
      fst
        (Guard.stage g ~name:"fuse_search" ~default:()
           (pass "fuse_search" (fun p ->
                ( gated ~machine ~accept:search_accept ~reject:search_reject
                    search p,
                  () )))
           p)
    | None ->
      if options.fuse then
        fst
          (Guard.stage g ~name:"fuse" ~default:()
             (pass "fuse" (fun p -> (gated_greedy ~machine p, ())))
             p)
      else p
  in
  let fused_loops = before - List.length p.Bw_ir.Ast.body in
  let p, contracted =
    if options.contract then
      Guard.stage g ~name:"contract" ~default:[]
        (pass "contract" Contract.contract_arrays)
        p
    else (p, [])
  in
  let p, shrink_plans =
    if options.shrink then
      Guard.stage g ~name:"shrink" ~default:[] (pass "shrink" Shrink.shrink_all) p
    else (p, [])
  in
  let p, forwarded =
    if options.store_elim then
      Guard.stage g ~name:"forward" ~default:0
        (pass "forward" Scalar_replace.forward_stores)
        p
    else (p, 0)
  in
  let p, stores_eliminated =
    if options.store_elim then
      Guard.stage g ~name:"store-elim" ~default:[]
        (pass "store-elim" Store_elim.eliminate_dead_stores)
        p
    else (p, [])
  in
  (* The pipeline may leave a forwarding temp whose store was the only
     consumer; one more contraction pass tidies that up. *)
  let p, contracted2 =
    if options.contract then
      Guard.stage g ~name:"contract-tidy" ~default:[]
        (pass "contract-tidy" Contract.contract_arrays)
        p
    else (p, [])
  in
  count "pass.fuse.loops_fused" fused_loops;
  count "pass.contract.arrays" (List.length contracted + List.length contracted2);
  count "pass.shrink.plans" (List.length shrink_plans);
  count "pass.forward.sites" forwarded;
  count "pass.store-elim.stores" (List.length stores_eliminated);
  ( p,
    { fused_loops;
      contracted = contracted @ contracted2;
      shrink_plans;
      stores_eliminated;
      forwarded },
    Guard.events g )

let run ?options ?machine ?fuse_search p =
  let p', report, _events = run_guarded ?options ?machine ?fuse_search p in
  (p', report)

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>fused %d loop(s)@,contracted: %s@,shrunk: %s@,store-eliminated: %s@,forwarded %d site(s)@]"
    r.fused_loops
    (match r.contracted with [] -> "-" | l -> String.concat ", " l)
    (match r.shrink_plans with
    | [] -> "-"
    | l ->
      String.concat ", "
        (List.map (fun (pl : Shrink.plan) -> pl.Shrink.array) l))
    (match r.stores_eliminated with [] -> "-" | l -> String.concat ", " l)
    r.forwarded
