open Bw_ir.Ast

(* Does [stmt] write array [a] or any variable read by [subscripts]? *)
let blocks a subscripts stmt =
  let written = Bw_ir.Ast_util.vars_written [ stmt ] in
  let subscript_vars = List.concat_map Bw_ir.Ast_util.expr_reads subscripts in
  List.mem a written
  || List.exists (fun v -> List.mem v written) subscript_vars

(* Replace reads [Element (a, subs)] by [Scalar temp] in an expression. *)
let rec replace_expr a subs temp e =
  let recur = replace_expr a subs temp in
  match e with
  | Element (a', subs') when a' = a && subs' = subs -> Scalar temp
  | Element (a', subs') -> Element (a', List.map recur subs')
  | Int_lit _ | Float_lit _ | Scalar _ -> e
  | Unary (op, x) -> Unary (op, recur x)
  | Binary (op, x, y) -> Binary (op, recur x, recur y)
  | Call (f, args) -> Call (f, List.map recur args)

let rec replace_cond a subs temp c =
  let fe = replace_expr a subs temp and fc = replace_cond a subs temp in
  match c with
  | Cmp (op, x, y) -> Cmp (op, fe x, fe y)
  | And (x, y) -> And (fc x, fc y)
  | Or (x, y) -> Or (fc x, fc y)
  | Not x -> Not (fc x)

(* Forward through a statement list.  Returns rewritten statements and
   whether any replacement happened. *)
let rec forward_in_tail a subs temp stmts =
  match stmts with
  | [] -> ([], false)
  | stmt :: rest ->
    if blocks a subs stmt || (match stmt with For _ -> true | _ -> false)
    then (stmt :: rest, false)
    else begin
      let stmt', hit =
        match stmt with
        | Assign (lv, e) ->
          let e' = replace_expr a subs temp e in
          let lv' =
            match lv with
            | Lscalar _ -> lv
            | Lelement (arr, idxs) ->
              Lelement (arr, List.map (replace_expr a subs temp) idxs)
          in
          (Assign (lv', e'), e' <> e || lv' <> lv)
        | Print e ->
          let e' = replace_expr a subs temp e in
          (Print e', e' <> e)
        | Read_input lv ->
          let lv' =
            match lv with
            | Lscalar _ -> lv
            | Lelement (arr, idxs) ->
              Lelement (arr, List.map (replace_expr a subs temp) idxs)
          in
          (Read_input lv', lv' <> lv)
        | If (c, t, e) ->
          (* branches see the same iteration; descend into both *)
          let c' = replace_cond a subs temp c in
          let t', ht = forward_in_tail a subs temp t in
          let e', he = forward_in_tail a subs temp e in
          (If (c', t', e'), c' <> c || ht || he)
        | For _ -> (stmt, false)
      in
      let rest', hit_rest = forward_in_tail a subs temp rest in
      (stmt' :: rest', hit || hit_rest)
    end

(* Process one straight-line statement list (a loop body or branch). *)
let rec forward_in_body ~decls ~new_decls ~counter stmts =
  match stmts with
  | [] -> []
  | Assign (Lelement (a, subs), rhs) :: rest ->
    (* would a temp be used? probe the tail first *)
    let probe_temp = "__probe__" in
    let _, would_hit = forward_in_tail a subs probe_temp rest in
    if would_hit then begin
      let taken =
        List.map (fun d -> d.var_name) (decls @ !new_decls)
        @ [ probe_temp ]
      in
      let temp = Bw_ir.Ast_util.fresh_name ~taken (a ^ "_val") in
      (* the temp must carry the array's element type: forwarding an
         integer array through a float scalar produces ill-typed IR *)
      let dtype =
        match List.find_opt (fun d -> d.var_name = a) decls with
        | Some d -> d.dtype
        | None -> F64
      in
      new_decls :=
        !new_decls @ [ { var_name = temp; dtype; dims = []; init = Init_zero } ];
      incr counter;
      let rest', _ = forward_in_tail a subs temp rest in
      Assign (Lscalar temp, rhs)
      :: Assign (Lelement (a, subs), Scalar temp)
      :: forward_in_body ~decls ~new_decls ~counter rest'
    end
    else
      Assign (Lelement (a, subs), rhs)
      :: forward_in_body ~decls ~new_decls ~counter rest
  | If (c, t, e) :: rest ->
    If
      ( c,
        forward_in_body ~decls ~new_decls ~counter t,
        forward_in_body ~decls ~new_decls ~counter e )
    :: forward_in_body ~decls ~new_decls ~counter rest
  | For l :: rest ->
    For { l with body = forward_in_body ~decls ~new_decls ~counter l.body }
    :: forward_in_body ~decls ~new_decls ~counter rest
  | stmt :: rest -> stmt :: forward_in_body ~decls ~new_decls ~counter rest

let forward_stores (p : program) =
  let new_decls = ref [] in
  let counter = ref 0 in
  let body =
    forward_in_body ~decls:p.decls ~new_decls ~counter p.body
  in
  ({ p with decls = p.decls @ !new_decls; body }, !counter)
