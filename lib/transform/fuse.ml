open Bw_ir.Ast

let guard_body ~index ~lo ~hi ~(hull_lo : int) ~(hull_hi : int) body =
  match Bw_analysis.Depend.constant_bounds { index; lo; hi; step = Int_lit 1; body } with
  | Some (l, h, _) when l = hull_lo && h = hull_hi -> body
  | _ ->
    let cond =
      And (Cmp (Ge, Scalar index, lo), Cmp (Le, Scalar index, hi))
    in
    [ If (cond, body, []) ]

let fuse_adjacent (l1 : loop) (l2 : loop) =
  match Bw_analysis.Depend.fusable l1 l2 with
  | Error reason -> Error reason
  | Ok ()
    when l2.index <> l1.index
         && (List.mem l1.index (Bw_ir.Ast_util.loop_indices l2.body)
            || List.mem l1.index (Bw_ir.Ast_util.vars_read l2.body)
            || List.mem l1.index (Bw_ir.Ast_util.vars_written l2.body)) ->
    (* renaming l2's index would capture this occurrence: a nested loop
       over l1.index, or a use of a scalar spelled like it *)
    Error "loop index rename would capture a name in the second body"
  | Ok () ->
    let body2 =
      Bw_ir.Ast_util.rename_scalar ~from:l2.index ~into:l1.index l2.body
    in
    if Bw_analysis.Depend.conformable l1 l2 then
      Ok { l1 with body = l1.body @ body2 }
    else begin
      match
        ( Bw_analysis.Depend.constant_bounds l1,
          Bw_analysis.Depend.constant_bounds l2 )
      with
      | Some (lo1, hi1, s1), Some (lo2, hi2, s2) ->
        if s1 <> s2 then Error "loop steps differ"
        else if s1 <> 1 && (lo1 - lo2) mod s1 <> 0 then
          Error "misaligned strides cannot be hull-fused"
        else begin
          let hull_lo = min lo1 lo2 and hull_hi = max hi1 hi2 in
          let g1 =
            guard_body ~index:l1.index ~lo:(Int_lit lo1) ~hi:(Int_lit hi1)
              ~hull_lo ~hull_hi l1.body
          in
          let g2 =
            guard_body ~index:l1.index ~lo:(Int_lit lo2) ~hi:(Int_lit hi2)
              ~hull_lo ~hull_hi body2
          in
          Ok
            { index = l1.index;
              lo = Int_lit hull_lo;
              hi = Int_lit hull_hi;
              step = l1.step;
              body = g1 @ g2 }
        end
      | _ -> Error "loop bounds are neither conformable nor constant"
    end

let split_at n list =
  let rec go i acc = function
    | rest when i = n -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (i + 1) (x :: acc) rest
  in
  go 0 [] list

let fuse_at (p : program) position =
  let before, rest = split_at position p.body in
  match rest with
  | For l1 :: For l2 :: after ->
    Result.map
      (fun fused -> { p with body = before @ (For fused :: after) })
      (fuse_adjacent l1 l2)
  | _ :: _ :: _ -> Error "fuse_at: both statements must be loops"
  | _ -> Error "fuse_at: position out of range"

let apply_plan (p : program) partitions =
  let order = List.concat partitions in
  match Toplevel.reorder p order with
  | Error _ as e -> e
  | Ok reordered ->
    (* positions in [reordered] corresponding to each partition *)
    let body = Array.of_list reordered.body in
    let fuse_group start len =
      if len = 1 then Ok body.(start)
      else
        (* left fold of pairwise fusion *)
        let rec go acc k =
          if k = start + len then Ok acc
          else
            match (acc, body.(k)) with
            | For l1, For l2 -> (
              match fuse_adjacent l1 l2 with
              | Ok fused -> go (For fused) (k + 1)
              | Error e -> Error e)
            | _ -> Error "apply_plan: partitions of size > 1 must be loops"
        in
        go body.(start) (start + 1)
    in
    let rec build idx = function
      | [] -> Ok []
      | part :: rest -> (
        let len = List.length part in
        if len = 0 then Error "apply_plan: empty partition"
        else
          match fuse_group idx len with
          | Error e -> Error e
          | Ok stmt -> (
            match build (idx + len) rest with
            | Ok stmts -> Ok (stmt :: stmts)
            | Error e -> Error e))
    in
    Result.map (fun body -> { p with body }) (build 0 partitions)

let greedy (p : program) =
  let rec sweep p pos =
    if pos + 1 >= List.length p.body then p
    else
      match fuse_at p pos with
      | Ok p' -> sweep p' pos
      | Error _ -> sweep p (pos + 1)
  in
  sweep p 0
