open Bw_ir

type t = {
  toplevel : int;
  statements : int;
  distinct_arrays : int;
  est_flops : float;
  est_bytes : float;
  predicted_balance : float;
}

let default_trips = Bw_analysis.Predict.default_trips

(* flops and element references of one expression, subscripts included *)
let expr_cost e =
  List.fold_left
    (fun (flops, elems) sub ->
      match sub with
      | Ast.Element _ -> (flops, elems + 1)
      | Ast.Binary _ | Ast.Unary _ | Ast.Call _ -> (flops + 1, elems)
      | _ -> (flops, elems))
    (0, 0) (Ast_util.subexprs e)

let rec cond_cost = function
  | Ast.Cmp (_, a, b) ->
    let fa, ea = expr_cost a and fb, eb = expr_cost b in
    (fa + fb + 1, ea + eb)
  | Ast.And (a, b) | Ast.Or (a, b) ->
    let fa, ea = cond_cost a and fb, eb = cond_cost b in
    (fa + fb, ea + eb)
  | Ast.Not c -> cond_cost c

let lvalue_cost = function
  | Ast.Lscalar _ -> (0, 0)
  | Ast.Lelement (_, subs) ->
    List.fold_left
      (fun (f, e) s ->
        let fs, es = expr_cost s in
        (f + fs, e + es))
      (0, 1) (* the store itself *)
      subs

(* Trip counts delegate to the predictor's interval analysis: constant
   bounds fold exactly as before, and the index environment lets the
   symbolic bounds Tile introduces resolve to the real tile extent
   instead of the default. *)
let rec stmts_cost env mult stmts acc =
  List.fold_left
    (fun (flops, bytes) s ->
      match s with
      | Ast.Assign (lv, e) ->
        let fe, ee = expr_cost e and fl, el = lvalue_cost lv in
        ( flops +. (mult *. float_of_int (fe + fl)),
          bytes +. (mult *. float_of_int (8 * (ee + el))) )
      | Ast.Read_input lv ->
        let fl, el = lvalue_cost lv in
        ( flops +. (mult *. float_of_int fl),
          bytes +. (mult *. float_of_int (8 * el)) )
      | Ast.Print e ->
        let fe, ee = expr_cost e in
        ( flops +. (mult *. float_of_int fe),
          bytes +. (mult *. float_of_int (8 * ee)) )
      | Ast.If (c, then_, else_) ->
        let fc, ec = cond_cost c in
        let acc =
          ( flops +. (mult *. float_of_int fc),
            bytes +. (mult *. float_of_int (8 * ec)) )
        in
        stmts_cost env mult else_ (stmts_cost env mult then_ acc)
      | Ast.For loop ->
        (* bound expressions evaluate once per entry, charged at [mult] *)
        let fb, eb =
          List.fold_left
            (fun (f, e) bound ->
              let fs, es = expr_cost bound in
              (f + fs, e + es))
            (0, 0)
            [ loop.Ast.lo; loop.Ast.hi; loop.Ast.step ]
        in
        let acc =
          ( flops +. (mult *. float_of_int fb),
            bytes +. (mult *. float_of_int (8 * eb)) )
        in
        let env' = Bw_analysis.Predict.bind_loop env loop in
        stmts_cost env'
          (mult *. Bw_analysis.Predict.trips env loop)
          loop.Ast.body acc)
    acc stmts

let of_program (p : Ast.program) =
  let est_flops, est_bytes =
    stmts_cost Bw_analysis.Predict.empty_env 1.0 p.Ast.body (0.0, 0.0)
  in
  { toplevel = List.length p.Ast.body;
    statements = Ast_util.stmt_count p.Ast.body;
    distinct_arrays = List.length (Ast_util.arrays_accessed p p.Ast.body);
    est_flops;
    est_bytes;
    predicted_balance = est_bytes /. Float.max 1.0 est_flops }

let span_attrs ~prefix t =
  [ (prefix ^ "toplevel", Bw_obs.Trace.Int t.toplevel);
    (prefix ^ "statements", Bw_obs.Trace.Int t.statements);
    (prefix ^ "distinct_arrays", Bw_obs.Trace.Int t.distinct_arrays);
    (prefix ^ "est_flops", Bw_obs.Trace.Float t.est_flops);
    (prefix ^ "est_bytes", Bw_obs.Trace.Float t.est_bytes);
    (prefix ^ "predicted_balance", Bw_obs.Trace.Float t.predicted_balance) ]
