(** The paper's end-to-end compiler strategy: fuse loops globally, then
    reduce storage (contract, shrink, peel), then eliminate the remaining
    write-backs.  Each stage is optional so the ablation benchmarks can
    switch pieces off.

    Every stage runs inside a {!Guard} transaction: its output is
    re-checked, its exceptions are confined, and (under a validating
    {!Guard.config}) its semantics are differentially validated on both
    execution engines — a failing stage is rolled back and the pipeline
    continues from the stage's input.  {!run} therefore never raises on
    a misbehaving pass and never returns a program that failed its
    checks; the worst case is returning the input unchanged. *)

type stage_report = {
  fused_loops : int;  (** top-level statements removed by fusion *)
  contracted : string list;
  shrink_plans : Shrink.plan list;
  stores_eliminated : string list;
  forwarded : int;  (** store sites whose uses were forwarded *)
}

type options = {
  fuse : bool;
  contract : bool;
  shrink : bool;
  store_elim : bool;
}

val all_on : options
val fusion_only : options

(** The guarded stages in pipeline order (["input"] first); each has a
    fault-injection site named [guard.<stage>]. *)
val stage_names : string list

(** [run ?options ?machine p] applies the pipeline, returning the
    transformed program and a report of what each stage did.  Runs under
    {!Guard.default_config}: no differential validation (and so no
    execution overhead), but per-stage checking and rollback — a result
    always type-checks provided [p] does, and a raising or
    check-breaking stage contributes nothing rather than aborting the
    run.

    The fusion stage scores its candidate with the analytic tier of the
    tiered evaluator ({!Bw_exec.Evaluate} at [Microseconds] budget) on
    [machine] (default {!Bw_machine.Machine.origin2000}) and keeps the
    fused program only if the model predicts no memory-traffic
    regression beyond 5%; decisions are counted in {!Bw_obs.Metrics}
    under [pass.fuse.analytic_accept] / [pass.fuse.analytic_reject].

    [fuse_search], when given, replaces the greedy adjacent-fusion
    sweep with a search-based fusion engine (typically
    [Bw_fusion.Search.stage], injected as a closure so this library
    stays independent of [bw_fusion]).  It runs in its own guarded
    stage ["fuse_search"] (fault site [guard.fuse_search]) behind the
    same 5% analytic gate; decisions are counted under
    [pass.fuse_search.analytic_accept] /
    [pass.fuse_search.analytic_reject].  The closure must be total —
    return its argument to decline. *)
val run :
  ?options:options ->
  ?machine:Bw_machine.Machine.t ->
  ?fuse_search:(Bw_ir.Ast.program -> Bw_ir.Ast.program) ->
  Bw_ir.Ast.program ->
  Bw_ir.Ast.program * stage_report

(** [run_guarded ?options ?guard ?machine p] additionally returns the
    guard's per-stage events (commits and rollbacks, in pipeline order)
    and honours a custom {!Guard.config} — differential validation
    trials, float tolerance, a fuel budget, and fail-fast mode.
    @raise Guard.Guard_failed on the first stage failure when
    [guard.rollback] is [false]. *)
val run_guarded :
  ?options:options ->
  ?guard:Guard.config ->
  ?machine:Bw_machine.Machine.t ->
  ?fuse_search:(Bw_ir.Ast.program -> Bw_ir.Ast.program) ->
  Bw_ir.Ast.program ->
  Bw_ir.Ast.program * stage_report * Guard.event list

val pp_report : Format.formatter -> stage_report -> unit
