open Bw_ir

type failure =
  | Check_failed of string
  | Lint_failed of string
  | Validation_failed of string
  | Exception of string
  | Budget_exhausted of string

type verdict = Committed | Rolled_back of failure

type event = { stage : string; verdict : verdict }

type config = {
  validate : int;
  lint : bool;
  tolerance : float;
  rollback : bool;
  fuel : int option;
}

let default_config =
  { validate = 0; lint = false; tolerance = 1e-9; rollback = true; fuel = None }

exception Guard_failed of event list

type t = {
  cfg : config;
  mutable fuel_left : int option;
  mutable rev_events : event list;
}

let create cfg = { cfg; fuel_left = cfg.fuel; rev_events = [] }
let config t = t.cfg
let events t = List.rev t.rev_events

let rollbacks t =
  List.length
    (List.filter
       (fun e -> match e.verdict with Rolled_back _ -> true | _ -> false)
       t.rev_events)

let fuel_left t = t.fuel_left

(* --- fuel ------------------------------------------------------------- *)

exception Out_of_fuel of string

let charge t ~what n =
  match t.fuel_left with
  | None -> ()
  | Some left ->
    if left < n then
      raise
        (Out_of_fuel
           (Printf.sprintf "%s needs %d step(s), only %d left" what n left))
    else t.fuel_left <- Some (left - n)

(* --- corruption ------------------------------------------------------- *)

(* Offset the first assignment's RHS by one.  The result still
   type-checks (the offset literal matches the destination's declared
   type), but any live assignment now computes a different value — the
   kind of silent miscompilation differential validation exists to
   catch. *)
let corrupt_program (p : Ast.program) =
  let dtype_of name =
    match Ast.find_decl p name with
    | Some d -> d.Ast.dtype
    | None -> Ast.F64 (* unreachable on checked programs *)
  in
  let done_ = ref false in
  let rec corrupt_stmt s =
    if !done_ then s
    else
      match s with
      | Ast.Assign (lv, rhs) ->
        done_ := true;
        let bump =
          match dtype_of (Ast.lvalue_name lv) with
          | Ast.F64 -> Ast.Float_lit 1.0
          | Ast.I64 -> Ast.Int_lit 1
        in
        Ast.Assign (lv, Ast.Binary (Ast.Add, rhs, bump))
      | Ast.If (c, th, el) ->
        let th = List.map corrupt_stmt th in
        let el = List.map corrupt_stmt el in
        Ast.If (c, th, el)
      | Ast.For l -> Ast.For { l with Ast.body = List.map corrupt_stmt l.Ast.body }
      | (Ast.Read_input _ | Ast.Print _) as s -> s
  in
  let body = List.map corrupt_stmt p.Ast.body in
  if !done_ then Some { p with Ast.body } else None

(* --- differential validation ------------------------------------------ *)

let uses_input (p : Ast.program) =
  Ast_util.fold_stmts
    (fun acc s -> acc || match s with Ast.Read_input _ -> true | _ -> false)
    false p.Ast.body

(* Distinct but deterministic read() streams per trial. *)
let trial_offset k = k * 7919

let run_observation ~engine ~input_offset p =
  match engine with
  | `Interpreted -> Bw_exec.Interp.run ~input_offset p
  | `Compiled -> Bw_exec.Compile.run ~input_offset p

let validate_programs ~trials ~tolerance ~before ~after ~charge_fuel =
  (* Programs without read() see identical inputs every trial, so one
     trial already covers them. *)
  let trials = if uses_input before then max 1 trials else 1 in
  let close = Bw_exec.Interp.close_observation ~tol:tolerance in
  let exec_or_err ~engine ~what ~input_offset p =
    match run_observation ~engine ~input_offset p with
    | o -> Ok o
    | exception Bw_exec.Interp.Runtime_error msg ->
      Error (Printf.sprintf "%s raised Runtime_error: %s" what msg)
    | exception Bw_exec.Compile.Runtime_error msg ->
      Error (Printf.sprintf "%s raised Runtime_error: %s" what msg)
    | exception Invalid_argument msg ->
      Error (Printf.sprintf "%s rejected: %s" what msg)
  in
  let rec trial k =
    if k >= trials then Ok ()
    else begin
      charge_fuel ~trial:k;
      let input_offset = trial_offset k in
      let ( let* ) = Result.bind in
      let* oracle =
        exec_or_err ~engine:`Interpreted ~what:"input program (interp)"
          ~input_offset before
      in
      let* after_interp =
        exec_or_err ~engine:`Interpreted ~what:"transformed program (interp)"
          ~input_offset after
      in
      let* before_compiled =
        exec_or_err ~engine:`Compiled ~what:"input program (compiled)"
          ~input_offset before
      in
      let* after_compiled =
        exec_or_err ~engine:`Compiled ~what:"transformed program (compiled)"
          ~input_offset after
      in
      let mismatch who =
        Error
          (Printf.sprintf
             "trial %d (input offset %d): %s disagrees with the interpreted \
              input program"
             k input_offset who)
      in
      if not (close oracle after_interp) then mismatch "transformed (interp)"
      else if not (close oracle before_compiled) then mismatch "input (compiled)"
      else if not (close oracle after_compiled) then
        mismatch "transformed (compiled)"
      else trial (k + 1)
    end
  in
  trial 0

let validate_pair ?(trials = 1) ?(tolerance = 1e-9) ~before ~after () =
  validate_programs ~trials ~tolerance ~before ~after
    ~charge_fuel:(fun ~trial:_ -> ())

(* --- the transaction -------------------------------------------------- *)

let failure_kind = function
  | Check_failed _ -> "check_failures"
  | Lint_failed _ -> "lint_failures"
  | Validation_failed _ -> "validation_failures"
  | Exception _ -> "exceptions"
  | Budget_exhausted _ -> "budget_exhausted"

let failure_message = function
  | Check_failed m | Lint_failed m | Validation_failed m | Exception m
  | Budget_exhausted m ->
    m

let count stage name =
  Bw_obs.Metrics.incr
    (Bw_obs.Metrics.counter (Printf.sprintf "guard.%s.%s" stage name))

let record t ev =
  t.rev_events <- ev :: t.rev_events;
  (match ev.verdict with
  | Committed -> count ev.stage "commits"
  | Rolled_back f ->
    count ev.stage "rollbacks";
    count ev.stage (failure_kind f));
  ev

let render_check_errors es =
  String.concat "; "
    (List.map (fun e -> Format.asprintf "%a" Check.pp_error e) es)

let stage t ~name ~default f p =
  let site = "guard." ^ name in
  let span =
    Bw_obs.Trace.start ~cat:"guard"
      ~attrs:[ ("stage", Bw_obs.Trace.Str name) ]
      ("guard:" ^ name)
  in
  let stmts = Ast_util.stmt_count p.Ast.body in
  let outcome =
    try
      charge t ~what:(Printf.sprintf "stage %s" name) (max 1 stmts);
      let fault = Bw_obs.Fault.check site in
      (match fault with
      | Some Bw_obs.Fault.Raise -> raise (Bw_obs.Fault.Injected site)
      | _ -> ());
      let p', aux = f p in
      let p' =
        match fault with
        | Some Bw_obs.Fault.Corrupt -> (
          match corrupt_program p' with
          | Some bad -> bad
          | None -> raise (Bw_obs.Fault.Injected site))
        | _ -> p'
      in
      match Check.check p' with
      | Error es -> Error (Check_failed (render_check_errors es))
      | Ok () -> (
        match
          if not t.cfg.lint then []
          else Bw_analysis.Preserve.lint ~before:p ~after:p'
        with
        | _ :: _ as vs ->
          Error
            (Lint_failed
               (Format.asprintf "@[<h>%a@]"
                  (Format.pp_print_list
                     ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
                     Bw_analysis.Preserve.pp_violation)
                  vs))
        | [] ->
          if t.cfg.validate <= 0 then Ok (p', aux)
        else begin
          let charge_fuel ~trial =
            charge t
              ~what:(Printf.sprintf "stage %s validation trial %d" name trial)
              (4 * max 1 stmts)
          in
          match
            validate_programs ~trials:t.cfg.validate
              ~tolerance:t.cfg.tolerance ~before:p ~after:p' ~charge_fuel
          with
          | Ok () -> Ok (p', aux)
          | Error msg -> Error (Validation_failed msg)
        end)
    with
    | Out_of_fuel msg -> Error (Budget_exhausted msg)
    | e -> Error (Exception (Printexc.to_string e))
  in
  match outcome with
  | Ok (p', aux) ->
    ignore (record t { stage = name; verdict = Committed });
    Bw_obs.Trace.finish
      ~attrs:[ ("verdict", Bw_obs.Trace.Str "committed") ]
      span;
    (p', aux)
  | Error failure ->
    ignore (record t { stage = name; verdict = Rolled_back failure });
    Bw_obs.Trace.finish
      ~attrs:
        [ ("verdict", Bw_obs.Trace.Str "rolled_back");
          ("failure", Bw_obs.Trace.Str (failure_kind failure));
          ("detail", Bw_obs.Trace.Str (failure_message failure)) ]
      span;
    if t.cfg.rollback then (p, default) else raise (Guard_failed (events t))

(* --- reporting -------------------------------------------------------- *)

let pp_failure ppf = function
  | Check_failed m -> Format.fprintf ppf "IR check failed: %s" m
  | Lint_failed m -> Format.fprintf ppf "preservation lint failed: %s" m
  | Validation_failed m -> Format.fprintf ppf "validation failed: %s" m
  | Exception m -> Format.fprintf ppf "exception: %s" m
  | Budget_exhausted m -> Format.fprintf ppf "fuel exhausted: %s" m

let pp_event ppf { stage; verdict } =
  match verdict with
  | Committed -> Format.fprintf ppf "stage %-13s committed" stage
  | Rolled_back f ->
    Format.fprintf ppf "stage %-13s ROLLED BACK (%a)" stage pp_failure f

let pp_report ppf events =
  let rolled =
    List.length
      (List.filter
         (fun e -> match e.verdict with Rolled_back _ -> true | _ -> false)
         events)
  in
  Format.fprintf ppf "@[<v>%a@,guard: %d stage(s), %d committed, %d rolled back@]"
    (Format.pp_print_list pp_event)
    events
    (List.length events)
    (List.length events - rolled)
    rolled
