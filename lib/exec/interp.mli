(** Checked interpreter for IR programs.

    Arrays are stored column-major (Fortran order, matching the paper's
    loop nests, where [For j / For i ... a[i,j]] is a stride-1 sweep) and
    subscripts are 1-based.  Every array access is bounds-checked.

    The interpreter reports two kinds of outcome:

    - an {!observation} — the program's observable behaviour (values
      printed plus final contents of [live_out] variables), used to verify
      that a transformed program behaves identically to the original;
    - a stream of machine events (loads, stores, flops) delivered to a
      {!sink}, used to drive the cache simulator and the counters.

    Scalars are treated as register-allocated: reading or writing one
    produces no memory event, matching the balance model's accounting
    where only array traffic reaches the memory hierarchy. *)

exception Runtime_error of string

type value = V_int of int | V_float of float

val pp_value : Format.formatter -> value -> unit

type observation = {
  prints : value list;
  finals : (string * value array) list Lazy.t;
      (** final contents of each [live_out] variable, in declaration
          order; scalars are singleton arrays.  Lazy: forcing boxes a
          {!value} per element, a significant cost on large arrays that
          pure-simulation consumers never pay *)
}

(** Exact structural equality of observations. *)
val equal_observation : observation -> observation -> bool

(** Equality up to an absolute/relative tolerance on floats, for
    transformations that reassociate arithmetic. *)
val close_observation : ?tol:float -> observation -> observation -> bool

val pp_observation : Format.formatter -> observation -> unit

(** Destination of the machine-event stream.  Loads and stores are
    appended to a preallocated {!Bw_machine.Trace_buffer} with plain int
    writes — the engines pay no closure call per memory reference — and
    the buffer's [on_full] handler consumes them in batches.  Flop and
    integer-op tallies are plain mutable counters. *)
type sink = {
  trace : Bw_machine.Trace_buffer.t;
  mutable flops : int;
  mutable int_ops : int;
}

(** [make_sink ~on_trace ()] builds a sink whose trace buffer drains
    through [on_trace] (on overflow and on {!flush_sink}). *)
val make_sink :
  ?capacity:int -> on_trace:(Bw_machine.Trace_buffer.t -> unit) -> unit -> sink

(** A sink that discards memory events but still tallies flops/int ops.
    Fresh per call: sinks are single-owner mutable state, so sharing one
    across concurrent runs (e.g. domains) would race. *)
val discard_sink : unit -> sink

(** Drain any events still buffered in the sink's trace.  Run after the
    engine returns — the last partial batch lives here. *)
val flush_sink : sink -> unit

(** [run ?sink ?base_of program] executes [program] (which must pass
    {!Bw_ir.Check.check}; the interpreter re-checks and raises
    [Invalid_argument] otherwise).

    [base_of] gives each array's base virtual address for event
    generation; it defaults to a packed layout.  Addresses of events are
    virtual — callers apply their own translation.

    [input_offset] starts the deterministic [read()] stream at that
    counter value instead of 0, giving differential-validation trials
    distinct (but reproducible) input sets.  Both engines honour it
    identically.

    @raise Runtime_error on out-of-bounds subscripts, non-positive steps,
    division by zero, or reading an undeclared input. *)
val run :
  ?sink:sink ->
  ?base_of:(string -> int) ->
  ?input_offset:int ->
  Bw_ir.Ast.program ->
  observation

(** The deterministic semantics shared with {!Compile}: the opaque
    intrinsic function, initial element values, and the [read()] input
    stream.  Exposed so alternative engines reproduce runs bit-exactly. *)

val intrinsic : string -> float list -> float

(** [init_value init dtype k] is the initial value of element [k]. *)
val init_value : Bw_ir.Ast.init -> Bw_ir.Ast.dtype -> int -> value

(** Bulk unboxed initialisation: [init_float_array init size] equals
    [Array.init size (fun k -> init_value init F64 k)] element for
    element, without boxing a {!value} per element.  Shared by both
    execution engines so their storage is bit-identical. *)
val init_float_array : Bw_ir.Ast.init -> int -> float array

(** Integer counterpart of {!init_float_array}. *)
val init_int_array : Bw_ir.Ast.init -> int -> int array

(** [input_value counter dtype] is the [counter]-th [read()] value. *)
val input_value : int -> Bw_ir.Ast.dtype -> value
