(* Work-stealing parallel map over domains.  See pool.mli. *)

let default_jobs () = Domain.recommended_domain_count ()

let map ?jobs ?(on_claim = fun _ -> ()) ?retry f items =
  let n = Array.length items in
  let retry = match retry with Some r -> r | None -> fun _ x -> f x in
  let jobs =
    match jobs with
    | Some j -> max 1 j
    | None -> min (default_jobs ()) n
  in
  if jobs <= 1 || n <= 1 then Array.map f items
  else begin
    let results = Array.make n None in
    (* Work-stealing by atomic counter: each slot is written by exactly
       one domain, and the joins below publish the writes before the
       calling domain reads them. *)
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          on_claim i;
          results.(i) <- Some (f items.(i));
          go ()
        end
      in
      go ()
    in
    let domains = Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    (* The calling domain is a worker too; a dying domain (injected
       fault, asynchronous exception) must not take the map down — its
       claimed-but-unfinished slots are swept up below. *)
    (try worker () with _ -> ());
    Array.iter (fun d -> try Domain.join d with _ -> ()) domains;
    Array.mapi
      (fun i -> function Some r -> r | None -> retry i items.(i))
      results
  end

(* --- persistent task pool ------------------------------------------------- *)

(* Long-running worker domains draining a shared queue.  The queue and
   every future are guarded by one mutex each; submission and
   completion are signalled through condition variables, which work
   across domains and threads alike — the serve daemon submits from
   per-connection threads and awaits there while worker domains
   execute. *)

type task = Task : (unit -> 'a) * 'a future -> task

and 'a future = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable state : 'a state;
}

and 'a state = Pending | Done of 'a | Failed of exn

type t = {
  m : Mutex.t;
  c : Condition.t;
  queue : task Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
  pool_jobs : int;
}

let fulfill fut v =
  Mutex.lock fut.fm;
  fut.state <- v;
  Condition.broadcast fut.fc;
  Mutex.unlock fut.fm

let worker_loop pool () =
  let rec go () =
    Mutex.lock pool.m;
    while Queue.is_empty pool.queue && not pool.stopping do
      Condition.wait pool.c pool.m
    done;
    if Queue.is_empty pool.queue && pool.stopping then Mutex.unlock pool.m
    else begin
      let (Task (f, fut)) = Queue.pop pool.queue in
      Mutex.unlock pool.m;
      (match f () with
      | v -> fulfill fut (Done v)
      | exception e -> fulfill fut (Failed e));
      go ()
    end
  in
  go ()

let create ?jobs () =
  let jobs =
    match jobs with Some j -> max 1 j | None -> max 1 (default_jobs () - 1)
  in
  let pool =
    { m = Mutex.create ();
      c = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [||];
      pool_jobs = jobs }
  in
  pool.workers <- Array.init jobs (fun _ -> Domain.spawn (worker_loop pool));
  pool

let jobs pool = pool.pool_jobs

let submit pool f =
  let fut = { fm = Mutex.create (); fc = Condition.create (); state = Pending } in
  Mutex.lock pool.m;
  if pool.stopping then begin
    Mutex.unlock pool.m;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push (Task (f, fut)) pool.queue;
  Condition.signal pool.c;
  Mutex.unlock pool.m;
  fut

let await fut =
  Mutex.lock fut.fm;
  let pending () = match fut.state with Pending -> true | _ -> false in
  while pending () do
    Condition.wait fut.fc fut.fm
  done;
  let r = fut.state in
  Mutex.unlock fut.fm;
  match r with
  | Done v -> Ok v
  | Failed e -> Error e
  | Pending -> assert false

let await_exn fut = match await fut with Ok v -> v | Error e -> raise e

let run pool f = await_exn (submit pool f)

let shutdown pool =
  Mutex.lock pool.m;
  pool.stopping <- true;
  Condition.broadcast pool.c;
  Mutex.unlock pool.m;
  Array.iter (fun d -> try Domain.join d with _ -> ()) pool.workers
