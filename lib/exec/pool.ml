(* Work-stealing parallel map over domains.  See pool.mli. *)

let default_jobs () = Domain.recommended_domain_count ()

let map ?jobs ?(on_claim = fun _ -> ()) ?retry f items =
  let n = Array.length items in
  let retry = match retry with Some r -> r | None -> fun _ x -> f x in
  let jobs =
    match jobs with
    | Some j -> max 1 j
    | None -> min (default_jobs ()) n
  in
  if jobs <= 1 || n <= 1 then Array.map f items
  else begin
    let results = Array.make n None in
    (* Work-stealing by atomic counter: each slot is written by exactly
       one domain, and the joins below publish the writes before the
       calling domain reads them. *)
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          on_claim i;
          results.(i) <- Some (f items.(i));
          go ()
        end
      in
      go ()
    in
    let domains = Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    (* The calling domain is a worker too; a dying domain (injected
       fault, asynchronous exception) must not take the map down — its
       claimed-but-unfinished slots are swept up below. *)
    (try worker () with _ -> ());
    Array.iter (fun d -> try Domain.join d with _ -> ()) domains;
    Array.mapi
      (fun i -> function Some r -> r | None -> retry i items.(i))
      results
  end

(* --- persistent task pool ------------------------------------------------- *)

(* Long-running worker domains draining a shared queue.  The queue and
   every future are guarded by one mutex each; submission and
   completion are signalled through condition variables, which work
   across domains and threads alike — the serve daemon submits from
   per-connection threads and awaits there while worker domains
   execute. *)

type task = Task : (unit -> 'a) * 'a future -> task

and 'a future = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable state : 'a state;
}

and 'a state = Pending | Done of 'a | Failed of exn

type t = {
  m : Mutex.t;
  c : Condition.t;
  queue : task Queue.t;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
  pool_jobs : int;
}

exception Worker_crashed of string

let crash_site = "pool.worker.crash"

let () =
  Bw_obs.Fault.declare
    ~doc:"Kill a persistent-pool worker domain at task pickup (serve chaos)"
    crash_site

let respawns_c = Bw_obs.Metrics.counter "pool.worker.respawns"

let fulfill fut v =
  Mutex.lock fut.fm;
  fut.state <- v;
  Condition.broadcast fut.fc;
  Mutex.unlock fut.fm

let fulfill_if_pending fut v =
  Mutex.lock fut.fm;
  (match fut.state with
  | Pending ->
    fut.state <- v;
    Condition.broadcast fut.fc
  | Done _ | Failed _ -> ());
  Mutex.unlock fut.fm

let one_line e =
  match String.index_opt (Printexc.to_string e) '\n' with
  | None -> Printexc.to_string e
  | Some i -> String.sub (Printexc.to_string e) 0 i

let worker_loop pool current () =
  let rec go () =
    Mutex.lock pool.m;
    while Queue.is_empty pool.queue && not pool.stopping do
      Condition.wait pool.c pool.m
    done;
    if Queue.is_empty pool.queue && pool.stopping then Mutex.unlock pool.m
    else begin
      let (Task (f, fut) as task) = Queue.pop pool.queue in
      current := Some task;
      Mutex.unlock pool.m;
      (* The crash site is crossed after claiming a task but outside the
         per-task confinement below: a fired [Raise] escapes the loop
         and kills the whole domain with the future still pending,
         which is exactly the failure mode supervision exists for. *)
      (match Bw_obs.Fault.check crash_site with
      | Some (Bw_obs.Fault.Delay ms) -> Bw_obs.Fault.sleep_ms ms
      | Some (Bw_obs.Fault.Raise | Bw_obs.Fault.Corrupt) ->
        raise (Bw_obs.Fault.Injected crash_site)
      | None -> ());
      (match f () with
      | v -> fulfill fut (Done v)
      | exception e -> fulfill fut (Failed e));
      current := None;
      go ()
    end
  in
  go ()

(* Supervision: each domain runs [worker_loop] under a handler that
   turns a domain death into (a) failing only the in-flight future and
   (b) spawning a replacement, so a crashed worker never silently
   shrinks the pool.  The replacement is registered under [pool.m] so
   [shutdown] joins it too; no exception ever reaches [Domain.join]. *)
let rec supervised pool () =
  let current = ref None in
  match worker_loop pool current () with
  | () -> ()
  | exception e ->
    (match !current with
    | Some (Task (_, fut)) ->
      fulfill_if_pending fut
        (Failed (Worker_crashed (Printf.sprintf "worker domain died: %s" (one_line e))))
    | None -> ());
    Bw_obs.Metrics.incr respawns_c;
    Mutex.lock pool.m;
    let respawn = (not pool.stopping) || not (Queue.is_empty pool.queue) in
    if respawn then pool.domains <- Domain.spawn (supervised pool) :: pool.domains;
    Mutex.unlock pool.m

let create ?jobs () =
  let jobs =
    match jobs with Some j -> max 1 j | None -> max 1 (default_jobs () - 1)
  in
  let pool =
    { m = Mutex.create ();
      c = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      domains = [];
      pool_jobs = jobs }
  in
  pool.domains <- List.init jobs (fun _ -> Domain.spawn (supervised pool));
  pool

let jobs pool = pool.pool_jobs

let pending pool =
  Mutex.lock pool.m;
  let n = Queue.length pool.queue in
  Mutex.unlock pool.m;
  n

let submit pool f =
  let fut = { fm = Mutex.create (); fc = Condition.create (); state = Pending } in
  Mutex.lock pool.m;
  if pool.stopping then begin
    Mutex.unlock pool.m;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push (Task (f, fut)) pool.queue;
  Condition.signal pool.c;
  Mutex.unlock pool.m;
  fut

let await fut =
  Mutex.lock fut.fm;
  let pending () = match fut.state with Pending -> true | _ -> false in
  while pending () do
    Condition.wait fut.fc fut.fm
  done;
  let r = fut.state in
  Mutex.unlock fut.fm;
  match r with
  | Done v -> Ok v
  | Failed e -> Error e
  | Pending -> assert false

let await_exn fut = match await fut with Ok v -> v | Error e -> raise e

let run pool f = await_exn (submit pool f)

let shutdown pool =
  Mutex.lock pool.m;
  pool.stopping <- true;
  Condition.broadcast pool.c;
  Mutex.unlock pool.m;
  (* A worker crashing during the drain still respawns (so queued
     futures get fulfilled), so the domain list can grow while we join:
     keep taking snapshots until no unjoined domain remains. *)
  let joined = ref [] in
  let rec drain () =
    Mutex.lock pool.m;
    let fresh = List.filter (fun d -> not (List.memq d !joined)) pool.domains in
    Mutex.unlock pool.m;
    match fresh with
    | [] -> ()
    | ds ->
      List.iter
        (fun d ->
          (try Domain.join d with _ -> ());
          joined := d :: !joined)
        ds;
      drain ()
  in
  drain ()
