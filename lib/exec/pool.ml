(* Work-stealing parallel map over domains.  See pool.mli. *)

let default_jobs () = Domain.recommended_domain_count ()

let map ?jobs ?(on_claim = fun _ -> ()) ?retry f items =
  let n = Array.length items in
  let retry = match retry with Some r -> r | None -> fun _ x -> f x in
  let jobs =
    match jobs with
    | Some j -> max 1 j
    | None -> min (default_jobs ()) n
  in
  if jobs <= 1 || n <= 1 then Array.map f items
  else begin
    let results = Array.make n None in
    (* Work-stealing by atomic counter: each slot is written by exactly
       one domain, and the joins below publish the writes before the
       calling domain reads them. *)
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          on_claim i;
          results.(i) <- Some (f items.(i));
          go ()
        end
      in
      go ()
    in
    let domains = Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    (* The calling domain is a worker too; a dying domain (injected
       fault, asynchronous exception) must not take the map down — its
       claimed-but-unfinished slots are swept up below. *)
    (try worker () with _ -> ());
    Array.iter (fun d -> try Domain.join d with _ -> ()) domains;
    Array.mapi
      (fun i -> function Some r -> r | None -> retry i items.(i))
      results
  end
