open Bw_ir.Ast

exception Runtime_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Runtime_error m)) fmt

type storage = F_data of float array | I_data of int array

type var = {
  decl : decl;
  data : storage;
  base : int;
  dims : int array;
  strides : int array;
}

type ctx = {
  vars : (string, var) Hashtbl.t;
  indices : (string, int ref) Hashtbl.t;
  sink : Interp.sink;
  mutable input_counter : int;
  mutable prints : Interp.value list;
}

let column_major_strides dims =
  let n = Array.length dims in
  let strides = Array.make n 1 in
  for k = 1 to n - 1 do
    strides.(k) <- strides.(k - 1) * dims.(k - 1)
  done;
  strides

let find_var ctx name =
  match Hashtbl.find_opt ctx.vars name with
  | Some v -> v
  | None -> fail "undeclared variable '%s'" name

(* [a[i]] with a 1-D array and a loop-index subscript is by far the most
   executed reference shape; recognise it so the whole access — index
   read, bounds check, flat offset — is one closure instead of a chain
   of three.  Returns the index cell when the shape matches. *)
let index_cell_1d ctx var idxs =
  match idxs with
  | [ Scalar s ] when Array.length var.dims = 1 ->
    Hashtbl.find_opt ctx.indices s
  | _ -> None

(* static type of an expression, used to pick the compilation scheme *)
let rec typeof ctx = function
  | Int_lit _ -> I64
  | Float_lit _ -> F64
  | Scalar s ->
    if Hashtbl.mem ctx.indices s then I64 else (find_var ctx s).decl.dtype
  | Element (a, _) -> (find_var ctx a).decl.dtype
  | Unary ((Neg | Abs), e) -> typeof ctx e
  | Unary (Sqrt, _) | Unary (Int_to_float, _) -> F64
  | Binary (Mod, _, _) -> I64
  | Binary (_, a, _) -> typeof ctx a
  | Call _ -> F64

(* offset closure for an array reference, with bounds checks *)
let compile_offset var idx_closures =
  let dims = var.dims and strides = var.strides in
  let n = Array.length dims in
  if Array.length idx_closures <> n then
    fail "array '%s': wrong subscript count" var.decl.var_name;
  if n = 1 then begin
    (* the common case; stride 0 is always 1 in column-major order *)
    let d0 = dims.(0) and c0 = idx_closures.(0) in
    let name = var.decl.var_name in
    fun () ->
      let idx = c0 () in
      if idx < 1 || idx > d0 then
        fail "array '%s': subscript 1 = %d out of bounds [1,%d]" name idx d0;
      idx - 1
  end
  else
    fun () ->
    let offset = ref 0 in
    for k = 0 to n - 1 do
      let idx = idx_closures.(k) () in
      if idx < 1 || idx > dims.(k) then
        fail "array '%s': subscript %d = %d out of bounds [1,%d]"
          var.decl.var_name (k + 1) idx dims.(k);
      offset := !offset + ((idx - 1) * strides.(k))
    done;
    !offset

let rec compile_int ctx e : unit -> int =
  match e with
  | Int_lit n -> fun () -> n
  | Scalar s -> (
    match Hashtbl.find_opt ctx.indices s with
    | Some cell -> fun () -> !cell
    | None -> (
      let var = find_var ctx s in
      match var.data with
      | I_data a -> fun () -> a.(0)
      | F_data _ -> fail "scalar '%s' is not an integer" s))
  | Element (a, idxs) -> (
    let var = find_var ctx a in
    let trace = ctx.sink.Interp.trace in
    let base = var.base in
    match var.data with
    | I_data data -> (
      match index_cell_1d ctx var idxs with
      | Some cell ->
        let d0 = var.dims.(0) in
        fun () ->
          let idx = !cell in
          if idx < 1 || idx > d0 then
            fail "array '%s': subscript 1 = %d out of bounds [1,%d]" a idx d0;
          let o = idx - 1 in
          Bw_machine.Trace_buffer.load trace ~addr:(base + (o * 8)) ~bytes:8;
          Array.unsafe_get data o
      | None ->
        let offset =
          compile_offset var
            (Array.of_list (List.map (compile_int ctx) idxs))
        in
        fun () ->
          let o = offset () in
          Bw_machine.Trace_buffer.load trace ~addr:(base + (o * 8)) ~bytes:8;
          Array.unsafe_get data o)
    | F_data _ -> fail "array '%s' is not an integer array" a)
  | Unary (Neg, x) ->
    let cx = compile_int ctx x in
    let sink = ctx.sink in
    fun () ->
      sink.Interp.int_ops <- sink.Interp.int_ops + 1;
      -cx ()
  | Unary (Abs, x) ->
    let cx = compile_int ctx x in
    let sink = ctx.sink in
    fun () ->
      sink.Interp.int_ops <- sink.Interp.int_ops + 1;
      abs (cx ())
  | Binary (op, a, b) ->
    let ca = compile_int ctx a and cb = compile_int ctx b in
    let sink = ctx.sink in
    let f =
      match op with
      | Add -> ( + )
      | Sub -> ( - )
      | Mul -> ( * )
      | Div ->
        fun x y -> if y = 0 then fail "integer division by zero" else x / y
      | Mod ->
        fun x y -> if y = 0 then fail "integer modulo by zero" else x mod y
      | Min -> min
      | Max -> max
    in
    fun () ->
      sink.Interp.int_ops <- sink.Interp.int_ops + 1;
      f (ca ()) (cb ())
  | Float_lit _ | Unary ((Sqrt | Int_to_float), _) | Call _ ->
    fail "expected an integer expression"

let rec compile_float ctx e : unit -> float =
  match e with
  | Float_lit x -> fun () -> x
  | Scalar s -> (
    let var = find_var ctx s in
    match var.data with
    | F_data a -> fun () -> a.(0)
    | I_data _ -> fail "scalar '%s' is not a float" s)
  | Element (a, idxs) -> (
    let var = find_var ctx a in
    let trace = ctx.sink.Interp.trace in
    let base = var.base in
    match var.data with
    | F_data data -> (
      match index_cell_1d ctx var idxs with
      | Some cell ->
        let d0 = var.dims.(0) in
        fun () ->
          let idx = !cell in
          if idx < 1 || idx > d0 then
            fail "array '%s': subscript 1 = %d out of bounds [1,%d]" a idx d0;
          let o = idx - 1 in
          Bw_machine.Trace_buffer.load trace ~addr:(base + (o * 8)) ~bytes:8;
          Array.unsafe_get data o
      | None ->
        let offset =
          compile_offset var
            (Array.of_list (List.map (compile_int ctx) idxs))
        in
        fun () ->
          let o = offset () in
          Bw_machine.Trace_buffer.load trace ~addr:(base + (o * 8)) ~bytes:8;
          Array.unsafe_get data o)
    | I_data _ -> fail "array '%s' is not a float array" a)
  | Unary (Neg, x) ->
    let cx = compile_float ctx x in
    let sink = ctx.sink in
    fun () ->
      sink.Interp.flops <- sink.Interp.flops + 1;
      -.cx ()
  | Unary (Abs, x) ->
    let cx = compile_float ctx x in
    let sink = ctx.sink in
    fun () ->
      sink.Interp.flops <- sink.Interp.flops + 1;
      Float.abs (cx ())
  | Unary (Sqrt, x) ->
    let cx = compile_float ctx x in
    let sink = ctx.sink in
    fun () ->
      sink.Interp.flops <- sink.Interp.flops + 1;
      sqrt (cx ())
  | Unary (Int_to_float, x) ->
    let cx = compile_int ctx x in
    let sink = ctx.sink in
    fun () ->
      sink.Interp.int_ops <- sink.Interp.int_ops + 1;
      float_of_int (cx ())
  | Binary (Mod, _, _) -> fail "mod of floats"
  | Binary (op, a, b) ->
    let f =
      match op with
      | Add -> ( +. )
      | Sub -> ( -. )
      | Mul -> ( *. )
      | Div -> ( /. )
      | Min -> Float.min
      | Max -> Float.max
      | Mod -> assert false
    in
    let sink = ctx.sink in
    (* constant operands skip a closure call per evaluation; note the
       generic case evaluates [b] before [a] (OCaml argument order), so
       the specialisations must not reorder any effects — a literal has
       none *)
    (match (a, b) with
    | _, Float_lit y ->
      let ca = compile_float ctx a in
      fun () ->
        sink.Interp.flops <- sink.Interp.flops + 1;
        f (ca ()) y
    | Float_lit x, _ ->
      let cb = compile_float ctx b in
      fun () ->
        sink.Interp.flops <- sink.Interp.flops + 1;
        f x (cb ())
    | _ ->
      let ca = compile_float ctx a and cb = compile_float ctx b in
      fun () ->
        sink.Interp.flops <- sink.Interp.flops + 1;
        f (ca ()) (cb ()))
  | Call (name, args) ->
    let cargs = List.map (compile_float ctx) args in
    let sink = ctx.sink in
    fun () ->
      let xs = List.map (fun c -> c ()) cargs in
      sink.Interp.flops <- sink.Interp.flops + 1;
      Interp.intrinsic name xs
  | Int_lit _ -> fail "expected a float expression"

let rec compile_cond ctx c : unit -> bool =
  match c with
  | Cmp (op, a, b) ->
    let cmp c =
      match op with
      | Eq -> c = 0
      | Ne -> c <> 0
      | Lt -> c < 0
      | Le -> c <= 0
      | Gt -> c > 0
      | Ge -> c >= 0
    in
    (match typeof ctx a with
    | I64 ->
      let ca = compile_int ctx a and cb = compile_int ctx b in
      fun () -> cmp (compare (ca ()) (cb ()))
    | F64 ->
      let ca = compile_float ctx a and cb = compile_float ctx b in
      fun () -> cmp (compare (ca ()) (cb ())))
  | And (a, b) ->
    let ca = compile_cond ctx a and cb = compile_cond ctx b in
    fun () -> ca () && cb ()
  | Or (a, b) ->
    let ca = compile_cond ctx a and cb = compile_cond ctx b in
    fun () -> ca () || cb ()
  | Not a ->
    let ca = compile_cond ctx a in
    fun () -> not (ca ())

(* compile a store of an already-computed value *)
let compile_store ctx lv : (unit -> unit) * [ `F of float ref | `I of int ref ]
    =
  match lv with
  | Lscalar s -> (
    let var = find_var ctx s in
    match var.data with
    | F_data a ->
      let cell = ref 0.0 in
      ((fun () -> a.(0) <- !cell), `F cell)
    | I_data a ->
      let cell = ref 0 in
      ((fun () -> a.(0) <- !cell), `I cell))
  | Lelement (a, idxs) -> (
    let var = find_var ctx a in
    let trace = ctx.sink.Interp.trace in
    let base = var.base in
    match (var.data, index_cell_1d ctx var idxs) with
    | F_data data, Some icell ->
      let d0 = var.dims.(0) in
      let cell = ref 0.0 in
      ( (fun () ->
          let idx = !icell in
          if idx < 1 || idx > d0 then
            fail "array '%s': subscript 1 = %d out of bounds [1,%d]" a idx d0;
          let o = idx - 1 in
          Bw_machine.Trace_buffer.store trace ~addr:(base + (o * 8)) ~bytes:8;
          Array.unsafe_set data o !cell),
        `F cell )
    | I_data data, Some icell ->
      let d0 = var.dims.(0) in
      let cell = ref 0 in
      ( (fun () ->
          let idx = !icell in
          if idx < 1 || idx > d0 then
            fail "array '%s': subscript 1 = %d out of bounds [1,%d]" a idx d0;
          let o = idx - 1 in
          Bw_machine.Trace_buffer.store trace ~addr:(base + (o * 8)) ~bytes:8;
          Array.unsafe_set data o !cell),
        `I cell )
    | F_data data, None ->
      let offset =
        compile_offset var (Array.of_list (List.map (compile_int ctx) idxs))
      in
      let cell = ref 0.0 in
      ( (fun () ->
          let o = offset () in
          Bw_machine.Trace_buffer.store trace ~addr:(base + (o * 8)) ~bytes:8;
          Array.unsafe_set data o !cell),
        `F cell )
    | I_data data, None ->
      let offset =
        compile_offset var (Array.of_list (List.map (compile_int ctx) idxs))
      in
      let cell = ref 0 in
      ( (fun () ->
          let o = offset () in
          Bw_machine.Trace_buffer.store trace ~addr:(base + (o * 8)) ~bytes:8;
          Array.unsafe_set data o !cell),
        `I cell ))

let lvalue_dtype ctx = function
  | Lscalar s | Lelement (s, _) -> (find_var ctx s).decl.dtype

let rec compile_stmt ctx stmt : unit -> unit =
  match stmt with
  | Assign (Lelement (a, idxs), e)
    when (let var = find_var ctx a in
          index_cell_1d ctx var idxs <> None) -> (
    (* fused store for the dominant [a[i] = ...] shape: value, index
       read, bounds check, trace record and array write in one closure.
       Same effect order as the generic path: the right-hand side is
       fully evaluated before the subscript is checked. *)
    let var = find_var ctx a in
    let icell = Option.get (index_cell_1d ctx var idxs) in
    let d0 = var.dims.(0) in
    let trace = ctx.sink.Interp.trace in
    let base = var.base in
    match var.data with
    | F_data data ->
      let ce = compile_float ctx e in
      fun () ->
        let x = ce () in
        let idx = !icell in
        if idx < 1 || idx > d0 then
          fail "array '%s': subscript 1 = %d out of bounds [1,%d]" a idx d0;
        let o = idx - 1 in
        Bw_machine.Trace_buffer.store trace ~addr:(base + (o * 8)) ~bytes:8;
        Array.unsafe_set data o x
    | I_data data ->
      let ce = compile_int ctx e in
      fun () ->
        let x = ce () in
        let idx = !icell in
        if idx < 1 || idx > d0 then
          fail "array '%s': subscript 1 = %d out of bounds [1,%d]" a idx d0;
        let o = idx - 1 in
        Bw_machine.Trace_buffer.store trace ~addr:(base + (o * 8)) ~bytes:8;
        Array.unsafe_set data o x)
  | Assign (lv, e) -> (
    let store, cell = compile_store ctx lv in
    match (lvalue_dtype ctx lv, cell) with
    | F64, `F cell ->
      let ce = compile_float ctx e in
      fun () ->
        cell := ce ();
        store ()
    | I64, `I cell ->
      let ce = compile_int ctx e in
      fun () ->
        cell := ce ();
        store ()
    | _ -> fail "type mismatch in assignment")
  | Read_input lv -> (
    let store, cell = compile_store ctx lv in
    match cell with
    | `F cell ->
      fun () ->
        (match Interp.input_value ctx.input_counter F64 with
        | Interp.V_float x -> cell := x
        | Interp.V_int _ -> assert false);
        ctx.input_counter <- ctx.input_counter + 1;
        store ()
    | `I cell ->
      fun () ->
        (match Interp.input_value ctx.input_counter I64 with
        | Interp.V_int x -> cell := x
        | Interp.V_float _ -> assert false);
        ctx.input_counter <- ctx.input_counter + 1;
        store ())
  | Print e -> (
    match typeof ctx e with
    | F64 ->
      let ce = compile_float ctx e in
      fun () -> ctx.prints <- Interp.V_float (ce ()) :: ctx.prints
    | I64 ->
      let ce = compile_int ctx e in
      fun () -> ctx.prints <- Interp.V_int (ce ()) :: ctx.prints)
  | If (c, t, e) ->
    let cc = compile_cond ctx c in
    let ct = compile_stmts ctx t and ce = compile_stmts ctx e in
    fun () -> if cc () then ct () else ce ()
  | For { index; lo; hi; step; body } ->
    let clo = compile_int ctx lo
    and chi = compile_int ctx hi
    and cstep = compile_int ctx step in
    if Hashtbl.mem ctx.indices index then
      fail "loop index '%s' already bound" index;
    let cell = ref 0 in
    Hashtbl.add ctx.indices index cell;
    let cbody = compile_stmts ctx body in
    Hashtbl.remove ctx.indices index;
    fun () ->
      let lo = clo () and hi = chi () and step = cstep () in
      if step <= 0 then fail "loop '%s': non-positive step %d" index step;
      let i = ref lo in
      while !i <= hi do
        cell := !i;
        cbody ();
        i := !i + step
      done

and compile_stmts ctx stmts : unit -> unit =
  match List.map (compile_stmt ctx) stmts with
  | [] -> fun () -> ()
  | [ f ] -> f (* single-statement bodies skip the dispatch loop *)
  | fs ->
    let compiled = Array.of_list fs in
    fun () -> Array.iter (fun f -> f ()) compiled

let run ?sink ?base_of ?(input_offset = 0) (program : program) =
  let sink = match sink with Some s -> s | None -> Interp.discard_sink () in
  Bw_ir.Check.check_exn program;
  let base_of =
    match base_of with
    | Some f -> f
    | None ->
      let table = Hashtbl.create 16 in
      let next = ref 4096 in
      List.iter
        (fun d ->
          if is_array d then begin
            Hashtbl.add table d.var_name !next;
            next := !next + decl_bytes d
          end)
        program.decls;
      fun name -> try Hashtbl.find table name with Not_found -> 0
  in
  let vars = Hashtbl.create 16 in
  List.iter
    (fun d ->
      let size = decl_size d in
      let data =
        match d.dtype with
        | F64 -> F_data (Interp.init_float_array d.init size)
        | I64 -> I_data (Interp.init_int_array d.init size)
      in
      Hashtbl.add vars d.var_name
        { decl = d;
          data;
          base = (if is_array d then base_of d.var_name else 0);
          dims = Array.of_list d.dims;
          strides = column_major_strides (Array.of_list d.dims) })
    program.decls;
  let ctx =
    { vars;
      indices = Hashtbl.create 8;
      sink;
      input_counter = input_offset;
      prints = [] }
  in
  let main = compile_stmts ctx program.body in
  main ();
  (* capture the (now final) storage; box only if someone forces *)
  let live =
    List.filter_map
      (fun d ->
        if List.mem d.var_name program.live_out then
          Some (d.var_name, (Hashtbl.find vars d.var_name).data)
        else None)
      program.decls
  in
  let finals =
    lazy
      (List.map
         (fun (name, data) ->
           ( name,
             match data with
             | F_data a -> Array.map (fun x -> Interp.V_float x) a
             | I_data a -> Array.map (fun n -> Interp.V_int n) a ))
         live)
  in
  { Interp.prints = List.rev ctx.prints; finals }
