open Bw_ir.Ast

exception Runtime_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Runtime_error m)) fmt

type value = V_int of int | V_float of float

let pp_value ppf = function
  | V_int n -> Format.fprintf ppf "%d" n
  | V_float x -> Format.fprintf ppf "%.17g" x

type observation = {
  prints : value list;
  (* lazy: boxing every element of every live-out array is a large
     fraction of a short run, and pure-simulation consumers never look
     at the values — only the differential tests force them *)
  finals : (string * value array) list Lazy.t;
}

let equal_value a b =
  match (a, b) with
  | V_int x, V_int y -> x = y
  | V_float x, V_float y -> Float.equal x y (* NaN-safe, bit-meaningful *)
  | V_int _, V_float _ | V_float _, V_int _ -> false

let close_value tol a b =
  match (a, b) with
  | V_int x, V_int y -> x = y
  | V_float x, V_float y ->
    Float.equal x y
    || Float.abs (x -. y) <= tol *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))
  | V_int _, V_float _ | V_float _, V_int _ -> false

let equal_observation_gen eq a b =
  let fa = Lazy.force a.finals and fb = Lazy.force b.finals in
  List.length a.prints = List.length b.prints
  && List.for_all2 eq a.prints b.prints
  && List.length fa = List.length fb
  && List.for_all2
       (fun (n1, v1) (n2, v2) ->
         n1 = n2
         && Array.length v1 = Array.length v2
         && Array.for_all2 eq v1 v2)
       fa fb

let equal_observation a b = equal_observation_gen equal_value a b
let close_observation ?(tol = 1e-9) a b = equal_observation_gen (close_value tol) a b

let pp_observation ppf o =
  Format.fprintf ppf "@[<v>prints:";
  List.iter (fun v -> Format.fprintf ppf " %a" pp_value v) o.prints;
  List.iter
    (fun (name, vs) ->
      Format.fprintf ppf "@,%s[%d]:" name (Array.length vs);
      Array.iteri
        (fun i v -> if i < 4 then Format.fprintf ppf " %a" pp_value v)
        vs;
      if Array.length vs > 4 then Format.fprintf ppf " ...")
    (Lazy.force o.finals);
  Format.fprintf ppf "@]"

type sink = {
  trace : Bw_machine.Trace_buffer.t;
  mutable flops : int;
  mutable int_ops : int;
}

let make_sink ?capacity ~on_trace () =
  { trace = Bw_machine.Trace_buffer.create ?capacity ~on_full:on_trace ();
    flops = 0;
    int_ops = 0 }

let discard_sink () =
  (* records are dropped on overflow (Trace_buffer resets after on_full)
     and by flush; only the flop/int-op tallies survive *)
  make_sink ~capacity:4096 ~on_trace:(fun _ -> ()) ()

let flush_sink s = Bw_machine.Trace_buffer.flush s.trace

(* --- storage ------------------------------------------------------------ *)

type storage =
  | F_data of float array
  | I_data of int array

type var = {
  decl : decl;
  data : storage;
  base : int; (* virtual base address; 0 for scalars *)
  strides : int array; (* column-major element strides per dimension *)
}

(* Deterministic pseudo-random floats for Init_hash and read() inputs. *)
let[@inline] hash_float seed k =
  let z = ref ((k * 0x9e3779b9) + (seed * 0x85ebca6b) + 0x165667b1) in
  z := (!z lxor (!z lsr 30)) * 0x1ce4e5b9bf58476d;
  z := (!z lxor (!z lsr 27)) * 0x133111eb94d049bb;
  let bits = (!z lxor (!z lsr 31)) land ((1 lsl 52) - 1) in
  float_of_int bits /. float_of_int (1 lsl 52)

let rec init_value init dtype k =
  match (init, dtype) with
  | Init_zero, F64 -> V_float 0.0
  | Init_zero, I64 -> V_int 0
  | Init_linear (a, b), F64 -> V_float (a +. (b *. float_of_int k))
  | Init_linear (a, b), I64 -> V_int (int_of_float (a +. (b *. float_of_int k)))
  | Init_hash seed, F64 -> V_float (hash_float seed k)
  | Init_hash seed, I64 -> V_int (int_of_float (hash_float seed k *. 1e6))
  | Init_lanes (inner, lanes), dt ->
    if lanes <= 0 then fail "Init_lanes: non-positive lane count"
    else init_value inner dt (k / lanes)

(* Unboxed bulk versions of [init_value]: same formulas element for
   element, but filling a flat array directly instead of allocating a
   [value] per element.  Array init is a visible fraction of short
   simulations, so both engines use these. *)
let init_float_array init size =
  match init with
  | Init_zero -> Array.make size 0.0
  | Init_linear (a, b) ->
    let arr = Array.make size 0.0 in
    for k = 0 to size - 1 do
      Array.unsafe_set arr k (a +. (b *. float_of_int k))
    done;
    arr
  | Init_hash seed ->
    let arr = Array.make size 0.0 in
    for k = 0 to size - 1 do
      Array.unsafe_set arr k (hash_float seed k)
    done;
    arr
  | Init_lanes _ ->
    Array.init size (fun k ->
        match init_value init F64 k with
        | V_float x -> x
        | V_int _ -> assert false)

let init_int_array init size =
  match init with
  | Init_zero -> Array.make size 0
  | Init_hash seed ->
    let arr = Array.make size 0 in
    for k = 0 to size - 1 do
      Array.unsafe_set arr k (int_of_float (hash_float seed k *. 1e6))
    done;
    arr
  | Init_linear _ | Init_lanes _ ->
    Array.init size (fun k ->
        match init_value init I64 k with
        | V_int n -> n
        | V_float _ -> assert false)

let make_storage d =
  match d.dtype with
  | F64 -> F_data (init_float_array d.init (decl_size d))
  | I64 -> I_data (init_int_array d.init (decl_size d))

let column_major_strides dims =
  let n = List.length dims in
  let dims = Array.of_list dims in
  let strides = Array.make n 1 in
  for k = 1 to n - 1 do
    strides.(k) <- strides.(k - 1) * dims.(k - 1)
  done;
  strides

(* --- evaluation --------------------------------------------------------- *)

type env = {
  vars : (string, var) Hashtbl.t;
  indices : (string, int) Hashtbl.t; (* live loop indices *)
  sink : sink;
  mutable input_counter : int;
  mutable prints : value list;
}

let find_var env name =
  match Hashtbl.find_opt env.vars name with
  | Some v -> v
  | None -> fail "undeclared variable '%s'" name

let as_int what = function
  | V_int n -> n
  | V_float _ -> fail "%s: expected an integer value" what

let offset_of env var idxs =
  let dims = Array.of_list var.decl.dims in
  if List.length idxs <> Array.length dims then
    fail "array '%s': wrong subscript count" var.decl.var_name;
  let offset = ref 0 in
  List.iteri
    (fun k idx ->
      if idx < 1 || idx > dims.(k) then
        fail "array '%s': subscript %d = %d out of bounds [1,%d]"
          var.decl.var_name (k + 1) idx dims.(k);
      offset := !offset + ((idx - 1) * var.strides.(k)))
    idxs;
  ignore env;
  !offset

let element_addr var offset = var.base + (offset * dtype_bytes var.decl.dtype)

let read_storage var offset =
  match var.data with
  | F_data a -> V_float a.(offset)
  | I_data a -> V_int a.(offset)

let write_storage var offset v =
  match (var.data, v) with
  | F_data a, V_float x -> a.(offset) <- x
  | I_data a, V_int n -> a.(offset) <- n
  | F_data _, V_int _ | I_data _, V_float _ ->
    fail "type mismatch storing into '%s'" var.decl.var_name

let intrinsic name args =
  (* An opaque but deterministic smooth function of its arguments. *)
  let h = Hashtbl.hash name land 0xffff in
  let salt = 1.0 +. (float_of_int h /. 65536.0) in
  let acc =
    List.fold_left (fun acc x -> (0.5 *. acc) +. (0.75 *. x) +. 0.125) 0.0 args
  in
  (acc /. salt) +. (0.001 *. salt)

let rec eval env e : value =
  match e with
  | Int_lit n -> V_int n
  | Float_lit x -> V_float x
  | Scalar s -> (
    match Hashtbl.find_opt env.indices s with
    | Some i -> V_int i
    | None ->
      let var = find_var env s in
      if var.decl.dims <> [] then fail "array '%s' read as a scalar" s;
      read_storage var 0)
  | Element (a, idx_exprs) ->
    let var = find_var env a in
    let idxs =
      List.map (fun ie -> as_int "subscript" (eval env ie)) idx_exprs
    in
    let offset = offset_of env var idxs in
    Bw_machine.Trace_buffer.load env.sink.trace
      ~addr:(element_addr var offset)
      ~bytes:(dtype_bytes var.decl.dtype);
    read_storage var offset
  | Unary (op, a) -> eval_unary env op (eval env a)
  | Binary (op, a, b) -> eval_binary env op (eval env a) (eval env b)
  | Call (f, args) ->
    let xs =
      List.map
        (fun a ->
          match eval env a with
          | V_float x -> x
          | V_int _ -> fail "integer argument to intrinsic '%s'" f)
        args
    in
    env.sink.flops <- env.sink.flops + 1;
    V_float (intrinsic f xs)

and eval_unary env op v =
  match (op, v) with
  | Neg, V_int n ->
    env.sink.int_ops <- env.sink.int_ops + 1;
    V_int (-n)
  | Neg, V_float x ->
    env.sink.flops <- env.sink.flops + 1;
    V_float (-.x)
  | Abs, V_int n ->
    env.sink.int_ops <- env.sink.int_ops + 1;
    V_int (abs n)
  | Abs, V_float x ->
    env.sink.flops <- env.sink.flops + 1;
    V_float (Float.abs x)
  | Sqrt, V_float x ->
    env.sink.flops <- env.sink.flops + 1;
    V_float (sqrt x)
  | Sqrt, V_int _ -> fail "sqrt of an integer"
  | Int_to_float, V_int n ->
    env.sink.int_ops <- env.sink.int_ops + 1;
    V_float (float_of_int n)
  | Int_to_float, V_float _ -> fail "float() of a float"

and eval_binary env op a b =
  match (a, b) with
  | V_int x, V_int y ->
    env.sink.int_ops <- env.sink.int_ops + 1;
    V_int
      (match op with
      | Add -> x + y
      | Sub -> x - y
      | Mul -> x * y
      | Div -> if y = 0 then fail "integer division by zero" else x / y
      | Mod -> if y = 0 then fail "integer modulo by zero" else x mod y
      | Min -> min x y
      | Max -> max x y)
  | V_float x, V_float y ->
    env.sink.flops <- env.sink.flops + 1;
    V_float
      (match op with
      | Add -> x +. y
      | Sub -> x -. y
      | Mul -> x *. y
      | Div -> x /. y
      | Mod -> fail "mod of floats"
      | Min -> Float.min x y
      | Max -> Float.max x y)
  | V_int _, V_float _ | V_float _, V_int _ ->
    fail "mixed integer/float operands"

let rec eval_cond env c =
  match c with
  | Cmp (op, a, b) -> (
    let va = eval env a and vb = eval env b in
    let c =
      match (va, vb) with
      | V_int x, V_int y -> compare x y
      | V_float x, V_float y -> compare x y
      | V_int _, V_float _ | V_float _, V_int _ ->
        fail "comparison of mixed types"
    in
    match op with
    | Eq -> c = 0
    | Ne -> c <> 0
    | Lt -> c < 0
    | Le -> c <= 0
    | Gt -> c > 0
    | Ge -> c >= 0)
  | And (a, b) -> eval_cond env a && eval_cond env b
  | Or (a, b) -> eval_cond env a || eval_cond env b
  | Not a -> not (eval_cond env a)

let assign_lvalue env lv v =
  match lv with
  | Lscalar s ->
    let var = find_var env s in
    if var.decl.dims <> [] then fail "array '%s' assigned as a scalar" s;
    write_storage var 0 v
  | Lelement (a, idx_exprs) ->
    let var = find_var env a in
    let idxs =
      List.map (fun ie -> as_int "subscript" (eval env ie)) idx_exprs
    in
    let offset = offset_of env var idxs in
    Bw_machine.Trace_buffer.store env.sink.trace
      ~addr:(element_addr var offset)
      ~bytes:(dtype_bytes var.decl.dtype);
    write_storage var offset v

let input_value k dtype =
  match dtype with
  | F64 -> V_float (hash_float 0x1eaf k)
  | I64 -> V_int (int_of_float (hash_float 0x1eaf k *. 1e6))

let fresh_input env dtype =
  let k = env.input_counter in
  env.input_counter <- k + 1;
  input_value k dtype

let rec exec env stmt =
  match stmt with
  | Assign (lv, e) -> assign_lvalue env lv (eval env e)
  | Read_input lv ->
    let dtype =
      match lv with
      | Lscalar s | Lelement (s, _) -> (find_var env s).decl.dtype
    in
    assign_lvalue env lv (fresh_input env dtype)
  | Print e -> env.prints <- eval env e :: env.prints
  | If (c, t, e) -> List.iter (exec env) (if eval_cond env c then t else e)
  | For { index; lo; hi; step; body } ->
    let lo = as_int "loop lower bound" (eval env lo) in
    let hi = as_int "loop upper bound" (eval env hi) in
    let step = as_int "loop step" (eval env step) in
    if step <= 0 then fail "loop '%s': non-positive step %d" index step;
    if Hashtbl.mem env.indices index then
      fail "loop index '%s' already bound" index;
    let i = ref lo in
    while !i <= hi do
      Hashtbl.replace env.indices index !i;
      List.iter (exec env) body;
      i := !i + step
    done;
    Hashtbl.remove env.indices index

let run ?sink ?base_of ?(input_offset = 0) (program : program) =
  let sink = match sink with Some s -> s | None -> discard_sink () in
  Bw_ir.Check.check_exn program;
  let base_of =
    match base_of with
    | Some f -> f
    | None ->
      (* packed default layout *)
      let table = Hashtbl.create 16 in
      let next = ref 4096 in
      List.iter
        (fun d ->
          if is_array d then begin
            Hashtbl.add table d.var_name !next;
            next := !next + decl_bytes d
          end)
        program.decls;
      fun name -> try Hashtbl.find table name with Not_found -> 0
  in
  let vars = Hashtbl.create 16 in
  List.iter
    (fun d ->
      let base = if is_array d then base_of d.var_name else 0 in
      Hashtbl.add vars d.var_name
        { decl = d;
          data = make_storage d;
          base;
          strides = column_major_strides d.dims })
    program.decls;
  let env =
    { vars;
      indices = Hashtbl.create 8;
      sink;
      input_counter = input_offset;
      prints = [] }
  in
  List.iter (exec env) program.body;
  (* capture the (now final) storage; box only if someone forces *)
  let live =
    List.filter_map
      (fun d ->
        if List.mem d.var_name program.live_out then
          Some (d.var_name, (Hashtbl.find vars d.var_name).data)
        else None)
      program.decls
  in
  let finals =
    lazy
      (List.map
         (fun (name, data) ->
           ( name,
             match data with
             | F_data a -> Array.map (fun x -> V_float x) a
             | I_data a -> Array.map (fun n -> V_int n) a ))
         live)
  in
  { prints = List.rev env.prints; finals }
